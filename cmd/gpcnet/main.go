// Command gpcnet mimics the GPCNet benchmark report (Chunduri et al.,
// SC'19 — reference [6] of the paper, whose congestion methodology the
// paper adopts): it measures a set of victim communication patterns in
// isolation and under congestion and prints the congestion impact for
// each, on a chosen system profile.
//
//	gpcnet                         # Slingshot system, defaults
//	gpcnet -system aries -nodes 64
//	gpcnet -aggressor all-to-all -split 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/placement"
	"repro/internal/workloads"
)

func main() {
	var (
		system = flag.String("system", "slingshot", "system profile: slingshot|aries")
		nodes  = flag.Int("nodes", 48, "total nodes (victim + aggressor)")
		split  = flag.Float64("split", 0.5, "victim node fraction")
		aggr   = flag.String("aggressor", "incast", "congestor: incast|all-to-all")
		alloc  = flag.String("alloc", "linear", "allocation: linear|interleaved|random")
		seed   = flag.Uint64("seed", 42, "seed")
		iters  = flag.Int("iters", 10, "max iterations per victim")
	)
	flag.Parse()

	var sys harness.System
	switch *system {
	case "slingshot":
		sys = harness.Shandy(*nodes * 2)
	case "aries":
		sys = harness.Crystal(*nodes * 3 / 2)
	default:
		fmt.Fprintf(os.Stderr, "gpcnet: unknown system %q\n", *system)
		os.Exit(2)
	}
	kind := harness.IncastAggressor
	if *aggr == "all-to-all" {
		kind = harness.AlltoallAggressor
	} else if *aggr != "incast" {
		fmt.Fprintf(os.Stderr, "gpcnet: unknown aggressor %q\n", *aggr)
		os.Exit(2)
	}
	policy, err := placement.ParsePolicy(*alloc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// GPCNet's victim set: random-ring-style point-to-point plus the
	// latency-critical collectives.
	victims := []harness.Victim{
		harness.BenchVictim(workloads.PingPongBench(8)),
		harness.BenchVictim(workloads.PingPongBench(128 * 1024)),
		harness.BenchVictim(workloads.AllreduceBench(8)),
		harness.BenchVictim(workloads.AlltoallBench(8)),
		harness.BenchVictim(workloads.BarrierBench()),
	}

	fmt.Printf("GPCNet-style report — %s, %d nodes, %s congestor, %s allocation, %.0f%% victim\n\n",
		sys.Name, *nodes, kind, policy, *split*100)
	fmt.Printf("%-20s %14s %14s %10s\n", "pattern", "isolated (us)", "congested (us)", "impact")
	fmt.Printf("%-20s %14s %14s %10s\n", "-------", "-------------", "--------------", "------")
	s := *seed
	for _, v := range victims {
		s++
		r := harness.RunCell(harness.CellSpec{
			Sys: sys, TotalNodes: *nodes, VictimFrac: *split,
			Aggressor: kind, Alloc: policy, AggrPPN: 1,
			Seed: s, MinIters: 4, MaxIters: *iters,
		}, v)
		fmt.Printf("%-20s %14.1f %14.1f %9.2fx\n", r.Victim, r.Isolated, r.Congested, r.Impact)
	}
}
