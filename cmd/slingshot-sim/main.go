// Command slingshot-sim regenerates the paper's figures on the simulated
// systems. Each figure accepts a scale so that full paper-sized grids (512
// to 1024 nodes) and quick reduced runs use the same code path:
//
//	slingshot-sim -fig 2                # switch latency distribution
//	slingshot-sim -fig 9 -nodes 128 -set quick
//	slingshot-sim -fig 9 -nodes 512 -set full   # paper scale (hours)
//	slingshot-sim -fig 14
//	slingshot-sim -all                  # every figure at default scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to regenerate: 2,4,5,6,8,9,10,11,12,13,14")
		all   = flag.Bool("all", false, "run every figure at default scale")
		nodes = flag.Int("nodes", 0, "experiment node count (0 = figure default)")
		iters = flag.Int("iters", 0, "max measurement iterations per point")
		seed  = flag.Uint64("seed", 42, "experiment seed (runs are deterministic per seed)")
		ppn   = flag.Int("ppn", 1, "aggressor processes per node / Fig.6 ranks per node")
		set   = flag.String("set", "quick", "victim set for fig 9/10: quick|apps|full")
		panel = flag.String("panel", "A", "fig 10 panel: A (allocations), B (high PPN), C (small)")
	)
	flag.Parse()

	opt := harness.Options{Nodes: *nodes, MaxIters: *iters, Seed: *seed, PPN: *ppn}
	vs, err := victimSet(*set)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	figs := []string{*fig}
	if *all {
		figs = []string{"2", "4", "5", "6", "8", "9", "10", "11", "12", "13", "14"}
	}
	if !*all && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	for _, f := range figs {
		start := time.Now()
		out, err := run(f, opt, vs, *panel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("=== Figure %s (wall %v) ===\n%s\n", f, time.Since(start).Round(time.Millisecond), out)
	}
}

func victimSet(s string) (harness.VictimSet, error) {
	switch s {
	case "quick":
		return harness.VictimsQuick, nil
	case "apps":
		return harness.VictimsApps, nil
	case "full":
		return harness.VictimsFull, nil
	}
	return 0, fmt.Errorf("slingshot-sim: unknown victim set %q", s)
}

func run(fig string, opt harness.Options, vs harness.VictimSet, panel string) (fmt.Stringer, error) {
	switch fig {
	case "2":
		return harness.Fig2SwitchLatency(opt), nil
	case "4":
		return harness.Fig4Distance(opt), nil
	case "5":
		return harness.Fig5Stacks(opt), nil
	case "6":
		return harness.Fig6Bisection(opt), nil
	case "8":
		return harness.Fig8Tailbench(opt), nil
	case "9":
		return harness.Fig9Heatmap(opt, vs), nil
	case "10":
		switch panel {
		case "B":
			if opt.PPN <= 1 {
				opt.PPN = 4 // the paper's 24 PPN scaled down
			}
		case "C":
			if opt.Nodes == 0 {
				opt.Nodes = 24
			}
		}
		return harness.Fig10Distributions(opt, vs, panel), nil
	case "11":
		return harness.Fig11FullScale(opt), nil
	case "12":
		return harness.Fig12Bursty(opt, nil, nil, nil), nil
	case "13":
		return harness.Fig13TrafficClasses(opt), nil
	case "14":
		return harness.Fig14Bandwidth(opt), nil
	}
	return nil, fmt.Errorf("slingshot-sim: unknown figure %q", fig)
}
