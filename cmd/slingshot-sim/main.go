// Command slingshot-sim regenerates the paper's experiments on the
// simulated systems, driven by the experiment registry. Experiments
// accept a scale so that full paper-sized grids (512 to 1024 nodes) and
// quick reduced runs use the same code path:
//
//	slingshot-sim list                          # enumerate experiments
//	slingshot-sim run fig2                      # switch latency distribution
//	slingshot-sim run fig6 -format json         # machine-readable output
//	slingshot-sim run fig9 -nodes 128 -set quick -jobs 8
//	slingshot-sim run fig9 -seeds 1,2,3 -format csv
//	slingshot-sim run topo-compare -topo fattree # one backend of the sweep
//	slingshot-sim run policy-compare -routing ecmp -cc delay
//	slingshot-sim run all                       # every experiment, default scale
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/congestion"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/results"
	"repro/internal/routing"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list(os.Stdout)
	case "run":
		if err := run(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "slingshot-sim:", err)
			os.Exit(2)
		}
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "slingshot-sim: unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w *os.File) {
	fmt.Fprintf(w, `usage:
  slingshot-sim list                     list registered experiments
  slingshot-sim run <name>... [flags]    run experiments (or "run all")

run flags:
`)
	fs := runFlags(&runConfig{})
	fs.SetOutput(w)
	fs.PrintDefaults()
}

// list prints the registry as a table.
func list(w *os.File) {
	res := &results.Result{}
	t := res.AddTable("", "name", "default nodes", "description")
	for _, e := range harness.All() {
		t.Row(
			results.String(e.Name),
			results.Int(int64(e.DefaultOptions.Nodes)),
			results.String(e.Desc),
		)
	}
	fmt.Fprint(w, results.TextString(res))
}

// runConfig holds the run-verb flag values.
type runConfig struct {
	nodes    int
	minIters int
	maxIters int
	seed     uint64
	seeds    string
	ppn      int
	jobs     int
	domains  int
	set      string
	panel    string
	topo     string
	routing  string
	cc       string
	fidelity string
	format   string
}

func runFlags(c *runConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.IntVar(&c.nodes, "nodes", 0, "experiment node count (0 = experiment default)")
	fs.IntVar(&c.minIters, "min-iters", 0, "min measurement iterations per point (0 = default)")
	fs.IntVar(&c.maxIters, "iters", 0, "max measurement iterations per point (0 = default)")
	fs.Uint64Var(&c.seed, "seed", 42, "experiment seed (runs are deterministic per seed)")
	fs.StringVar(&c.seeds, "seeds", "", "comma-separated seed replicas, e.g. 1,2,3 (overrides -seed)")
	fs.IntVar(&c.ppn, "ppn", 0,
		"aggressor processes per node / fig6 ranks per node (0 = experiment default, usually 1)")
	fs.IntVar(&c.jobs, "jobs", 0, "worker pool size for independent grid points (0 = all cores)")
	fs.IntVar(&c.domains, "domains", 0,
		"sharded parallel engine worker budget per network (0 = classic "+
			"single-threaded engine; results are identical for every budget >= 1)")
	fs.StringVar(&c.set, "set", "quick", "victim set for fig9/fig10: quick|apps|full")
	fs.StringVar(&c.panel, "panel", "A", "fig10 panel: A (allocations), B (high PPN), C (small)")
	fs.StringVar(&c.topo, "topo", "",
		"topo-compare/policy-compare backend: dragonfly|fattree|hyperx (empty = all three)")
	fs.StringVar(&c.routing, "routing", "",
		"policy-compare routing policy: "+strings.Join(routing.Names(), "|")+" (empty = all)")
	fs.StringVar(&c.cc, "cc", "",
		"policy-compare congestion control: "+strings.Join(congestion.Names(), "|")+
			" (empty = slingshot|ecn|delay)")
	fs.StringVar(&c.fidelity, "fidelity", "packet",
		"byte-movement fidelity: "+strings.Join(fabric.FidelityNames(), "|")+
			" (flow runs every transfer on the fluid engine; hybrid keeps "+
			"victims and hotspots packet-level)")
	fs.StringVar(&c.format, "format", "table",
		"output format: "+strings.Join(results.Formats(), "|"))
	return fs
}

// run executes `slingshot-sim run <name>... [flags]`: experiment names
// come first, flags after.
func run(args []string) error {
	var names []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		names = append(names, args[0])
		args = args[1:]
	}
	var cfg runConfig
	fs := runFlags(&cfg)
	fs.SetOutput(io.Discard) // errors are reported once, by our caller
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(os.Stdout)
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("experiment names must precede flags (stray argument %q)", fs.Arg(0))
	}
	if len(names) == 0 {
		return fmt.Errorf(`no experiments named (try "slingshot-sim list" or "run all")`)
	}

	var exps []*harness.Experiment
	seen := map[string]bool{}
	add := func(e *harness.Experiment) {
		if !seen[e.Name] {
			seen[e.Name] = true
			exps = append(exps, e)
		}
	}
	for _, name := range names {
		if name == "all" {
			for _, e := range harness.All() {
				add(e)
			}
			continue
		}
		e := harness.Lookup(name)
		if e == nil {
			return fmt.Errorf("unknown experiment %q (see: slingshot-sim list)", name)
		}
		add(e)
	}

	vs, err := victimSet(cfg.set)
	if err != nil {
		return err
	}
	switch cfg.panel {
	case "A", "B", "C":
	default:
		return fmt.Errorf("unknown panel %q (want A|B|C)", cfg.panel)
	}
	switch cfg.topo {
	case "", "dragonfly", "fattree", "hyperx":
	default:
		return fmt.Errorf("unknown topology %q (want dragonfly|fattree|hyperx)", cfg.topo)
	}
	if cfg.routing != "" {
		if _, err := routing.ByName(cfg.routing); err != nil {
			return err
		}
	}
	if cfg.cc != "" {
		if _, err := congestion.ByName(cfg.cc); err != nil {
			return err
		}
	}
	if _, err := fabric.ParseFidelity(cfg.fidelity); err != nil {
		return err
	}
	seeds, err := parseSeeds(cfg.seeds, cfg.seed)
	if err != nil {
		return err
	}
	enc, err := results.NewEncoder(cfg.format)
	if err != nil {
		return err
	}

	// Text and CSV stream each result as its run completes (long grids
	// show progress and survive interruption); JSON buffers so multiple
	// results form one valid array.
	var out []*results.Result
	done := 0
	for _, e := range exps {
		for _, seed := range seeds {
			opt := harness.Options{
				Nodes:    cfg.nodes,
				MinIters: cfg.minIters,
				MaxIters: cfg.maxIters,
				Seed:     seed,
				PPN:      cfg.ppn,
				Jobs:     cfg.jobs,
				Domains:  cfg.domains,
				Victims:  vs,
				Panel:    cfg.panel,
				Topo:     cfg.topo,
				Routing:  cfg.routing,
				CC:       cfg.cc,
				Fidelity: cfg.fidelity,
			}
			res, err := e.Run(opt)
			if err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			if cfg.format == "json" {
				out = append(out, res)
				continue
			}
			if done > 0 {
				fmt.Println()
			}
			done++
			if err := enc.Encode(os.Stdout, res); err != nil {
				return err
			}
		}
	}
	if cfg.format == "json" {
		return results.EncodeAll(os.Stdout, cfg.format, out)
	}
	return nil
}

func victimSet(s string) (harness.VictimSet, error) {
	switch s {
	case "quick":
		return harness.VictimsQuick, nil
	case "apps":
		return harness.VictimsApps, nil
	case "full":
		return harness.VictimsFull, nil
	}
	return 0, fmt.Errorf("unknown victim set %q (want quick|apps|full)", s)
}

func parseSeeds(list string, fallback uint64) ([]uint64, error) {
	if list == "" {
		return []uint64{fallback}, nil
	}
	var out []uint64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in -seeds", f)
		}
		if s == 0 {
			return nil, fmt.Errorf("seed 0 is reserved for the default (42); use a nonzero seed")
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds lists no seeds")
	}
	return out, nil
}
