// Command topoinfo prints the structural properties of the Dragonfly
// systems, validating the arithmetic of Fig. 3 and §II-G of the paper:
// the largest buildable system (545 groups, 279 040 endpoints), and the
// bisection / all-to-all peak bandwidths of Shandy.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	system := flag.String("system", "all", "system to describe: shandy|malbec|crystal|max|all")
	flag.Parse()

	switch *system {
	case "max":
		printMax()
	case "shandy":
		printSystem("Shandy", topology.ShandyConfig())
	case "malbec":
		printSystem("Malbec", topology.MalbecConfig())
	case "crystal":
		printSystem("Crystal", topology.CrystalConfig())
	case "all":
		printMax()
		printSystem("Shandy", topology.ShandyConfig())
		printSystem("Malbec", topology.MalbecConfig())
		printSystem("Crystal", topology.CrystalConfig())
	default:
		fmt.Fprintf(os.Stderr, "topoinfo: unknown system %q\n", *system)
		os.Exit(2)
	}
}

func printMax() {
	s := topology.MaxSystem()
	fmt.Println("Largest 1-D Dragonfly from 64-port Rosetta switches (Fig. 3):")
	fmt.Printf("  endpoints/switch:     %d\n", s.EndpointsPerSwitch)
	fmt.Printf("  switches/group:       %d (%d local + %d global ports)\n",
		s.SwitchesPerGroup, s.LocalPorts, s.GlobalPorts)
	fmt.Printf("  nodes/group:          %d\n", s.NodesPerGroup)
	fmt.Printf("  global links/group:   %d\n", s.GlobalLinksPer)
	fmt.Printf("  groups:               %d\n", s.Groups)
	fmt.Printf("  endpoints:            %d\n", s.Endpoints)
	fmt.Printf("  addressable (511 gr): %d nodes\n\n", s.AddressableNodes)
}

func printSystem(name string, cfg topology.Config) {
	d, err := topology.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoinfo: %v\n", err)
		os.Exit(1)
	}
	local, global := 0, 0
	for _, l := range d.Links() {
		switch l.Kind {
		case topology.LocalLink:
			local++
		case topology.GlobalLink:
			global++
		}
	}
	fmt.Printf("%s: %d nodes, %d switches, %d groups (%s groups)\n",
		name, d.Nodes(), d.Switches(), cfg.Groups, cfg.Shape)
	fmt.Printf("  local links:  %d\n", local)
	fmt.Printf("  global links: %d (%d per group pair)\n", global, cfg.GlobalPerPair)
	fmt.Printf("  bisection:    %d links crossing, peak %.1f Tb/s (%.1f TB/s)\n",
		d.BisectionLinks(),
		float64(d.BisectionPeakBits(topology.LinkBits))/1e12,
		float64(d.BisectionPeakBits(topology.LinkBits))/8e12)
	fmt.Printf("  alltoall:     peak %.1f Tb/s (%.1f TB/s)\n\n",
		float64(d.AlltoallPeakBits(topology.LinkBits))/1e12,
		float64(d.AlltoallPeakBits(topology.LinkBits))/8e12)
}
