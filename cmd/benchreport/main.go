// Command benchreport runs the hot-path benchmark suite (internal/bench)
// via testing.Benchmark and writes the measurements as a structured
// results JSON file — the repo's tracked perf baseline:
//
//	go run ./cmd/benchreport                      # writes BENCH_hotpath.json
//	go run ./cmd/benchreport -out - -format table # print to stdout
//
// Each row reports ns, allocations and bytes per unit (packet / cell), so
// successive baselines are directly comparable. CI regenerates the file on
// every run and uploads it as an artifact, giving every PR a perf
// trajectory to compare against.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/results"
)

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "output path ('-' for stdout)")
	format := flag.String("format", "json", "output format: table|json|csv")
	flag.Parse()

	enc, err := results.NewEncoder(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}

	res := results.New("bench-hotpath")
	res.Meta.Desc = "hot-path perf baseline (ns/allocs/bytes per unit of work)"
	t := res.AddTable("benchmarks", "benchmark", "unit", "iters", "ns/unit", "allocs/unit", "B/unit")
	start := time.Now()
	for _, bm := range bench.Suite() {
		fmt.Fprintf(os.Stderr, "benchreport: running %s...\n", bm.Name)
		r := testing.Benchmark(bm.Fn)
		t.Row(
			results.String(bm.Name),
			results.String(bm.Unit),
			results.Int(int64(r.N)),
			results.Float(float64(r.T.Nanoseconds())/float64(r.N), 1),
			results.Float(float64(r.MemAllocs)/float64(r.N), 2),
			results.Float(float64(r.MemBytes)/float64(r.N), 1),
		)
	}
	res.Meta.Wall = time.Since(start)

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := enc.Encode(w, res); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s\n", *out)
	}
}
