// Command benchreport runs the hot-path benchmark suite (internal/bench)
// via testing.Benchmark and writes the measurements as a structured
// results JSON file — the repo's tracked perf baseline:
//
//	go run ./cmd/benchreport                      # writes BENCH_hotpath.json
//	go run ./cmd/benchreport -out - -format table # print to stdout
//
//	# Compare against a previous baseline: prints per-benchmark deltas
//	# and exits non-zero when ns/unit regresses past -max-regress.
//	go run ./cmd/benchreport -baseline BENCH_hotpath.json -out BENCH_new.json
//
// Each row reports ns, allocations and bytes per unit (packet / cell) and
// the sharded-engine domain budget where one applies (0 = classic engine),
// and the meta block stamps the git revision, Go toolchain, and whether
// the simlint source-level invariant gate held (simlint_clean), so
// successive baselines are directly comparable and attributable. CI runs
// the compare mode against the committed baseline on every push, failing
// the build on a regression instead of silently uploading an artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/lint"
	"repro/internal/results"
)

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "output path ('-' for stdout)")
	format := flag.String("format", "json", "output format: table|json|csv")
	baseline := flag.String("baseline", "", "previous BENCH_hotpath.json to compare against")
	maxRegress := flag.Float64("max-regress", 0.15,
		"with -baseline: max tolerated regression (fraction) on the gated metric before exiting non-zero")
	gate := flag.String("gate", "ns",
		"with -baseline: which metric the -max-regress threshold applies to: ns|allocs|both. "+
			"ns/unit only compares runs from the same machine; allocs/unit is "+
			"machine-independent (the simulator is deterministic), so CI gates on it")
	flag.Parse()
	if *gate != "ns" && *gate != "allocs" && *gate != "both" {
		fmt.Fprintf(os.Stderr, "benchreport: -gate %q (want ns|allocs|both)\n", *gate)
		os.Exit(2)
	}

	enc, err := results.NewEncoder(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}

	res := results.New("bench-hotpath")
	res.Meta.Desc = "hot-path perf baseline (ns/allocs/bytes per unit of work)"
	res.Meta.Rev = gitRev()
	res.Meta.GoVersion = runtime.Version()
	res.Meta.SimlintClean, res.Meta.SpineFuncs = simlintClean(os.Stderr)
	t := res.AddTable("benchmarks", "benchmark", "unit", "domains", "iters", "ns/unit", "allocs/unit", "B/unit", "ns/sim-byte")
	start := time.Now()
	for _, bm := range bench.Suite() {
		fmt.Fprintf(os.Stderr, "benchreport: running %s...\n", bm.Name)
		r := testing.Benchmark(bm.Fn)
		nsPerUnit := float64(r.T.Nanoseconds()) / float64(r.N)
		// ns/sim-byte normalizes byte-moving benchmarks by the payload one
		// unit simulates, making fidelities directly comparable (the flow
		// engine's raison d'être is this column vs PacketHotPath's).
		nsPerByte := results.NA()
		if bm.SimBytes > 0 {
			nsPerByte = results.Float(nsPerUnit/float64(bm.SimBytes), 5)
		}
		t.Row(
			results.String(bm.Name),
			results.String(bm.Unit),
			results.Int(int64(bm.Domains)),
			results.Int(int64(r.N)),
			results.Float(nsPerUnit, 1),
			results.Float(float64(r.MemAllocs)/float64(r.N), 2),
			results.Float(float64(r.MemBytes)/float64(r.N), 1),
			nsPerByte,
		)
	}
	res.Meta.Wall = time.Since(start)

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := enc.Encode(w, res); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s\n", *out)
	}

	if *baseline != "" {
		regressed, err := compare(os.Stderr, *baseline, res, *maxRegress, *gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(3)
		}
	}
}

// compare prints per-benchmark ns/unit and allocs/unit deltas of the
// fresh run against a stored baseline and reports whether any gated
// metric regressed by more than maxRegress. Benchmarks present on only
// one side are reported but never fail the comparison (suites may grow
// or shrink).
func compare(w io.Writer, path string, fresh *results.Result, maxRegress float64, gate string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	base, err := results.DecodeJSON(f)
	if err != nil {
		return false, fmt.Errorf("baseline %s: %w", path, err)
	}

	baseRows := benchRows(base)
	rev := base.Meta.Rev
	if rev == "" {
		rev = "unknown rev"
	}
	fmt.Fprintf(w, "benchreport: comparing against %s (%s)\n", path, rev)
	regressed := false
	for _, row := range benchRows(fresh) {
		name := row.name
		old, ok := baseRows[name]
		if !ok {
			fmt.Fprintf(w, "  %-16s new benchmark (no baseline entry)\n", name)
			continue
		}
		delete(baseRows, name)
		dns := delta(old.ns, row.ns)
		dallocs := delta(old.allocs, row.allocs)
		fmt.Fprintf(w, "  %-16s ns/unit %11.1f -> %11.1f (%+6.1f%%)  allocs/unit %9.1f -> %9.1f (%+6.1f%%)\n",
			name, old.ns, row.ns, 100*dns, old.allocs, row.allocs, 100*dallocs)
		check := func(metric string, d float64) {
			if d > maxRegress {
				fmt.Fprintf(w, "  %-16s REGRESSION: %s +%.1f%% exceeds the %.0f%% threshold\n",
					name, metric, 100*d, 100*maxRegress)
				regressed = true
			}
		}
		if gate == "ns" || gate == "both" {
			check("ns/unit", dns)
		}
		if gate == "allocs" || gate == "both" {
			check("allocs/unit", dallocs)
		}
	}
	for name := range baseRows {
		fmt.Fprintf(w, "  %-16s dropped from suite (baseline only)\n", name)
	}
	return regressed, nil
}

type benchRow struct {
	name       string
	ns, allocs float64
}

// benchRows indexes a result's "benchmarks" table by benchmark name.
func benchRows(r *results.Result) map[string]benchRow {
	rows := map[string]benchRow{}
	for _, t := range r.Tables {
		if t.Name != "benchmarks" {
			continue
		}
		col := map[string]int{}
		for i, c := range t.Columns {
			col[c] = i
		}
		ni, ok1 := col["benchmark"]
		nsi, ok2 := col["ns/unit"]
		ai, ok3 := col["allocs/unit"]
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		for _, row := range t.Rows {
			ns, _ := row[nsi].Float64()
			allocs, _ := row[ai].Float64()
			rows[row[ni].Text()] = benchRow{name: row[ni].Text(), ns: ns, allocs: allocs}
		}
	}
	return rows
}

// delta returns the relative change from old to cur (positive = worse for
// cost metrics). A zero baseline is a contract, not a ratio: rows that
// committed 0 allocs/unit (FlowEngine, MailboxExchange, the ChoosePath
// hot policies) regress the moment the metric becomes measurable, so any
// value past rounding noise reports as an infinite regression instead of
// dividing away to nothing.
func delta(old, cur float64) float64 {
	if old == 0 {
		if cur <= 0.01 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - old) / old
}

// simlintClean runs the full simlint suite over the module and reports
// whether the source-level invariant gate held, plus the size of the
// hot-path spine the call-graph analysis audited — so the perf baseline
// records both facts alongside the measured allocs. A load failure (no
// go tool, not in a checkout) stamps false with a note rather than
// hiding the field: a baseline that could not be checked should not
// claim cleanliness.
func simlintClean(w io.Writer) (*bool, int) {
	fmt.Fprintln(w, "benchreport: running simlint over ./...")
	clean := false
	rep, err := lint.Run(".", lint.All(), "./...")
	switch {
	case err != nil:
		fmt.Fprintf(w, "benchreport: simlint check failed (stamping simlint_clean=false): %v\n", err)
		return &clean, 0
	case len(rep.Diags) > 0:
		fmt.Fprintf(w, "benchreport: simlint found %d violation(s) (stamping simlint_clean=false)\n", len(rep.Diags))
		for _, d := range rep.Diags {
			fmt.Fprintf(w, "  %s\n", d)
		}
	default:
		clean = true
	}
	fmt.Fprintf(w, "benchreport: hot-path spine covers %d functions\n", len(rep.Spine))
	return &clean, len(rep.Spine)
}

// gitRev resolves the producing revision: the working tree's HEAD when
// run inside a checkout (the normal `go run ./cmd/benchreport` flow),
// with a -dirty suffix for uncommitted changes, falling back to the VCS
// stamp baked into the binary, else empty.
func gitRev() string {
	if out, err := exec.Command("git", "describe", "--always", "--dirty", "--abbrev=12").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	return ""
}
