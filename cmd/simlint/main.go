// Command simlint runs the simulator's custom invariant analyzers (see
// internal/lint): nondeterministic map iteration, wall-clock/global-RNG
// use, hot-path allocations, interprocedural spine reachability,
// shared-state confinement, RNG-stream discipline, free-list contract
// violations, and the alloc-per-event scheduling shims.
//
// It runs two ways:
//
//	go run ./cmd/simlint ./...            # standalone, from the module root
//	go build -o simlint ./cmd/simlint
//	go vet -vettool=$PWD/simlint ./...    # as a go vet tool (cached, parallel)
//
// Standalone, packages are analyzed in dependency order through one
// fact session, so the interprocedural analyzers see the same
// cross-package call graph as under go vet.
//
// Standalone flags: -only a,b limits the analyzers; -list prints them;
// -list-spine prints every function transitively reachable from the
// //simlint:hotpath roots (the audited spine); -json emits diagnostics
// as a {package: {analyzer: [diagnostic]}} tree.
// Exit status: 0 clean, 1 diagnostics found, 2 tool failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	// The go command drives vet tools with a fixed protocol (-flags,
	// -V=full, then one vet.cfg per package); humans pass patterns.
	if lint.IsVetInvocation(os.Args[1:]) {
		os.Exit(lint.VetTool(os.Args[1:], os.Stdout, os.Stderr))
	}

	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	listSpine := flag.Bool("list-spine", false, "print the hot-path spine (every function reachable from //simlint:hotpath roots) and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON ({package: {analyzer: [diagnostic]}})")
	dir := flag.String("C", ".", "directory to run go list from (the module root)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rep, err := lint.Run(*dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	if *listSpine {
		for _, fn := range rep.Spine {
			fmt.Println(fn)
		}
		return
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, rep.Diags); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		if len(rep.Diags) > 0 {
			os.Exit(1)
		}
		return
	}

	exit := 0
	for _, d := range rep.Diags {
		fmt.Println(d)
		exit = 1
	}
	os.Exit(exit)
}
