// Command simlint runs the simulator's custom invariant analyzers (see
// internal/lint): nondeterministic map iteration, wall-clock/global-RNG
// use, hot-path allocations, free-list contract violations, and the
// alloc-per-event scheduling shims.
//
// It runs two ways:
//
//	go run ./cmd/simlint ./...            # standalone, from the module root
//	go build -o simlint ./cmd/simlint
//	go vet -vettool=$PWD/simlint ./...    # as a go vet tool (cached, parallel)
//
// Standalone flags: -only a,b limits the analyzers; -list prints them.
// Exit status: 0 clean, 1 diagnostics found, 2 tool failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	// The go command drives vet tools with a fixed protocol (-flags,
	// -V=full, then one vet.cfg per package); humans pass patterns.
	if lint.IsVetInvocation(os.Args[1:]) {
		os.Exit(lint.VetTool(os.Args[1:], os.Stdout, os.Stderr))
	}

	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory to run go list from (the module root)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	exit := 0
	for _, p := range pkgs {
		for _, d := range lint.RunAnalyzers(analyzers, p.Fset, p.Files, p.Types, p.Info) {
			fmt.Println(d)
			exit = 1
		}
	}
	os.Exit(exit)
}
