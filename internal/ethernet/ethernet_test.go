package ethernet

import (
	"testing"
	"testing/quick"
)

func TestRoCEHeaderStack(t *testing.T) {
	// §II-G: Ethernet 26 + IPv4 20 + UDP 8 + IB 14 + CRC 4 = 62 bytes.
	if RoCEHeaders != 62 {
		t.Fatalf("RoCEHeaders = %d, want 62", RoCEHeaders)
	}
}

func TestWireBytesStandard(t *testing.T) {
	// 4 KiB payload carries 62 bytes of headers plus preamble + IPG.
	if got := WireBytes(4096, Standard); got != 4096+62+8+12 {
		t.Errorf("WireBytes(4096, std) = %d", got)
	}
	// Tiny payloads pad to the 64-byte minimum frame.
	if got := WireBytes(0, Standard); got != 64+8+12 {
		t.Errorf("WireBytes(0, std) = %d", got)
	}
	if got := WireBytes(1, Standard); got != 64+8+12 {
		t.Errorf("WireBytes(1, std) = %d", got)
	}
	// Negative clamps to zero payload; oversize clamps to MaxPayload.
	if WireBytes(-5, Standard) != WireBytes(0, Standard) {
		t.Error("negative payload not clamped")
	}
	if WireBytes(10000, Standard) != WireBytes(MaxPayload, Standard) {
		t.Error("oversize payload not clamped")
	}
}

func TestWireBytesEnhanced(t *testing.T) {
	// Enhanced mode drops the Ethernet header and the IPG, and the minimum
	// frame is 32 bytes, so small packets are much cheaper.
	std := WireBytes(8, Standard)
	enh := WireBytes(8, Enhanced)
	if enh >= std {
		t.Errorf("enhanced (%d) not cheaper than standard (%d)", enh, std)
	}
	// 8 payload + (62-18) = 52 frame bytes, no preamble/IPG.
	if enh != 52 {
		t.Errorf("WireBytes(8, enhanced) = %d, want 52", enh)
	}
	if got := WireBytes(0, Enhanced); got != 44 {
		t.Errorf("WireBytes(0, enhanced) = %d, want 44 (header-only)", got)
	}
}

func TestWireBytesMonotone(t *testing.T) {
	f := func(a, b uint16, em bool) bool {
		m := Standard
		if em {
			m = Enhanced
		}
		x, y := int(a)%5000, int(b)%5000
		if x > y {
			x, y = y, x
		}
		return WireBytes(x, m) <= WireBytes(y, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackets(t *testing.T) {
	cases := []struct {
		size int64
		cap  int
		want int
	}{
		{0, 0, 1},
		{1, 0, 1},
		{4096, 0, 1},
		{4097, 0, 2},
		{128 * 1024, 0, 32},
		{4 * 1024 * 1024, 0, 1024},
		{100, 10, 10},
		{101, 10, 11},
	}
	for _, c := range cases {
		if got := Packets(c.size, c.cap); got != c.want {
			t.Errorf("Packets(%d, %d) = %d, want %d", c.size, c.cap, got, c.want)
		}
	}
}

func TestPacketsCoverSize(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw % 10_000_000)
		n := Packets(size, 0)
		return int64(n)*MaxPayload >= size && (size == 0 || int64(n-1)*MaxPayload < size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiency(t *testing.T) {
	// 4 KiB RoCEv2 packets are ~98.2% efficient on standard Ethernet —
	// this is why Fig. 4's 4 MiB bandwidth tops out around 97-98 Gb/s.
	e := Efficiency(4096, Standard)
	if e < 0.975 || e > 0.99 {
		t.Errorf("4KiB efficiency = %.4f", e)
	}
	if Efficiency(0, Standard) != 0 {
		t.Error("zero payload efficiency should be 0")
	}
	if Efficiency(8, Enhanced) <= Efficiency(8, Standard) {
		t.Error("enhanced mode should improve small-frame efficiency")
	}
}

func TestModeString(t *testing.T) {
	if Standard.String() != "standard-ethernet" || Enhanced.String() != "slingshot-enhanced" {
		t.Error("mode strings wrong")
	}
}
