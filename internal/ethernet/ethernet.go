// Package ethernet models the frame formats of §II-F and §II-G of the
// paper: the RoCEv2 encapsulation used by all HPC traffic (62 bytes of
// headers and trailers around up to 4 KiB of payload) and the Slingshot
// protocol enhancements — 32-byte minimum frames, headerless IP, and no
// inter-packet gap — that the switches negotiate per port.
package ethernet

// Header/trailer sizes in bytes, from §II-G of the paper. The paper quotes
// a 62-byte total; the consistent decomposition is an 18-byte Ethernet
// header+FCS (the paper's "26 bytes including the preamble" counts the
// 8-byte preamble, which we charge as line overhead alongside the IPG), a
// 12-byte InfiniBand base transport header, IPv4, UDP and the RoCEv2 ICRC.
const (
	EthernetHeader = 18 // MAC header (14) + FCS (4); preamble charged separately
	Preamble       = 8
	IPv4Header     = 20
	UDPHeader      = 8
	InfiniBandBTH  = 12 // InfiniBand base transport header carried by RoCEv2
	RoCEv2CRC      = 4  // ICRC trailer
	// RoCEHeaders is the paper's 62-byte per-packet overhead.
	RoCEHeaders = EthernetHeader + IPv4Header + UDPHeader + InfiniBandBTH + RoCEv2CRC // 62

	// MaxPayload is the RoCEv2 payload cap on Slingshot (§II-G).
	MaxPayload = 4096

	// StdMinFrame is the classic Ethernet minimum frame size; Slingshot
	// reduces it to SlingshotMinFrame (§II-F).
	StdMinFrame       = 64
	SlingshotMinFrame = 32

	// StdIPG is the standard Ethernet inter-packet gap in byte times;
	// Slingshot removes it.
	StdIPG = 12
)

// Mode selects standard Ethernet framing or the Slingshot-enhanced
// protocol. Ports negotiate the mode with the attached device: Rosetta
// switch-to-switch links always use Enhanced; a standard RoCE NIC (like the
// ConnectX-5 used in the paper's measurements) speaks Standard on its edge
// link.
type Mode int

const (
	Standard Mode = iota
	Enhanced
)

func (m Mode) String() string {
	if m == Enhanced {
		return "slingshot-enhanced"
	}
	return "standard-ethernet"
}

// minFrame returns the minimum frame size for the mode.
func (m Mode) minFrame() int {
	if m == Enhanced {
		return SlingshotMinFrame
	}
	return StdMinFrame
}

// lineOverhead returns the per-frame preamble + inter-packet gap in byte
// times for the mode; Slingshot removes both (§II-F).
func (m Mode) lineOverhead() int {
	if m == Enhanced {
		return 0
	}
	return Preamble + StdIPG
}

// WireBytes returns the number of byte times a RoCEv2 packet with the given
// payload occupies on a link operating in the given mode, including
// headers, minimum-frame padding, preamble and inter-packet gap. payload
// is clamped to [0, MaxPayload].
func WireBytes(payload int, m Mode) int {
	if payload < 0 {
		payload = 0
	}
	if payload > MaxPayload {
		payload = MaxPayload
	}
	frame := payload + RoCEHeaders
	if m == Enhanced {
		// Enhanced mode sends IP packets without the Ethernet header.
		frame = payload + RoCEHeaders - EthernetHeader
	}
	if min := m.minFrame(); frame < min {
		frame = min
	}
	return frame + m.lineOverhead()
}

// Packets returns how many RoCEv2 packets a message of the given size
// needs, with the given payload cap per packet (0 means MaxPayload).
func Packets(messageBytes int64, cap int) int {
	if cap <= 0 {
		cap = MaxPayload
	}
	if messageBytes <= 0 {
		return 1 // zero-byte messages still send one (header-only) packet
	}
	return int((messageBytes + int64(cap) - 1) / int64(cap))
}

// Efficiency returns the fraction of wire bytes that carry payload for a
// stream of packets with the given payload size, e.g. ~0.985 for 4 KiB
// payloads in Standard mode.
func Efficiency(payload int, m Mode) float64 {
	if payload <= 0 {
		return 0
	}
	return float64(payload) / float64(WireBytes(payload, m))
}

// DSCP is the Differentiated Services Code Point carried in the IP header,
// used by Rosetta to assign packets to traffic classes (§II-E).
type DSCP uint8

// MaxDSCP is the largest codepoint (6 bits).
const MaxDSCP DSCP = 63
