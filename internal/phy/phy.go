// Package phy models the physical layer of §II-A and §II-F: SerDes lanes,
// forward error correction (FEC), link-level reliability (LLR) retransmit,
// lane degrade, and cable propagation delay.
package phy

import (
	"repro/internal/sim"
)

// Lane parameters of the Rosetta SerDes (§II-A): four lanes of 56 Gb/s
// PAM-4 signalling per port, of which 50 Gb/s survive FEC overhead.
const (
	LanesPerPort       = 4
	LaneRawBits  int64 = 56e9
	LaneDataBits int64 = 50e9
	// PortBits is the usable per-direction port bandwidth: 4 x 50 = 200 Gb/s.
	PortBits int64 = LanesPerPort * LaneDataBits
)

// Propagation delay: ~5 ns/m in both copper and fibre (the paper's cables:
// copper up to 2.6 m inside a group, optical up to 100 m between groups).
const (
	NsPerMeter       = 5
	CopperMeters     = 2.6
	OpticalMeters    = 30.0 // typical inter-group run; max is 100 m
	EdgeCopperMeters = 2.0
)

// CopperDelay is the one-way propagation delay of an intra-group cable.
func CopperDelay() sim.Time {
	return sim.FromNanoseconds(CopperMeters * NsPerMeter)
}

// OpticalDelay is the one-way propagation delay of an inter-group cable.
func OpticalDelay() sim.Time {
	return sim.FromNanoseconds(OpticalMeters * NsPerMeter)
}

// EdgeDelay is the one-way propagation delay of a NIC-to-switch cable.
func EdgeDelay() sim.Time {
	return sim.FromNanoseconds(EdgeCopperMeters * NsPerMeter)
}

// FECLatency is the low-latency FEC encode+decode time added per link
// traversal (the 25G consortium low-latency RS-FEC is ~30-60 ns per
// direction at 50G lane rate; we charge a combined fixed cost).
const FECLatency = 30 * sim.Nanosecond

// Link models one physical link direction: lane state, LLR retransmission
// and a bit-error process. It carries no queueing — that is fabric's job —
// only physical-layer timing and loss.
type Link struct {
	Lanes      int     // active lanes (lane degrade reduces this)
	BER        float64 // residual post-FEC frame error probability
	LLREnabled bool    // link-level retry (Slingshot links have it; plain Ethernet does not)
	LLRDelay   sim.Time
	rng        *sim.RNG
	// Stats
	FramesSent  int64
	FrameErrors int64
	LLRRetries  int64
	FramesLost  int64 // errors not recovered (no LLR)
}

// NewLink returns a healthy 4-lane link. berPerFrame is the post-FEC frame
// error probability (0 for the deterministic experiments; small positive
// values for the failure-injection tests).
func NewLink(rng *sim.RNG, berPerFrame float64, llr bool) *Link {
	return &Link{
		Lanes:      LanesPerPort,
		BER:        berPerFrame,
		LLREnabled: llr,
		LLRDelay:   300 * sim.Nanosecond, // one reverse-direction notification + replay
		rng:        rng,
	}
}

// Bandwidth returns the current usable bandwidth in bits/s, accounting for
// degraded lanes.
func (l *Link) Bandwidth() int64 {
	return int64(l.Lanes) * LaneDataBits
}

// DegradeLane removes one lane (the §II-F "lanes degrade" mechanism that
// tolerates hard lane failures by running the port at reduced width).
// It reports whether the link is still usable.
func (l *Link) DegradeLane() bool {
	if l.Lanes > 0 {
		l.Lanes--
	}
	return l.Lanes > 0
}

// RestoreLanes returns the link to full width (cable replaced).
func (l *Link) RestoreLanes() { l.Lanes = LanesPerPort }

// TransferTime returns the wire occupancy plus physical-layer latency for
// a frame of the given wire size, including any LLR retransmissions, and
// whether the frame was delivered. Errors without LLR lose the frame (the
// NIC's end-to-end retry recovers it at a much higher level, §II-F).
func (l *Link) TransferTime(wireBytes int, propagation sim.Time) (sim.Time, bool) {
	l.FramesSent++
	t := sim.SerializationTime(int64(wireBytes), l.Bandwidth()) + propagation + FECLatency
	if l.BER <= 0 || l.rng == nil {
		return t, true
	}
	for l.rng.Float64() < l.BER {
		l.FrameErrors++
		if !l.LLREnabled {
			l.FramesLost++
			return t, false
		}
		l.LLRRetries++
		t += l.LLRDelay + sim.SerializationTime(int64(wireBytes), l.Bandwidth())
	}
	return t, true
}
