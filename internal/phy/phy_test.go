package phy

import (
	"testing"

	"repro/internal/sim"
)

func TestPortBandwidth(t *testing.T) {
	// §II-A: 4 lanes x 56 Gb/s raw, 50 Gb/s each post-FEC = 200 Gb/s.
	if PortBits != 200e9 {
		t.Fatalf("PortBits = %d", PortBits)
	}
	if LaneRawBits <= LaneDataBits {
		t.Error("FEC overhead missing")
	}
}

func TestPropagationDelays(t *testing.T) {
	if CopperDelay() != 13*sim.Nanosecond {
		t.Errorf("copper = %v", CopperDelay())
	}
	if OpticalDelay() != 150*sim.Nanosecond {
		t.Errorf("optical = %v", OpticalDelay())
	}
	if EdgeDelay() != 10*sim.Nanosecond {
		t.Errorf("edge = %v", EdgeDelay())
	}
	if OpticalDelay() <= CopperDelay() {
		t.Error("optical should be longer than copper")
	}
}

func TestLinkCleanTransfer(t *testing.T) {
	l := NewLink(sim.NewRNG(1), 0, true)
	d, ok := l.TransferTime(4158, CopperDelay())
	if !ok {
		t.Fatal("clean link dropped a frame")
	}
	want := sim.SerializationTime(4158, 200e9) + CopperDelay() + FECLatency
	if d != want {
		t.Errorf("transfer = %v, want %v", d, want)
	}
	if l.FramesSent != 1 || l.FrameErrors != 0 {
		t.Errorf("stats = %+v", l)
	}
}

func TestLinkLLRRecovers(t *testing.T) {
	l := NewLink(sim.NewRNG(2), 0.3, true)
	delivered := 0
	var base, slow sim.Time
	base, _ = NewLink(nil, 0, true).TransferTime(1000, 0)
	for i := 0; i < 2000; i++ {
		d, ok := l.TransferTime(1000, 0)
		if !ok {
			t.Fatal("LLR link lost a frame")
		}
		slow += d
		delivered++
	}
	if l.LLRRetries == 0 {
		t.Error("no retries at 30% error rate")
	}
	if l.FramesLost != 0 {
		t.Error("LLR should not lose frames")
	}
	if slow <= base*2000 {
		t.Error("retries should add latency")
	}
}

func TestLinkWithoutLLRLoses(t *testing.T) {
	l := NewLink(sim.NewRNG(3), 0.5, false)
	lost := 0
	for i := 0; i < 1000; i++ {
		if _, ok := l.TransferTime(1000, 0); !ok {
			lost++
		}
	}
	if lost < 300 || lost > 700 {
		t.Errorf("lost %d/1000 at BER 0.5", lost)
	}
	if l.FramesLost != int64(lost) {
		t.Errorf("FramesLost = %d, want %d", l.FramesLost, lost)
	}
}

func TestLaneDegrade(t *testing.T) {
	l := NewLink(sim.NewRNG(4), 0, true)
	full := l.Bandwidth()
	if full != 200e9 {
		t.Fatalf("full bandwidth = %d", full)
	}
	if !l.DegradeLane() {
		t.Fatal("link should survive one lane loss")
	}
	if l.Bandwidth() != 150e9 {
		t.Errorf("3-lane bandwidth = %d", l.Bandwidth())
	}
	// Degrading slows transfers down proportionally.
	fullT, _ := NewLink(nil, 0, true).TransferTime(4096, 0)
	degT, _ := l.TransferTime(4096, 0)
	if degT <= fullT {
		t.Error("degraded link not slower")
	}
	l.DegradeLane()
	l.DegradeLane()
	if l.DegradeLane() {
		t.Error("0-lane link claims to be usable")
	}
	l.RestoreLanes()
	if l.Bandwidth() != full {
		t.Error("RestoreLanes did not restore")
	}
}
