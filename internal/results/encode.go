package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encoder renders a Result to a writer in one output format.
type Encoder interface {
	Encode(w io.Writer, r *Result) error
}

// Formats lists the supported encoder names.
func Formats() []string { return []string{"table", "json", "csv"} }

// NewEncoder returns the encoder for a format name ("table" or "text"
// for fixed-width text, "json", "csv").
func NewEncoder(format string) (Encoder, error) {
	switch format {
	case "table", "text":
		return textEncoder{}, nil
	case "json":
		return jsonEncoder{}, nil
	case "csv":
		return csvEncoder{}, nil
	}
	return nil, fmt.Errorf("results: unknown format %q (want %s)",
		format, strings.Join(Formats(), "|"))
}

// EncodeAll renders a sequence of results: JSON always emits an array
// (so consumers see one shape regardless of run count), text and CSV
// emit each result in order. Use a json Encoder directly for a single
// bare object.
func EncodeAll(w io.Writer, format string, rs []*Result) error {
	if format == "json" {
		if rs == nil {
			rs = []*Result{} // a nil slice would marshal to null, not []
		}
		return writeJSON(w, rs)
	}
	enc, err := NewEncoder(format)
	if err != nil {
		return err
	}
	for i, r := range rs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := enc.Encode(w, r); err != nil {
			return err
		}
	}
	return nil
}

// DecodeJSON reads back a single JSON-encoded Result (the format the
// json encoder writes for one result — e.g. the tracked bench baseline).
func DecodeJSON(r io.Reader) (*Result, error) {
	dec := json.NewDecoder(r)
	res := &Result{}
	if err := dec.Decode(res); err != nil {
		return nil, fmt.Errorf("results: decode: %w", err)
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// TextString renders a result with the fixed-width text encoder.
func TextString(r *Result) string {
	var b strings.Builder
	_ = textEncoder{}.Encode(&b, r)
	return b.String()
}

type textEncoder struct{}

func (textEncoder) Encode(w io.Writer, r *Result) error {
	if r.Meta.Experiment != "" {
		if _, err := fmt.Fprintf(w, "# %s seed=%d nodes=%d ppn=%d wall=%v\n",
			r.Meta.Experiment, r.Meta.Seed, r.Meta.Nodes, r.Meta.PPN, r.Meta.Wall); err != nil {
			return err
		}
	}
	for i, t := range r.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if t.Name != "" && (len(r.Tables) > 1 || len(r.Series) > 0) {
			if _, err := fmt.Fprintf(w, "[%s]\n", t.Name); err != nil {
				return err
			}
		}
		if err := writeFixedWidth(w, t); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		unit := s.YUnit
		if unit == "" {
			unit = "y"
		}
		if _, err := fmt.Fprintf(w, "series %s (%s):", s.Name, unit); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, " %.2f", p.Y); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeFixedWidth renders one table with columns padded to their widest
// cell, a dashed rule under the header.
func writeFixedWidth(w io.Writer, t *Table) error {
	widths := make([]int, len(t.Columns))
	for i, h := range t.Columns {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, row := range t.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.Text()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, width := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", width))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

type jsonEncoder struct{}

func (jsonEncoder) Encode(w io.Writer, r *Result) error { return writeJSON(w, r) }

// writeJSON is the one place that fixes the JSON framing (indent,
// trailing newline) for both single results and arrays.
func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

type csvEncoder struct{}

// Encode writes each table as its own CSV block — a header row of
// experiment,seed,table,<columns> then one record per row — and each
// series as experiment,seed,series,x,y records, with a blank line
// between blocks. The seed column keeps seed-replica runs attributable
// after their blocks are concatenated.
func (csvEncoder) Encode(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	seed := strconv.FormatUint(r.Meta.Seed, 10)
	first := true
	blockGap := func() error {
		if !first {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		first = false
		return nil
	}
	for _, t := range r.Tables {
		if err := blockGap(); err != nil {
			return err
		}
		header := append([]string{"experiment", "seed", "table"}, t.Columns...)
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, row := range t.Rows {
			rec := make([]string, 0, len(row)+3)
			rec = append(rec, r.Meta.Experiment, seed, t.Name)
			for _, v := range row {
				rec = append(rec, v.csv())
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if err := blockGap(); err != nil {
			return err
		}
		if err := cw.Write([]string{"experiment", "seed", "series", "x", "y"}); err != nil {
			return err
		}
		for _, p := range s.Points {
			rec := []string{
				r.Meta.Experiment, seed, s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}
