package results

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenResult builds a fixed synthetic result exercising every cell
// kind, multiple tables, and a series.
func goldenResult() *Result {
	r := New("demo")
	r.Meta.Desc = "golden fixture"
	r.Meta.Seed = 42
	r.Meta.Nodes = 8
	r.Meta.PPN = 2
	r.Meta.Wall = 1500 * time.Millisecond
	r.AddTable("latency", "metric", "value_us").
		Row(String("mean"), Float(12.345, 2)).
		Row(String("p99"), Float(99.5, 1)).
		Row(String("missing"), NA()).
		Row(String("count"), Int(1024))
	r.AddTable("wins", "system", "impact").
		Row(String("slingshot"), Float(1.3, 1)).
		Row(String("aries"), Float(93, 1))
	r.AddSeries(Series{
		Name: "ramp", XUnit: "us", YUnit: "Gb/s",
		Points: []Point{{X: 0, Y: 1.5}, {X: 100, Y: 2.25}, {X: 200, Y: 2.25}},
	})
	return r
}

func TestEncodersGolden(t *testing.T) {
	for _, tc := range []struct {
		format, file string
	}{
		{"table", "golden.txt"},
		{"json", "golden.json"},
		{"csv", "golden.csv"},
	} {
		t.Run(tc.format, func(t *testing.T) {
			enc, err := NewEncoder(tc.format)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := enc.Encode(&buf, goldenResult()); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
					tc.format, path, buf.Bytes(), want)
			}
		})
	}
}

func TestEncodeAllJSONArray(t *testing.T) {
	// The JSON shape must not depend on the run count: always an array.
	for _, rs := range [][]*Result{
		nil,
		{goldenResult()},
		{goldenResult(), goldenResult()},
	} {
		var buf bytes.Buffer
		if err := EncodeAll(&buf, "json", rs); err != nil {
			t.Fatal(err)
		}
		s := strings.TrimSpace(buf.String())
		if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
			t.Errorf("%d JSON results should encode as an array, got %.40s...", len(rs), s)
		}
	}
}

func TestValueText(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{String("x"), "x"},
		{Int(-3), "-3"},
		{Float(1.25, 1), "1.2"},
		{Float(1.25, 3), "1.250"},
		{Float(math.NaN(), 2), "N.A."},
		{Float(math.Inf(1), 2), "N.A."},
		{NA(), "N.A."},
	} {
		if got := tc.v.Text(); got != tc.want {
			t.Errorf("Text(%+v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestNaNMarshalsNull(t *testing.T) {
	b, err := Float(math.NaN(), 2).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "null" {
		t.Errorf("NaN marshals to %s, want null", b)
	}
}

func TestValidate(t *testing.T) {
	if err := goldenResult().Validate(); err != nil {
		t.Errorf("golden result invalid: %v", err)
	}
	if err := New("empty").Validate(); err == nil {
		t.Error("empty result should fail validation")
	}
	bad := New("bad")
	bad.AddTable("t", "a", "b").Rows = [][]Value{{String("only-one")}}
	if err := bad.Validate(); err == nil {
		t.Error("ragged row should fail validation")
	}
}

func TestRowWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched row width should panic")
		}
	}()
	r := New("x")
	r.AddTable("t", "a", "b").Row(String("only-one"))
}

func TestUnknownFormat(t *testing.T) {
	if _, err := NewEncoder("yaml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	// The tracked bench baseline is decoded back for regression
	// comparison, so a result must survive encode → decode with every
	// cell's numeric payload (and N.A.-ness) intact.
	r := goldenResult()
	r.Meta.Rev = "abc123def456"
	r.Meta.GoVersion = "go1.24.0"
	var buf bytes.Buffer
	enc, _ := NewEncoder("json")
	if err := enc.Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != r.Meta {
		t.Errorf("meta round trip: got %+v, want %+v", got.Meta, r.Meta)
	}
	if len(got.Tables) != len(r.Tables) {
		t.Fatalf("tables: got %d, want %d", len(got.Tables), len(r.Tables))
	}
	for ti, tb := range r.Tables {
		gt := got.Tables[ti]
		for ri, row := range tb.Rows {
			for ci, want := range row {
				cell := gt.Rows[ri][ci]
				if want.IsNA() != cell.IsNA() {
					t.Errorf("table %d cell (%d,%d): NA mismatch", ti, ri, ci)
					continue
				}
				if want.Kind == KindString && cell.Str != want.Str {
					t.Errorf("cell (%d,%d) = %q, want %q", ri, ci, cell.Str, want.Str)
				}
				wv, wok := want.Float64()
				gv, gok := cell.Float64()
				if wok != gok || wv != gv {
					t.Errorf("cell (%d,%d) value = %v,%v want %v,%v", ri, ci, gv, gok, wv, wok)
				}
			}
		}
	}
}

func TestValueFloat64(t *testing.T) {
	if v, ok := Int(7).Float64(); !ok || v != 7 {
		t.Errorf("Int.Float64 = %v,%v", v, ok)
	}
	if v, ok := Float(2.5, 1).Float64(); !ok || v != 2.5 {
		t.Errorf("Float.Float64 = %v,%v", v, ok)
	}
	if _, ok := NA().Float64(); ok {
		t.Error("NA has a Float64")
	}
	if _, ok := String("x").Float64(); ok {
		t.Error("String has a Float64")
	}
	if _, ok := Float(math.NaN(), 1).Float64(); ok {
		t.Error("NaN float has a Float64")
	}
}
