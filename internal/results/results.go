// Package results defines the uniform structured-result model every
// experiment in the harness returns: a Result carries run metadata
// (experiment name, seed, scale, wall time) plus typed payload tables and
// series with named columns, and pluggable encoders render it as a
// fixed-width text table, JSON, or CSV.
//
// The model exists so that adding an experiment means registering one
// Run function, not inventing another ad-hoc result struct with its own
// String method, and so the CLI and the bench trajectory get
// machine-readable output for free.
package results

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Meta identifies one experiment run.
type Meta struct {
	// Experiment is the registered experiment name (e.g. "fig6").
	Experiment string `json:"experiment"`
	// Desc is the experiment's one-line description.
	Desc string `json:"desc,omitempty"`
	// Seed is the run's RNG seed; runs are deterministic per seed.
	Seed uint64 `json:"seed"`
	// Nodes is the effective experiment node count.
	Nodes int `json:"nodes"`
	// PPN is the effective processes-per-node where applicable.
	PPN int `json:"ppn,omitempty"`
	// Wall is the host wall-clock time the run took.
	Wall time.Duration `json:"wall_ns"`
	// Rev identifies the code revision that produced the result (git
	// SHA), so archived results — the tracked perf baseline above all —
	// are attributable to a commit.
	Rev string `json:"rev,omitempty"`
	// GoVersion is the toolchain the producing binary was built with.
	GoVersion string `json:"go_version,omitempty"`
	// SimlintClean records whether the simlint static-invariant suite
	// (internal/lint) reported zero undirectived diagnostics over the
	// producing tree — i.e. whether the source-level alloc/determinism
	// gate held at generation time. Nil means the check was not run
	// (ordinary experiment results); benchreport stamps it on the perf
	// baseline.
	SimlintClean *bool `json:"simlint_clean,omitempty"`
	// SpineFuncs counts the functions simlint's call-graph analysis
	// proved reachable from the //simlint:hotpath roots at generation
	// time — the audited per-packet code surface the allocs/unit figures
	// below cover. A growing spine with flat allocs is broadening
	// coverage; a shrinking one means hot code fell off the audit.
	// Zero means the check was not run.
	SpineFuncs int `json:"spine_funcs,omitempty"`
}

// Kind discriminates the Value variants.
type Kind uint8

const (
	// KindNA marks a cell with no value (e.g. a workload that cannot run
	// at the cell's node count).
	KindNA Kind = iota
	// KindString is a label cell.
	KindString
	// KindInt is an integer cell.
	KindInt
	// KindFloat is a floating-point cell with a text-rendering precision.
	KindFloat
)

// Value is one typed table cell. Text rendering applies the stored
// precision; JSON and CSV emit the raw value.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
	Num  float64
	// Prec is the number of fractional digits used by the text encoder
	// for KindFloat cells.
	Prec int
}

// String returns a label cell.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int returns an integer cell.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float returns a numeric cell rendered with prec fractional digits in
// text output.
func Float(v float64, prec int) Value { return Value{Kind: KindFloat, Num: v, Prec: prec} }

// NA returns a not-available cell ("N.A." in text, null in JSON, empty
// in CSV).
func NA() Value { return Value{Kind: KindNA} }

// IsNA reports whether the cell has no value (including NaN floats).
func (v Value) IsNA() bool {
	return v.Kind == KindNA || (v.Kind == KindFloat && (math.IsNaN(v.Num) || math.IsInf(v.Num, 0)))
}

// Text renders the cell for the fixed-width encoder.
func (v Value) Text() string {
	switch {
	case v.IsNA():
		return "N.A."
	case v.Kind == KindString:
		return v.Str
	case v.Kind == KindInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return strconv.FormatFloat(v.Num, 'f', v.Prec, 64)
	}
}

// csv renders the cell for the CSV encoder: raw full-precision values,
// empty for N.A.
func (v Value) csv() string {
	switch {
	case v.IsNA():
		return ""
	case v.Kind == KindString:
		return v.Str
	case v.Kind == KindInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// MarshalJSON emits the raw value: string, number, or null for N.A.
func (v Value) MarshalJSON() ([]byte, error) {
	switch {
	case v.IsNA():
		return []byte("null"), nil
	case v.Kind == KindString:
		return strconv.AppendQuote(nil, v.Str), nil
	case v.Kind == KindInt:
		return strconv.AppendInt(nil, v.Int, 10), nil
	default:
		return strconv.AppendFloat(nil, v.Num, 'g', -1, 64), nil
	}
}

// UnmarshalJSON is the inverse of MarshalJSON, so archived results (e.g.
// a committed bench baseline) round-trip: null → N.A., quoted → string,
// integral number without exponent/fraction → int, otherwise float.
func (v *Value) UnmarshalJSON(b []byte) error {
	s := string(b)
	switch {
	case s == "null":
		*v = NA()
		return nil
	case len(b) > 0 && b[0] == '"':
		str, err := strconv.Unquote(s)
		if err != nil {
			return fmt.Errorf("results: bad string cell %s: %w", s, err)
		}
		*v = String(str)
		return nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		*v = Int(i)
		return nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("results: bad cell %s: %w", s, err)
	}
	*v = Float(f, -1)
	return nil
}

// Float64 returns the cell's numeric value (int or float kinds) and
// whether it has one.
func (v Value) Float64() (float64, bool) {
	switch {
	case v.IsNA():
		return 0, false
	case v.Kind == KindInt:
		return float64(v.Int), true
	case v.Kind == KindFloat:
		return v.Num, true
	}
	return 0, false
}

// Table is a named grid of typed cells under named columns.
type Table struct {
	Name    string    `json:"name,omitempty"`
	Columns []string  `json:"columns"`
	Rows    [][]Value `json:"rows"`
}

// Row appends one row; the cell count must match the column count.
func (t *Table) Row(cells ...Value) *Table {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("results: table %q row has %d cells, want %d",
			t.Name, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
	return t
}

// Point is one sample of a Series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is a named (x, y) trace, e.g. bandwidth over time.
type Series struct {
	Name   string  `json:"name"`
	XUnit  string  `json:"x_unit,omitempty"`
	YUnit  string  `json:"y_unit,omitempty"`
	Points []Point `json:"points"`
}

// Result is the uniform payload every experiment returns.
type Result struct {
	Meta   Meta     `json:"meta"`
	Tables []*Table `json:"tables,omitempty"`
	Series []Series `json:"series,omitempty"`
}

// New returns an empty result for the named experiment.
func New(experiment string) *Result {
	return &Result{Meta: Meta{Experiment: experiment}}
}

// AddTable appends and returns an empty table with the given columns.
func (r *Result) AddTable(name string, columns ...string) *Table {
	t := &Table{Name: name, Columns: columns}
	r.Tables = append(r.Tables, t)
	return t
}

// AddSeries appends a series to the result.
func (r *Result) AddSeries(s Series) { r.Series = append(r.Series, s) }

// Validate checks structural invariants: every table has columns and
// every row matches its table's width.
func (r *Result) Validate() error {
	if len(r.Tables) == 0 && len(r.Series) == 0 {
		return fmt.Errorf("results: %q has no payload", r.Meta.Experiment)
	}
	for _, t := range r.Tables {
		if len(t.Columns) == 0 {
			return fmt.Errorf("results: table %q has no columns", t.Name)
		}
		for i, row := range t.Rows {
			if len(row) != len(t.Columns) {
				return fmt.Errorf("results: table %q row %d has %d cells, want %d",
					t.Name, i, len(row), len(t.Columns))
			}
		}
	}
	return nil
}
