package workloads

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testJob(t testing.TB, n int) (*fabric.Network, *mpi.Job) {
	t.Helper()
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 8, GlobalPerPair: 4,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 11)
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	return net, mpi.NewJob(net, nodes, mpi.JobOpts{Stack: mpi.MPI})
}

func TestDecompose3(t *testing.T) {
	cases := []int{1, 2, 4, 8, 12, 27, 64, 100, 128}
	for _, n := range cases {
		x, y, z := decompose3(n)
		if x*y*z != n {
			t.Errorf("decompose3(%d) = %d*%d*%d", n, x, y, z)
		}
		if x > y || y > z {
			t.Errorf("decompose3(%d) not ordered: %d,%d,%d", n, x, y, z)
		}
	}
}

func TestMicrobenchesComplete(t *testing.T) {
	benches := []Microbench{
		PingPongBench(8), AllreduceBench(1024), AlltoallBench(8),
		AlltoallBench(512), BarrierBench(), BroadcastBench(4096),
		Halo3DBench(128), Sweep3DBench(128), IncastBench(1024),
	}
	for _, b := range benches {
		net, j := testJob(t, 8)
		fin := false
		b.Run(j, func() { fin = true })
		net.Eng.Run()
		if !fin {
			t.Errorf("%s never completed", b.Label())
		}
	}
}

func TestFig9MicrobenchList(t *testing.T) {
	ms := Fig9Microbenches()
	if len(ms) != 39 {
		t.Errorf("Fig. 9 has %d microbenchmark columns, want 39", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		if names[m.Label()] {
			t.Errorf("duplicate column %q", m.Label())
		}
		names[m.Label()] = true
	}
}

func TestMeasureIterationsConverges(t *testing.T) {
	net, j := testJob(t, 4)
	_ = net
	s := MeasureIterations(j, BarrierBench(), 10, 200)
	if s.Len() < 10 {
		t.Fatalf("only %d iterations", s.Len())
	}
	if s.Median() <= 0 {
		t.Error("non-positive median")
	}
}

func TestIncastAggressorGeneratesTraffic(t *testing.T) {
	net, j := testJob(t, 16)
	a := StartIncast(j, AggressorMsgBytes, 2)
	net.RunFor(500 * sim.Microsecond)
	if net.BytesDelivered == 0 {
		t.Fatal("incast aggressor moved no bytes")
	}
	before := net.BytesDelivered
	a.Stop()
	net.Eng.Run() // wind down
	net.RunFor(time1ms)
	after := net.BytesDelivered
	// After stopping, only in-flight residue lands.
	if after-before > before {
		t.Errorf("aggressor kept flooding after Stop: %d -> %d", before, after)
	}
}

const time1ms = sim.Millisecond

func TestAlltoallAggressor(t *testing.T) {
	net, j := testJob(t, 16)
	a := StartAlltoall(j, 4096)
	net.RunFor(500 * sim.Microsecond)
	if net.BytesDelivered == 0 {
		t.Fatal("alltoall aggressor moved no bytes")
	}
	a.Stop()
}

func TestBurstyAggressorRespectsGap(t *testing.T) {
	// With an enormous gap, traffic after the first bursts should stop.
	net, j := testJob(t, 16)
	a := StartBurstyIncast(j, 4096, 2, sim.Second)
	net.RunFor(2 * sim.Millisecond)
	first := net.BytesDelivered
	if first == 0 {
		t.Fatal("no initial burst")
	}
	net.RunFor(5 * sim.Millisecond)
	if net.BytesDelivered != first {
		t.Error("traffic flowed during the gap")
	}
	a.Stop()
	// Dense bursts approximate persistent congestion.
	net2, j2 := testJob(t, 16)
	b := StartBurstyIncast(j2, 4096, 1000, sim.Microsecond)
	net2.RunFor(2 * sim.Millisecond)
	if net2.BytesDelivered <= first {
		t.Error("dense bursts moved less than sparse ones")
	}
	b.Stop()
}

func TestHPCAppsIterate(t *testing.T) {
	for _, app := range HPCApps() {
		net, j := testJob(t, 8)
		rng := sim.NewRNG(5)
		fin := false
		app.Iterate(j, rng, func() { fin = true })
		net.Eng.Run()
		if !fin {
			t.Errorf("%s iteration never completed", app.Name)
		}
	}
}

func TestDCAppsIterate(t *testing.T) {
	for _, app := range DCApps() {
		net, j := testJob(t, 2)
		rng := sim.NewRNG(6)
		fin := false
		start := net.Now()
		app.Iterate(j, rng, func() { fin = true })
		net.Eng.Run()
		if !fin {
			t.Fatalf("%s request never completed", app.Name)
		}
		elapsed := net.Now() - start
		if elapsed <= 0 {
			t.Errorf("%s elapsed = %v", app.Name, elapsed)
		}
	}
}

func TestTailbenchLatencyOrdering(t *testing.T) {
	// Silo (us-scale) must be far faster than Sphinx (s-scale): the
	// communication/computation ratios drive Fig. 8.
	measure := func(app App) sim.Time {
		net, j := testJob(t, 2)
		rng := sim.NewRNG(7)
		var total sim.Time
		for i := 0; i < 5; i++ {
			start := net.Now()
			fin := false
			app.Iterate(j, rng, func() { fin = true })
			net.Eng.RunWhile(func() bool { return !fin })
			total += net.Now() - start
		}
		return total / 5
	}
	silo, sphinx, xapian, img := measure(Silo()), measure(Sphinx()), measure(Xapian()), measure(ImgDNN())
	if !(silo < img && img < xapian && xapian < sphinx) {
		t.Errorf("latency ordering broken: silo=%v img=%v xapian=%v sphinx=%v",
			silo, img, xapian, sphinx)
	}
	// Rough absolute scales from Fig. 8 (isolated, Slingshot).
	if silo < 50*sim.Microsecond || silo > sim.Millisecond {
		t.Errorf("silo = %v, want ~0.2-0.5ms", silo)
	}
	if sphinx < 500*sim.Millisecond || sphinx > 4*sim.Second {
		t.Errorf("sphinx = %v, want ~1-3s", sphinx)
	}
}

func TestAppsListAndFlags(t *testing.T) {
	apps := Apps()
	if len(apps) != 9 {
		t.Fatalf("%d apps, want 9 (Table I)", len(apps))
	}
	pot := map[string]bool{"MILC": true, "HPCG": true}
	for _, a := range apps {
		if a.PowerOfTwoOnly != pot[a.Name] {
			t.Errorf("%s PowerOfTwoOnly = %v", a.Name, a.PowerOfTwoOnly)
		}
	}
	hpc := 0
	for _, a := range apps {
		if a.HPC {
			hpc++
		}
	}
	if hpc != 5 {
		t.Errorf("%d HPC apps, want 5", hpc)
	}
}
