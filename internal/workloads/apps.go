package workloads

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// App is a proxy for one of the Table I applications: a loop of computation
// phases and the application's characteristic communication pattern. The
// compute/communication ratio and message-size mix are what determine how
// much congestion hurts each application (§III-A), so they are the
// calibrated quantities here.
type App struct {
	Name string
	// HPC is true for the HPC applications, false for datacenter (DC).
	HPC bool
	// PowerOfTwoOnly marks apps that only run on power-of-two node counts
	// (MILC and HPCG, the N.A. cells of Fig. 11).
	PowerOfTwoOnly bool
	// Iterate performs one application iteration and calls done when the
	// slowest rank finishes it.
	Iterate func(j *mpi.Job, rng *sim.RNG, done func())
}

// compute schedules a computation phase of roughly d with a little
// imbalance, then calls next. The continuation is an arbitrary app-level
// closure, so this rides the AfterFunc shim: one compute phase per
// iteration is nowhere near the packet hot path.
func compute(j *mpi.Job, rng *sim.RNG, d sim.Time, next func()) {
	jit := 1 + 0.05*(rng.Float64()-0.5)
	//simlint:allocok -- one compute-phase continuation per app iteration, far off the per-packet spine
	j.Net.Eng.AfterFunc(sim.Time(float64(d)*jit), next)
}

// MILC: su3_rmd QCD kernel — 4D grid decomposition, point-to-point
// neighbour halo exchanges plus global reductions.
func MILC() App {
	return App{
		Name: "MILC", HPC: true, PowerOfTwoOnly: true,
		Iterate: func(j *mpi.Job, rng *sim.RNG, done func()) {
			compute(j, rng, 320*sim.Microsecond, func() {
				RunHalo3D(j, 16*1024, func() {
					j.Allreduce(8, func(sim.Time) { done() })
				})
			})
		},
	}
}

// HPCG: preconditioned CG — stencil halo exchanges and two dot-product
// reductions per iteration.
func HPCG() App {
	return App{
		Name: "HPCG", HPC: true, PowerOfTwoOnly: true,
		Iterate: func(j *mpi.Job, rng *sim.RNG, done func()) {
			compute(j, rng, 220*sim.Microsecond, func() {
				RunHalo3D(j, 8*1024, func() {
					j.Allreduce(8, func(sim.Time) {
						j.Allreduce(8, func(sim.Time) { done() })
					})
				})
			})
		},
	}
}

// LAMMPS: molecular dynamics — neighbour exchanges of mid-size messages
// plus a reduction; the paper calls out blocking and non-blocking
// point-to-point between nodes at different distances.
func LAMMPS() App {
	return App{
		Name: "LAMMPS", HPC: true,
		Iterate: func(j *mpi.Job, rng *sim.RNG, done func()) {
			compute(j, rng, 450*sim.Microsecond, func() {
				RunHalo3D(j, 64*1024, func() {
					j.Allreduce(8, func(sim.Time) { done() })
				})
			})
		},
	}
}

// FFT: 3D FFT — the transposes are all-to-alls; broadcasts and scatters
// appear at setup (amortized away here).
func FFT() App {
	return App{
		Name: "FFT", HPC: true,
		Iterate: func(j *mpi.Job, rng *sim.RNG, done func()) {
			per := int64(512 * 1024 / max(1, j.Size())) // transpose slab per pair
			if per < 64 {
				per = 64
			}
			compute(j, rng, 120*sim.Microsecond, func() {
				j.Alltoall(per, func(sim.Time) {
					j.Alltoall(per, func(sim.Time) { done() })
				})
			})
		},
	}
}

// ResnetProxy: the Deep500 residual-network proxy — large non-blocking
// gradient allreduces overlapped with long compute (§Table I).
func ResnetProxy() App {
	return App{
		Name: "resnet-proxy", HPC: true,
		Iterate: func(j *mpi.Job, rng *sim.RNG, done func()) {
			compute(j, rng, 1800*sim.Microsecond, func() {
				j.Allreduce(1<<20, func(sim.Time) { done() })
			})
		},
	}
}

// HPCApps returns the five HPC victim applications of Table I.
func HPCApps() []App {
	return []App{MILC(), HPCG(), LAMMPS(), FFT(), ResnetProxy()}
}

// tailbenchApp builds a single-client single-server latency-critical
// application: the client sends a request, the server runs a heavy-tailed
// service time, then replies; done fires when the response lands back at
// the client. Congestion hurts exactly in proportion to how much of the
// end-to-end time is network (§III-A: Sphinx degrades least because its
// communication-to-computation ratio is lowest).
func tailbenchApp(name string, service sim.Time, sigma float64, reqBytes, respBytes int64) App {
	return App{
		Name: name, HPC: false,
		Iterate: func(j *mpi.Job, rng *sim.RNG, done func()) {
			client, server := 0, j.Size()-1
			j.Send(client, server, reqBytes, func(sim.Time) {
				//simlint:allocok -- one service-time continuation per request; the request itself is already a closure chain
				j.Net.Eng.AfterFunc(rng.LogNormal(service, sigma), func() {
					j.Send(server, client, respBytes, func(sim.Time) { done() })
				})
			})
		},
	}
}

// Silo: in-memory OLTP — microsecond-scale transactions; the fastest
// Tailbench app and hence the most congestion-sensitive.
func Silo() App { return tailbenchApp("silo", 180*sim.Microsecond, 0.25, 512, 2048) }

// Sphinx: speech recognition — seconds of compute per query; the least
// congestion-sensitive.
func Sphinx() App { return tailbenchApp("sphinx", 1300*sim.Millisecond, 0.20, 4096, 1024) }

// Xapian: search over a Wikipedia index — millisecond-scale queries.
func Xapian() App { return tailbenchApp("xapian", 3800*sim.Microsecond, 0.35, 1024, 16*1024) }

// ImgDNN: handwriting recognition by DNN autoencoder — ~1 ms inferences.
func ImgDNN() App { return tailbenchApp("img-dnn", 950*sim.Microsecond, 0.30, 8*1024, 512) }

// DCApps returns the four Tailbench datacenter applications of Table I.
func DCApps() []App { return []App{Silo(), Sphinx(), Xapian(), ImgDNN()} }

// DCAppsScaled returns the Tailbench proxies with service times multiplied
// by scale. The congestion grids run with scale = 0.01 so that Sphinx's
// seconds-long queries stay simulable while the property that drives
// Fig. 8/9 — the ordering of communication-to-computation ratios across
// the four apps — is preserved exactly (see EXPERIMENTS.md).
func DCAppsScaled(scale float64) []App {
	if scale <= 0 || scale == 1 {
		return DCApps()
	}
	t := func(d sim.Time) sim.Time { return sim.Time(float64(d) * scale) }
	return []App{
		tailbenchApp("silo", t(180*sim.Microsecond), 0.25, 512, 2048),
		tailbenchApp("sphinx", t(1300*sim.Millisecond), 0.20, 4096, 1024),
		tailbenchApp("xapian", t(3800*sim.Microsecond), 0.35, 1024, 16*1024),
		tailbenchApp("img-dnn", t(950*sim.Microsecond), 0.30, 8*1024, 512),
	}
}

// Apps returns all nine victim applications in Fig. 9's column order.
func Apps() []App { return append(HPCApps(), DCApps()...) }

// AppsScaled is Apps with Tailbench service times scaled (see
// DCAppsScaled).
func AppsScaled(scale float64) []App { return append(HPCApps(), DCAppsScaled(scale)...) }
