// Package workloads implements the traffic generators of the paper's
// evaluation (§III): the GPCNet-style congestion aggressors (incast for
// endpoint congestion, all-to-all for intermediate congestion, both with
// 128 KiB messages and optional bursts), the ember microbenchmark patterns
// (halo3d, sweep3d, incast), proxies for the five HPC applications and the
// four Tailbench datacenter applications of Table I, and the victim
// measurement protocol (max-across-ranks per iteration, run until the 95%
// CI of the median is within 5%).
package workloads

import (
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

// AggressorMsgBytes is the congestor message size used throughout §III-A,
// chosen from characterization studies showing ~1e5-byte average messages.
const AggressorMsgBytes = 128 * 1024

// Aggressor is a continuously running congestion generator.
type Aggressor struct {
	stopped bool
	// InFlight counts currently outstanding operations (diagnostics).
	InFlight int
}

// Stop makes the aggressor wind down: outstanding operations complete but
// nothing new is posted.
func (a *Aggressor) Stop() { a.stopped = true }

// incastGroupSize sets the many-to-one fan-in of each incast group. Groups
// are *strided* across the aggressor's node list (group g holds every G-th
// node), exactly so each group's flows traverse the whole fabric — GPCNet's
// congestor spreads its source/target pairs over the allocation the same
// way; contiguous groups would keep all congestion inside one switch
// neighbourhood.
const incastGroupSize = 16

// incastStride returns the strided node subsets for a job.
func incastStride(j *mpi.Job, groupSize int) [][]int {
	n := j.Size()
	g := (n + groupSize - 1) / groupSize
	if g < 1 {
		g = 1
	}
	sets := make([][]int, g)
	for r := 0; r < n; r++ {
		sets[r%g] = append(sets[r%g], r)
	}
	return sets
}

// StartIncast launches the endpoint-congestion aggressor: within each
// strided group, every rank repeatedly MPI_Puts msgBytes to the group's
// first rank, keeping `window` operations outstanding per rank.
func StartIncast(j *mpi.Job, msgBytes int64, window int) *Aggressor {
	if window <= 0 {
		window = 2
	}
	a := &Aggressor{}
	for _, set := range incastStride(j, incastGroupSize) {
		if len(set) < 2 {
			continue
		}
		target := set[0]
		for _, r := range set[1:] {
			r := r
			var post func()
			post = func() {
				if a.stopped {
					a.InFlight--
					return
				}
				j.Put(r, target, msgBytes, func(sim.Time) { post() })
			}
			for w := 0; w < window; w++ {
				a.InFlight++
				post()
			}
		}
	}
	return a
}

// alltoallGroupSize bounds the sub-communicator size of the intermediate
// congestor so one round stays tractable while still loading the fabric.
const alltoallGroupSize = 8

// StartAlltoall launches the intermediate-congestion aggressor: strided
// groups of ranks run back-to-back MPI_Sendrecv-based all-to-alls of
// msgBytes, so every group's exchanges cross the full breadth of the
// fabric.
func StartAlltoall(j *mpi.Job, msgBytes int64) *Aggressor {
	a := &Aggressor{}
	for _, set := range incastStride(j, alltoallGroupSize) {
		if len(set) < 2 {
			continue
		}
		sub := subJobOf(j, set)
		var round func()
		//simlint:allocok -- one closure per aggressor group at launch, reused across rounds
		round = func() {
			if a.stopped {
				a.InFlight--
				return
			}
			sub.Alltoall(msgBytes, func(sim.Time) { round() }) //simlint:allocok -- one completion callback per all-to-all round (collective-level)
		}
		a.InFlight++
		round()
	}
	return a
}

// burstRank is one source rank of the bursty incast: its own burst
// countdown plus the idle-gap event handler, allocated once per rank so
// the steady state schedules gap wakeups without any per-burst closures.
type burstRank struct {
	a         *Aggressor
	j         *mpi.Job
	r, target int
	msgBytes  int64
	burstSize int
	left      int
	gap       sim.Time
	onPut     func(sim.Time)
}

// OnEvent restarts the burst after the idle gap.
func (b *burstRank) OnEvent(_ *sim.Engine, _ *sim.Event) { b.step(b.burstSize) }

func (b *burstRank) step(left int) {
	if b.a.stopped {
		b.a.InFlight--
		return
	}
	if left == 0 {
		b.j.Net.Eng.After(b.gap, b, 0, nil)
		return
	}
	b.left = left
	b.j.Put(b.r, b.target, b.msgBytes, b.onPut)
}

// StartBurstyIncast is the Fig. 12 congestor: bursts of burstSize messages
// per rank followed by an idle gap, repeated until stopped.
func StartBurstyIncast(j *mpi.Job, msgBytes int64, burstSize int, gap sim.Time) *Aggressor {
	if burstSize <= 0 {
		burstSize = 1
	}
	a := &Aggressor{}
	for _, set := range incastStride(j, incastGroupSize) {
		if len(set) < 2 {
			continue
		}
		target := set[0]
		for _, r := range set[1:] {
			b := &burstRank{
				a: a, j: j, r: r, target: target,
				msgBytes: msgBytes, burstSize: burstSize, gap: gap,
			}
			b.onPut = func(sim.Time) { b.step(b.left - 1) }
			a.InFlight++
			b.step(burstSize)
		}
	}
	return a
}

// subJobOf views an arbitrary rank subset of j as its own communicator,
// one rank per selected rank's node.
func subJobOf(j *mpi.Job, ranks []int) *mpi.Job {
	nodes := make([]topology.NodeID, len(ranks))
	for i, r := range ranks {
		nodes[i] = j.Node(r)
	}
	return mpi.NewJob(j.Net, nodes, mpi.JobOpts{
		PPN: 1, Stack: j.Stack, Class: j.Class, Tag: j.Tag,
	})
}
