package workloads

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Microbench is one victim microbenchmark column of Fig. 9: a named
// operation run repeatedly under measurement.
type Microbench struct {
	Name string
	Size int64
	// Run performs one iteration on the job and calls done when the
	// slowest rank finishes.
	Run func(j *mpi.Job, done func())
}

// PingPongBench bounces Size bytes between ranks 0 and 1.
func PingPongBench(size int64) Microbench {
	return Microbench{
		Name: "pingpong", Size: size,
		Run: func(j *mpi.Job, done func()) {
			j.PingPong(0, j.Size()-1, size, 1, func([]sim.Time) { done() })
		},
	}
}

// AllreduceBench reduces Size bytes across the job.
func AllreduceBench(size int64) Microbench {
	return Microbench{
		Name: "allreduce", Size: size,
		Run: func(j *mpi.Job, done func()) {
			j.Allreduce(size, func(sim.Time) { done() })
		},
	}
}

// AlltoallBench exchanges Size bytes per pair.
func AlltoallBench(size int64) Microbench {
	return Microbench{
		Name: "alltoall", Size: size,
		Run: func(j *mpi.Job, done func()) {
			j.Alltoall(size, func(sim.Time) { done() })
		},
	}
}

// BarrierBench is a dissemination barrier.
func BarrierBench() Microbench {
	return Microbench{
		Name: "barrier",
		Run: func(j *mpi.Job, done func()) {
			j.Barrier(func(sim.Time) { done() })
		},
	}
}

// BroadcastBench broadcasts Size bytes from rank 0.
func BroadcastBench(size int64) Microbench {
	return Microbench{
		Name: "broadcast", Size: size,
		Run: func(j *mpi.Job, done func()) {
			j.Bcast(size, 0, func(sim.Time) { done() })
		},
	}
}

// Halo3DBench is the ember halo3d pattern: each rank exchanges Size bytes
// with its neighbors in a 3D decomposition of the job.
func Halo3DBench(size int64) Microbench {
	return Microbench{
		Name: "hal", Size: size,
		Run: func(j *mpi.Job, done func()) {
			RunHalo3D(j, size, done)
		},
	}
}

// Sweep3DBench is the ember sweep3d wavefront pattern.
func Sweep3DBench(size int64) Microbench {
	return Microbench{
		Name: "swp", Size: size,
		Run: func(j *mpi.Job, done func()) {
			RunSweep3D(j, size, done)
		},
	}
}

// IncastBench is the ember incast pattern: every rank sends Size bytes to
// rank 0 once.
func IncastBench(size int64) Microbench {
	return Microbench{
		Name: "inc", Size: size,
		Run: func(j *mpi.Job, done func()) {
			n := j.Size()
			if n == 1 {
				done()
				return
			}
			left := n - 1
			for r := 1; r < n; r++ {
				j.Send(r, 0, size, func(sim.Time) {
					left--
					if left == 0 {
						done()
					}
				})
			}
		},
	}
}

// Fig9Microbenches returns the microbenchmark victim columns of Fig. 9.
func Fig9Microbenches() []Microbench {
	var out []Microbench
	for _, s := range []int64{8, 128, 1024, 16 * 1024, 128 * 1024, 1 << 20, 4 << 20, 16 << 20} {
		out = append(out, PingPongBench(s))
	}
	for _, s := range []int64{8, 128, 1024, 16 * 1024, 128 * 1024, 1 << 20, 4 << 20} {
		out = append(out, AllreduceBench(s))
	}
	for _, s := range []int64{8, 128, 1024, 16 * 1024, 128 * 1024, 1 << 20, 4 << 20} {
		out = append(out, AlltoallBench(s))
	}
	out = append(out, BarrierBench())
	for _, s := range []int64{8, 128, 1024, 16 * 1024, 128 * 1024, 1 << 20, 4 << 20, 16 << 20} {
		out = append(out, BroadcastBench(s))
	}
	out = append(out, Halo3DBench(128), Halo3DBench(1024))
	out = append(out, Sweep3DBench(128), Sweep3DBench(512))
	for _, s := range []int64{8, 128, 1024, 16 * 1024} {
		out = append(out, IncastBench(s))
	}
	return out
}

// Label renders the column label used in the Fig. 9 heatmap.
func (m Microbench) Label() string {
	if m.Size == 0 {
		return m.Name
	}
	return fmt.Sprintf("%s/%s", m.Name, sizeLabel(m.Size))
}

func sizeLabel(s int64) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dMiB", s>>20)
	case s >= 1024:
		return fmt.Sprintf("%dKiB", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}

// decompose3 factors n into three near-cubic factors px*py*pz = n.
func decompose3(n int) (int, int, int) {
	best := [3]int{1, 1, n}
	bestScore := n * n
	for px := 1; px*px*px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rem := n / px
		for py := px; py*py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			score := pz - px
			if score < bestScore {
				bestScore = score
				best = [3]int{px, py, pz}
			}
		}
	}
	return best[0], best[1], best[2]
}

// RunHalo3D performs one halo exchange: each rank sendrecvs size bytes with
// its up-to-six face neighbors of the 3D decomposition.
func RunHalo3D(j *mpi.Job, size int64, done func()) {
	n := j.Size()
	px, py, pz := decompose3(n)
	coord := func(r int) (int, int, int) {
		return r % px, (r / px) % py, r / (px * py)
	}
	rank := func(x, y, z int) int { return x + y*px + z*px*py }

	// One phase: all neighbor exchanges at once (nonblocking + waitall).
	var specs []struct{ from, to int }
	for r := 0; r < n; r++ {
		x, y, z := coord(r)
		for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			nx, ny, nz := x+d[0], y+d[1], z+d[2]
			if nx < 0 || nx >= px || ny < 0 || ny >= py || nz < 0 || nz >= pz {
				continue
			}
			specs = append(specs, struct{ from, to int }{r, rank(nx, ny, nz)})
		}
	}
	if len(specs) == 0 {
		done()
		return
	}
	left := len(specs)
	for _, s := range specs {
		j.Send(s.from, s.to, size, func(sim.Time) {
			left--
			if left == 0 {
				done()
			}
		})
	}
}

// RunSweep3D performs one wavefront sweep over the 2D processor grid (the
// ember sweep3d communication skeleton): rank (i,j) receives from west and
// north, then sends to east and south; the diagonal wavefront pipelines.
func RunSweep3D(j *mpi.Job, size int64, done func()) {
	n := j.Size()
	px, py, _ := decompose3(n)
	// Use a 2D grid px x (n/px) when possible.
	if px*py != n {
		py = n / px
	}
	if px*py != n || px*py == 0 {
		px, py = 1, n
	}
	rank := func(x, y int) int { return x + y*px }
	var total int
	completed := func() {
		total--
		if total == 0 {
			done()
		}
	}
	// Phased by anti-diagonal: messages from diagonal d to d+1.
	maxDiag := px + py - 2
	if maxDiag == 0 {
		done()
		return
	}
	var phases [][]struct{ from, to int }
	for d := 0; d < maxDiag; d++ {
		var ph []struct{ from, to int }
		for x := 0; x < px; x++ {
			y := d - x
			if y < 0 || y >= py {
				continue
			}
			if x+1 < px {
				ph = append(ph, struct{ from, to int }{rank(x, y), rank(x+1, y)})
			}
			if y+1 < py {
				ph = append(ph, struct{ from, to int }{rank(x, y), rank(x, y+1)})
			}
		}
		phases = append(phases, ph)
	}
	for _, ph := range phases {
		total += len(ph)
	}
	if total == 0 {
		done()
		return
	}
	// The wavefront dependency: messages of phase d+1 are posted when the
	// sender's phase-d receives complete. Approximate by chaining phases.
	var runPhase func(d int)
	runPhase = func(d int) {
		if d >= len(phases) {
			return
		}
		left := len(phases[d])
		if left == 0 {
			runPhase(d + 1)
			return
		}
		for _, s := range phases[d] {
			j.Send(s.from, s.to, size, func(sim.Time) {
				completed()
				left--
				if left == 0 {
					runPhase(d + 1)
				}
			})
		}
	}
	runPhase(0)
}

// MeasureIterations runs the benchmark repeatedly following the paper's
// protocol (§III): at least minIters iterations, stopping once the 95% CI
// of the median is within 5% (bounded by maxIters), returning per-iteration
// times in microseconds. The engine runs as needed; concurrent aggressor
// traffic keeps flowing between iterations.
func MeasureIterations(j *mpi.Job, bench Microbench, minIters, maxIters int) *stats.Sample {
	s := stats.NewSample(maxIters)
	net := j.Net
	for i := 0; i < maxIters; i++ {
		start := net.Now()
		fin := false
		bench.Run(j, func() { fin = true })
		net.RunWhile(func() bool { return !fin })
		if !fin {
			// Starved: no events left but the benchmark didn't finish —
			// should never happen; record nothing further.
			break
		}
		s.Add((net.Now() - start).Microseconds())
		if i+1 >= minIters && s.Converged(0.05) {
			break
		}
	}
	return s
}
