// Package topology builds the Dragonfly networks used by Slingshot systems
// (§II-B of the paper): groups of switches that are fully connected
// internally by electrical links and fully connected to every other group
// by optical global links, giving a diameter of three switch-to-switch hops.
//
// The package is purely structural: it knows switches, nodes, links, and
// paths. Queuing, routing decisions and timing live in internal/fabric.
package topology

import (
	"fmt"
)

// SwitchID identifies a switch, numbered group-major:
// id = group*SwitchesPerGroup + indexInGroup.
type SwitchID int

// NodeID identifies an endpoint (a NIC), numbered switch-major:
// id = switch*NodesPerSwitch + portIndex.
type NodeID int

// GroupID identifies a Dragonfly group.
type GroupID int

// LinkKind distinguishes the three cable types of a Slingshot system.
type LinkKind uint8

const (
	// EdgeLink connects a node's NIC to its switch (copper, <= 2.6 m).
	EdgeLink LinkKind = iota
	// LocalLink connects two switches in the same group (copper).
	LocalLink
	// GlobalLink connects switches in different groups (optical, <= 100 m).
	GlobalLink
)

func (k LinkKind) String() string {
	switch k {
	case EdgeLink:
		return "edge"
	case LocalLink:
		return "local"
	case GlobalLink:
		return "global"
	}
	return "unknown"
}

// Link is one bidirectional cable between two switches (or between a node
// and its switch for EdgeLink, in which case A is the switch and Node is
// set). Parallel cables between the same pair are distinct Links.
type Link struct {
	ID   int
	Kind LinkKind
	A, B SwitchID
	Node NodeID // only for EdgeLink; otherwise -1
}

// GroupShape selects the intra-group wiring.
type GroupShape int

const (
	// FullMesh connects every pair of switches in a group directly — the
	// Slingshot arrangement (§II-B).
	FullMesh GroupShape = iota
	// Grid2D arranges a group's switches in a rows x cols grid with
	// all-to-all links inside each row and inside each column — the Aries
	// arrangement (backplane rows, cable columns). Intra-group minimal
	// paths then take up to two hops through shared intermediate links,
	// which is how congestion trees on Aries reach traffic of unrelated
	// jobs inside a group.
	Grid2D
)

func (s GroupShape) String() string {
	if s == Grid2D {
		return "grid2d"
	}
	return "fullmesh"
}

// Config describes a Dragonfly system.
type Config struct {
	Groups           int // number of groups (fully connected amongst themselves)
	SwitchesPerGroup int // switches in each group
	NodesPerSwitch   int // endpoints attached to each switch
	GlobalPerPair    int // parallel global links between every pair of groups
	Radix            int // switch port count; 0 means Rosetta's 64
	Shape            GroupShape
	// GridRows is the row count for Grid2D groups (0 picks a near-square
	// factorization). SwitchesPerGroup must be divisible by it.
	GridRows int
}

// RosettaRadix is the port count of the Rosetta switch.
const RosettaRadix = 64

// Validate checks structural feasibility, including the switch port budget.
func (c Config) Validate() error {
	if c.Groups < 1 || c.SwitchesPerGroup < 1 || c.NodesPerSwitch < 1 {
		return fmt.Errorf("topology: non-positive size in %+v", c)
	}
	if c.Groups > 1 && c.GlobalPerPair < 1 {
		return fmt.Errorf("topology: %d groups but no global links", c.Groups)
	}
	radix := c.Radix
	if radix == 0 {
		radix = RosettaRadix
	}
	rows, cols, err := c.gridDims()
	if err != nil {
		return err
	}
	local := c.SwitchesPerGroup - 1 // full mesh
	if c.Shape == Grid2D {
		local = (rows - 1) + (cols - 1)
	}
	globalPerGroup := c.GlobalPerPair * (c.Groups - 1)
	// Global links are distributed round-robin over a group's switches, so
	// the busiest switch owns ceil(globalPerGroup / SwitchesPerGroup).
	maxGlobal := (globalPerGroup + c.SwitchesPerGroup - 1) / c.SwitchesPerGroup
	need := c.NodesPerSwitch + local + maxGlobal
	if need > radix {
		return fmt.Errorf("topology: switch needs %d ports (%d endpoints + %d local + %d global) but radix is %d",
			need, c.NodesPerSwitch, local, maxGlobal, radix)
	}
	return nil
}

// gridDims resolves the Grid2D row/column dimensions.
func (c Config) gridDims() (rows, cols int, err error) {
	if c.Shape != Grid2D {
		return 1, c.SwitchesPerGroup, nil
	}
	rows = c.GridRows
	if rows == 0 {
		// Near-square factorization.
		for r := 1; r*r <= c.SwitchesPerGroup; r++ {
			if c.SwitchesPerGroup%r == 0 {
				rows = r
			}
		}
	}
	if rows < 1 || c.SwitchesPerGroup%rows != 0 {
		return 0, 0, fmt.Errorf("topology: %d switches per group not divisible into %d rows",
			c.SwitchesPerGroup, rows)
	}
	return rows, c.SwitchesPerGroup / rows, nil
}

// Dragonfly is an immutable built topology. The embedded adjacency,
// linkTable and PathArena provide the dense neighbor tables, the link
// store, Valid/Diameter, and the NonMinimalPaths construction arena
// shared by every backend.
type Dragonfly struct {
	adjacency
	linkTable
	PathArena
	Cfg   Config
	nodes int
	// rows/cols of the intra-group grid (1 x SwitchesPerGroup for
	// FullMesh).
	rows, cols int
	// globalOut[g1][g2] lists link IDs connecting group g1 to group g2.
	globalOut [][][]int
}

// Dragonfly implements the backend-neutral Topology contract.
var _ Topology = (*Dragonfly)(nil)

// Build lets a Config act as a topology.Builder.
func (c Config) Build() (Topology, error) {
	d, err := New(c)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// New builds a Dragonfly from the config. The global links between each
// pair of groups are spread round-robin over the switches of both groups so
// no switch is oversubscribed, mirroring how Slingshot systems cable groups.
func New(cfg Config) (*Dragonfly, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows, cols, _ := cfg.gridDims()
	d := &Dragonfly{
		Cfg:   cfg,
		nodes: cfg.Groups * cfg.SwitchesPerGroup * cfg.NodesPerSwitch,
		rows:  rows,
		cols:  cols,
	}
	d.initAdjacency(cfg.Groups * cfg.SwitchesPerGroup)
	d.globalOut = make([][][]int, cfg.Groups)
	for g := range d.globalOut {
		d.globalOut[g] = make([][]int, cfg.Groups)
	}

	// Edge links: node n attaches to switch n / NodesPerSwitch.
	d.addEdgeLinks(d.nodes, cfg.NodesPerSwitch)

	// Local links: full mesh within each group, or — for Grid2D (Aries) —
	// all-to-all inside each row and inside each column.
	addLocal := func(a, b SwitchID) {
		d.addAdj(a, b, d.addLink(LocalLink, a, b, -1))
	}
	for g := 0; g < cfg.Groups; g++ {
		base := SwitchID(g * cfg.SwitchesPerGroup)
		for i := 0; i < cfg.SwitchesPerGroup; i++ {
			for j := i + 1; j < cfg.SwitchesPerGroup; j++ {
				if cfg.Shape == Grid2D {
					// Switch index i sits at (i/cols, i%cols).
					ri, ci := i/d.cols, i%d.cols
					rj, cj := j/d.cols, j%d.cols
					if ri != rj && ci != cj {
						continue
					}
				}
				addLocal(base+SwitchID(i), base+SwitchID(j))
			}
		}
	}

	// Global links: GlobalPerPair parallel links between every pair of
	// groups, each endpoint assigned round-robin over the group's switches.
	rr := make([]int, cfg.Groups) // next switch index per group
	for g1 := 0; g1 < cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < cfg.Groups; g2++ {
			for k := 0; k < cfg.GlobalPerPair; k++ {
				a := SwitchID(g1*cfg.SwitchesPerGroup + rr[g1])
				b := SwitchID(g2*cfg.SwitchesPerGroup + rr[g2])
				rr[g1] = (rr[g1] + 1) % cfg.SwitchesPerGroup
				rr[g2] = (rr[g2] + 1) % cfg.SwitchesPerGroup
				id := d.addLink(GlobalLink, a, b, -1)
				d.addAdj(a, b, id)
				d.globalOut[g1][g2] = append(d.globalOut[g1][g2], id)
				d.globalOut[g2][g1] = append(d.globalOut[g2][g1], id)
			}
		}
	}
	return d, nil
}

// MustNew is New but panics on error; for tests and fixed example configs.
func MustNew(cfg Config) *Dragonfly {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Kind names the backend.
func (d *Dragonfly) Kind() string { return "dragonfly" }

// Nodes returns the endpoint count.
func (d *Dragonfly) Nodes() int { return d.nodes }

// SwitchNodes returns the contiguous node range attached to switch s.
func (d *Dragonfly) SwitchNodes(s SwitchID) (first NodeID, count int) {
	nps := d.Cfg.NodesPerSwitch
	return NodeID(int(s) * nps), nps
}

// GroupOf returns the group containing switch s.
func (d *Dragonfly) GroupOf(s SwitchID) GroupID {
	return GroupID(int(s) / d.Cfg.SwitchesPerGroup)
}

// SwitchOf returns the switch that node n attaches to.
func (d *Dragonfly) SwitchOf(n NodeID) SwitchID {
	return SwitchID(int(n) / d.Cfg.NodesPerSwitch)
}

// GroupOfNode returns the group containing node n.
func (d *Dragonfly) GroupOfNode(n NodeID) GroupID {
	return d.GroupOf(d.SwitchOf(n))
}

// GlobalLinks returns the IDs of the global links between groups g1 and g2.
func (d *Dragonfly) GlobalLinks(g1, g2 GroupID) []int {
	if g1 == g2 {
		return nil
	}
	return d.globalOut[g1][g2]
}

// GatewaysTo returns the switches in group g that own a global link to
// group tg. The result is deduplicated and deterministic (sorted by link
// discovery order).
func (d *Dragonfly) GatewaysTo(g, tg GroupID) []SwitchID {
	ids := d.globalOut[g][tg]
	seen := make(map[SwitchID]bool, len(ids))
	var out []SwitchID
	for _, id := range ids {
		l := d.links[id]
		s := l.A
		if d.GroupOf(s) != g {
			s = l.B
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// InterSwitchHops returns the number of switch-to-switch hops on the
// minimal path between the switches of nodes a and b: 0 for the same
// switch, 1 within a full-mesh group (up to 2 on a Grid2D group), and up
// to 3 across full-mesh groups — the Dragonfly diameter of §II-B.
func (d *Dragonfly) InterSwitchHops(a, b NodeID) int {
	sa, sb := d.SwitchOf(a), d.SwitchOf(b)
	if sa == sb {
		return 0
	}
	best := -1
	for _, p := range d.MinimalPaths(sa, sb, 8) {
		if h := p.InterSwitchHops(); best < 0 || h < best {
			best = h
		}
	}
	return best
}
