// Package topology builds the Dragonfly networks used by Slingshot systems
// (§II-B of the paper): groups of switches that are fully connected
// internally by electrical links and fully connected to every other group
// by optical global links, giving a diameter of three switch-to-switch hops.
//
// The package is purely structural: it knows switches, nodes, links, and
// paths. Queuing, routing decisions and timing live in internal/fabric.
package topology

import (
	"fmt"
)

// SwitchID identifies a switch, numbered group-major:
// id = group*SwitchesPerGroup + indexInGroup.
type SwitchID int

// NodeID identifies an endpoint (a NIC), numbered switch-major:
// id = switch*NodesPerSwitch + portIndex.
type NodeID int

// GroupID identifies a Dragonfly group.
type GroupID int

// LinkKind distinguishes the three cable types of a Slingshot system.
type LinkKind uint8

const (
	// EdgeLink connects a node's NIC to its switch (copper, <= 2.6 m).
	EdgeLink LinkKind = iota
	// LocalLink connects two switches in the same group (copper).
	LocalLink
	// GlobalLink connects switches in different groups (optical, <= 100 m).
	GlobalLink
)

func (k LinkKind) String() string {
	switch k {
	case EdgeLink:
		return "edge"
	case LocalLink:
		return "local"
	case GlobalLink:
		return "global"
	}
	return "unknown"
}

// Link is one bidirectional cable between two switches (or between a node
// and its switch for EdgeLink, in which case A is the switch and Node is
// set). Parallel cables between the same pair are distinct Links.
type Link struct {
	ID   int
	Kind LinkKind
	A, B SwitchID
	Node NodeID // only for EdgeLink; otherwise -1
}

// GroupShape selects the intra-group wiring.
type GroupShape int

const (
	// FullMesh connects every pair of switches in a group directly — the
	// Slingshot arrangement (§II-B).
	FullMesh GroupShape = iota
	// Grid2D arranges a group's switches in a rows x cols grid with
	// all-to-all links inside each row and inside each column — the Aries
	// arrangement (backplane rows, cable columns). Intra-group minimal
	// paths then take up to two hops through shared intermediate links,
	// which is how congestion trees on Aries reach traffic of unrelated
	// jobs inside a group.
	Grid2D
)

func (s GroupShape) String() string {
	if s == Grid2D {
		return "grid2d"
	}
	return "fullmesh"
}

// Config describes a Dragonfly system.
type Config struct {
	Groups           int // number of groups (fully connected amongst themselves)
	SwitchesPerGroup int // switches in each group
	NodesPerSwitch   int // endpoints attached to each switch
	GlobalPerPair    int // parallel global links between every pair of groups
	Radix            int // switch port count; 0 means Rosetta's 64
	Shape            GroupShape
	// GridRows is the row count for Grid2D groups (0 picks a near-square
	// factorization). SwitchesPerGroup must be divisible by it.
	GridRows int
}

// RosettaRadix is the port count of the Rosetta switch.
const RosettaRadix = 64

// Validate checks structural feasibility, including the switch port budget.
func (c Config) Validate() error {
	if c.Groups < 1 || c.SwitchesPerGroup < 1 || c.NodesPerSwitch < 1 {
		return fmt.Errorf("topology: non-positive size in %+v", c)
	}
	if c.Groups > 1 && c.GlobalPerPair < 1 {
		return fmt.Errorf("topology: %d groups but no global links", c.Groups)
	}
	radix := c.Radix
	if radix == 0 {
		radix = RosettaRadix
	}
	rows, cols, err := c.gridDims()
	if err != nil {
		return err
	}
	local := c.SwitchesPerGroup - 1 // full mesh
	if c.Shape == Grid2D {
		local = (rows - 1) + (cols - 1)
	}
	globalPerGroup := c.GlobalPerPair * (c.Groups - 1)
	// Global links are distributed round-robin over a group's switches, so
	// the busiest switch owns ceil(globalPerGroup / SwitchesPerGroup).
	maxGlobal := (globalPerGroup + c.SwitchesPerGroup - 1) / c.SwitchesPerGroup
	need := c.NodesPerSwitch + local + maxGlobal
	if need > radix {
		return fmt.Errorf("topology: switch needs %d ports (%d endpoints + %d local + %d global) but radix is %d",
			need, c.NodesPerSwitch, local, maxGlobal, radix)
	}
	return nil
}

// gridDims resolves the Grid2D row/column dimensions.
func (c Config) gridDims() (rows, cols int, err error) {
	if c.Shape != Grid2D {
		return 1, c.SwitchesPerGroup, nil
	}
	rows = c.GridRows
	if rows == 0 {
		// Near-square factorization.
		for r := 1; r*r <= c.SwitchesPerGroup; r++ {
			if c.SwitchesPerGroup%r == 0 {
				rows = r
			}
		}
	}
	if rows < 1 || c.SwitchesPerGroup%rows != 0 {
		return 0, 0, fmt.Errorf("topology: %d switches per group not divisible into %d rows",
			c.SwitchesPerGroup, rows)
	}
	return rows, c.SwitchesPerGroup / rows, nil
}

// Dragonfly is an immutable built topology.
type Dragonfly struct {
	Cfg   Config
	Links []Link
	nodes int
	sw    int
	// rows/cols of the intra-group grid (1 x SwitchesPerGroup for
	// FullMesh).
	rows, cols int
	// Slice-indexed adjacency (no maps — the routing hot path queries it
	// per hop): adj[s] lists s's neighbor switches in link-discovery
	// order, adjLinks[s][i] the (parallel) link IDs towards adj[s][i],
	// and adjIndex[s][t] the index i such that adj[s][i] == t, or -1 when
	// s and t are not adjacent.
	adj      [][]SwitchID
	adjLinks [][][]int
	adjIndex [][]int32
	// globalOut[g1][g2] lists link IDs connecting group g1 to group g2.
	globalOut [][][]int
	// edge[n] is the link ID of node n's edge link.
	edge []int
	// Path-construction arena reused by NonMinimalPaths (one adaptive
	// routing decision per packet on the hot path): candidate paths are
	// built in pathNodes and collected in outPaths, so steady-state
	// routing allocates nothing. Both are reset on every call, which is
	// why NonMinimalPaths results must be copied if retained — and why a
	// Dragonfly must not serve routing queries from multiple goroutines
	// (each Network builds its own).
	pathNodes []SwitchID
	outPaths  []Path
}

// New builds a Dragonfly from the config. The global links between each
// pair of groups are spread round-robin over the switches of both groups so
// no switch is oversubscribed, mirroring how Slingshot systems cable groups.
func New(cfg Config) (*Dragonfly, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows, cols, _ := cfg.gridDims()
	d := &Dragonfly{
		Cfg:   cfg,
		sw:    cfg.Groups * cfg.SwitchesPerGroup,
		nodes: cfg.Groups * cfg.SwitchesPerGroup * cfg.NodesPerSwitch,
		rows:  rows,
		cols:  cols,
	}
	d.adj = make([][]SwitchID, d.sw)
	d.adjLinks = make([][][]int, d.sw)
	d.adjIndex = make([][]int32, d.sw)
	idx := make([]int32, d.sw*d.sw)
	for i := range idx {
		idx[i] = -1
	}
	for i := range d.adjIndex {
		d.adjIndex[i] = idx[i*d.sw : (i+1)*d.sw]
	}
	d.globalOut = make([][][]int, cfg.Groups)
	for g := range d.globalOut {
		d.globalOut[g] = make([][]int, cfg.Groups)
	}
	d.edge = make([]int, d.nodes)

	addLink := func(kind LinkKind, a, b SwitchID, node NodeID) int {
		id := len(d.Links)
		d.Links = append(d.Links, Link{ID: id, Kind: kind, A: a, B: b, Node: node})
		return id
	}

	// Edge links: node n attaches to switch n / NodesPerSwitch.
	for n := 0; n < d.nodes; n++ {
		s := SwitchID(n / cfg.NodesPerSwitch)
		d.edge[n] = addLink(EdgeLink, s, s, NodeID(n))
	}

	// addAdj records link id in both directions of the adjacency.
	addAdj := func(a, b SwitchID, id int) {
		d.addAdjDir(a, b, id)
		d.addAdjDir(b, a, id)
	}

	// Local links: full mesh within each group, or — for Grid2D (Aries) —
	// all-to-all inside each row and inside each column.
	addLocal := func(a, b SwitchID) {
		addAdj(a, b, addLink(LocalLink, a, b, -1))
	}
	for g := 0; g < cfg.Groups; g++ {
		base := SwitchID(g * cfg.SwitchesPerGroup)
		for i := 0; i < cfg.SwitchesPerGroup; i++ {
			for j := i + 1; j < cfg.SwitchesPerGroup; j++ {
				if cfg.Shape == Grid2D {
					// Switch index i sits at (i/cols, i%cols).
					ri, ci := i/d.cols, i%d.cols
					rj, cj := j/d.cols, j%d.cols
					if ri != rj && ci != cj {
						continue
					}
				}
				addLocal(base+SwitchID(i), base+SwitchID(j))
			}
		}
	}

	// Global links: GlobalPerPair parallel links between every pair of
	// groups, each endpoint assigned round-robin over the group's switches.
	rr := make([]int, cfg.Groups) // next switch index per group
	for g1 := 0; g1 < cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < cfg.Groups; g2++ {
			for k := 0; k < cfg.GlobalPerPair; k++ {
				a := SwitchID(g1*cfg.SwitchesPerGroup + rr[g1])
				b := SwitchID(g2*cfg.SwitchesPerGroup + rr[g2])
				rr[g1] = (rr[g1] + 1) % cfg.SwitchesPerGroup
				rr[g2] = (rr[g2] + 1) % cfg.SwitchesPerGroup
				id := addLink(GlobalLink, a, b, -1)
				addAdj(a, b, id)
				d.globalOut[g1][g2] = append(d.globalOut[g1][g2], id)
				d.globalOut[g2][g1] = append(d.globalOut[g2][g1], id)
			}
		}
	}
	return d, nil
}

// addAdjDir appends link id to the a->b adjacency.
func (d *Dragonfly) addAdjDir(a, b SwitchID, id int) {
	i := d.adjIndex[a][b]
	if i < 0 {
		i = int32(len(d.adj[a]))
		d.adjIndex[a][b] = i
		d.adj[a] = append(d.adj[a], b)
		d.adjLinks[a] = append(d.adjLinks[a], nil)
	}
	d.adjLinks[a][i] = append(d.adjLinks[a][i], id)
}

// MustNew is New but panics on error; for tests and fixed example configs.
func MustNew(cfg Config) *Dragonfly {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Nodes returns the endpoint count.
func (d *Dragonfly) Nodes() int { return d.nodes }

// Switches returns the switch count.
func (d *Dragonfly) Switches() int { return d.sw }

// GroupOf returns the group containing switch s.
func (d *Dragonfly) GroupOf(s SwitchID) GroupID {
	return GroupID(int(s) / d.Cfg.SwitchesPerGroup)
}

// SwitchOf returns the switch that node n attaches to.
func (d *Dragonfly) SwitchOf(n NodeID) SwitchID {
	return SwitchID(int(n) / d.Cfg.NodesPerSwitch)
}

// GroupOfNode returns the group containing node n.
func (d *Dragonfly) GroupOfNode(n NodeID) GroupID {
	return d.GroupOf(d.SwitchOf(n))
}

// EdgeLinkOf returns the link ID of node n's edge link.
func (d *Dragonfly) EdgeLinkOf(n NodeID) int { return d.edge[n] }

// LinksBetween returns the IDs of the (parallel) links directly connecting
// switches a and b, or nil when they are not adjacent.
func (d *Dragonfly) LinksBetween(a, b SwitchID) []int {
	if i := d.adjIndex[a][b]; i >= 0 {
		return d.adjLinks[a][i]
	}
	return nil
}

// NeighborIndex returns b's dense index in a's neighbor list (the order
// Neighbors reports), or -1 when the switches are not adjacent. The index
// is stable for the lifetime of the topology, so per-switch runtime state
// (e.g. fabric egress-port tables) can be slice-indexed by it — the
// routing hot path does zero map lookups per hop.
func (d *Dragonfly) NeighborIndex(a, b SwitchID) int {
	return int(d.adjIndex[a][b])
}

// NeighborCount returns the number of switches adjacent to s.
func (d *Dragonfly) NeighborCount(s SwitchID) int { return len(d.adj[s]) }

// GlobalLinks returns the IDs of the global links between groups g1 and g2.
func (d *Dragonfly) GlobalLinks(g1, g2 GroupID) []int {
	if g1 == g2 {
		return nil
	}
	return d.globalOut[g1][g2]
}

// Neighbors returns the switches adjacent to s, in deterministic
// link-discovery order (the same order NeighborIndex indexes).
func (d *Dragonfly) Neighbors(s SwitchID) []SwitchID {
	out := make([]SwitchID, len(d.adj[s]))
	copy(out, d.adj[s])
	return out
}

// GatewaysTo returns the switches in group g that own a global link to
// group tg. The result is deduplicated and deterministic (sorted by link
// discovery order).
func (d *Dragonfly) GatewaysTo(g, tg GroupID) []SwitchID {
	ids := d.globalOut[g][tg]
	seen := make(map[SwitchID]bool, len(ids))
	var out []SwitchID
	for _, id := range ids {
		l := d.Links[id]
		s := l.A
		if d.GroupOf(s) != g {
			s = l.B
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// InterSwitchHops returns the number of switch-to-switch hops on the
// minimal path between the switches of nodes a and b: 0 for the same
// switch, 1 within a full-mesh group (up to 2 on a Grid2D group), and up
// to 3 across full-mesh groups — the Dragonfly diameter of §II-B.
func (d *Dragonfly) InterSwitchHops(a, b NodeID) int {
	sa, sb := d.SwitchOf(a), d.SwitchOf(b)
	if sa == sb {
		return 0
	}
	best := -1
	for _, p := range d.MinimalPaths(sa, sb, 8) {
		if h := p.InterSwitchHops(); best < 0 || h < best {
			best = h
		}
	}
	return best
}
