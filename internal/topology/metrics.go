package topology

// This file holds the closed-form network capacity arithmetic the paper
// states in §II-B (Fig. 3) and §II-G (Fig. 6), plus the configurations of
// the three measured systems.

// LinkBits is the per-direction bandwidth of a Slingshot fabric link
// (bits per second).
const LinkBits int64 = 200e9

// AriesLinkBits approximates an Aries fabric link (§IV-A quotes a peak
// injection of 81.6 Gb/s per node; Aries links run at ~4.7+5.25 GB/s, we
// use ~93.6 Gb/s for fabric links, enough for the relative study).
const AriesLinkBits int64 = 93.6e9

// MaxSystemSpec reproduces the Fig. 3 arithmetic of the largest
// 1-dimensional Dragonfly buildable from 64-port Rosetta switches.
type MaxSystemSpec struct {
	EndpointsPerSwitch int // 16
	LocalPorts         int // 31 (fully connected 32-switch group)
	GlobalPorts        int // 17
	SwitchesPerGroup   int // 32
	NodesPerGroup      int // 512
	GlobalLinksPer     int // 544 per group
	Groups             int // 545
	Endpoints          int // 279040
	AddressableGroups  int // 511 (addressing limit)
	AddressableNodes   int // 261632
}

// MaxSystem returns the largest-system constants, derived (not hardcoded)
// from the Rosetta radix so the derivation itself is under test.
func MaxSystem() MaxSystemSpec {
	const radix = RosettaRadix // 64
	spec := MaxSystemSpec{EndpointsPerSwitch: 16}
	interSwitch := radix - spec.EndpointsPerSwitch // 48 ports
	// The paper's largest system: 32 switches per group, fully connected
	// needs 31 local ports, leaving 17 global ports per switch.
	spec.SwitchesPerGroup = 32
	spec.LocalPorts = spec.SwitchesPerGroup - 1
	spec.GlobalPorts = interSwitch - spec.LocalPorts
	spec.NodesPerGroup = spec.SwitchesPerGroup * spec.EndpointsPerSwitch
	spec.GlobalLinksPer = spec.SwitchesPerGroup * spec.GlobalPorts
	// Fully connected inter-group graph with one link per pair: a group's
	// 544 global links reach 544 other groups.
	spec.Groups = spec.GlobalLinksPer + 1
	spec.Endpoints = spec.Groups * spec.NodesPerGroup
	spec.AddressableGroups = 511
	spec.AddressableNodes = spec.AddressableGroups * spec.NodesPerGroup
	return spec
}

// ShandyConfig models the 1024-node Slingshot system: eight groups of 128
// nodes; every pair of groups is joined by 8 global links, i.e. 56 global
// links per group (matching §II-G: 56*8 = 448 global links system-wide).
func ShandyConfig() Config {
	return Config{
		Groups:           8,
		SwitchesPerGroup: 8,
		NodesPerSwitch:   16,
		GlobalPerPair:    8,
	}
}

// MalbecConfig models the 484-node Slingshot system: four groups of up to
// 128 nodes, every pair of groups joined by 48 global links (§III).
// We model the full 4x128 = 512 endpoints; experiments use the first 484.
func MalbecConfig() Config {
	return Config{
		Groups:           4,
		SwitchesPerGroup: 8,
		NodesPerSwitch:   16,
		GlobalPerPair:    48,
	}
}

// CrystalConfig models the 698-node Aries system: two groups of up to 384
// nodes. Aries attaches 4 nodes per router; a full Aries group has 96
// routers arranged as 6 chassis of 16 (a 6 x 16 grid with all-to-all
// backplane links along rows and all-to-all cables along columns), so
// intra-group minimal paths take up to two hops through shared
// intermediate links — essential to how congestion trees on Aries reach
// other jobs' traffic inside a group.
func CrystalConfig() Config {
	return Config{
		Groups:           2,
		SwitchesPerGroup: 96,
		NodesPerSwitch:   4,
		GlobalPerPair:    64,
		Shape:            Grid2D,
		GridRows:         6,
	}
}

// ScaledConfig returns a Dragonfly with approximately n nodes that keeps
// the Shandy shape (8 groups when possible, 16 nodes/switch) for reduced-
// scale experiments. It always returns a valid config covering >= n nodes.
func ScaledConfig(n int) Config {
	groups := 8
	if n < 64 {
		groups = 2
	} else if n < 256 {
		groups = 4
	}
	nodesPerSwitch := scaledEndpointsPerSwitch(n)
	perGroup := (n + groups - 1) / groups
	spg := (perGroup + nodesPerSwitch - 1) / nodesPerSwitch
	if spg < 2 {
		spg = 2
	}
	return Config{
		Groups:           groups,
		SwitchesPerGroup: spg,
		NodesPerSwitch:   nodesPerSwitch,
		GlobalPerPair:    max(1, spg),
	}
}

// scaledEndpointsPerSwitch is the endpoint density all the reduced-scale
// sizing helpers (ScaledConfig, FatTreeFor, HyperXFor) share, so
// topo-compare machines built for the same node budget are comparably
// provisioned: Shandy's 16 nodes per switch, sparser only for tiny
// systems.
func scaledEndpointsPerSwitch(n int) int {
	if n < 32 {
		return 4
	}
	return 16
}

// BisectionLinks returns the number of global links crossing the even
// bisection of the system (half the groups on each side), as in §II-G:
// for Shandy, 4*4*8 = 128 links.
func (d *Dragonfly) BisectionLinks() int {
	half := d.Cfg.Groups / 2
	n := 0
	for g1 := 0; g1 < half; g1++ {
		for g2 := half; g2 < d.Cfg.Groups; g2++ {
			n += len(d.globalOut[g1][g2])
		}
	}
	return n
}

// BisectionPeakBits returns the theoretical peak bisection bandwidth in
// bits/s, counting both directions of every crossing link as the paper
// does in §II-G ("we are sending traffic in both directions"). For Shandy,
// 128 links * 200 Gb/s * 2 = 51.2 Tb/s = 6.4 TB/s; Fig. 6's axis is in
// TB/s, and the paper's "6.4Tb/s" text is the same quantity in bytes.
func (d *Dragonfly) BisectionPeakBits(linkBits int64) int64 {
	return int64(d.BisectionLinks()) * linkBits * 2
}

// AlltoallPeakBits returns the theoretical peak all-to-all bandwidth in
// bits/s per §II-G: with G groups, each node sends (G-1)/G of its traffic
// out of its group, so aggregate throughput is bounded by
// G/(G-1) * (global-link capacity counting both directions). For Shandy:
// 8/7 * 224 links * 2 dirs * 200 Gb/s = 102.4 Tb/s = 12.8 TB/s, matching
// the paper's "8/7 * 448 * 200Gb/s" (the paper's 448 counts each physical
// link once per attached group, i.e. both directions).
func (d *Dragonfly) AlltoallPeakBits(linkBits int64) int64 {
	total := 0
	for g1 := 0; g1 < d.Cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < d.Cfg.Groups; g2++ {
			total += len(d.globalOut[g1][g2])
		}
	}
	g := int64(d.Cfg.Groups)
	return g * int64(total) * 2 * linkBits / (g - 1)
}
