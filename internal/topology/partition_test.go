package topology

import (
	"testing"

	"repro/internal/phy"
)

// checkPartition validates the structural invariants every backend's
// partition must satisfy: a dense domain for every switch, a cut listing
// exactly the links whose endpoints differ, and the latency bound
// matching the fastest cut link.
func checkPartition(t *testing.T, topo Topology, p Partition, wantDomains int) {
	t.Helper()
	if p.Domains != wantDomains {
		t.Fatalf("Domains = %d, want %d", p.Domains, wantDomains)
	}
	if len(p.Of) != topo.Switches() {
		t.Fatalf("Of covers %d switches, want %d", len(p.Of), topo.Switches())
	}
	seen := make([]bool, p.Domains)
	for s, d := range p.Of {
		if d < 0 || d >= p.Domains {
			t.Fatalf("switch %d in domain %d, out of range", s, d)
		}
		seen[d] = true
	}
	for d, ok := range seen {
		if !ok {
			t.Fatalf("domain %d owns no switch", d)
		}
	}
	inCut := make(map[int]bool, len(p.Cut))
	for _, id := range p.Cut {
		inCut[id] = true
	}
	min, first := p.MinCutLatency, len(p.Cut) == 0
	for _, l := range topo.Links() {
		cross := l.Kind != EdgeLink && p.Of[l.A] != p.Of[l.B]
		if cross != inCut[l.ID] {
			t.Fatalf("link %d (%v %d-%d): cut membership %v, want %v",
				l.ID, l.Kind, l.A, l.B, inCut[l.ID], cross)
		}
		if cross {
			if lat := kindLatency(l.Kind); lat < min {
				t.Fatalf("cut link %d has latency %v below MinCutLatency %v", l.ID, lat, min)
			} else if lat == min {
				first = false
			}
		}
	}
	if first && len(p.Cut) > 0 {
		t.Fatalf("MinCutLatency %v matches no cut link", min)
	}
}

func TestPartitionDragonfly(t *testing.T) {
	d := MustNew(Config{Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 2, GlobalPerPair: 2})
	p := d.Partition(0)
	checkPartition(t, d, p, 4)
	for s := range p.Of {
		if p.Of[s] != s/4 {
			t.Fatalf("switch %d in domain %d, want its group %d", s, p.Of[s], s/4)
		}
	}
	// A Dragonfly cut is all-optical: the full lookahead window.
	if p.MinCutLatency != phy.OpticalDelay() {
		t.Fatalf("MinCutLatency = %v, want the optical delay", p.MinCutLatency)
	}
	// Folding to two domains merges alternating groups and keeps the
	// invariants.
	checkPartition(t, d, d.Partition(2), 2)
	// More domains than natural units clamps to the units.
	checkPartition(t, d, d.Partition(64), 4)
}

func TestPartitionFatTree(t *testing.T) {
	f, err := NewFatTree(FatTreeConfig{Pods: 4, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := f.Partition(0)
	checkPartition(t, f, p, 4)
	// In-pod wiring never crosses: the cut is the optical agg-core mesh.
	if p.MinCutLatency != phy.OpticalDelay() {
		t.Fatalf("MinCutLatency = %v, want the optical delay", p.MinCutLatency)
	}
	for _, id := range p.Cut {
		if k := f.Links()[id].Kind; k != GlobalLink {
			t.Fatalf("cut link %d is %v, want only global links", id, k)
		}
	}
	checkPartition(t, f, f.Partition(2), 2)

	// The two-level leaf-spine is one pod: a single cutless domain.
	ls, err := NewFatTree(FatTreeConfig{Pods: 1, EdgePerPod: 4, AggPerPod: 2, NodesPerEdge: 2})
	if err != nil {
		t.Fatal(err)
	}
	p = ls.Partition(0)
	checkPartition(t, ls, p, 1)
	if len(p.Cut) != 0 || p.MinCutLatency <= 0 {
		t.Fatalf("single-domain cut = %d links, latency %v; want none and a positive bound", len(p.Cut), p.MinCutLatency)
	}
}

func TestPartitionHyperX(t *testing.T) {
	h, err := NewHyperX(HyperXConfig{Dims: []int{4, 3, 2}, NodesPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := h.Partition(0)
	checkPartition(t, h, p, 6)
	// Dimension-0 rows stay whole, so only optical higher-dimension links
	// cross.
	for _, id := range p.Cut {
		if k := h.Links()[id].Kind; k != GlobalLink {
			t.Fatalf("cut link %d is %v, want only global links", id, k)
		}
	}
	if p.MinCutLatency != phy.OpticalDelay() {
		t.Fatalf("MinCutLatency = %v, want the optical delay", p.MinCutLatency)
	}
	checkPartition(t, h, h.Partition(3), 3)
}
