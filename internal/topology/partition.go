package topology

import (
	"repro/internal/phy"
	"repro/internal/sim"
)

// Partition is a domain decomposition of a topology for conservative
// parallel simulation: every switch (and, through SwitchOf, every node)
// belongs to exactly one domain, and MinCutLatency bounds how soon an
// event crossing domains can take effect — the conservative lookahead.
//
// Each backend decomposes along its natural structural boundary, chosen
// so the cut carries only optical links (the slowest propagation in the
// system, hence the widest lookahead window):
//
//   - Dragonfly: one unit per group (the cut is the all-optical global
//     link mesh).
//   - Fat-tree: one unit per pod; core plane a folds into unit a mod
//     Pods (the cut is the optical agg–core wiring that leaves the pod).
//   - HyperX: one unit per dimension-0 row (rack-internal electrical
//     rows stay whole; the cut is the optical higher-dimension wiring).
//
// The natural unit count — not the requested domain count — fixes the
// decomposition: Partition(d) for 0 < d < units folds unit u into
// domain u mod d, and d <= 0 (or d >= units) keeps the natural units
// unfolded. A parallel fabric always simulates the natural units and
// varies only its worker count, so results are bit-identical for every
// worker budget; the folded form exists for partition-shape tests and
// external consumers.
type Partition struct {
	// Domains is the domain count (== the natural unit count unless the
	// requested fold was smaller).
	Domains int
	// Of maps each switch to its domain, densely 0..Domains-1.
	Of []int
	// Cut lists the IDs of inter-switch links whose endpoints lie in
	// different domains, in link-discovery order.
	Cut []int
	// MinCutLatency is the propagation latency of the fastest cut link:
	// no event can cross domains sooner, so epochs of that width never
	// deliver into a peer's past. A cutless partition (a single domain)
	// reports the optical delay — any positive bound is vacuously safe.
	MinCutLatency sim.Time
}

// kindLatency is the propagation latency fabric assigns a link kind.
func kindLatency(k LinkKind) sim.Time {
	switch k {
	case EdgeLink:
		return phy.EdgeDelay()
	case LocalLink:
		return phy.CopperDelay()
	}
	return phy.OpticalDelay()
}

// finishPartition folds the natural per-switch unit assignment down to
// the requested domain count and derives the cut and its latency bound.
func finishPartition(links []Link, of []int, units, domains int) Partition {
	if domains <= 0 || domains > units {
		domains = units
	}
	if domains < units {
		for s := range of {
			of[s] %= domains
		}
	}
	p := Partition{Domains: domains, Of: of, MinCutLatency: phy.OpticalDelay()}
	first := true
	for _, l := range links {
		if l.Kind == EdgeLink || of[l.A] == of[l.B] {
			continue
		}
		p.Cut = append(p.Cut, l.ID)
		if lat := kindLatency(l.Kind); first || lat < p.MinCutLatency {
			p.MinCutLatency = lat
			first = false
		}
	}
	return p
}

// Partition decomposes the Dragonfly into one domain per group.
func (d *Dragonfly) Partition(domains int) Partition {
	of := make([]int, d.sw)
	for s := range of {
		of[s] = s / d.Cfg.SwitchesPerGroup
	}
	return finishPartition(d.links, of, d.Cfg.Groups, domains)
}

// Partition decomposes the fat-tree into one domain per pod, folding
// core plane a into pod a mod Pods so every switch has a home.
func (f *FatTree) Partition(domains int) Partition {
	units := f.Cfg.Pods
	of := make([]int, f.sw)
	for s := range of {
		switch {
		case s < f.edges:
			of[s] = s / f.Cfg.EdgePerPod
		case s < f.edges+f.aggs:
			of[s] = (s - f.edges) / f.Cfg.AggPerPod
		default:
			plane := (s - f.edges - f.aggs) / f.Cfg.CorePerAgg
			of[s] = plane % units
		}
	}
	return finishPartition(f.links, of, units, domains)
}

// Partition decomposes the HyperX into one domain per dimension-0 row
// (the contiguous ID runs of length Dims[0]).
func (h *HyperX) Partition(domains int) Partition {
	row := h.Cfg.Dims[0]
	of := make([]int, h.sw)
	for s := range of {
		of[s] = s / row
	}
	return finishPartition(h.links, of, h.sw/row, domains)
}
