package topology

import "repro/internal/sim"

// Topology is the structural contract every network backend (Dragonfly,
// fat-tree, HyperX) satisfies. It is purely structural — switches, nodes,
// links, and candidate paths; queuing, routing decisions and timing live in
// internal/fabric, which builds its runtime state from this interface alone.
//
// Contracts every implementation must honour:
//
//   - Dense IDs: switches are numbered 0..Switches()-1 and nodes
//     0..Nodes()-1, so consumers can slice-index per-switch and per-node
//     state. Nodes are numbered switch-major: all of one switch's nodes are
//     contiguous and switch order follows node order.
//   - Dense adjacency: NeighborIndex(a, b) is a stable index into a's
//     neighbor list (the order Neighbors reports) for the lifetime of the
//     topology, or -1 when not adjacent. The routing hot path does zero map
//     lookups per hop.
//   - Arena reuse: NonMinimalPaths builds its candidates in a per-topology
//     scratch arena that the next call on the same topology overwrites.
//     Callers must copy any path they retain past their routing decision,
//     and must not route on a shared topology from multiple goroutines
//     (each fabric.Network builds its own).
//   - RNG-stream stability: MinimalPaths is deterministic and RNG-free (so
//     it can be cached); NonMinimalPaths draws from rng in a fixed,
//     input-determined order, and a nil rng yields deterministic
//     first-choice detours. Replays with the same seed see the same paths.
type Topology interface {
	// Kind names the backend: "dragonfly", "fattree", or "hyperx".
	Kind() string

	// Structure.
	Switches() int
	Nodes() int
	Links() []Link
	SwitchOf(NodeID) SwitchID
	// SwitchNodes returns the contiguous node range attached to a switch
	// (count is 0 for switches without endpoints, e.g. fat-tree spines).
	SwitchNodes(SwitchID) (first NodeID, count int)
	EdgeLinkOf(NodeID) int
	LinksBetween(a, b SwitchID) []int

	// Dense adjacency.
	NeighborIndex(a, b SwitchID) int
	NeighborCount(SwitchID) int
	Neighbors(SwitchID) []SwitchID

	// Routing candidates. NonMinimalPaths builds in the topology's own
	// embedded arena; NonMinimalPathsIn builds in a caller-owned arena, so
	// several single-threaded consumers (e.g. the per-domain networks of a
	// sharded fabric) can route on one shared immutable topology without
	// sharing scratch state.
	MinimalPaths(src, dst SwitchID, max int) []Path
	NonMinimalPaths(src, dst SwitchID, rng *sim.RNG, max int) []Path
	NonMinimalPathsIn(a *PathArena, src, dst SwitchID, rng *sim.RNG, max int) []Path

	// Partition returns the backend's domain decomposition for
	// conservative parallel simulation (see Partition's doc).
	Partition(domains int) Partition

	// Metrics and validation.
	Valid(Path) bool
	BisectionLinks() int
	Diameter() int
}

// Builder constructs a Topology from a validated configuration. The three
// backend configs (Config, FatTreeConfig, HyperXConfig) all implement it,
// so profiles and harness systems can carry "which network to build"
// without naming a concrete type.
type Builder interface {
	Build() (Topology, error)
}

// MustBuild is Build but panics on error; for tests and fixed configs.
func MustBuild(b Builder) Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// adjacency is the slice-indexed neighbor structure shared by every
// backend (no maps — the routing hot path queries it per hop): adj[s]
// lists s's neighbor switches in link-discovery order, adjLinks[s][i] the
// (parallel) link IDs towards adj[s][i], and adjIndex[s][t] the index i
// such that adj[s][i] == t, or -1 when s and t are not adjacent.
type adjacency struct {
	sw       int
	adj      [][]SwitchID
	adjLinks [][][]int
	// adjIndex is the dense sw x sw lookup matrix. Its O(sw^2) footprint
	// is fine for experiment-scale fabrics but fatal at million-endpoint
	// scale (65k switches would need a 17 GB matrix), so fabrics above
	// denseAdjSwitches use per-row sorted neighbor lists (nbSorted with
	// parallel nbSlot) and binary search instead — ~5 probes at realistic
	// radices, still allocation-free on the per-hop path.
	adjIndex [][]int32
	nbSorted [][]SwitchID
	nbSlot   [][]int32
	// diam caches the BFS diameter (-1 until first asked for).
	diam int
}

// denseAdjSwitches is the largest switch count that keeps the dense
// index matrix (2048^2 x 4 B = 16 MB); every golden- and bench-scale
// topology is far below it, so their lookup path is unchanged.
const denseAdjSwitches = 2048

// initAdjacency sizes the structure for sw switches. The adjIndex rows
// share one backing slice to keep the matrix a single allocation.
func (m *adjacency) initAdjacency(sw int) {
	m.sw = sw
	m.diam = -1
	m.adj = make([][]SwitchID, sw)
	m.adjLinks = make([][][]int, sw)
	if sw > denseAdjSwitches {
		m.nbSorted = make([][]SwitchID, sw)
		m.nbSlot = make([][]int32, sw)
		return
	}
	m.adjIndex = make([][]int32, sw)
	idx := make([]int32, sw*sw)
	for i := range idx {
		idx[i] = -1
	}
	for i := range m.adjIndex {
		m.adjIndex[i] = idx[i*sw : (i+1)*sw]
	}
}

// lookup returns b's dense slot in a's neighbor list, or -1.
func (m *adjacency) lookup(a, b SwitchID) int32 {
	if m.adjIndex != nil {
		return m.adjIndex[a][b]
	}
	row := m.nbSorted[a]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == b {
		return m.nbSlot[a][lo]
	}
	return -1
}

// addAdj records link id in both directions of the adjacency.
func (m *adjacency) addAdj(a, b SwitchID, id int) {
	m.addAdjDir(a, b, id)
	m.addAdjDir(b, a, id)
}

// addAdjDir appends link id to the a->b adjacency.
func (m *adjacency) addAdjDir(a, b SwitchID, id int) {
	i := m.lookup(a, b)
	if i < 0 {
		i = int32(len(m.adj[a]))
		if m.adjIndex != nil {
			m.adjIndex[a][b] = i
		} else {
			row, slot := m.nbSorted[a], m.nbSlot[a]
			pos := 0
			for pos < len(row) && row[pos] < b {
				pos++
			}
			row = append(row, 0)
			slot = append(slot, 0)
			copy(row[pos+1:], row[pos:])
			copy(slot[pos+1:], slot[pos:])
			row[pos], slot[pos] = b, i
			m.nbSorted[a], m.nbSlot[a] = row, slot
		}
		m.adj[a] = append(m.adj[a], b)
		m.adjLinks[a] = append(m.adjLinks[a], nil)
	}
	m.adjLinks[a][i] = append(m.adjLinks[a][i], id)
}

// localAdjacent reports whether two distinct switches share a direct link.
func (m *adjacency) localAdjacent(a, b SwitchID) bool {
	return m.lookup(a, b) >= 0
}

// Switches returns the switch count.
func (m *adjacency) Switches() int { return m.sw }

// NeighborIndex returns b's dense index in a's neighbor list (the order
// Neighbors reports), or -1 when the switches are not adjacent. The index
// is stable for the lifetime of the topology, so per-switch runtime state
// (e.g. fabric egress-port tables) can be slice-indexed by it — the
// routing hot path does zero map lookups per hop.
func (m *adjacency) NeighborIndex(a, b SwitchID) int {
	return int(m.lookup(a, b))
}

// NeighborCount returns the number of switches adjacent to s.
func (m *adjacency) NeighborCount(s SwitchID) int { return len(m.adj[s]) }

// Neighbors returns the switches adjacent to s, in deterministic
// link-discovery order (the same order NeighborIndex indexes).
func (m *adjacency) Neighbors(s SwitchID) []SwitchID {
	out := make([]SwitchID, len(m.adj[s]))
	copy(out, m.adj[s])
	return out
}

// LinksBetween returns the IDs of the (parallel) links directly connecting
// switches a and b, or nil when they are not adjacent.
func (m *adjacency) LinksBetween(a, b SwitchID) []int {
	if i := m.lookup(a, b); i >= 0 {
		return m.adjLinks[a][i]
	}
	return nil
}

// Valid reports whether every consecutive pair in the path is adjacent and
// no switch repeats. Used by tests and debug assertions.
func (m *adjacency) Valid(p Path) bool {
	if len(p) == 0 {
		return false
	}
	seen := make(map[SwitchID]bool, len(p))
	for i, s := range p {
		if s < 0 || int(s) >= m.sw || seen[s] {
			return false
		}
		seen[s] = true
		if i > 0 && m.lookup(p[i-1], s) < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the switch-graph diameter (longest shortest path in
// switch-to-switch hops), computed by BFS on first use and cached. Not a
// hot path: it backs structural tests and topoinfo-style reporting.
func (m *adjacency) Diameter() int {
	if m.diam >= 0 {
		return m.diam
	}
	dist := make([]int, m.sw)
	queue := make([]SwitchID, 0, m.sw)
	diam := 0
	for s := 0; s < m.sw; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], SwitchID(s))
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range m.adj[cur] {
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					if dist[nb] > diam {
						diam = dist[nb]
					}
					queue = append(queue, nb)
				}
			}
		}
	}
	m.diam = diam
	return diam
}

// linkTable is the link store shared by every backend: links in
// discovery order with the per-node edge-link index.
type linkTable struct {
	links []Link
	edge  []int
}

// addLink appends one link, returning its ID (the slice index).
func (lt *linkTable) addLink(kind LinkKind, a, b SwitchID, node NodeID) int {
	id := len(lt.links)
	lt.links = append(lt.links, Link{ID: id, Kind: kind, A: a, B: b, Node: node})
	return id
}

// addEdgeLinks numbers the node-major edge links every backend starts
// with: node n attaches to switch n / perSwitch.
func (lt *linkTable) addEdgeLinks(nodes, perSwitch int) {
	lt.edge = make([]int, nodes)
	for n := 0; n < nodes; n++ {
		s := SwitchID(n / perSwitch)
		lt.edge[n] = lt.addLink(EdgeLink, s, s, NodeID(n))
	}
}

// Links returns every link of the topology in discovery order (edge
// links first, then the backend's inter-switch wiring); a link's slice
// index is its ID.
func (lt *linkTable) Links() []Link { return lt.links }

// EdgeLinkOf returns the link ID of node n's edge link.
func (lt *linkTable) EdgeLinkOf(n NodeID) int { return lt.edge[n] }

// linkMultiplicity resolves a config's parallel-cable count (0 means 1).
func linkMultiplicity(lk int) int {
	if lk <= 0 {
		return 1
	}
	return lk
}

// PathArena is the path-construction scratch reused by NonMinimalPaths
// (one adaptive routing decision per packet on the hot path): candidate
// paths are built in pathNodes and collected in outPaths, so steady-state
// routing allocates nothing. Both are reset on every call, which is why
// NonMinimalPaths results must be copied if retained — and why one arena
// must not serve routing queries from multiple goroutines. Every backend
// embeds one (backing its NonMinimalPaths convenience method); consumers
// that need private scratch over a shared topology — the per-domain
// networks of a sharded fabric — own their own and route through
// NonMinimalPathsIn.
type PathArena struct {
	pathNodes []SwitchID
	outPaths  []Path
	// coordA/coordB are the coordinate scratch of the HyperX backend.
	coordA, coordB []int
}

// ensureCoords sizes the coordinate scratch to ndims, keeping capacity.
func (a *PathArena) ensureCoords(ndims int) {
	if cap(a.coordA) < ndims {
		a.coordA = make([]int, ndims)
		a.coordB = make([]int, ndims)
	}
	a.coordA, a.coordB = a.coordA[:ndims], a.coordB[:ndims]
}

// arenaPath appends the given switches as one arena-backed path.
func (a *PathArena) arenaPath(sw ...SwitchID) Path {
	s := len(a.pathNodes)
	a.pathNodes = append(a.pathNodes, sw...)
	return a.pathNodes[s:len(a.pathNodes):len(a.pathNodes)]
}

// arenaCompose concatenates path segments in the arena, merging equal
// junction switches. It returns nil if the result revisits a switch (the
// caller filters). The segments may themselves be arena-backed: they
// occupy earlier arena indices, so appending the composition after them
// never aliases its inputs.
func (a *PathArena) arenaCompose(segs ...Path) Path {
	s := len(a.pathNodes)
	for _, seg := range segs {
		for i, sw := range seg {
			out := a.pathNodes[s:]
			if len(out) > 0 && i == 0 && out[len(out)-1] == sw {
				continue // shared junction
			}
			for _, prev := range out {
				if prev == sw {
					a.pathNodes = a.pathNodes[:s] // revisit: discard
					return nil
				}
			}
			a.pathNodes = append(a.pathNodes, sw)
		}
	}
	return a.pathNodes[s:len(a.pathNodes):len(a.pathNodes)]
}
