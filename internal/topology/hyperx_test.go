package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// smallHX is a 3x4 2D HyperX with 2 nodes per switch = 24 nodes.
func smallHX() *HyperX {
	h, err := NewHyperX(HyperXConfig{Dims: []int{3, 4}, NodesPerSwitch: 2})
	if err != nil {
		panic(err)
	}
	return h
}

func TestHyperXValidate(t *testing.T) {
	bad := []HyperXConfig{
		{},
		{Dims: []int{1, 4}, NodesPerSwitch: 2},   // dimension < 2
		{Dims: []int{40, 40}, NodesPerSwitch: 2}, // port budget
		{Dims: []int{4, 4}, NodesPerSwitch: 0},   // no nodes
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestHyperXCounts(t *testing.T) {
	h := smallHX()
	if h.Switches() != 12 || h.Nodes() != 24 {
		t.Errorf("switches=%d nodes=%d", h.Switches(), h.Nodes())
	}
	edge, local, global := 0, 0, 0
	for _, l := range h.Links() {
		switch l.Kind {
		case EdgeLink:
			edge++
		case LocalLink:
			local++
		case GlobalLink:
			global++
		}
	}
	// Rows of dim 0 (size 3): 4 rows * C(3,2) = 12 local links; rows of
	// dim 1 (size 4): 3 rows * C(4,2) = 18 global links.
	if edge != 24 || local != 12 || global != 18 {
		t.Errorf("edge=%d local=%d global=%d", edge, local, global)
	}
	// Every switch: 2 nodes + (3-1) + (4-1) = 7 ports.
	for s, p := range portCount(h) {
		if p != 7 {
			t.Errorf("switch %d has %d ports, want 7", s, p)
		}
	}
}

func TestHyperXBisectionAndDiameter(t *testing.T) {
	h := smallHX()
	// Even ID bisection splits the size-4 dimension 2|2: crossing links
	// are 2*2 per dim-1 row times 3 rows.
	if n := h.BisectionLinks(); n != 12 {
		t.Errorf("bisection links = %d, want 12", n)
	}
	if d := h.Diameter(); d != 2 {
		t.Errorf("2D diameter = %d, want 2", d)
	}
	h3, err := NewHyperX(HyperXConfig{Dims: []int{2, 2, 3}, NodesPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := h3.Diameter(); d != 3 {
		t.Errorf("3D diameter = %d, want 3", d)
	}
}

// hamming counts differing coordinates between two switches.
func hamming(h *HyperX, a, b SwitchID) int {
	n := 0
	for d, size := range h.Cfg.Dims {
		if (int(a)/h.stride[d])%size != (int(b)/h.stride[d])%size {
			n++
		}
	}
	return n
}

func TestHyperXMinimalPaths(t *testing.T) {
	h := smallHX()
	for src := SwitchID(0); int(src) < h.Switches(); src++ {
		for dst := SwitchID(0); int(dst) < h.Switches(); dst++ {
			ps := h.MinimalPaths(src, dst, 8)
			hd := hamming(h, src, dst)
			want := 1
			if hd == 2 {
				want = 2 // two dimension orders
			}
			if len(ps) != want {
				t.Fatalf("%d->%d: %d paths, want %d", src, dst, len(ps), want)
			}
			for _, p := range ps {
				if !h.Valid(p) {
					t.Fatalf("invalid path %v", p)
				}
				if p.InterSwitchHops() != hd {
					t.Fatalf("path %v has %d hops, want Hamming %d", p, p.InterSwitchHops(), hd)
				}
			}
		}
	}
}

func TestHyperXNonMinimalPaths(t *testing.T) {
	h := smallHX()
	rng := sim.NewRNG(9)
	for dst := SwitchID(1); int(dst) < h.Switches(); dst++ {
		ps := h.NonMinimalPaths(0, dst, rng, 2)
		if len(ps) == 0 {
			t.Fatalf("no detours 0->%d", dst)
		}
		for _, p := range ps {
			if !h.Valid(p) {
				t.Fatalf("invalid detour 0->%d: %v", dst, p)
			}
			if p[0] != 0 || p[len(p)-1] != dst {
				t.Fatalf("detour endpoints wrong: %v", p)
			}
		}
	}
	// The arena is reused across calls: retained paths must be copied.
	first := h.NonMinimalPaths(0, 5, nil, 1)
	keep := append(Path(nil), first[0]...)
	h.NonMinimalPaths(6, 11, nil, 1)
	again := h.NonMinimalPaths(0, 5, nil, 1)
	for i := range keep {
		if keep[i] != again[0][i] {
			t.Fatalf("nil-rng detour not stable: %v vs %v", keep, again[0])
		}
	}
}

func TestHyperXFor(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%2000) + 1
		cfg := HyperXFor(n)
		if cfg.Validate() != nil {
			return false
		}
		tp, err := NewHyperX(cfg)
		return err == nil && tp.Nodes() >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Past ~10k nodes a flat 2D array exceeds the radix-64 port budget;
	// the helper must add dimensions instead (validated only).
	for _, n := range []int{6400, 16384, 65536} {
		cfg := HyperXFor(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("HyperXFor(%d) invalid: %v", n, err)
			continue
		}
		sw := 1
		for _, s := range cfg.Dims {
			sw *= s
		}
		if got := sw * cfg.NodesPerSwitch; got < n {
			t.Errorf("HyperXFor(%d) covers only %d nodes (dims %v)", n, got, cfg.Dims)
		}
	}
}
