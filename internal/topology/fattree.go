package topology

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements the folded-Clos fat-tree — the topology of the
// 100 Gb/s clusters the paper compares Slingshot against (§I, §III). Two
// variants share one config:
//
//   - two-level leaf–spine (CorePerAgg == 0, one pod): every leaf connects
//     to every spine; diameter 2.
//   - three-level k-ary-style tree: pods of edge + aggregation switches,
//     with aggregation switch j of every pod wired to the j-th "plane" of
//     core switches; diameter 4.
//
// Nodes attach only to edge switches, which are numbered first so that
// SwitchOf stays a single division (the dense switch-major numbering the
// Topology contract requires).

// FatTreeConfig describes a 2- or 3-level folded-Clos fat-tree.
type FatTreeConfig struct {
	// Pods is the pod count. A two-level tree (CorePerAgg == 0) is a
	// single pod: its AggPerPod switches are the spines.
	Pods int
	// EdgePerPod is the number of edge (leaf) switches per pod.
	EdgePerPod int
	// AggPerPod is the number of aggregation switches per pod (the spine
	// count of a two-level tree).
	AggPerPod int
	// CorePerAgg is the number of core switches in each of the AggPerPod
	// core planes; 0 selects the two-level leaf–spine variant.
	CorePerAgg int
	// NodesPerEdge is the endpoint count per edge switch.
	NodesPerEdge int
	// LinkPerPair is the number of parallel cables between each connected
	// switch pair (0 means 1).
	LinkPerPair int
	// Radix is the switch port count; 0 means Rosetta's 64.
	Radix int
}

// links resolves the parallel-cable multiplicity.
func (c FatTreeConfig) links() int { return linkMultiplicity(c.LinkPerPair) }

// Levels returns 2 for the leaf–spine variant, 3 otherwise.
func (c FatTreeConfig) Levels() int {
	if c.CorePerAgg == 0 {
		return 2
	}
	return 3
}

// Validate checks structural feasibility, including the port budget of
// every switch role.
func (c FatTreeConfig) Validate() error {
	if c.Pods < 1 || c.EdgePerPod < 1 || c.AggPerPod < 1 || c.NodesPerEdge < 1 {
		return fmt.Errorf("topology: non-positive size in fat-tree %+v", c)
	}
	if c.CorePerAgg == 0 && c.Pods != 1 {
		return fmt.Errorf("topology: two-level fat-tree (CorePerAgg 0) must be a single pod, got %d", c.Pods)
	}
	radix := c.Radix
	if radix == 0 {
		radix = RosettaRadix
	}
	lk := c.links()
	edgePorts := c.NodesPerEdge + c.AggPerPod*lk
	aggPorts := c.EdgePerPod*lk + c.CorePerAgg*lk
	corePorts := c.Pods * lk
	if edgePorts > radix || aggPorts > radix || corePorts > radix {
		return fmt.Errorf("topology: fat-tree needs %d edge / %d agg / %d core ports but radix is %d",
			edgePorts, aggPorts, corePorts, radix)
	}
	return nil
}

// Build lets a FatTreeConfig act as a topology.Builder.
func (c FatTreeConfig) Build() (Topology, error) { return NewFatTree(c) }

// FatTree is an immutable built folded-Clos topology.
type FatTree struct {
	adjacency
	linkTable
	PathArena
	Cfg   FatTreeConfig
	nodes int
	// Switch-ID layout: edges [0, edges), aggs [edges, edges+aggs),
	// cores [edges+aggs, sw).
	edges, aggs int
}

var _ Topology = (*FatTree)(nil)

// NewFatTree builds a fat-tree from the config. Wiring is deterministic:
// edge links first (node-major), then edge–agg links (pod-major), then
// agg–core links (pod-major, plane-major within a pod).
func NewFatTree(cfg FatTreeConfig) (*FatTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lk := cfg.links()
	edges := cfg.Pods * cfg.EdgePerPod
	aggs := cfg.Pods * cfg.AggPerPod
	cores := cfg.AggPerPod * cfg.CorePerAgg
	f := &FatTree{
		Cfg:   cfg,
		nodes: edges * cfg.NodesPerEdge,
		edges: edges,
		aggs:  aggs,
	}
	f.initAdjacency(edges + aggs + cores)

	// Edge links: node n attaches to edge switch n / NodesPerEdge.
	f.addEdgeLinks(f.nodes, cfg.NodesPerEdge)

	// Edge–aggregation links (copper, in-pod).
	for p := 0; p < cfg.Pods; p++ {
		for e := 0; e < cfg.EdgePerPod; e++ {
			for a := 0; a < cfg.AggPerPod; a++ {
				es, as := f.edgeSwitch(p, e), f.aggSwitch(p, a)
				for k := 0; k < lk; k++ {
					f.addAdj(es, as, f.addLink(LocalLink, es, as, -1))
				}
			}
		}
	}

	// Aggregation–core links (optical, cross-pod): agg j of every pod
	// connects to every core of plane j.
	for p := 0; p < cfg.Pods; p++ {
		for a := 0; a < cfg.AggPerPod; a++ {
			for c := 0; c < cfg.CorePerAgg; c++ {
				as, cs := f.aggSwitch(p, a), f.coreSwitch(a, c)
				for k := 0; k < lk; k++ {
					f.addAdj(as, cs, f.addLink(GlobalLink, as, cs, -1))
				}
			}
		}
	}
	return f, nil
}

// edgeSwitch returns the switch ID of edge switch e in pod p.
func (f *FatTree) edgeSwitch(p, e int) SwitchID {
	return SwitchID(p*f.Cfg.EdgePerPod + e)
}

// aggSwitch returns the switch ID of aggregation switch a in pod p.
func (f *FatTree) aggSwitch(p, a int) SwitchID {
	return SwitchID(f.edges + p*f.Cfg.AggPerPod + a)
}

// coreSwitch returns the switch ID of core c in plane a.
func (f *FatTree) coreSwitch(a, c int) SwitchID {
	return SwitchID(f.edges + f.aggs + a*f.Cfg.CorePerAgg + c)
}

// podOf returns the pod of an edge switch.
func (f *FatTree) podOf(e SwitchID) int { return int(e) / f.Cfg.EdgePerPod }

// isEdge reports whether s is an edge (leaf) switch.
func (f *FatTree) isEdge(s SwitchID) bool { return int(s) < f.edges }

// Kind names the backend.
func (f *FatTree) Kind() string { return "fattree" }

// Nodes returns the endpoint count.
func (f *FatTree) Nodes() int { return f.nodes }

// SwitchOf returns the edge switch that node n attaches to.
func (f *FatTree) SwitchOf(n NodeID) SwitchID {
	return SwitchID(int(n) / f.Cfg.NodesPerEdge)
}

// SwitchNodes returns the node range of a switch (empty above the edge
// level).
func (f *FatTree) SwitchNodes(s SwitchID) (first NodeID, count int) {
	if !f.isEdge(s) {
		return 0, 0
	}
	npe := f.Cfg.NodesPerEdge
	return NodeID(int(s) * npe), npe
}

// MinimalPaths enumerates up to max minimal paths between two edge
// switches: via each in-pod aggregation switch within a pod, and via each
// (plane, core) pair across pods — the equal-cost ups ECMP hashes over.
// Pairs involving aggregation or core switches fall back to the direct
// link when adjacent (the fabric only routes between node switches).
func (f *FatTree) MinimalPaths(src, dst SwitchID, max int) []Path {
	if max <= 0 {
		max = 4
	}
	if src == dst {
		return []Path{{src}}
	}
	if !f.isEdge(src) || !f.isEdge(dst) {
		if f.localAdjacent(src, dst) {
			return []Path{{src, dst}}
		}
		return nil
	}
	cfg := &f.Cfg
	ps, pd := f.podOf(src), f.podOf(dst)
	var out []Path
	if ps == pd {
		for a := 0; a < cfg.AggPerPod && len(out) < max; a++ {
			out = append(out, Path{src, f.aggSwitch(ps, a), dst})
		}
		return out
	}
	for a := 0; a < cfg.AggPerPod && len(out) < max; a++ {
		for c := 0; c < cfg.CorePerAgg && len(out) < max; c++ {
			out = append(out, Path{src, f.aggSwitch(ps, a), f.coreSwitch(a, c), f.aggSwitch(pd, a), dst})
		}
	}
	return out
}

// arenaUpDown builds one minimal src->dst edge-to-edge path in the arena,
// choosing the aggregation plane (and core within it) with rng; nil rng
// takes the first choice. src == dst yields the single-switch path.
func (f *FatTree) arenaUpDown(ar *PathArena, src, dst SwitchID, rng *sim.RNG) Path {
	if src == dst {
		return ar.arenaPath(src)
	}
	cfg := &f.Cfg
	ps, pd := f.podOf(src), f.podOf(dst)
	a := 0
	if rng != nil {
		a = rng.Intn(cfg.AggPerPod)
	}
	if ps == pd {
		return ar.arenaPath(src, f.aggSwitch(ps, a), dst)
	}
	c := 0
	if rng != nil {
		c = rng.Intn(cfg.CorePerAgg)
	}
	return ar.arenaPath(src, f.aggSwitch(ps, a), f.coreSwitch(a, c), f.aggSwitch(pd, a), dst)
}

// NonMinimalPaths enumerates Valiant-style detours in the topology's
// embedded arena (copy to retain; single-goroutine use only — see
// NonMinimalPathsIn).
func (f *FatTree) NonMinimalPaths(src, dst SwitchID, rng *sim.RNG, max int) []Path {
	return f.NonMinimalPathsIn(&f.PathArena, src, dst, rng, max)
}

// NonMinimalPathsIn enumerates up to max Valiant-style detours in the
// caller's arena: down to a random intermediate edge switch, then
// minimally on to the destination. rng draws follow a fixed order so
// replays are deterministic. The returned paths live in the arena, which
// the next call on it reuses.
func (f *FatTree) NonMinimalPathsIn(a *PathArena, src, dst SwitchID, rng *sim.RNG, max int) []Path {
	if max <= 0 {
		max = 2
	}
	if src == dst || !f.isEdge(src) || !f.isEdge(dst) || f.edges <= 2 {
		return nil
	}
	a.pathNodes = a.pathNodes[:0]
	out := a.outPaths[:0]
	defer func() { a.outPaths = out[:0] }() //simlint:allocok -- non-escaping open-coded defer; stays on the stack
	start := 0
	if rng != nil {
		start = rng.Intn(f.edges)
	}
	for i := 0; i < f.edges && len(out) < max; i++ {
		mid := SwitchID((start + i) % f.edges)
		if mid == src || mid == dst {
			continue
		}
		p := a.arenaCompose(f.arenaUpDown(a, src, mid, rng), f.arenaUpDown(a, mid, dst, rng))
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// BisectionLinks returns the links crossing the even bisection of the
// machine — half the pods (half the leaves for a two-level tree) on each
// side. Every cross-bisection packet climbs out of its half, so the cut
// is the up-link capacity of the smaller half: pods/2 * AggPerPod *
// CorePerAgg * LinkPerPair for three levels, leaves/2 * spines *
// LinkPerPair for two.
func (f *FatTree) BisectionLinks() int {
	cfg := &f.Cfg
	if cfg.Pods < 2 {
		// Single pod (the leaf–spine variant, or a degenerate one-pod
		// three-level tree): bisect the leaves; the cut is their uplinks.
		return cfg.EdgePerPod / 2 * cfg.AggPerPod * cfg.links()
	}
	return cfg.Pods / 2 * cfg.AggPerPod * cfg.CorePerAgg * cfg.links()
}

// FatTreeFor returns a fat-tree covering at least n nodes, scaling the
// way the reduced-scale Dragonfly configs do: small systems get a
// two-level leaf–spine, larger ones a three-level tree with enough pods
// for the node budget. Pods are capped by the core port budget (a core
// owns one link per pod), so very large systems grow their pods instead
// — the returned config always passes Validate.
func FatTreeFor(n int) FatTreeConfig {
	if n < 1 {
		n = 1
	}
	npe := scaledEndpointsPerSwitch(n)
	leaves := (n + npe - 1) / npe
	if leaves <= 4 {
		// Two-level leaf–spine with half-bandwidth spines.
		spines := max(1, (leaves+1)/2)
		return FatTreeConfig{
			Pods: 1, EdgePerPod: max(2, leaves), AggPerPod: spines,
			NodesPerEdge: npe,
		}
	}
	// Three-level: 4 edge switches per pod (more when the pod count
	// would blow the radix-64 core port budget), 2 aggs, 2 cores per
	// plane. Aggregation ports cap EdgePerPod at radix - CorePerAgg.
	epp := max(4, (leaves+RosettaRadix-1)/RosettaRadix)
	epp = min(epp, RosettaRadix-2)
	pods := max(2, (leaves+epp-1)/epp)
	cfg := FatTreeConfig{
		Pods: pods, EdgePerPod: epp, AggPerPod: 2, CorePerAgg: 2,
		NodesPerEdge: npe,
	}
	// Systems past what 64-port switches can cable (~250k nodes) get a
	// correspondingly larger hypothetical radix rather than a config
	// that fails its own Validate.
	for radix := RosettaRadix; cfg.Validate() != nil; radix *= 2 {
		cfg.Radix = radix * 2
	}
	return cfg
}
