package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func small() *Dragonfly {
	return MustNew(Config{Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2})
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 4},                     // no global links
		{Groups: 2, SwitchesPerGroup: 40, NodesPerSwitch: 30, GlobalPerPair: 1}, // port budget
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
	good := []Config{
		ShandyConfig(), MalbecConfig(), CrystalConfig(),
		{Groups: 1, SwitchesPerGroup: 2, NodesPerSwitch: 4},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d should be valid: %v", i, err)
		}
	}
}

func TestCounts(t *testing.T) {
	d := small()
	if d.Switches() != 16 {
		t.Errorf("switches = %d", d.Switches())
	}
	if d.Nodes() != 64 {
		t.Errorf("nodes = %d", d.Nodes())
	}
	// Links: 64 edge + 4 groups * C(4,2)=6 local + C(4,2)=6 pairs * 2 global.
	edge, local, global := 0, 0, 0
	for _, l := range d.Links() {
		switch l.Kind {
		case EdgeLink:
			edge++
		case LocalLink:
			local++
		case GlobalLink:
			global++
		}
	}
	if edge != 64 || local != 24 || global != 12 {
		t.Errorf("edge=%d local=%d global=%d", edge, local, global)
	}
}

func TestGroupAndSwitchMapping(t *testing.T) {
	d := small()
	if d.SwitchOf(0) != 0 || d.SwitchOf(3) != 0 || d.SwitchOf(4) != 1 {
		t.Error("SwitchOf mapping broken")
	}
	if d.GroupOf(0) != 0 || d.GroupOf(3) != 0 || d.GroupOf(4) != 1 {
		t.Error("GroupOf mapping broken")
	}
	if d.GroupOfNode(63) != 3 {
		t.Errorf("GroupOfNode(63) = %d", d.GroupOfNode(63))
	}
}

func TestIntraGroupFullMesh(t *testing.T) {
	d := small()
	for g := 0; g < 4; g++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				a := SwitchID(g*4 + i)
				b := SwitchID(g*4 + j)
				links := d.LinksBetween(a, b)
				if i == j && len(links) != 0 {
					t.Errorf("self link on %d", a)
				}
				if i != j && len(links) != 1 {
					t.Errorf("switches %d,%d: %d links", a, b, len(links))
				}
			}
		}
	}
}

func TestInterGroupFullConnectivity(t *testing.T) {
	d := small()
	for g1 := GroupID(0); g1 < 4; g1++ {
		for g2 := GroupID(0); g2 < 4; g2++ {
			links := d.GlobalLinks(g1, g2)
			if g1 == g2 && links != nil {
				t.Errorf("self group links g%d", g1)
			}
			if g1 != g2 && len(links) != 2 {
				t.Errorf("groups %d,%d: %d links, want 2", g1, g2, len(links))
			}
		}
	}
}

func TestGlobalLinkBalance(t *testing.T) {
	// Round-robin assignment must not overload any switch.
	d := MustNew(ShandyConfig())
	perSwitch := make(map[SwitchID]int)
	for _, l := range d.Links() {
		if l.Kind == GlobalLink {
			perSwitch[l.A]++
			perSwitch[l.B]++
		}
	}
	// Shandy: 56 global links per group over 8 switches = 7 each.
	for s, n := range perSwitch {
		if n != 7 {
			t.Errorf("switch %d has %d global links, want 7", s, n)
		}
	}
}

func TestInterSwitchHops(t *testing.T) {
	d := small()
	if h := d.InterSwitchHops(0, 1); h != 0 {
		t.Errorf("same switch hops = %d", h)
	}
	if h := d.InterSwitchHops(0, 5); h != 1 {
		t.Errorf("same group hops = %d", h)
	}
	h := d.InterSwitchHops(0, 63)
	if h < 1 || h > 3 {
		t.Errorf("cross-group hops = %d", h)
	}
}

func TestMinimalPathsSameSwitch(t *testing.T) {
	d := small()
	ps := d.MinimalPaths(2, 2, 4)
	if len(ps) != 1 || len(ps[0]) != 1 {
		t.Fatalf("paths = %v", ps)
	}
}

func TestMinimalPathsSameGroup(t *testing.T) {
	d := small()
	ps := d.MinimalPaths(0, 3, 4)
	if len(ps) != 1 || ps[0].InterSwitchHops() != 1 {
		t.Fatalf("paths = %v", ps)
	}
	if !d.Valid(ps[0]) {
		t.Error("invalid path")
	}
}

func TestMinimalPathsCrossGroup(t *testing.T) {
	d := small()
	for src := SwitchID(0); src < 4; src++ {
		for dst := SwitchID(12); dst < 16; dst++ {
			ps := d.MinimalPaths(src, dst, 4)
			if len(ps) != 2 { // GlobalPerPair = 2
				t.Fatalf("src=%d dst=%d: %d minimal paths", src, dst, len(ps))
			}
			for _, p := range ps {
				if !d.Valid(p) {
					t.Errorf("invalid path %v", p)
				}
				if p.InterSwitchHops() > 3 {
					t.Errorf("minimal path too long: %v", p)
				}
				// Exactly one global hop.
				globals := 0
				for i := 1; i < len(p); i++ {
					for _, id := range d.LinksBetween(p[i-1], p[i]) {
						if d.Links()[id].Kind == GlobalLink {
							globals++
							break
						}
					}
				}
				if globals != 1 {
					t.Errorf("path %v crosses %d global links", p, globals)
				}
			}
		}
	}
}

func TestDiameterProperty(t *testing.T) {
	// Property over all node pairs of a random-ish small system: minimal
	// paths exist, are valid, and never exceed 3 inter-switch hops.
	d := MustNew(Config{Groups: 5, SwitchesPerGroup: 3, NodesPerSwitch: 2, GlobalPerPair: 1})
	for a := 0; a < d.Nodes(); a++ {
		for b := 0; b < d.Nodes(); b++ {
			sa, sb := d.SwitchOf(NodeID(a)), d.SwitchOf(NodeID(b))
			ps := d.MinimalPaths(sa, sb, 4)
			if len(ps) == 0 {
				t.Fatalf("no path %d->%d", a, b)
			}
			for _, p := range ps {
				if !d.Valid(p) || p.InterSwitchHops() > 3 {
					t.Fatalf("bad minimal path %v for %d->%d", p, a, b)
				}
			}
		}
	}
}

func TestNonMinimalPaths(t *testing.T) {
	d := small()
	rng := sim.NewRNG(1)
	// Same group: detours via third switch.
	ps := d.NonMinimalPaths(0, 1, rng, 2)
	if len(ps) != 2 {
		t.Fatalf("same-group non-minimal: %v", ps)
	}
	for _, p := range ps {
		if !d.Valid(p) || p.InterSwitchHops() != 2 {
			t.Errorf("bad detour %v", p)
		}
	}
	// Cross group: via intermediate group.
	ps = d.NonMinimalPaths(0, 15, rng, 2)
	if len(ps) == 0 {
		t.Fatal("no cross-group non-minimal paths")
	}
	for _, p := range ps {
		if !d.Valid(p) {
			t.Errorf("invalid path %v", p)
		}
		globals := 0
		for i := 1; i < len(p); i++ {
			kind := LocalLink
			for _, id := range d.LinksBetween(p[i-1], p[i]) {
				kind = d.Links()[id].Kind
			}
			if kind == GlobalLink {
				globals++
			}
		}
		if globals != 2 {
			t.Errorf("valiant path %v crosses %d globals, want 2", p, globals)
		}
	}
}

func TestNonMinimalTwoGroups(t *testing.T) {
	d := MustNew(Config{Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 2, GlobalPerPair: 4})
	ps := d.NonMinimalPaths(0, 7, sim.NewRNG(2), 3)
	for _, p := range ps {
		if !d.Valid(p) {
			t.Errorf("invalid alt-gateway path %v", p)
		}
	}
}

func TestGatewaysTo(t *testing.T) {
	d := MustNew(ShandyConfig())
	for g1 := GroupID(0); g1 < 8; g1++ {
		for g2 := GroupID(0); g2 < 8; g2++ {
			if g1 == g2 {
				continue
			}
			gws := d.GatewaysTo(g1, g2)
			if len(gws) == 0 {
				t.Fatalf("no gateways %d->%d", g1, g2)
			}
			for _, gw := range gws {
				if d.GroupOf(gw) != g1 {
					t.Errorf("gateway %d not in group %d", gw, g1)
				}
			}
		}
	}
}

func TestMaxSystemArithmetic(t *testing.T) {
	s := MaxSystem()
	if s.SwitchesPerGroup != 32 || s.LocalPorts != 31 || s.GlobalPorts != 17 {
		t.Errorf("spec = %+v", s)
	}
	if s.NodesPerGroup != 512 {
		t.Errorf("nodes/group = %d", s.NodesPerGroup)
	}
	if s.GlobalLinksPer != 544 {
		t.Errorf("global links/group = %d", s.GlobalLinksPer)
	}
	if s.Groups != 545 {
		t.Errorf("groups = %d", s.Groups)
	}
	if s.Endpoints != 279040 {
		t.Errorf("endpoints = %d", s.Endpoints)
	}
	if s.AddressableNodes != 261632 {
		t.Errorf("addressable nodes = %d", s.AddressableNodes)
	}
}

func TestShandyPeakBandwidths(t *testing.T) {
	d := MustNew(ShandyConfig())
	if n := d.BisectionLinks(); n != 128 {
		t.Errorf("bisection links = %d, want 4*4*8 = 128", n)
	}
	// 128 links * 200 Gb/s * 2 dirs = 51.2 Tb/s = 6.4 TB/s.
	if got := d.BisectionPeakBits(LinkBits); got != 51_200e9 {
		t.Errorf("bisection peak = %d bits/s", got)
	}
	// 8/7 * 224 links * 2 dirs * 200 Gb/s = 102.4 Tb/s = 12.8 TB/s.
	if got := d.AlltoallPeakBits(LinkBits); got != 102_400e9 {
		t.Errorf("alltoall peak = %d bits/s", got)
	}
}

func TestSystemConfigs(t *testing.T) {
	sh := MustNew(ShandyConfig())
	if sh.Nodes() != 1024 {
		t.Errorf("shandy nodes = %d", sh.Nodes())
	}
	ml := MustNew(MalbecConfig())
	if ml.Nodes() != 512 { // >= 484 (the paper's machine)
		t.Errorf("malbec nodes = %d", ml.Nodes())
	}
	cr := MustNew(CrystalConfig())
	if cr.Nodes() != 768 { // >= 698
		t.Errorf("crystal nodes = %d", cr.Nodes())
	}
}

func TestScaledConfig(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		cfg := ScaledConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("ScaledConfig(%d) invalid: %v", n, err)
			continue
		}
		d := MustNew(cfg)
		if d.Nodes() < n {
			t.Errorf("ScaledConfig(%d) covers only %d nodes", n, d.Nodes())
		}
	}
}

func TestScaledConfigProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%2000) + 1
		cfg := ScaledConfig(n)
		if cfg.Validate() != nil {
			return false
		}
		return MustNew(cfg).Nodes() >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinkKindString(t *testing.T) {
	if EdgeLink.String() != "edge" || LocalLink.String() != "local" ||
		GlobalLink.String() != "global" || LinkKind(9).String() != "unknown" {
		t.Error("LinkKind strings wrong")
	}
}

func TestValidRejects(t *testing.T) {
	d := small()
	bad := []Path{
		{},
		{0, 0},         // repeat
		{0, 99},        // out of range
		{0, 5, 0},      // repeat
		{SwitchID(-1)}, // negative
	}
	for _, p := range bad {
		if d.Valid(p) {
			t.Errorf("Valid(%v) = true", p)
		}
	}
	// Non-adjacent: two switches in different groups with no direct link.
	found := false
	for s := SwitchID(4); s < 8 && !found; s++ {
		if len(d.LinksBetween(0, s)) == 0 {
			if d.Valid(Path{0, s}) {
				t.Errorf("Valid accepted non-adjacent hop 0-%d", s)
			}
			found = true
		}
	}
}
