package topology

import "repro/internal/sim"

// Path is a sequence of switches from the source switch to the destination
// switch, inclusive of both. A path of length 1 means source and destination
// nodes share a switch.
type Path []SwitchID

// InterSwitchHops returns the number of switch-to-switch links traversed.
func (p Path) InterSwitchHops() int { return len(p) - 1 }

// intraPaths returns the minimal intra-group paths between two switches of
// the same group: the direct link when one exists, otherwise (Grid2D) the
// two row-then-column / column-then-row alternatives.
func (d *Dragonfly) intraPaths(a, b SwitchID) []Path {
	if a == b {
		return []Path{{a}}
	}
	if d.localAdjacent(a, b) {
		return []Path{{a, b}}
	}
	// Grid2D, different row and column.
	base := (int(a) / d.Cfg.SwitchesPerGroup) * d.Cfg.SwitchesPerGroup
	ia, ib := int(a)-base, int(b)-base
	ra, ca := ia/d.cols, ia%d.cols
	rb, cb := ib/d.cols, ib%d.cols
	m1 := SwitchID(base + ra*d.cols + cb) // along a's row to b's column
	m2 := SwitchID(base + rb*d.cols + ca) // along a's column to b's row
	return []Path{{a, m1, b}, {a, m2, b}}
}

// compose concatenates path segments, merging equal junction switches. It
// returns nil if the result revisits a switch (the caller filters).
// Paths are at most a handful of switches, so the revisit check is a
// linear scan rather than a map (this runs per routing decision).
func (d *Dragonfly) compose(segs ...Path) Path {
	var out Path
	for _, seg := range segs {
		for i, s := range seg {
			if len(out) > 0 && i == 0 && out[len(out)-1] == s {
				continue // shared junction
			}
			for _, prev := range out {
				if prev == s {
					return nil
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// MinimalPaths enumerates up to max minimal paths between the given
// switches. Within a group the candidates are the intra-group minimal
// paths (1 hop on a full mesh; up to 2 hops through shared intermediate
// switches on an Aries-style 2D grid). Across groups, a minimal path uses
// exactly one global link between the two groups, with minimal intra-group
// segments to and from the gateways; one candidate is produced per global
// link (these are the distinct minimal routes adaptive routing can weigh).
func (d *Dragonfly) MinimalPaths(src, dst SwitchID, max int) []Path {
	if max <= 0 {
		max = 4
	}
	if src == dst {
		return []Path{{src}}
	}
	gs, gd := d.GroupOf(src), d.GroupOf(dst)
	if gs == gd {
		ps := d.intraPaths(src, dst)
		if len(ps) > max {
			ps = ps[:max]
		}
		return ps
	}
	var out []Path
	for _, id := range d.globalOut[gs][gd] {
		l := d.links[id]
		a, b := l.A, l.B
		if d.GroupOf(a) != gs {
			a, b = b, a
		}
		for _, p1 := range d.intraPaths(src, a) {
			for _, p2 := range d.intraPaths(b, dst) {
				if p := d.compose(p1, Path{a, b}, p2); p != nil {
					out = append(out, p)
					if len(out) >= max {
						return out
					}
				}
				break // one tail variant per head keeps candidates diverse
			}
		}
		if len(out) >= max {
			break
		}
	}
	if len(out) == 0 {
		// Degenerate overlaps (e.g. src is also the far gateway's grid
		// intermediate): fall back to any valid single-link composition.
		for _, id := range d.globalOut[gs][gd] {
			l := d.links[id]
			a, b := l.A, l.B
			if d.GroupOf(a) != gs {
				a, b = b, a
			}
			for _, p1 := range d.intraPaths(src, a) {
				for _, p2 := range d.intraPaths(b, dst) {
					if p := d.compose(p1, Path{a, b}, p2); p != nil {
						return []Path{p}
					}
				}
			}
		}
	}
	return out
}

// arenaIntraFirst is intraPaths(a, b)[0] — the first minimal intra-group
// path — built in the given PathArena (see interface.go): NonMinimalPaths
// runs once per routed packet, and the hot path must construct and discard
// candidate paths without allocating.
func (d *Dragonfly) arenaIntraFirst(ar *PathArena, a, b SwitchID) Path {
	if a == b {
		return ar.arenaPath(a)
	}
	if d.localAdjacent(a, b) {
		return ar.arenaPath(a, b)
	}
	// Grid2D, different row and column: along a's row to b's column.
	base := (int(a) / d.Cfg.SwitchesPerGroup) * d.Cfg.SwitchesPerGroup
	ia, ib := int(a)-base, int(b)-base
	m1 := SwitchID(base + (ia/d.cols)*d.cols + ib%d.cols)
	return ar.arenaPath(a, m1, b)
}

// NonMinimalPaths enumerates up to max non-minimal (Valiant-style) paths
// in the topology's embedded arena: callers must copy any path they
// retain past their routing decision, and must not route on a shared
// Dragonfly from multiple goroutines (see NonMinimalPathsIn).
func (d *Dragonfly) NonMinimalPaths(src, dst SwitchID, rng *sim.RNG, max int) []Path {
	return d.NonMinimalPathsIn(&d.PathArena, src, dst, rng, max)
}

// NonMinimalPathsIn enumerates up to max non-minimal (Valiant-style)
// paths in the caller's arena. Within a group the detour is via a random
// third switch of the group; across groups it is via a random
// intermediate group. rng supplies the randomization; a nil rng yields
// deterministic (first-choice) detours. The returned paths live in the
// arena, which the next call on it reuses.
func (d *Dragonfly) NonMinimalPathsIn(a *PathArena, src, dst SwitchID, rng *sim.RNG, max int) []Path {
	if max <= 0 {
		max = 2
	}
	if src == dst {
		return nil
	}
	a.pathNodes = a.pathNodes[:0]
	out := a.outPaths[:0]
	defer func() { a.outPaths = out[:0] }() //simlint:allocok -- non-escaping open-coded defer; stays on the stack
	gs, gd := d.GroupOf(src), d.GroupOf(dst)
	if gs == gd {
		// Detour via another switch in the same group.
		base := int(gs) * d.Cfg.SwitchesPerGroup
		n := d.Cfg.SwitchesPerGroup
		if n <= 2 {
			return nil
		}
		start := 0
		if rng != nil {
			start = rng.Intn(n)
		}
		for i := 0; i < n && len(out) < max; i++ {
			mid := SwitchID(base + (start+i)%n)
			if mid == src || mid == dst {
				continue
			}
			p := a.arenaCompose(d.arenaIntraFirst(a, src, mid), d.arenaIntraFirst(a, mid, dst))
			if p != nil {
				out = append(out, p)
			}
		}
		return out
	}
	// Detour via an intermediate group: src group -> gi -> dst group.
	ng := d.Cfg.Groups
	if ng <= 2 {
		// No third group: detour within the source group to a different
		// gateway, then minimal.
		out = d.detourViaAltGateway(a, src, dst, rng, max, out)
		return out
	}
	start := 0
	if rng != nil {
		start = rng.Intn(ng)
	}
	for i := 0; i < ng && len(out) < max; i++ {
		gi := GroupID((start + i) % ng)
		if gi == gs || gi == gd {
			continue
		}
		p := d.pathViaGroup(a, src, dst, gi, rng)
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// pathViaGroup constructs src -> (gateway into gi) -> (gateway out of gi)
// -> dst, using one global link into gi and one out of gi, with minimal
// intra-group segments between the pieces.
func (d *Dragonfly) pathViaGroup(a *PathArena, src, dst SwitchID, gi GroupID, rng *sim.RNG) Path {
	gs, gd := d.GroupOf(src), d.GroupOf(dst)
	in := d.globalOut[gs][gi]
	outL := d.globalOut[gi][gd]
	if len(in) == 0 || len(outL) == 0 {
		return nil
	}
	//simlint:allocok -- called directly below and never escapes; inlined without a heap closure
	pick := func(ids []int) Link {
		i := 0
		if rng != nil {
			i = rng.Intn(len(ids))
		}
		return d.links[ids[i]]
	}
	l1 := pick(in)
	a1, b1 := l1.A, l1.B // a1 in gs, b1 in gi
	if d.GroupOf(a1) != gs {
		a1, b1 = b1, a1
	}
	l2 := pick(outL)
	a2, b2 := l2.A, l2.B // a2 in gi, b2 in gd
	if d.GroupOf(a2) != gi {
		a2, b2 = b2, a2
	}
	return a.arenaCompose(
		d.arenaIntraFirst(a, src, a1),
		a.arenaPath(a1, b1),
		d.arenaIntraFirst(a, b1, a2),
		a.arenaPath(a2, b2),
		d.arenaIntraFirst(a, b2, dst),
	)
}

// detourViaAltGateway handles the two-group case: route via a gateway
// switch other than the minimal one. out is the caller's arena-backed
// accumulator.
func (d *Dragonfly) detourViaAltGateway(ar *PathArena, src, dst SwitchID, rng *sim.RNG, max int, out []Path) []Path {
	gs, gd := d.GroupOf(src), d.GroupOf(dst)
	links := d.globalOut[gs][gd]
	if len(links) <= 1 {
		return out
	}
	start := 0
	if rng != nil {
		start = rng.Intn(len(links))
	}
	for i := 0; i < len(links) && len(out) < max; i++ {
		l := d.links[links[(start+i)%len(links)]]
		a, b := l.A, l.B
		if d.GroupOf(a) != gs {
			a, b = b, a
		}
		if a == src {
			continue // that is a minimal path, not a detour
		}
		p := ar.arenaCompose(d.arenaIntraFirst(ar, src, a), ar.arenaPath(a, b), d.arenaIntraFirst(ar, b, dst))
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}
