package topology

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements HyperX — the generalized flattened butterfly: an
// L-dimensional array of switches, fully connected along every
// dimension-aligned row, so a minimal route corrects each differing
// coordinate with exactly one hop (diameter = L). It is the third point
// of the paper's design space: direct like the Dragonfly but without its
// group hierarchy, and an all-switch-to-switch contrast to the fat-tree's
// indirect core.

// HyperXConfig describes a HyperX / flattened-butterfly system.
type HyperXConfig struct {
	// Dims lists the switch count along each dimension (each >= 2).
	// A switch's ID encodes its coordinates with dimension 0 least
	// significant: id = c0 + Dims[0]*(c1 + Dims[1]*(c2 + ...)).
	Dims []int
	// NodesPerSwitch is the endpoint count per switch.
	NodesPerSwitch int
	// LinkPerPair is the number of parallel cables between each connected
	// switch pair (0 means 1).
	LinkPerPair int
	// Radix is the switch port count; 0 means Rosetta's 64.
	Radix int
}

// links resolves the parallel-cable multiplicity.
func (c HyperXConfig) links() int { return linkMultiplicity(c.LinkPerPair) }

// Validate checks structural feasibility, including the port budget.
func (c HyperXConfig) Validate() error {
	if len(c.Dims) == 0 || c.NodesPerSwitch < 1 {
		return fmt.Errorf("topology: bad HyperX config %+v", c)
	}
	ports := c.NodesPerSwitch
	for _, s := range c.Dims {
		if s < 2 {
			return fmt.Errorf("topology: HyperX dimension of size %d (want >= 2)", s)
		}
		ports += (s - 1) * c.links()
	}
	radix := c.Radix
	if radix == 0 {
		radix = RosettaRadix
	}
	if ports > radix {
		return fmt.Errorf("topology: HyperX switch needs %d ports but radix is %d", ports, radix)
	}
	return nil
}

// Build lets a HyperXConfig act as a topology.Builder.
func (c HyperXConfig) Build() (Topology, error) { return NewHyperX(c) }

// HyperX is an immutable built flattened-butterfly topology.
type HyperX struct {
	adjacency
	linkTable
	PathArena
	Cfg   HyperXConfig
	nodes int
	// stride[d] is the ID weight of coordinate d.
	stride []int
}

var _ Topology = (*HyperX)(nil)

// NewHyperX builds a HyperX from the config. Wiring is deterministic:
// edge links first (node-major), then for each switch in ID order its
// row links per dimension towards higher-coordinate partners. Links in
// dimension 0 are electrical (rack-internal rows); higher dimensions are
// optical like Dragonfly global links.
func NewHyperX(cfg HyperXConfig) (*HyperX, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sw := 1
	stride := make([]int, len(cfg.Dims))
	for d, s := range cfg.Dims {
		stride[d] = sw
		sw *= s
	}
	h := &HyperX{
		Cfg:    cfg,
		nodes:  sw * cfg.NodesPerSwitch,
		stride: stride,
	}
	h.initAdjacency(sw)

	// Edge links: node n attaches to switch n / NodesPerSwitch.
	h.addEdgeLinks(h.nodes, cfg.NodesPerSwitch)

	// Row links: for every switch, every dimension, every partner with a
	// higher coordinate in that dimension (so each pair is wired once).
	lk := cfg.links()
	for s := 0; s < sw; s++ {
		for d, size := range cfg.Dims {
			c := (s / stride[d]) % size
			kind := LocalLink
			if d > 0 {
				kind = GlobalLink
			}
			for t := c + 1; t < size; t++ {
				a, b := SwitchID(s), SwitchID(s+(t-c)*stride[d])
				for k := 0; k < lk; k++ {
					h.addAdj(a, b, h.addLink(kind, a, b, -1))
				}
			}
		}
	}
	return h, nil
}

// coordsInto decomposes a switch ID into the given coordinate buffer.
func (h *HyperX) coordsInto(s SwitchID, buf []int) []int {
	for d, size := range h.Cfg.Dims {
		buf[d] = (int(s) / h.stride[d]) % size
	}
	return buf
}

// Kind names the backend.
func (h *HyperX) Kind() string { return "hyperx" }

// Nodes returns the endpoint count.
func (h *HyperX) Nodes() int { return h.nodes }

// SwitchOf returns the switch that node n attaches to.
func (h *HyperX) SwitchOf(n NodeID) SwitchID {
	return SwitchID(int(n) / h.Cfg.NodesPerSwitch)
}

// SwitchNodes returns the contiguous node range attached to switch s.
func (h *HyperX) SwitchNodes(s SwitchID) (first NodeID, count int) {
	nps := h.Cfg.NodesPerSwitch
	return NodeID(int(s) * nps), nps
}

// MinimalPaths enumerates up to max minimal paths: one per ordering of
// the differing dimensions (dimension-order routing along each), in
// deterministic lexicographic-permutation order. The minimal length is
// the Hamming distance of the coordinates — at most len(Dims) hops.
func (h *HyperX) MinimalPaths(src, dst SwitchID, max int) []Path {
	if max <= 0 {
		max = 4
	}
	if src == dst {
		return []Path{{src}}
	}
	sc := h.coordsInto(src, make([]int, len(h.Cfg.Dims)))
	dc := h.coordsInto(dst, make([]int, len(h.Cfg.Dims)))
	var diff []int
	for d := range sc {
		if sc[d] != dc[d] {
			diff = append(diff, d)
		}
	}
	var out []Path
	perm := make([]int, 0, len(diff))
	used := make([]bool, len(diff))
	var walk func()
	//simlint:allocok -- recursion over dimension permutations; results are cached per (src,dst) by the fabric's path cache
	walk = func() {
		if len(out) >= max {
			return
		}
		if len(perm) == len(diff) {
			p := Path{src}
			cur := src
			for _, d := range perm {
				cur += SwitchID((dc[d] - sc[d]) * h.stride[d])
				p = append(p, cur)
			}
			out = append(out, p)
			return
		}
		for i, d := range diff {
			if used[i] {
				continue
			}
			used[i] = true
			perm = append(perm, d)
			walk()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	walk()
	return out
}

// arenaDOR builds the first-choice (ascending-dimension) minimal path in
// the arena. src == dst yields the single-switch path.
func (h *HyperX) arenaDOR(a *PathArena, src, dst SwitchID) Path {
	sc := h.coordsInto(src, a.coordA)
	dc := h.coordsInto(dst, a.coordB)
	s := len(a.pathNodes)
	a.pathNodes = append(a.pathNodes, src)
	cur := src
	for d := range sc {
		if sc[d] != dc[d] {
			cur += SwitchID((dc[d] - sc[d]) * h.stride[d])
			a.pathNodes = append(a.pathNodes, cur)
		}
	}
	return a.pathNodes[s:len(a.pathNodes):len(a.pathNodes)]
}

// NonMinimalPaths enumerates Valiant detours in the topology's embedded
// arena (copy to retain; single-goroutine use only — see
// NonMinimalPathsIn).
func (h *HyperX) NonMinimalPaths(src, dst SwitchID, rng *sim.RNG, max int) []Path {
	return h.NonMinimalPathsIn(&h.PathArena, src, dst, rng, max)
}

// NonMinimalPathsIn enumerates up to max Valiant detours in the caller's
// arena, via a random intermediate switch with dimension-order routing to
// it and onwards. rng draws follow a fixed order so replays are
// deterministic; nil rng starts from switch 0. The returned paths live in
// the arena, which the next call on it reuses.
func (h *HyperX) NonMinimalPathsIn(a *PathArena, src, dst SwitchID, rng *sim.RNG, max int) []Path {
	if max <= 0 {
		max = 2
	}
	if src == dst || h.sw <= 2 {
		return nil
	}
	a.ensureCoords(len(h.Cfg.Dims)) //simlint:allocok -- one-time lazy growth per arena; steady state reuses
	a.pathNodes = a.pathNodes[:0]
	out := a.outPaths[:0]
	defer func() { a.outPaths = out[:0] }() //simlint:allocok -- non-escaping open-coded defer; stays on the stack
	start := 0
	if rng != nil {
		start = rng.Intn(h.sw)
	}
	// A window of candidate intermediates bounds the scan on big systems;
	// detours through distinct intermediates rarely collide, so a handful
	// of candidates is enough to fill max.
	tries := h.sw
	if tries > 4*max+2 {
		tries = 4*max + 2
	}
	for i := 0; i < tries && len(out) < max; i++ {
		mid := SwitchID((start + i) % h.sw)
		if mid == src || mid == dst {
			continue
		}
		// The two DOR segments are built before composing, so the compose
		// sees both and can reject revisits (e.g. mid sharing a row with
		// both endpoints can route back through src).
		seg1 := h.arenaDOR(a, src, mid)
		seg2 := h.arenaDOR(a, mid, dst)
		if p := a.arenaCompose(seg1, seg2); p != nil {
			out = append(out, p)
		}
	}
	return out
}

// BisectionLinks returns the row links crossing the even ID bisection of
// the switches. With an even highest dimension this is the textbook
// HyperX cut: (S/2)*(S-S/2)*LinkPerPair links per highest-dimension row
// times the number of such rows.
func (h *HyperX) BisectionLinks() int {
	half := SwitchID(h.sw / 2)
	n := 0
	for _, l := range h.links {
		if l.Kind != EdgeLink && (l.A < half) != (l.B < half) {
			n++
		}
	}
	return n
}

// HyperXFor returns a near-regular HyperX covering at least n nodes,
// mirroring the reduced-scale Dragonfly sizing. It starts from a
// near-square 2D array and adds dimensions when a flat array would blow
// the radix-64 port budget (each dimension of size S costs S-1 ports),
// so the returned config always passes Validate.
func HyperXFor(n int) HyperXConfig {
	if n < 1 {
		n = 1
	}
	nps := scaledEndpointsPerSwitch(n)
	sw := (n + nps - 1) / nps
	for ndims := 2; ; ndims++ {
		// Near-regular factorization: every dimension the ndims-th root
		// (rounded up), the last sized to just cover the remainder.
		side := 2
		for pow(side, ndims) < sw {
			side++
		}
		dims := make([]int, ndims)
		rest := sw
		for d := 0; d < ndims-1; d++ {
			dims[d] = side
			rest = (rest + side - 1) / side
		}
		dims[ndims-1] = max(2, rest)
		cfg := HyperXConfig{Dims: dims, NodesPerSwitch: nps}
		if cfg.Validate() == nil {
			return cfg
		}
	}
}

// pow is integer exponentiation for the small sizing arithmetic above.
func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
