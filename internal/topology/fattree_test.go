package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// smallFT is a 3-level tree: 2 pods x (2 edge + 2 agg), 2 cores per
// plane, 4 nodes per edge switch = 16 nodes, 12 switches.
func smallFT() *FatTree {
	f, err := NewFatTree(FatTreeConfig{
		Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 4,
	})
	if err != nil {
		panic(err)
	}
	return f
}

// leafSpine is a 2-level tree: 4 leaves x 2 spines, 4 nodes per leaf.
func leafSpine() *FatTree {
	f, err := NewFatTree(FatTreeConfig{
		Pods: 1, EdgePerPod: 4, AggPerPod: 2, NodesPerEdge: 4,
	})
	if err != nil {
		panic(err)
	}
	return f
}

func TestFatTreeValidate(t *testing.T) {
	bad := []FatTreeConfig{
		{},
		{Pods: 2, EdgePerPod: 2, AggPerPod: 2, NodesPerEdge: 4},                 // 2 pods, no cores
		{Pods: 1, EdgePerPod: 2, AggPerPod: 63, NodesPerEdge: 4},                // edge port budget
		{Pods: 65, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 4}, // core port budget
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
}

// portCount tallies every switch's attached link endpoints (edge links
// count once, inter-switch links once per side).
func portCount(tp Topology) []int {
	ports := make([]int, tp.Switches())
	for _, l := range tp.Links() {
		if l.Kind == EdgeLink {
			ports[l.A]++
			continue
		}
		ports[l.A]++
		ports[l.B]++
	}
	return ports
}

func TestFatTreeCounts(t *testing.T) {
	f := smallFT()
	if f.Switches() != 12 { // 4 edge + 4 agg + 4 core
		t.Errorf("switches = %d", f.Switches())
	}
	if f.Nodes() != 16 {
		t.Errorf("nodes = %d", f.Nodes())
	}
	edge, local, global := 0, 0, 0
	for _, l := range f.Links() {
		switch l.Kind {
		case EdgeLink:
			edge++
		case LocalLink:
			local++
		case GlobalLink:
			global++
		}
	}
	// 16 edge; edge-agg: 2 pods * 2*2 = 8; agg-core: 2 pods * 2 aggs * 2 cores = 8.
	if edge != 16 || local != 8 || global != 8 {
		t.Errorf("edge=%d local=%d global=%d", edge, local, global)
	}
	// Port budget: every switch within the (default Rosetta) radix, and
	// exactly the closed-form role counts.
	for s, p := range portCount(f) {
		want := 4 + 2 // edge: nodes + aggs
		if s >= 4 && s < 8 {
			want = 2 + 2 // agg: edges + cores of its plane
		} else if s >= 8 {
			want = 2 // core: one per pod
		}
		if p != want {
			t.Errorf("switch %d has %d ports, want %d", s, p, want)
		}
	}
}

func TestFatTreeSwitchNodes(t *testing.T) {
	f := smallFT()
	for n := NodeID(0); int(n) < f.Nodes(); n++ {
		s := f.SwitchOf(n)
		first, count := f.SwitchNodes(s)
		if count != 4 || n < first || int(n) >= int(first)+count {
			t.Fatalf("node %d not in SwitchNodes(%d) = (%d, %d)", n, s, first, count)
		}
	}
	for s := 4; s < f.Switches(); s++ { // aggs and cores host no nodes
		if _, count := f.SwitchNodes(SwitchID(s)); count != 0 {
			t.Errorf("switch %d hosts %d nodes, want 0", s, count)
		}
	}
}

func TestFatTreeBisectionAndDiameter(t *testing.T) {
	f := smallFT()
	// Even pod bisection: uplink capacity of one pod = 2 aggs * 2 cores.
	if n := f.BisectionLinks(); n != 4 {
		t.Errorf("bisection links = %d, want 4", n)
	}
	if d := f.Diameter(); d != 4 {
		t.Errorf("3-level diameter = %d, want 4", d)
	}
	ls := leafSpine()
	if n := ls.BisectionLinks(); n != 4 { // 2 leaves * 2 spines
		t.Errorf("leaf-spine bisection links = %d, want 4", n)
	}
	if d := ls.Diameter(); d != 2 {
		t.Errorf("2-level diameter = %d, want 2", d)
	}
}

func TestFatTreeMinimalPaths(t *testing.T) {
	for _, f := range []*FatTree{smallFT(), leafSpine()} {
		for src := SwitchID(0); int(src) < f.edges; src++ {
			for dst := SwitchID(0); int(dst) < f.edges; dst++ {
				ps := f.MinimalPaths(src, dst, 8)
				if len(ps) == 0 {
					t.Fatalf("no path %d->%d", src, dst)
				}
				wantHops := 0
				switch {
				case src == dst:
					wantHops = 0
				case f.podOf(src) == f.podOf(dst):
					wantHops = 2
				default:
					wantHops = 4
				}
				for _, p := range ps {
					if !f.Valid(p) {
						t.Fatalf("invalid path %v", p)
					}
					if p.InterSwitchHops() != wantHops {
						t.Fatalf("path %v has %d hops, want %d", p, p.InterSwitchHops(), wantHops)
					}
				}
			}
		}
	}
}

func TestFatTreeNonMinimalPaths(t *testing.T) {
	f := smallFT()
	rng := sim.NewRNG(3)
	ps := f.NonMinimalPaths(0, 3, rng, 2)
	if len(ps) == 0 {
		t.Fatal("no non-minimal paths")
	}
	for _, p := range ps {
		if !f.Valid(p) {
			t.Errorf("invalid detour %v", p)
		}
		if p.InterSwitchHops() <= 0 {
			t.Errorf("degenerate detour %v", p)
		}
	}
	// Nil rng is the deterministic first choice, and replays with equal
	// seeds reproduce the same candidates (the RNG-stream contract).
	a := f.NonMinimalPaths(0, 3, nil, 2)
	aCopy := make([]Path, len(a))
	for i, p := range a {
		aCopy[i] = append(Path(nil), p...)
	}
	b := f.NonMinimalPaths(0, 3, nil, 2)
	if len(aCopy) != len(b) {
		t.Fatalf("nil-rng replay differs: %v vs %v", aCopy, b)
	}
	for i := range b {
		for j := range b[i] {
			if aCopy[i][j] != b[i][j] {
				t.Fatalf("nil-rng replay differs at %d: %v vs %v", i, aCopy[i], b[i])
			}
		}
	}
}

func TestFatTreeFor(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%2000) + 1
		cfg := FatTreeFor(n)
		if cfg.Validate() != nil {
			return false
		}
		tp, err := NewFatTree(cfg)
		return err == nil && tp.Nodes() >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Past 4096 nodes a naive pod count would blow the radix-64 core
	// port budget; the helper must grow pods instead (validated only —
	// building a 32k-node tree is needlessly slow for a unit test).
	for _, n := range []int{4097, 8192, 20000, 32768} {
		cfg := FatTreeFor(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("FatTreeFor(%d) invalid: %v", n, err)
			continue
		}
		if got := cfg.Pods * cfg.EdgePerPod * cfg.NodesPerEdge; got < n {
			t.Errorf("FatTreeFor(%d) covers only %d nodes", n, got)
		}
	}
}
