package fabric

import (
	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Sharded fluid fidelity: each domain owns a scoped flow.Engine advancing
// its intra-domain flows live inside the parallel run phase, while flows
// whose minimal candidates cross a domain cut run on the control-side
// boundary engine (n.flowEng, full segment space). The two layers couple
// at the epoch barrier: every engine publishes the per-segment rates it
// allocated, and consumes the others' as external capacity derating
// (flow.Engine.SetExtRate) — one relaxation sweep per epoch, always in
// domain order on quiesced state, so the fold is deterministic for any
// worker budget. The trust boundary is the same fence as the packet
// shards': a rate change crossing a cut cannot matter sooner than the
// optical lookahead, so folding it at the barrier never lets a domain
// observe a peer's future.

// initShardedFluid stands up the per-domain scoped engines. Called by
// SetFidelity when the network is sharded and fidelity is fluid.
func (n *Network) initShardedFluid(caps flow.Caps) {
	n.flowEng.EnableChangeTracking()
	n.flowSet = flow.NewShardedEngines(n.Topo, caps, n.part)
	for i, d := range n.doms {
		d.flowEng = n.flowSet.Engines[i]
		d.flowEng.Hooks = &domFlowHooks{d: d}
		d.flowTicker = &domFlowTicker{d: d}
		d.flowTickAt = sim.Forever
	}
}

// flowEngineFor classifies one fluid transfer: the source domain's scoped
// engine when the destination and every switch of every cached minimal
// candidate stay inside the source's domain, the boundary engine
// otherwise. Send runs on quiesced control state, so the domain walk
// races with nothing.
//
//simlint:hotpath
func (n *Network) flowEngineFor(src, dst topology.NodeID) (*flow.Engine, *domain) {
	if n.flowSet == nil {
		return n.flowEng, nil
	}
	a, b := n.Topo.SwitchOf(src), n.Topo.SwitchOf(dst)
	da := n.switches[a].dom
	if n.switches[b].dom != da {
		return n.flowEng, nil
	}
	if a != b {
		for _, p := range n.flowEng.Candidates(a, b) {
			for _, s := range p {
				if n.switches[s].dom != da {
					return n.flowEng, nil
				}
			}
		}
	}
	return da.flowEng, da
}

// domFlowHooks adapts one domain to flow.Hooks: counters go to the
// domain's private block (folded at the barrier in domain order), and
// caller callbacks defer to the barrier flush like every other
// shard-raised completion.
type domFlowHooks struct{ d *domain }

func (h *domFlowHooks) FlowDelivered(at sim.Time, arg any) {
	d := h.d
	m := arg.(*Message)
	m.delivered = m.numPackets
	m.DeliveredAt = at
	d.flowsCompleted++
	d.ctr.PacketsDelivered += int64(m.numPackets)
	if m.OnDelivered != nil {
		d.deferCall(at, m.OnDelivered)
	}
}

func (h *domFlowHooks) FlowAcked(at sim.Time, arg any) {
	m := arg.(*Message)
	m.acked = m.numPackets
	if m.OnAcked != nil {
		h.d.deferCall(at, m.OnAcked)
	}
}

// domFlowTicker advances one domain's fluid engine inside the parallel
// run phase — the sharded counterpart of flowTicker, touching only
// domain-owned state.
type domFlowTicker struct{ d *domain }

//simlint:hotpath
func (t *domFlowTicker) OnEvent(e *sim.Engine, ev *sim.Event) {
	d := t.d
	d.flowTickAt = sim.Forever
	d.flowEng.Advance(d.eng.Now())
	d.ctr.BytesDelivered += d.flowEng.TakeProgress()
	d.scheduleFlowWake()
}

// scheduleFlowWake keeps one leading fluid tick pending on the domain's
// own engine (completions and lazy solves only; background publication is
// the barrier's job in sharded mode).
//
//simlint:hotpath
func (d *domain) scheduleFlowWake() {
	next := d.flowEng.NextWake()
	if next < d.flowTickAt {
		d.flowTickAt = next
		d.eng.Schedule(next, d.flowTicker, 0, nil)
	}
}

// fluidExchange is the epoch-barrier rate fold. Sequential, control-side,
// domain order throughout:
//
//  1. advance every scoped engine (and the boundary engine) to the epoch
//     limit, crediting fluid progress;
//  2. publish each domain's changed segment rates into the boundary
//     engine as external derating;
//  3. re-solve the boundary engine and push its changed rates back down
//     to the owning domains' engines;
//  4. re-solve the domains and re-arm every wake.
//
// One sweep per epoch: the coupling relaxes over successive epochs
// rather than iterating to a fixed point inside one barrier, which keeps
// the barrier O(changed) and converges because SetExtRate no-ops (and
// stops the dirty cascade) once published rates repeat.
func (n *Network) fluidExchange(limit sim.Time) {
	bnd := n.flowEng
	for _, d := range n.doms {
		d.flowEng.Advance(limit)
		n.Counters.BytesDelivered += d.flowEng.TakeProgress()
		for _, s := range d.flowEng.Changed() {
			bnd.SetExtRate(d.flowEng.GlobalSeg(s), d.flowEng.SegRateAt(s))
		}
		d.flowEng.ResetChanged()
	}
	bnd.Advance(limit)
	n.Counters.BytesDelivered += bnd.TakeProgress()
	bnd.Resolve()
	for _, g := range bnd.Changed() {
		dom, loc := n.flowSet.Owner(g)
		n.doms[dom].flowEng.SetExtRate(loc, bnd.SegRateAt(g))
	}
	bnd.ResetChanged()
	for _, d := range n.doms {
		d.flowEng.Resolve()
		d.scheduleFlowWake()
	}
	n.scheduleFlowWake()
	if n.fid == FidelityHybrid {
		n.publishFlowBG()
	}
}
