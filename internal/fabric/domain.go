package fabric

import (
	"sort"

	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/topology"
)

// Counters are the fabric-wide delivery and reliability statistics. The
// Network embeds one (so n.PacketsDelivered keeps reading naturally); in
// sharded mode every domain accumulates into a private block that the
// epoch barrier folds into the Network's, so handlers never contend on
// shared words and the fold order is fixed (domain order) for any worker
// count.
type Counters struct {
	PacketsDelivered int64
	BytesDelivered   int64
	Signals          int64 // Slingshot back-pressure notifications emitted
	Overdrafts       int64 // deadlock-escape credit grants (should be ~0)
	LLRRetries       int64 // link-level retransmissions (FrameBER > 0)
	FramesLost       int64 // frames lost on links without LLR
	E2ERetries       int64 // NIC end-to-end retransmissions
}

func (c *Counters) add(o *Counters) {
	c.PacketsDelivered += o.PacketsDelivered
	c.BytesDelivered += o.BytesDelivered
	c.Signals += o.Signals
	c.Overdrafts += o.Overdrafts
	c.LLRRetries += o.LLRRetries
	c.FramesLost += o.FramesLost
	c.E2ERetries += o.E2ERetries
}

// domain is one shard of the fabric: a topology partition's switches,
// NICs and ports under their own engine, own RNG stream, own packet
// free-list, own routing arena and own counters. In classic
// (single-threaded) mode the whole fabric is one domain whose engine IS
// Network.Eng and whose counters ARE the Network's — the pre-sharding
// data flow, bit for bit.
//
// Every fabric component (Switch, NIC, outPort) carries its domain
// pointer; handlers reach the clock and scheduler through it, so the
// same handler code runs under one engine or many.
type domain struct {
	id  int
	net *Network
	eng *sim.Engine
	// sh is the domain's mailbox shard; nil in classic mode (and then
	// every component shares this one domain, so post never needs it).
	sh  *par.Shard
	rng *sim.RNG
	// ctr is where this domain's handlers count: the Network's embedded
	// block in classic mode, the private block below when sharded.
	ctr      *Counters
	counters Counters
	// arena is the domain's private path-construction scratch: domains
	// route concurrently over the shared immutable topology, each in its
	// own arena.
	arena topology.PathArena
	// pktFree recycles Packet structs within the domain. Packets are
	// allocated in the source NIC's domain and released wherever they
	// terminate, so a cross-domain packet retires into the delivering
	// domain's list — the lists exchange capacity instead of leaking.
	pktFree []*Packet
	// defr queues completion callbacks and delivery taps raised during a
	// parallel epoch; the barrier flushes them sequentially on the
	// control engine in canonical (at, domain, index) order.
	defr []deferredCall
	// switches are the domain's own switches, for the per-epoch load
	// snapshot refresh.
	switches []*Switch
	// Sharded fluid fidelity (fluid_sharded.go): the domain's scoped flow
	// engine, its pending-tick guard, and the fluid completion count the
	// barrier folds into Network.flowsCompleted.
	flowEng        *flow.Engine
	flowTicker     *domFlowTicker
	flowTickAt     sim.Time
	flowsCompleted int64
}

// post schedules (h, arg, data) at absolute time at on the component
// domain dst: straight onto the engine when dst is this domain (always,
// in classic mode), through the epoch mailboxes otherwise.
//simlint:hotpath
func (d *domain) post(dst *domain, at sim.Time, h sim.Handler, arg int64, data any) {
	if dst == d {
		d.eng.Schedule(at, h, arg, data)
		return
	}
	d.sh.Post(dst.sh, at, h, arg, data)
}

// allocPacket returns a zeroed packet from the domain free-list (or a
// fresh one).
//simlint:hotpath
func (d *domain) allocPacket() *Packet {
	if k := len(d.pktFree); k > 0 {
		p := d.pktFree[k-1]
		d.pktFree[k-1] = nil
		d.pktFree = d.pktFree[:k-1]
		return p
	}
	return &Packet{} //simlint:allocok -- cold start; steady state recycles off the free-list
}

// freePacket recycles a terminated packet. Callers must guarantee no
// live references remain (delivery taps run before release and must not
// retain the packet). The struct is zeroed here, not at alloc, so idle
// free-list entries do not pin their last Message (and its completion
// closures) or Path.
//simlint:hotpath
func (d *domain) freePacket(p *Packet) {
	*p = Packet{}
	d.pktFree = append(d.pktFree, p) //simlint:retained -- this IS the packet free-list: the one sanctioned retention point (see freelist analyzer)
}

// deferredCall is one completion callback (fn set) or delivery tap (fn
// nil, pkt holds a copy) raised inside a parallel epoch and replayed
// sequentially at the barrier.
type deferredCall struct {
	at  sim.Time
	fn  func(at sim.Time)
	pkt Packet
}

// deferCall queues a completion callback for the epoch barrier.
//simlint:hotpath
func (d *domain) deferCall(at sim.Time, fn func(at sim.Time)) {
	d.defr = append(d.defr, deferredCall{at: at, fn: fn}) //simlint:allocok -- amortized growth; the flush keeps capacity
}

// deferTap queues a delivery-tap invocation for the epoch barrier. The
// packet is copied: the original recycles onto the free-list immediately.
//simlint:hotpath
func (d *domain) deferTap(at sim.Time, p *Packet) {
	d.defr = append(d.defr, deferredCall{at: at, pkt: *p}) //simlint:allocok -- amortized growth; the flush keeps capacity
}

// QueuedTo implements routing.LoadReader for routing decisions made
// inside this domain: egress queues of the domain's own switches read
// live (exact, as in classic mode), remote switches read the epoch-start
// snapshot — the sharded analogue of §II-C's stale remote congestion
// estimates arriving via piggyback channels.
//simlint:hotpath
func (d *domain) QueuedTo(a, b topology.SwitchID) int64 {
	n := d.net
	var bg int64
	if n.flowBG != nil {
		// Fluid background load: written only between epochs on the
		// control engine (see flowTicker), so shard-time reads here can
		// never observe a torn or mid-publication value — the same
		// barrier discipline as the snap tables below.
		bg = n.flowBG[n.bgOff[a]+int32(n.Topo.NeighborIndex(a, b))]
	}
	sw := n.switches[a]
	if sw.dom == d {
		return liveQueuedTo(sw, b) + bg
	}
	return n.snap[n.snapOff[a]+int32(n.Topo.NeighborIndex(a, b))] + bg
}

// liveQueuedTo is the exact queued-byte figure: the least-loaded
// parallel egress port from sw towards adjacent switch b.
//simlint:hotpath
func liveQueuedTo(sw *Switch, b topology.SwitchID) int64 {
	ports := sw.portsTo(b)
	least := ports[0].queuedBytes()
	for _, o := range ports[1:] {
		if q := o.queuedBytes(); q < least {
			least = q
		}
	}
	return least
}

// refreshSnapshot republishes this domain's switch loads into the shared
// epoch-start snapshot. It runs in the drain phase (every domain writes
// only its own rows; the barrier publishes them), so within an epoch
// every remote load estimate is a consistent, worker-count-independent
// photograph.
//simlint:hotpath
func (d *domain) refreshSnapshot() {
	n := d.net
	for _, s := range d.switches {
		off := int(n.snapOff[s.ID])
		for i, ports := range s.ports {
			least := ports[0].queuedBytes()
			for _, o := range ports[1:] {
				if q := o.queuedBytes(); q < least {
					least = q
				}
			}
			n.snap[off+i] = least
		}
	}
}

// defrMerge adapts the gathered deferred calls to sort.Interface through
// a persistent struct (no per-epoch boxing). Sorting by at alone is
// stable over the (domain, index) gather order — the canonical replay
// order.
type defrMerge struct{ d []deferredCall }

func (b *defrMerge) Len() int           { return len(b.d) }
func (b *defrMerge) Less(i, j int) bool { return b.d[i].at < b.d[j].at }
func (b *defrMerge) Swap(i, j int)      { b.d[i], b.d[j] = b.d[j], b.d[i] }

// foldCounters drains every domain's private counter block into the
// Network's embedded one, in domain order.
func (n *Network) foldCounters() {
	for _, d := range n.doms {
		n.Counters.add(&d.counters)
		d.counters = Counters{}
		n.flowsCompleted += d.flowsCompleted
		d.flowsCompleted = 0
	}
}

// flushDeferred replays the epoch's deferred completion callbacks and
// taps sequentially, in canonical (at, domain, index) order, advancing
// the control engine to each callback's timestamp first so workload code
// running inside a callback (collective schedulers, measurement probes)
// reads the correct Now() and interleaves with its own queued events.
func (n *Network) flushDeferred() {
	buf := n.defrBuf.d[:0]
	for _, d := range n.doms {
		if len(d.defr) == 0 {
			continue
		}
		buf = append(buf, d.defr...)
		for i := range d.defr {
			d.defr[i] = deferredCall{}
		}
		d.defr = d.defr[:0]
	}
	if len(buf) > 1 {
		n.defrBuf.d = buf
		sort.Stable(&n.defrBuf)
	}
	for i := range buf {
		dc := &buf[i]
		n.Eng.RunUntil(dc.at)
		if dc.fn != nil {
			dc.fn(dc.at)
		} else if tap := n.Taps.OnPacketDelivered; tap != nil {
			tap(&dc.pkt, dc.at)
		}
		*dc = deferredCall{}
	}
	n.defrBuf.d = buf[:0]
}

// initDomains splits the built fabric into its topology partition's
// domains and stands up the epoch coordinator. workers bounds the
// goroutine budget only — the decomposition is the topology's natural
// one regardless, so Domains=1 and Domains=N run the identical
// computation and produce byte-identical output.
func (n *Network) initDomains(workers int) {
	part := n.Topo.Partition(0)
	n.part = part
	k := part.Domains
	n.doms = make([]*domain, k)
	shards := make([]*par.Shard, k)
	for i := 0; i < k; i++ {
		d := &domain{id: i, net: n, eng: sim.NewEngine()}
		d.ctr = &d.counters
		shards[i] = par.NewShard(i, d.eng, k)
		d.sh = shards[i]
		n.doms[i] = d
	}
	// One RNG stream per domain, split in domain order after the build's
	// own splits — the stream layout depends only on the topology, never
	// on the worker count.
	for _, d := range n.doms {
		d.rng = n.rng.Split()
	}
	for _, s := range n.switches {
		d := n.doms[part.Of[s.ID]]
		s.dom = d
		d.switches = append(d.switches, s)
		for _, ports := range s.ports {
			for _, o := range ports {
				o.dom = d
			}
		}
		for _, o := range s.edge {
			o.dom = d
		}
	}
	for _, nic := range n.nics {
		d := n.switches[n.Topo.SwitchOf(nic.ID)].dom
		nic.dom = d
		nic.inj.dom = d
	}
	// The remote-load snapshot: one slot per (switch, neighbor index).
	n.snapOff = make([]int32, len(n.switches))
	total := int32(0)
	for i := range n.switches {
		n.snapOff[i] = total
		total += int32(n.Topo.NeighborCount(topology.SwitchID(i)))
	}
	n.snap = make([]int64, total)

	n.par = par.New(shards, n.Eng, part.MinCutLatency, workers)
	n.par.Hooks = n
}

// OnShard implements par.Hooks: inside the drain phase, the shard's
// owning domain refreshes its rows of the cross-domain load snapshot
// (disjoint writes; the epoch barrier orders them before any read).
func (n *Network) OnShard(s *par.Shard) { n.doms[s.ID].refreshSnapshot() }

// OnEpoch implements par.Hooks: on quiesced, sequential state, fold the
// per-domain counters into the embedded block, fold the fluid rate
// exchange (before the deferred flush: a completion fired by the barrier
// advance must flush this epoch — the run may have no next one), then
// flush the deferred completion callbacks in canonical order.
func (n *Network) OnEpoch(limit sim.Time) {
	n.foldCounters()
	if n.flowSet != nil {
		n.fluidExchange(limit)
	}
	n.flushDeferred()
}

// initClassic wires the whole fabric as one domain over Network.Eng —
// the single-threaded mode, preserving the pre-sharding event flow
// exactly (no coordinator, no mailboxes, live load reads, inline
// callbacks).
func (n *Network) initClassic() {
	d := &domain{id: 0, net: n, eng: n.Eng, ctr: &n.Counters, switches: n.switches}
	n.doms = []*domain{d}
	for _, s := range n.switches {
		s.dom = d
		for _, ports := range s.ports {
			for _, o := range ports {
				o.dom = d
			}
		}
		for _, o := range s.edge {
			o.dom = d
		}
	}
	for _, nic := range n.nics {
		nic.dom = d
		nic.inj.dom = d
	}
}

// Domains reports the simulation's domain count: 1 in classic mode, the
// topology's natural unit count when sharded.
func (n *Network) Domains() int { return len(n.doms) }

// Workers reports the parallel worker budget (1 in classic mode).
func (n *Network) Workers() int {
	if n.par == nil {
		return 1
	}
	return n.par.Workers()
}

// Run executes the simulation until every engine and mailbox drains.
func (n *Network) Run() {
	if n.par != nil {
		n.par.Run()
		return
	}
	n.Eng.Run()
}

// RunUntil executes all events with At <= deadline and advances every
// clock to the deadline.
func (n *Network) RunUntil(deadline sim.Time) {
	if n.par != nil {
		n.par.RunUntil(deadline)
		return
	}
	n.Eng.RunUntil(deadline)
}

// RunWhile executes events while cond() holds. In sharded mode cond is
// evaluated between epochs, on quiesced sequential state.
func (n *Network) RunWhile(cond func() bool) {
	if n.par != nil {
		n.par.RunWhile(cond)
		return
	}
	n.Eng.RunWhile(cond)
}
