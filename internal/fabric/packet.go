package fabric

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Packet is one RoCEv2 packet in flight. Packets are segmented from
// Messages at the source NIC and reassembled (counted) at the destination.
type Packet struct {
	Msg     *Message
	Seq     int
	Payload int
	Class   int
	// Path is the switch-level route chosen at the source switch; hop
	// indexes the next entry to visit.
	Path topology.Path
	hop  int
	// inPort is the upstream port whose input-buffer credit this packet
	// holds; the credit returns when the packet departs the current switch.
	inPort *outPort
	// ctrl marks protocol packets (RTS of the rendezvous handshake).
	ctrl      bool
	ecnMarked bool
	sentAt    sim.Time
}

// Message is an application-level transfer between two endpoints.
type Message struct {
	ID    int64
	Src   topology.NodeID
	Dst   topology.NodeID
	Bytes int64
	Class int
	// Tag is an arbitrary caller label (e.g. job ID) readable from taps.
	Tag int64

	// Rendezvous transfers exchange an RTS/CTS handshake before data.
	Rendezvous bool

	// OnDelivered fires at the destination when the last data packet
	// arrives. OnAcked fires at the source when the last end-to-end ack
	// returns (Put + flush semantics).
	OnDelivered func(at sim.Time)
	OnAcked     func(at sim.Time)

	// Injection state (owned by the source NIC).
	numPackets int
	nextSeq    int
	hostReady  sim.Time // host per-message overhead satisfied
	dataReady  bool     // rendezvous handshake completed (or not needed)
	rtsSent    bool
	// Completion state. seen0/seen form a per-Seq delivery bitmap: with
	// FrameBER>0 and end-to-end retries, a late original and its
	// retransmit may both arrive, and only the first may count. Messages
	// of up to 64 packets use the inline word (no allocation).
	delivered int
	acked     int
	seen0     uint64
	seen      []uint64
	// ackRTT is the latest packet's injection-to-ack round-trip sample,
	// set when the delivery schedules the ack and consumed by the source
	// NIC's congestion controller (delay-based CC, §II-D). Classic mode
	// only: sharded fabrics pack the sample into the ack event's Arg word
	// (the delivery and the ack run in different domains).
	ackRTT sim.Time

	// recycle marks an opted-in (SendOpts.Recycle) handle the fabric
	// returns to the Send free-list after its final completion event.
	recycle bool

	SubmittedAt sim.Time
	DeliveredAt sim.Time
}

// Done reports whether all data packets have been delivered.
func (m *Message) Done() bool { return m.delivered >= m.numPackets }

// markDelivered records the first delivery of packet seq and reports
// whether it was new; a duplicate (late original plus retransmit) returns
// false and must not count again.
func (m *Message) markDelivered(seq int) bool {
	if seq < 0 || seq >= m.numPackets {
		return false
	}
	if m.numPackets <= 64 {
		bit := uint64(1) << seq
		if m.seen0&bit != 0 {
			return false
		}
		m.seen0 |= bit
		return true
	}
	if m.seen == nil {
		m.seen = make([]uint64, (m.numPackets+63)/64)
	}
	w, bit := seq/64, uint64(1)<<(seq%64)
	if m.seen[w]&bit != 0 {
		return false
	}
	m.seen[w] |= bit
	return true
}
