package fabric

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Packet is one RoCEv2 packet in flight. Packets are segmented from
// Messages at the source NIC and reassembled (counted) at the destination.
type Packet struct {
	Msg     *Message
	Seq     int
	Payload int
	Class   int
	// Path is the switch-level route chosen at the source switch; hop
	// indexes the next entry to visit.
	Path topology.Path
	hop  int
	// inPort is the upstream port whose input-buffer credit this packet
	// holds; the credit returns when the packet departs the current switch.
	inPort *outPort
	// ctrl marks protocol packets (RTS of the rendezvous handshake).
	ctrl      bool
	ecnMarked bool
	sentAt    sim.Time
}

// Message is an application-level transfer between two endpoints.
type Message struct {
	ID    int64
	Src   topology.NodeID
	Dst   topology.NodeID
	Bytes int64
	Class int
	// Tag is an arbitrary caller label (e.g. job ID) readable from taps.
	Tag int64

	// Rendezvous transfers exchange an RTS/CTS handshake before data.
	Rendezvous bool

	// OnDelivered fires at the destination when the last data packet
	// arrives. OnAcked fires at the source when the last end-to-end ack
	// returns (Put + flush semantics).
	OnDelivered func(at sim.Time)
	OnAcked     func(at sim.Time)

	// Injection state (owned by the source NIC).
	numPackets int
	nextSeq    int
	hostReady  sim.Time // host per-message overhead satisfied
	dataReady  bool     // rendezvous handshake completed (or not needed)
	rtsSent    bool
	// Completion state.
	delivered int
	acked     int

	SubmittedAt sim.Time
	DeliveredAt sim.Time
}

// Done reports whether all data packets have been delivered.
func (m *Message) Done() bool { return m.delivered >= m.numPackets }
