package fabric

import (
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/flow"
	"repro/internal/phy"
	"repro/internal/rosetta"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Fidelity selects how a Network moves bytes.
//
//   - FidelityPacket (default): every message is simulated packet by
//     packet through switch queues — the exact pre-existing engine; all
//     goldens are produced at this level.
//   - FidelityFlow: every message advances as a fluid flow at its max–min
//     fair-share rate (internal/flow). Orders of magnitude faster per
//     simulated byte; no queuing, CC, or per-packet routing effects.
//   - FidelityHybrid: flows are classified at injection. Bulk-tagged
//     steady transfers (aggressors, background alltoall) run flow-level;
//     everything else — untagged (victim) traffic, transfers into an
//     incast hotspot, and pairs whose congestion controller is actively
//     throttling — stays on the packet engine. Flow-level link
//     utilization is exposed to the packet path as background load, so
//     adaptive routing and congestion detection still see the bulk
//     traffic they share links with.
type Fidelity uint8

const (
	FidelityPacket Fidelity = iota
	FidelityFlow
	FidelityHybrid
)

// fidelityNames lists the accepted ParseFidelity spellings in order.
var fidelityNames = [...]string{"packet", "flow", "hybrid"}

// FidelityNames returns the accepted ParseFidelity spellings in order
// (a fresh slice; the backing table stays immutable).
func FidelityNames() []string { return append([]string(nil), fidelityNames[:]...) }

// ParseFidelity maps a CLI/option spelling to a Fidelity. The empty
// string is the packet default.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "", "packet":
		return FidelityPacket, nil
	case "flow":
		return FidelityFlow, nil
	case "hybrid":
		return FidelityHybrid, nil
	}
	return FidelityPacket, fmt.Errorf("unknown fidelity %q (want packet|flow|hybrid)", s)
}

func (f Fidelity) String() string {
	if int(f) < len(fidelityNames) {
		return fidelityNames[f]
	}
	return "invalid"
}

const (
	// hybridMinBytes is the smallest transfer worth fluid treatment:
	// below it, per-message latency constants dominate and the packet
	// engine is both cheap and exact.
	hybridMinBytes = 64 << 10
	// hybridFanIn drops transfers into a busy destination down to the
	// packet engine: once this many fluid flows already target a node,
	// the destination is an incast hotspot and queue dynamics (which the
	// fluid model has none of) decide its behaviour.
	hybridFanIn = 4
	// flowBGInterval is the cadence of background-load publication and
	// delivered-byte accounting while fluid flows are active.
	flowBGInterval = 1 * sim.Microsecond
	// bgMTU scales utilization into a queued-byte equivalent (one
	// max-size cell of standing queue per unit of rho/(1-rho)).
	bgMTU = 4096
	// bgMaxQueue caps the equivalent so a saturated segment reads as
	// deeply congested without going unbounded.
	bgMaxQueue = 128 << 10
)

// SetFidelity switches the network's fidelity mode. Call once, after
// construction and before any traffic; FidelityPacket is the default and
// needs no call. Flow and hybrid modes build the fluid engine over the
// same topology, with segment capacities derated by the Ethernet framing
// efficiency at the profile's cell size so fluid goodput matches what a
// packet stream saturating the link achieves.
func (n *Network) SetFidelity(f Fidelity) {
	n.fid = f
	if f == FidelityPacket {
		n.flowEng, n.flowSet = nil, nil
		for _, d := range n.doms {
			d.flowEng, d.flowTicker = nil, nil
		}
		n.flowBG, n.flowBGEdge, n.bgOff = nil, nil, nil
		return
	}
	prof := &n.Prof
	cell := prof.cell()
	caps := flow.Caps{
		EdgeBits:   float64(prof.EdgeBits) * ethernet.Efficiency(cell, prof.EdgeMode),
		LocalBits:  float64(prof.fabricBits()) * ethernet.Efficiency(cell, prof.FabricMode),
		GlobalBits: float64(prof.fabricBits()) * ethernet.Efficiency(cell, prof.FabricMode),
	}
	n.flowEng = flow.NewEngine(n.Topo, caps)
	n.flowEng.Hooks = (*flowHooks)(n)
	n.flowTickAt = sim.Forever
	if n.par != nil {
		// Sharded fabric: n.flowEng becomes the boundary engine and every
		// domain gets a scoped engine of its own (fluid_sharded.go).
		n.initShardedFluid(caps)
	}

	// Background-load tables, one slot per (switch, dense neighbor index)
	// — the same layout as the sharded epoch snapshot — plus one per node
	// for the switch->node edge. Written only by publishFlowBG on the
	// control engine; read by routing and enqueue thresholds.
	topo := n.Topo
	n.bgOff = make([]int32, topo.Switches()+1)
	for s := 0; s < topo.Switches(); s++ {
		n.bgOff[s+1] = n.bgOff[s] + int32(topo.NeighborCount(topology.SwitchID(s)))
	}
	n.flowBG = make([]int64, n.bgOff[topo.Switches()])
	n.flowBGEdge = make([]int64, topo.Nodes())
	// Stamp each port's slot in the background tables so the per-packet
	// threshold checks are one slice read.
	for _, sw := range n.switches {
		for nb, ports := range sw.ports {
			for _, o := range ports {
				o.bgIdx = n.bgOff[sw.ID] + int32(nb)
			}
		}
		for _, o := range sw.edge {
			o.bgIdx = int32(o.peerNIC.ID)
		}
	}
	// Injection ports carry no background slot: the fluid engine's
	// edge-up usage limits fluid rates in the solver, but the node's own
	// packet injection queue must not double-count it.
	for _, nic := range n.nics {
		nic.inj.bgIdx = -1
	}
}

// Fidelity returns the mode set by SetFidelity.
func (n *Network) Fidelity() Fidelity { return n.fid }

// FlowsStarted / FlowsCompleted report how many transfers took the fluid
// path (hybrid classification visibility; tests and benchreport).
func (n *Network) FlowsStarted() int64   { return n.flowsStarted }
func (n *Network) FlowsCompleted() int64 { return n.flowsCompleted }

// flowEligible is the hybrid hand-off rule, evaluated at injection on
// the control side (Send never runs inside a shard epoch, so every read
// here is of quiesced state).
//
//simlint:hotpath
func (n *Network) flowEligible(src, dst topology.NodeID, bytes int64, opts *SendOpts) bool {
	if src == dst {
		return false // NIC-internal loopback, stays on the exact path
	}
	if n.fid == FidelityFlow {
		return true
	}
	// Hybrid: only bulk-tagged steady transfers of real size.
	if !opts.Bulk || bytes < hybridMinBytes {
		return false
	}
	// Incast hotspot: once hybridFanIn fluid flows already converge on
	// dst, further transfers contend in queues — packet territory. Sharded
	// fluid counts both layers: the scoped engines share one fan-in table,
	// boundary flows live on n.flowEng.
	fanIn := n.flowEng.ActiveTo(dst)
	if n.flowSet != nil {
		fanIn += int(n.flowSet.ActiveTo(dst))
	}
	if fanIn >= hybridFanIn {
		return false
	}
	// A pair the congestion controller is actively throttling is by
	// definition not in fluid steady state.
	cc := n.nics[src].cc
	if cc.Window(dst) < cc.Params().InitialWindow {
		return false
	}
	return true
}

// sendFlow admits one message to the fluid engine: the Message handle
// behaves as on the packet path (DeliveredAt, Done, callbacks), but no
// packets exist — per-packet taps never fire for fluid transfers.
//
//simlint:hotpath
func (n *Network) sendFlow(m *Message) *Message {
	lat, ack, extra := n.flowTimes(m)
	n.flowsStarted++
	eng, d := n.flowEngineFor(m.Src, m.Dst)
	// Bring the engine's fluid clock to the present before admitting the
	// flow, so the lazy solve folds in exactly at the submit time instead
	// of smearing the new flow's rate back to the last tick.
	eng.Advance(n.Eng.Now())
	eng.Start(m.Src, m.Dst, m.Bytes, flow.FlowOpts{
		ExtraBytes:   extra,
		ExtraLatency: lat,
		AckLatency:   ack,
		Arg:          m,
	})
	if d != nil {
		d.scheduleFlowWake()
	} else {
		n.scheduleFlowWake()
	}
	return m
}

// flowTimes derives the fluid calibration constants for one message from
// the profile and the quiet path shape: the latency added to the fluid
// completion (host/NIC/wire/switch traversal, plus the rendezvous
// handshake for large transfers), the reverse ack latency, and the
// bandwidth-equivalent byte charge of per-message sender gaps.
//
//simlint:hotpath
func (n *Network) flowTimes(m *Message) (lat, ackLat sim.Time, extraBytes int64) {
	prof := &n.Prof
	var path topology.Path
	switches := 1
	// The flow engine's keyed path cache, not the dense minPaths rows: a
	// million-endpoint flow-mode run would pay ~1.5 MB of row spine per
	// distinct source switch for paths the packet layer never routes.
	if s, d := n.Topo.SwitchOf(m.Src), n.Topo.SwitchOf(m.Dst); s != d {
		if ps := n.flowEng.Candidates(s, d); len(ps) > 0 {
			path = ps[0]
			switches = len(path)
		}
	}
	// wire is the one-way flight of a packet along the path: edge
	// propagation both ends, mean switch traversal per hop, and wire
	// propagation per fabric hop.
	wire := 2*phy.EdgeDelay() + sim.Time(switches)*rosetta.MeanTraversal(0, 2)
	for i := 0; i+1 < len(path); i++ {
		if n.switches[path[i]].portsTo(path[i+1])[0].global {
			wire += phy.OpticalDelay()
		} else {
			wire += phy.CopperDelay()
		}
	}
	// The data leg: host overhead, NIC tx+rx, flight, and one cell of
	// store-and-forward pipeline drain per switch (the fluid serialization
	// itself is the transfer's bytes/rate and lives in the solver).
	lat = prof.HostGap + 2*prof.NICLatency + wire
	lat += sim.Time(switches) * sim.SerializationTime(int64(prof.cell()), prof.fabricBits())
	ackLat = n.revLatency(path)
	gap := prof.HostGap
	if m.Rendezvous {
		// RTS out, receiver setup, CTS back on the ack crossbars — all
		// before data moves.
		lat += wire + rendezvousSetup + ackLat
		gap = rendezvousMsgGap
	}
	// Sender-side per-message serial gap, charged as the bytes the edge
	// link would have moved in that time so back-to-back streaming
	// throughput matches the packet engine's inter-message pauses. A lone
	// message should not pay it in completion time — the fluid engine
	// serializes the extra bytes at up to edge rate, so subtracting the
	// gap from the latency makes the charge completion-neutral when
	// unloaded and a throughput brake when streaming.
	extraBytes = int64(float64(gap) / 8e12 * float64(prof.EdgeBits) * ethernet.Efficiency(prof.cell(), prof.EdgeMode))
	if lat > gap {
		lat -= gap
	} else {
		lat = 0
	}
	return lat, ackLat, extraBytes
}

// flowHooks adapts *Network to flow.Hooks without a second dispatch
// object (same zero-alloc pattern as the NIC/switch event handlers).
type flowHooks Network

func (h *flowHooks) FlowDelivered(at sim.Time, arg any) {
	n := (*Network)(h)
	m := arg.(*Message)
	m.delivered = m.numPackets
	m.DeliveredAt = at
	n.flowsCompleted++
	n.Counters.PacketsDelivered += int64(m.numPackets)
	if m.OnDelivered != nil {
		m.OnDelivered(at)
	}
}

func (h *flowHooks) FlowAcked(at sim.Time, arg any) {
	m := arg.(*Message)
	m.acked = m.numPackets
	if m.OnAcked != nil {
		m.OnAcked(at)
	}
	// The ack is the message's final event: an opted-in handle returns to
	// the Send free-list here (control side only — the sharded domain
	// hooks never recycle, their messages outlive the shard epoch).
	if m.recycle {
		(*Network)(h).freeMsg(m)
	}
}

// flowTicker is the control-engine event handler that advances the fluid
// engine. In sharded mode the control engine only runs while every shard
// worker is parked at an epoch barrier (par.Coordinator.step advances it
// after the run-phase barrier, and flushDeferred interleaves it with
// deferred callbacks) — so everything a tick does, including
// publishFlowBG's writes to the shared background tables, is sequential
// with respect to shard execution. That is the same no-tearing rule the
// epoch queue-depth snapshot follows.
type flowTicker Network

//simlint:hotpath
func (t *flowTicker) OnEvent(e *sim.Engine, ev *sim.Event) {
	n := (*Network)(t)
	n.flowTickAt = sim.Forever
	n.flowTick()
}

// flowTick advances the fluid engine to the present, credits delivered
// bytes, republishes background load, and schedules the next wake.
//
//simlint:hotpath
func (n *Network) flowTick() {
	n.flowEng.Advance(n.Eng.Now())
	n.Counters.BytesDelivered += n.flowEng.TakeProgress()
	if n.fid == FidelityHybrid {
		n.publishFlowBG()
	}
	n.scheduleFlowWake()
}

// scheduleFlowWake keeps exactly one leading tick pending: the earliest
// of the engine's next completion/callback and — in hybrid mode — the
// periodic background refresh. Later stale events fire as cheap no-ops.
// At FidelityFlow there is no packet path left to feed, so the engine
// wakes only at flow completions: background publication (and its 1 us
// cadence) is pure overhead there and is skipped, which is most of what
// makes the fluid path's ns-per-simulated-byte tiny.
//
//simlint:hotpath
func (n *Network) scheduleFlowWake() {
	next := n.flowEng.NextWake()
	if n.fid == FidelityHybrid && n.flowEng.Active() > 0 {
		if t := n.Eng.Now() + flowBGInterval; t < next {
			next = t
		}
	}
	if next < n.flowTickAt {
		n.flowTickAt = next
		n.Eng.Schedule(next, (*flowTicker)(n), 0, nil)
	}
}

// publishFlowBG converts the solver's per-segment allocated rates into
// queued-byte equivalents in the shared background tables. An M/M/1-ish
// shape — rho/(1-rho) cells of standing queue — maps light load to a
// negligible figure and saturation to a deeply-congested one, which is
// what the consumers (PathCost scoring, the endpoint-signal and ECN
// thresholds) calibrate against. Runs only on the control engine; see
// flowTicker for why that cannot tear against shard readers.
//
//simlint:hotpath
func (n *Network) publishFlowBG() {
	if n.flowBG == nil {
		return
	}
	n.flowEng.Resolve()
	topo := n.Topo
	for s := 0; s < topo.Switches(); s++ {
		base := n.bgOff[s]
		for i := 0; i < topo.NeighborCount(topology.SwitchID(s)); i++ {
			rate, cap := n.flowEng.SegmentRate(topology.SwitchID(s), i)
			if n.flowSet != nil {
				// A segment carries boundary flows (n.flowEng) plus the
				// owning domain's intra-domain flows; capacities agree.
				r, _ := n.switches[s].dom.flowEng.SegmentRate(topology.SwitchID(s), i)
				rate += r
			}
			n.flowBG[base+int32(i)] = bgQueueEquivalent(rate, cap)
		}
	}
	for node := range n.flowBGEdge {
		rate, cap := n.flowEng.EdgeDownRate(topology.NodeID(node))
		if n.flowSet != nil {
			sw := topo.SwitchOf(topology.NodeID(node))
			r, _ := n.switches[sw].dom.flowEng.EdgeDownRate(topology.NodeID(node))
			rate += r
		}
		n.flowBGEdge[node] = bgQueueEquivalent(rate, cap)
	}
}

// bgQueueEquivalent maps utilization rho to queued bytes.
//
//simlint:hotpath
func bgQueueEquivalent(rate, cap float64) int64 {
	if rate <= 0 || cap <= 0 {
		return 0
	}
	rho := rate / cap
	if rho >= 0.97 {
		return bgMaxQueue
	}
	q := int64(rho / (1 - rho) * bgMTU)
	if q > bgMaxQueue {
		q = bgMaxQueue
	}
	return q
}

// bgQueued is the background queued-byte figure for one egress port:
// fabric ports read the (switch, neighbor) slot, edge ports the
// destination node's slot. Zero when fidelity is packet-only.
//
//simlint:hotpath
func (o *outPort) bgQueued() int64 {
	if o.net.flowBG == nil || o.bgIdx < 0 {
		return 0
	}
	if o.edge {
		return o.net.flowBGEdge[o.bgIdx]
	}
	return o.net.flowBG[o.bgIdx]
}
