package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// §II-F reliability features: FEC+LLR on fabric links, NIC end-to-end
// retry, and lane degrade.

func TestLLRRecoversAllFrames(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	prof.FrameBER = 0.02
	prof.LLR = true
	n := quietNet(t, prof)
	done := 0
	const msgs = 50
	for i := 0; i < msgs; i++ {
		n.Send(topology.NodeID(i%8), topology.NodeID(56+i%8), 64*1024,
			SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != msgs {
		t.Fatalf("delivered %d/%d with LLR", done, msgs)
	}
	if n.LLRRetries == 0 {
		t.Error("no LLR retries at 2% frame error rate")
	}
	if n.FramesLost != 0 || n.E2ERetries != 0 {
		t.Errorf("LLR mode lost frames: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
}

func TestEndToEndRetryWithoutLLR(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	prof.FrameBER = 0.02
	prof.LLR = false
	prof.RetryTimeout = 20 * sim.Microsecond
	n := quietNet(t, prof)
	done := 0
	const msgs = 50
	for i := 0; i < msgs; i++ {
		n.Send(topology.NodeID(i%8), topology.NodeID(56+i%8), 64*1024,
			SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != msgs {
		t.Fatalf("delivered %d/%d despite end-to-end retry", done, msgs)
	}
	if n.FramesLost == 0 || n.E2ERetries == 0 {
		t.Errorf("expected losses + retries: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
	if n.E2ERetries < n.FramesLost {
		t.Errorf("every lost frame needs a retry: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
}

func TestErrorsAddLatency(t *testing.T) {
	clean := noJitter(SlingshotProfile())
	n1 := quietNet(t, clean)
	l1 := sendAndWait(t, n1, 0, 63, 1024*1024)

	noisy := clean
	noisy.FrameBER = 0.05
	n2 := quietNet(t, noisy)
	l2 := sendAndWait(t, n2, 0, 63, 1024*1024)
	if l2 <= l1 {
		t.Errorf("5%% frame errors did not slow transfer: %v vs %v", l1, l2)
	}
}

func TestLaneDegradeSlowsLink(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	n := quietNet(t, prof)
	// Degrade every link out of switch 0 to 1 lane (3 degrades).
	for _, nb := range n.Topo.Neighbors(0) {
		for i := 0; i < 3; i++ {
			if !n.DegradeLinkLanes(0, nb) {
				t.Fatal("link died before 3 degrades")
			}
		}
	}
	slow := sendAndWait(t, n, 0, 63, 1024*1024)

	n2 := quietNet(t, prof)
	fast := sendAndWait(t, n2, 0, 63, 1024*1024)
	if slow <= fast {
		t.Errorf("lane degrade had no effect: %v vs %v", fast, slow)
	}
	// Restore brings it back.
	for _, nb := range n.Topo.Neighbors(0) {
		n.RestoreLinkLanes(0, nb)
	}
	restored := sendAndWait(t, n, 0, 62, 1024*1024)
	if restored >= slow {
		t.Errorf("restore had no effect: %v vs %v", slow, restored)
	}
}

func TestDeterministicReplayWithErrors(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		prof := noJitter(SlingshotProfile())
		prof.FrameBER = 0.01
		n := quietNet(t, prof)
		done := 0
		for i := 0; i < 20; i++ {
			n.Send(topology.NodeID(i), topology.NodeID(40+i), 128*1024,
				SendOpts{OnDelivered: func(sim.Time) { done++ }})
		}
		n.Eng.Run()
		return n.Now(), n.LLRRetries, n.Eng.Steps()
	}
	t1, r1, s1 := run()
	t2, r2, s2 := run()
	if t1 != t2 || r1 != r2 || s1 != s2 {
		t.Errorf("replay diverged: (%v,%d,%d) vs (%v,%d,%d)", t1, r1, s1, t2, r2, s2)
	}
}

// TestDuplicateDeliveryCountsOnce guards NIC.deliver against duplicate
// data packets: with FrameBER > 0 and end-to-end retries, a late original
// plus its retransmit may both arrive, and only the first may bump the
// message/network counters or fire OnDelivered/OnAcked.
func TestDuplicateDeliveryCountsOnce(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	n := quietNet(t, prof)
	delivered, acked := 0, 0
	m := n.Send(0, 1, 8, SendOpts{
		OnDelivered: func(sim.Time) { delivered++ },
		OnAcked:     func(sim.Time) { acked++ },
	})
	n.Eng.Run()
	if delivered != 1 || acked != 1 {
		t.Fatalf("baseline delivery: delivered=%d acked=%d", delivered, acked)
	}
	pkts, bytes := n.PacketsDelivered, n.BytesDelivered

	// Forge the late duplicate of seq 0 arriving at the destination NIC.
	dup := &Packet{Msg: m, Seq: 0, Payload: 8}
	n.nics[1].deliver(dup)
	n.Eng.Run()
	if delivered != 1 || acked != 1 {
		t.Errorf("duplicate double-fired callbacks: delivered=%d acked=%d", delivered, acked)
	}
	if n.PacketsDelivered != pkts || n.BytesDelivered != bytes {
		t.Errorf("duplicate inflated counters: packets %d->%d bytes %d->%d",
			pkts, n.PacketsDelivered, bytes, n.BytesDelivered)
	}
	if m.delivered != m.numPackets {
		t.Errorf("message delivered count corrupted: %d/%d", m.delivered, m.numPackets)
	}
}

// TestLossyLinkNoDoubleCounting checks packet-count conservation under
// loss: every data packet counts exactly once even when end-to-end
// retries re-inject packets.
func TestLossyLinkNoDoubleCounting(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	prof.FrameBER = 0.02
	prof.LLR = false
	prof.RetryTimeout = 20 * sim.Microsecond
	n := quietNet(t, prof)
	const msgs = 30
	perMsg := make([]int, msgs)
	var wantPkts int64
	for i := 0; i < msgs; i++ {
		i := i
		m := n.Send(topology.NodeID(i%8), topology.NodeID(56+i%8), 64*1024,
			SendOpts{OnDelivered: func(sim.Time) { perMsg[i]++ }})
		wantPkts += int64(m.numPackets)
	}
	n.Eng.Run()
	if n.E2ERetries == 0 {
		t.Fatal("test expects end-to-end retries at 2% loss")
	}
	for i, c := range perMsg {
		if c != 1 {
			t.Errorf("message %d OnDelivered fired %d times", i, c)
		}
	}
	if n.PacketsDelivered != wantPkts {
		t.Errorf("PacketsDelivered = %d, want exactly %d", n.PacketsDelivered, wantPkts)
	}
}

// linkPorts exposes the parallel egress ports a->b to the lane tests.
func linkPorts(n *Network, a, b topology.SwitchID) []*outPort {
	return n.switches[a].portsTo(b)
}

// TestDegradeLinkLanesCountsBothDirections: the usable-lanes verdict must
// OR both directions — a link whose a->b lanes are gone but whose b->a
// lanes survive is still (partially) usable, and vice versa.
func TestDegradeLinkLanesCountsBothDirections(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	nb := n.Topo.Neighbors(0)[0]
	// Kill the 0->nb direction outright, leaving nb->0 at full width.
	for _, o := range linkPorts(n, 0, nb) {
		for o.phy.DegradeLane() {
		}
	}
	if !n.DegradeLinkLanes(0, nb) {
		t.Error("link with usable reverse-direction lanes reported dead")
	}
	// Exhaust the remaining nb->0 lanes (one was taken above).
	for i := 0; i < 2; i++ {
		if !n.DegradeLinkLanes(0, nb) {
			t.Fatalf("link died early at degrade %d", i)
		}
	}
	if n.DegradeLinkLanes(0, nb) {
		t.Error("fully degraded link still reported usable")
	}
	// Restore brings both directions back.
	n.RestoreLinkLanes(0, nb)
	if !n.DegradeLinkLanes(0, nb) {
		t.Error("restored link reported dead")
	}
}

// TestDegradeLinkLanesNonAdjacent: probing a pair of switches with no
// direct link must be a graceful no-op (false), not a panic — harnesses
// sweep arbitrary pairs when injecting failures.
func TestDegradeLinkLanesNonAdjacent(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	var pair [2]topology.SwitchID
	found := false
	for a := 0; a < n.Topo.Switches() && !found; a++ {
		for b := a + 1; b < n.Topo.Switches(); b++ {
			if n.Topo.NeighborIndex(topology.SwitchID(a), topology.SwitchID(b)) < 0 {
				pair = [2]topology.SwitchID{topology.SwitchID(a), topology.SwitchID(b)}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("topology is fully connected")
	}
	if n.DegradeLinkLanes(pair[0], pair[1]) {
		t.Error("non-adjacent pair reported usable lanes")
	}
	n.RestoreLinkLanes(pair[0], pair[1]) // must not panic either
}

// TestFreePacketDropsReferences: recycled packets must not pin their last
// Message (completion closures) or Path while idle on the free-list.
func TestFreePacketDropsReferences(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	sendAndWait(t, n, 0, 1, 8)
	if len(n.doms[0].pktFree) == 0 {
		t.Fatal("no packets recycled")
	}
	for i, p := range n.doms[0].pktFree {
		if p.Msg != nil || p.Path != nil || p.inPort != nil {
			t.Fatalf("free-list entry %d retains references: %+v", i, p)
		}
	}
}
