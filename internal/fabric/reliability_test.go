package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// §II-F reliability features: FEC+LLR on fabric links, NIC end-to-end
// retry, and lane degrade.

func TestLLRRecoversAllFrames(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	prof.FrameBER = 0.02
	prof.LLR = true
	n := quietNet(t, prof)
	done := 0
	const msgs = 50
	for i := 0; i < msgs; i++ {
		n.Send(topology.NodeID(i%8), topology.NodeID(56+i%8), 64*1024,
			SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != msgs {
		t.Fatalf("delivered %d/%d with LLR", done, msgs)
	}
	if n.LLRRetries == 0 {
		t.Error("no LLR retries at 2% frame error rate")
	}
	if n.FramesLost != 0 || n.E2ERetries != 0 {
		t.Errorf("LLR mode lost frames: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
}

func TestEndToEndRetryWithoutLLR(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	prof.FrameBER = 0.02
	prof.LLR = false
	prof.RetryTimeout = 20 * sim.Microsecond
	n := quietNet(t, prof)
	done := 0
	const msgs = 50
	for i := 0; i < msgs; i++ {
		n.Send(topology.NodeID(i%8), topology.NodeID(56+i%8), 64*1024,
			SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != msgs {
		t.Fatalf("delivered %d/%d despite end-to-end retry", done, msgs)
	}
	if n.FramesLost == 0 || n.E2ERetries == 0 {
		t.Errorf("expected losses + retries: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
	if n.E2ERetries < n.FramesLost {
		t.Errorf("every lost frame needs a retry: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
}

func TestErrorsAddLatency(t *testing.T) {
	clean := noJitter(SlingshotProfile())
	n1 := quietNet(t, clean)
	l1 := sendAndWait(t, n1, 0, 63, 1024*1024)

	noisy := clean
	noisy.FrameBER = 0.05
	n2 := quietNet(t, noisy)
	l2 := sendAndWait(t, n2, 0, 63, 1024*1024)
	if l2 <= l1 {
		t.Errorf("5%% frame errors did not slow transfer: %v vs %v", l1, l2)
	}
}

func TestLaneDegradeSlowsLink(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	n := quietNet(t, prof)
	// Degrade every link out of switch 0 to 1 lane (3 degrades).
	for _, nb := range n.Topo.Neighbors(0) {
		for i := 0; i < 3; i++ {
			if !n.DegradeLinkLanes(0, nb) {
				t.Fatal("link died before 3 degrades")
			}
		}
	}
	slow := sendAndWait(t, n, 0, 63, 1024*1024)

	n2 := quietNet(t, prof)
	fast := sendAndWait(t, n2, 0, 63, 1024*1024)
	if slow <= fast {
		t.Errorf("lane degrade had no effect: %v vs %v", fast, slow)
	}
	// Restore brings it back.
	for _, nb := range n.Topo.Neighbors(0) {
		n.RestoreLinkLanes(0, nb)
	}
	restored := sendAndWait(t, n, 0, 62, 1024*1024)
	if restored >= slow {
		t.Errorf("restore had no effect: %v vs %v", slow, restored)
	}
}

func TestDeterministicReplayWithErrors(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		prof := noJitter(SlingshotProfile())
		prof.FrameBER = 0.01
		n := quietNet(t, prof)
		done := 0
		for i := 0; i < 20; i++ {
			n.Send(topology.NodeID(i), topology.NodeID(40+i), 128*1024,
				SendOpts{OnDelivered: func(sim.Time) { done++ }})
		}
		n.Eng.Run()
		return n.Now(), n.LLRRetries, n.Eng.Steps()
	}
	t1, r1, s1 := run()
	t2, r2, s2 := run()
	if t1 != t2 || r1 != r2 || s1 != s2 {
		t.Errorf("replay diverged: (%v,%d,%d) vs (%v,%d,%d)", t1, r1, s1, t2, r2, s2)
	}
}
