package fabric

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The fabric is built from the backend-neutral Topology contract: these
// tests run the conservation and path-validity properties the Dragonfly
// suite pins (conservation_test.go, reliability_test.go) on the fat-tree
// and HyperX backends.

// backendTopos returns small instances of the two new backends.
func backendTopos() map[string]topology.Topology {
	return map[string]topology.Topology{
		"fattree": topology.MustBuild(topology.FatTreeConfig{
			Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 4,
		}),
		"hyperx": topology.MustBuild(topology.HyperXConfig{
			Dims: []int{3, 3}, NodesPerSwitch: 2,
		}),
	}
}

// backendProfile returns the profile exercised on each backend: the
// paper's 100G RoCE profile on the fat-tree, Slingshot on the HyperX.
func backendProfile(kind string) Profile {
	var prof Profile
	if kind == "fattree" {
		prof = FatTree100GProfile()
		prof.Topo = nil // the test supplies its own small instance
	} else {
		prof = SlingshotProfile()
	}
	prof.SwitchJitter = false
	return prof
}

// TestNewFromProfile: a profile that pairs its link model with a
// topology constructor builds a working network on its own.
func TestNewFromProfile(t *testing.T) {
	prof := FatTree100GProfile()
	prof.SwitchJitter = false
	n := NewFromProfile(prof, 3)
	if n.Topo.Kind() != "fattree" || n.Topo.Nodes() < 1024 {
		t.Fatalf("profile built %s with %d nodes", n.Topo.Kind(), n.Topo.Nodes())
	}
	done := false
	n.Send(0, topology.NodeID(n.Topo.Nodes()-1), 4096,
		SendOpts{OnDelivered: func(sim.Time) { done = true }})
	n.Eng.Run()
	if !done {
		t.Fatal("message not delivered on profile-built fat-tree")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewFromProfile without a Topo should panic")
		}
	}()
	NewFromProfile(SlingshotProfile(), 1)
}

// TestBackendsAllTrafficDelivered: on a quiet fat-tree and HyperX, every
// message completes and delivered bytes match sent bytes exactly.
func TestBackendsAllTrafficDelivered(t *testing.T) {
	for kind, topo := range backendTopos() {
		t.Run(kind, func(t *testing.T) {
			n := New(topo, backendProfile(kind), 11)
			rng := sim.NewRNG(12)
			var sent int64
			done, total := 0, 0
			for i := 0; i < 150; i++ {
				src := topology.NodeID(rng.Intn(topo.Nodes()))
				dst := topology.NodeID(rng.Intn(topo.Nodes()))
				if src == dst {
					continue
				}
				bytes := int64(rng.Intn(48*1024) + 1)
				sent += bytes
				total++
				n.Send(src, dst, bytes, SendOpts{OnDelivered: func(sim.Time) { done++ }})
			}
			n.Eng.Run()
			if done != total {
				t.Fatalf("delivered %d/%d messages", done, total)
			}
			if n.BytesDelivered != sent {
				t.Errorf("BytesDelivered = %d, want %d", n.BytesDelivered, sent)
			}
		})
	}
}

// TestBackendsPacketPathsValid: every delivered packet carries a route the
// topology itself validates, from source switch to destination switch.
func TestBackendsPacketPathsValid(t *testing.T) {
	for kind, topo := range backendTopos() {
		t.Run(kind, func(t *testing.T) {
			n := New(topo, backendProfile(kind), 21)
			bad := 0
			n.Taps.OnPacketDelivered = func(p *Packet, _ sim.Time) {
				if !topo.Valid(p.Path) ||
					p.Path[0] != topo.SwitchOf(p.Msg.Src) ||
					p.Path[len(p.Path)-1] != topo.SwitchOf(p.Msg.Dst) {
					bad++
				}
			}
			rng := sim.NewRNG(22)
			done, total := 0, 0
			for i := 0; i < 150; i++ {
				src := topology.NodeID(rng.Intn(topo.Nodes()))
				dst := topology.NodeID(rng.Intn(topo.Nodes()))
				if src == dst {
					continue
				}
				total++
				n.Send(src, dst, int64(rng.Intn(32*1024)+1), SendOpts{
					OnDelivered: func(sim.Time) { done++ }})
			}
			n.Eng.Run()
			if done != total {
				t.Fatalf("delivered %d/%d", done, total)
			}
			if bad != 0 {
				t.Errorf("%d packets took invalid paths", bad)
			}
		})
	}
}

// TestBackendsAdaptiveRoutingSpreadsLoad ports the Dragonfly
// spreads-load property to the fat-tree and HyperX backends: with
// adaptive routing, simultaneous flows whose first-choice minimal paths
// collide divert to alternates, so total completion should not lose to
// minimal-only routing.
func TestBackendsAdaptiveRoutingSpreadsLoad(t *testing.T) {
	cases := map[string]struct {
		topo func() topology.Topology
		// flows returns colliding (src, dst) node pairs whose first-choice
		// minimal paths oversubscribe a shared fabric link.
		flows func(topo topology.Topology) [][2]topology.NodeID
	}{
		"fattree": {
			// Every cross-pod pair's first minimal path climbs the same
			// (agg 0, core 0) plane.
			topo: func() topology.Topology { return backendTopos()["fattree"] },
			flows: func(topo topology.Topology) [][2]topology.NodeID {
				var out [][2]topology.NodeID
				half := topo.Nodes() / 2 // pod 0 nodes, then pod 1 nodes
				for i := 0; i < half; i++ {
					out = append(out, [2]topology.NodeID{
						topology.NodeID(i), topology.NodeID(half + i)})
				}
				return out
			},
		},
		"hyperx": {
			// 3x3 with 4 nodes per switch: four 100G flows from row-0
			// switches 1 and 2 converge on the dim-0-first DOR link 0->6,
			// and four more from switches 0 and 1 on 2->8 — each 2x the
			// 200G fabric link. Every pair spans both dimensions, so a
			// second minimal path (dim-1 first) and Valiant detours exist
			// for adaptive routing to shift load onto.
			topo: func() topology.Topology {
				return topology.MustBuild(topology.HyperXConfig{
					Dims: []int{3, 3}, NodesPerSwitch: 4,
				})
			},
			flows: func(topo topology.Topology) [][2]topology.NodeID {
				var out [][2]topology.NodeID
				add := func(srcSw, dstSw topology.SwitchID, k int) {
					src, _ := topo.SwitchNodes(srcSw)
					dst, _ := topo.SwitchNodes(dstSw)
					out = append(out, [2]topology.NodeID{
						src + topology.NodeID(k), dst + topology.NodeID(k)})
				}
				for k := 0; k < 2; k++ {
					add(1, 6, k)   // (1,0)->(0,2): dim-0 first via 0
					add(2, 6, 2+k) // (2,0)->(0,2): dim-0 first via 0
					add(0, 8, k)   // (0,0)->(2,2): dim-0 first via 2
					add(1, 8, 2+k) // (1,0)->(2,2): dim-0 first via 2
				}
				return out
			},
		},
	}
	for kind, c := range cases {
		t.Run(kind, func(t *testing.T) {
			run := func(adaptive bool) sim.Time {
				topo := c.topo()
				prof := backendProfile(kind)
				prof.AdaptiveRouting = adaptive
				n := New(topo, prof, 3)
				done, total := 0, 0
				for _, f := range c.flows(topo) {
					total++
					n.Send(f[0], f[1], 256*1024, SendOpts{
						OnDelivered: func(sim.Time) { done++ }})
				}
				n.Eng.RunWhile(func() bool { return done < total })
				return n.Now()
			}
			adaptive := run(true)
			static := run(false)
			if adaptive > static {
				t.Errorf("adaptive (%v) slower than minimal-only (%v)", adaptive, static)
			}
		})
	}
}

// TestECMPPathsDeterministicAndInterleavingFree: the ECMP policy's choice
// is a pure function of the flow identity — the same seed yields the same
// per-flow path whatever order decisions are made in (the property that
// makes grid results independent of -jobs), and distinct flows spread
// over the equal-cost candidates.
func TestECMPPathsDeterministicAndInterleavingFree(t *testing.T) {
	build := func() *Network {
		topo := topology.MustBuild(topology.FatTreeConfig{
			Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 4,
		})
		prof := backendProfile("fattree")
		prof.Routing = routing.NewECMPHash
		return New(topo, prof, 9)
	}
	const flows = 64
	pathsOf := func(n *Network, reversed bool) [][]topology.SwitchID {
		out := make([][]topology.SwitchID, flows)
		for i := 0; i < flows; i++ {
			f := i
			if reversed {
				f = flows - 1 - i
			}
			p := n.ChoosePath(0, topology.NodeID(n.Topo.Nodes()-1), int64(f), 0)
			out[f] = append([]topology.SwitchID(nil), p...)
		}
		return out
	}
	a := pathsOf(build(), false)
	b := pathsOf(build(), true)
	distinct := map[string]bool{}
	for f := 0; f < flows; f++ {
		if len(a[f]) != len(b[f]) {
			t.Fatalf("flow %d: path depends on decision order", f)
		}
		key := ""
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				t.Fatalf("flow %d: path depends on decision order (%v vs %v)", f, a[f], b[f])
			}
			key += string(rune(a[f][i])) + "."
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Errorf("%d flows hashed onto %d path(s); ECMP does not spread", flows, len(distinct))
	}
}

// TestBackendsLossyLinkConservation mirrors TestLossyLinkNoDoubleCounting
// on the new backends: with lossy links and end-to-end retries, every sent
// packet is delivered exactly once — no drops, no double counting.
func TestBackendsLossyLinkConservation(t *testing.T) {
	for kind, topo := range backendTopos() {
		t.Run(kind, func(t *testing.T) {
			prof := backendProfile(kind)
			prof.FrameBER = 0.02
			prof.LLR = false
			prof.RetryTimeout = 20 * sim.Microsecond
			n := New(topo, prof, 31)
			const msgs = 30
			perMsg := make([]int, msgs)
			var wantPkts int64
			nodes := topo.Nodes()
			for i := 0; i < msgs; i++ {
				m := n.Send(topology.NodeID(i%4), topology.NodeID(nodes-1-i%4), 64*1024,
					SendOpts{OnDelivered: func(at sim.Time) { perMsg[i]++ }})
				wantPkts += int64(m.numPackets)
			}
			n.Eng.Run()
			if n.E2ERetries == 0 {
				t.Fatal("test expects end-to-end retries at 2% loss")
			}
			for i, c := range perMsg {
				if c != 1 {
					t.Errorf("message %d OnDelivered fired %d times", i, c)
				}
			}
			if n.PacketsDelivered != wantPkts {
				t.Errorf("PacketsDelivered = %d, want exactly %d", n.PacketsDelivered, wantPkts)
			}
		})
	}
}
