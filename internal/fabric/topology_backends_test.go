package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// The fabric is built from the backend-neutral Topology contract: these
// tests run the conservation and path-validity properties the Dragonfly
// suite pins (conservation_test.go, reliability_test.go) on the fat-tree
// and HyperX backends.

// backendTopos returns small instances of the two new backends.
func backendTopos() map[string]topology.Topology {
	return map[string]topology.Topology{
		"fattree": topology.MustBuild(topology.FatTreeConfig{
			Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 4,
		}),
		"hyperx": topology.MustBuild(topology.HyperXConfig{
			Dims: []int{3, 3}, NodesPerSwitch: 2,
		}),
	}
}

// backendProfile returns the profile exercised on each backend: the
// paper's 100G RoCE profile on the fat-tree, Slingshot on the HyperX.
func backendProfile(kind string) Profile {
	var prof Profile
	if kind == "fattree" {
		prof = FatTree100GProfile()
		prof.Topo = nil // the test supplies its own small instance
	} else {
		prof = SlingshotProfile()
	}
	prof.SwitchJitter = false
	return prof
}

// TestNewFromProfile: a profile that pairs its link model with a
// topology constructor builds a working network on its own.
func TestNewFromProfile(t *testing.T) {
	prof := FatTree100GProfile()
	prof.SwitchJitter = false
	n := NewFromProfile(prof, 3)
	if n.Topo.Kind() != "fattree" || n.Topo.Nodes() < 1024 {
		t.Fatalf("profile built %s with %d nodes", n.Topo.Kind(), n.Topo.Nodes())
	}
	done := false
	n.Send(0, topology.NodeID(n.Topo.Nodes()-1), 4096,
		SendOpts{OnDelivered: func(sim.Time) { done = true }})
	n.Eng.Run()
	if !done {
		t.Fatal("message not delivered on profile-built fat-tree")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewFromProfile without a Topo should panic")
		}
	}()
	NewFromProfile(SlingshotProfile(), 1)
}

// TestBackendsAllTrafficDelivered: on a quiet fat-tree and HyperX, every
// message completes and delivered bytes match sent bytes exactly.
func TestBackendsAllTrafficDelivered(t *testing.T) {
	for kind, topo := range backendTopos() {
		t.Run(kind, func(t *testing.T) {
			n := New(topo, backendProfile(kind), 11)
			rng := sim.NewRNG(12)
			var sent int64
			done, total := 0, 0
			for i := 0; i < 150; i++ {
				src := topology.NodeID(rng.Intn(topo.Nodes()))
				dst := topology.NodeID(rng.Intn(topo.Nodes()))
				if src == dst {
					continue
				}
				bytes := int64(rng.Intn(48*1024) + 1)
				sent += bytes
				total++
				n.Send(src, dst, bytes, SendOpts{OnDelivered: func(sim.Time) { done++ }})
			}
			n.Eng.Run()
			if done != total {
				t.Fatalf("delivered %d/%d messages", done, total)
			}
			if n.BytesDelivered != sent {
				t.Errorf("BytesDelivered = %d, want %d", n.BytesDelivered, sent)
			}
		})
	}
}

// TestBackendsPacketPathsValid: every delivered packet carries a route the
// topology itself validates, from source switch to destination switch.
func TestBackendsPacketPathsValid(t *testing.T) {
	for kind, topo := range backendTopos() {
		t.Run(kind, func(t *testing.T) {
			n := New(topo, backendProfile(kind), 21)
			bad := 0
			n.Taps.OnPacketDelivered = func(p *Packet, _ sim.Time) {
				if !topo.Valid(p.Path) ||
					p.Path[0] != topo.SwitchOf(p.Msg.Src) ||
					p.Path[len(p.Path)-1] != topo.SwitchOf(p.Msg.Dst) {
					bad++
				}
			}
			rng := sim.NewRNG(22)
			done, total := 0, 0
			for i := 0; i < 150; i++ {
				src := topology.NodeID(rng.Intn(topo.Nodes()))
				dst := topology.NodeID(rng.Intn(topo.Nodes()))
				if src == dst {
					continue
				}
				total++
				n.Send(src, dst, int64(rng.Intn(32*1024)+1), SendOpts{
					OnDelivered: func(sim.Time) { done++ }})
			}
			n.Eng.Run()
			if done != total {
				t.Fatalf("delivered %d/%d", done, total)
			}
			if bad != 0 {
				t.Errorf("%d packets took invalid paths", bad)
			}
		})
	}
}

// TestBackendsLossyLinkConservation mirrors TestLossyLinkNoDoubleCounting
// on the new backends: with lossy links and end-to-end retries, every sent
// packet is delivered exactly once — no drops, no double counting.
func TestBackendsLossyLinkConservation(t *testing.T) {
	for kind, topo := range backendTopos() {
		t.Run(kind, func(t *testing.T) {
			prof := backendProfile(kind)
			prof.FrameBER = 0.02
			prof.LLR = false
			prof.RetryTimeout = 20 * sim.Microsecond
			n := New(topo, prof, 31)
			const msgs = 30
			perMsg := make([]int, msgs)
			var wantPkts int64
			nodes := topo.Nodes()
			for i := 0; i < msgs; i++ {
				m := n.Send(topology.NodeID(i%4), topology.NodeID(nodes-1-i%4), 64*1024,
					SendOpts{OnDelivered: func(at sim.Time) { perMsg[i]++ }})
				wantPkts += int64(m.numPackets)
			}
			n.Eng.Run()
			if n.E2ERetries == 0 {
				t.Fatal("test expects end-to-end retries at 2% loss")
			}
			for i, c := range perMsg {
				if c != 1 {
					t.Errorf("message %d OnDelivered fired %d times", i, c)
				}
			}
			if n.PacketsDelivered != wantPkts {
				t.Errorf("PacketsDelivered = %d, want exactly %d", n.PacketsDelivered, wantPkts)
			}
		})
	}
}
