// Package fabric is the packet-level discrete-event simulator at the heart
// of this reproduction. It assembles any topology.Topology backend
// (Dragonfly, fat-tree, HyperX) of Rosetta-style switches and RoCE NICs
// into a running network with:
//
//   - finite input buffers and credit-based link-level flow control (so
//     congestion trees and HOL blocking emerge naturally, as they do on
//     Aries under incast);
//   - virtual output queuing at every egress port with per-traffic-class
//     DRR scheduling (internal/qos);
//   - adaptive routing over up to four minimal and non-minimal paths chosen
//     at the source switch from request-queue depth estimates (§II-C);
//   - endpoint congestion control in the Slingshot style: the switch owning
//     a congested endpoint port identifies contributing sources and applies
//     stiff, fast per-pair back-pressure (§II-D), or ECN-style marking, or
//     nothing at all (the Aries baseline);
//   - an eager/rendezvous message protocol and per-message host overheads
//     calibrated to the paper's quiet-system measurements (Figs. 2, 4, 5).
package fabric

import (
	"repro/internal/congestion"
	"repro/internal/ethernet"
	"repro/internal/qos"
	"repro/internal/rosetta"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Profile is the hardware/algorithm personality of a simulated system.
type Profile struct {
	Name string

	// Topo optionally pairs the link/latency model with a topology
	// constructor — the shape this hardware ships as (e.g. FatTree100G
	// builds a folded Clos). NewFromProfile builds it; callers that
	// construct their own topology (the harness systems, tests) pass one
	// to New directly and may leave Topo nil.
	Topo topology.Builder

	// FabricBits is the switch-to-switch link bandwidth (bits/s/direction).
	FabricBits int64
	// EdgeBits is the NIC link bandwidth. The paper's Slingshot systems use
	// 100 Gb/s ConnectX-5 NICs (§I).
	EdgeBits int64
	// Taper scales fabric link bandwidth (Fig. 13/14 taper to 25%).
	Taper float64

	// InputBufferBytes is the per-input-port buffer backing link-level
	// credits. Exhausting it stalls the upstream sender.
	InputBufferBytes int64

	// CC selects and tunes the endpoint congestion control.
	CC congestion.Params
	// CCBuilder, when set, constructs each NIC's congestion controller
	// and overrides CC (nil keeps congestion.NewController(CC), the
	// historical behaviour). The fabric reads the built controller's
	// Hooks to decide whether switches emit endpoint back-pressure
	// and/or mark ECN.
	CCBuilder congestion.Builder

	// Routing, when set, constructs the network's source-switch routing
	// policy. nil keeps the historical behaviour: SlingshotAdaptive when
	// AdaptiveRouting is set, MinimalOnly otherwise.
	Routing routing.Builder
	// AdaptiveRouting enables source-switch adaptive path selection;
	// when false, packets take the first minimal path. Only consulted
	// when Routing is nil.
	AdaptiveRouting bool
	// MinimalBias > 1 biases path costs towards minimal paths (§II-C).
	MinimalBias float64
	// RouteNoise randomizes path-cost estimates (0 = perfect information).
	// It models the staleness/coarseness of distributed congestion
	// estimates: Aries spreads traffic over non-minimal paths far more
	// aggressively than Slingshot, whose estimates ride every ack (§II-C).
	RouteNoise float64

	// EdgeMode is the Ethernet framing on edge links (standard RoCE NICs
	// speak classic Ethernet); FabricMode is switch-to-switch framing
	// (always Slingshot-enhanced on Rosetta).
	EdgeMode, FabricMode ethernet.Mode

	// CellBytes caps per-packet payload (default ethernet.MaxPayload).
	// Harnesses may raise it for multi-MiB messages to bound event counts.
	CellBytes int

	// HostGap is the per-message host/driver overhead; it serializes
	// message injection on a NIC and sets the small-message rate
	// (~0.85 us -> ~1.2 M msg/s, matching Fig. 4's 8 B bandwidth).
	HostGap sim.Time
	// NICLatency is the fixed tx/rx hardware latency per side.
	NICLatency sim.Time
	// RendezvousThreshold: messages strictly larger use an RTS/CTS
	// handshake before data flows (0 disables rendezvous).
	RendezvousThreshold int64

	// EndpointThreshold is the egress-queue depth at an edge port beyond
	// which the switch emits per-source back-pressure (Slingshot CC).
	EndpointThreshold int64
	// EcnThreshold marks packets on any egress queue deeper than this
	// (ECN-like CC).
	EcnThreshold int64

	// SwitchJitter samples per-traversal latency from the Fig. 2
	// distribution; false uses the deterministic mean (for calibration
	// tests).
	SwitchJitter bool

	// FrameBER is the residual post-FEC frame error probability injected
	// on every link (0 for the deterministic experiments). With LLR
	// (§II-F) errors are retried at link level and only add latency;
	// without it the frame is lost and the NIC's end-to-end retry
	// recovers it after RetryTimeout.
	FrameBER float64
	// LLR enables link-level reliability on fabric links.
	LLR bool
	// RetryTimeout is the NIC end-to-end retransmission timeout.
	RetryTimeout sim.Time

	// QoS is the traffic-class configuration (nil means one best-effort
	// class).
	QoS *qos.Config
}

// SlingshotProfile models Malbec/Shandy: Rosetta switches, Slingshot
// congestion control, adaptive routing, RoCE NICs at 100 Gb/s.
func SlingshotProfile() Profile {
	return Profile{
		Name:                "slingshot",
		FabricBits:          200e9,
		EdgeBits:            100e9,
		Taper:               1,
		InputBufferBytes:    rosetta.InputBufferBytes,
		CC:                  congestion.DefaultParams(congestion.Slingshot),
		AdaptiveRouting:     true,
		MinimalBias:         2,
		RouteNoise:          0.1,
		EdgeMode:            ethernet.Standard,
		FabricMode:          ethernet.Enhanced,
		CellBytes:           ethernet.MaxPayload,
		HostGap:             850 * sim.Nanosecond,
		NICLatency:          300 * sim.Nanosecond,
		RendezvousThreshold: 16 * 1024,
		EndpointThreshold:   24 * 1024,
		EcnThreshold:        64 * 1024,
		SwitchJitter:        true,
		FrameBER:            0,
		LLR:                 true,
		RetryTimeout:        50 * sim.Microsecond,
		QoS:                 nil,
	}
}

// AriesProfile models Crystal: the same Dragonfly routing ideas but slower
// links, shallower buffers and — decisively — no endpoint congestion
// control, so incast floods the fabric until credits exhaust (§III-A).
func AriesProfile() Profile {
	p := SlingshotProfile()
	p.Name = "aries"
	p.FabricBits = 42e9 // ~5.25 GB/s Aries fabric link
	p.EdgeBits = 82e9   // 81.6 Gb/s peak injection (§IV-A)
	p.InputBufferBytes = rosetta.AriesInputBufferBytes
	p.CC = congestion.DefaultParams(congestion.None)
	// Aries biases much less towards minimal paths and works from coarser
	// congestion information, spreading heavy flows across the whole
	// group (§IV-A; the mechanism that lets congestion trees reach
	// unrelated jobs).
	p.MinimalBias = 1.05
	p.RouteNoise = 0.6
	p.EdgeMode = ethernet.Standard
	p.FabricMode = ethernet.Standard
	// Aries adaptive routing is similar (§I: "uses a similar routing
	// algorithm"); keep it on.
	return p
}

// FatTree100GProfile models the paper's comparison systems (§I, §III): a
// 100 Gb/s fat-tree cluster with standard RoCE NICs, classic Ethernet
// framing end to end, DCQCN-style (ECN-like) congestion control and
// ECMP-flavoured routing — equal-cost minimal paths chosen by load with
// noisy estimates, detours strongly discouraged. The profile pairs the
// link model with its topology: a folded Clos sized like Shandy.
func FatTree100GProfile() Profile {
	p := SlingshotProfile()
	p.Name = "fattree-100g"
	p.Topo = topology.FatTreeFor(1024)
	p.FabricBits = 100e9
	p.EdgeBits = 100e9
	p.CC = congestion.DefaultParams(congestion.ECNLike)
	// ECMP hashes flows over the equal-cost ups without congestion
	// feedback: model it as minimal-only-ish spreading with coarse load
	// information.
	p.MinimalBias = 4
	p.RouteNoise = 0.3
	p.EdgeMode = ethernet.Standard
	p.FabricMode = ethernet.Standard
	p.LLR = false // plain Ethernet links, no link-level retry
	return p
}

// ECNProfile is a Slingshot system running classical ECN-style congestion
// control instead of the per-pair hardware scheme — used by the ablation
// benchmarks to isolate the contribution of Slingshot's CC design.
func ECNProfile() Profile {
	p := SlingshotProfile()
	p.Name = "slingshot-ecn"
	p.CC = congestion.DefaultParams(congestion.ECNLike)
	return p
}

// routingBuilder resolves the profile's routing-policy constructor:
// Profile.Routing, else the AdaptiveRouting bool's historical mapping.
func (p *Profile) routingBuilder() routing.Builder {
	if p.Routing != nil {
		return p.Routing
	}
	if p.AdaptiveRouting {
		return routing.NewSlingshotAdaptive
	}
	return routing.NewMinimalOnly
}

func (p *Profile) cell() int {
	if p.CellBytes <= 0 {
		return ethernet.MaxPayload
	}
	return p.CellBytes
}

func (p *Profile) fabricBits() int64 {
	t := p.Taper
	if t <= 0 || t > 1 {
		t = 1
	}
	return int64(float64(p.FabricBits) * t)
}
