package fabric

import (
	"repro/internal/rosetta"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Switch is the runtime state of one Rosetta (or Aries) switch.
type Switch struct {
	net *Network
	// dom is the switch's owning domain (its topology partition unit);
	// all switch-side event scheduling and clock reads go through it.
	dom *domain
	ID  topology.SwitchID
	rng *sim.RNG
	lat *rosetta.LatencyModel
	// ports[i] holds the (possibly parallel) egress ports towards the
	// i-th adjacent switch, indexed by the topology's dense neighbor
	// index (Topology.NeighborIndex) — resolved at build time so the
	// per-hop forwarding path does zero map lookups.
	ports [][]*outPort
	// edge[i] is the egress port towards the i-th locally attached NIC
	// (node ID minus firstNode; nodes are numbered switch-major).
	edge      []*outPort
	firstNode int
	// inPort/outPort sampling for the traversal latency model: we don't
	// track physical port numbers per packet, so traversals sample a
	// uniformly random (in, out) pair — matching the measured Fig. 2
	// distribution over many flows.
}

// portsTo returns the parallel egress ports towards an adjacent switch,
// or nil when the switches are not adjacent (matching the old map
// lookup's behaviour for callers like DegradeLinkLanes that probe
// arbitrary pairs).
func (s *Switch) portsTo(next topology.SwitchID) []*outPort {
	i := s.net.Topo.NeighborIndex(s.ID, next)
	if i < 0 {
		return nil
	}
	return s.ports[i]
}

// edgePort returns the egress port towards a locally attached NIC.
func (s *Switch) edgePort(n topology.NodeID) *outPort {
	return s.edge[int(n)-s.firstNode]
}

// Event handlers (closure-free dispatch): pointer aliases of Switch, with
// the packet in the event's Data word.

// switchArrive receives the packet in Data from an upstream link.
type switchArrive Switch

//simlint:hotpath
func (h *switchArrive) OnEvent(_ *sim.Engine, ev *sim.Event) {
	(*Switch)(h).arrive(ev.Data.(*Packet))
}

// switchForward routes the packet in Data after the traversal latency.
type switchForward Switch

//simlint:hotpath
func (h *switchForward) OnEvent(_ *sim.Engine, ev *sim.Event) {
	(*Switch)(h).forward(ev.Data.(*Packet))
}

// arrive receives a packet from an upstream link. The input-buffer space
// was reserved by the upstream credit before transmission; processing
// (route lookup, VOQ request/grant, crossbar) takes one traversal latency.
func (s *Switch) arrive(p *Packet) {
	var lat sim.Time
	if s.net.Prof.SwitchJitter {
		lat = s.lat.Traversal(s.rng.Intn(rosetta.Ports), s.rng.Intn(rosetta.Ports))
	} else {
		lat = rosetta.MeanTraversal(0, 2) // deterministic mean (~350 ns)
	}
	s.dom.eng.After(lat, (*switchForward)(s), 0, p)
}

// forward routes the packet to its egress queue.
func (s *Switch) forward(p *Packet) {
	if p.Path == nil {
		// This is the packet's source switch: adaptive routing chooses the
		// full path here (§II-C: the source switch estimates the load of up
		// to four minimal and non-minimal paths).
		p.Path = s.net.choosePath(s, p)
		p.hop = 0
	}
	var o *outPort
	if p.hop == len(p.Path)-1 {
		// Final switch: egress to the destination NIC.
		o = s.edgePort(p.Msg.Dst)
	} else {
		next := p.Path[p.hop+1]
		p.hop++
		o = s.bestPortTo(next)
	}
	s.enqueue(o, p)
}

// bestPortTo picks the least-loaded parallel link towards an adjacent
// switch.
func (s *Switch) bestPortTo(next topology.SwitchID) *outPort {
	ports := s.portsTo(next)
	best := ports[0]
	for _, o := range ports[1:] {
		if o.queuedBytes() < best.queuedBytes() {
			best = o
		}
	}
	return best
}

// enqueue places the packet in the egress scheduler and runs the
// congestion-detection hooks the configured CC algorithm asked for
// (congestion.Hooks, cached on the network at build time).
func (s *Switch) enqueue(o *outPort, p *Packet) {
	o.sched.Enqueue(p.Class, int(bufBytes(p)), p)

	prof := &s.net.Prof
	// Fluid background load counts toward both congestion-detection
	// thresholds so hybrid-mode CC reacts to bulk flows it shares the
	// port with (zero at the packet default).
	if s.net.wantSignals && o.edge && !p.ctrl {
		if q := o.queuedBytes() + o.bgQueued(); q > prof.EndpointThreshold {
			s.signalSource(p, q)
		}
	}
	if s.net.wantECN && o.queuedBytes()+o.bgQueued() > prof.EcnThreshold {
		p.ecnMarked = true
	}
	o.pump()
}

// signalSource sends the per-pair back-pressure notification to the source
// of a packet contributing to endpoint congestion (§II-D). The notification
// rides the ack crossbars back to the source NIC; we model its latency as
// the reverse-path delay of the packet. The observed queue depth rides the
// event's Arg word; nicSignal derives the severity from it at delivery
// with exactly the arithmetic used here before the refactor.
func (s *Switch) signalSource(p *Packet, queued int64) {
	delay := s.net.revLatency(p.Path)
	nic := s.net.nics[p.Msg.Src]
	s.dom.ctr.Signals++
	// A cross-domain notification's reverse path retraces the packet's:
	// it includes the domain-cut optical hop, so the post always clears
	// the epoch fence.
	s.dom.post(nic.dom, s.dom.eng.Now()+delay, (*nicSignal)(nic), queued, p.Msg)
}
