package fabric

import (
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/qos"
	"repro/internal/sim"
)

// bufBytes is the input-buffer occupancy of a packet: payload plus the
// RoCEv2 header stack. Buffers and credits are accounted in these units on
// every link regardless of the link's framing mode.
func bufBytes(p *Packet) int64 {
	return int64(p.Payload + ethernet.RoCEHeaders)
}

// outPort is one transmit direction of a link: from a switch (or a NIC's
// injection side) towards a peer switch or NIC. It owns the egress queue
// (a per-traffic-class DRR scheduler), the busy/serialization state, and
// the credit count representing free space in the peer's input buffer.
type outPort struct {
	net *Network
	// dom is the owning domain: the transmitting switch's (or, for an
	// injection port, the transmitting NIC's).
	dom   *domain
	sched *qos.PortScheduler
	bits  int64
	prop  sim.Time
	mode  ethernet.Mode

	owner    *Switch // transmitting switch; nil for a NIC injection port
	ownerNIC *NIC    // transmitting NIC; nil for switch ports
	peerSw   *Switch // nil when the port faces a NIC
	peerNIC  *NIC

	edge   bool // switch->NIC port: endpoint congestion is detected here
	global bool // inter-group optical link

	// bgIdx is this port's slot in the fluid background-load tables
	// (flowBGEdge for edge ports, flowBG for fabric ports), stamped by
	// SetFidelity; -1 for ports with no slot (NIC injection).
	bgIdx int32

	// phy models the physical link: lane degrade reduces the effective
	// bandwidth, and FrameBER>0 injects post-FEC frame errors that LLR
	// retries (or loses, triggering the NIC end-to-end retry, §II-F).
	phy *phy.Link
	rng *sim.RNG

	busy    bool
	credits int64

	retryEv *sim.Event // pending cap-retry pump
	// blockedSince tracks how long the head of the queue has been credit
	// starved, feeding the deadlock-escape watchdog.
	blockedSince sim.Time
	watchdogEv   *sim.Event

	// Stats.
	TxPackets int64
	TxBytes   int64
}

// creditUnlimited is the credit count used when the receiver can always
// accept (a NIC's receive buffer).
const creditUnlimited = int64(1) << 42

// watchdogDelay is how long a port may be fully credit-starved before the
// deadlock-escape overdraft kicks in. Real networks break such cycles with
// virtual channels; the overdraft is our equivalent and fires only under
// pathological saturation.
const watchdogDelay = 500 * sim.Microsecond

// Event handlers (closure-free dispatch): pointer aliases of outPort.

// portRetryPump re-pumps the port at a QoS cap-retry deadline.
type portRetryPump outPort

//simlint:hotpath
func (h *portRetryPump) OnEvent(_ *sim.Engine, _ *sim.Event) {
	o := (*outPort)(h)
	o.retryEv = nil
	o.pump()
}

// portCreditReturn returns Arg bytes of input-buffer credit to this port
// (a packet departed the downstream element) and re-pumps it.
type portCreditReturn outPort

//simlint:hotpath
func (h *portCreditReturn) OnEvent(_ *sim.Engine, ev *sim.Event) {
	o := (*outPort)(h)
	o.credits += ev.Arg
	o.pump()
}

// portTxDone ends a transmission: the wire is free for the next packet.
type portTxDone outPort

//simlint:hotpath
func (h *portTxDone) OnEvent(_ *sim.Engine, _ *sim.Event) {
	o := (*outPort)(h)
	o.busy = false
	o.pump()
	if o.ownerNIC != nil {
		o.ownerNIC.pump()
	}
}

// portWatchdog fires the deadlock-escape overdraft after a starvation
// interval.
type portWatchdog outPort

//simlint:hotpath
func (h *portWatchdog) OnEvent(_ *sim.Engine, _ *sim.Event) {
	o := (*outPort)(h)
	o.watchdogEv = nil
	if o.busy || o.sched.Len() == 0 {
		return
	}
	// Still starved: grant an overdraft credit for one packet so the
	// fabric cannot wedge (virtual-channel escape equivalent).
	if o.peerSw != nil && o.credits < int64(ethernet.MaxPayload+ethernet.RoCEHeaders) {
		o.dom.ctr.Overdrafts++
		o.credits += int64(ethernet.MaxPayload + ethernet.RoCEHeaders)
	}
	o.pump()
}

// pump advances the port: if idle, pick the next packet the scheduler and
// credits allow and start transmitting it.
func (o *outPort) pump() {
	if o.busy || o.sched.Len() == 0 {
		return
	}
	now := o.dom.eng.Now()
	max := o.credits
	if o.peerNIC != nil {
		max = creditUnlimited
	}
	v, _, _, ok, retry := o.sched.Dequeue(now, clampInt(max))
	if !ok {
		if retry > 0 && o.retryEv == nil {
			o.retryEv = o.dom.eng.Schedule(retry, (*portRetryPump)(o), 0, nil)
		}
		if retry == 0 && o.peerSw != nil && o.credits < o.sched.TotalQueuedBytes() {
			o.armWatchdog(now)
		}
		return
	}
	o.disarmWatchdog()
	p := v.(*Packet)
	o.transmit(p, now)
}

func clampInt(v int64) int {
	const maxInt = int64(^uint(0) >> 1)
	if v < 0 {
		return 0
	}
	if v > maxInt {
		return int(maxInt)
	}
	return int(v)
}

// effBits is the port's current usable bandwidth: the configured rate
// capped by the physical link's surviving lanes.
func (o *outPort) effBits() int64 {
	if o.phy != nil {
		if pb := o.phy.Bandwidth(); pb < o.bits {
			return pb
		}
	}
	return o.bits
}

// transmit puts p on the wire.
func (o *outPort) transmit(p *Packet, now sim.Time) {
	o.busy = true
	size := bufBytes(p)
	if o.peerSw != nil {
		o.credits -= size
	}
	o.TxPackets++
	o.TxBytes += size

	// Departing the current element frees the upstream input-buffer space
	// this packet was holding; the credit travels one reverse hop. A
	// cross-domain upstream hop is a partition-cut link — optical in all
	// three decompositions — so its propagation is the full lookahead and
	// the post always clears the epoch fence.
	if ip := p.inPort; ip != nil {
		o.dom.post(ip.dom, now+ip.prop, (*portCreditReturn)(ip), size, nil)
	}
	p.inPort = o

	wire := ethernet.WireBytes(p.Payload, o.mode)
	ser := sim.SerializationTime(int64(wire), o.effBits())

	// Frame-error injection (§II-F): LLR retries add wire time; without
	// LLR the frame is lost and the source NIC's end-to-end retry recovers
	// it after a timeout.
	occupancy := ser
	lost := false
	if ber := o.net.Prof.FrameBER; ber > 0 && o.rng != nil {
		for o.rng.Float64() < ber {
			if !o.net.Prof.LLR {
				lost = true
				o.dom.ctr.FramesLost++
				break
			}
			o.dom.ctr.LLRRetries++
			occupancy += o.phy.LLRDelay + ser
		}
	}

	o.dom.eng.After(occupancy, (*portTxDone)(o), 0, nil)
	if lost {
		o.loseFrame(p, size, occupancy, now)
		return
	}
	// A cross-domain arrival crosses a partition-cut (optical) link, so
	// occupancy + propagation is beyond the lookahead window.
	arrival := occupancy + o.prop + phy.FECLatency
	switch {
	case o.peerSw != nil:
		o.dom.post(o.peerSw.dom, now+arrival, (*switchArrive)(o.peerSw), 0, p)
	default:
		o.dom.eng.After(arrival+o.net.Prof.NICLatency, (*nicDeliver)(o.peerNIC), 0, p)
	}
}

// loseFrame handles an unrecovered link error: the reserved downstream
// buffer space returns, and the source NIC retransmits the packet after
// its end-to-end retry timeout (§II-F: "the SLINGSHOT NIC provides
// end-to-end retry to protect against packet loss"). The lost packet
// migrates to the source NIC's domain for re-injection (and, with it,
// between domain free-lists).
func (o *outPort) loseFrame(p *Packet, size int64, after, now sim.Time) {
	if o.peerSw != nil {
		o.dom.eng.After(after+o.prop, (*portCreditReturn)(o), size, nil)
	}
	src := o.net.nics[p.Msg.Src]
	timeout := o.net.Prof.RetryTimeout
	if timeout <= 0 {
		timeout = 50 * sim.Microsecond
	}
	o.dom.ctr.E2ERetries++
	o.dom.post(src.dom, now+after+timeout, (*nicRetransmit)(src), 0, p)
}

// armWatchdog schedules the deadlock-escape overdraft.
func (o *outPort) armWatchdog(now sim.Time) {
	if o.watchdogEv != nil {
		return
	}
	o.blockedSince = now
	o.watchdogEv = o.dom.eng.Schedule(now+watchdogDelay, (*portWatchdog)(o), 0, nil)
}

func (o *outPort) disarmWatchdog() {
	if o.watchdogEv != nil {
		o.dom.eng.Cancel(o.watchdogEv)
		o.watchdogEv = nil
	}
}

// queuedBytes is the congestion estimate adaptive routing reads (§II-C:
// "the total depth of the request queues of each output port").
func (o *outPort) queuedBytes() int64 { return o.sched.TotalQueuedBytes() }
