package fabric

// Tests of the delay-CC target calibration the fabric wires at build
// time (congestion.TargetCalibrator): the quiet-RTT oracle must track
// the topology, and a calibrated controller must not read a large
// topology's base RTT as congestion. The demonstration runs a fat-tree
// at 25 Gb/s, where store-and-forward serialization over a cross-pod
// path pushes the quiet RTT well past the fixed 8 us floor — at
// 100 Gb/s the floor happens to cover every quiet path, which is
// exactly the kind of tuning coincidence calibration removes.

import (
	"testing"

	"repro/internal/congestion"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fatTree25G is the comparison cluster dialled down to 25 Gb/s links
// with the Swift-style delay controller.
func fatTree25G(nodes int) Profile {
	p := FatTree100GProfile()
	p.Topo = topology.FatTreeFor(nodes)
	p.CC = congestion.DefaultParams(congestion.Delay)
	p.EdgeBits = 25e9
	p.FabricBits = 25e9
	return p
}

// uncalibrated hides the CalibrateTarget method behind the plain
// Controller interface, so the fabric's build-time wiring cannot reach
// it — the controller runs with the fixed TargetRTT floor.
func uncalibrated(params congestion.Params) congestion.Builder {
	return func() congestion.Controller {
		return struct{ congestion.Controller }{congestion.NewController(params)}
	}
}

// streamQuiet runs a window-limited stream of 64 KiB messages from node
// 0 to the farthest node and returns the finish time plus the sender's
// controller for inspection.
func streamQuiet(t *testing.T, n *Network) (sim.Time, congestion.Controller) {
	t.Helper()
	dst := topology.NodeID(n.Topo.Nodes() - 1)
	const iters = 48
	done, posted := 0, 0
	var finish sim.Time
	var post func()
	post = func() {
		if posted >= iters {
			return
		}
		posted++
		n.Send(0, dst, 64*1024, SendOpts{OnDelivered: func(at sim.Time) {
			done++
			finish = at
			post()
		}})
	}
	for i := 0; i < 4; i++ {
		post()
	}
	n.Eng.RunWhile(func() bool { return done < iters })
	if done != iters {
		t.Fatalf("stream stalled at %d/%d messages", done, iters)
	}
	return finish, n.nics[0].cc
}

func TestQuietRTTTracksTopology(t *testing.T) {
	prof := fatTree25G(1024)
	n := NewFromProfile(prof, 7)
	win := prof.CC.InitialWindow
	near := n.quietRTT(0, 1, win)                                // same switch
	far := n.quietRTT(0, topology.NodeID(n.Topo.Nodes()-1), win) // cross-pod
	if near >= far {
		t.Errorf("quiet RTT not monotone with distance: same-switch %v >= cross-pod %v", near, far)
	}
	// The cross-pod quiet RTT exceeds the fixed floor — the regime where
	// an uncalibrated delay controller misreads the topology as
	// congestion.
	if far <= prof.CC.TargetRTT {
		t.Errorf("cross-pod quiet RTT %v not above the fixed target %v; the fixture lost its point", far, prof.CC.TargetRTT)
	}
	// Determinism: the oracle is pure path shape, so asking twice (and on
	// a fresh identical network) gives identical answers.
	if again := n.quietRTT(0, topology.NodeID(n.Topo.Nodes()-1), win); again != far {
		t.Errorf("quiet RTT unstable: %v then %v", far, again)
	}
	if other := NewFromProfile(prof, 7).quietRTT(0, topology.NodeID(n.Topo.Nodes()-1), win); other != far {
		t.Errorf("quiet RTT differs across identical builds: %v vs %v", far, other)
	}
}

func TestDelayCCCalibrationStopsOverthrottle(t *testing.T) {
	// Calibrated controllers on the big tree: the raised per-destination
	// target absorbs the quiet base RTT, so a quiet stream sees no cuts
	// and keeps the full window.
	big := NewFromProfile(fatTree25G(1024), 7)
	bigFinish, cc := streamQuiet(t, big)
	if s := cc.Stats().TotalSignals; s != 0 {
		t.Errorf("calibrated controller cut %d times on a quiet path, want 0", s)
	}
	dst := topology.NodeID(big.Topo.Nodes() - 1)
	if w := cc.Window(dst); w != big.Prof.CC.InitialWindow {
		t.Errorf("calibrated window = %d, want the full %d", w, big.Prof.CC.InitialWindow)
	}

	// The same stream on a small tree finishes in about the same time:
	// throughput is scale-invariant once the target tracks the topology.
	small := NewFromProfile(fatTree25G(64), 7)
	smallFinish, _ := streamQuiet(t, small)
	if ratio := float64(bigFinish) / float64(smallFinish); ratio > 1.1 {
		t.Errorf("calibrated stream slows down %.2fx from 64 to 1024 nodes, want scale-invariance", ratio)
	}

	// An uncalibrated controller on the same big tree reads the base RTT
	// as standing queue: repeated spurious cuts collapse the window and
	// the quiet stream runs several times slower.
	prof := fatTree25G(1024)
	prof.CCBuilder = uncalibrated(prof.CC)
	uncal := NewFromProfile(prof, 7)
	uncalFinish, uncc := streamQuiet(t, uncal)
	if s := uncc.Stats().TotalSignals; s == 0 {
		t.Fatalf("uncalibrated controller saw no delay cuts; the over-throttle regime is gone")
	}
	if w := uncc.Window(dst); w > prof.CC.InitialWindow/4 {
		t.Errorf("uncalibrated window = %d, expected collapse below %d", w, prof.CC.InitialWindow/4)
	}
	if ratio := float64(uncalFinish) / float64(bigFinish); ratio < 2 {
		t.Errorf("uncalibrated stream only %.2fx slower than calibrated, want >= 2x", ratio)
	}
}
