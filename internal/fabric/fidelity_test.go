package fabric

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestParseFidelity(t *testing.T) {
	cases := []struct {
		in   string
		want Fidelity
		err  bool
	}{
		{"", FidelityPacket, false},
		{"packet", FidelityPacket, false},
		{"flow", FidelityFlow, false},
		{"hybrid", FidelityHybrid, false},
		{"fluid", 0, true},
		{"Packet", 0, true},
	}
	for _, c := range cases {
		got, err := ParseFidelity(c.in)
		if (err != nil) != c.err || (err == nil && got != c.want) {
			t.Errorf("ParseFidelity(%q) = %v, %v", c.in, got, err)
		}
	}
	for i, name := range FidelityNames() {
		if Fidelity(i).String() != name {
			t.Errorf("Fidelity(%d).String() = %q, want %q", i, Fidelity(i).String(), name)
		}
	}
}

// flowNet builds a quiet dragonfly at the requested fidelity.
func flowNet(t testing.TB, f Fidelity) *Network {
	t.Helper()
	n := quietNet(t, noJitter(SlingshotProfile()))
	n.SetFidelity(f)
	return n
}

func TestFlowFidelityCompletionCalibrated(t *testing.T) {
	// One bulk transfer on a quiet network: the fluid completion time
	// must track the packet engine within a tight bound (this is the
	// single-message end of the calibration story; harness has the
	// loaded-scenario half).
	for _, bytes := range []int64{128 << 10, 1 << 20, 8 << 20} {
		packet := sendAndWait(t, flowNet(t, FidelityPacket), 0, 63, bytes)
		fluid := sendAndWait(t, flowNet(t, FidelityFlow), 0, 63, bytes)
		rel := float64(fluid-packet) / float64(packet)
		if rel < 0 {
			rel = -rel
		}
		t.Logf("%8d B: packet %v fluid %v (err %.1f%%)", bytes, packet, fluid, 100*rel)
		if rel > 0.15 {
			t.Errorf("%d B: fluid completion %v vs packet %v, |err| %.1f%% > 15%%",
				bytes, fluid, packet, 100*rel)
		}
	}
}

func TestFlowFidelityFairSharing(t *testing.T) {
	// Two fluid transfers into one destination share its edge link: both
	// must take about twice as long as a lone transfer.
	n := flowNet(t, FidelityFlow)
	const bytes = 4 << 20
	var done [2]sim.Time
	n.Send(0, 63, bytes, SendOpts{OnDelivered: func(at sim.Time) { done[0] = at }})
	n.Send(4, 63, bytes, SendOpts{OnDelivered: func(at sim.Time) { done[1] = at }})
	n.Eng.RunWhile(func() bool { return done[0] == 0 || done[1] == 0 })
	lone := sendAndWait(t, flowNet(t, FidelityFlow), 0, 63, bytes)
	for i, d := range done {
		ratio := float64(d) / float64(lone)
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("flow %d: shared completion %v vs lone %v (ratio %.2f, want ~2)", i, d, lone, ratio)
		}
	}
}

func TestHybridClassification(t *testing.T) {
	n := flowNet(t, FidelityHybrid)
	cb := SendOpts{}
	// Untagged traffic stays packet-level regardless of size.
	n.Send(0, 63, 1<<20, cb)
	if n.FlowsStarted() != 0 {
		t.Fatalf("untagged send took the fluid path")
	}
	// Small bulk stays packet-level.
	n.Send(0, 63, 4<<10, SendOpts{Bulk: true})
	if n.FlowsStarted() != 0 {
		t.Fatalf("small bulk send took the fluid path")
	}
	// Real bulk goes fluid.
	n.Send(0, 63, 1<<20, SendOpts{Bulk: true})
	if n.FlowsStarted() != 1 {
		t.Fatalf("bulk send stayed on the packet path")
	}
	// Fan-in guard: beyond hybridFanIn concurrent fluid flows into one
	// node, further bulk sends drop to the packet engine.
	for i := 1; i < 8; i++ {
		n.Send(topology.NodeID(4*i), 63, 1<<20, SendOpts{Bulk: true})
	}
	if got := n.FlowsStarted(); got != hybridFanIn {
		t.Fatalf("fluid admissions = %d, want fan-in cap %d", got, hybridFanIn)
	}
	// Self-sends stay local even at flow fidelity.
	nf := flowNet(t, FidelityFlow)
	nf.Send(0, 0, 1<<20, cb)
	if nf.FlowsStarted() != 0 {
		t.Fatalf("self send took the fluid path")
	}
}

func TestHybridBackgroundLoadVisible(t *testing.T) {
	n := flowNet(t, FidelityHybrid)
	// Saturate a destination's edge with fluid bulk, then check the
	// packet path's load views see the background.
	dst := topology.NodeID(63)
	for i := 0; i < hybridFanIn; i++ {
		n.Send(topology.NodeID(4*i), dst, 32<<20, SendOpts{Bulk: true})
	}
	n.RunFor(100 * sim.Microsecond)
	if got := n.QueuedAtEdge(dst); got == 0 {
		t.Errorf("QueuedAtEdge(%d) = 0 under fluid saturation; background load invisible", dst)
	}
	// The edge segment is saturated, so its equivalent should read deep.
	if got := n.QueuedAtEdge(dst); got < n.Prof.EcnThreshold {
		t.Errorf("QueuedAtEdge(%d) = %d, want >= ECN threshold %d under saturation",
			dst, got, n.Prof.EcnThreshold)
	}
	// A quiet node reads zero.
	if got := n.QueuedAtEdge(1); got != 0 {
		t.Errorf("QueuedAtEdge(quiet) = %d, want 0", got)
	}
}

func TestHybridDeterministicAcrossWorkers(t *testing.T) {
	// Same hybrid scenario, same domain decomposition, different worker
	// counts: results must be byte-identical (the PR 8 rule extends to
	// fluid background publication because it happens only on the control
	// engine between epochs).
	run := func(domains int) string {
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		n := NewSharded(topo, noJitter(SlingshotProfile()), 1, domains)
		n.SetFidelity(FidelityHybrid)
		var log string
		record := func(tag string) func(sim.Time) {
			return func(at sim.Time) { log += fmt.Sprintf("%s@%d\n", tag, at) }
		}
		// Bulk fluid aggressors plus packet-level victims sharing links.
		for i := 0; i < 4; i++ {
			n.Send(topology.NodeID(i*16), 63, 8<<20, SendOpts{Bulk: true, OnDelivered: record(fmt.Sprintf("bulk%d", i))})
		}
		for i := 0; i < 4; i++ {
			n.Send(topology.NodeID(1+i*16), topology.NodeID(62-i), 64<<10, SendOpts{OnDelivered: record(fmt.Sprintf("vic%d", i))})
		}
		n.RunFor(5 * sim.Millisecond)
		return log
	}
	a, b := run(1), run(4)
	if a != b {
		t.Fatalf("hybrid replay diverged:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("no completions recorded")
	}
}

func TestShardedFlowDeterministicAcrossWorkers(t *testing.T) {
	// Flow fidelity on a sharded fabric: intra-group transfers run on the
	// per-domain scoped engines inside the parallel run phase, cross-group
	// ones on the control-side boundary engine, coupled at epoch barriers.
	// Any worker budget must replay byte-identically (and -race runs of
	// this test sweep the scoped engines' shard-time concurrency).
	run := func(domains int) string {
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		n := NewSharded(topo, noJitter(SlingshotProfile()), 1, domains)
		n.SetFidelity(FidelityFlow)
		var log string
		record := func(tag string) func(sim.Time) {
			return func(at sim.Time) { log += fmt.Sprintf("%s@%d\n", tag, at) }
		}
		for i := 0; i < 4; i++ {
			// Intra-group: node i*16 and i*16+5 sit in group i.
			n.Send(topology.NodeID(i*16), topology.NodeID(i*16+5), 4<<20,
				SendOpts{OnDelivered: record(fmt.Sprintf("loc%d", i))})
			// Cross-group into a common hotspot: boundary flows that share
			// edge segments with the local ones above.
			n.Send(topology.NodeID(2+i*16), 63, 2<<20,
				SendOpts{OnDelivered: record(fmt.Sprintf("x%d", i))})
		}
		n.RunFor(5 * sim.Millisecond)
		if got := n.FlowsCompleted(); got != 8 {
			t.Fatalf("domains=%d: completed %d flows, want 8", domains, got)
		}
		return log
	}
	want := run(1)
	for _, d := range []int{2, 4, 8} {
		if got := run(d); got != want {
			t.Fatalf("flow replay diverged at domains=%d:\n%s\nvs\n%s", d, got, want)
		}
	}
	if want == "" {
		t.Fatal("no completions recorded")
	}
}
