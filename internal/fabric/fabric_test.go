package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func quietNet(t testing.TB, prof Profile) *Network {
	t.Helper()
	topo := topology.MustNew(topology.Config{
		Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
	})
	return New(topo, prof, 1)
}

func noJitter(p Profile) Profile {
	p.SwitchJitter = false
	return p
}

// sendAndWait runs one message to completion and returns its one-way time.
func sendAndWait(t testing.TB, n *Network, src, dst topology.NodeID, bytes int64) sim.Time {
	t.Helper()
	start := n.Now()
	var done sim.Time
	n.Send(src, dst, bytes, SendOpts{OnDelivered: func(at sim.Time) { done = at }})
	n.Eng.RunWhile(func() bool { return done == 0 })
	if done == 0 {
		t.Fatal("message never delivered")
	}
	return done - start
}

func TestQuietLatencySameSwitch(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	// 8 B between two NICs on the same switch: host gap + NIC latencies +
	// one switch traversal; should land in the 1-2.5 us range the paper's
	// Fig. 4 shows (minus MPI software, which lives in internal/mpi).
	lat := sendAndWait(t, n, 0, 1, 8)
	if lat < 1*sim.Microsecond || lat > 3*sim.Microsecond {
		t.Errorf("same-switch 8B latency = %v", lat)
	}
}

func TestQuietLatencyDistanceOrdering(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	// Node 0: switch 0, group 0. Node 5: switch 1, group 0. Node 63:
	// switch 15, group 3.
	same := sendAndWait(t, n, 0, 1, 8)
	oneHop := sendAndWait(t, n, 0, 5, 8)
	cross := sendAndWait(t, n, 0, 63, 8)
	if !(same < oneHop && oneHop < cross) {
		t.Errorf("latency ordering broken: same=%v group=%v cross=%v", same, oneHop, cross)
	}
	// The worst-case allocation penalty at 8 B is bounded (~40% in Fig. 4;
	// our fabric-only numbers are a bit tighter).
	if float64(cross)/float64(same) > 1.9 {
		t.Errorf("distance penalty too large: %v vs %v", cross, same)
	}
	// Each extra switch adds roughly a traversal (350 ns) + cable.
	d1 := oneHop - same
	if d1 < 300*sim.Nanosecond || d1 > 600*sim.Nanosecond {
		t.Errorf("extra intra-group hop adds %v, want ~363ns", d1)
	}
}

func TestQuietLatencyLargeMessagesConverge(t *testing.T) {
	// Fig. 4: from 16 KiB up, the latency difference across distances
	// shrinks to ~10% (serialization dominates). Our fabric-only latency
	// lacks the paper's host-side buffer management costs (their 128 KiB
	// one-way is ~24 us against our ~14 us), so the same absolute distance
	// penalty is a slightly larger fraction here — we accept <= 1.16 and
	// assert the trend against the 8 B spread (~1.4-1.9x).
	n := quietNet(t, noJitter(SlingshotProfile()))
	same := sendAndWait(t, n, 0, 1, 128*1024)
	cross := sendAndWait(t, n, 2, 62, 128*1024)
	if ratio := float64(cross) / float64(same); ratio > 1.16 {
		t.Errorf("128KiB distance ratio = %.3f, want <= 1.16", ratio)
	}
}

func TestStreamingBandwidthCalibration(t *testing.T) {
	// Reproduces the Fig. 4 bandwidth ladder on a quiet system: a stream
	// of messages of each size, bandwidth = bytes/time. Targets (paper):
	// 8 B ~0.08 Gb/s, 1 KiB ~9.5, 128 KiB ~75, 4 MiB ~97.
	cases := []struct {
		size   int64
		lo, hi float64 // Gb/s
	}{
		{8, 0.05, 0.12},
		{1024, 7, 12},
		{128 * 1024, 60, 90},
		{4 * 1024 * 1024, 90, 99},
	}
	for _, c := range cases {
		n := quietNet(t, noJitter(SlingshotProfile()))
		const inflight = 8
		iters := 64
		if c.size >= 1024*1024 {
			iters = 16
		}
		done := 0
		var finish sim.Time
		var post func()
		posted := 0
		post = func() {
			if posted >= iters {
				return
			}
			posted++
			n.Send(0, 1, c.size, SendOpts{OnDelivered: func(at sim.Time) {
				done++
				finish = at
				post()
			}})
		}
		for i := 0; i < inflight && i < iters; i++ {
			post()
		}
		n.Eng.RunWhile(func() bool { return done < iters })
		gbps := float64(c.size*int64(iters)) * 8 / finish.Seconds() / 1e9
		if gbps < c.lo || gbps > c.hi {
			t.Errorf("size %d: %.2f Gb/s, want [%.2f, %.2f]", c.size, gbps, c.lo, c.hi)
		}
	}
}

func TestSelfSend(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	var delivered, acked bool
	n.Send(3, 3, 4096, SendOpts{
		OnDelivered: func(sim.Time) { delivered = true },
		OnAcked:     func(sim.Time) { acked = true },
	})
	n.Eng.Run()
	if !delivered || !acked {
		t.Error("self-send did not complete")
	}
}

func TestZeroByteMessage(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	var done bool
	n.Send(0, 17, 0, SendOpts{OnDelivered: func(sim.Time) { done = true }})
	n.Eng.Run()
	if !done {
		t.Error("zero-byte message not delivered")
	}
}

func TestOnAckedFires(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	var deliveredAt, ackedAt sim.Time
	n.Send(0, 20, 64*1024, SendOpts{
		OnDelivered: func(at sim.Time) { deliveredAt = at },
		OnAcked:     func(at sim.Time) { ackedAt = at },
	})
	n.Eng.Run()
	if deliveredAt == 0 || ackedAt == 0 {
		t.Fatal("callbacks missing")
	}
	if ackedAt <= deliveredAt {
		t.Error("ack completed before delivery")
	}
}

func TestRendezvousSlowerThanEager(t *testing.T) {
	// A message above the rendezvous threshold pays one extra round trip.
	n1 := quietNet(t, noJitter(SlingshotProfile()))
	lat1 := sendAndWait(t, n1, 0, 63, 64*1024)
	n2 := quietNet(t, noJitter(SlingshotProfile()))
	var done sim.Time
	n2.Send(0, 63, 64*1024, SendOpts{NoRendezvous: true, OnDelivered: func(at sim.Time) { done = at }})
	n2.Eng.RunWhile(func() bool { return done == 0 })
	if lat1 <= done {
		t.Errorf("rendezvous (%v) not slower than eager (%v)", lat1, done)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	// Messages between one pair complete in submission order (FIFO per
	// destination queue).
	n := quietNet(t, SlingshotProfile())
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		n.Send(0, 9, 4096, SendOpts{OnDelivered: func(sim.Time) { order = append(order, i) }})
	}
	n.Eng.Run()
	if len(order) != 5 {
		t.Fatalf("delivered %d messages", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestConcurrentDestinationsProgress(t *testing.T) {
	// A NIC sending to many destinations round-robins; all complete.
	n := quietNet(t, SlingshotProfile())
	done := 0
	for d := 1; d < 32; d++ {
		n.Send(0, topology.NodeID(d), 8192, SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != 31 {
		t.Errorf("completed %d/31", done)
	}
}

func TestPacketTapAndCounters(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	taps := 0
	n.Taps.OnPacketDelivered = func(p *Packet, at sim.Time) { taps++ }
	n.Send(0, 5, 10*4096, SendOpts{})
	n.Eng.Run()
	if taps != 10 {
		t.Errorf("tap fired %d times, want 10", taps)
	}
	if n.PacketsDelivered != 10 || n.BytesDelivered != 10*4096 {
		t.Errorf("counters: %d pkts %d bytes", n.PacketsDelivered, n.BytesDelivered)
	}
}

// The headline §II-D behaviour: an incast on Slingshot triggers per-pair
// back-pressure; the same incast on Aries floods buffers.
func TestIncastTriggersSlingshotCC(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	victimDst := topology.NodeID(0)
	done := 0
	senders := 0
	for s := 4; s < 40; s++ {
		senders++
		n.Send(topology.NodeID(s), victimDst, 128*1024, SendOpts{
			OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != senders {
		t.Fatalf("delivered %d/%d", done, senders)
	}
	if n.Signals == 0 {
		t.Error("incast produced no congestion signals")
	}
	// At least one aggressor got paced.
	paced := false
	for s := 4; s < 40; s++ {
		if n.CC(topology.NodeID(s)).PaceGap(victimDst) > 0 ||
			n.CC(topology.NodeID(s)).Window(victimDst) < SlingshotProfile().CC.InitialWindow {
			paced = true
			break
		}
	}
	if !paced {
		t.Error("no aggressor was throttled")
	}
}

func TestIncastAriesNoSignals(t *testing.T) {
	n := quietNet(t, AriesProfile())
	done := 0
	for s := 4; s < 40; s++ {
		n.Send(topology.NodeID(s), 0, 128*1024, SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != 36 {
		t.Fatalf("delivered %d/36", done)
	}
	if n.Signals != 0 {
		t.Error("Aries profile emitted Slingshot signals")
	}
}

// Victim protection: during a heavy incast to one endpoint, a bystander
// flow between unrelated endpoints on the *same switch as the incast
// destination* stays fast on Slingshot and degrades badly on Aries.
func TestVictimProtection(t *testing.T) {
	victimLatency := func(prof Profile) sim.Time {
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		n := New(topo, prof, 7)
		// Aggressors: 30 nodes incast 128 KiB repeatedly into node 0.
		stop := false
		var blast func(src topology.NodeID)
		blast = func(src topology.NodeID) {
			n.Send(src, 0, 128*1024, SendOpts{OnDelivered: func(sim.Time) {
				if !stop {
					blast(src)
				}
			}})
		}
		for s := 16; s < 46; s++ {
			blast(topology.NodeID(s))
		}
		// Let congestion build.
		n.RunFor(400 * sim.Microsecond)
		// Victim: node 17 (a switch shared with an aggressor source) to
		// node 1 (on the incast destination's switch): every victim path
		// ends on the switch whose input buffers the congestion tree
		// exhausts on Aries, so victim packets queue behind the flood.
		var sum sim.Time
		const reps = 20
		for i := 0; i < reps; i++ {
			start := n.Now()
			var done sim.Time
			n.Send(17, 1, 8, SendOpts{OnDelivered: func(at sim.Time) { done = at }})
			n.Eng.RunWhile(func() bool { return done == 0 })
			sum += done - start
		}
		stop = true
		return sum / reps
	}
	slingshot := victimLatency(noJitter(SlingshotProfile()))
	aries := victimLatency(noJitter(AriesProfile()))
	// The victim's isolated latency is ~2 us. Slingshot keeps it close;
	// Aries lets the congestion tree hit it hard.
	if slingshot > 8*sim.Microsecond {
		t.Errorf("slingshot victim latency %v, want < 8us", slingshot)
	}
	if aries < 2*slingshot {
		t.Errorf("aries victim (%v) should be >> slingshot victim (%v)", aries, slingshot)
	}
}

func TestAdaptiveRoutingSpreadsLoad(t *testing.T) {
	// With adaptive routing, a hot minimal path diverts traffic to
	// alternates: total completion of simultaneous cross-group flows
	// should beat minimal-only routing.
	run := func(adaptive bool) sim.Time {
		prof := noJitter(SlingshotProfile())
		prof.AdaptiveRouting = adaptive
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 1,
		})
		n := New(topo, prof, 3)
		done := 0
		total := 0
		// Many flows from group 0 to group 1 stress the single minimal
		// global link per switch pair.
		for s := 0; s < 16; s++ {
			total++
			n.Send(topology.NodeID(s), topology.NodeID(16+s), 256*1024, SendOpts{
				OnDelivered: func(sim.Time) { done++ }})
		}
		n.Eng.RunWhile(func() bool { return done < total })
		return n.Now()
	}
	adaptive := run(true)
	static := run(false)
	if adaptive > static {
		t.Errorf("adaptive (%v) slower than minimal-only (%v)", adaptive, static)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, int64) {
		n := quietNet(t, SlingshotProfile())
		done := 0
		for s := 4; s < 20; s++ {
			n.Send(topology.NodeID(s), 0, 64*1024, SendOpts{OnDelivered: func(sim.Time) { done++ }})
		}
		n.Eng.Run()
		return n.Now(), n.Eng.Steps()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("replay diverged: %v/%d vs %v/%d", t1, s1, t2, s2)
	}
}

func TestNoOverdraftsInNormalOperation(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	done := 0
	for s := 0; s < 32; s++ {
		n.Send(topology.NodeID(s), topology.NodeID((s+7)%64), 32*1024,
			SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if n.Overdrafts != 0 {
		t.Errorf("deadlock watchdog fired %d times in normal traffic", n.Overdrafts)
	}
}

func TestTaperSlowsFabric(t *testing.T) {
	fast := noJitter(SlingshotProfile())
	slow := fast
	slow.Taper = 0.25
	n1 := quietNet(t, fast)
	n2 := quietNet(t, slow)
	// Cross-group transfer exercises fabric links.
	l1 := sendAndWait(t, n1, 0, 63, 1024*1024)
	l2 := sendAndWait(t, n2, 0, 63, 1024*1024)
	if l2 <= l1 {
		t.Errorf("taper had no effect: %v vs %v", l1, l2)
	}
}

func TestSendPanicsOutsideTopology(t *testing.T) {
	n := quietNet(t, SlingshotProfile())
	defer func() {
		if recover() == nil {
			t.Error("Send outside topology did not panic")
		}
	}()
	n.Send(0, topology.NodeID(10000), 8, SendOpts{})
}

// TestRetryAtOrBeforeNowStillWakes guards the NIC pump against the pacing
// edge where a retry deadline is not strictly in the future: the wakeup
// must be scheduled anyway (at now+1), not silently dropped.
func TestRetryAtOrBeforeNowStillWakes(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	nic := n.nics[0]
	m := n.Send(0, 1, 8, SendOpts{})
	// Drop the pending host-ready wakeup, simulating a consumed pacing
	// deadline, and advance past host readiness with no fabric activity
	// left to re-pump the NIC.
	if nic.pumpEv == nil {
		t.Fatal("no pump scheduled after submit")
	}
	n.Eng.Cancel(nic.pumpEv)
	nic.pumpEv = nil
	n.Eng.RunUntil(m.hostReady + sim.Microsecond)

	now := n.Eng.Now()
	nic.scheduleRetry(now, now) // deadline exactly at now: must still wake
	n.Eng.Run()
	if !m.Done() {
		t.Fatal("message stalled: retry deadline at <= now was dropped")
	}
	nic.scheduleRetry(n.Eng.Now(), 0) // zero deadline: nothing to schedule
	if nic.pumpEv != nil && !nic.pumpEv.Cancelled() {
		t.Error("zero retry deadline scheduled a pump")
	}
}

// TestPacketFreeListRecycles pins the packet free-list contract: every
// data/ctrl packet that terminates at a NIC returns to the network's
// free-list, and subsequent injections drain it instead of allocating.
func TestPacketFreeListRecycles(t *testing.T) {
	n := quietNet(t, noJitter(SlingshotProfile()))
	sendAndWait(t, n, 0, 1, 8)
	recycled := len(n.doms[0].pktFree)
	if recycled == 0 {
		t.Fatal("no packets recycled after delivery")
	}
	// Steady state: the same transfer reuses the freed structs and ends
	// with the free-list at the same depth.
	sendAndWait(t, n, 0, 1, 8)
	if got := len(n.doms[0].pktFree); got != recycled {
		t.Errorf("free-list depth = %d after identical transfer, want %d", got, recycled)
	}
}
