package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Conservation and validity properties over randomized traffic.

func TestPropertyAllTrafficDelivered(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		topo := topology.MustNew(topology.Config{
			Groups: 3, SwitchesPerGroup: 3, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		prof := SlingshotProfile()
		prof.SwitchJitter = false
		n := New(topo, prof, seed)
		var sent int64
		done := 0
		total := 0
		for i, r := range raw {
			if i >= 40 {
				break
			}
			src := topology.NodeID(int(r) % topo.Nodes())
			dst := topology.NodeID((int(r) / 7) % topo.Nodes())
			bytes := int64(r%5000) + 1
			if src == dst {
				continue
			}
			sent += bytes
			total++
			n.Send(src, dst, bytes, SendOpts{OnDelivered: func(sim.Time) { done++ }})
		}
		n.Eng.Run()
		return done == total && n.BytesDelivered == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPacketPathsValid(t *testing.T) {
	topo := topology.MustNew(topology.Config{
		Groups: 4, SwitchesPerGroup: 3, NodesPerSwitch: 4, GlobalPerPair: 1,
	})
	prof := SlingshotProfile()
	prof.SwitchJitter = false
	n := New(topo, prof, 77)
	bad := 0
	n.Taps.OnPacketDelivered = func(p *Packet, _ sim.Time) {
		// Every delivered packet carries a valid route from its source
		// switch to its destination switch.
		if !topo.Valid(p.Path) {
			bad++
			return
		}
		if p.Path[0] != topo.SwitchOf(p.Msg.Src) ||
			p.Path[len(p.Path)-1] != topo.SwitchOf(p.Msg.Dst) {
			bad++
		}
	}
	done := 0
	total := 0
	rng := sim.NewRNG(5)
	for i := 0; i < 200; i++ {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		dst := topology.NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		total++
		n.Send(src, dst, int64(rng.Intn(32*1024)+1), SendOpts{
			OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != total {
		t.Fatalf("delivered %d/%d", done, total)
	}
	if bad != 0 {
		t.Errorf("%d packets took invalid paths", bad)
	}
}

func TestPropertyCreditsBalance(t *testing.T) {
	// After the network drains, every switch-facing port's credits return
	// to the full input-buffer size: no credit leaks.
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
	})
	prof := SlingshotProfile()
	prof.SwitchJitter = false
	n := New(topo, prof, 9)
	done, total := 0, 0
	rng := sim.NewRNG(10)
	for i := 0; i < 150; i++ {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		dst := topology.NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		total++
		n.Send(src, dst, int64(rng.Intn(64*1024)+1), SendOpts{
			OnDelivered: func(sim.Time) { done++ }})
	}
	n.Eng.Run()
	if done != total {
		t.Fatalf("delivered %d/%d", done, total)
	}
	check := func(o *outPort, where string) {
		if o.peerSw != nil && o.credits != prof.InputBufferBytes {
			t.Errorf("%s: credits = %d, want %d", where, o.credits, prof.InputBufferBytes)
		}
		if o.sched.Len() != 0 {
			t.Errorf("%s: %d packets stuck in queue", where, o.sched.Len())
		}
		if o.busy {
			t.Errorf("%s: port still busy after drain", where)
		}
	}
	for _, sw := range n.switches {
		for _, ports := range sw.ports {
			for _, o := range ports {
				check(o, "switch port")
			}
		}
		for _, o := range sw.edge {
			check(o, "edge port")
		}
	}
	for _, nic := range n.nics {
		check(nic.inj, "injection port")
	}
}

func TestPropertyMessageCallbackExactlyOnce(t *testing.T) {
	f := func(seed uint64) bool {
		topo := topology.MustNew(topology.Config{
			Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 4, GlobalPerPair: 1,
		})
		prof := SlingshotProfile()
		prof.SwitchJitter = false
		n := New(topo, prof, seed)
		counts := make([]int, 20)
		acks := make([]int, 20)
		rng := sim.NewRNG(seed + 1)
		for i := 0; i < 20; i++ {
			i := i
			src := topology.NodeID(rng.Intn(topo.Nodes()))
			dst := topology.NodeID(rng.Intn(topo.Nodes()))
			n.Send(src, dst, int64(rng.Intn(100*1024)), SendOpts{
				OnDelivered: func(sim.Time) { counts[i]++ },
				OnAcked:     func(sim.Time) { acks[i]++ },
			})
		}
		n.Eng.Run()
		for i := range counts {
			if counts[i] != 1 || acks[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
