package fabric

import (
	"repro/internal/congestion"
	"repro/internal/sim"
	"repro/internal/topology"
)

// NIC is one endpoint adapter. It owns per-destination send queues (RDMA
// queue pairs are independent), the endpoint congestion controller, and the
// injection port into its switch.
type NIC struct {
	net *Network
	// dom is the NIC's owning domain (its switch's domain); all NIC-side
	// event scheduling and clock reads go through it.
	dom *domain
	ID  topology.NodeID
	cc  congestion.Controller
	inj *outPort

	// Per-destination send state, slice-indexed by destination node ID so
	// the injection loop does zero map lookups. Allocated lazily on the
	// first submit: NICs that only ever receive pay nothing.
	queues [][]*Message
	active []bool            // active[dst]: dst currently in order
	order  []topology.NodeID // active destinations, round-robin
	rr     int
	// nextDataAt gates the start of the next rendezvous transfer per
	// destination (sender-side completion/descriptor handling between
	// bulk messages; see rendezvousMsgGap).
	nextDataAt []sim.Time

	hostFreeAt sim.Time
	pumpEv     *sim.Event

	// Stats.
	MsgsSent      int64
	MsgsDelivered int64
}

// injDepth keeps the injection queue shallow so congestion-control pacing
// and round-robin fairness act at packet granularity.
const injDepth = 3

// selfLoopback is the latency of a self-send (shared-memory copy).
const selfLoopback = 500 * sim.Nanosecond

// Rendezvous protocol costs, calibrated against Fig. 4: a 128 KiB message
// takes ~24 us one-way (dominated by receiver-side buffer setup, which
// pipelines away under load) while a stream of them sustains ~75 Gb/s
// (set by a small non-overlappable per-message gap at the sender).
const (
	// rendezvousSetup delays the CTS at the receiver (registration/DMA
	// setup). It overlaps with other messages' data, so it does not limit
	// streaming bandwidth.
	rendezvousSetup = 7 * sim.Microsecond
	// rendezvousMsgGap is the sender-side pause between consecutive bulk
	// messages to the same destination (completion handling); it sets the
	// 128 KiB streaming plateau at ~75 Gb/s and amortizes away at 4 MiB.
	rendezvousMsgGap = 2800 * sim.Nanosecond
	// rtsScanDepth is how many queued messages per destination may have
	// their RTS sent ahead of time, letting handshakes pipeline.
	rtsScanDepth = 4
)

// Event handlers (closure-free dispatch): each handler type is a pointer
// alias of the NIC (or Message) that owns the event, so scheduling stores
// just the object pointer in the event's handler word and allocates
// nothing. Per-event context rides the event's Arg/Data words.

// nicPump re-pumps the injection queues (pacing/host-gap wakeups).
type nicPump NIC

//simlint:hotpath
func (h *nicPump) OnEvent(_ *sim.Engine, _ *sim.Event) {
	n := (*NIC)(h)
	n.pumpEv = nil
	n.pump()
}

// msgSelfDeliver completes a loopback self-send.
type msgSelfDeliver Message

//simlint:hotpath
func (h *msgSelfDeliver) OnEvent(e *sim.Engine, _ *sim.Event) {
	m := (*Message)(h)
	at := e.Now()
	m.DeliveredAt = at
	m.delivered = m.numPackets
	m.acked = m.numPackets
	if m.OnDelivered != nil {
		m.OnDelivered(at)
	}
	if m.OnAcked != nil {
		m.OnAcked(at)
	}
}

// nicGrantCTS (source-side) completes the rendezvous handshake for the
// message in Data: the receive buffer is ready, so this source may
// stream. The receiver schedules it on the source NIC — handshake state
// (dataReady) and the pump it wakes are both source-side.
type nicGrantCTS NIC

//simlint:hotpath
func (h *nicGrantCTS) OnEvent(_ *sim.Engine, ev *sim.Event) {
	n := (*NIC)(h)
	m := ev.Data.(*Message)
	m.dataReady = true
	n.pump()
}

// The end-to-end ack's event Arg packs its sample: the RTT above
// ackRTTShift (sharded mode only; classic reads the message's ackRTT
// word, see deliver), the acked buffer bytes in the middle field, the
// ECN mark in bit 0. Buffer bytes top out at MaxPayload+RoCEHeaders
// (~4.2 KB), far inside the 20-bit field; the RTT field holds ~4.4
// simulated seconds.
const (
	ackRTTShift  = 21
	ackBytesMask = (1 << 20) - 1
)

// nicAck (source-side) lands one end-to-end ack for the message in Data;
// Arg carries the packed sample (see ackRTTShift).
type nicAck NIC

//simlint:hotpath
func (h *nicAck) OnEvent(e *sim.Engine, ev *sim.Event) {
	src := (*NIC)(h)
	m := ev.Data.(*Message)
	now := e.Now()
	rtt := sim.Time(ev.Arg >> ackRTTShift)
	if src.dom.sh == nil {
		rtt = m.ackRTT
	}
	src.cc.OnAck(m.Dst, (ev.Arg>>1)&ackBytesMask, ev.Arg&1 != 0, rtt, now)
	m.acked++
	if m.acked >= m.numPackets && m.OnAcked != nil {
		if src.dom.sh != nil {
			src.dom.deferCall(now, m.OnAcked)
		} else {
			m.OnAcked(now)
		}
	}
	src.pump()
}

// nicRetransmit re-injects the lost packet in Data (end-to-end retry).
type nicRetransmit NIC

//simlint:hotpath
func (h *nicRetransmit) OnEvent(_ *sim.Engine, ev *sim.Event) {
	(*NIC)(h).retransmit(ev.Data.(*Packet))
}

// nicDeliver terminates the arriving packet in Data at this NIC.
type nicDeliver NIC

//simlint:hotpath
func (h *nicDeliver) OnEvent(_ *sim.Engine, ev *sim.Event) {
	(*NIC)(h).deliver(ev.Data.(*Packet))
}

// nicSignal lands a Slingshot endpoint-congestion notification at this
// (source) NIC for the message in Data; Arg carries the egress-queue depth
// observed at the edge port, from which severity is derived exactly as the
// emitting switch would have.
type nicSignal NIC

//simlint:hotpath
func (h *nicSignal) OnEvent(e *sim.Engine, ev *sim.Event) {
	n := (*NIC)(h)
	m := ev.Data.(*Message)
	sev := float64(ev.Arg) / float64(4*n.net.Prof.EndpointThreshold)
	if sev > 1 {
		sev = 1
	}
	n.cc.OnSignal(m.Dst, sev, e.Now())
	n.pump()
}

// submit queues a message for transmission. Called via Network.Send.
func (n *NIC) submit(m *Message) {
	now := n.net.Eng.Now()
	m.SubmittedAt = now

	if m.Dst == n.ID {
		// Self-send: loopback, no fabric involvement.
		n.net.Eng.After(n.net.Prof.HostGap+selfLoopback, (*msgSelfDeliver)(m), 0, nil)
		return
	}

	// The host/driver spends HostGap per message; messages submitted
	// back-to-back serialize on it (this is the ~1.2M msg/s small-message
	// rate of Fig. 4).
	if n.hostFreeAt < now {
		n.hostFreeAt = now
	}
	n.hostFreeAt += n.net.Prof.HostGap
	m.hostReady = n.hostFreeAt
	m.dataReady = !m.Rendezvous

	if n.queues == nil {
		nodes := n.net.Topo.Nodes()
		n.queues = make([][]*Message, nodes)
		n.active = make([]bool, nodes)
		n.nextDataAt = make([]sim.Time, nodes)
	}
	if !n.active[m.Dst] {
		n.active[m.Dst] = true
		n.order = append(n.order, m.Dst)
	}
	n.queues[m.Dst] = append(n.queues[m.Dst], m)
	n.MsgsSent++
	n.pump()
}

// pump moves packets from the per-destination message queues into the
// injection port, subject to host readiness, the rendezvous handshake and
// the congestion-control window/pacing. The clock is the domain's: when a
// control-side submit pumps a sharded NIC between epochs, injection
// quantizes to the current epoch boundary — identically for any worker
// count.
func (n *NIC) pump() {
	now := n.dom.eng.Now()
	var earliest sim.Time
	for n.inj.sched.Len() < injDepth {
		p, retry := n.nextPacket(now)
		if p == nil {
			if retry > 0 && (earliest == 0 || retry < earliest) {
				earliest = retry
			}
			break
		}
		n.inj.sched.Enqueue(p.Class, int(bufBytes(p)), p)
		n.inj.pump()
	}
	n.scheduleRetry(now, earliest)
}

// scheduleRetry schedules the next pump for a retry deadline returned by
// nextPacket (zero means nothing to retry). A deadline at or before now —
// a pacing edge — must still get a wakeup (at now+1); silently dropping it
// would stall the queue until some unrelated event happened to re-pump.
func (n *NIC) scheduleRetry(now, earliest sim.Time) {
	if earliest <= 0 {
		return
	}
	if earliest <= now {
		earliest = now + 1
	}
	n.schedulePump(earliest)
}

func (n *NIC) schedulePump(at sim.Time) {
	// Invariant: pumpEv is nil or a live queued event (the callback nils
	// it first thing; the cancel below reassigns immediately) — required
	// now that the engine recycles Event structs.
	if n.pumpEv != nil {
		if n.pumpEv.At <= at {
			return
		}
		n.dom.eng.Cancel(n.pumpEv)
	}
	n.pumpEv = n.dom.eng.Schedule(at, (*nicPump)(n), 0, nil)
}

// nextPacket selects the next injectable packet, round-robin over active
// destinations. It returns nil with an optional retry time when nothing is
// currently injectable.
func (n *NIC) nextPacket(now sim.Time) (*Packet, sim.Time) {
	var earliest sim.Time
	for k := 0; k < len(n.order); k++ {
		idx := (n.rr + k) % len(n.order)
		dst := n.order[idx]
		q := n.queues[dst]
		if len(q) == 0 {
			continue
		}
		// RTSes of queued rendezvous messages go out ahead of time so the
		// handshakes pipeline behind the current transfer's data.
		for j := 0; j < len(q) && j < rtsScanDepth; j++ {
			mj := q[j]
			if mj.Rendezvous && !mj.rtsSent && now >= mj.hostReady {
				mj.rtsSent = true
				n.rr = (idx + 1) % len(n.order)
				p := n.dom.allocPacket()
				p.Msg, p.Class, p.ctrl, p.sentAt = mj, mj.Class, true, now
				return p, 0
			}
		}
		m := q[0]
		if now < m.hostReady {
			if earliest == 0 || m.hostReady < earliest {
				earliest = m.hostReady
			}
			continue
		}
		if m.Rendezvous {
			if !m.dataReady {
				continue // waiting for CTS; its arrival re-pumps
			}
			// Sender-side gap between consecutive bulk transfers.
			if m.nextSeq == 0 {
				if gate := n.nextDataAt[dst]; now < gate {
					if earliest == 0 || gate < earliest {
						earliest = gate
					}
					continue
				}
			}
		}
		// Data packet, subject to the congestion window.
		size := int64(n.net.Prof.cell())
		remaining := m.Bytes - int64(m.nextSeq)*size
		if remaining < size {
			size = remaining
		}
		if size < 0 {
			size = 0
		}
		ok, retryAt := n.cc.CanSend(dst, size, now)
		if !ok {
			if retryAt > 0 && (earliest == 0 || retryAt < earliest) {
				earliest = retryAt
			}
			continue
		}
		n.cc.OnSend(dst, size, now)
		p := n.dom.allocPacket()
		p.Msg, p.Seq, p.Payload, p.Class, p.sentAt = m, m.nextSeq, int(size), m.Class, now
		m.nextSeq++
		if m.nextSeq >= m.numPackets {
			if m.Rendezvous {
				n.nextDataAt[dst] = now + rendezvousMsgGap
			}
			// Fully injected: drop from the queue (completion is tracked
			// by the message itself).
			n.queues[dst] = q[1:]
			if len(n.queues[dst]) == 0 {
				n.queues[dst] = nil
				n.active[dst] = false
				n.removeOrder(dst)
				// Note: rr now indexes a shifted slice; harmless for
				// round-robin fairness.
				return p, 0
			}
		}
		n.rr = (idx + 1) % max(1, len(n.order))
		return p, 0
	}
	return nil, earliest
}

func (n *NIC) removeOrder(dst topology.NodeID) {
	for i, d := range n.order {
		if d == dst {
			n.order = append(n.order[:i], n.order[i+1:]...)
			return
		}
	}
}

// retransmit re-injects a packet whose frame was lost in the fabric (the
// end-to-end retry of §II-F). The packet restarts from the source switch
// with a fresh route and a fresh RTT stamp — Karn's rule: the original
// flight's retry timeout must not read as path congestion, so the ack's
// RTT sample measures the retransmission's own flight only.
func (n *NIC) retransmit(p *Packet) {
	p.Path = nil
	p.hop = 0
	p.inPort = nil
	p.ecnMarked = false
	p.sentAt = n.dom.eng.Now()
	n.inj.sched.Enqueue(p.Class, int(bufBytes(p)), p)
	n.inj.pump()
}

// deliver receives a packet off the edge link. The packet terminates
// here: it is recycled onto the domain's free-list once the taps and ack
// scheduling have run, so taps must not retain it.
func (n *NIC) deliver(p *Packet) {
	now := n.dom.eng.Now()
	m := p.Msg
	if p.ctrl {
		// RTS arrived: set up the receive buffer (rendezvousSetup), then
		// grant the transfer. The CTS rides the ack path back to the
		// source NIC (handshake state and the pump are source-side).
		src := n.net.nics[m.Src]
		n.dom.post(src.dom, now+rendezvousSetup+n.net.revLatency(p.Path), (*nicGrantCTS)(src), 0, m)
		n.dom.freePacket(p)
		return
	}
	if !m.markDelivered(p.Seq) {
		// Duplicate delivery (a late original plus its end-to-end
		// retransmit): the first copy already counted, fired the taps and
		// acked; a second would inflate the stats and double-fire
		// OnDelivered/OnAcked. Not recycled: the first copy may be the
		// same recycled struct, and freeing twice would corrupt the list.
		return
	}
	m.delivered++
	n.dom.ctr.PacketsDelivered++
	n.dom.ctr.BytesDelivered += int64(p.Payload)
	if tap := n.net.Taps.OnPacketDelivered; tap != nil {
		// Sharded, taps are measurement/control code: they run at the
		// epoch barrier, on a copy (the packet recycles right below), in
		// canonical order.
		if n.dom.sh != nil {
			n.dom.deferTap(now, p)
		} else {
			tap(p, now)
		}
	}
	if m.delivered >= m.numPackets {
		m.DeliveredAt = now
		n.MsgsDelivered++
		if m.OnDelivered != nil {
			if n.dom.sh != nil {
				n.dom.deferCall(now, m.OnDelivered)
			} else {
				m.OnDelivered(now)
			}
		}
	}
	// End-to-end acknowledgement back to the source (§II-A: End-to-End
	// Acks crossbar; they track outstanding packets between every pair of
	// endpoints). The ack's size and ECN mark pack into the event's Arg
	// word because the packet struct is recycled right below. The RTT
	// sample — injection to ack arrival, the signal delay-based CC feeds
	// on — rides the message in classic mode (overlapping deliveries
	// overwrite it with a fresher sample, which is fine for a rate
	// controller and is what the goldens pin); sharded, the ack may cross
	// domains mid-epoch, so the per-packet sample packs into Arg instead
	// of racing through the message.
	src := n.net.nics[m.Src]
	arg := bufBytes(p) << 1
	if p.ecnMarked {
		arg |= 1
	}
	rev := n.net.revLatency(p.Path)
	if n.dom.sh == nil {
		m.ackRTT = now + rev - p.sentAt
	} else {
		arg |= int64(now+rev-p.sentAt) << ackRTTShift
	}
	n.dom.post(src.dom, now+rev, (*nicAck)(src), arg, m)
	n.dom.freePacket(p)
}
