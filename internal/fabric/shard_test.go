package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// shardNet builds a sharded 4-group Dragonfly (the quietNet fixture's
// topology) with the given worker budget.
func shardNet(t testing.TB, prof Profile, workers int) *Network {
	t.Helper()
	topo := topology.MustNew(topology.Config{
		Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
	})
	return NewSharded(topo, prof, 1, workers)
}

// shardWorkload drives a mixed cross-domain workload (eager, rendezvous,
// self-sends, an incast) and returns its observable outcome: completion
// times per message plus the folded counters.
type shardOutcome struct {
	delivered []sim.Time
	acked     []sim.Time
	ctr       Counters
	end       sim.Time
}

func runShardWorkload(t testing.TB, n *Network) shardOutcome {
	t.Helper()
	nodes := n.Topo.Nodes()
	const msgs = 48
	out := shardOutcome{
		delivered: make([]sim.Time, msgs),
		acked:     make([]sim.Time, msgs),
	}
	for i := 0; i < msgs; i++ {
		i := i
		src := topology.NodeID((i * 7) % nodes)
		dst := topology.NodeID((i*13 + 5) % nodes)
		bytes := int64(8 << (uint(i) % 14)) // 8 B .. 64 KiB: eager through rendezvous
		if i%11 == 0 {
			dst = src // self-send: control-engine loopback
		}
		if i%5 == 0 {
			dst = topology.NodeID(nodes - 1 - int(src)%4) // mild incast
		}
		at := sim.Time(i%7) * 300 * sim.Nanosecond
		n.Eng.ScheduleFunc(at, func() {
			n.Send(src, dst, bytes, SendOpts{
				OnDelivered: func(t sim.Time) { out.delivered[i] = t },
				OnAcked:     func(t sim.Time) { out.acked[i] = t },
			})
		})
	}
	n.Run()
	out.ctr = n.Counters
	out.end = n.Now()
	return out
}

// TestShardedDeterminismAcrossWorkers pins the tentpole guarantee: the
// natural-unit decomposition is fixed by the topology, so one worker and
// many produce identical results — completion times, counters, clocks.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	base := runShardWorkload(t, shardNet(t, noJitter(SlingshotProfile()), 1))
	for _, workers := range []int{2, 4, 8} {
		got := runShardWorkload(t, shardNet(t, noJitter(SlingshotProfile()), workers))
		if got.ctr != base.ctr {
			t.Fatalf("workers=%d counters diverge: %+v vs %+v", workers, got.ctr, base.ctr)
		}
		if got.end != base.end {
			t.Fatalf("workers=%d end clock %v, want %v", workers, got.end, base.end)
		}
		for i := range base.delivered {
			if got.delivered[i] != base.delivered[i] || got.acked[i] != base.acked[i] {
				t.Fatalf("workers=%d msg %d completion (%v,%v), want (%v,%v)",
					workers, i, got.delivered[i], got.acked[i], base.delivered[i], base.acked[i])
			}
		}
	}
	for i, at := range base.delivered {
		if at == 0 || base.acked[i] == 0 {
			t.Fatalf("msg %d never completed (delivered=%v acked=%v)", i, at, base.acked[i])
		}
	}
	if base.ctr.PacketsDelivered == 0 {
		t.Fatal("counters never folded from the domains")
	}
}

// TestShardedDomainLayout checks the build puts every component in its
// partition's domain and classic mode collapses to exactly one.
func TestShardedDomainLayout(t *testing.T) {
	n := shardNet(t, noJitter(SlingshotProfile()), 4)
	if n.Domains() != 4 {
		t.Fatalf("Domains() = %d, want the 4 Dragonfly groups", n.Domains())
	}
	if n.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", n.Workers())
	}
	part := n.Topo.Partition(0)
	for _, s := range n.switches {
		if s.dom.id != part.Of[s.ID] {
			t.Fatalf("switch %d in domain %d, want %d", s.ID, s.dom.id, part.Of[s.ID])
		}
		for _, ports := range s.ports {
			for _, o := range ports {
				if o.dom != s.dom {
					t.Fatalf("switch %d port towards %d in wrong domain", s.ID, o.peerSw.ID)
				}
			}
		}
	}
	for _, nic := range n.nics {
		want := n.switches[n.Topo.SwitchOf(nic.ID)].dom
		if nic.dom != want || nic.inj.dom != want {
			t.Fatalf("nic %d domain mismatch", nic.ID)
		}
	}

	c := quietNet(t, noJitter(SlingshotProfile()))
	if c.Domains() != 1 || c.Workers() != 1 || c.par != nil {
		t.Fatalf("classic network: domains=%d workers=%d par=%v", c.Domains(), c.Workers(), c.par)
	}
	if c.doms[0].eng != c.Eng {
		t.Fatal("classic domain must share the network engine")
	}
}

// TestShardedDeferredCallbackClock: completion callbacks run at the epoch
// barrier, but on a control engine advanced to the callback's own
// timestamp — workload code reads the correct Now().
func TestShardedDeferredCallbackClock(t *testing.T) {
	n := shardNet(t, noJitter(SlingshotProfile()), 4)
	var deliveredAt, sawNow sim.Time
	n.Send(0, 63, 4096, SendOpts{OnDelivered: func(at sim.Time) {
		deliveredAt, sawNow = at, n.Now()
	}})
	n.Run()
	if deliveredAt == 0 {
		t.Fatal("cross-domain message never delivered")
	}
	if sawNow != deliveredAt {
		t.Fatalf("callback saw Now()=%v, want its own timestamp %v", sawNow, deliveredAt)
	}
}

// TestShardedRunUntilSettlesClocks: a bounded sharded run leaves every
// clock at the deadline, like Engine.RunUntil.
func TestShardedRunUntilSettlesClocks(t *testing.T) {
	n := shardNet(t, noJitter(SlingshotProfile()), 2)
	n.Send(0, 63, 4096, SendOpts{})
	const deadline = 100 * sim.Microsecond
	n.RunUntil(deadline)
	if n.Now() != deadline {
		t.Fatalf("control clock %v, want %v", n.Now(), deadline)
	}
	for i, d := range n.doms {
		if d.eng.Now() != deadline {
			t.Fatalf("domain %d clock %v, want %v", i, d.eng.Now(), deadline)
		}
	}
}

// TestShardedFreeListMigration: end-to-end retries carry lost packets
// back to their source domain, so packet structs migrate between domain
// free-lists — and every idle entry still drops its references.
func TestShardedFreeListMigration(t *testing.T) {
	prof := noJitter(SlingshotProfile())
	prof.FrameBER = 0.02
	prof.LLR = false
	prof.RetryTimeout = 20 * sim.Microsecond
	n := shardNet(t, prof, 4)
	done := 0
	const msgs = 50
	for i := 0; i < msgs; i++ {
		n.Send(topology.NodeID(i%8), topology.NodeID(56+i%8), 64*1024,
			SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.Run()
	if done != msgs {
		t.Fatalf("delivered %d/%d despite end-to-end retry", done, msgs)
	}
	if n.FramesLost == 0 || n.E2ERetries < n.FramesLost {
		t.Fatalf("expected losses + retries: lost=%d e2e=%d", n.FramesLost, n.E2ERetries)
	}
	free := 0
	for _, d := range n.doms {
		free += len(d.pktFree)
		for i, p := range d.pktFree {
			if p.Msg != nil || p.Path != nil || p.inPort != nil {
				t.Fatalf("domain %d free-list entry %d retains references: %+v", d.id, i, p)
			}
		}
	}
	if free == 0 {
		t.Fatal("no packets recycled anywhere")
	}
}

// TestShardedSignalsCrossDomain: a cross-group incast raises Slingshot
// endpoint signals whose notifications cross domains back to the sources;
// the per-domain counters fold into the embedded block.
func TestShardedSignalsCrossDomain(t *testing.T) {
	n := shardNet(t, noJitter(SlingshotProfile()), 4)
	done := 0
	const senders = 12
	for i := 0; i < senders; i++ {
		src := topology.NodeID(i + i/4*12) // spread over groups 0-2
		n.Send(src, 63, 256*1024, SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	n.RunWhile(func() bool { return done < senders })
	if done != senders {
		t.Fatalf("delivered %d/%d", done, senders)
	}
	if n.Signals == 0 {
		t.Error("cross-domain incast raised no endpoint signals")
	}
}
