package fabric

import (
	"fmt"

	"repro/internal/congestion"
	"repro/internal/ethernet"
	"repro/internal/flow"
	"repro/internal/phy"
	"repro/internal/qos"
	"repro/internal/rosetta"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/topology"
)

// Taps are optional measurement hooks.
type Taps struct {
	// OnPacketDelivered fires for every data packet that reaches its
	// destination NIC.
	OnPacketDelivered func(p *Packet, at sim.Time)
}

// Network is a running simulated system: topology + switches + NICs under
// one discrete-event engine. It is built from the backend-neutral
// topology.Topology contract, so the same switch/NIC/QoS machinery runs a
// Dragonfly, a fat-tree, or a HyperX unchanged.
type Network struct {
	Topo topology.Topology
	Eng  *sim.Engine
	Prof Profile
	QoS  *qos.Config
	Taps Taps

	rng      *sim.RNG
	switches []*Switch
	nics     []*NIC
	msgID    int64
	// policy is the source-switch routing policy every injected packet's
	// path comes from (Profile.Routing, defaulting to SlingshotAdaptive or
	// MinimalOnly per Profile.AdaptiveRouting).
	policy routing.Policy
	// wantSignals/wantECN cache the congestion algorithm's fabric-side
	// hooks (congestion.Hooks), so the per-packet enqueue path reads two
	// bools instead of dispatching on the controller.
	wantSignals, wantECN bool
	// minPaths lazily caches Topo.MinimalPaths(src, dst, 4), row by
	// source switch: minPaths[src][dst]. Rows allocate on the first packet
	// routed from that source, so a large fabric pays O(sources actually
	// routing) rather than an O(Switches²) spike on the first packet.
	// Minimal-path enumeration is deterministic and RNG-free, so caching
	// cannot perturb replay; it removes the per-packet path-construction
	// allocations from adaptive routing. The cached paths are shared (they
	// are handed to every routing decision) and must never be mutated.
	// The outer slice is sized at build; rows are faulted only by the
	// domain owning the source switch, so sharded fabrics never race on it.
	minPaths [][][]topology.Path
	// selfPaths[s] is the cached single-hop path {s} returned for
	// intra-switch routing decisions; without it the src == dst shortcut
	// in route allocated a one-element Path per packet — the dominant
	// allocator in congestion-grid cells with co-located ranks. Read-only
	// after build, like the minPaths entries.
	selfPaths []topology.Path

	// Sharding state (see domain.go). doms always has at least the one
	// classic domain; par is nil in classic mode.
	doms []*domain
	par  *par.Coordinator
	// snap/snapOff are the epoch-start remote-load snapshot: one slot per
	// (switch, dense neighbor index), refreshed by each switch's owning
	// domain at the epoch drain barrier.
	snap    []int64
	snapOff []int32
	defrBuf defrMerge

	// part is the topology's natural partition (initDomains); zero-valued
	// in classic mode.
	part topology.Partition

	// Fidelity state (see fidelity.go). flowEng is nil at the packet
	// default; the background tables mirror the snap/snapOff layout and
	// are written only at epoch barriers (control engine). In sharded
	// fluid mode flowEng is the control-side boundary engine and flowSet
	// carries one scoped engine per domain (fluid_sharded.go).
	fid        Fidelity
	flowEng    *flow.Engine
	flowSet    *flow.ShardSet
	flowTickAt sim.Time
	flowBG     []int64
	flowBGEdge []int64
	bgOff      []int32
	flowsStarted, flowsCompleted int64
	// msgFree recycles opted-in (SendOpts.Recycle) Message structs so
	// steady-state fluid Send/complete churn is allocation-free.
	msgFree []*Message

	// Stats. The embedded Counters promote, so n.PacketsDelivered etc.
	// read as before; sharded runs fold per-domain blocks in here at each
	// epoch barrier.
	Counters
}

// New builds a classic (single-threaded) network over the given topology
// with the given profile. seed makes the run reproducible.
func New(topo topology.Topology, prof Profile, seed uint64) *Network {
	return NewSharded(topo, prof, seed, 0)
}

// NewSharded builds a network split into the topology's natural domains
// (Dragonfly groups, fat-tree pods, HyperX dim-0 rows) and driven by
// conservative lock-step epochs with up to `domains` parallel workers.
// domains <= 0 builds the classic single-threaded network (the exact
// pre-sharding event flow). The decomposition is the topology's — never
// the worker count's — so every sharded run of one configuration is
// byte-identical for any domains >= 1, including 1.
func NewSharded(topo topology.Topology, prof Profile, seed uint64, domains int) *Network {
	qcfg := prof.QoS
	if qcfg == nil {
		qcfg = qos.DefaultConfig()
	}
	if err := qcfg.Validate(); err != nil {
		panic(fmt.Sprintf("fabric: bad QoS config: %v", err))
	}
	n := &Network{
		Topo:   topo,
		Eng:    sim.NewEngine(),
		Prof:   prof,
		QoS:    qcfg,
		rng:    sim.NewRNG(seed),
		policy: prof.routingBuilder()(),
	}
	n.build()
	if domains <= 0 {
		n.initClassic()
	} else {
		n.initDomains(domains)
	}
	return n
}

// NewFromProfile builds a network over the profile's own topology
// constructor (Profile.Topo). It panics when the profile carries none or
// the build fails — profiles with a Topo are validated configurations.
func NewFromProfile(prof Profile, seed uint64) *Network {
	if prof.Topo == nil {
		panic(fmt.Sprintf("fabric: profile %q has no topology constructor", prof.Name))
	}
	return New(topology.MustBuild(prof.Topo), prof, seed)
}

func (n *Network) build() {
	topo := n.Topo
	prof := &n.Prof
	// The outer cache spine is sized here so sharded domains fault rows
	// concurrently without ever touching a shared lazy allocation.
	n.minPaths = make([][][]topology.Path, topo.Switches())
	selfIDs := make([]topology.SwitchID, topo.Switches())
	n.selfPaths = make([]topology.Path, topo.Switches())
	for i := range selfIDs {
		selfIDs[i] = topology.SwitchID(i)
		n.selfPaths[i] = selfIDs[i : i+1 : i+1]
	}
	n.switches = make([]*Switch, topo.Switches())
	for i := range n.switches {
		rng := n.rng.Split()
		first, count := topo.SwitchNodes(topology.SwitchID(i))
		n.switches[i] = &Switch{
			net:       n,
			ID:        topology.SwitchID(i),
			rng:       rng,
			lat:       rosetta.NewLatencyModel(rng.Split()),
			ports:     make([][]*outPort, topo.NeighborCount(topology.SwitchID(i))),
			edge:      make([]*outPort, count),
			firstNode: int(first),
		}
	}
	newCC := prof.CCBuilder
	if newCC == nil {
		newCC = congestion.BuilderFor(prof.CC)
	}
	n.nics = make([]*NIC, topo.Nodes())
	for i := range n.nics {
		n.nics[i] = &NIC{
			net: n,
			ID:  topology.NodeID(i),
			cc:  newCC(),
		}
	}
	if len(n.nics) > 0 {
		// Every NIC runs the same algorithm; cache its fabric-side hooks
		// for the per-packet enqueue path.
		h := n.nics[0].cc.Hooks()
		n.wantSignals, n.wantECN = h.EndpointSignals, h.ECNMarks
	}
	// Controllers that calibrate their setpoint against the topology get a
	// quiet-RTT oracle: without it the delay-based scheme reads the base
	// RTT of a large fabric (cross-spine fat-tree paths, long Dragonfly
	// valiant detours) as standing queue and over-throttles.
	for _, nic := range n.nics {
		if cal, ok := nic.cc.(congestion.TargetCalibrator); ok {
			src, win := nic.ID, nic.cc.Params().InitialWindow
			cal.CalibrateTarget(func(dst topology.NodeID) sim.Time {
				return n.quietRTT(src, dst, win)
			})
		}
	}

	newSched := func() *qos.PortScheduler {
		return qos.NewPortScheduler(n.QoS, prof.fabricBits())
	}
	newPhy := func() (*phy.Link, *sim.RNG) {
		var rng *sim.RNG
		if prof.FrameBER > 0 {
			rng = n.rng.Split()
		}
		return phy.NewLink(nil, 0, prof.LLR), rng
	}

	for _, l := range topo.Links() {
		switch l.Kind {
		case topology.EdgeLink:
			sw := n.switches[l.A]
			nic := n.nics[l.Node]
			// Switch -> NIC.
			down := &outPort{
				net: n, sched: newSched(), bits: prof.EdgeBits,
				prop: phy.EdgeDelay(), mode: prof.EdgeMode,
				owner: sw, peerNIC: nic, edge: true,
			}
			down.phy, down.rng = newPhy()
			sw.edge[int(l.Node)-sw.firstNode] = down
			// NIC -> switch (the injection port), credited against the
			// switch's input buffer.
			up := &outPort{
				net: n, sched: newSched(), bits: prof.EdgeBits,
				prop: phy.EdgeDelay(), mode: prof.EdgeMode,
				ownerNIC: nic, peerSw: sw, credits: prof.InputBufferBytes,
			}
			up.phy, up.rng = newPhy()
			nic.inj = up
		case topology.LocalLink, topology.GlobalLink:
			a, b := n.switches[l.A], n.switches[l.B]
			prop := phy.CopperDelay()
			global := false
			if l.Kind == topology.GlobalLink {
				prop = phy.OpticalDelay()
				global = true
			}
			ab := &outPort{
				net: n, sched: newSched(), bits: prof.fabricBits(),
				prop: prop, mode: prof.FabricMode,
				owner: a, peerSw: b, credits: prof.InputBufferBytes, global: global,
			}
			ab.phy, ab.rng = newPhy()
			ba := &outPort{
				net: n, sched: newSched(), bits: prof.fabricBits(),
				prop: prop, mode: prof.FabricMode,
				owner: b, peerSw: a, credits: prof.InputBufferBytes, global: global,
			}
			ba.phy, ba.rng = newPhy()
			ia := topo.NeighborIndex(l.A, l.B)
			ib := topo.NeighborIndex(l.B, l.A)
			a.ports[ia] = append(a.ports[ia], ab)
			b.ports[ib] = append(b.ports[ib], ba)
		}
	}
}

// SendOpts configures one message.
type SendOpts struct {
	// Class is the traffic-class index into the QoS config.
	Class int
	// NoRendezvous forces the eager protocol regardless of size.
	NoRendezvous bool
	// Tag is an arbitrary caller label (e.g. job ID) readable from taps.
	Tag int64
	// Bulk marks a steady background transfer (aggressor stream,
	// alltoall shuffle) as a candidate for the fluid fast path when the
	// network runs at FidelityHybrid. Packet-fidelity networks ignore it.
	Bulk bool
	// OnDelivered fires at the destination when the last byte lands.
	OnDelivered func(at sim.Time)
	// OnAcked fires at the source when the last end-to-end ack returns.
	OnAcked func(at sim.Time)
	// Recycle promises the caller will not retain the returned *Message
	// past its final callback: the fabric may then return the struct to
	// an internal free-list, making steady-state Send churn
	// allocation-free. Honoured on the control-side fluid path (classic
	// flow/hybrid and sharded boundary flows); other paths ignore it.
	Recycle bool
}

// Send submits a message transfer of `bytes` from src to dst. It returns
// the message handle for inspection; completion is signalled via the
// callbacks in opts.
func (n *Network) Send(src, dst topology.NodeID, bytes int64, opts SendOpts) *Message {
	if int(src) < 0 || int(src) >= len(n.nics) || int(dst) < 0 || int(dst) >= len(n.nics) {
		panic(fmt.Sprintf("fabric: Send %d->%d outside topology", src, dst))
	}
	class := opts.Class
	if class < 0 || class >= len(n.QoS.Classes) {
		class = 0
	}
	n.msgID++
	m := n.allocMsg()
	m.ID = n.msgID
	m.Src, m.Dst = src, dst
	m.Bytes = bytes
	m.Class = class
	m.OnDelivered = opts.OnDelivered
	m.OnAcked = opts.OnAcked
	m.numPackets = ethernet.Packets(bytes, n.Prof.cell())
	m.recycle = opts.Recycle
	if n.Prof.RendezvousThreshold > 0 && bytes > n.Prof.RendezvousThreshold && !opts.NoRendezvous {
		m.Rendezvous = true
	}
	m.Tag = opts.Tag
	if n.fid != FidelityPacket && n.flowEligible(src, dst, bytes, &opts) {
		m.SubmittedAt = n.Eng.Now()
		return n.sendFlow(m)
	}
	n.nics[src].submit(m)
	return m
}

// allocMsg takes a Message off the recycle free-list, or mints one.
//
//simlint:hotpath
func (n *Network) allocMsg() *Message {
	if k := len(n.msgFree); k > 0 {
		m := n.msgFree[k-1]
		n.msgFree[k-1] = nil
		n.msgFree = n.msgFree[:k-1]
		return m
	}
	return &Message{} //simlint:allocok -- cold start; opted-in steady state recycles off the free-list
}

// freeMsg zeroes a completed opted-in message and returns it to the
// free-list. Only control-side completion paths may call this.
//
//simlint:hotpath
func (n *Network) freeMsg(m *Message) {
	*m = Message{}
	n.msgFree = append(n.msgFree, m) //simlint:retained -- this IS the message free-list, mirroring the packet one
}

// NIC returns the NIC runtime for a node (read-only use by tests).
func (n *Network) NIC(id topology.NodeID) *NIC { return n.nics[id] }

// CC returns a node's congestion controller (tests/inspection).
func (n *Network) CC(id topology.NodeID) congestion.Controller { return n.nics[id].cc }

// RoutingPolicy returns the routing policy this network dispatches through
// (tests/inspection).
func (n *Network) RoutingPolicy() routing.Policy { return n.policy }

// choosePath runs the source-switch routing decision for a packet (§II-C:
// the source switch estimates the load of candidate paths). The policy
// does the choosing; the fabric supplies the cached minimal candidates,
// the queue-depth view, and the source switch's RNG stream.
func (n *Network) choosePath(s *Switch, p *Packet) topology.Path {
	return n.route(s, p.Msg.Src, p.Msg.Dst, p.Msg.ID, p.Class)
}

// ChoosePath runs one routing decision for a flow from src to dst in the
// given class, exactly as injecting a packet would (bench/test hook). It
// consults the same policy, minimal-path cache and live load state as the
// hot path, and draws from the source switch's RNG stream — interleaving
// it with live traffic therefore perturbs replay.
func (n *Network) ChoosePath(src, dst topology.NodeID, flowID int64, class int) topology.Path {
	if class < 0 || class >= len(n.QoS.Classes) {
		class = 0
	}
	return n.route(n.switches[n.Topo.SwitchOf(src)], src, dst, flowID, class)
}

// route dispatches one routing decision through the configured policy.
//simlint:hotpath
func (n *Network) route(s *Switch, srcNode, dstNode topology.NodeID, flowID int64, class int) topology.Path {
	src := s.ID
	dst := n.Topo.SwitchOf(dstNode)
	if src == dst {
		return n.selfPaths[src]
	}
	bias := n.Prof.MinimalBias
	if bias < 1 {
		bias = 1
	}
	if cb := n.QoS.Classes[class].MinimalBias; cb > 1 {
		bias *= cb
	}
	// The load view and path arena are the source switch's domain: its
	// own queues read live, remote ones off the epoch snapshot (in classic
	// mode the one domain owns everything, so every read is live — the
	// pre-sharding behaviour).
	return n.policy.Choose(n.Topo, routing.Context{
		Src: src, Dst: dst,
		SrcNode: srcNode, DstNode: dstNode,
		FlowID: flowID, Class: class,
		MinimalBias: bias,
		RouteNoise:  n.Prof.RouteNoise,
		Arena:       &s.dom.arena,
	}, n.minimalPaths(src, dst), s.dom, s.rng)
}

// minimalPaths returns the cached minimal-path candidates between two
// distinct switches, computing them on first use. Rows are per source
// switch and lazily allocated — only ever by the domain owning the source
// switch (routing runs at the source switch; the quiet-RTT oracle runs in
// the source NIC's domain), so concurrent domains touch disjoint rows.
func (n *Network) minimalPaths(src, dst topology.SwitchID) []topology.Path {
	row := n.minPaths[src]
	if row == nil {
		row = make([][]topology.Path, n.Topo.Switches())
		n.minPaths[src] = row
	}
	ps := row[dst]
	if ps == nil {
		ps = n.Topo.MinimalPaths(src, dst, 4)
		row[dst] = ps
	}
	return ps
}

// QueuedTo implements routing.LoadReader: the queued bytes on the
// least-loaded (parallel) egress port from switch a towards the adjacent
// switch b — the request-queue depth §II-C scores paths by. The local
// switch's figure is exact; remote ones arrive via the credit and ack
// piggyback channels.
func (n *Network) QueuedTo(a, b topology.SwitchID) int64 {
	ports := n.switches[a].portsTo(b)
	least := ports[0].queuedBytes()
	for _, o := range ports[1:] {
		if q := o.queuedBytes(); q < least {
			least = q
		}
	}
	return least + ports[0].bgQueued()
}

// quietRTT estimates the uncongested ack round-trip between two nodes
// with a full congestion window in flight: NIC hardware latency both
// ways, serialization of the whole window onto the edge link (the last
// packet's ack closes the loop), the mean switch traversal per hop of
// one minimal path, and the reverse-crossbar latency both directions.
// It feeds congestion.TargetCalibrator at build time and is deliberately
// path-shape only — no queue state — so the figure is deterministic and
// stable across a run.
func (n *Network) quietRTT(src, dst topology.NodeID, window int64) sim.Time {
	prof := &n.Prof
	var path topology.Path
	switches := 1
	if s, d := n.Topo.SwitchOf(src), n.Topo.SwitchOf(dst); s != d {
		if ps := n.minimalPaths(s, d); len(ps) > 0 {
			path = ps[0]
			switches = len(path)
		}
	}
	rtt := 2*prof.NICLatency + sim.SerializationTime(window, prof.EdgeBits)
	rtt += sim.Time(switches) * rosetta.MeanTraversal(0, 2)
	rtt += 2 * n.revLatency(path)
	return rtt
}

// revLatency approximates the reverse-path delay of acknowledgements,
// grants and congestion notifications: they ride dedicated crossbars
// (§II-A) and do not contend with data, so the delay is propagation plus a
// small per-switch forwarding cost.
func (n *Network) revLatency(path topology.Path) sim.Time {
	const perSwitch = 150 * sim.Nanosecond
	lat := 2*phy.EdgeDelay() + 100*sim.Nanosecond
	if path == nil {
		return lat + perSwitch
	}
	lat += sim.Time(len(path)) * perSwitch
	for i := 0; i+1 < len(path); i++ {
		// Optical vs copper per hop follows the link kind, read off the
		// built port tables (for the Dragonfly this is exactly the old
		// cross-group test: links between groups are the optical ones).
		if n.switches[path[i]].portsTo(path[i+1])[0].global {
			lat += phy.OpticalDelay()
		} else {
			lat += phy.CopperDelay()
		}
	}
	return lat
}

// DegradeLinkLanes removes one SerDes lane from every (parallel) link
// between two adjacent switches, in both directions — the §II-F lane
// degrade that tolerates hard lane failures by running ports at reduced
// width. It reports whether any usable lane remains.
func (n *Network) DegradeLinkLanes(a, b topology.SwitchID) bool {
	ok := false
	for _, o := range n.switches[a].portsTo(b) {
		if o.phy.DegradeLane() {
			ok = true
		}
	}
	for _, o := range n.switches[b].portsTo(a) {
		// The reverse direction's result counts too: a link with usable
		// lanes in either direction is still (partially) usable.
		if o.phy.DegradeLane() {
			ok = true
		}
	}
	return ok
}

// RestoreLinkLanes returns the links between two switches to full width.
func (n *Network) RestoreLinkLanes(a, b topology.SwitchID) {
	for _, o := range n.switches[a].portsTo(b) {
		o.phy.RestoreLanes()
	}
	for _, o := range n.switches[b].portsTo(a) {
		o.phy.RestoreLanes()
	}
}

// QueuedAtEdge reports the egress-queue depth at the switch port feeding a
// NIC — the quantity endpoint congestion control watches.
func (n *Network) QueuedAtEdge(node topology.NodeID) int64 {
	sw := n.switches[n.Topo.SwitchOf(node)]
	o := sw.edgePort(node)
	return o.queuedBytes() + o.bgQueued()
}

// RunFor advances the simulation by d.
func (n *Network) RunFor(d sim.Time) { n.RunUntil(n.Eng.Now() + d) }

// Now returns the current simulated time.
func (n *Network) Now() sim.Time { return n.Eng.Now() }
