package harness

import "time"

// Clock abstracts the host wall clock the registry wrapper stamps run
// durations with. Wall time is deliberately the only nondeterministic
// quantity in a Result, and this seam confines it: the default clock
// reads the host, tests install FixedClock so Result meta — wall_ns
// included — is byte-for-byte reproducible and the golden files can pin
// it.
type Clock interface {
	// Now returns the current wall-clock instant.
	Now() time.Time
}

// systemClock is the default Clock: the host's real clock.
type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //simlint:wallclock -- the injectable Clock seam: run-duration metadata is the only place host time may enter library code
}

// wallClock is the clock the registry wrapper reads. Swapped only via
// SetClock; the harness runs experiments from a single goroutine per
// process setup phase, so a plain variable suffices.
var wallClock Clock = systemClock{} //simlint:shared -- the process-wide clock seam; swapped only by SetClock from the single-goroutine test/setup phase, never during a run

// SetClock replaces the wrapper's wall clock and returns a restore
// function, for tests that need deterministic run metadata:
//
//	defer harness.SetClock(harness.FixedClock{})()
func SetClock(c Clock) (restore func()) {
	prev := wallClock
	wallClock = c
	return func() { wallClock = prev }
}

// FixedClock is a Clock frozen at one instant (its zero value is the
// zero time). Runs stamped under it report a zero wall duration, which
// is what lets goldens include meta.
type FixedClock struct {
	// T is the instant Now always returns.
	T time.Time
}

// Now returns the fixed instant.
func (f FixedClock) Now() time.Time { return f.T }
