// Package harness regenerates every figure and table of the paper's
// evaluation on the simulated systems. Each FigN function builds the
// systems it needs, runs the paper's measurement protocol, and returns a
// result struct that renders the same rows/series the paper reports.
//
// Experiments accept an Options scale so the full grids can run at paper
// scale from cmd/slingshot-sim while tests and benchmarks use reduced node
// counts (the shape of the results — who wins, by roughly what factor,
// where crossovers fall — is what the reproduction asserts).
package harness

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Options scales an experiment.
type Options struct {
	// Nodes is the total node count (0 = the experiment's default).
	Nodes int
	// MinIters/MaxIters bound the per-point measurement loop.
	MinIters, MaxIters int
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// PPN is the aggressor processes-per-node where applicable.
	PPN int
}

func (o Options) withDefaults(nodes, minIters, maxIters int) Options {
	if o.Nodes == 0 {
		o.Nodes = nodes
	}
	if o.MinIters == 0 {
		o.MinIters = minIters
	}
	if o.MaxIters == 0 {
		o.MaxIters = maxIters
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PPN == 0 {
		o.PPN = 1
	}
	return o
}

// System couples a topology shape with a hardware profile.
type System struct {
	Name string
	Topo topology.Config
	Prof fabric.Profile
}

// Shandy returns the 1024-node Slingshot system (scaled to n nodes when
// n > 0 and smaller than the full machine).
func Shandy(n int) System {
	cfg := topology.ShandyConfig()
	if n > 0 && n < 1024 {
		cfg = topology.ScaledConfig(n)
	}
	return System{Name: "Slingshot (Shandy)", Topo: cfg, Prof: fabric.SlingshotProfile()}
}

// Malbec returns the 484-node Slingshot system (scaled when n > 0).
func Malbec(n int) System {
	cfg := topology.MalbecConfig()
	if n > 0 && n < 484 {
		cfg = topology.ScaledConfig(n)
		cfg.GlobalPerPair *= 2 // Malbec is generously globally connected
	}
	return System{Name: "Slingshot (Malbec)", Prof: fabric.SlingshotProfile(), Topo: cfg}
}

// Crystal returns the 698-node Aries system (scaled when n > 0).
func Crystal(n int) System {
	cfg := topology.CrystalConfig()
	if n > 0 && n < 698 {
		// Keep Crystal's two-group, grid-group shape at reduced scale:
		// 4 grid rows, column count from the node budget.
		per := (n + 1) / 2
		cols := (per + 15) / 16 // 4 nodes/switch x 4 rows per column
		if cols < 2 {
			cols = 2
		}
		cfg = topology.Config{
			Groups:           2,
			SwitchesPerGroup: 4 * cols,
			NodesPerSwitch:   4,
			GlobalPerPair:    maxi(8, per/8),
			Shape:            topology.Grid2D,
			GridRows:         4,
		}
	}
	return System{Name: "Aries (Crystal)", Prof: fabric.AriesProfile(), Topo: cfg}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// build instantiates the network for a system.
func (s System) build(seed uint64) *fabric.Network {
	return fabric.New(topology.MustNew(s.Topo), s.Prof, seed)
}

// nodeRange returns the first n node IDs.
func nodeRange(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// measureApp runs an application victim repeatedly under the paper's
// protocol and returns per-iteration times in microseconds.
func measureApp(j *mpi.Job, app workloads.App, rng *sim.RNG, minIters, maxIters int) *stats.Sample {
	s := stats.NewSample(maxIters)
	eng := j.Net.Eng
	for i := 0; i < maxIters; i++ {
		start := eng.Now()
		fin := false
		app.Iterate(j, rng, func() { fin = true })
		eng.RunWhile(func() bool { return !fin })
		if !fin {
			break
		}
		s.Add((eng.Now() - start).Microseconds())
		if i+1 >= minIters && s.Converged(0.05) {
			break
		}
	}
	return s
}

// table renders rows of labelled values as a fixed-width text table.
func table(header []string, rows [][]string) string {
	w := make([]int, len(header))
	for i, h := range header {
		w[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, width := range w {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", width))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
