// Package harness regenerates every figure and table of the paper's
// evaluation on the simulated systems. Each experiment registers itself
// under a name ("fig2" ... "fig14"); Lookup/All drive them generically
// and every run returns a uniform *results.Result that the CLI encodes
// as text, JSON, or CSV.
//
// Experiments accept an Options scale so the full grids can run at paper
// scale from cmd/slingshot-sim while tests and benchmarks use reduced node
// counts (the shape of the results — who wins, by roughly what factor,
// where crossovers fall — is what the reproduction asserts). Grid
// experiments fan their independent points out across a worker pool
// (Options.Jobs); each point owns its seed and network, so worker count
// never changes the numbers.
package harness

import (
	"runtime"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// Options scales an experiment.
type Options struct {
	// Nodes is the total node count (0 = the experiment's default).
	Nodes int
	// MinIters/MaxIters bound the per-point measurement loop.
	MinIters, MaxIters int
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// PPN is the aggressor processes-per-node where applicable.
	PPN int
	// Jobs is the worker-pool width for independent grid points
	// (0 = GOMAXPROCS, 1 = serial). Results are identical for any value.
	Jobs int
	// Domains is the sharded parallel engine's worker budget per network
	// (fabric.NewSharded): 0 runs the classic single-threaded engine;
	// any value >= 1 runs the domain-sharded engine, whose results are
	// identical for every budget. Grid experiments divide Jobs by Domains
	// so the two levels of parallelism compose to roughly Jobs goroutines.
	Domains int
	// Victims selects the grid columns for fig9/fig10
	// (default VictimsQuick).
	Victims VictimSet
	// Panel selects the Fig. 10 panel: "A", "B", or "C" (default "A").
	Panel string
	// Topo restricts topo-compare and policy-compare to one backend
	// ("dragonfly"|"fattree"|"hyperx"; "" runs all three).
	Topo string
	// Routing restricts policy-compare to one routing policy
	// (routing.Names(); "" sweeps all four).
	Routing string
	// CC restricts policy-compare to one congestion-control backend
	// (congestion.Names(); "" sweeps slingshot, ecn and delay).
	CC string
	// Fidelity selects how every cell's network moves bytes:
	// "packet" (default, the golden level), "flow", or "hybrid"
	// (fabric.ParseFidelity). Threaded to each System RunGrid builds.
	Fidelity string
}

// fidelity parses Options.Fidelity, panicking on a spelling ParseFidelity
// rejects — the CLI validates first, so a bad value here is programmer
// error.
func (o Options) fidelity() fabric.Fidelity {
	f, err := fabric.ParseFidelity(o.Fidelity)
	if err != nil {
		panic(err)
	}
	return f
}

// withDefaults fills zero fields from an experiment's default options
// (the single source shared with its registry entry), validates the
// iteration range, and applies the generic fallbacks.
func (o Options) withDefaults(d Options) Options {
	if o.Nodes == 0 {
		o.Nodes = d.Nodes
	}
	if o.MinIters == 0 {
		o.MinIters = d.MinIters
	}
	if o.MaxIters == 0 {
		o.MaxIters = d.MaxIters
	}
	// An inverted range would disable the convergence break and silently
	// run every point to MaxIters; clamp instead.
	if o.MinIters > o.MaxIters {
		o.MinIters = o.MaxIters
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PPN == 0 {
		o.PPN = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.Panel == "" {
		o.Panel = "A"
	}
	return o
}

// gridJobs is the grid worker-pool width composed with the per-network
// domain budget: with Domains > 1 every cell already runs Domains
// goroutines, so the pool shrinks to keep the total near Jobs.
func (o Options) gridJobs() int {
	if o.Domains <= 1 {
		return o.Jobs
	}
	if j := o.Jobs / o.Domains; j > 1 {
		return j
	}
	return 1
}

// System couples a topology shape with a hardware profile. Dragonfly
// systems fill Topo (the figN experiments also read its shape fields);
// other backends set Builder, which takes precedence over it. Only when
// both are zero does the profile's own constructor (Prof.Topo) apply.
type System struct {
	Name    string
	Topo    topology.Config
	Builder topology.Builder
	Prof    fabric.Profile
	// Domains is the sharded-engine worker budget passed to
	// fabric.NewSharded (0 = classic engine); see Options.Domains.
	Domains int
	// Fidelity is applied to every network built for this system
	// (fabric.SetFidelity); the zero value is the packet engine.
	Fidelity fabric.Fidelity
}

// Shandy returns the 1024-node Slingshot system (scaled to n nodes when
// n > 0 and smaller than the full machine).
func Shandy(n int) System {
	cfg := topology.ShandyConfig()
	if n > 0 && n < 1024 {
		cfg = topology.ScaledConfig(n)
	}
	return System{Name: "Slingshot (Shandy)", Topo: cfg, Prof: fabric.SlingshotProfile()}
}

// Malbec returns the 484-node Slingshot system (scaled when n > 0).
func Malbec(n int) System {
	cfg := topology.MalbecConfig()
	if n > 0 && n < 484 {
		cfg = topology.ScaledConfig(n)
		cfg.GlobalPerPair *= 2 // Malbec is generously globally connected
	}
	return System{Name: "Slingshot (Malbec)", Prof: fabric.SlingshotProfile(), Topo: cfg}
}

// Crystal returns the 698-node Aries system (scaled when n > 0).
func Crystal(n int) System {
	cfg := topology.CrystalConfig()
	if n > 0 && n < 698 {
		// Keep Crystal's two-group, grid-group shape at reduced scale:
		// 4 grid rows, column count from the node budget.
		per := (n + 1) / 2
		cols := (per + 15) / 16 // 4 nodes/switch x 4 rows per column
		if cols < 2 {
			cols = 2
		}
		cfg = topology.Config{
			Groups:           2,
			SwitchesPerGroup: 4 * cols,
			NodesPerSwitch:   4,
			GlobalPerPair:    max(8, per/8),
			Shape:            topology.Grid2D,
			GridRows:         4,
		}
	}
	return System{Name: "Aries (Crystal)", Prof: fabric.AriesProfile(), Topo: cfg}
}

// build instantiates the network for a system: Builder, else an
// explicitly set Dragonfly Topo, else the profile's own constructor.
func (s System) build(seed uint64) *fabric.Network {
	b := s.Builder
	if b == nil && s.Topo != (topology.Config{}) {
		b = s.Topo
	}
	if b == nil && s.Prof.Topo != nil {
		b = s.Prof.Topo
	}
	if b == nil {
		b = s.Topo // zero config: Validate reports the empty system
	}
	n := fabric.NewSharded(topology.MustBuild(b), s.Prof, seed, s.Domains)
	if s.Fidelity != fabric.FidelityPacket {
		n.SetFidelity(s.Fidelity)
	}
	return n
}

// nodeRange returns the first n node IDs.
func nodeRange(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}
