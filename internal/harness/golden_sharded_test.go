package harness

import (
	"bytes"
	"testing"

	"repro/internal/results"
)

// TestShardedGoldenDomains pins the sharded engine's determinism guarantee
// at the experiment level: the natural-unit decomposition is fixed by the
// topology and the merge orders are canonical, so a worker budget of 1 and
// of 4 must produce byte-identical experiment JSON across the same
// behavioural slice the classic goldens cover. (Sharded output is NOT
// compared to the classic goldens: epoch-quantized injection and the
// per-domain RNG streams are a deliberately different — but internally
// deterministic — timeline.)
func TestShardedGoldenDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden runs take a while")
	}
	defer SetClock(FixedClock{})()
	enc, err := results.NewEncoder("json")
	if err != nil {
		t.Fatal(err)
	}
	render := func(name string, opt Options) []byte {
		t.Helper()
		e := Lookup(name)
		if e == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		res, err := e.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := enc.Encode(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			o1 := c.opt
			o1.Domains = 1
			d1 := render(c.name, o1)
			o4 := c.opt
			o4.Domains = 4
			d4 := render(c.name, o4)
			if !bytes.Equal(d1, d4) {
				t.Errorf("%s diverges between Domains=1 and Domains=4 (%d vs %d bytes).\n%s",
					c.name, len(d1), len(d4), firstDiff(d4, d1))
			}
		})
	}
}
