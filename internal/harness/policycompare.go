package harness

import (
	"fmt"

	"repro/internal/congestion"
	"repro/internal/placement"
	"repro/internal/results"
	"repro/internal/routing"
)

var policyCompareDefaults = Options{Nodes: 32, MinIters: 2, MaxIters: 4}

func init() {
	Register(Experiment{
		Name:           "policy-compare",
		Desc:           "victim slowdown across routing policies x CC backends x topologies",
		DefaultOptions: policyCompareDefaults,
		// The CC contrast needs real pressure on the incast destination:
		// default to a multi-process aggressor, in the spirit of Fig. 10's
		// panel B. Prepare runs before defaults merge, so only an unset
		// PPN is filled — an explicit -ppn (including 1) wins.
		Prepare: func(opt Options) Options {
			if opt.PPN == 0 {
				opt.PPN = 4
			}
			return opt
		},
		Run: func(opt Options) (*results.Result, error) {
			r, err := PolicyCompare(opt)
			if err != nil {
				return nil, err
			}
			return r.Result(), nil
		},
	})
}

// RoutingNames lists the routing policies policy-compare sweeps, in row
// order (the registry's four backends).
var RoutingNames = [...]string{"minimal", "adaptive", "ecmp", "valiant"}

// PolicyCCNames lists the CC backends policy-compare sweeps by default, in
// row order: the paper's §II-D comparison (Slingshot hardware CC vs the
// fragile ECN-style loop) plus the delay-based controller. The Aries
// no-CC baseline is reachable with Options.CC = "none" — it is excluded
// from the default sweep because uncontrolled incast inflates runtimes.
var PolicyCCNames = [...]string{"slingshot", "ecn", "delay"}

// policySystem is topoSystem with the routing policy and CC backend
// overridden: the same machine, link model and thresholds, only the two
// policy layers change.
func policySystem(topoName, routingName, ccName string, machineNodes int) (System, error) {
	sys, err := topoSystem(topoName, machineNodes)
	if err != nil {
		return System{}, err
	}
	sys.Name = fmt.Sprintf("%s/%s/%s", topoName, routingName, ccName)
	rb, err := routing.ByName(routingName)
	if err != nil {
		return System{}, err
	}
	sys.Prof.Routing = rb
	cb, err := congestion.ByName(ccName)
	if err != nil {
		return System{}, err
	}
	sys.Prof.CCBuilder = cb
	return sys, nil
}

// PolicyRowResult is one row of the policy grid: a (topology, routing,
// CC) combination measured against every victim.
type PolicyRowResult struct {
	Topo    string
	Routing string
	CC      string
	Cells   []CellResult
}

// PolicyCompareResult is the victim-slowdown grid across the two policy
// layers and the topology backends.
type PolicyCompareResult struct {
	Columns []string
	Rows    []PolicyRowResult
}

// PolicyCompare measures the same fixed victim mix under a multi-process
// incast aggressor at an even split with interleaved allocation — victims
// share switches with aggressors, the placement Fig. 10 shows generating
// congestion, so the §II-D endpoint-congestion contrast between CC
// backends is visible at reduced scale — for every (topology, routing
// policy, CC backend) combination, fanning the independent cells over
// RunGrid. Options.Topo/Routing/CC each restrict one axis of the sweep to
// a single backend.
func PolicyCompare(opt Options) (PolicyCompareResult, error) {
	opt = opt.withDefaults(policyCompareDefaults)
	topos, routings, ccs := TopoNames[:], RoutingNames[:], PolicyCCNames[:]
	if opt.Topo != "" {
		topos = []string{opt.Topo}
	}
	if opt.Routing != "" {
		routings = []string{opt.Routing}
	}
	if opt.CC != "" {
		ccs = []string{opt.CC}
	}
	victims := topoCompareVictims()
	res := PolicyCompareResult{}
	for _, v := range victims {
		res.Columns = append(res.Columns, v.Label)
	}
	var points []GridPoint
	seed := opt.Seed
	for _, topoName := range topos {
		for _, routingName := range routings {
			for _, ccName := range ccs {
				sys, err := policySystem(topoName, routingName, ccName, opt.Nodes*2)
				if err != nil {
					return PolicyCompareResult{}, err
				}
				sys.Domains = opt.Domains
				sys.Fidelity = opt.fidelity()
				res.Rows = append(res.Rows, PolicyRowResult{
					Topo: topoName, Routing: routingName, CC: ccName,
				})
				for _, v := range victims {
					seed++
					points = append(points, GridPoint{
						Spec: CellSpec{
							Sys:        sys,
							TotalNodes: opt.Nodes,
							VictimFrac: 0.5,
							Aggressor:  IncastAggressor,
							Alloc:      placement.Interleaved,
							AggrPPN:    opt.PPN,
							Seed:       seed,
							MinIters:   opt.MinIters,
							MaxIters:   opt.MaxIters,
						},
						Victim: v,
					})
				}
			}
		}
	}
	cells := RunGrid(points, opt.gridJobs())
	for i := range res.Rows {
		res.Rows[i].Cells = cells[i*len(victims) : (i+1)*len(victims)]
	}
	return res, nil
}

// MaxByCC returns the largest victim impact observed per CC backend
// across the whole grid — the aggregate the §II-D ordering claim
// (slingshot < ecn) is checked against.
func (r PolicyCompareResult) MaxByCC() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if !c.NA && c.Impact > out[row.CC] {
				out[row.CC] = c.Impact
			}
		}
	}
	return out
}

// Result converts the grid to the uniform structured form: one table with
// the three policy axes as key columns and a column per victim.
func (r PolicyCompareResult) Result() *results.Result {
	res := &results.Result{}
	cols := append([]string{"topology", "routing", "cc"}, r.Columns...)
	t := res.AddTable("policy grid", cols...)
	for _, row := range r.Rows {
		cells := []results.Value{
			results.String(row.Topo), results.String(row.Routing),
			results.String(row.CC),
		}
		for _, c := range row.Cells {
			if c.NA {
				cells = append(cells, results.NA())
			} else {
				cells = append(cells, results.Float(c.Impact, 1))
			}
		}
		t.Row(cells...)
	}
	return res
}

func (r PolicyCompareResult) String() string { return results.TextString(r.Result()) }
