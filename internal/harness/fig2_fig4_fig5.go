package harness

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/results"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

var (
	fig2Defaults = Options{Nodes: 64, MinIters: 200, MaxIters: 2000}
	fig4Defaults = Options{Nodes: 64, MinIters: 20, MaxIters: 60}
	fig5Defaults = Options{Nodes: 64, MinIters: 3, MaxIters: 10}
)

func init() {
	Register(Experiment{
		Name:           "fig2",
		Desc:           "switch traversal latency distribution (2-hop minus 1-hop RoCE)",
		DefaultOptions: fig2Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig2SwitchLatency(opt).Result(), nil
		},
	})
	Register(Experiment{
		Name:           "fig4",
		Desc:           "latency and bandwidth vs node distance and message size",
		DefaultOptions: fig4Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig4Distance(opt).Result(), nil
		},
	})
	Register(Experiment{
		Name:           "fig5",
		Desc:           "RTT/2 across software stacks and message sizes",
		DefaultOptions: fig5Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig5Stacks(opt).Result(), nil
		},
	})
}

// Fig2Result is the Fig. 2 switch-latency distribution for RoCE traffic:
// the latency difference between 2-hop and 1-hop transfers.
type Fig2Result struct {
	Samples *stats.Sample // nanoseconds
}

// Fig2SwitchLatency measures the Rosetta traversal latency exactly as the
// paper does: the difference between 2-hop (two switches, same group) and
// 1-hop (same switch) path latencies for 8 B RoCE messages on a quiet
// system.
func Fig2SwitchLatency(opt Options) Fig2Result {
	opt = opt.withDefaults(fig2Defaults)
	sys := Shandy(opt.Nodes)
	sys.Domains = opt.Domains
	sys.Fidelity = opt.fidelity()
	net := sys.build(opt.Seed)
	nps := sys.Topo.NodesPerSwitch

	oneWay := func(src, dst topology.NodeID) sim.Time {
		start := net.Now()
		var done sim.Time
		net.Send(src, dst, 8, fabric.SendOpts{OnDelivered: func(at sim.Time) { done = at }})
		net.RunWhile(func() bool { return done == 0 })
		return done - start
	}

	// 1-hop baseline: nodes sharing a switch.
	base := stats.NewSample(opt.MaxIters)
	for i := 0; i < opt.MaxIters; i++ {
		base.Add(oneWay(0, 1).Nanoseconds())
	}
	med := base.Median()

	// 2-hop samples: nodes on two switches of the same group.
	out := stats.NewSample(opt.MaxIters)
	for i := 0; i < opt.MaxIters; i++ {
		l := oneWay(0, topology.NodeID(nps)).Nanoseconds()
		out.Add(l - med)
	}
	return Fig2Result{Samples: out}
}

// Result converts the measurement to the uniform structured form.
func (r Fig2Result) Result() *results.Result {
	s := r.Samples
	res := &results.Result{}
	res.AddTable("distribution", "metric", "value_ns").
		Row(results.String("mean"), results.Float(s.Mean(), 1)).
		Row(results.String("median"), results.Float(s.Median(), 1)).
		Row(results.String("p1"), results.Float(s.Percentile(1), 1)).
		Row(results.String("p99"), results.Float(s.Percentile(99), 1)).
		Row(results.String("min"), results.Float(s.Min(), 1)).
		Row(results.String("max"), results.Float(s.Max(), 1))
	return res
}

func (r Fig2Result) String() string { return results.TextString(r.Result()) }

// Fig4Row is one (distance, size) cell of Fig. 4: the latency boxplot and
// the streaming bandwidth.
type Fig4Row struct {
	Distance string
	Size     int64
	Latency  stats.BoxStats // microseconds
	GBits    float64        // streaming bandwidth, Gb/s
}

// Fig4Result reproduces Fig. 4: latency and bandwidth for node distances
// (same switch / different switches / different groups) across message
// sizes, on an isolated system.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4Sizes are the paper's four message sizes.
var Fig4Sizes = [...]int64{8, 1024, 128 * 1024, 4 * 1024 * 1024}

// Fig4Distance runs the Fig. 4 grid. Every (distance, size) point builds
// a fresh network, so points run in parallel across opt.Jobs workers.
func Fig4Distance(opt Options) Fig4Result {
	opt = opt.withDefaults(fig4Defaults)
	sys := Shandy(opt.Nodes)
	sys.Domains = opt.Domains
	sys.Fidelity = opt.fidelity()
	nps := sys.Topo.NodesPerSwitch
	npg := nps * sys.Topo.SwitchesPerGroup
	dists := []struct {
		name string
		dst  int
	}{
		{"same switch", 1},
		{"different switches", nps},
		{"different groups", npg},
	}
	type point struct {
		name string
		dst  int
		size int64
	}
	var points []point
	for _, d := range dists {
		for _, size := range Fig4Sizes {
			points = append(points, point{d.name, d.dst, size})
		}
	}
	rows := parallelMap(opt.gridJobs(), points, func(p point) Fig4Row {
		// Fresh network per point keeps points independent.
		net := sys.build(opt.Seed)
		lat := stats.NewSample(opt.MaxIters)
		for i := 0; i < opt.MaxIters; i++ {
			start := net.Now()
			var done sim.Time
			net.Send(0, topology.NodeID(p.dst), p.size,
				fabric.SendOpts{OnDelivered: func(at sim.Time) { done = at }})
			net.RunWhile(func() bool { return done == 0 })
			lat.Add((done - start).Microseconds())
		}
		gbits := streamBandwidth(sys, opt.Seed, topology.NodeID(p.dst), p.size)
		return Fig4Row{Distance: p.name, Size: p.size, Latency: lat.Box(), GBits: gbits}
	})
	return Fig4Result{Rows: rows}
}

// streamBandwidth measures pipelined point-to-point bandwidth with a
// window of outstanding messages, as a bandwidth benchmark does.
func streamBandwidth(sys System, seed uint64, dst topology.NodeID, size int64) float64 {
	net := sys.build(seed + 1)
	const window = 8
	iters := 64
	if size >= 1<<20 {
		iters = 12
	}
	done, posted := 0, 0
	var finish sim.Time
	var post func()
	post = func() {
		if posted >= iters {
			return
		}
		posted++
		net.Send(0, dst, size, fabric.SendOpts{OnDelivered: func(at sim.Time) {
			done++
			finish = at
			post()
		}})
	}
	for i := 0; i < window && i < iters; i++ {
		post()
	}
	net.RunWhile(func() bool { return done < iters })
	if finish == 0 {
		return 0
	}
	return float64(size*int64(iters)) * 8 / finish.Seconds() / 1e9
}

// Result converts the measurement to the uniform structured form.
func (r Fig4Result) Result() *results.Result {
	res := &results.Result{}
	t := res.AddTable("grid", "distance", "size", "S_us", "Q1", "median", "Q3", "L", "Gbps")
	for _, row := range r.Rows {
		t.Row(
			results.String(row.Distance), results.String(sizeName(row.Size)),
			results.Float(row.Latency.S, 2), results.Float(row.Latency.Q1, 2),
			results.Float(row.Latency.Median, 2), results.Float(row.Latency.Q3, 2),
			results.Float(row.Latency.L, 2), results.Float(row.GBits, 2),
		)
	}
	return res
}

func (r Fig4Result) String() string { return results.TextString(r.Result()) }

func sizeName(s int64) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dMiB", s>>20)
	case s >= 1024:
		return fmt.Sprintf("%dKiB", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}

// Fig5Point is one (stack, size) measurement of Fig. 5.
type Fig5Point struct {
	Stack mpi.Stack
	Size  int64
	RTT2  sim.Time // half round-trip
}

// Fig5Result reproduces Fig. 5: RTT/2 across software stacks and sizes.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5Sizes spans 8 B to 16 MiB in decade-ish steps like the paper's
// log-scale x axis.
var Fig5Sizes = [...]int64{8, 64, 512, 1024, 4096, 32 * 1024, 256 * 1024, 2 << 20, 16 << 20}

// Fig5Stacks runs the Fig. 5 grid between two nodes in different groups.
// Points build independent networks and run in parallel.
func Fig5Stacks(opt Options) Fig5Result {
	opt = opt.withDefaults(fig5Defaults)
	sys := Shandy(opt.Nodes)
	sys.Domains = opt.Domains
	sys.Fidelity = opt.fidelity()
	npg := sys.Topo.NodesPerSwitch * sys.Topo.SwitchesPerGroup
	type point struct {
		stack mpi.Stack
		size  int64
	}
	var points []point
	for _, st := range mpi.Stacks() {
		for _, size := range Fig5Sizes {
			points = append(points, point{st, size})
		}
	}
	out := parallelMap(opt.gridJobs(), points, func(p point) Fig5Point {
		net := sys.build(opt.Seed)
		j := mpi.NewJob(net, []topology.NodeID{0, topology.NodeID(npg)},
			mpi.JobOpts{Stack: p.stack})
		var rtts []sim.Time
		j.PingPong(0, 1, p.size, opt.MaxIters, func(rs []sim.Time) { rtts = rs })
		net.Run()
		s := stats.NewSample(len(rtts))
		for _, r := range rtts {
			s.Add(float64(r))
		}
		return Fig5Point{Stack: p.stack, Size: p.size, RTT2: sim.Time(s.Median())}
	})
	return Fig5Result{Points: out}
}

// Result converts the measurement to the uniform structured form.
func (r Fig5Result) Result() *results.Result {
	res := &results.Result{}
	t := res.AddTable("rtt", "stack", "size", "rtt2_us")
	for _, p := range r.Points {
		t.Row(
			results.String(p.Stack.String()), results.String(sizeName(p.Size)),
			results.Float(p.RTT2.Microseconds(), 2),
		)
	}
	return res
}

func (r Fig5Result) String() string { return results.TextString(r.Result()) }
