package harness

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Fig2Result is the Fig. 2 switch-latency distribution for RoCE traffic:
// the latency difference between 2-hop and 1-hop transfers.
type Fig2Result struct {
	Samples *stats.Sample // nanoseconds
}

// Fig2SwitchLatency measures the Rosetta traversal latency exactly as the
// paper does: the difference between 2-hop (two switches, same group) and
// 1-hop (same switch) path latencies for 8 B RoCE messages on a quiet
// system.
func Fig2SwitchLatency(opt Options) Fig2Result {
	opt = opt.withDefaults(64, 200, 2000)
	sys := Shandy(opt.Nodes)
	net := sys.build(opt.Seed)
	nps := sys.Topo.NodesPerSwitch

	oneWay := func(src, dst topology.NodeID) sim.Time {
		start := net.Now()
		var done sim.Time
		net.Send(src, dst, 8, fabric.SendOpts{OnDelivered: func(at sim.Time) { done = at }})
		net.Eng.RunWhile(func() bool { return done == 0 })
		return done - start
	}

	// 1-hop baseline: nodes sharing a switch.
	base := stats.NewSample(opt.MaxIters)
	for i := 0; i < opt.MaxIters; i++ {
		base.Add(oneWay(0, 1).Nanoseconds())
	}
	med := base.Median()

	// 2-hop samples: nodes on two switches of the same group.
	out := stats.NewSample(opt.MaxIters)
	for i := 0; i < opt.MaxIters; i++ {
		l := oneWay(0, topology.NodeID(nps)).Nanoseconds()
		out.Add(l - med)
	}
	return Fig2Result{Samples: out}
}

func (r Fig2Result) String() string {
	s := r.Samples
	return table(
		[]string{"metric", "value (ns)"},
		[][]string{
			{"mean", f1(s.Mean())},
			{"median", f1(s.Median())},
			{"p1", f1(s.Percentile(1))},
			{"p99", f1(s.Percentile(99))},
			{"min", f1(s.Min())},
			{"max", f1(s.Max())},
		},
	)
}

// Fig4Row is one (distance, size) cell of Fig. 4: the latency boxplot and
// the streaming bandwidth.
type Fig4Row struct {
	Distance string
	Size     int64
	Latency  stats.BoxStats // microseconds
	GBits    float64        // streaming bandwidth, Gb/s
}

// Fig4Result reproduces Fig. 4: latency and bandwidth for node distances
// (same switch / different switches / different groups) across message
// sizes, on an isolated system.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4Sizes are the paper's four message sizes.
var Fig4Sizes = []int64{8, 1024, 128 * 1024, 4 * 1024 * 1024}

// Fig4Distance runs the Fig. 4 grid.
func Fig4Distance(opt Options) Fig4Result {
	opt = opt.withDefaults(64, 20, 60)
	sys := Shandy(opt.Nodes)
	nps := sys.Topo.NodesPerSwitch
	npg := nps * sys.Topo.SwitchesPerGroup
	var res Fig4Result
	dists := []struct {
		name string
		dst  int
	}{
		{"same switch", 1},
		{"different switches", nps},
		{"different groups", npg},
	}
	for _, d := range dists {
		for _, size := range Fig4Sizes {
			// Fresh network per point keeps points independent.
			net := sys.build(opt.Seed)
			lat := stats.NewSample(opt.MaxIters)
			for i := 0; i < opt.MaxIters; i++ {
				start := net.Now()
				var done sim.Time
				net.Send(0, topology.NodeID(d.dst), size,
					fabric.SendOpts{OnDelivered: func(at sim.Time) { done = at }})
				net.Eng.RunWhile(func() bool { return done == 0 })
				lat.Add((done - start).Microseconds())
			}
			gbits := streamBandwidth(sys, opt.Seed, topology.NodeID(d.dst), size)
			res.Rows = append(res.Rows, Fig4Row{
				Distance: d.name, Size: size, Latency: lat.Box(), GBits: gbits,
			})
		}
	}
	return res
}

// streamBandwidth measures pipelined point-to-point bandwidth with a
// window of outstanding messages, as a bandwidth benchmark does.
func streamBandwidth(sys System, seed uint64, dst topology.NodeID, size int64) float64 {
	net := sys.build(seed + 1)
	const window = 8
	iters := 64
	if size >= 1<<20 {
		iters = 12
	}
	done, posted := 0, 0
	var finish sim.Time
	var post func()
	post = func() {
		if posted >= iters {
			return
		}
		posted++
		net.Send(0, dst, size, fabric.SendOpts{OnDelivered: func(at sim.Time) {
			done++
			finish = at
			post()
		}})
	}
	for i := 0; i < window && i < iters; i++ {
		post()
	}
	net.Eng.RunWhile(func() bool { return done < iters })
	if finish == 0 {
		return 0
	}
	return float64(size*int64(iters)) * 8 / finish.Seconds() / 1e9
}

func (r Fig4Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Distance, sizeName(row.Size),
			f2(row.Latency.S), f2(row.Latency.Q1), f2(row.Latency.Median),
			f2(row.Latency.Q3), f2(row.Latency.L), f2(row.GBits),
		})
	}
	return table(
		[]string{"distance", "size", "S(us)", "Q1", "median", "Q3", "L", "Gb/s"},
		rows,
	)
}

func sizeName(s int64) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dMiB", s>>20)
	case s >= 1024:
		return fmt.Sprintf("%dKiB", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}

// Fig5Point is one (stack, size) measurement of Fig. 5.
type Fig5Point struct {
	Stack mpi.Stack
	Size  int64
	RTT2  sim.Time // half round-trip
}

// Fig5Result reproduces Fig. 5: RTT/2 across software stacks and sizes.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5Sizes spans 8 B to 16 MiB in decade-ish steps like the paper's
// log-scale x axis.
var Fig5Sizes = []int64{8, 64, 512, 1024, 4096, 32 * 1024, 256 * 1024, 2 << 20, 16 << 20}

// Fig5Stacks runs the Fig. 5 grid between two nodes in different groups.
func Fig5Stacks(opt Options) Fig5Result {
	opt = opt.withDefaults(64, 3, 10)
	sys := Shandy(opt.Nodes)
	npg := sys.Topo.NodesPerSwitch * sys.Topo.SwitchesPerGroup
	var res Fig5Result
	for _, st := range mpi.Stacks() {
		for _, size := range Fig5Sizes {
			net := sys.build(opt.Seed)
			j := mpi.NewJob(net, []topology.NodeID{0, topology.NodeID(npg)},
				mpi.JobOpts{Stack: st})
			var rtts []sim.Time
			j.PingPong(0, 1, size, opt.MaxIters, func(rs []sim.Time) { rtts = rs })
			net.Eng.Run()
			s := stats.NewSample(len(rtts))
			for _, r := range rtts {
				s.Add(float64(r))
			}
			res.Points = append(res.Points, Fig5Point{
				Stack: st, Size: size, RTT2: sim.Time(s.Median()),
			})
		}
	}
	return res
}

func (r Fig5Result) String() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Stack.String(), sizeName(p.Size), f2(p.RTT2.Microseconds()),
		})
	}
	return table([]string{"stack", "size", "RTT/2 (us)"}, rows)
}
