package harness

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Fig6Point is one measured series point of Fig. 6.
type Fig6Point struct {
	Series  string
	Size    int64
	PPN     int
	TBits   float64 // aggregate bandwidth, Tb/s
	PeakFrc float64 // fraction of the theoretical peak
}

// Fig6Result reproduces Fig. 6: bisection and MPI_Alltoall aggregate
// bandwidth versus message size, against the theoretical peaks derived
// from the topology (§II-G).
type Fig6Result struct {
	BisectionPeakTBits float64
	AlltoallPeakTBits  float64
	Points             []Fig6Point
}

// Fig6Sizes are the paper's x-axis sizes (8 B ... 128 KiB).
var Fig6Sizes = []int64{8, 32, 128, 512, 2048, 8192, 32 * 1024, 128 * 1024}

// Fig6Bisection measures both series. PPN follows opt.PPN for the alltoall
// series (the paper shows 16 and 24; reduced-scale runs use smaller
// values since ranks multiply event counts).
func Fig6Bisection(opt Options) Fig6Result {
	opt = opt.withDefaults(64, 0, 0)
	sys := Shandy(opt.Nodes)
	topo := topology.MustNew(sys.Topo)
	res := Fig6Result{
		BisectionPeakTBits: float64(topo.BisectionPeakBits(topology.LinkBits)) / 1e12,
		AlltoallPeakTBits:  float64(topo.AlltoallPeakBits(topology.LinkBits)) / 1e12,
	}
	n := topo.Nodes()
	for _, size := range Fig6Sizes {
		tb := measureBisection(sys, opt.Seed, n, size)
		res.Points = append(res.Points, Fig6Point{
			Series: "bisection", Size: size, PPN: 1, TBits: tb,
			PeakFrc: tb / res.BisectionPeakTBits,
		})
	}
	for _, size := range Fig6Sizes {
		tb := measureAlltoall(sys, opt.Seed, n, opt.PPN, size)
		res.Points = append(res.Points, Fig6Point{
			Series: "alltoall", Size: size, PPN: opt.PPN, TBits: tb,
			PeakFrc: tb / res.AlltoallPeakTBits,
		})
	}
	return res
}

// measureBisection pairs every node with its opposite across the group
// bisection and streams messages both ways, reporting steady-state
// aggregate bandwidth.
func measureBisection(sys System, seed uint64, n int, size int64) float64 {
	net := sys.build(seed)
	const window = 8
	running := true
	for i := 0; i < n; i++ {
		partner := topology.NodeID((i + n/2) % n)
		src := topology.NodeID(i)
		var post func()
		post = func() {
			if !running {
				return
			}
			net.Send(src, partner, size, fabric.SendOpts{NoRendezvous: size <= 4096,
				OnDelivered: func(sim.Time) { post() }})
		}
		for w := 0; w < window; w++ {
			post()
		}
	}
	// Warm up, then measure over a fixed window.
	warm := 100 * sim.Microsecond
	meas := 300 * sim.Microsecond
	net.RunFor(warm)
	startBytes := net.BytesDelivered
	net.RunFor(meas)
	running = false
	return float64(net.BytesDelivered-startBytes) * 8 / meas.Seconds() / 1e12
}

// measureAlltoall runs back-to-back MPI_Alltoalls over all nodes (with
// PPN ranks per node) and reports aggregate delivered bandwidth.
func measureAlltoall(sys System, seed uint64, n, ppn int, size int64) float64 {
	net := sys.build(seed)
	job := mpi.NewJob(net, nodeRange(n), mpi.JobOpts{PPN: ppn, Stack: mpi.MPI})
	running := true
	var round func()
	round = func() {
		if !running {
			return
		}
		job.Alltoall(size, func(sim.Time) { round() })
	}
	round()
	warm := 100 * sim.Microsecond
	meas := 400 * sim.Microsecond
	net.RunFor(warm)
	startBytes := net.BytesDelivered
	net.RunFor(meas)
	running = false
	return float64(net.BytesDelivered-startBytes) * 8 / meas.Seconds() / 1e12
}

func (r Fig6Result) String() string {
	rows := make([][]string, 0, len(r.Points)+2)
	rows = append(rows,
		[]string{"theoretical bisection", "-", "-", fmt.Sprintf("%.2f", r.BisectionPeakTBits), "1.00"},
		[]string{"theoretical alltoall", "-", "-", fmt.Sprintf("%.2f", r.AlltoallPeakTBits), "1.00"},
	)
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Series, sizeName(p.Size), fmt.Sprintf("%d", p.PPN),
			fmt.Sprintf("%.3f", p.TBits), f2(p.PeakFrc),
		})
	}
	return table([]string{"series", "size", "PPN", "Tb/s", "frac of peak"}, rows)
}
