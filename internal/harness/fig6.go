package harness

import (
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/results"
	"repro/internal/sim"
	"repro/internal/topology"
)

var fig6Defaults = Options{Nodes: 64}

func init() {
	Register(Experiment{
		Name:           "fig6",
		Desc:           "bisection and MPI_Alltoall aggregate bandwidth vs theoretical peak",
		DefaultOptions: fig6Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig6Bisection(opt).Result(), nil
		},
	})
}

// Fig6Point is one measured series point of Fig. 6.
type Fig6Point struct {
	Series  string
	Size    int64
	PPN     int
	TBits   float64 // aggregate bandwidth, Tb/s
	PeakFrc float64 // fraction of the theoretical peak
}

// Fig6Result reproduces Fig. 6: bisection and MPI_Alltoall aggregate
// bandwidth versus message size, against the theoretical peaks derived
// from the topology (§II-G).
type Fig6Result struct {
	BisectionPeakTBits float64
	AlltoallPeakTBits  float64
	Points             []Fig6Point
}

// Fig6Sizes are the paper's x-axis sizes (8 B ... 128 KiB).
var Fig6Sizes = [...]int64{8, 32, 128, 512, 2048, 8192, 32 * 1024, 128 * 1024}

// Fig6Bisection measures both series. PPN follows opt.PPN for the alltoall
// series (the paper shows 16 and 24; reduced-scale runs use smaller
// values since ranks multiply event counts). Every (series, size) point
// builds its own network, so points run in parallel across opt.Jobs.
func Fig6Bisection(opt Options) Fig6Result {
	opt = opt.withDefaults(fig6Defaults)
	sys := Shandy(opt.Nodes)
	sys.Domains = opt.Domains
	sys.Fidelity = opt.fidelity()
	topo := topology.MustNew(sys.Topo)
	res := Fig6Result{
		BisectionPeakTBits: float64(topo.BisectionPeakBits(topology.LinkBits)) / 1e12,
		AlltoallPeakTBits:  float64(topo.AlltoallPeakBits(topology.LinkBits)) / 1e12,
	}
	n := topo.Nodes()
	type point struct {
		series string
		size   int64
	}
	var points []point
	for _, size := range Fig6Sizes {
		points = append(points, point{"bisection", size})
	}
	for _, size := range Fig6Sizes {
		points = append(points, point{"alltoall", size})
	}
	res.Points = parallelMap(opt.gridJobs(), points, func(p point) Fig6Point {
		if p.series == "bisection" {
			tb := measureBisection(sys, opt.Seed, n, p.size)
			return Fig6Point{
				Series: "bisection", Size: p.size, PPN: 1, TBits: tb,
				PeakFrc: tb / res.BisectionPeakTBits,
			}
		}
		tb := measureAlltoall(sys, opt.Seed, n, opt.PPN, p.size)
		return Fig6Point{
			Series: "alltoall", Size: p.size, PPN: opt.PPN, TBits: tb,
			PeakFrc: tb / res.AlltoallPeakTBits,
		}
	})
	return res
}

// measureBisection pairs every node with its opposite across the group
// bisection and streams messages both ways, reporting steady-state
// aggregate bandwidth.
func measureBisection(sys System, seed uint64, n int, size int64) float64 {
	net := sys.build(seed)
	const window = 8
	running := true
	for i := 0; i < n; i++ {
		partner := topology.NodeID((i + n/2) % n)
		src := topology.NodeID(i)
		var post func()
		post = func() {
			if !running {
				return
			}
			net.Send(src, partner, size, fabric.SendOpts{NoRendezvous: size <= 4096,
				OnDelivered: func(sim.Time) { post() }})
		}
		for w := 0; w < window; w++ {
			post()
		}
	}
	// Warm up, then measure over a fixed window.
	warm := 100 * sim.Microsecond
	meas := 300 * sim.Microsecond
	net.RunFor(warm)
	startBytes := net.BytesDelivered
	net.RunFor(meas)
	running = false
	return float64(net.BytesDelivered-startBytes) * 8 / meas.Seconds() / 1e12
}

// measureAlltoall runs back-to-back MPI_Alltoalls over all nodes (with
// PPN ranks per node) and reports aggregate delivered bandwidth.
func measureAlltoall(sys System, seed uint64, n, ppn int, size int64) float64 {
	net := sys.build(seed)
	job := mpi.NewJob(net, nodeRange(n), mpi.JobOpts{PPN: ppn, Stack: mpi.MPI})
	running := true
	var round func()
	round = func() {
		if !running {
			return
		}
		job.Alltoall(size, func(sim.Time) { round() })
	}
	round()
	warm := 100 * sim.Microsecond
	meas := 400 * sim.Microsecond
	net.RunFor(warm)
	startBytes := net.BytesDelivered
	net.RunFor(meas)
	running = false
	return float64(net.BytesDelivered-startBytes) * 8 / meas.Seconds() / 1e12
}

// Result converts the measurement to the uniform structured form.
func (r Fig6Result) Result() *results.Result {
	res := &results.Result{}
	res.AddTable("peaks", "metric", "Tbps").
		Row(results.String("theoretical bisection"), results.Float(r.BisectionPeakTBits, 2)).
		Row(results.String("theoretical alltoall"), results.Float(r.AlltoallPeakTBits, 2))
	t := res.AddTable("points", "series", "size", "PPN", "Tbps", "peak_frac")
	for _, p := range r.Points {
		t.Row(
			results.String(p.Series), results.String(sizeName(p.Size)),
			results.Int(int64(p.PPN)), results.Float(p.TBits, 3),
			results.Float(p.PeakFrc, 2),
		)
	}
	return res
}

func (r Fig6Result) String() string { return results.TextString(r.Result()) }
