package harness

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/results"
)

// Experiment is one named, registered paper experiment. Run executes it
// at the given scale and returns the uniform structured result; the
// registry wrapper stamps metadata (name, description, wall time) so Run
// implementations only fill the payload and the effective scale.
type Experiment struct {
	// Name is the registry key, e.g. "fig6".
	Name string
	// Desc is a one-line description shown by `slingshot-sim list`.
	Desc string
	// DefaultOptions are the experiment's default scale knobs; zero
	// fields of the options passed to Run are filled from here before
	// the experiment sees them.
	DefaultOptions Options
	// Prepare, when set, adjusts the raw options before defaults are
	// merged — it is the only hook that can still distinguish "field
	// not specified" (zero) from an explicit value.
	Prepare func(Options) Options
	// Run executes the experiment.
	Run func(Options) (*results.Result, error)
}

var registry = map[string]*Experiment{} //simlint:shared -- written only by init-time Register (panics on duplicates); read-only once main starts

// Register adds an experiment to the registry. It panics on a duplicate
// or empty name — registration happens in init functions, so both are
// programming errors. The registered Run is wrapped to stamp result
// metadata and wall time.
func Register(e Experiment) {
	if e.Name == "" {
		panic("harness: Register with empty experiment name")
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %q", e.Name))
	}
	run := e.Run
	if run == nil {
		panic(fmt.Sprintf("harness: experiment %q has no Run", e.Name))
	}
	name, desc := e.Name, e.Desc
	prepare, defaults := e.Prepare, e.DefaultOptions
	e.Run = func(opt Options) (*results.Result, error) {
		if prepare != nil {
			opt = prepare(opt)
		}
		opt = opt.withDefaults(defaults)
		start := wallClock.Now()
		res, err := run(opt)
		if err != nil {
			return nil, err
		}
		res.Meta.Experiment = name
		if res.Meta.Desc == "" {
			res.Meta.Desc = desc
		}
		res.Meta.Seed = opt.Seed
		res.Meta.Nodes = opt.Nodes
		res.Meta.PPN = opt.PPN
		res.Meta.Wall = wallClock.Now().Sub(start)
		return res, nil
	}
	registry[e.Name] = &e
}

// Lookup returns the named experiment, or nil when unknown.
func Lookup(name string) *Experiment {
	return registry[name]
}

// All returns every registered experiment in natural name order
// (fig2 before fig10).
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, ni := splitNum(out[i].Name)
		pj, nj := splitNum(out[j].Name)
		if pi != pj {
			return pi < pj
		}
		if ni != nj {
			return ni < nj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// splitNum splits a trailing integer off a name for natural ordering.
func splitNum(name string) (string, int) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) {
		return name, -1
	}
	n, _ := strconv.Atoi(name[i:])
	return name[:i], n
}
