package harness

import (
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/results"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var fig12Defaults = Options{Nodes: 32, MinIters: 6, MaxIters: 16}

func init() {
	Register(Experiment{
		Name:           "fig12",
		Desc:           "bursty incast aggressor impact over burst size x gap heatmaps",
		DefaultOptions: fig12Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig12Bursty(opt, nil, nil, nil).Result(), nil
		},
	})
}

// Fig12Cell is one element of a Fig. 12 heatmap: the congestion impact of a
// bursty incast aggressor on a 128 B MPI_Alltoall victim.
type Fig12Cell struct {
	MsgBytes  int64
	BurstSize int
	GapUS     int64 // gap between bursts, microseconds
	Impact    float64
}

// Fig12Result reproduces Fig. 12: one heatmap per aggressor message size,
// over burst size x burst gap, on Malbec with an interleaved 50/50 split.
type Fig12Result struct {
	Cells []Fig12Cell
}

// Paper grids (log scale 1 .. 1e6). The two largest burst sizes behave
// identically to persistent congestion, so reduced-scale runs use a
// truncated axis by default.
var (
	Fig12MsgSizes   = [...]int64{16 * 1024, 128 * 1024, 1 << 20}
	Fig12BurstSizes = [...]int{1, 100, 10000, 1000000}
	Fig12GapsUS     = [...]int64{1, 100, 10000, 1000000}
)

// Fig12Bursty runs the grid. With opt.MaxIters small this is the heaviest
// experiment after Fig. 9; tests use 2x2 sub-grids. Cells get their seeds
// assigned in grid order up front and run in parallel across opt.Jobs.
func Fig12Bursty(opt Options, msgSizes []int64, bursts []int, gapsUS []int64) Fig12Result {
	opt = opt.withDefaults(fig12Defaults)
	if msgSizes == nil {
		msgSizes = Fig12MsgSizes[:]
	}
	if bursts == nil {
		bursts = Fig12BurstSizes[:]
	}
	if gapsUS == nil {
		gapsUS = Fig12GapsUS[:]
	}
	sys := Malbec(opt.Nodes * 2)
	sys.Domains = opt.Domains
	sys.Fidelity = opt.fidelity()
	victim := BenchVictim(workloads.AlltoallBench(128))
	type cellSpec struct {
		msg   int64
		burst int
		gap   int64
		seed  uint64
	}
	var specs []cellSpec
	seed := opt.Seed
	for _, msg := range msgSizes {
		for _, burst := range bursts {
			for _, gap := range gapsUS {
				seed++
				specs = append(specs, cellSpec{msg, burst, gap, seed})
			}
		}
	}
	cells := parallelMap(opt.gridJobs(), specs, func(c cellSpec) Fig12Cell {
		net := sys.build(c.seed)
		rng := sim.NewRNG(c.seed ^ 0xbeef)
		vNodes, aNodes := placement.Split(opt.Nodes, opt.Nodes/2,
			placement.Interleaved, nil)
		vjob := mpi.NewJob(net, vNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 1})
		iso := stats.NewSample(opt.MaxIters)
		measureVictim(iso, vjob, victim, rng.Split(), opt.MinIters, opt.MaxIters)

		ajob := mpi.NewJob(net, aNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 2})
		agg := workloads.StartBurstyIncast(ajob, c.msg, c.burst,
			sim.Time(c.gap)*sim.Microsecond)
		net.RunFor(200 * sim.Microsecond)
		cong := stats.NewSample(opt.MaxIters)
		measureVictim(cong, vjob, victim, rng.Split(), opt.MinIters, opt.MaxIters)
		agg.Stop()

		return Fig12Cell{
			MsgBytes: c.msg, BurstSize: c.burst, GapUS: c.gap,
			Impact: stats.CongestionImpact(iso.Mean(), cong.Mean()),
		}
	})
	return Fig12Result{Cells: cells}
}

// MaxImpact returns the worst impact per aggressor message size (the paper
// reports ~1.1 at 16 KiB, ~1.21 at 128 KiB, 1.00 at 1 MiB).
func (r Fig12Result) MaxImpact() map[int64]float64 {
	out := map[int64]float64{}
	for _, c := range r.Cells {
		if c.Impact > out[c.MsgBytes] {
			out[c.MsgBytes] = c.Impact
		}
	}
	return out
}

// Result converts the grid to the uniform structured form.
func (r Fig12Result) Result() *results.Result {
	res := &results.Result{}
	t := res.AddTable("bursty", "aggr_msg", "burst_size", "gap_us", "impact")
	for _, c := range r.Cells {
		t.Row(
			results.String(sizeName(c.MsgBytes)), results.Int(int64(c.BurstSize)),
			results.Int(c.GapUS), results.Float(c.Impact, 2),
		)
	}
	return res
}

func (r Fig12Result) String() string { return results.TextString(r.Result()) }
