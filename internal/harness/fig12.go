package harness

import (
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig12Cell is one element of a Fig. 12 heatmap: the congestion impact of a
// bursty incast aggressor on a 128 B MPI_Alltoall victim.
type Fig12Cell struct {
	MsgBytes  int64
	BurstSize int
	GapUS     int64 // gap between bursts, microseconds
	Impact    float64
}

// Fig12Result reproduces Fig. 12: one heatmap per aggressor message size,
// over burst size x burst gap, on Malbec with an interleaved 50/50 split.
type Fig12Result struct {
	Cells []Fig12Cell
}

// Paper grids (log scale 1 .. 1e6). The two largest burst sizes behave
// identically to persistent congestion, so reduced-scale runs use a
// truncated axis by default.
var (
	Fig12MsgSizes   = []int64{16 * 1024, 128 * 1024, 1 << 20}
	Fig12BurstSizes = []int{1, 100, 10000, 1000000}
	Fig12GapsUS     = []int64{1, 100, 10000, 1000000}
)

// Fig12Bursty runs the grid. With opt.MaxIters small this is the heaviest
// experiment after Fig. 9; tests use 2x2 sub-grids.
func Fig12Bursty(opt Options, msgSizes []int64, bursts []int, gapsUS []int64) Fig12Result {
	opt = opt.withDefaults(32, 6, 16)
	if msgSizes == nil {
		msgSizes = Fig12MsgSizes
	}
	if bursts == nil {
		bursts = Fig12BurstSizes
	}
	if gapsUS == nil {
		gapsUS = Fig12GapsUS
	}
	sys := Malbec(opt.Nodes * 2)
	victim := BenchVictim(workloads.AlltoallBench(128))
	var res Fig12Result
	seed := opt.Seed
	for _, msg := range msgSizes {
		for _, burst := range bursts {
			for _, gap := range gapsUS {
				seed++
				net := sys.build(seed)
				rng := sim.NewRNG(seed ^ 0xbeef)
				vNodes, aNodes := placement.Split(opt.Nodes, opt.Nodes/2,
					placement.Interleaved, nil)
				vjob := mpi.NewJob(net, vNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 1})
				iso := measureVictim(vjob, victim, rng.Split(), opt.MinIters, opt.MaxIters)

				ajob := mpi.NewJob(net, aNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 2})
				agg := workloads.StartBurstyIncast(ajob, msg, burst,
					sim.Time(gap)*sim.Microsecond)
				net.RunFor(200 * sim.Microsecond)
				cong := measureVictim(vjob, victim, rng.Split(), opt.MinIters, opt.MaxIters)
				agg.Stop()

				res.Cells = append(res.Cells, Fig12Cell{
					MsgBytes: msg, BurstSize: burst, GapUS: gap,
					Impact: stats.CongestionImpact(iso.Mean(), cong.Mean()),
				})
			}
		}
	}
	return res
}

// MaxImpact returns the worst impact per aggressor message size (the paper
// reports ~1.1 at 16 KiB, ~1.21 at 128 KiB, 1.00 at 1 MiB).
func (r Fig12Result) MaxImpact() map[int64]float64 {
	out := map[int64]float64{}
	for _, c := range r.Cells {
		if c.Impact > out[c.MsgBytes] {
			out[c.MsgBytes] = c.Impact
		}
	}
	return out
}

func (r Fig12Result) String() string {
	var b strings.Builder
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			sizeName(c.MsgBytes),
			fmt.Sprintf("%d", c.BurstSize),
			fmt.Sprintf("%d", c.GapUS),
			f2(c.Impact),
		})
	}
	fmt.Fprint(&b, table([]string{"aggr msg", "burst size", "gap (us)", "impact"}, rows))
	return b.String()
}
