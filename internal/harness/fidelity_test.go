package harness

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fidelityNet builds one of the topo-compare systems at the given
// fidelity — the exact construction path RunGrid cells use, so the
// calibration measured here is the calibration the grids get.
func fidelityNet(t *testing.T, topoName, fid string, machineNodes int, seed uint64) *fabric.Network {
	t.Helper()
	sys, err := topoSystem(topoName, machineNodes)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fabric.ParseFidelity(fid)
	if err != nil {
		t.Fatal(err)
	}
	sys.Fidelity = f
	return sys.build(seed)
}

// xferTime measures the completion time of one bulk transfer.
func xferTime(net *fabric.Network, src, dst topology.NodeID, bytes int64) sim.Time {
	start := net.Now()
	fin := false
	var doneAt sim.Time
	net.Send(src, dst, bytes, fabric.SendOpts{
		Bulk: true,
		OnDelivered: func(at sim.Time) {
			fin = true
			doneAt = at
		},
	})
	net.RunWhile(func() bool { return !fin })
	return doneAt - start
}

// bisectTime measures the completion of `pairs` simultaneous bulk
// transfers across the machine's bisection (fig6's pattern: sources
// strided over the whole first half so every switch participates, each
// sending to its image in the second half) — the aggregate-bandwidth
// scenario where fair sharing across contended links decides the answer.
// Striding matters for fidelity: packing all sources onto one switch
// would make the experiment measure adaptive routing's non-minimal
// escape paths, which the minimal-path fluid model deliberately does not
// have (victim-style hotspots run packet-level in hybrid mode instead).
func bisectTime(net *fabric.Network, pairs int, bytes int64) sim.Time {
	n := net.Topo.Nodes()
	half := n / 2
	if pairs > half {
		pairs = half
	}
	stride := half / pairs
	start := net.Now()
	left := pairs
	var last sim.Time
	for i := 0; i < pairs; i++ {
		net.Send(topology.NodeID(i*stride), topology.NodeID(half+i*stride), bytes, fabric.SendOpts{
			Bulk: true,
			OnDelivered: func(at sim.Time) {
				left--
				if at > last {
					last = at
				}
			},
		})
	}
	net.RunWhile(func() bool { return left > 0 })
	return last - start
}

// relErr is |got-want| / want.
func relErr(got, want sim.Time) float64 {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

// TestFlowCalibrationAcrossTopologies is the acceptance gate of the
// hybrid-fidelity design: on every topology backend, flow-level
// completion times must land within the asserted relative error of the
// packet engine for both fig2-shaped (single point-to-point transfer)
// and fig6-shaped (simultaneous bisection transfers) scenarios. The
// bounds are deliberately tight — they are what makes the 50x-faster
// fluid path trustworthy, and any fidelity.go latency-model regression
// fails here before it skews a grid.
func TestFlowCalibrationAcrossTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep runs packet-level bulk transfers")
	}
	cases := []struct {
		topo  string
		bytes int64
		pairs int // 0 = point-to-point (fig2-shaped), else bisection width (fig6-shaped)
		bound float64
	}{
		{"dragonfly", 128 << 10, 0, 0.10},
		{"dragonfly", 1 << 20, 0, 0.10},
		{"dragonfly", 8 << 20, 0, 0.10},
		{"dragonfly", 1 << 20, 4, 0.15},
		{"fattree", 128 << 10, 0, 0.10},
		{"fattree", 1 << 20, 0, 0.10},
		{"fattree", 1 << 20, 4, 0.15},
		{"hyperx", 128 << 10, 0, 0.10},
		{"hyperx", 1 << 20, 0, 0.10},
		{"hyperx", 1 << 20, 4, 0.15},
	}
	for _, tc := range cases {
		shape := "p2p"
		if tc.pairs > 0 {
			shape = fmt.Sprintf("bisect%d", tc.pairs)
		}
		t.Run(fmt.Sprintf("%s/%s/%dKiB", tc.topo, shape, tc.bytes>>10), func(t *testing.T) {
			measure := func(fid string) sim.Time {
				net := fidelityNet(t, tc.topo, fid, 32, 7)
				n := net.Topo.Nodes()
				if tc.pairs > 0 {
					return bisectTime(net, tc.pairs, tc.bytes)
				}
				return xferTime(net, 0, topology.NodeID(n/2), tc.bytes)
			}
			pkt := measure("packet")
			flw := measure("flow")
			if pkt <= 0 || flw <= 0 {
				t.Fatalf("degenerate completion times: packet %v, flow %v", pkt, flw)
			}
			if err := relErr(flw, pkt); err > tc.bound {
				t.Errorf("flow completion %v vs packet %v: relative error %.3f > bound %.2f",
					flw, pkt, err, tc.bound)
			} else {
				t.Logf("packet %v flow %v err %.3f (bound %.2f)", pkt, flw, err, tc.bound)
			}
		})
	}
}

// TestHybridVictimSlowdownOrdering pins that the §II-D victim-slowdown
// ordering the policy-compare golden asserts — ECN-style CC lets the
// incast hurt victims at least as much as Slingshot's hardware
// back-pressure does — survives the hybrid fidelity hand-off: aggressor
// bulk traffic runs flow-level while victims and CC-throttled pairs stay
// packet-level, and the contrast between the CC backends must not wash
// out.
func TestHybridVictimSlowdownOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid policy cells take ~1s")
	}
	r, err := PolicyCompare(Options{
		Nodes: 24, MinIters: 1, MaxIters: 2, Seed: 7, PPN: 4,
		Topo: "dragonfly", Routing: "adaptive", Fidelity: "hybrid",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if !c.NA && c.Impact < 1 {
				t.Errorf("%s/%s/%s %s: impact %v below 1",
					row.Topo, row.Routing, row.CC, c.Victim, c.Impact)
			}
		}
	}
	max := r.MaxByCC()
	for _, cc := range []string{"slingshot", "ecn"} {
		if max[cc] == 0 {
			t.Fatalf("no measurable cells for CC %q under hybrid fidelity", cc)
		}
	}
	if max["ecn"] < max["slingshot"] {
		t.Errorf("hybrid fidelity washed out the §II-D ordering: ECN max %.3f < Slingshot max %.3f",
			max["ecn"], max["slingshot"])
	}
}

// TestOptionsFidelityThreading: the string option reaches the built
// network, and RunCell on a flow-fidelity system still produces a
// finite, sane impact (the measurement protocol is fidelity-agnostic).
func TestOptionsFidelityThreading(t *testing.T) {
	for _, fid := range []string{"", "packet", "flow", "hybrid"} {
		opt := Options{Fidelity: fid}
		f := opt.fidelity()
		want := fid
		if want == "" {
			want = "packet"
		}
		if f.String() != want {
			t.Errorf("Options.Fidelity %q resolved to %v", fid, f)
		}
	}
	sys := Shandy(32)
	sys.Fidelity = fabric.FidelityHybrid
	if got := sys.build(3).Fidelity(); got != fabric.FidelityHybrid {
		t.Errorf("built network fidelity = %v, want hybrid", got)
	}
}
