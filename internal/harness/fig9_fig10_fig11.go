package harness

import (
	"fmt"
	"math"

	"repro/internal/placement"
	"repro/internal/results"
	"repro/internal/stats"
)

var (
	fig9Defaults  = Options{Nodes: 48, MinIters: 4, MaxIters: 10}
	fig10Defaults = Options{Nodes: 48, MinIters: 3, MaxIters: 8}
	fig11Defaults = Options{Nodes: 64, MinIters: 3, MaxIters: 8}
)

func init() {
	Register(Experiment{
		Name:           "fig9",
		Desc:           "congestion-impact heatmap: victims vs (system, aggressor, split)",
		DefaultOptions: fig9Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig9Heatmap(opt, opt.Victims).Result(), nil
		},
	})
	Register(Experiment{
		Name:           "fig10",
		Desc:           "impact distributions across allocation policies (panels A/B/C)",
		DefaultOptions: fig10Defaults,
		// The paper's panel variants: B raises aggressor PPN (24 at
		// paper scale, 4 reduced), C shrinks the machine. Applied to
		// the raw options so an explicitly requested scale wins.
		Prepare: func(opt Options) Options {
			switch opt.Panel {
			case "B":
				if opt.PPN <= 1 {
					opt.PPN = 4
				}
			case "C":
				if opt.Nodes == 0 {
					opt.Nodes = 24
				}
			}
			return opt
		},
		Run: func(opt Options) (*results.Result, error) {
			return Fig10Distributions(opt, opt.Victims, opt.Panel).Result(), nil
		},
	})
	Register(Experiment{
		Name:           "fig11",
		Desc:           "full-system application heatmap under congestion (random allocation)",
		DefaultOptions: fig11Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig11FullScale(opt).Result(), nil
		},
	})
}

// Fig9Result is the congestion-impact heatmap of Fig. 9: victims as
// columns; (system, aggressor, split) as rows.
type Fig9Result struct {
	Columns []string
	Rows    []Fig9RowResult
}

// Fig9RowResult is one heatmap row.
type Fig9RowResult struct {
	System    string
	Aggressor string
	AggrFrac  float64
	Cells     []CellResult
}

// Fig9Splits are the paper's victim/aggressor splits: ~90/10, ~50/50,
// ~10/90 (chosen so victims run at even, power-of-two and odd node
// counts).
var Fig9Splits = [...]float64{0.9, 0.5, 0.1}

// Fig9Heatmap runs the Fig. 9 grid on both systems with linear allocation.
// The paper runs 512-node experiments on 698- and 1024-node machines; the
// same headroom ratio is kept here so a linear split cannot align the two
// jobs onto disjoint Dragonfly groups (which would eliminate the
// interference the experiment studies).
func Fig9Heatmap(opt Options, set VictimSet) Fig9Result {
	opt = opt.withDefaults(fig9Defaults)
	return congestionGrid(opt, Victims(set), placement.Linear, gridSystems(opt.Nodes), Fig9Splits[:])
}

// gridSystems builds the Aries and Slingshot machines with the paper's
// machine-size/experiment-size headroom (698/512 and 1024/512).
func gridSystems(nodes int) []System {
	return []System{Crystal(nodes * 3 / 2), Shandy(nodes * 2)}
}

// congestionGrid builds every cell of a heatmap up front — assigning each
// its seed in row-major order, exactly as the sequential runner did — and
// fans the independent cells out over RunGrid's worker pool.
func congestionGrid(opt Options, victims []Victim, alloc placement.Policy, systems []System, splits []float64) Fig9Result {
	res := Fig9Result{}
	for _, v := range victims {
		res.Columns = append(res.Columns, v.Label)
	}
	var points []GridPoint
	seed := opt.Seed
	for _, sys := range systems {
		sys.Domains = opt.Domains
		sys.Fidelity = opt.fidelity()
		for _, kind := range []AggressorKind{AlltoallAggressor, IncastAggressor} {
			for _, vf := range splits {
				res.Rows = append(res.Rows, Fig9RowResult{
					System:    sys.Name,
					Aggressor: kind.String(),
					AggrFrac:  aggrFrac(vf),
				})
				for _, v := range victims {
					seed++
					points = append(points, GridPoint{
						Spec: CellSpec{
							Sys:        sys,
							TotalNodes: opt.Nodes,
							VictimFrac: vf,
							Aggressor:  kind,
							Alloc:      alloc,
							AggrPPN:    opt.PPN,
							Seed:       seed,
							MinIters:   opt.MinIters,
							MaxIters:   opt.MaxIters,
						},
						Victim: v,
					})
				}
			}
		}
	}
	cells := RunGrid(points, opt.gridJobs())
	for i := range res.Rows {
		res.Rows[i].Cells = cells[i*len(victims) : (i+1)*len(victims)]
	}
	return res
}

// Max returns the largest impact per system, the paper's headline numbers
// (worst case 93x on Aries vs 1.3x on Slingshot in Fig. 9).
func (r Fig9Result) Max() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if !c.NA && c.Impact > out[row.System] {
				out[row.System] = c.Impact
			}
		}
	}
	return out
}

// Result converts the heatmap to the uniform structured form: one table
// with a column per victim.
func (r Fig9Result) Result() *results.Result {
	res := &results.Result{}
	cols := append([]string{"system", "aggressor", "aggr_frac"}, r.Columns...)
	t := res.AddTable("heatmap", cols...)
	for _, row := range r.Rows {
		cells := []results.Value{
			results.String(row.System), results.String(row.Aggressor),
			results.Float(row.AggrFrac, 2),
		}
		for _, c := range row.Cells {
			if c.NA {
				cells = append(cells, results.NA())
			} else {
				cells = append(cells, results.Float(c.Impact, 1))
			}
		}
		t.Row(cells...)
	}
	return res
}

func (r Fig9Result) String() string { return results.TextString(r.Result()) }

// Fig10Variant is one panel of Fig. 10: the distribution of all heatmap
// elements for a given allocation policy.
type Fig10Variant struct {
	System string
	Alloc  placement.Policy
	// Impacts is the distribution of congestion impacts across all
	// victim/aggressor combinations.
	Impacts *stats.Sample
	Max     float64
}

// Fig10Result reproduces Fig. 10's three panels (A: allocations at 1 PPN,
// B: aggressor at high PPN, C: reduced node count).
type Fig10Result struct {
	Panel    string
	Variants []Fig10Variant
}

// Fig10Distributions runs one Fig. 10 panel. ppn is the aggressor PPN
// (panel B uses 24 in the paper); nodes the total node count (panel C
// shrinks it).
func Fig10Distributions(opt Options, set VictimSet, panel string) Fig10Result {
	opt = opt.withDefaults(fig10Defaults)
	res := Fig10Result{Panel: panel}
	for _, sys := range gridSystems(opt.Nodes) {
		for _, alloc := range []placement.Policy{placement.Linear, placement.Interleaved, placement.Random} {
			grid := congestionGrid(opt, Victims(set), alloc, []System{sys}, Fig9Splits[:])
			sample := stats.NewSample(64)
			max := 0.0
			for _, row := range grid.Rows {
				for _, c := range row.Cells {
					if c.NA || math.IsNaN(c.Impact) {
						continue
					}
					sample.Add(c.Impact)
					if c.Impact > max {
						max = c.Impact
					}
				}
			}
			res.Variants = append(res.Variants, Fig10Variant{
				System: sys.Name, Alloc: alloc, Impacts: sample, Max: max,
			})
		}
	}
	return res
}

// Result converts the panel to the uniform structured form.
func (r Fig10Result) Result() *results.Result {
	res := &results.Result{}
	t := res.AddTable(fmt.Sprintf("panel %s", r.Panel),
		"system", "allocation", "median_C", "p95_C", "max_C")
	for _, v := range r.Variants {
		t.Row(
			results.String(v.System), results.String(v.Alloc.String()),
			results.Float(v.Impacts.Median(), 2), results.Float(v.Impacts.Percentile(95), 2),
			results.Float(v.Max, 1),
		)
	}
	return res
}

func (r Fig10Result) String() string { return results.TextString(r.Result()) }

// Fig11Result is the full-system heatmap of Fig. 11: applications under
// congestion using all nodes of Shandy, random allocation, with N.A.
// entries where MILC/HPCG cannot run (non-power-of-two victim node count).
type Fig11Result struct {
	Columns []string
	Rows    []Fig9RowResult
}

// Fig11Splits are the aggressor fractions of Fig. 11.
var Fig11Splits = [...]float64{0.75, 0.5, 0.25} // victim fractions

// Fig11FullScale runs the application victims at the largest configured
// scale with random allocation (the paper: that is the allocation
// generating the most congestion).
func Fig11FullScale(opt Options) Fig11Result {
	opt = opt.withDefaults(fig11Defaults)
	grid := congestionGrid(opt, Victims(VictimsApps), placement.Random,
		[]System{Shandy(opt.Nodes)}, Fig11Splits[:])
	return Fig11Result{Columns: grid.Columns, Rows: grid.Rows}
}

// Result converts the heatmap to the uniform structured form.
func (r Fig11Result) Result() *results.Result {
	return Fig9Result{Columns: r.Columns, Rows: r.Rows}.Result()
}

func (r Fig11Result) String() string { return results.TextString(r.Result()) }
