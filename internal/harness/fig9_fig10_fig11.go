package harness

import (
	"fmt"
	"math"

	"repro/internal/placement"
	"repro/internal/stats"
)

// Fig9Result is the congestion-impact heatmap of Fig. 9: victims as
// columns; (system, aggressor, split) as rows.
type Fig9Result struct {
	Columns []string
	Rows    []Fig9RowResult
}

// Fig9RowResult is one heatmap row.
type Fig9RowResult struct {
	System    string
	Aggressor string
	AggrFrac  float64
	Cells     []CellResult
}

// Fig9Splits are the paper's victim/aggressor splits: ~90/10, ~50/50,
// ~10/90 (chosen so victims run at even, power-of-two and odd node
// counts).
var Fig9Splits = []float64{0.9, 0.5, 0.1}

// Fig9Heatmap runs the Fig. 9 grid on both systems with linear allocation.
// The paper runs 512-node experiments on 698- and 1024-node machines; the
// same headroom ratio is kept here so a linear split cannot align the two
// jobs onto disjoint Dragonfly groups (which would eliminate the
// interference the experiment studies).
func Fig9Heatmap(opt Options, set VictimSet) Fig9Result {
	opt = opt.withDefaults(48, 4, 10)
	return congestionGrid(opt, set, placement.Linear, gridSystems(opt.Nodes), Fig9Splits)
}

// gridSystems builds the Aries and Slingshot machines with the paper's
// machine-size/experiment-size headroom (698/512 and 1024/512).
func gridSystems(nodes int) []System {
	return []System{Crystal(nodes * 3 / 2), Shandy(nodes * 2)}
}

func congestionGrid(opt Options, set VictimSet, alloc placement.Policy, systems []System, splits []float64) Fig9Result {
	victims := Victims(set)
	res := Fig9Result{}
	for _, v := range victims {
		res.Columns = append(res.Columns, v.Label)
	}
	seed := opt.Seed
	for _, sys := range systems {
		for _, kind := range []AggressorKind{AlltoallAggressor, IncastAggressor} {
			for _, vf := range splits {
				row := Fig9RowResult{
					System:    sys.Name,
					Aggressor: kind.String(),
					AggrFrac:  1 - vf,
				}
				for _, v := range victims {
					seed++
					row.Cells = append(row.Cells, RunCell(CellSpec{
						Sys:        sys,
						TotalNodes: opt.Nodes,
						VictimFrac: vf,
						Aggressor:  kind,
						Alloc:      alloc,
						AggrPPN:    opt.PPN,
						Seed:       seed,
						MinIters:   opt.MinIters,
						MaxIters:   opt.MaxIters,
					}, v))
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res
}

// Max returns the largest impact per system, the paper's headline numbers
// (worst case 93x on Aries vs 1.3x on Slingshot in Fig. 9).
func (r Fig9Result) Max() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if !c.NA && c.Impact > out[row.System] {
				out[row.System] = c.Impact
			}
		}
	}
	return out
}

func (r Fig9Result) String() string {
	header := append([]string{"system", "aggressor", "aggr%"}, r.Columns...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.System, row.Aggressor, fmt.Sprintf("%.0f%%", row.AggrFrac*100)}
		for _, c := range row.Cells {
			if c.NA {
				cells = append(cells, "N.A.")
			} else {
				cells = append(cells, f1(c.Impact))
			}
		}
		rows = append(rows, cells)
	}
	return table(header, rows)
}

// Fig10Variant is one panel of Fig. 10: the distribution of all heatmap
// elements for a given allocation policy.
type Fig10Variant struct {
	System string
	Alloc  placement.Policy
	// Impacts is the distribution of congestion impacts across all
	// victim/aggressor combinations.
	Impacts *stats.Sample
	Max     float64
}

// Fig10Result reproduces Fig. 10's three panels (A: allocations at 1 PPN,
// B: aggressor at high PPN, C: reduced node count).
type Fig10Result struct {
	Panel    string
	Variants []Fig10Variant
}

// Fig10Distributions runs one Fig. 10 panel. ppn is the aggressor PPN
// (panel B uses 24 in the paper); nodes the total node count (panel C
// shrinks it).
func Fig10Distributions(opt Options, set VictimSet, panel string) Fig10Result {
	opt = opt.withDefaults(48, 3, 8)
	res := Fig10Result{Panel: panel}
	for _, sys := range gridSystems(opt.Nodes) {
		for _, alloc := range []placement.Policy{placement.Linear, placement.Interleaved, placement.Random} {
			grid := congestionGrid(opt, set, alloc, []System{sys}, Fig9Splits)
			sample := stats.NewSample(64)
			max := 0.0
			for _, row := range grid.Rows {
				for _, c := range row.Cells {
					if c.NA || math.IsNaN(c.Impact) {
						continue
					}
					sample.Add(c.Impact)
					if c.Impact > max {
						max = c.Impact
					}
				}
			}
			res.Variants = append(res.Variants, Fig10Variant{
				System: sys.Name, Alloc: alloc, Impacts: sample, Max: max,
			})
		}
	}
	return res
}

func (r Fig10Result) String() string {
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		rows = append(rows, []string{
			v.System, v.Alloc.String(),
			f2(v.Impacts.Median()), f2(v.Impacts.Percentile(95)), f1(v.Max),
		})
	}
	return fmt.Sprintf("Fig. 10 panel %s\n%s", r.Panel,
		table([]string{"system", "allocation", "median C", "p95 C", "max C"}, rows))
}

// Fig11Result is the full-system heatmap of Fig. 11: applications under
// congestion using all nodes of Shandy, random allocation, with N.A.
// entries where MILC/HPCG cannot run (non-power-of-two victim node count).
type Fig11Result struct {
	Columns []string
	Rows    []Fig9RowResult
}

// Fig11Splits are the aggressor fractions of Fig. 11.
var Fig11Splits = []float64{0.75, 0.5, 0.25} // victim fractions

// Fig11FullScale runs the application victims at the largest configured
// scale with random allocation (the paper: that is the allocation
// generating the most congestion).
func Fig11FullScale(opt Options) Fig11Result {
	opt = opt.withDefaults(64, 3, 8)
	grid := congestionGrid(opt, VictimsApps, placement.Random,
		[]System{Shandy(opt.Nodes)}, Fig11Splits)
	return Fig11Result{Columns: grid.Columns, Rows: grid.Rows}
}

func (r Fig11Result) String() string {
	return Fig9Result{Columns: r.Columns, Rows: r.Rows}.String()
}
