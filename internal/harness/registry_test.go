package harness

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/results"
	"repro/internal/workloads"
)

// paperExperiments is every figure of the paper's evaluation in
// presentation order, followed by the repo's own cross-backend sweep.
var paperExperiments = []string{
	"fig2", "fig4", "fig5", "fig6", "fig8",
	"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
	"policy-compare", "topo-compare",
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	var names []string
	for _, e := range all {
		names = append(names, e.Name)
	}
	if !reflect.DeepEqual(names, paperExperiments) {
		t.Errorf("All() = %v, want %v", names, paperExperiments)
	}
	for _, e := range all {
		if e.Desc == "" {
			t.Errorf("%s has no description", e.Name)
		}
		if e.DefaultOptions.Nodes == 0 {
			t.Errorf("%s has no default node count", e.Name)
		}
	}
	if Lookup("fig6") == nil {
		t.Error("Lookup(fig6) = nil")
	}
	if Lookup("nope") != nil {
		t.Error("Lookup(nope) should be nil")
	}
}

// tinyOptions returns per-experiment scales small enough that the whole
// registry round-trips in seconds.
func tinyOptions() map[string]Options {
	return map[string]Options{
		"fig2":           {Nodes: 16, MaxIters: 50, Seed: 7},
		"fig4":           {Nodes: 16, MaxIters: 3, Seed: 7},
		"fig5":           {Nodes: 16, MaxIters: 2, Seed: 7},
		"fig6":           {Nodes: 32, Seed: 7},
		"fig8":           {Nodes: 32, MaxIters: 5, Seed: 7},
		"fig9":           {Nodes: 24, MinIters: 1, MaxIters: 2, Victims: VictimsApps, Seed: 7},
		"fig10":          {Nodes: 16, MinIters: 1, MaxIters: 2, Victims: VictimsApps, Seed: 7},
		"fig11":          {Nodes: 24, MinIters: 1, MaxIters: 2, Seed: 7},
		"fig12":          {Nodes: 16, MinIters: 1, MaxIters: 2, Seed: 7},
		"fig13":          {Nodes: 16, Seed: 7},
		"fig14":          {Nodes: 16, Seed: 7},
		"topo-compare":   {Nodes: 16, MinIters: 1, MaxIters: 2, Seed: 7},
		"policy-compare": {Nodes: 16, MinIters: 1, MaxIters: 1, Seed: 7},
	}
}

// TestRegistryRoundTrip runs every registered experiment at tiny scale
// and asserts it returns a well-formed structured result that all three
// encoders accept.
func TestRegistryRoundTrip(t *testing.T) {
	tiny := tinyOptions()
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			opt, ok := tiny[e.Name]
			if !ok {
				t.Fatalf("no tiny options for %s — add it to tinyOptions", e.Name)
			}
			res, err := e.Run(opt)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Meta.Experiment != e.Name {
				t.Errorf("meta experiment = %q, want %q", res.Meta.Experiment, e.Name)
			}
			if res.Meta.Seed != 7 {
				t.Errorf("meta seed = %d, want 7", res.Meta.Seed)
			}
			if res.Meta.Nodes == 0 {
				t.Error("meta nodes not stamped")
			}
			if res.Meta.Wall <= 0 {
				t.Error("meta wall time not stamped")
			}
			if err := res.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			for _, format := range results.Formats() {
				enc, err := results.NewEncoder(format)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := enc.Encode(&buf, res); err != nil {
					t.Errorf("%s encode: %v", format, err)
				}
				if buf.Len() == 0 {
					t.Errorf("%s encode produced no output", format)
				}
			}
		})
	}
}

// TestRunGridJobsDeterminism asserts the acceptance criterion that a
// worker pool of any width produces byte-identical results: the same
// grid at -jobs 1 and -jobs 8 must match exactly, both as raw cells and
// as encoded JSON.
func TestRunGridJobsDeterminism(t *testing.T) {
	points := gridPointsFixture()
	serial := RunGrid(points, 1)
	parallel := RunGrid(points, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !cellsEqual(serial[i], parallel[i]) {
			t.Fatalf("cell %d differs between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
				i, serial[i], parallel[i])
		}
	}

	run := func(jobs int) []byte {
		res, err := Lookup("fig9").Run(Options{
			Nodes: 24, MinIters: 1, MaxIters: 2,
			Victims: VictimsApps, Seed: 7, Jobs: jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Meta.Wall = 0 // host timing is the only nondeterministic field
		enc, _ := results.NewEncoder("json")
		var buf bytes.Buffer
		if err := enc.Encode(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(1), run(8); !bytes.Equal(a, b) {
		t.Error("fig9 JSON differs between -jobs 1 and -jobs 8")
	}
}

// cellsEqual is exact equality with NaN impacts (N.A. cells) treated as
// equal — reflect.DeepEqual would reject NaN == NaN.
func cellsEqual(a, b CellResult) bool {
	impactsMatch := a.Impact == b.Impact || (math.IsNaN(a.Impact) && math.IsNaN(b.Impact))
	return a.Victim == b.Victim && a.Aggressor == b.Aggressor &&
		a.Frac == b.Frac && a.NA == b.NA && impactsMatch &&
		a.Isolated == b.Isolated && a.Congested == b.Congested
}

func gridPointsFixture() []GridPoint {
	var points []GridPoint
	seed := uint64(20)
	for _, vf := range []float64{0.9, 0.5} {
		for _, v := range []Victim{
			BenchVictim(workloads.BarrierBench()),
			BenchVictim(workloads.AllreduceBench(8)),
			AppVictim(workloads.MILC()),
		} {
			seed++
			points = append(points, GridPoint{
				Spec: CellSpec{
					Sys: Shandy(32), TotalNodes: 24, VictimFrac: vf,
					Aggressor: IncastAggressor, AggrPPN: 1, Seed: seed,
					MinIters: 2, MaxIters: 3,
				},
				Victim: v,
			})
		}
	}
	return points
}

func TestWithDefaultsClampsMinIters(t *testing.T) {
	// -iters below an experiment's default MinIters must clamp the
	// minimum rather than disabling the convergence break.
	o := Options{MaxIters: 5}.withDefaults(fig2Defaults)
	if o.MinIters != 5 {
		t.Errorf("MinIters = %d, want clamped to 5", o.MinIters)
	}
	if o.MaxIters != 5 {
		t.Errorf("MaxIters = %d, want 5", o.MaxIters)
	}
	o = Options{MinIters: 3, MaxIters: 10}.withDefaults(fig2Defaults)
	if o.MinIters != 3 || o.MaxIters != 10 {
		t.Errorf("explicit range mangled: %+v", o)
	}
	if o.Jobs <= 0 {
		t.Errorf("Jobs = %d, want defaulted positive", o.Jobs)
	}
	if o.Panel != "A" {
		t.Errorf("Panel = %q, want A", o.Panel)
	}
}

func TestFig10PanelCKeepsExplicitNodes(t *testing.T) {
	// Panel C shrinks the machine only when -nodes was not given: an
	// explicit node count must win over the panel default.
	e := Lookup("fig10")
	opt := e.Prepare(Options{Panel: "C"})
	if opt.Nodes != 24 {
		t.Errorf("panel C default nodes = %d, want 24", opt.Nodes)
	}
	opt = e.Prepare(Options{Panel: "C", Nodes: 48})
	if opt.Nodes != 48 {
		t.Errorf("panel C with explicit -nodes 48 coerced to %d", opt.Nodes)
	}
	if opt := e.Prepare(Options{Panel: "B", PPN: 1}); opt.PPN != 4 {
		t.Errorf("panel B default PPN = %d, want 4", opt.PPN)
	}
	if opt := e.Prepare(Options{Panel: "B", PPN: 8}); opt.PPN != 8 {
		t.Errorf("panel B explicit PPN coerced to %d", opt.PPN)
	}
}
