package harness

import (
	"testing"
	"time"
)

// TestFixedClockPinsWall asserts the Clock seam works end to end: with a
// frozen clock installed, the registry wrapper stamps a zero wall
// duration, making Result meta fully deterministic (what lets goldens
// pin meta).
func TestFixedClockPinsWall(t *testing.T) {
	defer SetClock(FixedClock{T: time.Unix(1700000000, 0)})()
	res, err := Lookup("policy-compare").Run(Options{
		Nodes: 16, MinIters: 1, MaxIters: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta.Wall != 0 {
		t.Errorf("wall = %v under a fixed clock, want 0", res.Meta.Wall)
	}
}

// TestSetClockRestores asserts the restore function reinstates the
// previous clock, so tests cannot leak a frozen clock into later runs.
func TestSetClockRestores(t *testing.T) {
	before := wallClock
	restore := SetClock(FixedClock{})
	if _, ok := wallClock.(FixedClock); !ok {
		t.Fatalf("SetClock did not install the fixed clock (got %T)", wallClock)
	}
	restore()
	if wallClock != before {
		t.Errorf("restore did not reinstate the previous clock (got %T)", wallClock)
	}
}

// TestSystemClockAdvances asserts the default clock is the host clock:
// two reads straddling a sleep must differ. (The sleep is real wall
// time — this is the one test allowed to care.)
func TestSystemClockAdvances(t *testing.T) {
	c := systemClock{}
	a := c.Now()
	time.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Error("system clock did not advance")
	}
}
