package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/results"
)

// The golden tests pin the exact JSON output of a representative slice of
// experiments at a fixed seed. They are the acceptance gate for hot-path
// work: any refactor of the engine, fabric, topology, or scheduler must
// reproduce these files byte for byte (wall time excepted — it is zeroed
// before encoding). Regenerate deliberately with:
//
//	go test ./internal/harness -run TestGoldenRunJSON -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden run files")

// goldenCases cover the simulator's behavioural surface cheaply: switch
// jitter (fig2), fabric latency/bandwidth + rendezvous + boxplots (fig4),
// global-link bisection with adaptive routing (fig6), congestion control
// under aggressors (fig8, fig12), QoS traffic classes (fig13), the
// fat-tree + HyperX backends behind the Topology interface (topo-compare),
// and the routing x CC policy layers (policy-compare — all four routing
// policies and all three default CC backends on every topology).
var goldenCases = []struct {
	name string
	opt  Options
}{
	{"fig2", Options{Nodes: 32, MaxIters: 300, Seed: 7}},
	{"fig4", Options{Nodes: 32, MaxIters: 8, Seed: 7}},
	{"fig6", Options{Nodes: 32, Seed: 7}},
	{"fig8", Options{Nodes: 48, MaxIters: 6, Seed: 7}},
	{"fig12", Options{Nodes: 24, MinIters: 2, MaxIters: 3, Seed: 7}},
	{"fig13", Options{Nodes: 24, Seed: 7}},
	{"topo-compare", Options{Nodes: 24, MinIters: 1, MaxIters: 2, Seed: 7}},
	{"policy-compare", Options{Nodes: 24, MinIters: 1, MaxIters: 2, Seed: 7}},
}

func TestGoldenRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take ~10s")
	}
	// A frozen clock stamps Wall = 0, so the goldens pin Result meta —
	// wall_ns included — without post-hoc scrubbing.
	defer SetClock(FixedClock{})()
	enc, err := results.NewEncoder("json")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e := Lookup(c.name)
			if e == nil {
				t.Fatalf("experiment %q not registered", c.name)
			}
			res, err := e.Run(c.opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := enc.Encode(&buf, res); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", c.name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output diverged from golden %s (%d vs %d bytes).\n"+
					"If the change is intentional, regenerate with -update-golden.\n%s",
					c.name, path, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// firstDiff renders the first divergent region of two byte strings.
func firstDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	end := func(b []byte) int {
		if i+80 < len(b) {
			return i + 80
		}
		return len(b)
	}
	return fmt.Sprintf("first divergence at byte %d:\n got: …%s…\nwant: …%s…",
		i, got[lo:end(got)], want[lo:end(want)])
}
