package harness

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/placement"
	"repro/internal/results"
	"repro/internal/topology"
	"repro/internal/workloads"
)

var topoCompareDefaults = Options{Nodes: 32, MinIters: 2, MaxIters: 4}

func init() {
	Register(Experiment{
		Name:           "topo-compare",
		Desc:           "same victim/aggressor mix across dragonfly, fat-tree and HyperX backends",
		DefaultOptions: topoCompareDefaults,
		Run: func(opt Options) (*results.Result, error) {
			r, err := TopoCompare(opt)
			if err != nil {
				return nil, err
			}
			return r.Result(), nil
		},
	})
}

// TopoNames lists the backends topo-compare sweeps, in row order.
var TopoNames = [...]string{"dragonfly", "fattree", "hyperx"}

// topoSystem builds the comparison system for one backend at the grid's
// machine scale: the Dragonfly is Shandy with the Slingshot profile, the
// fat-tree is the paper's 100 Gb/s RoCE comparison cluster
// (FatTree100GProfile), and the HyperX runs Slingshot hardware on a
// flattened-butterfly shape — isolating the topology's contribution.
func topoSystem(name string, machineNodes int) (System, error) {
	switch name {
	case "dragonfly":
		sys := Shandy(machineNodes)
		sys.Name = "dragonfly"
		return sys, nil
	case "fattree":
		prof := fabric.FatTree100GProfile()
		return System{Name: "fattree", Builder: topology.FatTreeFor(machineNodes), Prof: prof}, nil
	case "hyperx":
		return System{Name: "hyperx", Builder: topology.HyperXFor(machineNodes), Prof: fabric.SlingshotProfile()}, nil
	}
	return System{}, fmt.Errorf("harness: unknown topology %q (want dragonfly|fattree|hyperx)", name)
}

// topoCompareVictims is the fixed victim mix every backend measures: a
// latency-bound collective, a bandwidth-bound transpose, and a stencil
// exchange — the three communication regimes the paper's grids span.
func topoCompareVictims() []Victim {
	return []Victim{
		BenchVictim(workloads.AllreduceBench(8)),
		BenchVictim(workloads.AlltoallBench(128 * 1024)),
		BenchVictim(workloads.Halo3DBench(128)),
	}
}

// TopoCompareResult is the congestion-impact heatmap with one row block
// per topology backend.
type TopoCompareResult struct {
	Grid Fig9Result
}

// TopoCompare runs the same victim/aggressor congestion grid (both
// aggressors, the Fig. 9 splits, linear allocation) across the selected
// backends via RunGrid. opt.Topo restricts the sweep to one backend; the
// default sweeps all three with the same machine-size headroom as Fig. 9.
func TopoCompare(opt Options) (TopoCompareResult, error) {
	opt = opt.withDefaults(topoCompareDefaults)
	names := TopoNames[:]
	if opt.Topo != "" {
		names = []string{opt.Topo}
	}
	systems := make([]System, 0, len(names))
	for _, name := range names {
		sys, err := topoSystem(name, opt.Nodes*2)
		if err != nil {
			return TopoCompareResult{}, err
		}
		systems = append(systems, sys)
	}
	grid := congestionGrid(opt, topoCompareVictims(), placement.Linear, systems, Fig9Splits[:])
	return TopoCompareResult{Grid: grid}, nil
}

// Result converts the heatmap to the uniform structured form (the Fig. 9
// table layout, with the topology backend in the system column).
func (r TopoCompareResult) Result() *results.Result {
	res := r.Grid.Result()
	if len(res.Tables) > 0 {
		res.Tables[0].Columns[0] = "topology"
	}
	return res
}

func (r TopoCompareResult) String() string { return results.TextString(r.Result()) }
