package harness

import (
	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/qos"
	"repro/internal/results"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workloads"
)

var (
	fig13Defaults = Options{Nodes: 32}
	fig14Defaults = Options{Nodes: 32}
)

func init() {
	Register(Experiment{
		Name:           "fig13",
		Desc:           "traffic-class isolation of a latency-critical allreduce over time",
		DefaultOptions: fig13Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig13TrafficClasses(opt).Result(), nil
		},
	})
	Register(Experiment{
		Name:           "fig14",
		Desc:           "guaranteed-minimum bandwidth split between two jobs over time",
		DefaultOptions: fig14Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig14Bandwidth(opt).Result(), nil
		},
	})
}

// qosTwoClasses builds the Fig. 13 configuration: a high-priority,
// low-bandwidth class for latency-critical collectives and a default bulk
// class — §II-E's worked example.
func qosTwoClasses() *qos.Config {
	return &qos.Config{Classes: []qos.Class{
		{Name: "bulk", DSCP: 0, Priority: 0, MinShare: 0.5, MinimalBias: 1},
		{Name: "latency", DSCP: 10, Priority: 5, MinShare: 0.1, MinimalBias: 2},
	}}
}

// qosMinBandwidth builds the Fig. 14 configuration: TC1 with a guaranteed
// 80% minimum, TC2 with 10%.
func qosMinBandwidth() *qos.Config {
	return &qos.Config{Classes: []qos.Class{
		{Name: "tc1", DSCP: 0, MinShare: 0.8, MinimalBias: 1},
		{Name: "tc2", DSCP: 20, MinShare: 0.1, MinimalBias: 1},
	}}
}

// Fig13Point is one allreduce iteration in the Fig. 13 time series.
type Fig13Point struct {
	At     sim.Time
	Impact float64
}

// Fig13Result reproduces Fig. 13: the congestion impact over time of an
// 8 B MPI_Allreduce co-executed with a 256 KiB MPI_Alltoall on a
// bandwidth-tapered Malbec, with the two jobs in the same or in separate
// traffic classes.
type Fig13Result struct {
	SameTC     []Fig13Point
	SeparateTC []Fig13Point
	// Steady-state impacts after the aggressor starts.
	SameImpact, SeparateImpact float64
}

// Fig13TrafficClasses runs both configurations (in parallel — each owns
// its network).
func Fig13TrafficClasses(opt Options) Fig13Result {
	opt = opt.withDefaults(fig13Defaults)
	type run struct {
		pts    []Fig13Point
		impact float64
	}
	runs := parallelMap(opt.gridJobs(), []bool{false, true}, func(separate bool) run {
		pts, impact := fig13Run(opt, separate)
		return run{pts, impact}
	})
	return Fig13Result{
		SameTC: runs[0].pts, SameImpact: runs[0].impact,
		SeparateTC: runs[1].pts, SeparateImpact: runs[1].impact,
	}
}

func fig13Run(opt Options, separate bool) ([]Fig13Point, float64) {
	// The experiment spans the whole (scaled) machine so the two
	// interleaved jobs genuinely share fabric links.
	sys := Malbec(opt.Nodes)
	prof := sys.Prof
	prof.Taper = 0.25 // the paper tapers Malbec to 25% to force interference
	prof.QoS = qosTwoClasses()
	latClass := 0 // same TC: both jobs in bulk
	if separate {
		latClass = 1
	}
	net := fabric.NewSharded(topology.MustNew(sys.Topo), prof, opt.Seed, opt.Domains)
	vNodes, aNodes := placement.Split(opt.Nodes, opt.Nodes/2, placement.Interleaved, nil)
	vjob := mpi.NewJob(net, vNodes, mpi.JobOpts{Stack: mpi.MPI, Class: latClass, Tag: 1})
	ajob := mpi.NewJob(net, aNodes, mpi.JobOpts{Stack: mpi.MPI, Class: 0, Tag: 2})

	// The alltoall job starts ~0.4 ms into the test (as in the paper).
	const aggrStart = 400 * sim.Microsecond
	start := &startAlltoall{job: ajob, bytes: 256 * 1024}
	net.Eng.Schedule(aggrStart, start, 0, nil)

	// Run the allreduce continuously, recording iteration durations.
	const horizon = 3 * sim.Millisecond
	var pts []Fig13Point
	baseline := stats.NewSample(64)
	after := stats.NewSample(256)
	var durs []struct {
		at  sim.Time
		dur sim.Time
	}
	for net.Now() < horizon {
		start := net.Now()
		fin := false
		vjob.Allreduce(8, func(sim.Time) { fin = true })
		net.RunWhile(func() bool { return !fin })
		if !fin {
			break
		}
		d := net.Now() - start
		durs = append(durs, struct {
			at  sim.Time
			dur sim.Time
		}{net.Now(), d})
		if net.Now() < aggrStart {
			baseline.Add(d.Microseconds())
		} else if net.Now() > aggrStart+200*sim.Microsecond {
			after.Add(d.Microseconds())
		}
	}
	if start.agg != nil {
		start.agg.Stop()
	}
	base := baseline.Mean()
	for _, d := range durs {
		pts = append(pts, Fig13Point{At: d.at, Impact: d.dur.Microseconds() / base})
	}
	return pts, after.Mean() / base
}

// startAlltoall is the delayed-aggressor-start event handler of fig13Run;
// it keeps the handle of the aggressor it launched for the wind-down.
type startAlltoall struct {
	job   *mpi.Job
	bytes int64
	agg   *workloads.Aggressor
}

func (s *startAlltoall) OnEvent(*sim.Engine, *sim.Event) {
	s.agg = workloads.StartAlltoall(s.job, s.bytes)
}

// Result converts the measurement to the uniform structured form: the
// steady-state table plus one impact-over-time series per configuration.
func (r Fig13Result) Result() *results.Result {
	res := &results.Result{}
	res.AddTable("steady-state", "configuration", "impact").
		Row(results.String("same traffic class"), results.Float(r.SameImpact, 2)).
		Row(results.String("separate traffic classes"), results.Float(r.SeparateImpact, 2))
	series := func(name string, pts []Fig13Point) results.Series {
		s := results.Series{Name: name, XUnit: "us", YUnit: "impact"}
		for _, p := range pts {
			s.Points = append(s.Points, results.Point{X: p.At.Microseconds(), Y: p.Impact})
		}
		return s
	}
	res.AddSeries(series("same-tc", r.SameTC))
	res.AddSeries(series("separate-tc", r.SeparateTC))
	return res
}

func (r Fig13Result) String() string { return results.TextString(r.Result()) }

// Fig14Series is one job's bandwidth-over-time trace.
type Fig14Series struct {
	Job     string
	Bucket  sim.Time
	GbsNode []float64 // per-node Gb/s per time bucket
}

// Fig14Result reproduces Fig. 14: two bisection-bandwidth jobs on a
// tapered system, either sharing TC1 or split across TC1 (min 80%) and
// TC2 (min 10%).
type Fig14Result struct {
	SameTC     []Fig14Series
	SeparateTC []Fig14Series
}

// Fig14Bandwidth runs both configurations (in parallel — each owns its
// network).
func Fig14Bandwidth(opt Options) Fig14Result {
	opt = opt.withDefaults(fig14Defaults)
	runs := parallelMap(opt.gridJobs(), []bool{false, true}, func(separate bool) []Fig14Series {
		return fig14Run(opt, separate)
	})
	return Fig14Result{SameTC: runs[0], SeparateTC: runs[1]}
}

func fig14Run(opt Options, separate bool) []Fig14Series {
	// Span the whole machine (see fig13Run).
	sys := Malbec(opt.Nodes)
	prof := sys.Prof
	prof.Taper = 0.25
	prof.QoS = qosMinBandwidth()
	net := fabric.NewSharded(topology.MustNew(sys.Topo), prof, opt.Seed, opt.Domains)

	half := opt.Nodes / 2
	j1Nodes, j2Nodes := placement.Split(opt.Nodes, half, placement.Interleaved, nil)
	class2 := 0
	if separate {
		class2 = 1
	}

	const (
		bucket   = 100 * sim.Microsecond
		buckets  = 40
		j2Start  = 900 * sim.Microsecond // paper: job 2 starts at 0.9 ms
		j1End    = 2500 * sim.Microsecond
		msgBytes = 64 * 1024
		window   = 8
	)
	perJob := [2][]float64{}
	perJob[0] = make([]float64, buckets)
	perJob[1] = make([]float64, buckets)
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, at sim.Time) {
		b := int(at / bucket)
		if b < 0 || b >= buckets {
			return
		}
		tag := p.Msg.Tag
		if tag == 1 || tag == 2 {
			perJob[tag-1][b] += float64(p.Payload)
		}
	}

	// A "bisection bandwidth test": node i streams to its partner in the
	// other half of the job, in both directions, keeping `window` messages
	// outstanding per direction, until the job's end time.
	startJob := func(nodes []topology.NodeID, class int, tag int64, from, until sim.Time) {
		j := mpi.NewJob(net, nodes, mpi.JobOpts{Stack: mpi.MPI, Class: class, Tag: tag})
		net.Eng.Schedule(from, &startBisection{
			j: j, until: until, msgBytes: msgBytes, window: window,
		}, 0, nil)
	}
	startJob(j1Nodes, 0, 1, 0, j1End)
	startJob(j2Nodes, class2, 2, j2Start, sim.Time(buckets)*bucket)

	net.RunFor(sim.Time(buckets) * bucket)

	mk := func(i int, name string, nodes int) Fig14Series {
		s := Fig14Series{Job: name, Bucket: bucket}
		for _, bytes := range perJob[i] {
			gbs := bytes * 8 / bucket.Seconds() / 1e9 / float64(nodes)
			s.GbsNode = append(s.GbsNode, gbs)
		}
		return s
	}
	return []Fig14Series{
		mk(0, "job1", len(j1Nodes)),
		mk(1, "job2", len(j2Nodes)),
	}
}

// startBisection launches one fig14 bisection-bandwidth job at its start
// time: every rank streams to its partner in the other half, keeping
// `window` puts outstanding until the job's end time.
type startBisection struct {
	j        *mpi.Job
	until    sim.Time
	msgBytes int64
	window   int
}

func (s *startBisection) OnEvent(*sim.Engine, *sim.Event) {
	n := s.j.Size()
	for r := 0; r < n; r++ {
		p := &bisectionRank{op: s, r: r, partner: (r + n/2) % n}
		p.onPut = func(sim.Time) { p.post() } //simlint:allocok -- one callback per rank at job launch, reused for every put
		for w := 0; w < s.window; w++ {
			p.post()
		}
	}
}

// bisectionRank is one streaming rank of a fig14 job.
type bisectionRank struct {
	op         *startBisection
	r, partner int
	onPut      func(sim.Time)
}

func (p *bisectionRank) post() {
	if p.op.j.Net.Now() >= p.op.until {
		return
	}
	p.op.j.Put(p.r, p.partner, p.op.msgBytes, p.onPut)
}

// shareDuringOverlap returns each job's mean bandwidth share while both
// jobs run (buckets 12..22 with the default timing).
func shareDuringOverlap(series []Fig14Series) (j1, j2 float64) {
	sum := func(s Fig14Series, lo, hi int) float64 {
		t := 0.0
		for i := lo; i < hi && i < len(s.GbsNode); i++ {
			t += s.GbsNode[i]
		}
		return t
	}
	a := sum(series[0], 12, 22)
	b := sum(series[1], 12, 22)
	if a+b == 0 {
		return 0, 0
	}
	return a / (a + b), b / (a + b)
}

// OverlapShares reports the bandwidth split while both jobs are active,
// for each configuration.
func (r Fig14Result) OverlapShares() (same [2]float64, separate [2]float64) {
	s1, s2 := shareDuringOverlap(r.SameTC)
	same = [2]float64{s1, s2}
	p1, p2 := shareDuringOverlap(r.SeparateTC)
	separate = [2]float64{p1, p2}
	return
}

// Result converts the traces to the uniform structured form: per-job
// bandwidth series for each configuration plus the overlap-share table.
func (r Fig14Result) Result() *results.Result {
	res := &results.Result{}
	same, sep := r.OverlapShares()
	res.AddTable("overlap-share", "configuration", "job1_share", "job2_share").
		Row(results.String("same TC"), results.Float(same[0], 2), results.Float(same[1], 2)).
		Row(results.String("separate TCs (min 80% / min 10%)"),
			results.Float(sep[0], 2), results.Float(sep[1], 2))
	add := func(cfg string, traces []Fig14Series) {
		for _, tr := range traces {
			s := results.Series{
				Name:  cfg + "/" + tr.Job,
				XUnit: "us", YUnit: "Gb/s/node",
			}
			for i, v := range tr.GbsNode {
				s.Points = append(s.Points, results.Point{
					X: (sim.Time(i) * tr.Bucket).Microseconds(), Y: v,
				})
			}
			res.AddSeries(s)
		}
	}
	add("same-tc", r.SameTC)
	add("separate-tc", r.SeparateTC)
	return res
}

func (r Fig14Result) String() string { return results.TextString(r.Result()) }
