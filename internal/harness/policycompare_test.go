package harness

import (
	"testing"

	"repro/internal/congestion"
	"repro/internal/workloads"
)

// TestPolicyCompareCCOrdering pins the §II-D claim the experiment exists
// to show: under the incast aggressor, victims behind the fragile
// ECN-style loop slow down at least as much as victims protected by
// Slingshot's per-pair hardware back-pressure — at the same scale the
// golden run uses.
func TestPolicyCompareCCOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy grid takes ~1s")
	}
	r, err := PolicyCompare(Options{Nodes: 24, MinIters: 1, MaxIters: 2, Seed: 7, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(TopoNames) * len(RoutingNames) * len(PolicyCCNames); len(r.Rows) != want {
		t.Fatalf("grid has %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if len(row.Cells) != len(r.Columns) {
			t.Fatalf("row %s/%s/%s has %d cells, want %d",
				row.Topo, row.Routing, row.CC, len(row.Cells), len(r.Columns))
		}
		for _, c := range row.Cells {
			if !c.NA && c.Impact < 1 {
				t.Errorf("%s/%s/%s %s: impact %v below 1 (CongestionImpact clamps)",
					row.Topo, row.Routing, row.CC, c.Victim, c.Impact)
			}
		}
	}
	max := r.MaxByCC()
	for _, cc := range PolicyCCNames {
		if max[cc] == 0 {
			t.Fatalf("no measurable cells for CC %q", cc)
		}
	}
	if max["ecn"] < max["slingshot"] {
		t.Errorf("§II-D ordering violated: ECN max impact %.3f < Slingshot max %.3f",
			max["ecn"], max["slingshot"])
	}
}

// TestPolicyComparePPNDefault: an unset PPN gets the pressure default
// (4), while any explicit PPN — including 1 — wins.
func TestPolicyComparePPNDefault(t *testing.T) {
	e := Lookup("policy-compare")
	if opt := e.Prepare(Options{}); opt.PPN != 4 {
		t.Errorf("default PPN = %d, want 4", opt.PPN)
	}
	if opt := e.Prepare(Options{PPN: 1}); opt.PPN != 1 {
		t.Errorf("explicit PPN 1 coerced to %d", opt.PPN)
	}
	if opt := e.Prepare(Options{PPN: 8}); opt.PPN != 8 {
		t.Errorf("explicit PPN 8 coerced to %d", opt.PPN)
	}
}

// TestPolicyCompareRestrictsAxes: Options.Topo/Routing/CC each narrow
// their axis to one backend, and unknown names fail loudly.
func TestPolicyCompareRestrictsAxes(t *testing.T) {
	r, err := PolicyCompare(Options{
		Nodes: 16, MinIters: 1, MaxIters: 1, Seed: 7,
		Topo: "fattree", Routing: "ecmp", CC: "delay",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("restricted sweep has %d rows, want 1", len(r.Rows))
	}
	row := r.Rows[0]
	if row.Topo != "fattree" || row.Routing != "ecmp" || row.CC != "delay" {
		t.Errorf("restricted row = %s/%s/%s", row.Topo, row.Routing, row.CC)
	}
	// The Aries no-CC baseline stays reachable explicitly.
	if _, err := PolicyCompare(Options{
		Nodes: 16, MinIters: 1, MaxIters: 1, Seed: 7,
		Topo: "dragonfly", Routing: "minimal", CC: "none",
	}); err != nil {
		t.Errorf("CC=none: %v", err)
	}
	if _, err := PolicyCompare(Options{Nodes: 16, Routing: "teleport"}); err == nil {
		t.Error("unknown routing policy did not error")
	}
	if _, err := PolicyCompare(Options{Nodes: 16, CC: "tcp-reno"}); err == nil {
		t.Error("unknown CC backend did not error")
	}
	if _, err := PolicyCompare(Options{Nodes: 16, Topo: "torus"}); err == nil {
		t.Error("unknown topology did not error")
	}
}

// TestDelayCCProtectsVictims: the delay-based controller is a real
// congestion control — on the congestion-prone Aries-style machine, a
// victim sharing the fabric with an incast sees far less slowdown than
// with no endpoint CC at all (the ablation that motivates shipping a
// fourth backend).
func TestDelayCCProtectsVictims(t *testing.T) {
	if testing.Short() {
		t.Skip("two congestion cells take ~1s")
	}
	impact := func(cc string) float64 {
		sys := Crystal(72)
		b, err := congestion.ByName(cc)
		if err != nil {
			t.Fatal(err)
		}
		sys.Prof.CCBuilder = b
		r := RunCell(CellSpec{
			Sys: sys, TotalNodes: 48, VictimFrac: 0.5,
			Aggressor: IncastAggressor, AggrPPN: 1,
			Seed: 7, MinIters: 3, MaxIters: 6,
		}, BenchVictim(workloads.AllreduceBench(8)))
		if r.NA {
			t.Fatalf("%s cell unexpectedly N.A.", cc)
		}
		return r.Impact
	}
	delay, none := impact("delay"), impact("none")
	if delay < 1 {
		t.Errorf("delay impact %v below 1", delay)
	}
	if delay*2 > none {
		t.Errorf("delay-based CC barely protects: impact %.2f vs %.2f without CC",
			delay, none)
	}
}
