package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// GridPoint is one independent unit of a congestion-grid experiment: a
// fully-specified cell plus the victim measured in it. Every point owns
// its seed, builds its own network, and shares nothing with its
// neighbours, so points are embarrassingly parallel while each
// sim.Engine stays single-threaded and deterministic.
type GridPoint struct {
	Spec   CellSpec
	Victim Victim
}

// RunGrid measures every point across a pool of jobs workers (jobs <= 0
// means GOMAXPROCS) and returns results in point order. Because each
// point's seed is fixed up front and results are written by index, the
// output is identical for any worker count — jobs trades wall-clock time
// only, never determinism.
func RunGrid(points []GridPoint, jobs int) []CellResult {
	out := make([]CellResult, len(points))
	parallelFor(len(points), jobs, func(i int) {
		out[i] = RunCell(points[i].Spec, points[i].Victim)
	})
	return out
}

// parallelFor runs f(0..n-1) across up to jobs goroutines.
func parallelFor(n, jobs int, f func(int)) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// parallelMap maps f over items with up to jobs workers, preserving
// order. f must be independent per item (it is handed its own index's
// input and writes only its own output slot).
func parallelMap[T, R any](jobs int, items []T, f func(T) R) []R {
	out := make([]R, len(items))
	parallelFor(len(items), jobs, func(i int) {
		out[i] = f(items[i])
	})
	return out
}
