package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// GridPoint is one independent unit of a congestion-grid experiment: a
// fully-specified cell plus the victim measured in it. Every point owns
// its seed, builds its own network, and shares nothing with its
// neighbours, so points are embarrassingly parallel while each
// sim.Engine stays single-threaded and deterministic.
type GridPoint struct {
	Spec   CellSpec
	Victim Victim
}

// RunGrid measures every point across a pool of jobs workers (jobs <= 0
// means GOMAXPROCS) and returns results in point order. Because each
// point's seed is fixed up front and results are written by index, the
// output is identical for any worker count — jobs trades wall-clock time
// only, never determinism. Each worker owns a cellArena of reusable
// harness scratch (stats accumulators, placement buffers), so steady-state
// cells stop re-allocating measurement-side state; arenas never influence
// results, only allocation counts.
func RunGrid(points []GridPoint, jobs int) []CellResult {
	out := make([]CellResult, len(points))
	arenas := make([]cellArena, poolWidth(len(points), jobs))
	parallelForWorkers(len(points), jobs, func(w, i int) {
		out[i] = runCellArena(points[i].Spec, points[i].Victim, &arenas[w])
	})
	return out
}

// poolWidth resolves the effective worker count parallelForWorkers will
// use for n items and a requested jobs value.
func poolWidth(n, jobs int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// parallelFor runs f(0..n-1) across up to jobs goroutines.
func parallelFor(n, jobs int, f func(int)) {
	parallelForWorkers(n, jobs, func(_, i int) { f(i) })
}

// parallelForWorkers is parallelFor with the worker index exposed:
// f(w, i) runs item i on worker w, where w < poolWidth(n, jobs). Items
// are handed out dynamically, so w carries no meaning beyond "at most
// one f call with this w runs at a time" — exactly the property
// per-worker arenas need.
func parallelForWorkers(n, jobs int, f func(worker, i int)) {
	jobs = poolWidth(n, jobs)
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// parallelMap maps f over items with up to jobs workers, preserving
// order. f must be independent per item (it is handed its own index's
// input and writes only its own output slot).
func parallelMap[T, R any](jobs int, items []T, f func(T) R) []R {
	out := make([]R, len(items))
	parallelFor(len(items), jobs, func(i int) {
		out[i] = f(items[i])
	})
	return out
}
