package harness

import (
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/results"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var fig8Defaults = Options{Nodes: 64, MinIters: 20, MaxIters: 60}

func init() {
	Register(Experiment{
		Name:           "fig8",
		Desc:           "Tailbench latency distributions with and without incast congestion",
		DefaultOptions: fig8Defaults,
		Run: func(opt Options) (*results.Result, error) {
			return Fig8Tailbench(opt).Result(), nil
		},
	})
}

// Fig8Entry is one (application, system) pair of Fig. 8: the request-time
// distribution with and without endpoint congestion.
type Fig8Entry struct {
	App       string
	System    string
	Isolated  *stats.Sample // request times, microseconds
	Congested *stats.Sample
}

// Fig8Result reproduces Fig. 8: Tailbench latency distributions with and
// without an incast aggressor (linear allocation, ~10%/90% victim split),
// on Aries and Slingshot, annotated with the 95th/99th percentiles.
type Fig8Result struct {
	Entries []Fig8Entry
}

// Fig8Tailbench runs the experiment. Tailbench service times run at the
// grid's documented 1/100 scale. The default scale is 64 nodes so the ~10%
// victim allocation spans more than one switch — the client/server path
// must cross fabric the congestion tree reaches, as it does at the paper's
// 512-node scale. Each (system, app) pair builds its own network, so
// pairs run in parallel across opt.Jobs workers.
func Fig8Tailbench(opt Options) Fig8Result {
	opt = opt.withDefaults(fig8Defaults)
	type pair struct {
		sys System
		app workloads.App
	}
	var pairs []pair
	for _, sys := range gridSystems(opt.Nodes) {
		sys.Domains = opt.Domains
		sys.Fidelity = opt.fidelity()
		for _, app := range workloads.DCAppsScaled(dcServiceScale) {
			pairs = append(pairs, pair{sys, app})
		}
	}
	entries := parallelMap(opt.gridJobs(), pairs, func(p pair) Fig8Entry {
		net := p.sys.build(opt.Seed)
		rng := sim.NewRNG(opt.Seed + 99)
		nv := max(2, opt.Nodes/10)
		victimNodes, aggrNodes := placement.Split(opt.Nodes, nv, placement.Linear, nil)
		vjob := mpi.NewJob(net, victimNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 1})

		iso := sampleApp(vjob, p.app, rng, opt.MaxIters)

		ajob := mpi.NewJob(net, aggrNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 2})
		agg := workloads.StartIncast(ajob, workloads.AggressorMsgBytes, 2)
		net.RunFor(300 * sim.Microsecond)
		cong := sampleApp(vjob, p.app, rng, opt.MaxIters)
		agg.Stop()

		return Fig8Entry{
			App: p.app.Name, System: p.sys.Name, Isolated: iso, Congested: cong,
		}
	})
	return Fig8Result{Entries: entries}
}

func sampleApp(j *mpi.Job, app workloads.App, rng *sim.RNG, iters int) *stats.Sample {
	s := stats.NewSample(iters)
	net := j.Net
	for i := 0; i < iters; i++ {
		start := net.Now()
		fin := false
		app.Iterate(j, rng, func() { fin = true })
		net.RunWhile(func() bool { return !fin })
		if !fin {
			break
		}
		s.Add((net.Now() - start).Microseconds())
	}
	return s
}

// Result converts the measurement to the uniform structured form.
func (r Fig8Result) Result() *results.Result {
	res := &results.Result{}
	t := res.AddTable("tail", "app", "system",
		"iso_p50_us", "iso_p95", "iso_p99",
		"cong_p50_us", "cong_p95", "cong_p99", "impact")
	for _, e := range r.Entries {
		t.Row(
			results.String(e.App), results.String(e.System),
			results.Float(e.Isolated.Median(), 1), results.Float(e.Isolated.Percentile(95), 1),
			results.Float(e.Isolated.Percentile(99), 1),
			results.Float(e.Congested.Median(), 1), results.Float(e.Congested.Percentile(95), 1),
			results.Float(e.Congested.Percentile(99), 1),
			results.Float(e.Congested.Mean()/e.Isolated.Mean(), 2),
		)
	}
	return res
}

func (r Fig8Result) String() string { return results.TextString(r.Result()) }
