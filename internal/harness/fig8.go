package harness

import (
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig8Entry is one (application, system) pair of Fig. 8: the request-time
// distribution with and without endpoint congestion.
type Fig8Entry struct {
	App       string
	System    string
	Isolated  *stats.Sample // request times, microseconds
	Congested *stats.Sample
}

// Fig8Result reproduces Fig. 8: Tailbench latency distributions with and
// without an incast aggressor (linear allocation, ~10%/90% victim split),
// on Aries and Slingshot, annotated with the 95th/99th percentiles.
type Fig8Result struct {
	Entries []Fig8Entry
}

// Fig8Tailbench runs the experiment. Tailbench service times run at the
// grid's documented 1/100 scale. The default scale is 64 nodes so the ~10%
// victim allocation spans more than one switch — the client/server path
// must cross fabric the congestion tree reaches, as it does at the paper's
// 512-node scale.
func Fig8Tailbench(opt Options) Fig8Result {
	opt = opt.withDefaults(64, 20, 60)
	var res Fig8Result
	for _, sys := range gridSystems(opt.Nodes) {
		for _, app := range workloads.DCAppsScaled(dcServiceScale) {
			net := sys.build(opt.Seed)
			rng := sim.NewRNG(opt.Seed + 99)
			nv := maxi(2, opt.Nodes/10)
			victimNodes, aggrNodes := placement.Split(opt.Nodes, nv, placement.Linear, nil)
			vjob := mpi.NewJob(net, victimNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 1})

			iso := sampleApp(vjob, app, rng, opt.MaxIters)

			ajob := mpi.NewJob(net, aggrNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 2})
			agg := workloads.StartIncast(ajob, workloads.AggressorMsgBytes, 2)
			net.RunFor(300 * sim.Microsecond)
			cong := sampleApp(vjob, app, rng, opt.MaxIters)
			agg.Stop()

			res.Entries = append(res.Entries, Fig8Entry{
				App: app.Name, System: sys.Name, Isolated: iso, Congested: cong,
			})
		}
	}
	return res
}

func sampleApp(j *mpi.Job, app workloads.App, rng *sim.RNG, iters int) *stats.Sample {
	s := stats.NewSample(iters)
	eng := j.Net.Eng
	for i := 0; i < iters; i++ {
		start := eng.Now()
		fin := false
		app.Iterate(j, rng, func() { fin = true })
		eng.RunWhile(func() bool { return !fin })
		if !fin {
			break
		}
		s.Add((eng.Now() - start).Microseconds())
	}
	return s
}

func (r Fig8Result) String() string {
	var b strings.Builder
	rows := make([][]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		rows = append(rows, []string{
			e.App, e.System,
			f1(e.Isolated.Median()), f1(e.Isolated.Percentile(95)), f1(e.Isolated.Percentile(99)),
			f1(e.Congested.Median()), f1(e.Congested.Percentile(95)), f1(e.Congested.Percentile(99)),
			f2(e.Congested.Mean() / e.Isolated.Mean()),
		})
	}
	fmt.Fprint(&b, table([]string{
		"app", "system",
		"iso p50(us)", "iso p95", "iso p99",
		"cong p50(us)", "cong p95", "cong p99", "impact",
	}, rows))
	return b.String()
}
