package harness

import (
	"math"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Victim is one column of the congestion grids: a named workload whose
// slowdown under an aggressor is the measured quantity.
type Victim struct {
	Label          string
	PowerOfTwoOnly bool
	// BytesMoved estimates one iteration's traffic (caps iteration budgets
	// for enormous victims).
	BytesMoved int64
	Run        func(j *mpi.Job, rng *sim.RNG, done func())
}

// AppVictim wraps a Table I application.
func AppVictim(app workloads.App) Victim {
	return Victim{
		Label:          app.Name,
		PowerOfTwoOnly: app.PowerOfTwoOnly,
		BytesMoved:     1 << 20,
		Run:            app.Iterate,
	}
}

// BenchVictim wraps a microbenchmark.
func BenchVictim(b workloads.Microbench) Victim {
	return Victim{
		Label:      b.Label(),
		BytesMoved: b.Size,
		Run: func(j *mpi.Job, _ *sim.RNG, done func()) {
			b.Run(j, done)
		},
	}
}

// VictimSet selects the grid columns.
type VictimSet int

const (
	// VictimsQuick: the nine applications plus a representative
	// microbenchmark subset — the default for tests and benchmarks.
	VictimsQuick VictimSet = iota
	// VictimsApps: the nine Table I applications only.
	VictimsApps
	// VictimsFull: all 48 Fig. 9 columns (expensive; CLI use).
	VictimsFull
)

// dcServiceScale shrinks Tailbench service times in grid experiments so
// seconds-long queries stay simulable (see workloads.DCAppsScaled).
const dcServiceScale = 0.01

// Victims materializes a victim set.
func Victims(set VictimSet) []Victim {
	apps := workloads.AppsScaled(dcServiceScale)
	var out []Victim
	for _, a := range apps {
		out = append(out, AppVictim(a))
	}
	switch set {
	case VictimsApps:
		return out
	case VictimsQuick:
		for _, b := range []workloads.Microbench{
			workloads.PingPongBench(8), workloads.PingPongBench(128 * 1024),
			workloads.AllreduceBench(8), workloads.AllreduceBench(128 * 1024),
			workloads.AlltoallBench(8), workloads.AlltoallBench(128 * 1024),
			workloads.BarrierBench(), workloads.BroadcastBench(8),
			workloads.Halo3DBench(128), workloads.Sweep3DBench(128),
			workloads.IncastBench(8),
		} {
			out = append(out, BenchVictim(b))
		}
	case VictimsFull:
		for _, b := range workloads.Fig9Microbenches() {
			out = append(out, BenchVictim(b))
		}
	}
	return out
}

// AggressorKind selects the congestion pattern (§III-A).
type AggressorKind int

const (
	// IncastAggressor generates endpoint congestion (many-to-one Put).
	IncastAggressor AggressorKind = iota
	// AlltoallAggressor generates intermediate congestion.
	AlltoallAggressor
)

func (k AggressorKind) String() string {
	if k == IncastAggressor {
		return "incast"
	}
	return "all-to-all"
}

// CellSpec fully describes one congestion-grid cell.
type CellSpec struct {
	Sys        System
	TotalNodes int
	VictimFrac float64
	Aggressor  AggressorKind
	Alloc      placement.Policy
	AggrPPN    int
	Seed       uint64
	MinIters   int
	MaxIters   int
	// Warmup lets the aggressor load the fabric before congested
	// measurement starts.
	Warmup sim.Time
}

// CellResult is one measured heatmap element.
type CellResult struct {
	Victim    string
	Aggressor string
	Frac      float64 // aggressor node fraction
	Impact    float64 // C = Tc/Ti (NaN when NA)
	NA        bool
	Isolated  float64 // mean isolated iteration time (us)
	Congested float64 // mean congested iteration time (us)
}

// isPow2 reports whether v is a power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// aggrFrac returns 1-vf rounded to micro precision: 1-0.9 is
// 0.09999999999999998 in float64, and the raw-precision JSON/CSV
// encoders would expose that artifact as a grouping key.
func aggrFrac(vf float64) float64 { return math.Round((1-vf)*1e6) / 1e6 }

// cellArena is per-worker scratch a RunGrid worker reuses across the
// cells it measures: the isolated/congested stats accumulators and the
// placement node buffer. Everything in it is reset (or fully rewritten)
// at the start of each cell, so arena reuse cannot leak state between
// cells — it only removes steady-state allocations from the harness side
// of the measurement loop.
type cellArena struct {
	iso, cong *stats.Sample
	nodes     []topology.NodeID
}

// samples returns the two reset measurement accumulators, growing them to
// at least capacity on first use (or after a larger cell).
func (a *cellArena) samples(capacity int) (iso, cong *stats.Sample) {
	if a.iso == nil || a.iso.Cap() < capacity {
		a.iso = stats.NewSample(capacity)
		a.cong = stats.NewSample(capacity)
	}
	a.iso.Reset()
	a.cong.Reset()
	return a.iso, a.cong
}

// nodeBuf returns a buffer with capacity for total node IDs.
func (a *cellArena) nodeBuf(total int) []topology.NodeID {
	if cap(a.nodes) < total {
		a.nodes = make([]topology.NodeID, total)
	}
	return a.nodes[:0]
}

// RunCell measures the congestion impact of one victim/aggressor pairing
// following §III-A: measure the victim isolated, start the aggressor, warm
// up, measure again, report C = Tc/Ti of the means.
func RunCell(spec CellSpec, v Victim) CellResult {
	return runCellArena(spec, v, &cellArena{})
}

// runCellArena is RunCell drawing its harness-side scratch from a
// (possibly shared-across-cells) arena.
func runCellArena(spec CellSpec, v Victim, arena *cellArena) CellResult {
	res := CellResult{
		Victim:    v.Label,
		Aggressor: spec.Aggressor.String(),
		Frac:      aggrFrac(spec.VictimFrac),
	}
	total := spec.TotalNodes
	nv := int(math.Round(float64(total) * spec.VictimFrac))
	if nv < 2 {
		nv = 2
	}
	if nv > total-2 {
		nv = total - 2
	}
	if v.PowerOfTwoOnly && !isPow2(nv) {
		res.NA = true
		res.Impact = math.NaN()
		return res
	}
	net := spec.Sys.build(spec.Seed)
	rng := sim.NewRNG(spec.Seed ^ 0x9e3779b9)
	victimNodes, aggrNodes := placement.SplitBuf(arena.nodeBuf(total), total, nv, spec.Alloc, rng.Split())

	vjob := mpi.NewJob(net, victimNodes, mpi.JobOpts{Stack: mpi.MPI, Tag: 1})
	minIters, maxIters := spec.MinIters, spec.MaxIters
	// Enormous victims get smaller budgets (the CI stopping rule still
	// applies below them).
	if traffic := v.BytesMoved * int64(len(victimNodes)) * int64(len(victimNodes)); traffic > 1<<30 {
		if maxIters > 3 {
			maxIters = 3
		}
		if minIters > 2 {
			minIters = 2
		}
	}

	iso, cong := arena.samples(maxIters)
	measureVictim(iso, vjob, v, rng.Split(), minIters, maxIters)
	res.Isolated = iso.Mean()

	// On hybrid/flow-fidelity systems the aggressor is exactly the bulk
	// steady traffic the fluid fast path exists for; victims stay
	// untagged so their transfers keep packet-level treatment.
	ajob := mpi.NewJob(net, aggrNodes, mpi.JobOpts{
		PPN: spec.AggrPPN, Stack: mpi.MPI, Tag: 2,
		Bulk: spec.Sys.Fidelity != fabric.FidelityPacket,
	})
	var agg *workloads.Aggressor
	if spec.Aggressor == IncastAggressor {
		agg = workloads.StartIncast(ajob, workloads.AggressorMsgBytes, 2)
	} else {
		agg = workloads.StartAlltoall(ajob, workloads.AggressorMsgBytes)
	}
	warm := spec.Warmup
	if warm == 0 {
		warm = 300 * sim.Microsecond
	}
	net.RunFor(warm)

	measureVictim(cong, vjob, v, rng.Split(), minIters, maxIters)
	res.Congested = cong.Mean()
	agg.Stop()

	res.Impact = stats.CongestionImpact(res.Isolated, res.Congested)
	return res
}

// measureVictim runs the victim's measurement loop, accumulating
// iteration times into the caller-owned (typically arena-recycled) s.
func measureVictim(s *stats.Sample, j *mpi.Job, v Victim, rng *sim.RNG, minIters, maxIters int) {
	net := j.Net
	for i := 0; i < maxIters; i++ {
		start := net.Now()
		fin := false
		v.Run(j, rng, func() { fin = true })
		net.RunWhile(func() bool { return !fin })
		if !fin {
			break
		}
		s.Add((net.Now() - start).Microseconds())
		if i+1 >= minIters && s.Converged(0.05) {
			break
		}
	}
}
