package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// The harness tests assert the *shape* of each paper figure at reduced
// scale: who wins, by roughly what factor, and where crossovers fall.

func TestFig2Shape(t *testing.T) {
	r := Fig2SwitchLatency(Options{Nodes: 32, MaxIters: 500})
	s := r.Samples
	if m := s.Mean(); m < 330 || m > 370 {
		t.Errorf("switch latency mean = %.1f ns, want ~350", m)
	}
	if med := s.Median(); med < 330 || med > 370 {
		t.Errorf("median = %.1f ns", med)
	}
	// "All the distribution lying between 300 and 400 ns, except for a
	// few outliers."
	if p1 := s.Percentile(1); p1 < 290 {
		t.Errorf("p1 = %.1f ns, want >= 290", p1)
	}
	if p99 := s.Percentile(99); p99 > 410 {
		t.Errorf("p99 = %.1f ns, want <= 410", p99)
	}
	if !strings.Contains(r.String(), "median") {
		t.Error("render missing median row")
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4Distance(Options{Nodes: 32, MaxIters: 12})
	byKey := map[string]Fig4Row{}
	for _, row := range r.Rows {
		byKey[row.Distance+sizeName(row.Size)] = row
	}
	// Latency ordering at 8 B with bounded spread (<=40% in the paper;
	// our fabric numbers are slightly tighter, we allow up to 2x).
	same := byKey["same switch8B"].Latency.Median
	cross := byKey["different groups8B"].Latency.Median
	if !(same < cross) {
		t.Errorf("8B latency ordering: same=%v cross=%v", same, cross)
	}
	if cross/same > 2 {
		t.Errorf("8B distance spread = %.2f, want < 2", cross/same)
	}
	// Large messages converge (<= ~15%).
	s4, c4 := byKey["same switch4MiB"].Latency.Median, byKey["different groups4MiB"].Latency.Median
	if c4/s4 > 1.15 {
		t.Errorf("4MiB distance spread = %.3f", c4/s4)
	}
	// Bandwidth ladder (paper: ~0.08, ~9.5, 70-80(+), ~97.3 Gb/s).
	checks := []struct {
		key    string
		lo, hi float64
	}{
		{"same switch8B", 0.04, 0.15},
		{"same switch1KiB", 7, 12},
		{"same switch128KiB", 60, 92},
		{"same switch4MiB", 93, 99},
	}
	for _, c := range checks {
		got := byKey[c.key].GBits
		if got < c.lo || got > c.hi {
			t.Errorf("%s bandwidth = %.2f Gb/s, want [%v, %v]", c.key, got, c.lo, c.hi)
		}
	}
	// Bandwidth spread across distances <= 15% (paper).
	for _, size := range Fig4Sizes {
		a := byKey["same switch"+sizeName(size)].GBits
		b := byKey["different groups"+sizeName(size)].GBits
		ratio := a / b
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 1.15 {
			t.Errorf("size %s: bandwidth spread %.3f > 1.15", sizeName(size), ratio)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5Stacks(Options{Nodes: 32, MaxIters: 3})
	at := func(stack, size string) float64 {
		for _, p := range r.Points {
			if p.Stack.String() == stack && sizeName(p.Size) == size {
				return p.RTT2.Microseconds()
			}
		}
		t.Fatalf("missing point %s/%s", stack, size)
		return 0
	}
	// Small-message ordering: verbs < libfabric < mpi << udp < tcp.
	small := []string{"ibverbs", "libfabric", "mpi", "udp", "tcp"}
	for i := 1; i < len(small); i++ {
		if at(small[i-1], "8B") >= at(small[i], "8B") {
			t.Errorf("8B ordering broken at %s", small[i])
		}
	}
	// MPI adds only a marginal overhead over libfabric at small sizes.
	if d := at("mpi", "8B") - at("libfabric", "8B"); d > 1 {
		t.Errorf("MPI overhead over libfabric = %.2f us, want < 1", d)
	}
	// UDP is ~an order of magnitude above verbs at 8 B.
	if ratio := at("udp", "8B") / at("ibverbs", "8B"); ratio < 3 {
		t.Errorf("udp/verbs at 8B = %.1f, want >= 3", ratio)
	}
	// Convergence at 16 MiB: all stacks within ~2.5x.
	if ratio := at("tcp", "16MiB") / at("ibverbs", "16MiB"); ratio > 2.5 {
		t.Errorf("tcp/verbs at 16MiB = %.2f", ratio)
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6Bisection(Options{Nodes: 64, Seed: 2})
	get := func(series string, size int64) Fig6Point {
		for _, p := range r.Points {
			if p.Series == series && p.Size == size {
				return p
			}
		}
		t.Fatalf("missing %s/%d", series, size)
		return Fig6Point{}
	}
	// Bisection approaches its theoretical peak for large messages.
	if f := get("bisection", 128*1024).PeakFrc; f < 0.9 {
		t.Errorf("bisection 128KiB = %.2f of peak, want >= 0.9", f)
	}
	// Monotone-ish rise for bisection.
	if get("bisection", 8).TBits >= get("bisection", 8192).TBits {
		t.Error("bisection bandwidth did not rise with size")
	}
	// The 256 B algorithm switch produces a throughput dip: 512 B per pair
	// (pairwise) is well below 128 B (Bruck aggregation).
	d128 := get("alltoall", 128).TBits
	d512 := get("alltoall", 512).TBits
	if d512 >= d128 {
		t.Errorf("no algorithm-switch dip: 128B=%.3f 512B=%.3f", d128, d512)
	}
	// And it recovers at larger sizes.
	if get("alltoall", 32*1024).TBits <= d512 {
		t.Error("alltoall did not recover after the dip")
	}
}

func TestFig9Shape(t *testing.T) {
	// The paper's headline: Aries worst-case impact is one-to-two orders
	// of magnitude; Slingshot stays below ~1.5.
	opt := Options{Nodes: 48, MinIters: 3, MaxIters: 6, Seed: 11}
	r := Fig9Heatmap(opt, VictimsQuick)
	max := r.Max()
	aries := max["Aries (Crystal)"]
	sling := max["Slingshot (Shandy)"]
	if aries < 3 {
		t.Errorf("aries max impact = %.2f, want >= 3", aries)
	}
	if sling > 2.0 {
		t.Errorf("slingshot max impact = %.2f, want <= 2.0", sling)
	}
	if aries < 2*sling {
		t.Errorf("aries (%.1f) should be >> slingshot (%.2f)", aries, sling)
	}
	// Impact grows with aggressor fraction on Aries incast rows.
	var inc10, inc90 float64
	for _, row := range r.Rows {
		if row.System != "Aries (Crystal)" || row.Aggressor != "incast" {
			continue
		}
		m := 0.0
		for _, c := range row.Cells {
			if !c.NA && c.Impact > m {
				m = c.Impact
			}
		}
		if row.AggrFrac < 0.2 {
			inc10 = m
		}
		if row.AggrFrac > 0.8 {
			inc90 = m
		}
	}
	if inc90 <= inc10 {
		t.Errorf("impact should grow with aggressor share: 10%%=%.1f 90%%=%.1f", inc10, inc90)
	}
	if !strings.Contains(r.String(), "incast") {
		t.Error("render missing aggressor labels")
	}
}

func TestFig11NAandScale(t *testing.T) {
	r := Fig11FullScale(Options{Nodes: 48, MinIters: 2, MaxIters: 4, Seed: 5})
	// MILC and HPCG must be N.A. where the victim node count is not a
	// power of two (victim fractions 0.75/0.25 of 48 are 36/12).
	sawNA := false
	for _, row := range r.Rows {
		for i, c := range row.Cells {
			if (r.Columns[i] == "MILC" || r.Columns[i] == "HPCG") && c.NA {
				sawNA = true
				if !math.IsNaN(c.Impact) {
					t.Error("NA cell carries a number")
				}
			}
		}
	}
	if !sawNA {
		t.Error("expected N.A. cells for MILC/HPCG at non-power-of-two counts")
	}
	if !strings.Contains(r.String(), "N.A.") {
		t.Error("render missing N.A. markers")
	}
}

func TestFig12Shape(t *testing.T) {
	// Reduced grid: two message sizes, two burst sizes, two gaps. The
	// shape: 1 MiB aggressor messages are fully controlled (impact ~1);
	// mid-size (128 KiB) builds some transient congestion.
	r := Fig12Bursty(Options{Nodes: 24, MinIters: 4, MaxIters: 8, Seed: 13},
		[]int64{128 * 1024, 1 << 20},
		[]int{100, 10000},
		[]int64{1, 10000})
	max := r.MaxImpact()
	if max[1<<20] > 1.35 {
		t.Errorf("1MiB bursty impact = %.2f, want ~1 (CC fully engages)", max[1<<20])
	}
	if max[128*1024] < 1.0 {
		t.Errorf("128KiB impact = %.2f", max[128*1024])
	}
	// All Slingshot bursty impacts stay small in absolute terms (the
	// paper's worst is 1.21).
	for _, c := range r.Cells {
		if c.Impact > 2.2 {
			t.Errorf("bursty impact %v = %.2f, want << aries scale", c, c.Impact)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13TrafficClasses(Options{Nodes: 24, Seed: 3})
	// Paper: same TC ~2.85x, separate TC ~1.15x.
	if r.SameImpact < 1.3 {
		t.Errorf("same-TC impact = %.2f, want >= 1.3", r.SameImpact)
	}
	if r.SeparateImpact > 1.4 {
		t.Errorf("separate-TC impact = %.2f, want <= 1.4", r.SeparateImpact)
	}
	if r.SameImpact <= r.SeparateImpact {
		t.Error("traffic classes provided no protection")
	}
	if len(r.SameTC) == 0 || len(r.SeparateTC) == 0 {
		t.Error("missing time series")
	}
}

func TestFig14Shape(t *testing.T) {
	r := Fig14Bandwidth(Options{Nodes: 24, Seed: 3})
	same, sep := r.OverlapShares()
	// Separate TCs: the 80%/10%-min config splits ~80/20 (the spare 10%
	// goes to the lowest-share class).
	if sep[0] < 0.74 || sep[0] > 0.86 {
		t.Errorf("separate-TC job1 share = %.2f, want ~0.80", sep[0])
	}
	if sep[1] < 0.14 || sep[1] > 0.26 {
		t.Errorf("separate-TC job2 share = %.2f, want ~0.20", sep[1])
	}
	// Same TC: closer to even than the guaranteed split.
	if same[0] >= sep[0] {
		t.Errorf("same-TC split (%.2f) should be more even than separate (%.2f)",
			same[0], sep[0])
	}
	// Job 2 ramps to full bandwidth after job 1 ends.
	for _, series := range [][]Fig14Series{r.SameTC, r.SeparateTC} {
		j2 := series[1]
		tail := j2.GbsNode[len(j2.GbsNode)-3]
		mid := j2.GbsNode[15]
		if tail <= mid {
			t.Errorf("job2 did not ramp after job1 ended: mid=%.1f tail=%.1f", mid, tail)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8Tailbench(Options{Nodes: 64, MaxIters: 25, Seed: 9})
	type key struct{ app, sys string }
	imp := map[key]float64{}
	for _, e := range r.Entries {
		imp[key{e.App, e.System}] = e.Congested.Mean() / e.Isolated.Mean()
	}
	for _, app := range []string{"silo", "xapian", "img-dnn"} {
		a := imp[key{app, "Aries (Crystal)"}]
		s := imp[key{app, "Slingshot (Shandy)"}]
		if s > 1.6 {
			t.Errorf("%s on slingshot impact = %.2f, want small", app, s)
		}
		if a < s {
			t.Errorf("%s: aries (%.2f) should exceed slingshot (%.2f)", app, a, s)
		}
	}
	// Sphinx degrades least on Aries (lowest comm/comp ratio).
	sphinx := imp[key{"sphinx", "Aries (Crystal)"}]
	silo := imp[key{"silo", "Aries (Crystal)"}]
	if sphinx > silo {
		t.Errorf("sphinx (%.2f) should degrade less than silo (%.2f) on aries", sphinx, silo)
	}
}

func TestVictimSets(t *testing.T) {
	if n := len(Victims(VictimsApps)); n != 9 {
		t.Errorf("apps set = %d, want 9", n)
	}
	if n := len(Victims(VictimsQuick)); n != 20 {
		t.Errorf("quick set = %d, want 20", n)
	}
	if n := len(Victims(VictimsFull)); n != 48 {
		t.Errorf("full set = %d, want 48 (9 apps + 39 microbenchmarks)", n)
	}
}

func TestCellNAForPowerOfTwoApps(t *testing.T) {
	v := AppVictim(workloads.MILC())
	r := RunCell(CellSpec{
		Sys: Shandy(32), TotalNodes: 24, VictimFrac: 0.5, // 12 victims: not 2^k
		Aggressor: IncastAggressor, AggrPPN: 1, Seed: 1, MinIters: 2, MaxIters: 3,
	}, v)
	if !r.NA {
		t.Error("MILC at 12 nodes should be N.A.")
	}
}

func TestRunCellDeterminism(t *testing.T) {
	v := BenchVictim(workloads.BarrierBench())
	spec := CellSpec{
		Sys: Shandy(32), TotalNodes: 24, VictimFrac: 0.5,
		Aggressor: IncastAggressor, AggrPPN: 1, Seed: 21, MinIters: 3, MaxIters: 5,
	}
	a := RunCell(spec, v)
	b := RunCell(spec, v)
	if a.Impact != b.Impact || a.Isolated != b.Isolated {
		t.Errorf("non-deterministic cell: %+v vs %+v", a, b)
	}
}

func TestMeasureConvergenceProtocol(t *testing.T) {
	// The CI-based stopping rule ends early for stable victims.
	sys := Shandy(16)
	net := sys.build(3)
	_ = net
	v := BenchVictim(workloads.BarrierBench())
	spec := CellSpec{
		Sys: sys, TotalNodes: 12, VictimFrac: 0.5,
		Aggressor: AlltoallAggressor, AggrPPN: 1, Seed: 3,
		MinIters: 6, MaxIters: 200,
	}
	r := RunCell(spec, v)
	if math.IsNaN(r.Impact) {
		t.Fatal("impact NaN")
	}
	_ = sim.Time(0)
}
