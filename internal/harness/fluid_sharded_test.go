package harness

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/results"
)

// TestShardedFluidDeterminism extends the PR 8 sharded-determinism rule to
// the fluid fidelities: with per-domain scoped flow engines advancing
// inside the parallel run phase and the boundary solver folding at epoch
// barriers, experiment JSON must stay byte-identical across worker
// budgets 1, 2, 4 and 8 at both flow and hybrid fidelity. (As with the
// packet shards, sharded output is not compared against the classic
// engine: the epoch-quantized exchange is a deliberately different — but
// internally deterministic — timeline.)
func TestShardedFluidDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded fluid determinism runs take a while")
	}
	defer SetClock(FixedClock{})()
	enc, err := results.NewEncoder("json")
	if err != nil {
		t.Fatal(err)
	}
	render := func(name string, opt Options) []byte {
		t.Helper()
		e := Lookup(name)
		if e == nil {
			t.Fatalf("experiment %q not registered", name)
		}
		res, err := e.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := enc.Encode(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		opt  Options
	}{
		// fig6 drives the global-link bisection — the flow solver's
		// bread and butter; fig8's aggressors exercise the hybrid
		// classification and background-load publication.
		{"fig6", Options{Nodes: 32, Seed: 7}},
		{"fig8", Options{Nodes: 48, MinIters: 1, MaxIters: 2, Seed: 7}},
	}
	for _, c := range cases {
		for _, fid := range []string{"flow", "hybrid"} {
			t.Run(fmt.Sprintf("%s/%s", c.name, fid), func(t *testing.T) {
				o := c.opt
				o.Fidelity = fid
				o.Domains = 1
				want := render(c.name, o)
				for _, d := range []int{2, 4, 8} {
					od := c.opt
					od.Fidelity = fid
					od.Domains = d
					got := render(c.name, od)
					if !bytes.Equal(got, want) {
						t.Fatalf("%s/%s diverges between Domains=1 and Domains=%d (%d vs %d bytes).\n%s",
							c.name, fid, d, len(want), len(got), firstDiff(got, want))
					}
				}
			})
		}
	}
}
