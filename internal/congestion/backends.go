package congestion

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// pairState is the per-destination window/pacing state every backend
// shares.
type pairState struct {
	window      int64
	outstanding int64
	paceGap     sim.Time
	nextSend    sim.Time
	lastSignal  sim.Time
	// ECN/delay: one cut per congestion window / RTT.
	lastCut sim.Time
	// Slingshot: one pacing escalation per interval.
	lastEscalate sim.Time
	// Delay: the pair's calibrated RTT setpoint (0 until first computed).
	target sim.Time
	// Stats.
	signals int64
}

// base carries the state and mechanics common to every backend: the
// per-destination pair table, window admission, outstanding-byte
// accounting and pacing. Algorithms embed it and differ only in how
// OnAck/OnSignal move the window and pace gap.
//
// The pair table is a lazily-grown slice indexed by destination node ID
// (the PR-2 scheme the NIC queues use): one NIC talks to a bounded set of
// peers, rows allocate on first contact, and the steady-state lookup is a
// bounds check plus a load — no map on the CC spine.
type base struct {
	p     Params
	pairs []*pairState
	stats Stats
}

func newBase(p Params) base {
	return base{p: p}
}

// Params returns the controller's tuning.
func (c *base) Params() Params { return c.p }

// Stats exposes the reaction counters.
func (c *base) Stats() *Stats { return &c.stats }

//simlint:hotpath
func (c *base) pair(dst topology.NodeID) *pairState {
	if int(dst) >= len(c.pairs) {
		grown := make([]*pairState, dst+1) //simlint:allocok -- first contact with a new highest destination; steady state hits the fast path
		copy(grown, c.pairs)
		c.pairs = grown
	}
	ps := c.pairs[dst]
	if ps == nil {
		ps = &pairState{window: c.p.InitialWindow, lastSignal: -sim.Forever / 2, lastCut: -sim.Forever / 2} //simlint:allocok -- one-time per-destination state
		c.pairs[dst] = ps
	}
	return ps
}

// CanSend implements the shared window/pacing admission check.
//simlint:hotpath
func (c *base) CanSend(dst topology.NodeID, bytes int64, now sim.Time) (ok bool, retryAt sim.Time) {
	ps := c.pair(dst)
	if now < ps.nextSend {
		c.stats.TotalBlocks++
		return false, ps.nextSend
	}
	// Always allow at least one packet in flight, whatever the window, so
	// progress is never completely stopped (the hardware paces, it does not
	// halt).
	if ps.outstanding > 0 && ps.outstanding+bytes > ps.window {
		c.stats.TotalBlocks++
		return false, 0
	}
	return true, 0
}

// OnSend records an injection of bytes to dst.
//simlint:hotpath
func (c *base) OnSend(dst topology.NodeID, bytes int64, now sim.Time) {
	ps := c.pair(dst)
	ps.outstanding += bytes
	if ps.paceGap > 0 {
		ps.nextSend = now + ps.paceGap
	}
}

// ackSettle is the shared front half of every OnAck: it returns the pair
// with the outstanding-byte account already settled.
func (c *base) ackSettle(dst topology.NodeID, bytes int64) *pairState {
	ps := c.pair(dst)
	ps.outstanding -= bytes
	if ps.outstanding < 0 {
		ps.outstanding = 0
	}
	return ps
}

// Outstanding returns the in-flight bytes to dst.
func (c *base) Outstanding(dst topology.NodeID) int64 {
	if int(dst) < len(c.pairs) {
		if ps := c.pairs[dst]; ps != nil {
			return ps.outstanding
		}
	}
	return 0
}

// Window returns the current window for dst.
func (c *base) Window(dst topology.NodeID) int64 {
	return c.pair(dst).window
}

// PaceGap returns the current pacing delay for dst (tests/inspection).
func (c *base) PaceGap(dst topology.NodeID) sim.Time {
	return c.pair(dst).paceGap
}

// noCC is the Aries baseline: no endpoint congestion control at all.
type noCC struct{ base }

// Algorithm names the backend.
func (c *noCC) Algorithm() string { return None.String() }

// Hooks: no fabric-side detection needed.
func (c *noCC) Hooks() Hooks { return Hooks{} }

// OnAck only settles the outstanding-byte account.
//simlint:hotpath
func (c *noCC) OnAck(dst topology.NodeID, bytes int64, _ bool, _, _ sim.Time) bool {
	c.ackSettle(dst, bytes)
	return true
}

// OnSignal is ignored (an Aries NIC has no back-pressure channel).
func (c *noCC) OnSignal(topology.NodeID, float64, sim.Time) {}

// slingshot is the paper's hardware scheme: stiff, fast per-pair
// back-pressure with quick recovery (§II-D).
type slingshot struct{ base }

// Algorithm names the backend.
func (c *slingshot) Algorithm() string { return Slingshot.String() }

// Hooks: the switch owning the congested endpoint port emits per-source
// notifications.
func (c *slingshot) Hooks() Hooks { return Hooks{EndpointSignals: true} }

// OnAck recovers fast once the back-pressure stops.
//simlint:hotpath
func (c *slingshot) OnAck(dst topology.NodeID, bytes int64, _ bool, _, now sim.Time) bool {
	ps := c.ackSettle(dst, bytes)
	// Quiet period passed: fast additive recovery plus pacing decay.
	if now-ps.lastSignal > c.p.RecoveryQuiet {
		ps.window += bytes
		if ps.window > c.p.InitialWindow {
			ps.window = c.p.InitialWindow
		}
		ps.paceGap /= 2
		if ps.paceGap < 100*sim.Nanosecond {
			ps.paceGap = 0
		}
	}
	return true
}

// OnSignal applies the stiff, fast response: collapse the window and
// escalate pacing multiplicatively while signals keep coming.
func (c *slingshot) OnSignal(dst topology.NodeID, severity float64, now sim.Time) {
	ps := c.pair(dst)
	ps.lastSignal = now
	ps.signals++
	c.stats.TotalSignals++
	// Stiff and fast: collapse the window...
	ps.window = c.p.MinWindow
	// ...and escalate pacing multiplicatively while signals keep coming.
	// Escalation is rate-limited (a burst of notifications from one queue
	// sweep counts once).
	const escalateEvery = 2 * sim.Microsecond
	switch {
	case ps.paceGap == 0:
		ps.paceGap = sim.Time(float64(2*sim.Microsecond) * severity)
		if ps.paceGap < 200*sim.Nanosecond {
			ps.paceGap = 200 * sim.Nanosecond
		}
		ps.lastEscalate = now
	case now-ps.lastEscalate >= escalateEvery:
		ps.paceGap *= 2
		ps.lastEscalate = now
	}
	if ps.paceGap > c.p.MaxPaceGap {
		ps.paceGap = c.p.MaxPaceGap
	}
	if ps.nextSend < now+ps.paceGap {
		ps.nextSend = now + ps.paceGap
	}
}

// ecnLike is the DCQCN-flavoured marking scheme: multiplicative decrease
// on marked acks, slow additive recovery — the long end-to-end reaction
// path that makes classical ECN fragile under bursty incast.
type ecnLike struct{ base }

// Algorithm names the backend.
func (c *ecnLike) Algorithm() string { return ECNLike.String() }

// Hooks: switches mark packets crossing deep egress queues.
func (c *ecnLike) Hooks() Hooks { return Hooks{ECNMarks: true} }

// OnAck cuts on marks and recovers slowly otherwise.
//simlint:hotpath
func (c *ecnLike) OnAck(dst topology.NodeID, bytes int64, marked bool, _, now sim.Time) bool {
	ps := c.ackSettle(dst, bytes)
	if marked {
		// At most one multiplicative cut per ~RTT-scale interval; the
		// long reaction path is what makes classical ECN fragile under
		// bursty incast.
		if now-ps.lastCut > c.p.RecoveryQuiet {
			ps.lastCut = now
			ps.signals++
			c.stats.TotalSignals++
			ps.window = int64(float64(ps.window) * c.p.EcnCutFactor)
			if ps.window < c.p.MinWindow {
				ps.window = c.p.MinWindow
			}
		}
		ps.lastSignal = now
	} else if now-ps.lastSignal > 4*c.p.RecoveryQuiet {
		// Slow additive recovery, a fraction of the acked bytes.
		ps.window += bytes / 8
		if ps.window > c.p.InitialWindow {
			ps.window = c.p.InitialWindow
		}
	}
	return true
}

// OnSignal is ignored (ECN has no direct back-pressure channel).
func (c *ecnLike) OnSignal(topology.NodeID, float64, sim.Time) {}

// delayBased is the Swift/TIMELY-style controller: the congestion signal
// is the ack round-trip time itself. RTT above the target reads as
// standing queue and cuts the window in proportion to the overshoot; RTT
// at or below target grows it additively. It needs no switch support at
// all — not even ECN marking.
//
// The target is per destination: Params.TargetRTT is the floor, raised
// to the fabric-calibrated quiet RTT of the pair's path when a base-RTT
// oracle is installed (see TargetCalibrator) — Swift's topology-aware
// base-delay term.
type delayBased struct {
	base
	baseRTT func(topology.NodeID) sim.Time
}

// CalibrateTarget installs the fabric's quiet-RTT oracle; per-pair
// setpoints are derived lazily from it on first use.
func (c *delayBased) CalibrateTarget(base func(topology.NodeID) sim.Time) {
	c.baseRTT = base
}

// targetFor returns the pair's setpoint, computing it on first use: the
// configured TargetRTT, raised to the oracle's quiet full-window RTT on
// paths where the topology alone exceeds the configured floor.
func (c *delayBased) targetFor(ps *pairState, dst topology.NodeID) sim.Time {
	if ps.target == 0 {
		ps.target = c.p.TargetRTT
		if c.baseRTT != nil {
			if t := c.baseRTT(dst); t > ps.target {
				ps.target = t
			}
		}
	}
	return ps.target
}

// Algorithm names the backend.
func (c *delayBased) Algorithm() string { return Delay.String() }

// Hooks: none — the RTT rides the acks the NIC already processes.
func (c *delayBased) Hooks() Hooks { return Hooks{} }

// OnAck compares the sample against the target RTT.
//simlint:hotpath
func (c *delayBased) OnAck(dst topology.NodeID, bytes int64, _ bool, rtt, now sim.Time) bool {
	ps := c.ackSettle(dst, bytes)
	if rtt <= 0 {
		return true // no sample (e.g. a test driving acks directly)
	}
	target := c.targetFor(ps, dst)
	if rtt > target {
		// Multiplicative decrease proportional to the overshoot, at most
		// once per ~RTT-scale interval (a whole window's acks report the
		// same standing queue).
		if now-ps.lastCut > c.p.RecoveryQuiet {
			ps.lastCut = now
			ps.signals++
			c.stats.TotalSignals++
			cut := 1 - c.p.DelayBeta*float64(rtt-target)/float64(rtt)
			if cut < c.p.DelayMaxCut {
				cut = c.p.DelayMaxCut
			}
			ps.window = int64(float64(ps.window) * cut)
			if ps.window < c.p.MinWindow {
				ps.window = c.p.MinWindow
			}
		}
		ps.lastSignal = now
	} else if now-ps.lastSignal > c.p.RecoveryQuiet {
		// On-target RTT: additive recovery, a fraction of the acked
		// bytes per ack.
		ps.window += bytes / 4
		if ps.window > c.p.InitialWindow {
			ps.window = c.p.InitialWindow
		}
	}
	return true
}

// OnSignal is ignored (the delay signal rides the acks).
func (c *delayBased) OnSignal(topology.NodeID, float64, sim.Time) {}
