// Package congestion implements the endpoint congestion-control algorithms
// compared in the paper (§II-D). Controller is an interface: one instance
// lives in each NIC and regulates, per destination endpoint, how many
// bytes may be outstanding and how fast packets may be injected. Four
// backends ship:
//
//   - Slingshot: hardware tracking of every in-flight packet between every
//     pair of endpoints, with stiff, fast back-pressure applied only to the
//     sources contributing to endpoint congestion. Contributing pairs are
//     throttled hard (window collapse plus pacing); everyone else keeps
//     full speed — this is the mechanism behind the paper's headline result
//     that victims on Slingshot see at most ~1.3x slowdown where Aries
//     victims see up to ~93x.
//
//   - ECN-like: a DCQCN-flavoured marking scheme whose control loop runs
//     end-to-end (mark at switch -> echo at receiver -> rate cut at
//     sender), representative of the "fragile, hard to tune" classical
//     schemes the paper contrasts with (§II-D).
//
//   - Delay-based: a Swift/TIMELY-style controller driven purely off the
//     end-to-end ack round-trip times the NIC already observes — no switch
//     support needed at all. RTT above target cuts the window in
//     proportion to the overshoot; RTT at or below target recovers
//     additively.
//
//   - None: no endpoint congestion control, the Aries baseline behaviour.
//     Sources flood until link-level credits exhaust, forming congestion
//     trees.
//
// Contracts every implementation must honour:
//
//   - Per-pair state: reactions to congestion on one destination must not
//     throttle traffic to any other destination.
//   - Liveness: CanSend must admit a packet whenever nothing is
//     outstanding to that destination, whatever the window — the hardware
//     paces, it does not halt.
//   - Determinism: controllers draw no randomness; identical call
//     sequences produce identical decisions (the simulator replays).
package congestion

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind selects the algorithm.
type Kind int

const (
	None Kind = iota
	Slingshot
	ECNLike
	Delay
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Slingshot:
		return "slingshot"
	case ECNLike:
		return "ecn"
	case Delay:
		return "delay"
	}
	return "unknown"
}

// Params tunes a controller. Zero fields take defaults from DefaultParams.
type Params struct {
	Kind Kind
	// InitialWindow is the per-destination-pair outstanding-byte budget on
	// an uncongested path; it should cover the bandwidth-delay product.
	InitialWindow int64
	// MinWindow is the floor the window collapses to under back-pressure.
	MinWindow int64
	// MaxPaceGap bounds the injection pacing delay per pair.
	MaxPaceGap sim.Time
	// RecoveryQuiet is how long a pair must go without congestion signals
	// before its window starts recovering.
	RecoveryQuiet sim.Time
	// EcnCutFactor is the multiplicative decrease applied per marked
	// round-trip in ECN mode.
	EcnCutFactor float64
	// TargetRTT is the delay-based controller's setpoint: ack RTTs above
	// it read as queueing and cut the window.
	TargetRTT sim.Time
	// DelayBeta scales the delay-based multiplicative decrease: the cut
	// factor is 1 - DelayBeta * (rtt-target)/rtt, floored at DelayMaxCut.
	DelayBeta float64
	// DelayMaxCut floors the per-RTT cut factor of the delay-based
	// controller (0.3 means the window loses at most 70% per cut).
	DelayMaxCut float64
}

// DefaultParams returns the calibrated parameters for a kind.
func DefaultParams(kind Kind) Params {
	p := Params{
		Kind: kind,
		// ~64 KiB covers the 100 Gb/s x ~3 us edge BDP several times over.
		InitialWindow: 64 * 1024,
		MinWindow:     4 * 1024, // one packet
		MaxPaceGap:    500 * sim.Microsecond,
		RecoveryQuiet: 10 * sim.Microsecond,
		EcnCutFactor:  0.5,
		// A quiet small-message round trip is ~3 us; 8 us of RTT reads as
		// several packets of standing queue at 100 Gb/s.
		TargetRTT:   8 * sim.Microsecond,
		DelayBeta:   0.8,
		DelayMaxCut: 0.3,
	}
	if kind == None {
		// Effectively unlimited: an Aries NIC keeps injecting as long as
		// link-level credits let it.
		p.InitialWindow = 1 << 40
	}
	return p
}

// Hooks declares the fabric-side detection an algorithm needs: the switch
// machinery consults them instead of hard-coding per-kind behaviour.
type Hooks struct {
	// EndpointSignals: the switch owning a congested endpoint port
	// identifies contributing sources and sends them per-pair
	// back-pressure notifications (Slingshot, §II-D).
	EndpointSignals bool
	// ECNMarks: switches mark packets crossing egress queues deeper than
	// the profile's EcnThreshold; receivers echo the mark on the ack.
	ECNMarks bool
}

// Stats counts a controller's visible reactions.
type Stats struct {
	// TotalSignals counts congestion reactions (back-pressure
	// notifications honoured, marked-ack cuts, or delay cuts).
	TotalSignals int64
	// TotalBlocks counts injection attempts deferred by window or pacing.
	TotalBlocks int64
}

// Controller regulates one NIC's injection, per destination pair.
type Controller interface {
	// Algorithm names the backend ("none", "slingshot", "ecn", "delay").
	Algorithm() string
	// Params returns the tuning the controller runs with.
	Params() Params
	// Hooks reports the fabric-side detection this algorithm needs.
	Hooks() Hooks
	// CanSend reports whether a packet of the given size may be injected
	// to dst at time now. When it may not, retryAt is the pacing deadline
	// to try again, or zero if the sender must simply wait for an
	// acknowledgement to free window space.
	CanSend(dst topology.NodeID, bytes int64, now sim.Time) (ok bool, retryAt sim.Time)
	// OnSend records an injection of bytes to dst.
	OnSend(dst topology.NodeID, bytes int64, now sim.Time)
	// OnAck records an end-to-end acknowledgement for bytes delivered to
	// dst. marked reports ECN marking observed along the path; rtt is the
	// packet's send-to-ack round-trip time (0 when unknown). It returns
	// true if the ack unblocked window space (the NIC should retry
	// pending sends).
	OnAck(dst topology.NodeID, bytes int64, marked bool, rtt, now sim.Time) bool
	// OnSignal delivers a direct back-pressure notification from the
	// fabric for traffic to dst (the switch owning the congested endpoint
	// port identifies the contributing sources and throttles exactly
	// those, §II-D). severity in (0,1] scales the response. Algorithms
	// without that channel ignore it.
	OnSignal(dst topology.NodeID, severity float64, now sim.Time)
	// Outstanding returns the in-flight bytes to dst.
	Outstanding(dst topology.NodeID) int64
	// Window returns the current window for dst.
	Window(dst topology.NodeID) int64
	// PaceGap returns the current pacing delay for dst.
	PaceGap(dst topology.NodeID) sim.Time
	// Stats exposes the reaction counters (tests/inspection).
	Stats() *Stats
}

// Builder constructs a fresh Controller. Each NIC gets its own instance,
// so controllers never share state across endpoints (or across networks
// built in parallel).
type Builder func() Controller

// TargetCalibrator is implemented by controllers whose setpoint should
// track the topology rather than a fixed constant. The fabric calls
// CalibrateTarget once per NIC at build time with a quiet-RTT oracle:
// base(dst) estimates the uncongested full-window ack round-trip from
// that NIC to dst. The delay-based backend uses it to raise its
// per-destination TargetRTT above the configured floor where the quiet
// path alone exceeds it — on a 1024-node fat-tree the cross-spine RTT
// passes 8 µs before any queue forms, and an uncalibrated controller
// reads the topology itself as congestion and over-throttles.
type TargetCalibrator interface {
	CalibrateTarget(base func(dst topology.NodeID) sim.Time)
}

// NewController returns a controller of p.Kind with the given parameters
// (zero params take the kind's defaults).
func NewController(p Params) Controller {
	if p.InitialWindow == 0 {
		p = DefaultParams(p.Kind)
	}
	b := newBase(p)
	switch p.Kind {
	case Slingshot:
		return &slingshot{base: b}
	case ECNLike:
		return &ecnLike{base: b}
	case Delay:
		return &delayBased{base: b}
	default:
		return &noCC{base: b}
	}
}

// BuilderFor returns a Builder producing controllers with the given
// parameters.
func BuilderFor(p Params) Builder {
	return func() Controller { return NewController(p) }
}

// kinds is the single list of selectable algorithms ByName and Names
// derive from; a new backend is added here (plus Kind.String and
// NewController's dispatch).
var kinds = [...]Kind{None, Slingshot, ECNLike, Delay}

// ByName returns a Builder for an algorithm name with its default
// parameters.
func ByName(name string) (Builder, error) {
	for _, k := range kinds {
		if k.String() == name {
			return BuilderFor(DefaultParams(k)), nil
		}
	}
	return nil, fmt.Errorf("congestion: unknown algorithm %q (have %v)", name, Names())
}

// Names lists the selectable algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}
