// Package congestion implements the endpoint congestion-control algorithms
// compared in the paper (§II-D):
//
//   - Slingshot: hardware tracking of every in-flight packet between every
//     pair of endpoints, with stiff, fast back-pressure applied only to the
//     sources contributing to endpoint congestion. Contributing pairs are
//     throttled hard (window collapse plus pacing); everyone else keeps
//     full speed — this is the mechanism behind the paper's headline result
//     that victims on Slingshot see at most ~1.3x slowdown where Aries
//     victims see up to ~93x.
//
//   - ECN-like: a DCQCN-flavoured marking scheme whose control loop runs
//     end-to-end (mark at switch -> echo at receiver -> rate cut at
//     sender), representative of the "fragile, hard to tune" classical
//     schemes the paper contrasts with (§II-D).
//
//   - None: no endpoint congestion control, the Aries baseline behaviour.
//     Sources flood until link-level credits exhaust, forming congestion
//     trees.
//
// One Controller instance lives in each NIC; it regulates, per destination
// endpoint, how many bytes may be outstanding and how fast packets may be
// injected.
package congestion

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind selects the algorithm.
type Kind int

const (
	None Kind = iota
	Slingshot
	ECNLike
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Slingshot:
		return "slingshot"
	case ECNLike:
		return "ecn"
	}
	return "unknown"
}

// Params tunes a controller. Zero fields take defaults from DefaultParams.
type Params struct {
	Kind Kind
	// InitialWindow is the per-destination-pair outstanding-byte budget on
	// an uncongested path; it should cover the bandwidth-delay product.
	InitialWindow int64
	// MinWindow is the floor the window collapses to under back-pressure.
	MinWindow int64
	// MaxPaceGap bounds the injection pacing delay per pair.
	MaxPaceGap sim.Time
	// RecoveryQuiet is how long a pair must go without congestion signals
	// before its window starts recovering.
	RecoveryQuiet sim.Time
	// EcnCutFactor is the multiplicative decrease applied per marked
	// round-trip in ECN mode.
	EcnCutFactor float64
}

// DefaultParams returns the calibrated parameters for a kind.
func DefaultParams(kind Kind) Params {
	p := Params{
		Kind: kind,
		// ~64 KiB covers the 100 Gb/s x ~3 us edge BDP several times over.
		InitialWindow: 64 * 1024,
		MinWindow:     4 * 1024, // one packet
		MaxPaceGap:    500 * sim.Microsecond,
		RecoveryQuiet: 10 * sim.Microsecond,
		EcnCutFactor:  0.5,
	}
	if kind == None {
		// Effectively unlimited: an Aries NIC keeps injecting as long as
		// link-level credits let it.
		p.InitialWindow = 1 << 40
	}
	return p
}

type pairState struct {
	window      int64
	outstanding int64
	paceGap     sim.Time
	nextSend    sim.Time
	lastSignal  sim.Time
	// ECN: one cut per congestion window / RTT.
	lastCut sim.Time
	// Slingshot: one pacing escalation per interval.
	lastEscalate sim.Time
	// Stats.
	signals int64
}

// Controller regulates one NIC's injection, per destination pair.
type Controller struct {
	P     Params
	pairs map[topology.NodeID]*pairState
	// Stats.
	TotalSignals int64
	TotalBlocks  int64
}

// NewController returns a controller with the given parameters.
func NewController(p Params) *Controller {
	if p.InitialWindow == 0 {
		p = DefaultParams(p.Kind)
	}
	return &Controller{P: p, pairs: make(map[topology.NodeID]*pairState)}
}

func (c *Controller) pair(dst topology.NodeID) *pairState {
	ps := c.pairs[dst]
	if ps == nil {
		ps = &pairState{window: c.P.InitialWindow, lastSignal: -sim.Forever / 2, lastCut: -sim.Forever / 2}
		c.pairs[dst] = ps
	}
	return ps
}

// CanSend reports whether a packet of the given size may be injected to
// dst at time now. When it may not, retryAt is the pacing deadline to try
// again, or zero if the sender must simply wait for an acknowledgement to
// free window space.
func (c *Controller) CanSend(dst topology.NodeID, bytes int64, now sim.Time) (ok bool, retryAt sim.Time) {
	ps := c.pair(dst)
	if now < ps.nextSend {
		c.TotalBlocks++
		return false, ps.nextSend
	}
	// Always allow at least one packet in flight, whatever the window, so
	// progress is never completely stopped (the hardware paces, it does not
	// halt).
	if ps.outstanding > 0 && ps.outstanding+bytes > ps.window {
		c.TotalBlocks++
		return false, 0
	}
	return true, 0
}

// OnSend records an injection of bytes to dst.
func (c *Controller) OnSend(dst topology.NodeID, bytes int64, now sim.Time) {
	ps := c.pair(dst)
	ps.outstanding += bytes
	if ps.paceGap > 0 {
		ps.nextSend = now + ps.paceGap
	}
}

// OnAck records an end-to-end acknowledgement for bytes delivered to dst.
// marked reports ECN marking observed along the path (ECN mode only).
// It returns true if the ack unblocked window space (the NIC should retry
// pending sends).
func (c *Controller) OnAck(dst topology.NodeID, bytes int64, marked bool, now sim.Time) bool {
	ps := c.pair(dst)
	ps.outstanding -= bytes
	if ps.outstanding < 0 {
		ps.outstanding = 0
	}
	switch c.P.Kind {
	case None:
		// No reaction.
	case Slingshot:
		// Quiet period passed: fast additive recovery plus pacing decay.
		if now-ps.lastSignal > c.P.RecoveryQuiet {
			ps.window += bytes
			if ps.window > c.P.InitialWindow {
				ps.window = c.P.InitialWindow
			}
			ps.paceGap /= 2
			if ps.paceGap < 100*sim.Nanosecond {
				ps.paceGap = 0
			}
		}
	case ECNLike:
		if marked {
			// At most one multiplicative cut per ~RTT-scale interval; the
			// long reaction path is what makes classical ECN fragile under
			// bursty incast.
			if now-ps.lastCut > c.P.RecoveryQuiet {
				ps.lastCut = now
				ps.signals++
				c.TotalSignals++
				ps.window = int64(float64(ps.window) * c.P.EcnCutFactor)
				if ps.window < c.P.MinWindow {
					ps.window = c.P.MinWindow
				}
			}
			ps.lastSignal = now
		} else if now-ps.lastSignal > 4*c.P.RecoveryQuiet {
			// Slow additive recovery, a fraction of the acked bytes.
			ps.window += bytes / 8
			if ps.window > c.P.InitialWindow {
				ps.window = c.P.InitialWindow
			}
		}
	}
	return true
}

// OnSignal delivers a direct back-pressure notification from the fabric for
// traffic to dst (Slingshot mode: the switch owning the congested endpoint
// port identifies the contributing sources and throttles exactly those,
// §II-D). severity in (0,1] scales the response.
func (c *Controller) OnSignal(dst topology.NodeID, severity float64, now sim.Time) {
	if c.P.Kind != Slingshot {
		return
	}
	ps := c.pair(dst)
	ps.lastSignal = now
	ps.signals++
	c.TotalSignals++
	// Stiff and fast: collapse the window...
	ps.window = c.P.MinWindow
	// ...and escalate pacing multiplicatively while signals keep coming.
	// Escalation is rate-limited (a burst of notifications from one queue
	// sweep counts once).
	const escalateEvery = 2 * sim.Microsecond
	switch {
	case ps.paceGap == 0:
		ps.paceGap = sim.Time(float64(2*sim.Microsecond) * severity)
		if ps.paceGap < 200*sim.Nanosecond {
			ps.paceGap = 200 * sim.Nanosecond
		}
		ps.lastEscalate = now
	case now-ps.lastEscalate >= escalateEvery:
		ps.paceGap *= 2
		ps.lastEscalate = now
	}
	if ps.paceGap > c.P.MaxPaceGap {
		ps.paceGap = c.P.MaxPaceGap
	}
	if ps.nextSend < now+ps.paceGap {
		ps.nextSend = now + ps.paceGap
	}
}

// Outstanding returns the in-flight bytes to dst.
func (c *Controller) Outstanding(dst topology.NodeID) int64 {
	if ps := c.pairs[dst]; ps != nil {
		return ps.outstanding
	}
	return 0
}

// Window returns the current window for dst.
func (c *Controller) Window(dst topology.NodeID) int64 {
	return c.pair(dst).window
}

// PaceGap returns the current pacing delay for dst (tests/inspection).
func (c *Controller) PaceGap(dst topology.NodeID) sim.Time {
	return c.pair(dst).paceGap
}
