package congestion

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

const dst = topology.NodeID(7)

func TestKindString(t *testing.T) {
	if None.String() != "none" || Slingshot.String() != "slingshot" ||
		ECNLike.String() != "ecn" || Delay.String() != "delay" ||
		Kind(9).String() != "unknown" {
		t.Error("kind strings wrong")
	}
}

func TestAlgorithmAndHooks(t *testing.T) {
	cases := []struct {
		kind  Kind
		hooks Hooks
	}{
		{None, Hooks{}},
		{Slingshot, Hooks{EndpointSignals: true}},
		{ECNLike, Hooks{ECNMarks: true}},
		{Delay, Hooks{}},
	}
	for _, c := range cases {
		ctrl := NewController(DefaultParams(c.kind))
		if ctrl.Algorithm() != c.kind.String() {
			t.Errorf("%v: Algorithm() = %q", c.kind, ctrl.Algorithm())
		}
		if ctrl.Hooks() != c.hooks {
			t.Errorf("%v: Hooks() = %+v, want %+v", c.kind, ctrl.Hooks(), c.hooks)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"none", "slingshot", "ecn", "delay"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got := b().Algorithm(); got != name {
			t.Errorf("ByName(%q) builds %q", name, got)
		}
	}
	if _, err := ByName("tcp-reno"); err == nil {
		t.Error("ByName of unknown algorithm did not error")
	}
}

func TestNoneUnlimited(t *testing.T) {
	c := NewController(DefaultParams(None))
	now := sim.Time(0)
	// Send far more than any reasonable window; None never blocks.
	for i := 0; i < 1000; i++ {
		ok, _ := c.CanSend(dst, 4096, now)
		if !ok {
			t.Fatalf("None blocked at packet %d", i)
		}
		c.OnSend(dst, 4096, now)
	}
	// Signals are ignored.
	c.OnSignal(dst, 1, now)
	if ok, _ := c.CanSend(dst, 4096, now); !ok {
		t.Error("None reacted to a signal")
	}
}

func TestWindowLimits(t *testing.T) {
	p := DefaultParams(Slingshot)
	c := NewController(p)
	now := sim.Time(0)
	sentBytes := int64(0)
	for {
		ok, _ := c.CanSend(dst, 4096, now)
		if !ok {
			break
		}
		c.OnSend(dst, 4096, now)
		sentBytes += 4096
		if sentBytes > 10*p.InitialWindow {
			t.Fatal("window never closed")
		}
	}
	// Outstanding is within one packet of the initial window.
	if got := c.Outstanding(dst); got < p.InitialWindow-4096 || got > p.InitialWindow+4096 {
		t.Errorf("outstanding = %d, window %d", got, p.InitialWindow)
	}
	// Acks free space.
	c.OnAck(dst, 4096, false, 0, now)
	if ok, _ := c.CanSend(dst, 4096, now); !ok {
		t.Error("ack did not free window space")
	}
}

func TestAlwaysOnePacketInFlight(t *testing.T) {
	c := NewController(DefaultParams(Slingshot))
	now := sim.Time(0)
	c.OnSignal(dst, 1, now) // collapse window to MinWindow = 4096
	now += c.PaceGap(dst)
	// A packet bigger than the collapsed window must still be sendable
	// when nothing is outstanding.
	ok, _ := c.CanSend(dst, 8192, now)
	if !ok {
		t.Error("zero-outstanding send blocked by window")
	}
}

func TestSlingshotSignalCollapsesWindow(t *testing.T) {
	p := DefaultParams(Slingshot)
	c := NewController(p)
	now := sim.Time(0)
	if c.Window(dst) != p.InitialWindow {
		t.Fatalf("initial window = %d", c.Window(dst))
	}
	c.OnSignal(dst, 1, now)
	if c.Window(dst) != p.MinWindow {
		t.Errorf("window after signal = %d, want %d", c.Window(dst), p.MinWindow)
	}
	if c.PaceGap(dst) == 0 {
		t.Error("no pacing after signal")
	}
	// Pacing blocks immediate sends.
	if ok, retry := c.CanSend(dst, 4096, now); ok || retry <= now {
		t.Errorf("pacing not enforced: ok=%v retry=%v", ok, retry)
	}
}

func TestSlingshotPacingEscalates(t *testing.T) {
	c := NewController(DefaultParams(Slingshot))
	now := sim.Time(0)
	c.OnSignal(dst, 1, now)
	g1 := c.PaceGap(dst)
	// Bursts within the rate-limit window count once.
	c.OnSignal(dst, 1, now+sim.Microsecond)
	if c.PaceGap(dst) != g1 {
		t.Errorf("pacing escalated inside the rate-limit window")
	}
	c.OnSignal(dst, 1, now+3*sim.Microsecond)
	g2 := c.PaceGap(dst)
	if g2 <= g1 {
		t.Errorf("pacing did not escalate: %v -> %v", g1, g2)
	}
	// Capped.
	for i := 0; i < 40; i++ {
		c.OnSignal(dst, 1, now+sim.Time(3*i)*sim.Microsecond)
	}
	if c.PaceGap(dst) > DefaultParams(Slingshot).MaxPaceGap {
		t.Errorf("pace gap exceeded cap: %v", c.PaceGap(dst))
	}
}

func TestSlingshotRecovery(t *testing.T) {
	p := DefaultParams(Slingshot)
	c := NewController(p)
	now := sim.Time(0)
	c.OnSignal(dst, 1, now)
	// Acks inside the quiet period do not recover.
	c.OnAck(dst, 4096, false, 0, now+sim.Microsecond)
	if c.Window(dst) != p.MinWindow {
		t.Error("recovered during quiet period")
	}
	// After the quiet period, acks recover the window and relax pacing.
	later := now + p.RecoveryQuiet + sim.Microsecond
	for i := 0; i < 100; i++ {
		c.OnAck(dst, 4096, false, 0, later+sim.Time(i)*sim.Microsecond)
	}
	if c.Window(dst) != p.InitialWindow {
		t.Errorf("window did not recover: %d", c.Window(dst))
	}
	if c.PaceGap(dst) != 0 {
		t.Errorf("pacing did not decay: %v", c.PaceGap(dst))
	}
}

func TestSlingshotPerPairIsolation(t *testing.T) {
	// The defining Slingshot property (§II-D): throttling one destination
	// pair leaves other pairs at full speed.
	c := NewController(DefaultParams(Slingshot))
	other := topology.NodeID(9)
	now := sim.Time(0)
	c.OnSignal(dst, 1, now)
	if c.Window(dst) == c.Window(other) {
		t.Error("signal leaked to unrelated pair")
	}
	if ok, _ := c.CanSend(other, 4096, now); !ok {
		t.Error("unrelated pair blocked")
	}
}

func TestECNCutOnMarkedAck(t *testing.T) {
	p := DefaultParams(ECNLike)
	c := NewController(p)
	now := sim.Time(0)
	w0 := c.Window(dst)
	c.OnAck(dst, 4096, true, 0, now)
	w1 := c.Window(dst)
	if w1 != int64(float64(w0)*p.EcnCutFactor) {
		t.Errorf("window after mark = %d, want %d", w1, int64(float64(w0)*p.EcnCutFactor))
	}
	// A second mark immediately after does not double-cut (once per RTT).
	c.OnAck(dst, 4096, true, 0, now+sim.Microsecond)
	if c.Window(dst) != w1 {
		t.Errorf("double cut within RTT: %d", c.Window(dst))
	}
	// Cuts bottom out at MinWindow.
	for i := 0; i < 20; i++ {
		c.OnAck(dst, 4096, true, 0, now+sim.Time(i+1)*p.RecoveryQuiet*2)
	}
	if c.Window(dst) != p.MinWindow {
		t.Errorf("window floor = %d, want %d", c.Window(dst), p.MinWindow)
	}
}

func TestECNSlowRecovery(t *testing.T) {
	p := DefaultParams(ECNLike)
	c := NewController(p)
	now := sim.Time(0)
	c.OnAck(dst, 4096, true, 0, now)
	cut := c.Window(dst)
	// Recovery is slower than Slingshot's: after the same number of acks
	// in quiet, ECN regains only a fraction.
	later := now + 5*p.RecoveryQuiet
	for i := 0; i < 10; i++ {
		c.OnAck(dst, 4096, false, 0, later+sim.Time(i)*sim.Microsecond)
	}
	if c.Window(dst) <= cut {
		t.Error("no recovery at all")
	}
	if c.Window(dst) >= p.InitialWindow {
		t.Error("ECN recovered implausibly fast")
	}
	// ECN ignores direct signals (it has no such channel).
	w := c.Window(dst)
	c.OnSignal(dst, 1, later)
	if c.Window(dst) != w {
		t.Error("ECN reacted to a direct signal")
	}
}

func TestDelayCutsOnHighRTT(t *testing.T) {
	p := DefaultParams(Delay)
	c := NewController(p)
	now := sim.Time(0)
	w0 := c.Window(dst)
	// RTT at the target: no cut.
	c.OnAck(dst, 4096, false, p.TargetRTT, now)
	if c.Window(dst) < w0 {
		t.Error("on-target RTT cut the window")
	}
	// RTT well past the target: proportional multiplicative cut.
	now += p.RecoveryQuiet + sim.Microsecond
	rtt := 2 * p.TargetRTT
	c.OnAck(dst, 4096, false, rtt, now)
	want := int64(float64(w0) * (1 - p.DelayBeta*float64(rtt-p.TargetRTT)/float64(rtt)))
	if got := c.Window(dst); got != want {
		t.Errorf("window after 2x-target RTT = %d, want %d", got, want)
	}
	// A second high sample immediately after does not double-cut.
	w1 := c.Window(dst)
	c.OnAck(dst, 4096, false, rtt, now+sim.Microsecond)
	if c.Window(dst) != w1 {
		t.Error("double cut within the rate-limit interval")
	}
	// Extreme RTTs are floored at DelayMaxCut per interval and bottom out
	// at MinWindow.
	for i := 0; i < 30; i++ {
		c.OnAck(dst, 4096, false, 100*p.TargetRTT, now+sim.Time(i+1)*p.RecoveryQuiet*2)
	}
	if c.Window(dst) != p.MinWindow {
		t.Errorf("window floor = %d, want %d", c.Window(dst), p.MinWindow)
	}
}

func TestDelayRecoversOnTargetRTT(t *testing.T) {
	p := DefaultParams(Delay)
	c := NewController(p)
	now := sim.Time(0)
	c.OnAck(dst, 4096, false, 4*p.TargetRTT, now)
	cut := c.Window(dst)
	if cut >= p.InitialWindow {
		t.Fatal("high RTT did not cut")
	}
	// On-target samples after the quiet period recover additively.
	later := now + 2*p.RecoveryQuiet
	for i := 0; i < 200; i++ {
		c.OnAck(dst, 4096, false, p.TargetRTT/2, later+sim.Time(i)*sim.Microsecond)
	}
	if c.Window(dst) <= cut {
		t.Error("no recovery from on-target RTTs")
	}
	if c.Window(dst) > p.InitialWindow {
		t.Error("recovery overshot the initial window")
	}
	// Zero RTT (no sample) neither cuts nor recovers.
	w := c.Window(dst)
	c.OnAck(dst, 4096, false, 0, later+300*sim.Microsecond)
	if c.Window(dst) != w {
		t.Error("sampleless ack moved the window")
	}
	// Delay ignores direct signals and needs no fabric hooks.
	c.OnSignal(dst, 1, later)
	if c.Window(dst) != w {
		t.Error("delay controller reacted to a direct signal")
	}
}

func TestDelayTargetCalibration(t *testing.T) {
	p := DefaultParams(Delay)
	c := NewController(p)
	far := topology.NodeID(11)
	cal, ok := c.(TargetCalibrator)
	if !ok {
		t.Fatal("delay controller does not implement TargetCalibrator")
	}
	// Oracle: the far pair's quiet RTT is past the fixed floor, dst's is
	// below it.
	farBase := p.TargetRTT + 4*sim.Microsecond
	cal.CalibrateTarget(func(d topology.NodeID) sim.Time {
		if d == far {
			return farBase
		}
		return p.TargetRTT / 2
	})
	// A sample between floor and calibrated base is the topology speaking,
	// not a queue: no cut on the far pair.
	rtt := p.TargetRTT + 2*sim.Microsecond
	c.OnAck(far, 4096, false, rtt, 0)
	if c.Window(far) != p.InitialWindow || c.Stats().TotalSignals != 0 {
		t.Errorf("calibrated pair cut on a sub-base RTT: window %d, signals %d",
			c.Window(far), c.Stats().TotalSignals)
	}
	// The same sample on the short pair is real queueing: cut, and with
	// the overshoot measured against the floor (the oracle never lowers
	// the target below Params.TargetRTT).
	c.OnAck(dst, 4096, false, rtt, 0)
	want := int64(float64(p.InitialWindow) * (1 - p.DelayBeta*float64(rtt-p.TargetRTT)/float64(rtt)))
	if got := c.Window(dst); got != want {
		t.Errorf("short pair window = %d, want %d", got, want)
	}
	// Past the calibrated base the far pair cuts too — calibration raises
	// the setpoint, it does not disable the controller.
	now := 2 * p.RecoveryQuiet
	c.OnAck(far, 4096, false, 2*farBase, now)
	if c.Window(far) >= p.InitialWindow {
		t.Error("far pair never cuts despite RTT past its calibrated base")
	}
	// An uncalibrated controller cuts the far pair on the sub-base sample:
	// the over-throttle the oracle exists to prevent.
	u := NewController(p)
	u.OnAck(far, 4096, false, rtt, 0)
	if u.Window(far) >= p.InitialWindow {
		// Expected: this is the misbehaviour. Guard the premise.
	} else if u.Stats().TotalSignals == 0 {
		t.Error("uncalibrated cut without counting a signal")
	}
	if u.Window(far) == p.InitialWindow {
		t.Error("uncalibrated controller did not cut on the sub-base RTT; the fixture lost its point")
	}
}

func TestDelayPerPairIsolation(t *testing.T) {
	p := DefaultParams(Delay)
	c := NewController(p)
	other := topology.NodeID(9)
	c.OnAck(dst, 4096, false, 4*p.TargetRTT, 0)
	if c.Window(dst) >= c.Window(other) {
		t.Error("cut leaked to unrelated pair")
	}
}

func TestOutstandingNeverNegative(t *testing.T) {
	c := NewController(DefaultParams(Slingshot))
	c.OnAck(dst, 4096, false, 0, 0) // ack with nothing outstanding
	if got := c.Outstanding(dst); got != 0 {
		t.Errorf("outstanding = %d", got)
	}
}

func TestZeroParamsGetDefaults(t *testing.T) {
	c := NewController(Params{Kind: Slingshot})
	if c.Params().InitialWindow == 0 || c.Params().MinWindow == 0 {
		t.Error("defaults not applied")
	}
}

func TestStatsCountBlocksAndSignals(t *testing.T) {
	c := NewController(DefaultParams(Slingshot))
	c.OnSignal(dst, 1, 0)
	if c.Stats().TotalSignals != 1 {
		t.Errorf("TotalSignals = %d", c.Stats().TotalSignals)
	}
	if ok, _ := c.CanSend(dst, 4096, 0); ok {
		t.Fatal("expected pacing block")
	}
	if c.Stats().TotalBlocks != 1 {
		t.Errorf("TotalBlocks = %d", c.Stats().TotalBlocks)
	}
}
