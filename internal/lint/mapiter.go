package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags `for … range` over map values in the sim-core packages.
// Go randomizes map iteration order, so any map range whose body's effect
// depends on visit order (scheduling, RNG draws, accumulating into
// non-commutative state) breaks bit-exact replay — the class of bug the
// eight seed-7 golden files exist to catch, found here at vet time
// instead.
var MapIter = &Analyzer{
	Name:      "mapiter",
	Doc:       "flags nondeterministic map iteration in sim-core packages",
	Directive: "sortediter",
	Run:       runMapIter,
}

func runMapIter(pass *Pass) {
	if !corePackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rs.For,
				"iterate sorted keys (or another input-determined order), or annotate //simlint:sortediter -- <why the consumption is order-independent>",
				"range over map %s iterates in nondeterministic order (breaks bit-exact replay)",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
}
