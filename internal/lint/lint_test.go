package lint

// The fixture tests mirror x/tools' analysistest: each analyzer runs
// over a testdata/ file whose lines carry `// want "regexp"` markers,
// and the test asserts the diagnostics match the markers exactly — every
// marker hit, nothing unmarked reported. Fixtures are type-checked under
// a synthetic sim-core import path so package-scoped analyzers engage,
// with real repro/... and stdlib imports resolved through the same
// export-data importer the standalone runner uses.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixturePkgPath is the import path fixtures are type-checked under: a
// sim-core package, so every analyzer's package gate is open.
const fixturePkgPath = "repro/internal/workloads"

var fixtureEnv struct {
	once sync.Once
	fset *token.FileSet
	imp  types.Importer
	err  error
}

// fixtureImporter builds (once) an export-data importer covering the
// real packages fixtures import.
func fixtureImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	fixtureEnv.once.Do(func() {
		pkgs, err := goList("../..",
			"./internal/sim", "./internal/fabric", "fmt", "time", "math/rand")
		if err != nil {
			fixtureEnv.err = err
			return
		}
		exports := map[string]string{}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
		fixtureEnv.fset = token.NewFileSet()
		fixtureEnv.imp = exportImporter(fixtureEnv.fset, func(path string) string {
			return exports[path]
		})
	})
	if fixtureEnv.err != nil {
		t.Fatalf("loading fixture export data (needs the go tool): %v", fixtureEnv.err)
	}
	return fixtureEnv.fset, fixtureEnv.imp
}

// loadFixture parses and type-checks one testdata file.
func loadFixture(t *testing.T, name string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset, imp := fixtureImporter(t)
	path := filepath.Join("testdata", name)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	files := []*ast.File{f}
	info := NewInfo()
	pkg, err := typecheck(fset, fixturePkgPath, files, imp, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return fset, files, pkg, info
}

var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// parseWants reads the `// want "re"` markers of a fixture, keyed by
// line. A line may carry several markers.
func parseWants(t *testing.T, name string) map[int][]*regexp.Regexp {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int][]*regexp.Regexp{}
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
			pat := strings.ReplaceAll(m[1], `\"`, `"`)
			wants[i+1] = append(wants[i+1], regexp.MustCompile(pat))
		}
	}
	return wants
}

// runFixture runs one analyzer over a fixture and checks its diagnostics
// against the want markers.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	fset, files, pkg, info := loadFixture(t, name)
	diags := RunAnalyzers([]*Analyzer{a}, fset, files, pkg, info)
	wants := parseWants(t, name)

	matched := map[int]map[int]bool{} // line -> want index -> hit
	for _, d := range diags {
		ok := false
		for i, re := range wants[d.Pos.Line] {
			if re.MatchString(d.Message) {
				if matched[d.Pos.Line] == nil {
					matched[d.Pos.Line] = map[int]bool{}
				}
				matched[d.Pos.Line][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", name, d.Pos.Line, d.Message)
		}
	}
	for line, res := range wants {
		for i, re := range res {
			if !matched[line][i] {
				t.Errorf("%s:%d: no diagnostic matched want %q", name, line, re)
			}
		}
	}
}

func TestMapIterFixture(t *testing.T)     { runFixture(t, MapIter, "mapiter.go") }
func TestWallTimeFixture(t *testing.T)    { runFixture(t, WallTime, "walltime.go") }
func TestHotPathFixture(t *testing.T)     { runFixture(t, HotPath, "hotpath.go") }
func TestFreeListFixture(t *testing.T)    { runFixture(t, FreeList, "freelist.go") }
func TestSchedFuncFixture(t *testing.T)   { runFixture(t, SchedFunc, "schedfunc.go") }
func TestSpineFixture(t *testing.T)       { runFixture(t, Spine, "spine.go") }
func TestSharedStateFixture(t *testing.T) { runFixture(t, SharedState, "sharedstate.go") }
func TestRNGStreamFixture(t *testing.T)   { runFixture(t, RNGStream, "rngstream.go") }

// TestDirectiveAnalyzer uses explicit expectations: its diagnostics land
// on the directive comments themselves, where inline want-markers cannot
// live without becoming part of the directive.
func TestDirectiveAnalyzer(t *testing.T) {
	fset, files, pkg, info := loadFixture(t, "directive.go")
	diags := RunAnalyzers([]*Analyzer{Directive}, fset, files, pkg, info)

	want := []struct {
		substr string
	}{
		{`unknown simlint directive "sortedlter"`},
		{"needs a justification"},
		{"annotates function declarations"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w.substr) {
			t.Errorf("diag %d = %q, want containing %q", i, diags[i].Message, w.substr)
		}
	}
}

// TestAnalyzersCleanOnEachOther runs every analyzer over a fixture
// written for a different one: the constructs each fixture exercises
// must not trip unrelated analyzers (mapiter's fixture has no clock
// reads, schedfunc's no map ranges, ...).
func TestAnalyzersCleanOnEachOther(t *testing.T) {
	cases := map[string]*Analyzer{
		"mapiter.go":     MapIter,
		"walltime.go":    WallTime,
		"schedfunc.go":   SchedFunc,
		"spine.go":       Spine,
		"sharedstate.go": SharedState,
		"rngstream.go":   RNGStream,
	}
	for name, owner := range cases {
		fset, files, pkg, info := loadFixture(t, name)
		for _, a := range All() {
			if a == owner || a == Directive {
				continue // fixtures carry their owner's directives, validated above
			}
			if diags := RunAnalyzers([]*Analyzer{a}, fset, files, pkg, info); len(diags) > 0 {
				t.Errorf("%s on %s: unexpected diagnostics: %v", a.Name, name, diags)
			}
		}
	}
}

// TestByName covers the analyzer-selection flag.
func TestByName(t *testing.T) {
	got, err := ByName("mapiter,walltime")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != MapIter || got[1] != WallTime {
		t.Errorf("ByName selected %v", got)
	}
	if all, _ := ByName(""); len(all) != len(All()) {
		t.Error("empty selection should mean all analyzers")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown analyzer name should error")
	}
}

// TestDirectiveSameLineAndAbove pins the suppression grammar: a
// directive suppresses on its own line and the line below, nothing else.
func TestDirectiveSameLineAndAbove(t *testing.T) {
	idx := &directiveIndex{byLine: map[string]map[int][]directive{
		"f.go": {10: {{name: "allocok", line: 10, file: "f.go"}}},
	}}
	pos := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	if !idx.suppresses("allocok", pos(10)) {
		t.Error("same-line directive should suppress")
	}
	if !idx.suppresses("allocok", pos(11)) {
		t.Error("line-above directive should suppress")
	}
	if idx.suppresses("allocok", pos(12)) {
		t.Error("directive two lines up must not suppress")
	}
	if idx.suppresses("sortediter", pos(10)) {
		t.Error("a different directive name must not suppress")
	}
}
