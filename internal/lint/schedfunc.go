package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SchedFunc flags Engine.ScheduleFunc/AfterFunc outside test files and
// examples/. The func shims allocate a closure (and box it into
// Event.Data) per event — fine in tests and demos, but simulation and
// experiment code must use static Handler implementations so the
// steady-state event loop stays allocation-free.
var SchedFunc = &Analyzer{
	Name:      "schedfunc",
	Doc:       "flags the alloc-per-event ScheduleFunc/AfterFunc shims outside tests and examples",
	Directive: "allocok",
	Run:       runSchedFunc,
}

func runSchedFunc(pass *Pass) {
	// Unlike moduleOnly, cmd/ stays in scope: experiment drivers schedule
	// real events too. Only examples/ (and test files, globally) may use
	// the shims freely.
	path := pass.Pkg.Path()
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return
	}
	if strings.HasPrefix(path, "repro/examples/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || (fn.Name() != "ScheduleFunc" && fn.Name() != "AfterFunc") {
				return true
			}
			recv := fn.Signature().Recv()
			if recv == nil || !isNamedPtr(recv.Type(), "repro/internal/sim", "Engine") {
				return true
			}
			pass.Reportf(call.Pos(),
				"define a static Handler type (often a pointer alias of the owning object) and Schedule it with context in Event.Arg/Data",
				"Engine.%s allocates a closure per event; use a static Handler in non-test code", fn.Name())
			return true
		})
	}
}
