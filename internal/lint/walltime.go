package lint

import (
	"go/ast"
	"go/types"
)

// WallTime flags host-clock and global-RNG use in library code. Simulated
// sim.Time and seeded per-run *sim.RNG streams are the only clock and
// randomness sources allowed outside cmd/, examples/, and test files:
// time.Now in a result path makes output differ across runs, and the
// global math/rand stream is seeded per-process, shared across
// everything, and ordered by call interleaving — all three properties
// break replay.
var WallTime = &Analyzer{
	Name:      "walltime",
	Doc:       "flags wall-clock reads and global math/rand use in library code",
	Directive: "wallclock",
	Run:       runWallTime,
}

// wallTimeFuncs are the time package functions that read or wait on the
// host clock. Types (time.Time, time.Duration) and pure constructors
// (time.Date, time.Unix) stay legal: only host-clock *reads* are
// nondeterministic.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than drawing from the global stream; they
// are fine (the walltime analyzer would still catch a time.Now seed).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallTime(pass *Pass) {
	if !moduleOnly(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn on an owned generator, or
			// time.Time.Sub on simulation-derived stamps) are fine; only
			// package-level functions touch the host clock or the global
			// stream.
			if fn.Signature().Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"use simulated sim.Time from the engine (or inject a Clock and annotate its wall implementation //simlint:wallclock -- <why>)",
						"time.%s reads the host clock; library code must use simulated time", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"draw from a seeded per-run *sim.RNG stream instead of the process-global generator",
						"%s.%s uses the global math/rand stream; library code must use seeded per-run RNG streams",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}
