package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RNGStream enforces the simulator's RNG-stream ownership discipline, so
// the deterministic draw order survives the coming parallel-engine
// domain decomposition. Every *sim.RNG is an owned stream: components
// receive their own via Split() at construction and draw from it
// single-threadedly. The analyzer flags the three ways a stream leaks
// into shared or concurrent hands (module-wide):
//
//   - a package-level variable whose type contains *sim.RNG — one
//     stream visible to every Engine in the process;
//   - a *sim.RNG passed into a goroutine (as a `go` argument, a method
//     receiver, or a closure capture) — concurrent draws race and
//     scramble replay order;
//   - a *sim.RNG function parameter stored into an existing struct's
//     field or a package variable — the callee aliases the caller's
//     stream, so two owners now interleave draws. Constructing a fresh
//     value around the parameter (a composite literal, the constructor
//     idiom where ownership transfers) is sanctioned; so is storing the
//     result of rng.Split(), which mints a new stream.
//
// Justified exceptions carry //simlint:rngok -- <why>.
var RNGStream = &Analyzer{
	Name:      "rngstream",
	Doc:       "flags *sim.RNG streams in package state, shared fields, or goroutines",
	Directive: "rngok",
	Run:       runRNGStream,
}

func runRNGStream(pass *Pass) {
	if !moduleOnly(pass.Pkg.Path()) {
		return
	}

	for _, f := range pass.Files {
		// Package-level state containing a stream.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					v, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || !containsRNG(v.Type(), nil) {
						continue
					}
					pass.Reportf(name.Pos(),
						"give each component an owned stream via rng.Split() at construction; package-level streams are shared by every Engine",
						"package-level var %s holds a *sim.RNG stream (shared draw order)", name.Name)
				}
			}
		}

		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRNGFunc(pass, fd)
		}
	}
}

func checkRNGFunc(pass *Pass, fd *ast.FuncDecl) {
	// The function's own *sim.RNG parameters: the streams it borrows but
	// does not own.
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && isRNGPtr(pass.Info, obj.Type()) {
					params[obj] = true
				}
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			checkGoStmt(pass, fd, n)
		case *ast.AssignStmt:
			if len(params) == 0 || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || !params[pass.Info.Uses[id]] {
					continue
				}
				if storesToSharedPlace(pass.Info, n.Lhs[i]) {
					pass.Reportf(rhs.Pos(),
						"store rng.Split() instead: the field then owns a fresh stream instead of aliasing the caller's",
						"*sim.RNG parameter %q stored into shared state aliases the caller's stream (two owners interleave draws)",
						id.Name)
				}
			}
		}
		return true
	})
}

// checkGoStmt flags streams crossing into a goroutine: via arguments,
// via the receiver of a method call, or via closure capture.
func checkGoStmt(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt) {
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"keep each stream inside one goroutine; hand workers their own Split() streams before the go statement",
			"*sim.RNG %s into a goroutine: concurrent draws scramble the deterministic replay order", what)
	}
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && containsRNG(tv.Type, nil) {
			report(arg.Pos(), "passed")
		}
	}
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pass.Info.Types[sel.X]; ok && containsRNG(tv.Type, nil) {
			report(sel.X.Pos(), "is the receiver of a call launched")
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() || !containsRNG(v.Type(), nil) {
				return true
			}
			// Captured from the enclosing function (not declared in the
			// literal itself, not package-level — that is rule one).
			if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
				!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
				report(id.Pos(), "captured by a closure launched")
			}
			return true
		})
	}
}

// storesToSharedPlace reports whether an lvalue is a struct field of an
// existing value or a package-level variable — the destinations where a
// stored stream outlives the call and gains a second owner.
func storesToSharedPlace(info *types.Info, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return true
			}
		}
		// pkg.Var qualified reference.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPkgLevel(v) {
			return true
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && isPkgLevel(v) {
			return true
		}
	}
	return false
}

// isRNGPtr reports whether t is exactly *sim.RNG.
func isRNGPtr(info *types.Info, t types.Type) bool {
	return isNamedPtr(t, "repro/internal/sim", "RNG")
}

// containsRNG reports whether a value of type t holds (directly or
// through struct fields, arrays, slices, maps, or pointers) a *sim.RNG.
func containsRNG(t types.Type, seen map[types.Type]bool) bool {
	if isNamedPtr(t, "repro/internal/sim", "RNG") {
		return true
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsRNG(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Pointer:
		return containsRNG(u.Elem(), seen)
	case *types.Slice:
		return containsRNG(u.Elem(), seen)
	case *types.Array:
		return containsRNG(u.Elem(), seen)
	case *types.Map:
		return containsRNG(u.Key(), seen) || containsRNG(u.Elem(), seen)
	}
	return false
}
