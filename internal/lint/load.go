package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load loads and type-checks the packages matching the go-list patterns
// (run in dir), resolving imports through compiled export data from the
// build cache. This is the standalone/test entry point; under
// `go vet -vettool` the toolchain supplies the same information through
// vet.cfg instead (see vet.go).
//
// The loader shells out to `go list -export -deps`, so it needs the go
// tool on PATH — acceptable for a development-time linter, and the only
// way to typecheck against dependency packages without golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	imp := exportImporter(fset, func(path string) string { return exports[path] })

	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		tpkg, err := typecheck(fset, p.ImportPath, files, imp, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return out, nil
}

// Report is a standalone run's outcome: the surviving diagnostics plus
// the spine inventory (every hotpath-reachable function, sorted) — the
// list behind `simlint -list-spine` and the spine-size stamp in the
// perf baseline's meta block.
type Report struct {
	Diags []Diagnostic
	Spine []string
}

// Run loads the patterns and threads every package, in the dependency
// order `go list -deps` guarantees, through one fact Session, so the
// interprocedural analyzers see cross-package call edges exactly as
// they do under `go vet -vettool`. A whole-module run (the single
// pattern "./...") additionally checks hotpath-annotation drift, which
// only a complete call graph can judge.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (*Report, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	sess := NewSession()
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, sess.RunPackage(analyzers, p.Fset, p.Files, p.Types, p.Info)...)
	}
	wholeModule := len(patterns) == 1 && patterns[0] == "./..."
	if wholeModule && hasAnalyzer(analyzers, Spine) {
		diags = append(diags, sess.DriftDiags()...)
	}
	sortDiags(diags)
	return &Report{Diags: diags, Spine: sess.SpineList()}, nil
}

func hasAnalyzer(analyzers []*Analyzer, want *Analyzer) bool {
	for _, a := range analyzers {
		if a == want {
			return true
		}
	}
	return false
}

// Check loads the patterns and runs the full analyzer suite, returning
// every surviving diagnostic. It is the programmatic entry point
// (benchreport uses it to stamp simlint_clean).
func Check(dir string, patterns ...string) ([]Diagnostic, error) {
	rep, err := Run(dir, All(), patterns...)
	if err != nil {
		return nil, err
	}
	return rep.Diags, nil
}

// goList runs `go list -export -deps -json` and decodes the package
// stream. -export populates each package's build-cache export data file,
// which is what lets the stdlib gc importer resolve dependencies without
// recompiling from source.
func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, strings.TrimSpace(stderr.String()))
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that reads gc export data
// files resolved by lookup (import path -> file path). The fallback
// default importer would try to find packages itself and fail for
// module-local ones; the lookup closure pins every import to the exact
// compiled artifact go list (or vet.cfg) named.
func exportImporter(fset *token.FileSet, lookup func(path string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := lookup(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck runs the types checker over one package's files.
func typecheck(fset *token.FileSet, path string, files []*ast.File,
	imp types.Importer, info *types.Info) (*types.Package, error) {
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	return conf.Check(path, fset, files, info)
}
