package lint

import "go/ast"

// Directive validates the //simlint: directives themselves, so the
// suppression mechanism stays reviewable: unknown directive names (often
// typos that would silently fail to suppress), suppressions without a
// ` -- justification`, and hotpath annotations that are not attached to a
// function declaration are all errors. This analyzer is itself not
// suppressible.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "validates //simlint: directive names, justifications, and placement",
	Run:  runDirective,
}

func runDirective(pass *Pass) {
	// hotpath directives are only meaningful on function declarations:
	// collect the lines a func-decl annotation may occupy (its doc
	// comment, or the line directly above the declaration).
	funcLines := map[string]map[int]bool{}
	mark := func(file string, line int) {
		if funcLines[file] == nil {
			funcLines[file] = map[int]bool{}
		}
		funcLines[file][line] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			posn := pass.Fset.Position(fd.Pos())
			mark(posn.Filename, posn.Line-1)
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					cp := pass.Fset.Position(c.Pos())
					mark(cp.Filename, cp.Line)
				}
			}
		}
	}

	for _, d := range pass.dirs.all {
		spec, known := directiveNames[d.name]
		switch {
		case !known:
			pass.Reportf(d.pos, "known directives: hotpath, sortediter, wallclock, allocok, retained, shared, rngok",
				"unknown simlint directive %q", d.name)
		case spec.needsReason && d.reason == "":
			pass.Reportf(d.pos, "write //simlint:"+d.name+" -- <why this exception is sound>",
				"simlint:%s needs a justification after ` -- `", d.name)
		case d.name == "hotpath" && !funcLines[d.file][d.line]:
			pass.Reportf(d.pos, "place //simlint:hotpath in (or directly above) a function declaration's doc comment",
				"simlint:hotpath annotates function declarations; this one is not attached to one")
		}
	}
}
