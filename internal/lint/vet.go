package lint

// This file implements the `go vet -vettool` unit-checker protocol by
// hand (the stdlib has no public version of x/tools' unitchecker). The
// go command drives a vet tool as follows:
//
//  1. `tool -flags` — the tool prints a JSON description of its flags
//     (we have none that vet needs to know about: `[]`).
//  2. `tool -V=full` — the tool prints `<basename> version <version>`;
//     the version string participates in go's action cache key, so it
//     must change when the analyzers change meaningfully, and must not
//     be "devel" (go rejects it when parsing the build ID).
//  3. `tool [-json] <dir>/vet.cfg` once per package, where vet.cfg
//     describes the unit: source files, the import map, the compiled
//     export data of every dependency, and (PackageVetx) the facts files
//     dependencies produced earlier. Dependency-only units arrive with
//     VetxOnly=true and report no diagnostics, but they still parse,
//     typecheck and export their call-graph facts — that is what carries
//     the interprocedural spine/sharedstate information across package
//     boundaries (see callgraph.go). Each unit's VetxOutput holds the
//     cumulative fact set (its own package plus everything imported), so
//     a dependent needs only its direct dependencies' files.
//
// Diagnostics go to stderr with exit status 1 (or, under -json, to
// stdout as a {pkg: {analyzer: [diagnostic]}} tree with exit 0), which
// is how the go command distinguishes findings from tool failure.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetVersion is the base of the -V=full version stamp. toolVersion
// appends a hash of the tool binary itself (mirroring x/tools'
// unitchecker, which prints the executable's build ID), so `go vet`
// cache entries never outlive the simlint build that produced them.
const vetVersion = "go1.24.0-simlint2"

func toolVersion() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return vetVersion
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return vetVersion
	}
	return fmt.Sprintf("%s-%x", vetVersion, h.Sum(nil)[:12])
}

// vetConfig mirrors the vet.cfg JSON the go command writes for each
// package unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetTool implements the vet-tool side of the protocol for one
// invocation with the given arguments (os.Args[1:]), returning the
// process exit code. cmd/simlint dispatches here whenever the arguments
// look like a go-vet driver call.
func VetTool(args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	cfgPath := ""
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			// First field must equal the executable's basename — the go
			// command parses this line to build the tool's cache key.
			fmt.Fprintf(stdout, "%s version %s\n", toolBasename(), toolVersion())
			return 0
		case a == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-json":
			jsonOut = true
		case strings.HasSuffix(a, ".cfg"):
			cfgPath = a
		}
	}
	if cfgPath == "" {
		fmt.Fprintf(stderr, "simlint (vet mode): no vet.cfg argument in %q\n", args)
		return 2
	}
	id, diags, err := vetUnit(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	if jsonOut {
		return writeJSONDiags(stdout, id, diags)
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// IsVetInvocation reports whether the argument list looks like the go
// command driving a vet tool rather than a human running simlint.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-V" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// vetUnit analyzes one vet.cfg package unit, returning the unit's ID and
// its diagnostics.
func vetUnit(cfgPath string) (string, []Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return "", nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return "", nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	diags, err := analyzeUnit(&cfg)
	return cfg.ID, diags, err
}

func analyzeUnit(cfg *vetConfig) ([]Diagnostic, error) {
	// Every unit owes the driver a facts file. Write an empty one up
	// front so even failure paths honour the protocol; successful
	// analysis overwrites it with the real (cumulative) fact set below.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}

	// The go command also drives vet over the standard-library closure of
	// the build (as VetxOnly units with an empty ModulePath). Std is
	// outside every simlint scope and contributes no facts — analyzing it
	// would drag spine reachability into fmt's own internals and typecheck
	// all of std on every vet run — so such units get only the empty facts
	// file written above.
	if cfg.ModulePath == "" {
		return nil, nil
	}

	// The go command merges in-package test files into the unit; the
	// invariants do not apply to tests, so drop them before typechecking
	// (the non-test files of a package always typecheck on their own).
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil // external-test unit: nothing in scope
	}

	// Seed the session with the dependencies' facts. Each dependency's
	// vetx is cumulative, so reading the direct entries covers the
	// transitive call graph.
	sess := NewSession()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx { //simlint:sortediter -- keys are sorted before use
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			return nil, fmt.Errorf("reading facts of %s: %w", path, err)
		}
		if err := sess.ImportFacts(data); err != nil {
			return nil, fmt.Errorf("facts of %s: %w", path, err)
		}
	}

	imp := exportImporter(fset, func(path string) string {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		return cfg.PackageFile[path]
	})
	info := NewInfo()
	tpkg, err := typecheck(fset, cfg.ImportPath, files, imp, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	// Dependency-only units contribute facts but no diagnostics.
	analyzers := All()
	if cfg.VetxOnly {
		analyzers = nil
	}
	diags := sess.RunPackage(analyzers, fset, files, tpkg, info)
	if cfg.VetxOutput != "" {
		facts, err := sess.ExportFacts()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func jsonDiagOf(d Diagnostic) jsonDiag {
	msg := d.Message
	if d.Hint != "" {
		msg += " (fix: " + d.Hint + ")"
	}
	return jsonDiag{Posn: d.Pos.String(), Message: msg}
}

// writeJSONDiags emits the unitchecker-compatible -json tree for one vet
// unit, keyed by the unit ID the driver assigned.
func writeJSONDiags(w io.Writer, pkgID string, diags []Diagnostic) int {
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagOf(d))
	}
	tree := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		return 2
	}
	return 0
}

// WriteJSON emits the same {pkg: {analyzer: [diagnostic]}} tree for an
// arbitrary diagnostic set, grouped by the producing package — the
// standalone `simlint -json` output CI uploads as an artifact.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	tree := map[string]map[string][]jsonDiag{}
	for _, d := range diags {
		pkg := tree[d.Pkg]
		if pkg == nil {
			pkg = map[string][]jsonDiag{}
			tree[d.Pkg] = pkg
		}
		pkg[d.Analyzer] = append(pkg[d.Analyzer], jsonDiagOf(d))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(tree)
}

func toolBasename() string {
	return filepath.Base(os.Args[0])
}
