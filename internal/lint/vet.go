package lint

// This file implements the `go vet -vettool` unit-checker protocol by
// hand (the stdlib has no public version of x/tools' unitchecker). The
// go command drives a vet tool as follows:
//
//  1. `tool -flags` — the tool prints a JSON description of its flags
//     (we have none that vet needs to know about: `[]`).
//  2. `tool -V=full` — the tool prints `<basename> version <version>`;
//     the version string participates in go's action cache key, so it
//     must change when the analyzers change meaningfully, and must not
//     be "devel" (go rejects it when parsing the build ID).
//  3. `tool [-json] <dir>/vet.cfg` once per package, where vet.cfg
//     describes the unit: source files, the import map, and the compiled
//     export data of every dependency. Dependency-only units arrive with
//     VetxOnly=true and are not analyzed; every unit must write its
//     VetxOutput facts file (empty — these analyzers exchange no facts).
//
// Diagnostics go to stderr with exit status 1 (or, under -json, to
// stdout as a {pkg: {analyzer: [diagnostic]}} tree with exit 0), which
// is how the go command distinguishes findings from tool failure.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetVersion is the -V=full version stamp; bump the suffix when analyzer
// behaviour changes so `go vet` cache entries from older simlint builds
// are invalidated.
const vetVersion = "go1.24.0-simlint1"

// vetConfig mirrors the vet.cfg JSON the go command writes for each
// package unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetTool implements the vet-tool side of the protocol for one
// invocation with the given arguments (os.Args[1:]), returning the
// process exit code. cmd/simlint dispatches here whenever the arguments
// look like a go-vet driver call.
func VetTool(args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	cfgPath := ""
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			// First field must equal the executable's basename — the go
			// command parses this line to build the tool's cache key.
			fmt.Fprintf(stdout, "%s version %s\n", toolBasename(), vetVersion)
			return 0
		case a == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-json":
			jsonOut = true
		case strings.HasSuffix(a, ".cfg"):
			cfgPath = a
		}
	}
	if cfgPath == "" {
		fmt.Fprintf(stderr, "simlint (vet mode): no vet.cfg argument in %q\n", args)
		return 2
	}
	id, diags, err := vetUnit(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	if jsonOut {
		return writeJSONDiags(stdout, id, diags)
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// IsVetInvocation reports whether the argument list looks like the go
// command driving a vet tool rather than a human running simlint.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-V" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// vetUnit analyzes one vet.cfg package unit, returning the unit's ID and
// its diagnostics.
func vetUnit(cfgPath string) (string, []Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return "", nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return "", nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	diags, err := analyzeUnit(&cfg)
	return cfg.ID, diags, err
}

func analyzeUnit(cfg *vetConfig) ([]Diagnostic, error) {
	// Every unit owes the driver its facts file, even dependency-only
	// ones; these analyzers exchange no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	// The go command merges in-package test files into the unit; the
	// invariants do not apply to tests, so drop them before typechecking
	// (the non-test files of a package always typecheck on their own).
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil // external-test unit: nothing in scope
	}

	imp := exportImporter(fset, func(path string) string {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		return cfg.PackageFile[path]
	})
	info := NewInfo()
	tpkg, err := typecheck(fset, cfg.ImportPath, files, imp, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	return RunAnalyzers(All(), fset, files, tpkg, info), nil
}

// writeJSONDiags emits the unitchecker-compatible -json tree.
func writeJSONDiags(w io.Writer, pkgID string, diags []Diagnostic) int {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		msg := d.Message
		if d.Hint != "" {
			msg += " (fix: " + d.Hint + ")"
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: msg})
	}
	tree := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		return 2
	}
	return 0
}

func toolBasename() string {
	return filepath.Base(os.Args[0])
}
