package lint

import "testing"

// TestTreeIsSimlintClean is the repo-wide gate: the full analyzer suite
// over every package of the module must report zero undirectived
// diagnostics. This is the same check CI runs through
// `go vet -vettool=simlint ./...`, kept here so `go test ./...` catches
// violations without the extra build step.
func TestTreeIsSimlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("go list -export over ./... compiles the module")
	}
	diags, err := Check("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages (needs the go tool): %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the violation or add the analyzer's //simlint: directive with a justification")
	}
}
