// sharedstate fixture: package-level mutable state in a sim-core
// package. Flagged either way it turns mutable — written by package
// code, or merely of a mutable type another package could write through.
package fixture

// counter is written by package code: flagged.
var counter int // want "package-level var counter is written by package code"

func bump() { counter++ }

// table is never written here, but its type lets anyone mutate it:
// flagged.
var table = []int{1, 2, 3} // want "package-level var table has mutable type"

// limit and label are immutable-typed and never written: clean.
var limit = 42
var label = "fixture"

// excusedTable documents why sharing is sound: clean.
var excusedTable = []string{"a", "b"} //simlint:shared -- fixture: justified shared state is suppressed

func useTables() int { return table[0] + len(label) + limit + len(excusedTable) }
