// schedfunc fixture: loaded by the tests under a module library path.
package fixture

import "repro/internal/sim"

type ticker struct{}

func (ticker) OnEvent(*sim.Engine, *sim.Event) {}

func kickoff(e *sim.Engine) {
	e.AfterFunc(5, func() {})     // want "Engine.AfterFunc allocates a closure"
	e.ScheduleFunc(10, func() {}) // want "Engine.ScheduleFunc allocates a closure"

	//simlint:allocok -- fixture: one-off experiment setup event
	e.AfterFunc(7, func() {})

	// Static handlers are the sanctioned form.
	e.After(5, ticker{}, 0, nil)
	e.Schedule(10, ticker{}, 0, nil)
}
