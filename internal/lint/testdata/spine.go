// spine fixture: interprocedural hot-path reachability. spineRoot is the
// only annotated function; everything it transitively calls — including
// through the stepper interface seam — joins the spine, and allocating
// spine members without their own //simlint:hotpath are flagged at the
// allocation site.
package fixture

import "fmt"

// stepper is the fixture's dispatch seam: the root calls through the
// interface, so every in-package implementation joins the spine.
type stepper interface {
	step(int) int
}

//simlint:hotpath
func spineRoot(s stepper) int {
	return s.step(format(1)) + excused(2)
}

// format is directly reachable from the root and calls fmt: flagged.
func format(x int) int {
	return len(fmt.Sprintf("x=%d", x)) // want "format is reachable from the hot-path spine"
}

// tick joins the spine through the stepper interface edge.
type tick struct{ n int }

func (t *tick) step(x int) int {
	f := func() int { return t.n + x } // want "reachable from the hot-path spine.*closure capturing"
	return f()
}

// excused is reachable and allocates, but the construct is justified, so
// it never becomes a fact and the spine stays quiet.
func excused(x int) int {
	return len(fmt.Sprintf("x=%d", x)) //simlint:allocok -- fixture: justified constructs are filtered at fact collection
}

// cold is not reachable from any annotated root: allocating freely is
// fine off the spine.
func cold(x int) int {
	return len(fmt.Sprintf("x=%d", x))
}
