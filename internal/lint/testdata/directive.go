// directive fixture: exercised by TestDirectiveAnalyzer with explicit
// expectations (the diagnostics land on the directive comments
// themselves, so inline want-markers cannot annotate them).
package fixture

//simlint:sortedlter -- typo'd name that would silently fail to suppress
var a = 1

//simlint:allocok
var b = 2

//simlint:hotpath
var c = 3

//simlint:hotpath
func annotated() {}

// ordinary prose mentioning simlint: directives is not a directive.
func prose() {
	//simlint:wallclock -- a known name with a justification is valid anywhere
	_ = a
}
