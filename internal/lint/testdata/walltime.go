// walltime fixture: loaded by the tests under a module library path.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want "time.Now reads the host clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the host clock"
}

func pause() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
}

func globalDraw() int {
	return rand.Intn(10) // want "global math/rand stream"
}

// ownedStream is clean: constructors are allowed, and methods on an
// owned generator draw from a seeded stream, not the global one.
func ownedStream() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10)
}

// durations and time arithmetic on values are clean: only host-clock
// reads are nondeterministic.
func arithmetic(a, b time.Time, d time.Duration) time.Duration {
	return b.Sub(a) + d
}

// exempted shows the directive: an explicitly justified boundary.
func exempted() time.Time {
	//simlint:wallclock -- fixture: the documented clock-injection seam
	return time.Now()
}
