// freelist fixture: loaded by the tests under a module library path.
// It exercises the contract against the real sim.Event and fabric.Packet
// types (resolved through export data).
package fixture

import (
	"repro/internal/fabric"
	"repro/internal/sim"
)

// leaky reads its stored event without nilling it: after the engine
// recycles the event, leaky.ev points into an unrelated future schedule.
type leaky struct {
	ev *sim.Event
}

func (l *leaky) OnEvent(e *sim.Engine, _ *sim.Event) {
	if l.ev != nil { // want "without nilling"
		e.Cancel(l.ev)
	}
}

// contractual follows the idiom: read the field, nil it, then act.
type contractual struct {
	ev *sim.Event
}

func (c *contractual) OnEvent(e *sim.Engine, _ *sim.Event) {
	pending := c.ev
	c.ev = nil
	if pending != nil {
		e.Cancel(pending)
	}
}

// restorer only (re)stores a fresh event — a store is not a read.
type restorer struct {
	ev *sim.Event
}

func (r *restorer) OnEvent(e *sim.Engine, ev *sim.Event) {
	r.ev = e.Schedule(ev.At+1, r, 0, nil)
}

// vouched documents why its read is safe.
type vouched struct {
	ev *sim.Event
}

func (v *vouched) OnEvent(e *sim.Engine, _ *sim.Event) {
	//simlint:retained -- fixture: the field is nilled by the cancel path before any recycle
	if v.ev != nil {
		_ = e
	}
}

// Packet retention: stores into fields and appends retain the packet
// past its recycling point at deliver.

type stash struct {
	last *fabric.Packet
	all  []*fabric.Packet
}

func (s *stash) keep(p *fabric.Packet) {
	s.last = p // want "retains it past deliver"
}

func (s *stash) keepAll(p *fabric.Packet) {
	s.all = append(s.all, p) // want "retains it past deliver"
}

func (s *stash) keepVouched(p *fabric.Packet) {
	s.last = p //simlint:retained -- fixture: released again before the handler returns
}

// inspect is clean: locals may hold the packet within the call.
func inspect(p *fabric.Packet) int {
	q := p
	return q.Payload
}
