// hotpath fixture: loaded by the tests under a module library path.
package fixture

import "fmt"

type ring struct {
	buf   []int
	seen  map[int]bool
	boxed any
}

func sink(v any) { _ = v }

//simlint:hotpath
func (r *ring) hot(v int, out []int) []int {
	r.buf = append(r.buf, v) // receiver-owned append: clean

	r.buf = append(r.buf[:0], v) // reslicing a receiver-owned buffer: still clean

	f := func() int { return v } // want "closure captures"
	_ = f

	fmt.Println("v") // want "fmt.Println allocates"

	m := map[int]bool{} // want "map literal allocates"
	_ = m

	r.seen = make(map[int]bool) // want "make.map. allocates"

	sink(v) // want "boxed into"

	r.boxed = v // want "boxed into"

	out = append(out, v) // want "non-receiver-owned slice"

	return out
}

//simlint:hotpath
func (r *ring) hotSuppressed(v int) {
	sink(v) //simlint:allocok -- fixture: cold branch, measured at 0 allocs steady-state
}

// cold has every construct but no hotpath annotation: clean.
func (r *ring) cold(v int, out []int) []int {
	f := func() int { return v }
	_ = f
	fmt.Println("v")
	r.seen = map[int]bool{}
	sink(v)
	return append(out, v)
}

//simlint:hotpath
func (r *ring) hotClean(v int) {
	// pointer and interface values pass without boxing; package-level
	// state is not a capture.
	sink(r)
	if r.seen[v] {
		r.buf = r.buf[:0]
	}
}
