// mapiter fixture: loaded by the tests under a sim-core package path.
package fixture

var reg = map[string]int{"a": 1, "b": 2} //simlint:shared -- fixture table, never mutated; only its iteration order is under test

// unordered ranges a map with an order-dependent body: flagged.
func unordered() string {
	s := ""
	for k := range reg { // want "range over map"
		s += k
	}
	return s
}

// both key and value forms are the same iteration: flagged.
func unorderedKV() int {
	t := 0
	for _, v := range reg { // want "range over map"
		t += v
	}
	return t
}

// suppressed documents why this particular consumption is sound.
func suppressed() int {
	t := 0
	for _, v := range reg { //simlint:sortediter -- integer sum is commutative
		t += v
	}
	return t
}

// suppressedAbove uses the line-above directive placement.
func suppressedAbove() int {
	t := 0
	//simlint:sortediter -- integer sum is commutative
	for _, v := range reg {
		t += v
	}
	return t
}

// overSlice is clean: slices iterate in index order.
func overSlice(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
