// rngstream fixture: RNG-stream ownership discipline. A stream may live
// in package state (rule one), cross into a goroutine (rule two), or be
// aliased into an existing struct (rule three) only with a justification.
package fixture

import "repro/internal/sim"

//simlint:shared -- fixture: the rngstream analyzer owns this finding
var globalRNG *sim.RNG // want "package-level var globalRNG holds a \*sim.RNG stream"

// holder owns a stream.
type holder struct {
	rng *sim.RNG
}

// newHolder transfers ownership via a composite literal — the
// constructor idiom: sanctioned.
func newHolder(rng *sim.RNG) *holder {
	return &holder{rng: rng}
}

// adopt aliases the caller's stream into an existing struct: flagged.
func (h *holder) adopt(rng *sim.RNG) {
	h.rng = rng // want "stored into shared state aliases the caller's stream"
}

// adoptSplit stores a freshly minted stream instead: sanctioned.
func (h *holder) adoptSplit(rng *sim.RNG) {
	h.rng = rng.Split()
}

// spawn leaks a stream into a goroutine by closure capture: flagged.
func spawn(rng *sim.RNG, done chan struct{}) {
	go func() {
		_ = rng.Uint64() // want "captured by a closure launched"
		close(done)
	}()
}

// handoff moves the stream wholly into the goroutine and says so: clean.
func handoff(rng *sim.RNG, done chan struct{}) {
	go consume(rng, done) //simlint:rngok -- fixture: ownership moves wholly into the goroutine
}

func consume(rng *sim.RNG, done chan struct{}) {
	_ = rng.Uint64()
	close(done)
}
