package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedState is the mechanical pre-flight audit for the parallel
// discrete-event engine (ROADMAP): before worker domains can run
// engines concurrently, every piece of mutable state reachable from more
// than one Engine must be known. The analyzer flags, in the sim-core
// packages plus the experiment harness:
//
//   - package-level variables of mutable type (anything holding a
//     pointer, slice, map, or channel), and immutable-typed ones the
//     package itself writes after initialization;
//   - writes to another module package's package-level variables
//     (cross-package escape), unless the target's own package annotated
//     the variable //simlint:shared (carried through the facts).
//
// Effectively-constant globals — basic/func/interface-typed (or structs
// and arrays thereof) that no code ever writes — are clean: they are
// initialization-time configuration, not shared mutable state. Every
// finding must be fixed, confined to a per-Engine/per-Network instance,
// or justified with //simlint:shared -- <why>.
var SharedState = &Analyzer{
	Name:      "sharedstate",
	Doc:       "flags mutable package-level state in sim-core packages (parallel-engine audit)",
	Directive: "shared",
	Run:       runSharedState,
}

// sharedScope is the audit's package set: the 13 sim-core packages plus
// the harness, whose registry and experiment tables sit directly above
// the engines a parallel runner would shard.
func sharedScope(path string) bool {
	return corePackages[path] || path == "repro/internal/harness"
}

func runSharedState(pass *Pass) {
	if !sharedScope(pass.Pkg.Path()) {
		return
	}

	writes := map[types.Object][]token.Pos{}
	noteWrite := func(expr ast.Expr, pos token.Pos) {
		if obj := rootVar(pass.Info, expr); obj != nil {
			writes[obj] = append(writes[obj], pos)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					noteWrite(lhs, n.TokPos)
				}
			case *ast.IncDecStmt:
				noteWrite(n.X, n.TokPos)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					// Address taken: the variable may be written through
					// the alias; treat it as mutable.
					noteWrite(n.X, n.OpPos)
				}
			case *ast.RangeStmt:
				if n.Tok == token.ASSIGN {
					noteWrite(n.Key, n.TokPos)
					noteWrite(n.Value, n.TokPos)
				}
			}
			return true
		})
	}

	// Package-level variable declarations.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time interface assertions and the like
					}
					v, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					written := len(writes[v]) > 0
					if !written && immutableType(v.Type(), nil) {
						continue
					}
					reason := "has mutable type " + types.TypeString(v.Type(), types.RelativeTo(pass.Pkg))
					if written {
						reason = "is written by package code"
					}
					pass.Reportf(name.Pos(),
						"confine the state to a per-Engine/per-Network instance, make it immutable, or justify with //simlint:shared -- <why sharing is sound>",
						"package-level var %s %s: shared state visible to every Engine in the process", name.Name, reason)
				}
			}
		}
	}

	// Cross-package escapes: writes whose target is another module
	// package's package-level variable.
	for obj, positions := range writes { //simlint:sortediter -- diagnostics are position-sorted by the runner
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Pkg() == pass.Pkg || !isPkgLevel(v) {
			continue
		}
		if moduleRoot(v.Pkg().Path()) != moduleRoot(pass.Pkg.Path()) {
			continue
		}
		if pass.sess != nil && pass.sess.sharedOK(v.Pkg().Path(), v.Name()) {
			continue
		}
		for _, pos := range positions {
			pass.Reportf(pos,
				"route the mutation through an owning instance's API, or have the owning package justify the variable with //simlint:shared",
				"write to package-level var %s.%s from outside its package (cross-package shared state)",
				v.Pkg().Name(), v.Name())
		}
	}
}

// sharedOK reports whether a package's facts carry an //simlint:shared
// annotation for the named package-level variable.
func (s *Session) sharedOK(pkgPath, name string) bool {
	pf := s.pkgs[pkgPath]
	if pf == nil {
		return false
	}
	qualified := pkgPath + "." + name
	for _, sv := range pf.SharedVars {
		if sv == qualified {
			return true
		}
	}
	return false
}

// isPkgLevel reports whether a variable is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootVar peels selectors/indexes/derefs off an lvalue and resolves the
// base identifier's object: the variable a write ultimately mutates.
func rootVar(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// A qualified package reference (pkg.Var) resolves through the
			// selected identifier, not the package name.
			if _, isPkg := info.Uses[rootIdent(e.X)].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok {
					return v
				}
				return nil
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func rootIdent(expr ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(expr).(*ast.Ident)
	return id
}

// immutableType reports whether a type cannot be mutated in place:
// basics, funcs and interfaces (mutable only by rebinding, which the
// write scan catches), and structs/arrays composed of such. Anything
// with reference semantics — pointers, slices, maps, channels — is
// mutable shared state when it sits at package level.
func immutableType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true // recursive named type: judged by its other fields
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Signature:
		return true
	case *types.Interface:
		return true
	case *types.Struct:
		if seen == nil {
			seen = map[types.Type]bool{}
		}
		seen[t] = true
		for i := 0; i < u.NumFields(); i++ {
			if !immutableType(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return immutableType(u.Elem(), seen)
	}
	return false
}
