package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath turns the machine-dependent BenchmarkPacketHotPath alloc gate
// into a machine-independent source-level gate: functions annotated
// //simlint:hotpath (the per-event/per-packet spine — Engine.Step and
// Schedule, the NIC/switch/port handlers, Network.route, the routing
// Choose backends, the congestion CanSend/OnSend/OnAck hooks,
// qos.PortScheduler.Dequeue) must not contain allocation-causing
// constructs: variable-capturing closures, fmt/errors/log calls, map
// literals or makes, interface-boxing conversions of basic values, or
// appends to slices the receiver does not own.
var HotPath = &Analyzer{
	Name:      "hotpath",
	Doc:       "flags allocation-causing constructs in //simlint:hotpath functions",
	Directive: "allocok",
	Run:       runHotPath,
}

// allocPkgs are packages whose calls always allocate (formatting buffers,
// error values) and never belong on the per-packet spine.
var allocPkgs = map[string]bool{"fmt": true, "errors": true, "log": true}

func runHotPath(pass *Pass) {
	if !moduleOnly(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcIsHotpath(pass.dirs, pass.Fset, fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	recv := receiverObj(pass.Info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name := capturedVar(pass.Info, fd, n); name != "" {
				pass.Reportf(n.Pos(),
					"hoist the closure to a static Handler (or package-level func) and pass state through Event.Arg/Data",
					"closure captures %q and allocates per call in hot path %s", name, fd.Name.Name)
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"preallocate the map outside the hot path (construction time) and reuse it",
						"map literal allocates in hot path %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, recv, n)
		case *ast.AssignStmt:
			checkHotAssignBoxing(pass, fd, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, recv types.Object, call *ast.CallExpr) {
	// Explicit conversion T(x): flag basic -> interface boxing.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isBasicValue(pass.Info, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"keep the value in a scalar field (Event.Arg) or a concrete type; boxing a basic value into an interface allocates",
				"conversion of basic value to %s allocates in hot path %s",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), fd.Name.Name)
		}
		return
	}

	// Builtins: make(map[...]...) and append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if tv, ok := pass.Info.Types[call]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(call.Pos(),
							"preallocate the map outside the hot path (construction time) and reuse it",
							"make(map) allocates in hot path %s", fd.Name.Name)
					}
				}
			case "append":
				if len(call.Args) > 0 && !receiverOwned(pass.Info, recv, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"append only to receiver-owned reusable buffers (preallocated at construction), or copy outside the hot path",
						"append to non-receiver-owned slice may grow/allocate in hot path %s", fd.Name.Name)
				}
			}
			return
		}
	}

	// Calls into always-allocating packages.
	if fn := funcObj(pass.Info, call); fn != nil && fn.Pkg() != nil && allocPkgs[fn.Pkg().Path()] {
		pass.Reportf(call.Pos(),
			"move formatting/error construction off the per-packet spine (precompute, or count and report at drain time)",
			"%s.%s allocates in hot path %s", fn.Pkg().Name(), fn.Name(), fd.Name.Name)
		return
	}

	// Implicit boxing: a basic-typed argument passed for an
	// interface-typed parameter.
	sig := callSignature(pass.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && isBasicValue(pass.Info, arg) {
			pass.Reportf(arg.Pos(),
				"pass scalars through Event.Arg (int64) or widen the callee's parameter to a concrete type; boxing allocates",
				"basic value boxed into %s parameter allocates in hot path %s",
				types.TypeString(pt, types.RelativeTo(pass.Pkg)), fd.Name.Name)
		}
	}
}

// checkHotAssignBoxing flags assignments that box a basic value into an
// interface-typed variable or field.
func checkHotAssignBoxing(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt, ok := pass.Info.Types[lhs]
		if !ok || !types.IsInterface(lt.Type) {
			continue
		}
		if isBasicValue(pass.Info, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(),
				"store scalars in a typed field (or Event.Arg); assigning a basic value to an interface allocates",
				"basic value boxed into %s on assignment allocates in hot path %s",
				types.TypeString(lt.Type, types.RelativeTo(pass.Pkg)), fd.Name.Name)
		}
	}
}

// capturedVar returns the name of a variable the closure captures from
// its enclosing function (receiver, parameter, or local), or "" if the
// closure captures nothing. Package-level state is not a capture.
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// this literal.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

// receiverObj returns the method receiver's object, or nil for plain
// functions and unnamed receivers.
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// receiverOwned reports whether an expression is rooted at the method
// receiver (e.free, o.buf[i], ...). Appending to such slices reuses the
// receiver's steady-state capacity; anything else may allocate a new
// backing array per call.
func receiverOwned(info *types.Info, recv types.Object, expr ast.Expr) bool {
	if recv == nil {
		return false
	}
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.Uses[e] == recv
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// isBasicValue reports whether the expression is a value (not nil, not a
// type) of basic or basic-underlying type — the class whose conversion to
// an interface allocates at runtime.
func isBasicValue(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.IsType() || tv.IsNil() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() != types.UntypedNil && b.Kind() != types.Invalid
}

// callSignature resolves the signature of the called function, through
// either a direct reference or a function-typed expression.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}
