package lint

// Spine is the interprocedural half of the hot-path gate. The hotpath
// analyzer checks the bodies of //simlint:hotpath-annotated functions;
// spine walks the call graph (static edges plus sound interface
// dispatch, see callgraph.go) outward from those annotations and flags
// the helper-call hole: a function that is *reachable* from the spine
// but not annotated, and whose body contains an unambiguous allocation
// construct (a variable-capturing closure, a map literal or make(map),
// or an fmt/errors/log call). Such a helper allocates per event exactly
// as if the construct sat in the annotated caller, but PR 6's
// intra-procedural check could not see it.
//
// Each finding is reported once, by the package whose call edges first
// make the function reachable — under `go vet -vettool` that is the unit
// holding the linking call site, with the facts of its dependencies
// imported from their .vetx files. The diagnostic's position is the
// alloc construct itself, which may be in a dependency's source file.
//
// The analyzer also reports annotation drift — //simlint:hotpath
// functions unreachable from the Engine.Step/Schedule roots — but only
// in whole-program standalone runs (Session.DriftDiags), where the
// complete call graph is in view.
var Spine = &Analyzer{
	Name:      "spine",
	Doc:       "flags unannotated-but-hotpath-reachable functions that allocate (call-graph analysis)",
	Directive: "allocok",
	Run:       runSpine,
}

func runSpine(pass *Pass) {
	if pass.sess == nil {
		return
	}
	for _, name := range sortedKeys(pass.newly) {
		ref, ok := pass.sess.byFunc[name]
		if !ok || ref.fact.Hotpath || len(ref.fact.Allocs) == 0 || !spineScope(ref.pkg) {
			continue
		}
		for _, a := range ref.fact.Allocs {
			pass.reportAt(a.Pos.Position(),
				"annotate the function //simlint:hotpath and fix the allocation, or justify the construct with //simlint:allocok -- <why>",
				"%s is reachable from the hot-path spine but not annotated //simlint:hotpath, and allocates (%s)",
				name, a.What)
		}
	}
}
