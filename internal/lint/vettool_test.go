package lint

// End-to-end test of the `go vet -vettool` unit-checker protocol against
// a throwaway two-package module: the go command's side (vet.cfg units in
// dependency order, export data, facts files) is reproduced by hand, and
// the test asserts the interprocedural spine finding crosses the package
// boundary in both execution modes — standalone (one Session over go
// list order) and vet units (facts serialized through PackageVetx/
// VetxOutput) — with identical positions.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTmpModule lays out the fixture module: package b holds an
// unannotated allocating helper; package a's annotated root calls it
// across the package boundary. a's test file exercises _test.go
// filtering inside a vet unit.
func writeTmpModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"b/b.go": `package b

// Helper computes through a tiny capturing closure, the allocation the
// spine analyzer must attribute across the package boundary.
func Helper(x int) int {
	f := func() int { return x + 1 }
	return f()
}
`,
		"a/a.go": `package a

import "tmpmod/b"

//simlint:hotpath
func Root() int {
	return b.Helper(41)
}
`,
		"a/a_test.go": `package a

import "testing"

func TestRoot(t *testing.T) {
	if Root() != 42 {
		t.Fatal("root")
	}
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// wantSpineFinding asserts the cross-package diagnostic: reported while
// analyzing a, positioned at the closure inside b/b.go.
func wantSpineFinding(t *testing.T, mode string, found bool, posn, msg string) {
	t.Helper()
	if !found {
		t.Fatalf("%s: no spine diagnostic reported", mode)
	}
	if !strings.Contains(posn, filepath.Join("b", "b.go")) {
		t.Errorf("%s: finding at %s, want a position inside b/b.go", mode, posn)
	}
	if !strings.Contains(msg, "tmpmod/b.Helper is reachable from the hot-path spine") {
		t.Errorf("%s: message %q does not name the unannotated helper", mode, msg)
	}
	if !strings.Contains(msg, "closure capturing") {
		t.Errorf("%s: message %q does not name the allocation construct", mode, msg)
	}
}

func TestVetToolProtocolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := writeTmpModule(t)

	// Standalone mode first: one Session over go-list dependency order.
	rep, err := Run(dir, All(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	var spineDiags []Diagnostic
	for _, d := range rep.Diags {
		if d.Analyzer == "spine" {
			spineDiags = append(spineDiags, d)
		} else {
			t.Errorf("standalone: unexpected %s diagnostic: %v", d.Analyzer, d)
		}
	}
	if len(spineDiags) != 1 {
		t.Fatalf("standalone: got %d spine diagnostics, want 1: %v", len(spineDiags), spineDiags)
	}
	wantSpineFinding(t, "standalone", true, spineDiags[0].Pos.String(), spineDiags[0].Message)
	if d := spineDiags[0]; d.Pkg != "tmpmod/a" {
		t.Errorf("standalone: finding attributed to %q, want the root's package tmpmod/a", d.Pkg)
	}
	want := []string{"tmpmod/a.Root", "tmpmod/b.Helper"}
	if strings.Join(rep.Spine, ",") != strings.Join(want, ",") {
		t.Errorf("standalone spine = %v, want %v", rep.Spine, want)
	}

	// Vet mode: reproduce the go command's driving sequence by hand.
	// First the version/flags handshake …
	var out, errOut bytes.Buffer
	if code := VetTool([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full exit %d, stderr %s", code, errOut.String())
	}
	if fields := strings.Fields(out.String()); len(fields) != 3 || fields[1] != "version" {
		t.Fatalf("-V=full output %q, want \"<name> version <vers>\"", out.String())
	}
	out.Reset()
	if code := VetTool([]string{"-flags"}, &out, &errOut); code != 0 || strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags exit %d output %q", code, out.String())
	}

	// … then export data for the units, as `go list -export` provides it.
	pkgs, err := goList(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	exports := map[string]string{}
	byPath := map[string]*listPkg{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
	}
	if byPath["tmpmod/a"] == nil || byPath["tmpmod/b"] == nil {
		t.Fatalf("go list did not return both packages: %v", exports)
	}

	work := t.TempDir()
	bVetx := filepath.Join(work, "b.vetx")
	aVetx := filepath.Join(work, "a.vetx")
	goFiles := func(p *listPkg) []string {
		var out []string
		for _, f := range p.GoFiles {
			out = append(out, filepath.Join(p.Dir, f))
		}
		return out
	}
	writeCfg := func(name string, cfg vetConfig) string {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(work, name)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Unit 1: dependency-only b — no diagnostics, but facts exported.
	bCfg := writeCfg("b.cfg", vetConfig{
		ID:         "tmpmod/b",
		Compiler:   "gc",
		Dir:        byPath["tmpmod/b"].Dir,
		ImportPath: "tmpmod/b",
		GoFiles:    goFiles(byPath["tmpmod/b"]),
		ModulePath: "tmpmod",
		VetxOnly:   true,
		VetxOutput: bVetx,
	})
	out.Reset()
	errOut.Reset()
	if code := VetTool([]string{bCfg}, &out, &errOut); code != 0 {
		t.Fatalf("unit b exit %d, stderr: %s", code, errOut.String())
	}
	bFacts, err := os.ReadFile(bVetx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bFacts), "tmpmod/b.Helper") {
		t.Errorf("b.vetx lacks the Helper fact: %s", bFacts)
	}

	// Unit 2: a, with the test file merged in (the go command does this)
	// and b supplied via ImportMap/PackageFile/PackageVetx.
	aCfg := writeCfg("a.cfg", vetConfig{
		ID:          "tmpmod/a",
		Compiler:    "gc",
		Dir:         byPath["tmpmod/a"].Dir,
		ImportPath:  "tmpmod/a",
		GoFiles:     append(goFiles(byPath["tmpmod/a"]), filepath.Join(dir, "a", "a_test.go")),
		ModulePath:  "tmpmod",
		ImportMap:   map[string]string{"tmpmod/b": "tmpmod/b"},
		PackageFile: map[string]string{"tmpmod/b": exports["tmpmod/b"]},
		PackageVetx: map[string]string{"tmpmod/b": bVetx},
		VetxOutput:  aVetx,
	})
	out.Reset()
	errOut.Reset()
	if code := VetTool([]string{"-json", aCfg}, &out, &errOut); code != 0 {
		t.Fatalf("unit a (-json) exit %d, stderr: %s", code, errOut.String())
	}
	var tree map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &tree); err != nil {
		t.Fatalf("unit a -json output: %v\n%s", err, out.String())
	}
	spine := tree["tmpmod/a"]["spine"]
	if len(spine) != 1 {
		t.Fatalf("unit a -json: got %d spine findings, want 1: %v", len(spine), tree)
	}
	wantSpineFinding(t, "vet", true, spine[0].Posn, spine[0].Message)
	if spineDiags[0].Pos.String() != spine[0].Posn {
		t.Errorf("modes disagree on position: standalone %s, vet %s",
			spineDiags[0].Pos, spine[0].Posn)
	}

	// a's facts are cumulative: its own package plus b's, so a dependent
	// of a would need only this one file.
	aFacts, err := os.ReadFile(aVetx)
	if err != nil {
		t.Fatal(err)
	}
	var merged map[string]json.RawMessage
	if err := json.Unmarshal(aFacts, &merged); err != nil {
		t.Fatalf("a.vetx: %v", err)
	}
	for _, pkg := range []string{"tmpmod/a", "tmpmod/b"} {
		if _, ok := merged[pkg]; !ok {
			t.Errorf("a.vetx lacks the cumulative %s facts", pkg)
		}
	}

	// Without -json the same unit reports on stderr with exit 1.
	out.Reset()
	errOut.Reset()
	if code := VetTool([]string{aCfg}, &out, &errOut); code != 1 {
		t.Fatalf("unit a (plain) exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "simlint:spine") {
		t.Errorf("plain-mode stderr lacks the spine diagnostic: %s", errOut.String())
	}
}
