package lint

import (
	"go/ast"
	"go/types"
)

// FreeList enforces the PR 2/3 nil-your-pointer free-list contract
// mechanically. The engine recycles every *sim.Event after its handler
// runs, and the fabric recycles every *fabric.Packet at deliver, so:
//
//  1. An OnEvent implementation that reads a stored *sim.Event field
//     (`o.retryEv`) must also nil that field — otherwise the object keeps
//     a pointer to a struct the engine will hand to an unrelated future
//     Schedule, and a later Cancel through the stale pointer corrupts the
//     queue.
//  2. Storing a *fabric.Packet into a field (or appending one to a slice)
//     retains it past its recycling point; only the fabric's own
//     free-list may do that.
var FreeList = &Analyzer{
	Name:      "freelist",
	Doc:       "flags free-list contract violations: unnilled event fields, retained packets",
	Directive: "retained",
	Run:       runFreeList,
}

func runFreeList(pass *Pass) {
	if !moduleOnly(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isOnEventMethod(pass.Info, fd) {
				checkEventFieldNilling(pass, fd)
			}
			checkPacketRetention(pass, fd)
		}
	}
}

// isOnEventMethod reports whether fd implements sim.Handler: a method
// named OnEvent whose last parameter is a *sim.Event.
func isOnEventMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "OnEvent" {
		return false
	}
	params := fd.Type.Params.List
	if len(params) == 0 {
		return false
	}
	return isNamedPtr(info.Types[params[len(params)-1].Type].Type, "repro/internal/sim", "Event")
}

// checkEventFieldNilling verifies that every stored-event field the
// handler reads is also nilled somewhere in the handler body.
func checkEventFieldNilling(pass *Pass, fd *ast.FuncDecl) {
	// First pass: classify assignment LHS selectors — a `x.f = nil` is
	// the contract's release; a `x.f = <event>` is a (re)store, not a
	// read.
	assignedNil := map[string]bool{}
	assignLHS := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || !isEventField(pass.Info, sel) {
				continue
			}
			assignLHS[sel] = true
			if tv, ok := pass.Info.Types[as.Rhs[i]]; ok && tv.IsNil() {
				assignedNil[sel.Sel.Name] = true
			}
		}
		return true
	})

	// Second pass: any read of an event field without a matching nil
	// assignment violates the contract.
	reported := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || assignLHS[sel] || !isEventField(pass.Info, sel) {
			return true
		}
		name := sel.Sel.Name
		if assignedNil[name] || reported[name] {
			return true
		}
		reported[name] = true
		pass.Reportf(sel.Pos(),
			"assign "+name+" = nil in the handler (the engine recycles the event after OnEvent returns), or annotate //simlint:retained -- <why>",
			"OnEvent reads stored event field %s without nilling it; the pointer goes stale when the engine recycles the event", name)
		return true
	})
}

// checkPacketRetention flags stores that retain a *fabric.Packet beyond
// the handler: assignment into a field of another object, or append into
// a slice. The packet free-list itself carries //simlint:retained.
func checkPacketRetention(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isPacketPtr(exprType(pass.Info, n.Rhs[i])) {
					continue
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || pass.Info.Selections[sel] == nil {
					continue // locals may hold a packet within the handler
				}
				// A packet writing its own fields is not retention.
				if isPacketPtr(exprType(pass.Info, sel.X)) {
					continue
				}
				pass.Reportf(n.Rhs[i].Pos(),
					"copy what you need out of the packet (it is recycled at deliver), or annotate //simlint:retained -- <why>",
					"storing *fabric.Packet into field %s retains it past deliver", sel.Sel.Name)
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			for _, arg := range n.Args[1:] {
				if isPacketPtr(exprType(pass.Info, arg)) {
					pass.Reportf(arg.Pos(),
						"copy what you need out of the packet (it is recycled at deliver), or annotate //simlint:retained -- <why>",
						"appending *fabric.Packet to a slice retains it past deliver")
				}
			}
		}
		return true
	})
}

// isEventField reports whether sel is a struct-field selection of type
// *sim.Event.
func isEventField(info *types.Info, sel *ast.SelectorExpr) bool {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	return isNamedPtr(s.Type(), "repro/internal/sim", "Event")
}

func isPacketPtr(t types.Type) bool {
	return isNamedPtr(t, "repro/internal/fabric", "Packet")
}

// isNamedPtr reports whether t is *pkg.Name.
func isNamedPtr(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && pkgPathIs(obj.Pkg(), pkgPath)
}

func exprType(info *types.Info, expr ast.Expr) types.Type {
	if tv, ok := info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}
