package lint

// This file is the interprocedural substrate of the suite: a per-package
// fact base (function call edges, alloc sites, hotpath annotations,
// interface implementations, shared-state directives) and the Session
// that accumulates facts across packages. The same facts flow through
// both runners: standalone Load/Run feeds packages to a Session in
// dependency order, and under `go vet -vettool` each unit imports its
// dependencies' facts from their .vetx files and exports the merged set
// through VetxOutput (see vet.go). Call-graph edges are of two kinds:
//
//   - static: the callee resolves through go/types to a concrete
//     function or method;
//   - interface dispatch: a call through an interface method (e.g.
//     sim.Handler.OnEvent, routing.Policy.Choose, the
//     congestion.Controller hooks) links, soundly, to every in-module
//     implementation of that method recorded by any package's facts.
//
// Calls through plain function values (completion callbacks, builders)
// resolve to nothing; they form the deliberate firewall between the
// per-event spine and cold setup/notification code.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// SrcPos is a serializable source position for cross-package facts.
type SrcPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func srcPos(fset *token.FileSet, pos token.Pos) SrcPos {
	p := fset.Position(pos)
	return SrcPos{File: p.Filename, Line: p.Line, Col: p.Column}
}

// Position converts back to the token form diagnostics carry.
func (p SrcPos) Position() token.Position {
	return token.Position{Filename: p.File, Line: p.Line, Column: p.Col}
}

// AllocSite is one allocation-causing construct found in a function
// body. Sites already excused by an //simlint:allocok directive in their
// own package are filtered at collection time and never become facts.
type AllocSite struct {
	Pos  SrcPos `json:"pos"`
	What string `json:"what"`
}

// FuncFact is the call-graph record of one declared function or method,
// keyed by its *types.Func.FullName (e.g.
// "(*repro/internal/sim.Engine).Step").
type FuncFact struct {
	Name string `json:"name"`
	Pos  SrcPos `json:"pos"`
	// Hotpath marks //simlint:hotpath-annotated declarations — the spine
	// roots and the functions the intra-procedural hotpath analyzer owns.
	Hotpath bool        `json:"hotpath,omitempty"`
	Allocs  []AllocSite `json:"allocs,omitempty"`
	// Calls are statically resolved callees (full names); IfaceCalls are
	// interface methods called through dynamic dispatch.
	Calls      []string `json:"calls,omitempty"`
	IfaceCalls []string `json:"iface_calls,omitempty"`
}

// PkgFacts is everything one package exports to its dependents.
type PkgFacts struct {
	Funcs map[string]*FuncFact `json:"funcs,omitempty"`
	// Impls maps an interface method (full name) to the in-module
	// methods implementing it — the sound dispatch edges.
	Impls map[string][]string `json:"impls,omitempty"`
	// SharedVars are package-level variables annotated
	// //simlint:shared, so dependents can excuse writes to them.
	SharedVars []string `json:"shared_vars,omitempty"`
}

// Session accumulates facts package by package (dependency order) and
// answers the interprocedural questions the spine analyzer asks. One
// Session spans a whole standalone run; under vet each unit gets a fresh
// Session seeded with its dependencies' imported facts.
type Session struct {
	pkgs  map[string]*PkgFacts
	order []string
	// byFunc indexes every known FuncFact by full name, with its package.
	byFunc map[string]factRef
}

type factRef struct {
	fact *FuncFact
	pkg  string
}

// NewSession returns an empty fact base.
func NewSession() *Session {
	return &Session{pkgs: map[string]*PkgFacts{}, byFunc: map[string]factRef{}}
}

func (s *Session) add(path string, pf *PkgFacts) {
	if _, ok := s.pkgs[path]; ok {
		return
	}
	s.pkgs[path] = pf
	s.order = append(s.order, path)
	for name, f := range pf.Funcs {
		s.byFunc[name] = factRef{fact: f, pkg: path}
	}
}

// ImportFacts merges a serialized fact set (a dependency's .vetx
// payload) into the session. Empty payloads — what pre-fact simlint
// versions wrote — carry no facts and are accepted.
func (s *Session) ImportFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var pkgs map[string]*PkgFacts
	if err := json.Unmarshal(data, &pkgs); err != nil {
		return fmt.Errorf("lint: decoding facts: %w", err)
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs { //simlint:sortediter -- keys are sorted before use
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		s.add(p, pkgs[p])
	}
	return nil
}

// ExportFacts serializes the session's full fact base — the analyzed
// package plus everything imported — so a unit's .vetx is cumulative
// and dependents only need their direct dependencies' files.
func (s *Session) ExportFacts() ([]byte, error) {
	return json.Marshal(s.pkgs)
}

// RunPackage collects the package's facts into the session and then runs
// the analyzers over it, returning the surviving diagnostics sorted by
// position. Passing no analyzers collects facts only (vet's VetxOnly
// dependency units).
func (s *Session) RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info) []Diagnostic {
	// Test files are out of scope for every analyzer: the invariants
	// guard simulation code; tests assert, time out, and iterate maps
	// freely.
	kept := files[:0:0]
	for _, f := range files {
		if !isTestFile(fset, f) {
			kept = append(kept, f)
		}
	}
	dirs := parseDirectives(fset, kept)

	// Fact collection runs before the analyzers so the spine sees the
	// current package's own edges; the pre-insertion reachable set is
	// what lets it report only findings this package's edges introduce.
	before := s.reachable(hotpathRoot)
	s.add(pkg.Path(), collectFacts(fset, kept, pkg, info, dirs))
	after := s.reachable(hotpathRoot)
	newly := map[string]bool{}
	for name := range after {
		if !before[name] {
			newly[name] = true
		}
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    kept,
			Pkg:      pkg,
			Info:     info,
			dirs:     dirs,
			diags:    &diags,
			sess:     s,
			newly:    newly,
		})
	}
	sortDiags(diags)
	return diags
}

// hotpathRoot treats every //simlint:hotpath-annotated function as a
// spine root: annotations are the reviewed statement "this runs
// per-event", and reachability propagates from all of them.
func hotpathRoot(f *FuncFact) bool { return f.Hotpath }

// engineRootRE matches the ultimate spine roots — the event-loop
// dispatch, the scheduling call every handler runs through, and the
// sharded coordinator's per-epoch phase dispatch (the parallel driver's
// equivalent of Step: it drains mailboxes and runs each shard's window).
var engineRootRE = regexp.MustCompile(
	`^\(\*[^)]*\bsim\.Engine\)\.(Step|Schedule)$|^\(\*[^)]*\bpar\.Coordinator\)\.runPhase$`)

func engineRoot(f *FuncFact) bool {
	return f.Hotpath && engineRootRE.MatchString(f.Name)
}

// reachable computes the transitive closure of call edges (static plus
// sound interface dispatch) from every fact satisfying isRoot.
func (s *Session) reachable(isRoot func(*FuncFact) bool) map[string]bool {
	impls := map[string][]string{}
	for _, pf := range s.pkgs { //simlint:sortediter -- set union; consumer order is independent of build order
		for m, is := range pf.Impls { //simlint:sortediter -- set union; consumer order is independent of build order
			impls[m] = append(impls[m], is...)
		}
	}
	seen := map[string]bool{}
	var stack []string
	push := func(n string) {
		if !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for name, ref := range s.byFunc { //simlint:sortediter -- seeds a worklist whose fixed point is order-independent
		if isRoot(ref.fact) {
			push(name)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ref, ok := s.byFunc[n]
		if !ok {
			continue
		}
		for _, c := range ref.fact.Calls {
			push(c)
		}
		for _, m := range ref.fact.IfaceCalls {
			push(m)
			for _, impl := range impls[m] {
				push(impl)
			}
		}
	}
	return seen
}

// SpineList returns the sorted full names of every function reachable
// from the hotpath roots — the inventory behind `simlint -list-spine`
// and the spine-size stamp in BENCH_hotpath.json.
func (s *Session) SpineList() []string {
	reach := s.reachable(hotpathRoot)
	var out []string
	for name := range reach { //simlint:sortediter -- sorted below
		if ref, ok := s.byFunc[name]; ok && spineScope(ref.pkg) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// DriftDiags reports annotation drift: //simlint:hotpath functions no
// longer reachable from the Engine.Step/Schedule roots. It is meaningful
// only over a whole program, so the standalone runner calls it after the
// full ./... package set is in (never under vet, whose per-unit view
// would misread every not-yet-linked handler as drifted). When the
// session contains no engine at all (a fixture or foreign module), there
// is nothing to measure and it reports nothing.
func (s *Session) DriftDiags() []Diagnostic {
	hasEngine := false
	for _, ref := range s.byFunc { //simlint:sortediter -- existence check only
		if engineRoot(ref.fact) {
			hasEngine = true
			break
		}
	}
	if !hasEngine {
		return nil
	}
	reach := s.reachable(engineRoot)
	var diags []Diagnostic
	for name, ref := range s.byFunc { //simlint:sortediter -- diagnostics are sorted before return
		if !ref.fact.Hotpath || reach[name] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      ref.fact.Pos.Position(),
			Pkg:      ref.pkg,
			Analyzer: "spine",
			Message: fmt.Sprintf("%s is annotated //simlint:hotpath but is not reachable from Engine.Step/Schedule (annotation drift)",
				name),
			Hint: "remove the stale annotation, or reconnect the function to the spine it claims to be on",
		})
	}
	sortDiags(diags)
	return diags
}

// spineScope excludes binaries and examples from spine reporting, by
// path segment so it works for any analyzed module, not just repro.
func spineScope(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" || seg == "examples" {
			return false
		}
	}
	return true
}

// moduleRoot is the first import-path segment — the coarse "same module"
// test used to bound interface collection (stdlib interfaces like
// io.Writer must not become dispatch fan-out).
func moduleRoot(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// collectFacts builds one package's fact record: per-function call
// edges, alloc sites (allocok-filtered), hotpath annotations, interface
// implementations, and //simlint:shared-annotated package variables.
func collectFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, dirs *directiveIndex) *PkgFacts {
	pf := &PkgFacts{Funcs: map[string]*FuncFact{}, Impls: map[string][]string{}}

	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fact := &FuncFact{
				Name:    obj.FullName(),
				Pos:     srcPos(fset, fd.Pos()),
				Hotpath: funcIsHotpath(dirs, fset, fd),
			}
			collectFuncBody(fset, fd, info, dirs, fact)
			pf.Funcs[fact.Name] = fact
		}
	}

	collectImpls(pkg, pf)

	scope := pkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		if dirs.suppresses("shared", fset.Position(v.Pos())) {
			pf.SharedVars = append(pf.SharedVars, pkg.Path()+"."+name)
		}
	}
	return pf
}

// collectFuncBody walks one function body for call edges and alloc
// constructs. Constructs inside panic arguments are cold by definition
// (the pervasive panic(fmt.Sprintf(...)) guard idiom) and are skipped.
func collectFuncBody(fset *token.FileSet, fd *ast.FuncDecl, info *types.Info,
	dirs *directiveIndex, fact *FuncFact) {
	var cold []token.Pos // sorted Lparen/Rparen pairs of panic calls
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				cold = append(cold, call.Lparen, call.Rparen)
			}
		}
		return true
	})
	inCold := func(p token.Pos) bool {
		for i := 0; i+1 < len(cold); i += 2 {
			if p > cold[i] && p < cold[i+1] {
				return true
			}
		}
		return false
	}
	addAlloc := func(pos token.Pos, what string) {
		if inCold(pos) || dirs.suppresses("allocok", fset.Position(pos)) {
			return
		}
		fact.Allocs = append(fact.Allocs, AllocSite{Pos: srcPos(fset, pos), What: what})
	}

	calls, iface := map[string]bool{}, map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name := capturedVar(info, fd, n); name != "" {
				addAlloc(n.Pos(), fmt.Sprintf("closure capturing %q", name))
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					addAlloc(n.Pos(), "map literal")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "make" {
						if tv, ok := info.Types[n]; ok {
							if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
								addAlloc(n.Pos(), "make(map)")
							}
						}
					}
					return true
				}
			}
			fn := funcObj(info, n)
			if fn == nil {
				return true // builtin, conversion, or call through a func value: no edge
			}
			if fn.Pkg() != nil && allocPkgs[fn.Pkg().Path()] {
				addAlloc(n.Pos(), fmt.Sprintf("%s.%s call", fn.Pkg().Name(), fn.Name()))
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				types.IsInterface(sig.Recv().Type()) {
				iface[fn.FullName()] = true
			} else {
				calls[fn.FullName()] = true
			}
		}
		return true
	})
	fact.Calls = sortedKeys(calls)
	fact.IfaceCalls = sortedKeys(iface)
}

// collectImpls records, for every named non-interface type of the
// package, which in-module interface methods its method set implements —
// the receiving end of the sound dispatch edges.
func collectImpls(pkg *types.Package, pf *PkgFacts) {
	ifaces := moduleInterfaces(pkg)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 || types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		for _, ifaceNamed := range ifaces {
			it, ok := ifaceNamed.Underlying().(*types.Interface)
			if !ok {
				continue
			}
			var impl types.Type
			switch {
			case types.Implements(named, it):
				impl = named
			case types.Implements(ptr, it):
				impl = ptr
			default:
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				m := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				f, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				pf.Impls[m.FullName()] = append(pf.Impls[m.FullName()], f.FullName())
			}
		}
	}
	for m, impls := range pf.Impls { //simlint:sortediter -- each value list is sorted in place; key order irrelevant
		sort.Strings(impls)
		pf.Impls[m] = dedupSorted(impls)
	}
}

// moduleInterfaces gathers every exported-or-not named interface type
// declared in the package or any transitive import sharing its module
// root. Interfaces from other modules (the stdlib) are deliberately out:
// dispatch through them is not simulator spine structure.
func moduleInterfaces(pkg *types.Package) []*types.Named {
	root := moduleRoot(pkg.Path())
	seen := map[*types.Package]bool{}
	var out []*types.Named
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] || moduleRoot(p.Path()) != root {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if it, ok := named.Underlying().(*types.Interface); ok && it.NumMethods() > 0 {
				out = append(out, named)
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg)
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m { //simlint:sortediter -- sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// sortDiags orders diagnostics by position then analyzer.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
