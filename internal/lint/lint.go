// Package lint is simlint: a suite of static analyzers that mechanically
// enforce the three invariant families every result in this reproduction
// rests on — bit-exact determinism (the golden files pinning experiment
// JSON at seed 7), the ~0 allocs/packet hot path (BENCH_hotpath.json and
// the CI alloc gate), and the nil-your-pointer Event/Packet free-list
// contract. A careless `range` over a map, a `time.Now()`, a closure in a
// hot handler, or a retained freed *sim.Event silently breaks goldens or
// the alloc gate; these analyzers catch them at vet time instead of by
// bisecting a golden diff.
//
// The suite is self-hosted on go/ast + go/types (no golang.org/x/tools
// dependency): packages are loaded through `go list -export` compiled
// export data, and cmd/simlint speaks the `go vet -vettool` unit-checker
// protocol, so the same analyzers run standalone, under go vet, and in
// the fixture tests.
//
// # Directives
//
// Justified exceptions are annotated in the source with a directive
// comment on the flagged line or the line above it:
//
//	//simlint:sortediter -- <why this map iteration is deterministic>
//	//simlint:wallclock  -- <why this code may read the host clock>
//	//simlint:allocok    -- <why this allocation is accepted>
//	//simlint:retained   -- <why this freed-object reference is safe>
//	//simlint:shared     -- <why this package-level state may be shared>
//	//simlint:rngok      -- <why this RNG-stream sharing is sound>
//	//simlint:hotpath            (on a func decl: opt in to the hotpath analyzer)
//
// Every suppression directive requires a ` -- justification`; the
// `directive` analyzer flags unknown names, missing justifications, and
// misplaced hotpath annotations, so the directives themselves stay
// reviewable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one simlint check. It mirrors the golang.org/x/tools
// go/analysis shape (Name/Doc/Run over a Pass) so the checks could be
// rebased onto the real framework if the dependency ever lands.
type Analyzer struct {
	// Name is the analyzer's identifier, shown in diagnostics and used by
	// the -only flag.
	Name string
	// Doc is a one-line description.
	Doc string
	// Directive is the suppression directive honoured for this analyzer's
	// diagnostics ("" = not suppressible).
	Directive string
	// Run reports diagnostics through pass.Reportf.
	Run func(*Pass)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Pkg is the import path of the package whose analysis produced the
	// diagnostic (for interprocedural findings, Pos may point into a
	// dependency's source).
	Pkg string
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message states the violation.
	Message string
	// Hint is a one-line fix suggestion.
	Hint string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s [simlint:%s]", d.Pos, d.Message, d.Analyzer)
	if d.Hint != "" {
		s += "\n\tfix: " + d.Hint
	}
	return s
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, test files already
	// excluded (the invariants guard simulation code, not assertions).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	dirs  *directiveIndex
	diags *[]Diagnostic

	// sess is the cross-package fact base of the enclosing run; newly
	// holds the function names this package's call edges first made
	// hotpath-reachable (see callgraph.go).
	sess  *Session
	newly map[string]bool
}

// Reportf records a diagnostic at pos unless a matching suppression
// directive covers that line.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), hint, format, args...)
}

// reportAt is Reportf for an already-resolved position — possibly in a
// dependency's source file, where interprocedural findings land. The
// directive check still runs against the current unit's files (foreign
// positions carry no suppressions here; theirs were applied when their
// own package's facts were collected).
func (p *Pass) reportAt(posn token.Position, hint, format string, args ...any) {
	if p.Analyzer.Directive != "" && p.dirs.suppresses(p.Analyzer.Directive, posn) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      posn,
		Pkg:      p.Pkg.Path(),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// directiveNames are the recognised //simlint: directive names.
// needsReason marks the suppressions, which must justify themselves with
// a ` -- <why>` clause.
var directiveNames = map[string]struct{ needsReason bool }{
	"hotpath":    {false},
	"sortediter": {true},
	"wallclock":  {true},
	"allocok":    {true},
	"retained":   {true},
	"shared":     {true},
	"rngok":      {true},
}

// directive is one parsed //simlint: comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	file   string
	line   int
}

// directiveIndex locates directives by file and line for suppression
// checks, and retains the raw list for the directive validator.
type directiveIndex struct {
	all    []directive
	byLine map[string]map[int][]directive
}

const directivePrefix = "simlint:"

// parseDirectives scans every comment of the files for //simlint:
// directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: map[string]map[int][]directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				name, reason := text, ""
				if i := strings.Index(text, "--"); i >= 0 {
					name = text[:i]
					reason = strings.TrimSpace(text[i+2:])
				}
				name = strings.TrimSpace(name)
				posn := fset.Position(c.Pos())
				d := directive{name: name, reason: reason, pos: c.Pos(), file: posn.Filename, line: posn.Line}
				idx.all = append(idx.all, d)
				lines := idx.byLine[d.file]
				if lines == nil {
					lines = map[int][]directive{}
					idx.byLine[d.file] = lines
				}
				lines[d.line] = append(lines[d.line], d)
			}
		}
	}
	return idx
}

// suppresses reports whether a directive of the given name covers the
// position: same line (end-of-line comment) or the line directly above.
func (idx *directiveIndex) suppresses(name string, posn token.Position) bool {
	lines := idx.byLine[posn.Filename]
	for _, d := range lines[posn.Line] {
		if d.name == name {
			return true
		}
	}
	for _, d := range lines[posn.Line-1] {
		if d.name == name {
			return true
		}
	}
	return false
}

// corePackages are the sim-core import paths whose map iterations must be
// deterministic (the mapiter scope). The experiment harness and results
// layers sit above the simulation and may range maps into sorted
// containers; cmd/ and examples/ are out of scope entirely.
var corePackages = map[string]bool{
	"repro/internal/sim":        true,
	"repro/internal/sim/par":    true,
	"repro/internal/fabric":     true,
	"repro/internal/flow":       true,
	"repro/internal/topology":   true,
	"repro/internal/routing":    true,
	"repro/internal/congestion": true,
	"repro/internal/qos":        true,
	"repro/internal/workloads":  true,
	"repro/internal/mpi":        true,
	"repro/internal/placement":  true,
	"repro/internal/phy":        true,
	"repro/internal/ethernet":   true,
	"repro/internal/rosetta":    true,
	"repro/internal/stats":      true,
}

// moduleOnly reports whether the package is part of this module's
// library code (the simlint scope): everything under the repro module
// except cmd/ binaries and examples/.
func moduleOnly(path string) bool {
	if path != "repro" && !strings.HasPrefix(path, "repro/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/cmd/") &&
		!strings.HasPrefix(path, "repro/examples/")
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, WallTime, HotPath, Spine, SharedState, RNGStream, FreeList, SchedFunc, Directive}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			known := make([]string, 0, len(byName))
			for k := range byName { //simlint:sortediter -- keys are sorted before use
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies the analyzers to one type-checked package and
// returns the surviving (undirectived) diagnostics sorted by position.
// It runs in a fresh single-package Session, so interprocedural
// analyzers see only this package's own call graph — the fixture-test
// entry point; multi-package runs thread one Session through
// Session.RunPackage instead (see Run and vet.go).
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info) []Diagnostic {
	return NewSession().RunPackage(analyzers, fset, files, pkg, info)
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// funcIsHotpath reports whether a function declaration carries the
// //simlint:hotpath annotation in its doc comment (or on the line
// directly above the declaration when it has no doc).
func funcIsHotpath(dirs *directiveIndex, fset *token.FileSet, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, "//"+directivePrefix+"hotpath") {
				return true
			}
		}
	}
	posn := fset.Position(fd.Pos())
	for _, d := range dirs.byLine[posn.Filename][posn.Line-1] {
		if d.name == "hotpath" {
			return true
		}
	}
	return false
}

// pkgPathIs reports whether a types.Package has the given import path.
// Vendoring is not in play in this module, so exact comparison suffices.
func pkgPathIs(p *types.Package, path string) bool {
	return p != nil && p.Path() == path
}

// funcObj resolves the called function object of a call expression, or
// nil for builtins, conversions, and indirect calls through variables.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
