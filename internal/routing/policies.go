package routing

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

func init() {
	Register("minimal", NewMinimalOnly)
	Register("adaptive", NewSlingshotAdaptive)
	Register("ecmp", NewECMPHash)
	Register("valiant", NewValiantUGAL)
}

// MinimalOnly always takes the first minimal path — the
// Profile.AdaptiveRouting=false behaviour, and the deterministic baseline
// every comparison starts from.
type MinimalOnly struct{}

// NewMinimalOnly constructs the minimal-only policy.
func NewMinimalOnly() Policy { return MinimalOnly{} }

// Name returns "minimal".
func (MinimalOnly) Name() string { return "minimal" }

// Choose returns the first cached minimal path.
//simlint:hotpath
func (MinimalOnly) Choose(_ topology.Topology, _ Context, minimal []topology.Path,
	_ LoadReader, _ *sim.RNG) topology.Path {
	return minimal[0]
}

// SlingshotAdaptive is §II-C source-switch adaptive routing: score up to
// four minimal plus non-minimal candidate paths by the total depth of the
// request queues along them, biased towards minimal paths and perturbed
// by the profile's estimate noise, and pick the cheapest. This is the
// historical fabric.Network.choosePath body, moved verbatim: the RNG draw
// order (non-minimal enumeration first, then one noise draw per cost
// evaluation) is what keeps the pre-refactor goldens byte-identical.
type SlingshotAdaptive struct{}

// NewSlingshotAdaptive constructs the Slingshot adaptive policy.
func NewSlingshotAdaptive() Policy { return SlingshotAdaptive{} }

// Name returns "adaptive".
func (SlingshotAdaptive) Name() string { return "adaptive" }

// Choose scores minimal and non-minimal candidates by queue depth.
//simlint:hotpath
func (SlingshotAdaptive) Choose(topo topology.Topology, ctx Context,
	minimal []topology.Path, load LoadReader, rng *sim.RNG) topology.Path {
	cands := minimal
	nmax := 4 - len(cands)
	if nmax < 2 {
		nmax = 2
	}
	nonMin := nonMinimalPaths(topo, ctx, rng, nmax)

	bias := ctx.MinimalBias
	if bias < 1 {
		bias = 1
	}
	best := cands[0]
	bestCost := PathCost(load, cands[0], costNoise(ctx.RouteNoise, rng))
	for _, c := range cands[1:] {
		if cost := PathCost(load, c, costNoise(ctx.RouteNoise, rng)); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	fromArena := false
	for _, c := range nonMin {
		if cost := PathCost(load, c, bias*costNoise(ctx.RouteNoise, rng)); cost < bestCost {
			best, bestCost, fromArena = c, cost, true
		}
	}
	if fromArena {
		// Non-minimal candidates live in the topology's reusable
		// path-construction arena and are overwritten by the next routing
		// decision; the packet keeps this path for its whole flight.
		best = append(topology.Path(nil), best...) //simlint:allocok -- arena copy only when a non-minimal path wins; the steady-state minimal path stays alloc-free
	}
	return best
}

// costNoise draws one multiplicative cost-estimate perturbation
// (§II-C estimate staleness): 1 when noise is off or no stream is
// available, else 1 + routeNoise·U[0,1). One draw per cost evaluation,
// in candidate order — the draw sequence the goldens pin.
func costNoise(routeNoise float64, rng *sim.RNG) float64 {
	if routeNoise <= 0 || rng == nil {
		return 1
	}
	return 1 + routeNoise*rng.Float64()
}

// ECMPHash is classical equal-cost multi-path: a deterministic flow hash
// over the cached minimal candidates, no congestion feedback, no detours —
// what the paper's RoCE fat-tree comparison systems run. All packets of
// one flow (source node, destination node, message) take the same path,
// and the choice touches no RNG, so the path sequence is identical for any
// worker count or call interleaving.
type ECMPHash struct{}

// NewECMPHash constructs the ECMP flow-hash policy.
func NewECMPHash() Policy { return ECMPHash{} }

// Name returns "ecmp".
func (ECMPHash) Name() string { return "ecmp" }

// Choose hashes the flow identity over the minimal candidates.
//simlint:hotpath
func (ECMPHash) Choose(_ topology.Topology, ctx Context, minimal []topology.Path,
	_ LoadReader, _ *sim.RNG) topology.Path {
	if len(minimal) == 1 {
		return minimal[0]
	}
	h := flowHash(ctx.SrcNode, ctx.DstNode, ctx.FlowID, ctx.Class)
	return minimal[h%uint64(len(minimal))]
}

// flowHash mixes the flow identity with a SplitMix64 finalizer — the same
// mixer the sim RNG seeds with, giving well-spread buckets from sequential
// message IDs.
func flowHash(src, dst topology.NodeID, flow int64, class int) uint64 {
	x := uint64(src)<<40 ^ uint64(dst)<<20 ^ uint64(flow)<<4 ^ uint64(class)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ValiantUGAL routes via a random intermediate (Valiant's trick, the
// worst-case-traffic equalizer) with a UGAL-style load-aware fallback: the
// detour is only taken when its queue-depth cost — charged at the minimal
// bias, detours traverse roughly twice the links — still beats the best
// minimal path. On an idle fabric it degenerates to minimal routing (and
// allocates nothing); under adversarial load it spreads like Valiant.
type ValiantUGAL struct{}

// NewValiantUGAL constructs the Valiant/UGAL policy.
func NewValiantUGAL() Policy { return ValiantUGAL{} }

// Name returns "valiant".
func (ValiantUGAL) Name() string { return "valiant" }

// ugalDetourBias is the default cost penalty charged to detours when the
// context carries no stronger minimal bias.
const ugalDetourBias = 2.0

// Choose compares the best minimal path against up to two random-
// intermediate detours by queue-depth cost.
//simlint:hotpath
func (ValiantUGAL) Choose(topo topology.Topology, ctx Context,
	minimal []topology.Path, load LoadReader, rng *sim.RNG) topology.Path {
	best := minimal[0]
	bestCost := PathCost(load, best, 1)
	for _, c := range minimal[1:] {
		if cost := PathCost(load, c, 1); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	bias := ctx.MinimalBias
	if bias < ugalDetourBias {
		bias = ugalDetourBias
	}
	detours := nonMinimalPaths(topo, ctx, rng, 2)
	fromArena := false
	for _, c := range detours {
		if cost := PathCost(load, c, bias); cost < bestCost {
			best, bestCost, fromArena = c, cost, true
		}
	}
	if fromArena {
		best = append(topology.Path(nil), best...) //simlint:allocok -- arena copy only when a detour wins; idle fabrics stay on the alloc-free minimal path
	}
	return best
}
