// Package routing is the source-switch path-selection policy layer of the
// simulator. The paper's §II-C adaptive routing is one policy among
// several: the fabric asks the configured Policy for a path once per
// injected packet (at the packet's source switch), handing it the
// topology's candidate minimal paths, a read-only view of the egress-queue
// load, and the source switch's RNG stream.
//
// Contracts every Policy must honour:
//
//   - Retainable result: the returned Path is kept by the packet for its
//     whole flight. Candidates obtained from Topology.NonMinimalPaths live
//     in the topology's reusable arena, so a policy that selects one MUST
//     copy it (the minimal candidates passed in are cached and shared —
//     returning one of those as-is is fine, mutating it is not).
//   - RNG-stream stability: all randomness comes from the rng argument, in
//     a fixed, input-determined draw order, so replays with the same seed
//     choose the same paths. Policies that need no randomness must not
//     touch rng at all (ECMPHash) — that is what makes them reproducible
//     independent of worker count and call interleaving.
//   - Zero steady-state allocations on the cached-minimal path: returning
//     one of the minimal candidates must not allocate. Only copying a
//     non-minimal arena path may.
//   - Single-goroutine use: a Policy instance belongs to one
//     fabric.Network (each network builds its own via the Builder), which
//     is single-threaded.
package routing

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Context carries the per-packet inputs of one routing decision.
type Context struct {
	// Src and Dst are the packet's source and destination switches
	// (distinct — the fabric short-circuits same-switch delivery).
	Src, Dst topology.SwitchID
	// SrcNode and DstNode are the endpoint nodes; together with FlowID
	// they identify the flow for hash-based policies.
	SrcNode, DstNode topology.NodeID
	// FlowID is the message ID: all packets of one message hash alike.
	FlowID int64
	// Class is the packet's traffic class.
	Class int
	// MinimalBias is the resolved preference for minimal paths: the
	// profile bias multiplied by the traffic class's own bias (§II-E),
	// already clamped to >= 1 by the fabric.
	MinimalBias float64
	// RouteNoise randomizes path-cost estimates (0 = perfect
	// information); it models the staleness of distributed congestion
	// estimates (§II-C).
	RouteNoise float64
	// Arena, when non-nil, is the caller-owned path-construction scratch
	// policies must use for non-minimal candidates (via
	// Topology.NonMinimalPathsIn). A sharded fabric passes each domain's
	// own arena so domains can route concurrently over the shared
	// topology; nil falls back to the topology's embedded arena.
	Arena *topology.PathArena
}

// nonMinimalPaths enumerates non-minimal candidates through the context's
// arena when one is provided, else the topology's embedded arena.
//simlint:hotpath
func nonMinimalPaths(topo topology.Topology, ctx Context, rng *sim.RNG, max int) []topology.Path {
	if ctx.Arena != nil {
		return topo.NonMinimalPathsIn(ctx.Arena, ctx.Src, ctx.Dst, rng, max)
	}
	return topo.NonMinimalPaths(ctx.Src, ctx.Dst, rng, max)
}

// LoadReader is the policy's read-only view of fabric congestion state:
// the request-queue depths adaptive routing weighs (§II-C), without
// exposing switch or port internals.
type LoadReader interface {
	// QueuedTo returns the queued bytes on the least-loaded egress port
	// from switch a towards the adjacent switch b (the fabric spreads
	// over parallel links below the path level, so the best port is the
	// load a path through a->b would see).
	QueuedTo(a, b topology.SwitchID) int64
}

// Policy chooses the switch-level path for one packet.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Choose picks a path from ctx.Src to ctx.Dst. minimal holds the
	// topology's cached minimal candidates (never empty, never to be
	// mutated); load reads egress-queue depths; rng is the source
	// switch's stream (non-nil in the fabric; policies must tolerate nil
	// by falling back to first choices). The result must be safe to
	// retain — see the package contract.
	Choose(topo topology.Topology, ctx Context, minimal []topology.Path,
		load LoadReader, rng *sim.RNG) topology.Path
}

// Builder constructs a fresh Policy instance. Each fabric.Network calls
// its profile's builder once, so stateful policies (flow tables, per-pair
// history) never share state across networks built in parallel.
type Builder func() Policy

var builders = map[string]Builder{} //simlint:shared -- written only by init-time Register (panics on duplicates); read-only once main starts

// Register adds a policy constructor under a name. It panics on a
// duplicate or empty name — registration happens in init functions, so
// both are programming errors.
func Register(name string, b Builder) {
	if name == "" {
		panic("routing: Register with empty policy name")
	}
	if b == nil {
		panic(fmt.Sprintf("routing: Register(%q) with nil builder", name))
	}
	if _, dup := builders[name]; dup {
		panic(fmt.Sprintf("routing: duplicate policy %q", name))
	}
	builders[name] = b
}

// ByName returns the registered constructor for a policy name.
func ByName(name string) (Builder, error) {
	b := builders[name]
	if b == nil {
		return nil, fmt.Errorf("routing: unknown policy %q (have %v)", name, Names())
	}
	return b, nil
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders { //simlint:sortediter -- keys are collected and sorted before any consumer sees them
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HopCharge is the per-hop serialization charge of the path-cost
// estimate: one packet's worth of bytes per traversed link.
const HopCharge = 4096

// PathCost estimates a path's congestion the way §II-C describes: the
// queued bytes on the (least-loaded parallel) egress port of every hop —
// the local switch's figure is exact, remote ones arrive via the credit
// and ack piggyback channels — plus a per-hop serialization charge,
// multiplied by the non-minimal penalty factor.
func PathCost(load LoadReader, path topology.Path, penalty float64) float64 {
	cost := 0.0
	for i := 0; i+1 < len(path); i++ {
		cost += float64(load.QueuedTo(path[i], path[i+1])) + HopCharge
	}
	return cost * penalty
}
