package routing

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// mapLoad is a LoadReader backed by a map of directed switch pairs.
type mapLoad map[[2]topology.SwitchID]int64

func (m mapLoad) QueuedTo(a, b topology.SwitchID) int64 {
	return m[[2]topology.SwitchID{a, b}]
}

func (m mapLoad) set(a, b topology.SwitchID, v int64) {
	m[[2]topology.SwitchID{a, b}] = v
}

func testTopo(t *testing.T) topology.Topology {
	t.Helper()
	return topology.MustNew(topology.Config{
		Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 1,
	})
}

func ctxFor(topo topology.Topology, src, dst topology.SwitchID) Context {
	first, _ := topo.SwitchNodes(src)
	dfirst, _ := topo.SwitchNodes(dst)
	return Context{
		Src: src, Dst: dst,
		SrcNode: first, DstNode: dfirst,
		FlowID: 1, MinimalBias: 2,
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"adaptive", "ecmp", "minimal", "valiant"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		b, err := ByName(name)
		if err != nil || b == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p := b(); p.Name() != name {
			t.Errorf("policy %q reports Name() %q", name, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName of unknown policy did not error")
	}
}

func TestMinimalOnlyTakesFirst(t *testing.T) {
	topo := testTopo(t)
	src, dst := topology.SwitchID(0), topology.SwitchID(5)
	min := topo.MinimalPaths(src, dst, 4)
	p := NewMinimalOnly().Choose(topo, ctxFor(topo, src, dst), min, mapLoad{}, sim.NewRNG(1))
	if &p[0] != &min[0][0] {
		t.Error("MinimalOnly did not return the first minimal candidate")
	}
}

func TestAdaptiveAvoidsHotMinimalHop(t *testing.T) {
	topo := testTopo(t)
	src, dst := topology.SwitchID(0), topology.SwitchID(2) // same group
	min := topo.MinimalPaths(src, dst, 4)
	if len(min) < 1 {
		t.Fatal("no minimal paths")
	}
	// Load the direct hop heavily; detours should win despite the bias.
	load := mapLoad{}
	load.set(src, dst, 1<<20)
	got := NewSlingshotAdaptive().Choose(topo, ctxFor(topo, src, dst), min, load, sim.NewRNG(3))
	if !topo.Valid(got) {
		t.Fatalf("invalid path %v", got)
	}
	if len(got) == 2 && got[0] == src && got[1] == dst {
		t.Errorf("adaptive kept the congested direct hop %v", got)
	}
}

func TestAdaptiveCopiesArenaPaths(t *testing.T) {
	topo := testTopo(t)
	src, dst := topology.SwitchID(0), topology.SwitchID(2)
	min := topo.MinimalPaths(src, dst, 4)
	load := mapLoad{}
	load.set(src, dst, 1<<20)
	ctx := ctxFor(topo, src, dst)
	got := NewSlingshotAdaptive().Choose(topo, ctx, min, load, sim.NewRNG(3))
	snapshot := append(topology.Path(nil), got...)
	// Overwrite the arena with fresh routing decisions; a non-copied
	// result would be clobbered.
	for i := 0; i < 8; i++ {
		topo.NonMinimalPaths(dst, src, sim.NewRNG(uint64(i)), 4)
	}
	for i := range got {
		if got[i] != snapshot[i] {
			t.Fatalf("chosen path aliases the topology arena: %v vs %v", got, snapshot)
		}
	}
}

func TestECMPIsDeterministicAndSpreads(t *testing.T) {
	topo := topology.MustBuild(topology.FatTreeConfig{
		Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 4,
	})
	src, dst := topology.SwitchID(0), topology.SwitchID(3) // cross-pod
	min := topo.MinimalPaths(src, dst, 4)
	if len(min) < 2 {
		t.Fatalf("want several equal-cost paths, got %d", len(min))
	}
	ecmp := NewECMPHash()
	seen := map[string]bool{}
	for flow := int64(0); flow < 64; flow++ {
		ctx := ctxFor(topo, src, dst)
		ctx.FlowID = flow
		// No LoadReader, no RNG: ECMP must not need either.
		p1 := ecmp.Choose(topo, ctx, min, nil, nil)
		p2 := ecmp.Choose(topo, ctx, min, nil, nil)
		if &p1[0] != &p2[0] {
			t.Fatalf("flow %d not sticky", flow)
		}
		if !topo.Valid(p1) {
			t.Fatalf("invalid path %v", p1)
		}
		key := ""
		for _, s := range p1 {
			key += string(rune(s)) + "."
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 flows hashed onto %d path(s); ECMP does not spread", len(seen))
	}
}

func TestValiantFallsBackToMinimalWhenIdle(t *testing.T) {
	topo := testTopo(t)
	src, dst := topology.SwitchID(0), topology.SwitchID(5)
	min := topo.MinimalPaths(src, dst, 4)
	got := NewValiantUGAL().Choose(topo, ctxFor(topo, src, dst), min, mapLoad{}, sim.NewRNG(9))
	// On an idle fabric the detour penalty guarantees a minimal win.
	found := false
	for _, m := range min {
		if len(m) == len(got) && &m[0] == &got[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("idle ValiantUGAL chose a detour %v", got)
	}
}

func TestValiantDetoursUnderLoadAndCopies(t *testing.T) {
	topo := testTopo(t)
	src, dst := topology.SwitchID(0), topology.SwitchID(5)
	min := topo.MinimalPaths(src, dst, 4)
	load := mapLoad{}
	// Saturate every hop of every minimal candidate.
	for _, m := range min {
		for i := 0; i+1 < len(m); i++ {
			load.set(m[i], m[i+1], 1<<20)
		}
	}
	got := NewValiantUGAL().Choose(topo, ctxFor(topo, src, dst), min, load, sim.NewRNG(9))
	if !topo.Valid(got) {
		t.Fatalf("invalid path %v", got)
	}
	if got[0] != src || got[len(got)-1] != dst {
		t.Fatalf("path %v does not span %d->%d", got, src, dst)
	}
	snapshot := append(topology.Path(nil), got...)
	for i := 0; i < 8; i++ {
		topo.NonMinimalPaths(dst, src, sim.NewRNG(uint64(i)), 4)
	}
	for i := range got {
		if got[i] != snapshot[i] {
			t.Fatalf("detour aliases the topology arena")
		}
	}
}

// TestValiantValidOverAllPairs: on every backend, for every pair of
// node-attached switches, ValiantUGAL returns a topology-valid path with
// the right endpoints — idle (minimal fallback) and with every minimal
// candidate saturated (detour territory).
func TestValiantValidOverAllPairs(t *testing.T) {
	topos := map[string]topology.Topology{
		"dragonfly": topology.MustNew(topology.Config{
			Groups: 3, SwitchesPerGroup: 4, NodesPerSwitch: 2, GlobalPerPair: 1,
		}),
		"fattree": topology.MustBuild(topology.FatTreeConfig{
			Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 2,
		}),
		"hyperx": topology.MustBuild(topology.HyperXConfig{
			Dims: []int{3, 3}, NodesPerSwitch: 2,
		}),
	}
	pol := NewValiantUGAL()
	for kind, topo := range topos {
		t.Run(kind, func(t *testing.T) {
			var nodeSwitches []topology.SwitchID
			for s := 0; s < topo.Switches(); s++ {
				if _, count := topo.SwitchNodes(topology.SwitchID(s)); count > 0 {
					nodeSwitches = append(nodeSwitches, topology.SwitchID(s))
				}
			}
			rng := sim.NewRNG(17)
			for _, src := range nodeSwitches {
				for _, dst := range nodeSwitches {
					if src == dst {
						continue
					}
					min := topo.MinimalPaths(src, dst, 4)
					if len(min) == 0 {
						t.Fatalf("no minimal path %d->%d", src, dst)
					}
					hot := mapLoad{}
					for _, m := range min {
						for i := 0; i+1 < len(m); i++ {
							hot.set(m[i], m[i+1], 1<<20)
						}
					}
					for _, load := range []LoadReader{mapLoad{}, hot} {
						p := pol.Choose(topo, ctxFor(topo, src, dst), min, load, rng)
						if !topo.Valid(p) {
							t.Fatalf("%d->%d: invalid path %v", src, dst, p)
						}
						if p[0] != src || p[len(p)-1] != dst {
							t.Fatalf("%d->%d: path %v has wrong endpoints", src, dst, p)
						}
					}
				}
			}
		})
	}
}

func TestPathCost(t *testing.T) {
	load := mapLoad{}
	load.set(0, 1, 100)
	load.set(1, 2, 50)
	p := topology.Path{0, 1, 2}
	if got := PathCost(load, p, 1); got != 150+2*HopCharge {
		t.Errorf("PathCost = %v, want %v", got, 150+2*HopCharge)
	}
	if got := PathCost(load, p, 2); got != 2*(150+2*HopCharge) {
		t.Errorf("penalty not applied: %v", got)
	}
	if got := PathCost(load, topology.Path{4}, 1); got != 0 {
		t.Errorf("single-switch path cost = %v, want 0", got)
	}
}
