package flow

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestShardSetAddressing pins the scoped layout: every global segment is
// owned by exactly one engine, gid and Owner are inverses, and per-engine
// capacities agree with the full engine's on every owned segment.
func TestShardSetAddressing(t *testing.T) {
	topo := testTopo(t)
	caps := Caps{EdgeBits: tEdge, LocalBits: tLocal, GlobalBits: tGlobal}
	full := NewEngine(topo, caps)
	ss := NewShardedEngines(topo, caps, topo.Partition(0))

	if len(ss.Engines) != topo.Partition(0).Domains {
		t.Fatalf("engines %d, want one per domain", len(ss.Engines))
	}
	covered := 0
	for d, e := range ss.Engines {
		covered += e.NSegs()
		for l := int32(0); l < int32(e.NSegs()); l++ {
			g := e.GlobalSeg(l)
			od, ol := ss.Owner(g)
			if od != d || ol != l {
				t.Fatalf("Owner(%d) = (%d,%d), want (%d,%d)", g, od, ol, d, l)
			}
			if e.segCap[l] != full.segCap[g] {
				t.Fatalf("segCap mismatch at global %d: %v vs %v", g, e.segCap[l], full.segCap[g])
			}
		}
	}
	if covered != full.NSegs() {
		t.Fatalf("scoped engines cover %d segments, full engine has %d", covered, full.NSegs())
	}
}

// TestShardSetIntraDomainRates runs the same intra-domain flow mix on the
// scoped engines and on one full engine: with no cross-domain traffic the
// domains are independent components, so every rate must match exactly.
func TestShardSetIntraDomainRates(t *testing.T) {
	topo := testTopo(t)
	caps := Caps{EdgeBits: tEdge, LocalBits: tLocal, GlobalBits: tGlobal}
	full := NewEngine(topo, caps)
	full.Hooks = &recorder{}
	part := topo.Partition(0)
	ss := NewShardedEngines(topo, caps, part)

	nodes := topo.Nodes()
	started := 0
	for n := 0; n < nodes; n++ {
		src := topology.NodeID(n)
		dst := topology.NodeID((n + 2) % nodes)
		sd := part.Of[topo.SwitchOf(src)]
		if sd != part.Of[topo.SwitchOf(dst)] {
			continue
		}
		e := ss.Engines[sd]
		if e.Hooks == nil {
			e.Hooks = &recorder{}
		}
		full.Start(src, dst, 1<<20, FlowOpts{})
		e.Start(src, dst, 1<<20, FlowOpts{})
		started++
	}
	if started == 0 {
		t.Fatal("no intra-domain pairs found")
	}
	full.Resolve()
	for _, e := range ss.Engines {
		e.Resolve()
		for l := int32(0); l < int32(e.NSegs()); l++ {
			if got, want := e.SegRateAt(l), full.SegRateAt(e.GlobalSeg(l)); got != want {
				t.Fatalf("segment rate mismatch at global %d: scoped %v, full %v",
					e.GlobalSeg(l), got, want)
			}
		}
		// The shared fan-in table must agree with the full engine's.
		for n := 0; n < nodes; n++ {
			if e.ActiveTo(topology.NodeID(n)) != full.ActiveTo(topology.NodeID(n)) {
				t.Fatalf("ActiveTo(%d): scoped %d, full %d",
					n, e.ActiveTo(topology.NodeID(n)), full.ActiveTo(topology.NodeID(n)))
			}
		}
	}
}

// TestShardSetExtRateDerates checks the boundary coupling primitive: an
// external rate on a scoped engine's segment derates the capacity its
// local solver hands out, and clearing it restores the full share.
func TestShardSetExtRateDerates(t *testing.T) {
	topo := testTopo(t)
	caps := Caps{EdgeBits: tEdge, LocalBits: tLocal, GlobalBits: tGlobal}
	part := topo.Partition(0)
	ss := NewShardedEngines(topo, caps, part)
	// One flow in domain 0 between two nodes on the same switch pair.
	e := ss.Engines[0]
	e.Hooks = &recorder{}
	var src, dst topology.NodeID = -1, -1
	for n := 0; n < topo.Nodes(); n++ {
		if part.Of[topo.SwitchOf(topology.NodeID(n))] == 0 {
			if src < 0 {
				src = topology.NodeID(n)
			} else {
				dst = topology.NodeID(n)
				break
			}
		}
	}
	e.Start(src, dst, 8<<20, FlowOpts{})
	e.Resolve()
	up := e.nodeUp[src]
	if got := e.SegRateAt(up); got != tEdge {
		t.Fatalf("unloaded rate %v, want edge cap %v", got, tEdge)
	}
	e.SetExtRate(up, tEdge/2)
	e.Resolve()
	if got := e.SegRateAt(up); got != tEdge/2 {
		t.Fatalf("derated rate %v, want %v", got, tEdge/2)
	}
	// Change journal: the re-solve must have recorded the segment.
	found := false
	for _, s := range e.Changed() {
		if s == up {
			found = true
		}
	}
	if !found {
		t.Fatalf("derated segment missing from change journal")
	}
	e.ResetChanged()
	e.SetExtRate(up, 0)
	e.Resolve()
	if got := e.SegRateAt(up); got != tEdge {
		t.Fatalf("restored rate %v, want %v", got, tEdge)
	}
	_ = sim.Time(0)
}
