package flow

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// equivTopos are the three backends the incremental solver must match the
// full solver on, bit for bit.
func equivTopos(t *testing.T) map[string]func() topology.Topology {
	t.Helper()
	return map[string]func() topology.Topology{
		"dragonfly": func() topology.Topology {
			return topology.MustBuild(topology.Config{
				Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 2, GlobalPerPair: 1,
			})
		},
		"fattree": func() topology.Topology {
			return topology.MustBuild(topology.FatTreeConfig{
				Pods: 4, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 2,
			})
		},
		"hyperx": func() topology.Topology {
			return topology.MustBuild(topology.HyperXConfig{
				Dims: []int{4, 3}, NodesPerSwitch: 2,
			})
		},
	}
}

// compareEngines asserts both engines hold the identical solved state:
// same active flows (by id) with bit-identical rates, and bit-identical
// per-segment allocated rates.
func compareEngines(t *testing.T, ref, inc *Engine, step int) {
	t.Helper()
	if len(ref.active) != len(inc.active) {
		t.Fatalf("step %d: active %d vs %d", step, len(ref.active), len(inc.active))
	}
	rates := map[int64]float64{}
	for _, f := range ref.active {
		rates[f.id] = f.rate
	}
	for _, f := range inc.active {
		w, ok := rates[f.id]
		if !ok {
			t.Fatalf("step %d: flow %d only in incremental engine", step, f.id)
		}
		if f.rate != w {
			t.Fatalf("step %d: flow %d rate %v (incremental) != %v (full)", step, f.id, f.rate, w)
		}
	}
	for s := range ref.segRate {
		if ref.segRate[s] != inc.segRate[s] {
			t.Fatalf("step %d: segRate[%d] %v (full) != %v (incremental)",
				step, s, ref.segRate[s], inc.segRate[s])
		}
	}
}

// TestIncrementalMatchesFullRandomized drives a full-resolve reference
// engine and an incremental engine through the same randomized schedule of
// >=3000 flow starts, completions and time steps on all three topologies,
// comparing every rate exactly after each event. Canonical id-ordered
// filling makes the incremental component solve bit-identical, not just
// numerically close.
func TestIncrementalMatchesFullRandomized(t *testing.T) {
	for name, build := range equivTopos(t) {
		t.Run(name, func(t *testing.T) {
			topo := build()
			caps := Caps{EdgeBits: tEdge, LocalBits: tLocal, GlobalBits: tGlobal}
			ref := NewEngine(topo, caps)
			ref.SetForceFull(true)
			ref.Hooks = &recorder{}
			inc := NewEngine(topo, caps)
			inc.Hooks = &recorder{}

			rng := sim.NewRNG(0xfeed)
			nodes := topo.Nodes()
			const events = 3200
			for step := 0; step < events; step++ {
				switch {
				case rng.Intn(4) != 0 && ref.Active() < 256:
					src := topology.NodeID(rng.Intn(nodes))
					dst := topology.NodeID(rng.Intn(nodes))
					if src == dst {
						dst = (dst + 1) % topology.NodeID(nodes)
					}
					bytes := int64(1<<14) << rng.Intn(6)
					opt := FlowOpts{ExtraLatency: sim.Nanosecond * sim.Time(rng.Intn(500))}
					ref.Start(src, dst, bytes, opt)
					inc.Start(src, dst, bytes, opt)
				default:
					// Advance both engines, draining some completions (the
					// finish side of the dirty-seed machinery).
					to := ref.Now() + sim.Time(rng.Intn(int(20*sim.Microsecond)))
					ref.Advance(to)
					inc.Advance(to)
				}
				ref.Resolve()
				inc.Resolve()
				compareEngines(t, ref, inc, step)
			}
			// Drain to empty: the completion path must agree to the end.
			ref.Advance(sim.Second)
			inc.Advance(sim.Second)
			if ref.Active() != 0 || inc.Active() != 0 {
				t.Fatalf("drain left %d/%d active", ref.Active(), inc.Active())
			}
			compareEngines(t, ref, inc, events)
			if ref.TakeProgress() != inc.TakeProgress() {
				t.Fatalf("delivered-byte accounting diverged")
			}
		})
	}
}

// TestSolverInvocationCounts pins the lazy-solve contract: a burst of
// Starts costs one solve, and quiet Advances (no dirty flows, no
// completions due) run the solver zero times.
func TestSolverInvocationCounts(t *testing.T) {
	e := newTestEngine(t)
	e.Hooks = &recorder{}
	nodes := e.topo.Nodes()
	for i := 0; i < 12; i++ {
		src := topology.NodeID((i * 5) % nodes)
		dst := topology.NodeID((i*7 + 3) % nodes)
		if src == dst {
			dst = (dst + 1) % topology.NodeID(nodes)
		}
		e.Start(src, dst, 64<<20, FlowOpts{})
	}
	e.Resolve()
	if got := e.Solves(); got != 1 {
		t.Fatalf("burst of 12 starts ran solver %d times, want 1", got)
	}
	// 64 MiB per flow lasts well past a few microseconds: these advances
	// are quiet intervals and must not re-solve.
	base := e.Solves()
	for i := 0; i < 50; i++ {
		e.Advance(e.Now() + sim.Microsecond)
	}
	if got := e.Solves(); got != base {
		t.Fatalf("quiet interval ran solver %d extra times, want 0", got-base)
	}
	// Completions dirty their component and re-solve on the next lap.
	e.Advance(sim.Second)
	if got := e.Solves(); got <= base {
		t.Fatalf("drain never re-solved (solves=%d)", got)
	}
}
