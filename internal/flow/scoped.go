package flow

import (
	"repro/internal/topology"
)

// ShardSet is the fluid engine's domain decomposition: one scoped Engine
// per partition domain, each covering only the segments whose owning
// switch (or node) lives in that domain, in a compact local index space.
// The global->local address tables (swBase/nodeUp/nodeDn) are built once
// and shared by every engine — an entry is the base/index in the OWNING
// domain's space, so a scoped engine must only ever be asked about
// switches and nodes its domain owns. Each engine's gid table translates
// local segments back to the global (full-engine) ids the boundary
// exchange speaks.
//
// The intended wiring (see fabric): flows whose minimal candidates stay
// inside one domain run on that domain's engine, concurrently with other
// domains; flows crossing a cut run on a separate full Engine
// (NewEngine) owned by the control thread, and the two layers exchange
// per-segment allocated rates as external derating (SetExtRate) at epoch
// barriers.
type ShardSet struct {
	// Engines holds one scoped engine per domain, indexed by domain id.
	Engines []*Engine
	// segDom/segLoc map a global segment id to its owning domain and its
	// index in that domain's local space (the inverse of every gid).
	segDom []int32
	segLoc []int32
	// activeTo is shared by all scoped engines: a local flow's destination
	// is always domain-owned, so concurrent domains write disjoint rows —
	// and readers (the hybrid classifier, on quiesced control state) see
	// one fabric-wide fan-in figure with a single lookup.
	activeTo []int32
}

// NewShardedEngines builds one scoped engine per domain of part over
// topo. Segment capacities follow NewEngine exactly (parallel links pool
// into one segment); every global segment is owned by exactly one scoped
// engine, including cut-link exits (owned by the A-side switch's domain —
// boundary flows consume them through the ext exchange, never directly).
func NewShardedEngines(topo topology.Topology, caps Caps, part topology.Partition) *ShardSet {
	sw, nodes := topo.Switches(), topo.Nodes()
	k := part.Domains
	ss := &ShardSet{Engines: make([]*Engine, k)}
	for d := 0; d < k; d++ {
		ss.Engines[d] = newEngineShell(topo, caps.MaxPaths)
	}
	// Lay out each domain's local segment space in global scan order,
	// growing gid as the local id mint: fabric segments first (per switch,
	// one per dense neighbor index), then node-up, then node-down edges —
	// the same shape as NewEngine, restricted to the domain.
	swBase := make([]int32, sw)
	gBase := int32(0)
	for s := 0; s < sw; s++ {
		e := ss.Engines[part.Of[s]]
		swBase[s] = int32(len(e.gid))
		nc := int32(topo.NeighborCount(topology.SwitchID(s)))
		for i := int32(0); i < nc; i++ {
			e.gid = append(e.gid, gBase+i)
		}
		gBase += nc
	}
	gFabric := gBase
	nodeUp := make([]int32, nodes)
	nodeDn := make([]int32, nodes)
	for n := 0; n < nodes; n++ {
		e := ss.Engines[part.Of[topo.SwitchOf(topology.NodeID(n))]]
		nodeUp[n] = int32(len(e.gid))
		e.gid = append(e.gid, gFabric+int32(n))
	}
	for n := 0; n < nodes; n++ {
		e := ss.Engines[part.Of[topo.SwitchOf(topology.NodeID(n))]]
		nodeDn[n] = int32(len(e.gid))
		e.gid = append(e.gid, gFabric+int32(nodes)+int32(n))
	}
	// Inverse tables for the barrier exchange (global -> owner, local).
	nGlobal := int(gFabric) + 2*nodes
	ss.segDom = make([]int32, nGlobal)
	ss.segLoc = make([]int32, nGlobal)
	ss.activeTo = make([]int32, nodes)
	for d, e := range ss.Engines {
		e.swBase, e.nodeUp, e.nodeDn = swBase, nodeUp, nodeDn
		e.initSegs(len(e.gid))
		e.activeTo = ss.activeTo
		e.EnableChangeTracking()
		for l, g := range e.gid {
			ss.segDom[g] = int32(d)
			ss.segLoc[g] = int32(l)
		}
	}
	// Capacities: every link contributes to its owning engine's segments.
	// A cut link's two directed segments land in different engines, each
	// owned by the exit switch's domain.
	for _, lk := range topo.Links() {
		switch lk.Kind {
		case topology.EdgeLink:
			e := ss.Engines[part.Of[lk.A]]
			e.segCap[nodeUp[lk.Node]] = caps.EdgeBits
			e.segCap[nodeDn[lk.Node]] = caps.EdgeBits
		case topology.LocalLink, topology.GlobalLink:
			bits := caps.LocalBits
			if lk.Kind == topology.GlobalLink {
				bits = caps.GlobalBits
			}
			ea := ss.Engines[part.Of[lk.A]]
			eb := ss.Engines[part.Of[lk.B]]
			ea.segCap[swBase[lk.A]+int32(topo.NeighborIndex(lk.A, lk.B))] += bits
			eb.segCap[swBase[lk.B]+int32(topo.NeighborIndex(lk.B, lk.A))] += bits
		}
	}
	return ss
}

// Owner maps a global segment id to its owning domain and the segment's
// index in that domain's local space.
func (ss *ShardSet) Owner(g int32) (dom int, local int32) {
	return int(ss.segDom[g]), ss.segLoc[g]
}

// ActiveTo is the fan-in of in-flight scoped flows destined to node n,
// summed over every domain engine (they share one table — a local flow's
// destination is always domain-owned, so writers never collide).
func (ss *ShardSet) ActiveTo(n topology.NodeID) int32 { return ss.activeTo[n] }
