// Package flow is the flow-level (fluid) fast path of the simulator: it
// advances bulk transfers on coarse epochs using a progressive-filling
// max–min fair-share rate solver over the same topology.Topology the
// packet engine routes on, instead of moving individual packets through
// switch queues. A flow is a (src node, dst node, bytes) triple pinned to
// one cached minimal path; the solver assigns every active flow the
// max–min fair rate given directed segment capacities, and Advance
// integrates remaining bytes between rate changes analytically — the only
// "events" are flow arrivals, flow completions, and the caller's own
// epoch ticks.
//
// Fidelity contract: rates are exact max–min fair shares on the chosen
// paths, but there is no queuing delay, no adaptive per-packet spreading
// beyond the per-flow path choice, and no congestion control. Callers
// that need those effects (victims, incast hotspots, throttled pairs)
// must keep them on the packet engine — see fabric's hybrid mode. The
// calibration tests in internal/harness bound the resulting error
// against the packet engine on golden-scale scenarios.
//
// Determinism: the engine is driven from a single goroutine (fabric's
// control engine), every iteration order is slice order, path choice is
// deterministic given the active flow set, and completion callbacks fire
// in (time, enqueue-sequence) order from a binary heap. No maps, no RNG,
// no wall clock.
//
// Steady-state epochs are alloc-free after warm-up: flow records are
// free-listed, per-segment scratch (residual capacity, unfixed counts,
// CSR flow lists) lives in engine-owned slices that are re-stamped rather
// than reallocated, and the callback heap reuses its backing array.
package flow

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Caps carries the effective (goodput) capacity of each link class in
// bits per second. The fabric adapter derives these from its Profile by
// multiplying raw line rate with the Ethernet framing efficiency at the
// profile's cell size, so a fluid flow saturating a segment moves payload
// bytes at the same rate a packet stream saturating the link would.
type Caps struct {
	EdgeBits   float64 // node<->switch links, each direction
	LocalBits  float64 // intra-group (electrical) switch links
	GlobalBits float64 // inter-group (optical) switch links
	// MaxPaths bounds the cached minimal-path candidates per switch pair
	// (0 means the fabric default of 4).
	MaxPaths int
}

// Hooks receives flow completion callbacks. Delivered fires when the last
// byte would land at the destination (fluid completion plus the flow's
// ExtraLatency); Acked fires AckLatency later. The arg is the opaque
// per-flow value passed to Start — callbacks carry no closures so the
// spine stays allocation-free.
type Hooks interface {
	FlowDelivered(at sim.Time, arg any)
	FlowAcked(at sim.Time, arg any)
}

// FlowOpts parameterises one Start call.
type FlowOpts struct {
	// ExtraBytes inflates the fluid transfer to charge per-message serial
	// overheads (host injection gap, rendezvous inter-message gap) as
	// their bandwidth-equivalent, so streaming throughput calibrates.
	ExtraBytes int64
	// ExtraLatency is the quiet-path latency (host gap, NIC, wire
	// propagation, switch traversals, handshakes) added to the fluid
	// completion time before Delivered fires.
	ExtraLatency sim.Time
	// AckLatency separates Acked from Delivered (reverse-path latency).
	AckLatency sim.Time
	// Arg is handed back verbatim to both hooks.
	Arg any
}

// Flow is one active fluid transfer. Records are engine-owned and
// free-listed; callers never hold one past Start.
type Flow struct {
	id        int64
	src, dst  topology.NodeID
	remaining float64 // payload+overhead bytes left
	rate      float64 // bits/s, assigned by the solver
	segs      []int32 // directed segment indices, reused capacity
	extraLat  sim.Time
	ackLat    sim.Time
	arg       any
}

// pendingCB is a completion callback waiting for its fire time; ack
// selects which hook. The heap orders by (at, seq) so ties break on
// enqueue order.
type pendingCB struct {
	at  sim.Time
	seq int64
	ack bool
	arg any
}

// Engine advances a set of fluid flows over directed capacity segments.
// One segment exists per (switch, dense neighbor index) direction —
// parallel links between a switch pair pool into one segment, matching
// the packet engine's round-robin port spreading — plus one per node for
// each edge-link direction.
type Engine struct {
	topo  topology.Topology
	Hooks Hooks

	// Segment tables, fixed at construction.
	segCap   []float64 // effective bits/s per segment
	segOff   []int32   // fabric segment base per switch
	edgeUp   int32     // segment index base: node -> switch
	edgeDown int32     // segment index base: switch -> node
	nSeg     int

	maxPaths int
	minPaths [][][]topology.Path // lazy cache rows [src][dst]

	active   []*Flow
	freeList []*Flow
	nextID   int64
	nextSeq  int64

	segFlows []int32 // live flow count per segment (path choice)
	activeTo []int32 // active bulk flows per destination node

	// Solver scratch, stamped per solve.
	dirty    bool
	stamp    int32
	segStamp []int32   // last stamp that touched the segment
	segSlot  []int32   // segment -> slot in the touched arrays
	touched  []int32   // segments used by the current active set
	resid    []float64 // per-slot residual capacity
	unfixed  []int32   // per-slot count of unfixed flows
	csrStart []int32   // per-slot CSR bounds into csrFlow
	csrPos   []int32
	csrFlow  []int32 // flow indices grouped by slot
	segRate  []float64 // per-segment allocated bits/s (persistent, for BG export)
	rated    []int32   // segments with nonzero segRate (to clear next solve)

	now        sim.Time
	progressed float64 // whole+fractional bytes advanced since TakeProgress

	cbs []pendingCB // binary heap by (at, seq)
}

// NewEngine builds the segment capacity tables for topo. Capacities pool
// parallel links: a Dragonfly pair joined by two global links yields one
// segment at twice GlobalBits, which is how the packet engine's
// round-robin over parallel ports behaves in aggregate.
func NewEngine(topo topology.Topology, caps Caps) *Engine {
	e := &Engine{topo: topo, maxPaths: caps.MaxPaths}
	if e.maxPaths <= 0 {
		e.maxPaths = 4
	}
	sw, nodes := topo.Switches(), topo.Nodes()
	e.segOff = make([]int32, sw+1)
	for s := 0; s < sw; s++ {
		e.segOff[s+1] = e.segOff[s] + int32(topo.NeighborCount(topology.SwitchID(s)))
	}
	fabricSegs := int(e.segOff[sw])
	e.edgeUp = int32(fabricSegs)
	e.edgeDown = int32(fabricSegs + nodes)
	e.nSeg = fabricSegs + 2*nodes
	e.segCap = make([]float64, e.nSeg)
	for _, lk := range topo.Links() {
		switch lk.Kind {
		case topology.EdgeLink:
			e.segCap[e.edgeUp+int32(lk.Node)] = caps.EdgeBits
			e.segCap[e.edgeDown+int32(lk.Node)] = caps.EdgeBits
		case topology.LocalLink, topology.GlobalLink:
			bits := caps.LocalBits
			if lk.Kind == topology.GlobalLink {
				bits = caps.GlobalBits
			}
			e.segCap[e.segOff[lk.A]+int32(topo.NeighborIndex(lk.A, lk.B))] += bits
			e.segCap[e.segOff[lk.B]+int32(topo.NeighborIndex(lk.B, lk.A))] += bits
		}
	}
	e.minPaths = make([][][]topology.Path, sw)
	e.segFlows = make([]int32, e.nSeg)
	e.activeTo = make([]int32, nodes)
	e.segStamp = make([]int32, e.nSeg)
	e.segSlot = make([]int32, e.nSeg)
	e.segRate = make([]float64, e.nSeg)
	return e
}

// Now returns the engine's fluid clock (the last Advance target).
func (e *Engine) Now() sim.Time { return e.now }

// Active returns the number of in-flight flows.
func (e *Engine) Active() int { return len(e.active) }

// ActiveTo returns the number of in-flight flows destined to node n —
// the hybrid classifier's incast fan-in signal.
func (e *Engine) ActiveTo(n topology.NodeID) int { return int(e.activeTo[n]) }

// SegmentRate returns the solver-allocated bits/s on the fabric segment
// from switch s towards its nbIdx-th neighbor, and the segment's
// capacity. Valid after the last Advance/Start (the solver runs lazily;
// call Resolve first if rates must be fresh).
func (e *Engine) SegmentRate(s topology.SwitchID, nbIdx int) (rate, cap float64) {
	i := e.segOff[s] + int32(nbIdx)
	return e.segRate[i], e.segCap[i]
}

// EdgeDownRate returns allocated bits/s and capacity on the switch->node
// edge segment of n.
func (e *Engine) EdgeDownRate(n topology.NodeID) (rate, cap float64) {
	i := e.edgeDown + int32(n)
	return e.segRate[i], e.segCap[i]
}

// EdgeUpRate returns allocated bits/s and capacity on the node->switch
// edge segment of n.
func (e *Engine) EdgeUpRate(n topology.NodeID) (rate, cap float64) {
	i := e.edgeUp + int32(n)
	return e.segRate[i], e.segCap[i]
}

// TakeProgress returns the whole bytes delivered by fluid progress since
// the previous call, retaining the fractional remainder. The adapter
// feeds this into its delivered-bytes counters so bandwidth measurements
// see smooth progress rather than end-of-flow steps.
func (e *Engine) TakeProgress() int64 {
	whole := int64(e.progressed)
	e.progressed -= float64(whole)
	return whole
}

// Resolve runs the fair-share solver if the active set changed since the
// last solve. Exposed so background-load publication can snapshot fresh
// rates without advancing time.
func (e *Engine) Resolve() {
	if e.dirty {
		e.solve()
	}
}

// Start admits a fluid flow of bytes payload bytes from src to dst and
// returns its id. Path choice is deterministic: among the cached minimal
// candidates, the one whose most-loaded fabric segment carries the
// fewest flows (ties: fewer total flows, then candidate order).
func (e *Engine) Start(src, dst topology.NodeID, bytes int64, opt FlowOpts) int64 {
	f := e.alloc()
	f.src, f.dst = src, dst
	f.remaining = float64(bytes + opt.ExtraBytes)
	f.rate = 0
	f.extraLat = opt.ExtraLatency
	f.ackLat = opt.AckLatency
	f.arg = opt.Arg
	e.buildSegs(f)
	for _, s := range f.segs {
		e.segFlows[s]++
	}
	e.activeTo[dst]++
	e.active = append(e.active, f)
	e.dirty = true
	return f.id
}

// alloc takes a flow record off the free list (or mints one) and stamps
// a fresh id.
func (e *Engine) alloc() *Flow {
	var f *Flow
	if n := len(e.freeList); n > 0 {
		f = e.freeList[n-1]
		e.freeList = e.freeList[:n-1]
	} else {
		f = &Flow{}
	}
	e.nextID++
	f.id = e.nextID
	return f
}

// buildSegs fills f.segs with the directed segments of the chosen path:
// edge up, fabric hops, edge down.
func (e *Engine) buildSegs(f *Flow) {
	f.segs = f.segs[:0]
	f.segs = append(f.segs, e.edgeUp+int32(f.src))
	a, b := e.topo.SwitchOf(f.src), e.topo.SwitchOf(f.dst)
	if a != b {
		p := e.choosePath(a, b)
		for i := 0; i+1 < len(p); i++ {
			nb := e.topo.NeighborIndex(p[i], p[i+1])
			f.segs = append(f.segs, e.segOff[p[i]]+int32(nb))
		}
	}
	f.segs = append(f.segs, e.edgeDown+int32(f.dst))
}

// choosePath picks among the cached minimal candidates by current flow
// load — a cheap stand-in for the packet engine's adaptive spreading
// that keeps parallel minimal routes evenly filled.
func (e *Engine) choosePath(a, b topology.SwitchID) topology.Path {
	cands := e.candidates(a, b)
	best := 0
	bestMax, bestSum := int32(1<<30), int32(1<<30)
	for ci, p := range cands {
		var mx, sum int32
		for i := 0; i+1 < len(p); i++ {
			s := e.segOff[p[i]] + int32(e.topo.NeighborIndex(p[i], p[i+1]))
			n := e.segFlows[s]
			if n > mx {
				mx = n
			}
			sum += n
		}
		if mx < bestMax || (mx == bestMax && sum < bestSum) {
			best, bestMax, bestSum = ci, mx, sum
		}
	}
	return cands[best]
}

// candidates returns the cached minimal paths a->b, building the row on
// first use (MinimalPaths is deterministic and RNG-free by the Topology
// contract, so the returned slices cache safely).
func (e *Engine) candidates(a, b topology.SwitchID) []topology.Path {
	row := e.minPaths[a]
	if row == nil {
		row = make([][]topology.Path, e.topo.Switches())
		e.minPaths[a] = row
	}
	ps := row[b]
	if ps == nil {
		ps = e.topo.MinimalPaths(a, b, e.maxPaths)
		row[b] = ps
	}
	return ps
}

// remove drops active[i] (swap with last; deterministic given the call
// sequence) and returns the record to the free list.
func (e *Engine) remove(i int) {
	f := e.active[i]
	for _, s := range f.segs {
		e.segFlows[s]--
	}
	e.activeTo[f.dst]--
	last := len(e.active) - 1
	e.active[i] = e.active[last]
	e.active[last] = nil
	e.active = e.active[:last]
	f.arg = nil
	e.freeList = append(e.freeList, f)
	e.dirty = true
}
