// Package flow is the flow-level (fluid) fast path of the simulator: it
// advances bulk transfers on coarse epochs using a progressive-filling
// max–min fair-share rate solver over the same topology.Topology the
// packet engine routes on, instead of moving individual packets through
// switch queues. A flow is a (src node, dst node, bytes) triple pinned to
// one cached minimal path; the solver assigns every active flow the
// max–min fair rate given directed segment capacities, and Advance
// integrates remaining bytes between rate changes analytically — the only
// "events" are flow arrivals, flow completions, and the caller's own
// epoch ticks.
//
// Re-solving is incremental: a flow start or finish dirties only the
// segments it crosses, and the solver re-fills just the affected
// component — the segments reachable from the dirty seeds through
// shared-flow adjacency. Max–min fairness decomposes exactly over such
// components (flows in different components share no segment, so no
// bottleneck constraint couples them), and both the full and the
// component solve enumerate flows in canonical id order, so the
// incremental result is bit-identical to re-solving from scratch while
// costing O(component) instead of O(flows x path length) per event.
//
// Fidelity contract: rates are exact max–min fair shares on the chosen
// paths, but there is no queuing delay, no adaptive per-packet spreading
// beyond the per-flow path choice, and no congestion control. Callers
// that need those effects (victims, incast hotspots, throttled pairs)
// must keep them on the packet engine — see fabric's hybrid mode. The
// calibration tests in internal/harness bound the resulting error
// against the packet engine on golden-scale scenarios.
//
// Determinism: the engine is driven from a single goroutine (fabric's
// control engine, or exactly one shard domain when sharded), every
// iteration order is slice order or canonical id order, path choice is
// deterministic given the active flow set, and completion callbacks fire
// in (time, enqueue-sequence) order from a binary heap. The minimal-path
// cache is a map but is only ever keyed, never iterated. No RNG, no wall
// clock.
//
// Steady-state epochs are alloc-free after warm-up: flow records are
// free-listed, per-segment scratch (residual capacity, unfixed counts,
// CSR flow lists, membership rows) lives in engine-owned slices that are
// re-stamped rather than reallocated, and the callback heap reuses its
// backing array.
package flow

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Caps carries the effective (goodput) capacity of each link class in
// bits per second. The fabric adapter derives these from its Profile by
// multiplying raw line rate with the Ethernet framing efficiency at the
// profile's cell size, so a fluid flow saturating a segment moves payload
// bytes at the same rate a packet stream saturating the link would.
type Caps struct {
	EdgeBits   float64 // node<->switch links, each direction
	LocalBits  float64 // intra-group (electrical) switch links
	GlobalBits float64 // inter-group (optical) switch links
	// MaxPaths bounds the cached minimal-path candidates per switch pair
	// (0 means the fabric default of 4).
	MaxPaths int
}

// Hooks receives flow completion callbacks. Delivered fires when the last
// byte would land at the destination (fluid completion plus the flow's
// ExtraLatency); Acked fires AckLatency later. The arg is the opaque
// per-flow value passed to Start — callbacks carry no closures so the
// spine stays allocation-free.
type Hooks interface {
	FlowDelivered(at sim.Time, arg any)
	FlowAcked(at sim.Time, arg any)
}

// FlowOpts parameterises one Start call.
type FlowOpts struct {
	// ExtraBytes inflates the fluid transfer to charge per-message serial
	// overheads (host injection gap, rendezvous inter-message gap) as
	// their bandwidth-equivalent, so streaming throughput calibrates.
	ExtraBytes int64
	// ExtraLatency is the quiet-path latency (host gap, NIC, wire
	// propagation, switch traversals, handshakes) added to the fluid
	// completion time before Delivered fires.
	ExtraLatency sim.Time
	// AckLatency separates Acked from Delivered (reverse-path latency).
	AckLatency sim.Time
	// Arg is handed back verbatim to both hooks.
	Arg any
}

// Flow is one active fluid transfer. Records are engine-owned and
// free-listed; callers never hold one past Start.
type Flow struct {
	id        int64
	src, dst  topology.NodeID
	remaining float64 // payload+overhead bytes left
	rate      float64 // bits/s, assigned by the solver
	segs      []int32 // directed segment indices, reused capacity
	segPos    []int32 // this flow's slot in memb[segs[i]] (parallel to segs)
	mark      int32   // component-BFS visit generation
	extraLat  sim.Time
	ackLat    sim.Time
	arg       any
}

// membEntry is one active flow's membership on a segment: the flow plus
// which of its own segs entries this segment is, so a swap-removal can
// repair the moved entry's back-pointer in O(1).
type membEntry struct {
	f  *Flow
	si int32
}

// pendingCB is a completion callback waiting for its fire time; ack
// selects which hook. The heap orders by (at, seq) so ties break on
// enqueue order.
type pendingCB struct {
	at  sim.Time
	seq int64
	ack bool
	arg any
}

// Engine advances a set of fluid flows over directed capacity segments.
// One segment exists per (switch, dense neighbor index) direction —
// parallel links between a switch pair pool into one segment, matching
// the packet engine's round-robin port spreading — plus one per node for
// each edge-link direction.
//
// A full engine (NewEngine) covers the whole topology; a scoped engine
// (NewShardedEngines) covers one partition domain with a compact local
// segment space, addressed through shared global->local tables. Callers
// of a scoped engine must only name switches and nodes the scope owns.
type Engine struct {
	topo  topology.Topology
	Hooks Hooks

	// Segment address tables, fixed at construction. swBase maps a global
	// switch to its fabric-segment base in THIS engine's index space (its
	// dense neighbor index is the offset); nodeUp/nodeDn map a global node
	// to its edge segments. For a full engine these cover every
	// switch/node; for a scoped engine foreign entries belong to another
	// engine's space and must never be dereferenced here.
	segCap []float64 // effective bits/s per segment
	swBase []int32
	nodeUp []int32
	nodeDn []int32
	nSeg   int
	// gid translates a local segment to its global segment id for the
	// sharded boundary exchange; nil for full engines (identity).
	gid []int32

	maxPaths int
	// paths caches minimal-path candidates keyed by (src switch << 32 |
	// dst switch). A map (lookups only, never iterated — determinism is
	// preserved) instead of dense per-source rows: million-endpoint
	// fabrics would pay ~1.5 MB per distinct source switch for rows.
	paths map[int64][]topology.Path

	active   []*Flow
	freeList []*Flow
	nextID   int64
	nextSeq  int64

	segFlows []int32       // live flow count per segment (path choice)
	activeTo []int32       // active bulk flows per destination node
	memb     [][]membEntry // active flows on each segment (component BFS)

	// Dirty-seed tracking: segments touched by flow starts/finishes (and
	// external-rate changes) since the last solve, deduplicated by a
	// generation mark.
	dirty     bool
	dirtySegs []int32
	dirtyMark []int32
	dirtyGen  int32
	forceFull bool  // always re-solve from scratch (bench/test reference)
	solved    bool  // a full solve has run; incremental patching is valid
	solves    int64 // solver invocations (regression tests pin this)

	// Solver scratch, stamped per solve.
	stamp    int32
	visit    int32   // flow-mark generation for the component BFS
	segStamp []int32 // last stamp that touched the segment
	segSlot  []int32 // segment -> slot in the touched arrays
	touched  []int32 // segments used by the current fill set
	comp     []int32 // component BFS queue / segment list
	order    []*Flow // fill working set, canonical id order
	sorter   byID
	resid    []float64 // per-slot residual capacity
	unfixed  []int32   // per-slot count of unfixed flows
	csrStart []int32   // per-slot CSR bounds into csrFlow
	csrPos   []int32
	csrFlow  []int32   // order indices grouped by slot
	segRate  []float64 // per-segment allocated bits/s (persistent, for BG export)
	rated    []int32   // segments possibly carrying nonzero segRate
	inRated  []bool    // rated-membership dedup

	// ext is per-segment capacity consumed by flows living in a foreign
	// engine (the sharded boundary exchange); nil until SetExtRate.
	ext []float64

	// Changed-segment tracking for the epoch exchange; nil until
	// EnableChangeTracking.
	changed []int32
	chMark  []int32
	chGen   int32

	now        sim.Time
	progressed float64 // whole+fractional bytes advanced since TakeProgress

	cbs []pendingCB // binary heap by (at, seq)
}

// byID orders the solver's working set canonically by flow id through a
// persistent sorter struct (no per-solve boxing). Canonical order is what
// makes the incremental component solve bit-identical to the full one:
// swap-removal permutes the active slice, so enumeration order must not
// depend on removal history.
type byID struct{ f []*Flow }

func (o *byID) Len() int           { return len(o.f) }
func (o *byID) Less(i, j int) bool { return o.f[i].id < o.f[j].id }
func (o *byID) Swap(i, j int)      { o.f[i], o.f[j] = o.f[j], o.f[i] }

// NewEngine builds the segment capacity tables for topo. Capacities pool
// parallel links: a Dragonfly pair joined by two global links yields one
// segment at twice GlobalBits, which is how the packet engine's
// round-robin over parallel ports behaves in aggregate.
func NewEngine(topo topology.Topology, caps Caps) *Engine {
	sw, nodes := topo.Switches(), topo.Nodes()
	e := newEngineShell(topo, caps.MaxPaths)
	e.swBase = make([]int32, sw)
	base := int32(0)
	for s := 0; s < sw; s++ {
		e.swBase[s] = base
		base += int32(topo.NeighborCount(topology.SwitchID(s)))
	}
	fabricSegs := base
	e.nodeUp = make([]int32, nodes)
	e.nodeDn = make([]int32, nodes)
	for n := 0; n < nodes; n++ {
		e.nodeUp[n] = fabricSegs + int32(n)
		e.nodeDn[n] = fabricSegs + int32(nodes) + int32(n)
	}
	e.initSegs(int(fabricSegs) + 2*nodes)
	for _, lk := range topo.Links() {
		switch lk.Kind {
		case topology.EdgeLink:
			e.segCap[e.nodeUp[lk.Node]] = caps.EdgeBits
			e.segCap[e.nodeDn[lk.Node]] = caps.EdgeBits
		case topology.LocalLink, topology.GlobalLink:
			bits := caps.LocalBits
			if lk.Kind == topology.GlobalLink {
				bits = caps.GlobalBits
			}
			e.segCap[e.swBase[lk.A]+int32(topo.NeighborIndex(lk.A, lk.B))] += bits
			e.segCap[e.swBase[lk.B]+int32(topo.NeighborIndex(lk.B, lk.A))] += bits
		}
	}
	e.activeTo = make([]int32, nodes)
	return e
}

// newEngineShell builds the topology-independent part of an Engine.
func newEngineShell(topo topology.Topology, maxPaths int) *Engine {
	e := &Engine{topo: topo, maxPaths: maxPaths, dirtyGen: 1, chGen: 1}
	if e.maxPaths <= 0 {
		e.maxPaths = 4
	}
	e.paths = make(map[int64][]topology.Path)
	return e
}

// initSegs sizes every per-segment table for n segments.
func (e *Engine) initSegs(n int) {
	e.nSeg = n
	e.segCap = make([]float64, n)
	e.segFlows = make([]int32, n)
	e.segStamp = make([]int32, n)
	e.segSlot = make([]int32, n)
	e.segRate = make([]float64, n)
	e.inRated = make([]bool, n)
	e.dirtyMark = make([]int32, n)
	e.memb = make([][]membEntry, n)
}

// Now returns the engine's fluid clock (the last Advance target).
func (e *Engine) Now() sim.Time { return e.now }

// Active returns the number of in-flight flows.
func (e *Engine) Active() int { return len(e.active) }

// NSegs returns the engine's segment count (local space for scoped
// engines).
func (e *Engine) NSegs() int { return e.nSeg }

// ActiveTo returns the number of in-flight flows destined to node n —
// the hybrid classifier's incast fan-in signal.
func (e *Engine) ActiveTo(n topology.NodeID) int { return int(e.activeTo[n]) }

// Solves returns how many times the fair-share solver has run — the
// redundant-resolve regression tests pin this on quiet intervals.
func (e *Engine) Solves() int64 { return e.solves }

// SetForceFull switches the engine to always re-solve from scratch
// instead of patching the affected component — the reference mode the
// equivalence tests and BenchmarkSolverIncremental compare against.
func (e *Engine) SetForceFull(v bool) { e.forceFull = v }

// SegmentRate returns the solver-allocated bits/s on the fabric segment
// from switch s towards its nbIdx-th neighbor, and the segment's
// capacity. Valid after the last Advance/Start (the solver runs lazily;
// call Resolve first if rates must be fresh). Scoped engines accept only
// switches their scope owns.
func (e *Engine) SegmentRate(s topology.SwitchID, nbIdx int) (rate, cap float64) {
	i := e.swBase[s] + int32(nbIdx)
	return e.segRate[i], e.segCap[i]
}

// EdgeDownRate returns allocated bits/s and capacity on the switch->node
// edge segment of n.
func (e *Engine) EdgeDownRate(n topology.NodeID) (rate, cap float64) {
	i := e.nodeDn[n]
	return e.segRate[i], e.segCap[i]
}

// EdgeUpRate returns allocated bits/s and capacity on the node->switch
// edge segment of n.
func (e *Engine) EdgeUpRate(n topology.NodeID) (rate, cap float64) {
	i := e.nodeUp[n]
	return e.segRate[i], e.segCap[i]
}

// SegRateAt returns the allocated bits/s on segment s of this engine's
// own index space (the exchange path reads rates by Changed() index).
func (e *Engine) SegRateAt(s int32) float64 { return e.segRate[s] }

// GlobalSeg translates one of this engine's segment indices to the
// global (full-engine) segment id: identity for full engines.
func (e *Engine) GlobalSeg(s int32) int32 {
	if e.gid == nil {
		return s
	}
	return e.gid[s]
}

// SetExtRate declares that flows solved in a foreign engine consume r
// bits/s of segment s (this engine's index space), derating its
// effective capacity for the local solver. The segment joins the dirty
// seeds; callers must have Advanced this engine to the change's event
// time first, then Resolve.
func (e *Engine) SetExtRate(s int32, r float64) {
	if e.ext == nil {
		if r == 0 {
			return
		}
		e.ext = make([]float64, e.nSeg)
	}
	if e.ext[s] == r {
		return
	}
	e.ext[s] = r
	e.markDirty(s)
}

// EnableChangeTracking turns on the changed-segment journal consumed by
// the sharded epoch exchange (Changed / ResetChanged).
func (e *Engine) EnableChangeTracking() {
	if e.chMark == nil {
		e.chMark = make([]int32, e.nSeg)
	}
}

// Changed lists the segments whose allocated rate may have changed since
// the last ResetChanged (deduplicated, unordered beyond solve order).
func (e *Engine) Changed() []int32 { return e.changed }

// ResetChanged clears the changed-segment journal.
func (e *Engine) ResetChanged() {
	e.changed = e.changed[:0]
	e.chGen++
}

// markChanged journals a segment whose rate the current solve may alter.
//
//simlint:hotpath
func (e *Engine) markChanged(s int32) {
	if e.chMark == nil || e.chMark[s] == e.chGen {
		return
	}
	e.chMark[s] = e.chGen
	e.changed = append(e.changed, s)
}

// markDirty seeds the next solve's affected-component expansion with s.
//
//simlint:hotpath
func (e *Engine) markDirty(s int32) {
	e.dirty = true
	if e.dirtyMark[s] == e.dirtyGen {
		return
	}
	e.dirtyMark[s] = e.dirtyGen
	e.dirtySegs = append(e.dirtySegs, s)
}

// TakeProgress returns the whole bytes delivered by fluid progress since
// the previous call, retaining the fractional remainder. The adapter
// feeds this into its delivered-bytes counters so bandwidth measurements
// see smooth progress rather than end-of-flow steps.
func (e *Engine) TakeProgress() int64 {
	whole := int64(e.progressed)
	e.progressed -= float64(whole)
	return whole
}

// Resolve runs the fair-share solver if the active set changed since the
// last solve. Exposed so background-load publication and the epoch
// exchange can snapshot fresh rates without advancing time; the engine
// must already stand at the set change's event time.
func (e *Engine) Resolve() {
	if e.dirty {
		e.solve()
	}
}

// Start admits a fluid flow of bytes payload bytes from src to dst and
// returns its id. Path choice is deterministic: among the cached minimal
// candidates, the one whose most-loaded fabric segment carries the
// fewest flows (ties: fewer total flows, then candidate order). The rate
// solve is lazy — it folds in at the next Advance/Resolve, so a burst of
// Starts at one instant costs one component solve, not one per Start.
func (e *Engine) Start(src, dst topology.NodeID, bytes int64, opt FlowOpts) int64 {
	f := e.alloc()
	f.src, f.dst = src, dst
	f.remaining = float64(bytes + opt.ExtraBytes)
	f.rate = 0
	f.extraLat = opt.ExtraLatency
	f.ackLat = opt.AckLatency
	f.arg = opt.Arg
	e.buildSegs(f)
	for i, s := range f.segs {
		e.segFlows[s]++
		f.segPos = append(f.segPos, int32(len(e.memb[s])))
		e.memb[s] = append(e.memb[s], membEntry{f: f, si: int32(i)}) //simlint:retained -- membership row; cleared on remove
		e.markDirty(s)
	}
	e.activeTo[dst]++
	e.active = append(e.active, f)
	return f.id
}

// alloc takes a flow record off the free list (or mints one) and stamps
// a fresh id.
func (e *Engine) alloc() *Flow {
	var f *Flow
	if n := len(e.freeList); n > 0 {
		f = e.freeList[n-1]
		e.freeList = e.freeList[:n-1]
	} else {
		f = &Flow{}
	}
	e.nextID++
	f.id = e.nextID
	return f
}

// buildSegs fills f.segs with the directed segments of the chosen path:
// edge up, fabric hops, edge down.
func (e *Engine) buildSegs(f *Flow) {
	f.segs = f.segs[:0]
	f.segPos = f.segPos[:0]
	f.segs = append(f.segs, e.nodeUp[f.src])
	a, b := e.topo.SwitchOf(f.src), e.topo.SwitchOf(f.dst)
	if a != b {
		p := e.choosePath(a, b)
		for i := 0; i+1 < len(p); i++ {
			nb := e.topo.NeighborIndex(p[i], p[i+1])
			f.segs = append(f.segs, e.swBase[p[i]]+int32(nb))
		}
	}
	f.segs = append(f.segs, e.nodeDn[f.dst])
}

// choosePath picks among the cached minimal candidates by current flow
// load — a cheap stand-in for the packet engine's adaptive spreading
// that keeps parallel minimal routes evenly filled.
func (e *Engine) choosePath(a, b topology.SwitchID) topology.Path {
	cands := e.candidates(a, b)
	best := 0
	bestMax, bestSum := int32(1<<30), int32(1<<30)
	for ci, p := range cands {
		var mx, sum int32
		for i := 0; i+1 < len(p); i++ {
			s := e.swBase[p[i]] + int32(e.topo.NeighborIndex(p[i], p[i+1]))
			n := e.segFlows[s]
			if n > mx {
				mx = n
			}
			sum += n
		}
		if mx < bestMax || (mx == bestMax && sum < bestSum) {
			best, bestMax, bestSum = ci, mx, sum
		}
	}
	return cands[best]
}

// candidates returns the cached minimal paths a->b, building the entry on
// first use (MinimalPaths is deterministic and RNG-free by the Topology
// contract, so the returned slices cache safely). The cache is keyed,
// never iterated.
func (e *Engine) candidates(a, b topology.SwitchID) []topology.Path {
	key := int64(a)<<32 | int64(b)
	ps, ok := e.paths[key]
	if !ok {
		ps = e.topo.MinimalPaths(a, b, e.maxPaths)
		e.paths[key] = ps //simlint:retained -- per-pair path cache, bounded by used pairs
	}
	return ps
}

// Candidates exposes the cached minimal candidates for src->dst switches
// (the fabric's fluid latency model and domain classifier reuse this
// cache instead of growing their own dense rows).
func (e *Engine) Candidates(a, b topology.SwitchID) []topology.Path {
	return e.candidates(a, b)
}

// remove drops active[i] (swap with last; deterministic given the call
// sequence) and returns the record to the free list.
func (e *Engine) remove(i int) {
	f := e.active[i]
	for si, s := range f.segs {
		e.segFlows[s]--
		// Membership swap-removal with back-pointer repair.
		row := e.memb[s]
		k := f.segPos[si]
		last := len(row) - 1
		row[k] = row[last]
		row[last] = membEntry{}
		e.memb[s] = row[:last]
		if int(k) < last {
			moved := row[k]
			moved.f.segPos[moved.si] = k
		}
		e.markDirty(s)
	}
	e.activeTo[f.dst]--
	last := len(e.active) - 1
	e.active[i] = e.active[last]
	e.active[last] = nil
	e.active = e.active[:last]
	f.arg = nil
	e.freeList = append(e.freeList, f)
}
