package flow

import (
	"sort"

	"repro/internal/sim"
)

// completionEps absorbs float rounding when deciding a flow has drained:
// the per-step deltas are exact to ~1e-5 bytes at simulation magnitudes,
// so a hundredth of a byte is safely past any residue.
const completionEps = 0.01

// solve brings every active flow's rate up to date with the dirty set
// changes: a full progressive fill when no valid solution exists yet (or
// forceFull reference mode), otherwise an incremental re-fill of the
// affected component only. Both paths run the same fill kernel over a
// canonically id-ordered working set, so their results are bit-identical.
//
//simlint:hotpath
func (e *Engine) solve() {
	e.solves++
	e.dirty = false
	if e.forceFull || !e.solved {
		e.solveFull()
	} else {
		e.solveIncremental()
	}
	e.dirtySegs = e.dirtySegs[:0]
	e.dirtyGen++
}

// solveFull re-solves from scratch: clear the previous solution and fill
// over the entire active set.
//
//simlint:hotpath
func (e *Engine) solveFull() {
	for _, s := range e.rated {
		e.segRate[s] = 0
		e.inRated[s] = false
		e.markChanged(s)
	}
	e.rated = e.rated[:0]
	e.order = append(e.order[:0], e.active...)
	e.sortOrder()
	e.fill()
	e.solved = true
}

// solveIncremental expands the affected component — segments reachable
// from the dirty seeds through shared-flow adjacency — and re-fills only
// its flows. Flows outside the component share no segment with anything
// that changed (transitively), so the max–min allocation of their own
// component, and hence their rates, are provably identical to a full
// re-solve; the previous solution stands for them.
//
//simlint:hotpath
func (e *Engine) solveIncremental() {
	if len(e.dirtySegs) == 0 {
		return
	}
	e.stamp++
	e.comp = e.comp[:0]
	for _, s := range e.dirtySegs {
		if e.segStamp[s] != e.stamp {
			e.segStamp[s] = e.stamp
			e.comp = append(e.comp, s)
		}
	}
	e.visit++
	e.order = e.order[:0]
	for qi := 0; qi < len(e.comp); qi++ {
		for _, me := range e.memb[e.comp[qi]] {
			f := me.f
			if f.mark == e.visit {
				continue
			}
			f.mark = e.visit
			e.order = append(e.order, f)
			for _, s2 := range f.segs {
				if e.segStamp[s2] != e.stamp {
					e.segStamp[s2] = e.stamp
					e.comp = append(e.comp, s2)
				}
			}
		}
	}
	// Reset the component's segment rates (orphaned seeds — segments a
	// finished flow vacated — drop to zero here); fill re-exports the
	// component flows' contributions.
	for _, s := range e.comp {
		e.segRate[s] = 0
		e.markChanged(s)
	}
	e.sortOrder()
	e.fill()
}

// sortOrder puts the fill working set into canonical flow-id order
// through the persistent sorter (no per-solve boxing).
//
//simlint:hotpath
func (e *Engine) sortOrder() {
	e.sorter.f = e.order
	sort.Sort(&e.sorter)
	e.sorter.f = nil
}

// fill assigns every flow in e.order its max–min fair rate by progressive
// filling: repeatedly find the segment with the smallest fair share
// (residual capacity / unfixed flows), fix that share for its flows, and
// subtract them from every segment they cross. All iteration is in slice
// order (over the id-sorted working set) on engine-owned scratch, so the
// result is deterministic — and independent of which superset of
// components the working set spans, which is what makes the incremental
// solve exact. Callers must have zeroed segRate over every segment the
// working set touches.
//
//simlint:hotpath
func (e *Engine) fill() {
	if len(e.order) == 0 {
		return
	}

	// Stamp the touched segment set and count flows per segment.
	e.stamp++
	e.touched = e.touched[:0]
	for _, f := range e.order {
		f.rate = -1
		for _, s := range f.segs {
			if e.segStamp[s] != e.stamp {
				e.segStamp[s] = e.stamp
				e.segSlot[s] = int32(len(e.touched))
				e.touched = append(e.touched, s)
			}
		}
	}
	ns := len(e.touched)
	e.resid = grow(e.resid, ns)
	e.unfixed = grow32(e.unfixed, ns)
	e.csrStart = grow32(e.csrStart, ns+1)
	e.csrPos = grow32(e.csrPos, ns)
	for i, s := range e.touched {
		c := e.segCap[s]
		if e.ext != nil {
			c -= e.ext[s]
			if c < 0 {
				c = 0
			}
		}
		e.resid[i] = c
		e.unfixed[i] = 0
	}
	for _, f := range e.order {
		for _, s := range f.segs {
			e.unfixed[e.segSlot[s]]++
		}
	}

	// CSR: group working-set indices by slot so "the flows on segment s"
	// is a contiguous scan.
	e.csrStart[0] = 0
	for i := 0; i < ns; i++ {
		e.csrStart[i+1] = e.csrStart[i] + e.unfixed[i]
		e.csrPos[i] = e.csrStart[i]
	}
	total := int(e.csrStart[ns])
	e.csrFlow = grow32(e.csrFlow, total)
	for fi, f := range e.order {
		for _, s := range f.segs {
			sl := e.segSlot[s]
			e.csrFlow[e.csrPos[sl]] = int32(fi)
			e.csrPos[sl]++
		}
	}

	// Progressive filling.
	remaining := len(e.order)
	for remaining > 0 {
		bottleneck, share := -1, 0.0
		for i := 0; i < ns; i++ {
			if e.unfixed[i] <= 0 {
				continue
			}
			s := e.resid[i] / float64(e.unfixed[i])
			if bottleneck < 0 || s < share {
				bottleneck, share = i, s
			}
		}
		if bottleneck < 0 {
			break // defensive: every flow crosses its edge segments
		}
		if share < 0 {
			share = 0
		}
		for ci := e.csrStart[bottleneck]; ci < e.csrStart[bottleneck+1]; ci++ {
			f := e.order[e.csrFlow[ci]]
			if f.rate >= 0 {
				continue
			}
			f.rate = share
			remaining--
			for _, s := range f.segs {
				sl := e.segSlot[s]
				e.resid[sl] -= share
				e.unfixed[sl]--
			}
		}
	}

	// Export per-segment allocated rates for background-load publication
	// and the epoch exchange.
	for _, f := range e.order {
		for _, s := range f.segs {
			if !e.inRated[s] {
				e.inRated[s] = true
				e.rated = append(e.rated, s)
			}
			e.segRate[s] += f.rate
			e.markChanged(s)
		}
	}
}

// completionTime projects when f drains at its current rate.
//
//simlint:hotpath
func (e *Engine) completionTime(f *Flow) sim.Time {
	if f.rate <= 0 {
		return sim.Forever
	}
	ps := f.remaining * 8e12 / f.rate
	if ps >= float64(sim.Forever)-float64(e.now) {
		return sim.Forever
	}
	t := e.now + sim.Time(ps)
	if float64(t-e.now) < ps {
		t++ // ceil: never project completion before the last byte lands
	}
	return t
}

// NextWake returns the earliest time Advance has work to do: the nearest
// projected completion or pending callback, or — with a set change
// pending — the present, requesting an immediate tick so the solve folds
// in exactly once at the next Advance rather than once per Start.
// Forever when idle.
//
//simlint:hotpath
func (e *Engine) NextWake() sim.Time {
	if e.dirty {
		return e.now
	}
	next := sim.Forever
	for _, f := range e.active {
		if t := e.completionTime(f); t < next {
			next = t
		}
	}
	if len(e.cbs) > 0 && e.cbs[0].at < next {
		next = e.cbs[0].at
	}
	return next
}

// Advance integrates fluid progress to time to, firing any completions
// and callbacks that fall in (now, to]. Completion hooks run inline in
// (time, sequence) order; they may Start new flows (the solver re-runs
// lazily). Advance never runs backwards: to earlier than now is a no-op.
//
// A pending set change (dirty) folds in at the engine's current clock:
// callers that care about exact start times (the fabric does) Advance to
// their present before Start/SetExtRate, so the new solution takes over
// at its event time instead of smearing back to the last tick. On a
// quiet call with nothing due the early-out returns without scanning or
// solving.
//
//simlint:hotpath
func (e *Engine) Advance(to sim.Time) {
	if !e.dirty && to <= e.now && (len(e.cbs) == 0 || e.cbs[0].at > e.now) {
		return
	}
	for {
		if e.dirty {
			e.solve()
		}
		// Next rate-change boundary: the earliest projected completion.
		step := to
		for _, f := range e.active {
			if t := e.completionTime(f); t < step {
				step = t
			}
		}
		if len(e.cbs) > 0 && e.cbs[0].at < step {
			step = e.cbs[0].at
		}
		if step > e.now {
			dt := float64(step-e.now) / 8e12 // ps -> bytes/bit-rate factor
			for _, f := range e.active {
				d := f.rate * dt
				if d > f.remaining {
					d = f.remaining
				}
				f.remaining -= d
				e.progressed += d
			}
			e.now = step
		}
		// The target reached: fold in the pending set change at its event
		// time (completion-triggered dirt re-solves on the next lap).
		if e.dirty && e.now >= to {
			e.solve()
		}
		// Retire drained flows (scan backwards so swap-removal keeps
		// unvisited entries stable).
		for i := len(e.active) - 1; i >= 0; i-- {
			f := e.active[i]
			if f.remaining > completionEps {
				continue
			}
			// Credit the sub-epsilon residue so delivered-byte accounting
			// sums exactly to the payload.
			e.progressed += f.remaining
			f.remaining = 0
			e.pushCB(pendingCB{at: e.now + f.extraLat, seq: e.seq(), arg: f.arg})
			e.pushCB(pendingCB{at: e.now + f.extraLat + f.ackLat, seq: e.seq(), ack: true, arg: f.arg})
			e.remove(i)
		}
		// Fire due callbacks.
		for len(e.cbs) > 0 && e.cbs[0].at <= e.now {
			cb := e.popCB()
			if cb.ack {
				e.Hooks.FlowAcked(cb.at, cb.arg)
			} else {
				e.Hooks.FlowDelivered(cb.at, cb.arg)
			}
		}
		if e.now >= to && !e.dirty {
			return
		}
	}
}

func (e *Engine) seq() int64 {
	e.nextSeq++
	return e.nextSeq
}

// pushCB / popCB maintain the callback min-heap ordered by (at, seq).
// Hand-rolled sift on an engine-owned slice: container/heap would box
// every element through interface{}.
//
//simlint:hotpath
func (e *Engine) pushCB(cb pendingCB) {
	e.cbs = append(e.cbs, cb)
	i := len(e.cbs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !cbLess(e.cbs[i], e.cbs[p]) {
			break
		}
		e.cbs[i], e.cbs[p] = e.cbs[p], e.cbs[i]
		i = p
	}
}

//simlint:hotpath
func (e *Engine) popCB() pendingCB {
	top := e.cbs[0]
	last := len(e.cbs) - 1
	e.cbs[0] = e.cbs[last]
	e.cbs[last] = pendingCB{}
	e.cbs = e.cbs[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && cbLess(e.cbs[l], e.cbs[small]) {
			small = l
		}
		if r < n && cbLess(e.cbs[r], e.cbs[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.cbs[i], e.cbs[small] = e.cbs[small], e.cbs[i]
		i = small
	}
	return top
}

func cbLess(a, b pendingCB) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// grow returns s resized to n entries, reusing capacity.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n, n*2)
	}
	return s[:n]
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n*2)
	}
	return s[:n]
}
