package flow

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func testTopo(t *testing.T) topology.Topology {
	t.Helper()
	return topology.MustBuild(topology.Config{
		Groups: 3, SwitchesPerGroup: 4, NodesPerSwitch: 2, GlobalPerPair: 1,
	})
}

const (
	tEdge   = 100e9
	tLocal  = 200e9
	tGlobal = 200e9
)

func newTestEngine(t *testing.T) *Engine {
	return NewEngine(testTopo(t), Caps{EdgeBits: tEdge, LocalBits: tLocal, GlobalBits: tGlobal})
}

// recorder collects completion callbacks.
type recorder struct {
	delivered []cbRec
	acked     []cbRec
}

type cbRec struct {
	at  sim.Time
	arg any
}

func (r *recorder) FlowDelivered(at sim.Time, arg any) {
	r.delivered = append(r.delivered, cbRec{at, arg})
}
func (r *recorder) FlowAcked(at sim.Time, arg any) {
	r.acked = append(r.acked, cbRec{at, arg})
}

func TestSingleFlowEdgeLimited(t *testing.T) {
	e := newTestEngine(t)
	rec := &recorder{}
	e.Hooks = rec
	const bytes = 1 << 20
	lat := 2 * sim.Microsecond
	e.Start(0, 10, bytes, FlowOpts{ExtraLatency: lat, AckLatency: sim.Microsecond, Arg: "f"})
	e.Resolve()
	if got := e.active[0].rate; math.Abs(got-tEdge) > 1 {
		t.Fatalf("single flow rate = %g, want edge cap %g", got, tEdge)
	}
	want := sim.Time(float64(bytes)*8e12/tEdge) + lat
	e.Advance(want + sim.Millisecond)
	if len(rec.delivered) != 1 || rec.delivered[0].arg != "f" {
		t.Fatalf("delivered = %+v, want 1 callback", rec.delivered)
	}
	got := rec.delivered[0].at
	if got < want || got > want+2 {
		t.Fatalf("delivered at %v, want ~%v", got, want)
	}
	if ack := rec.acked[0].at; ack != got+sim.Microsecond {
		t.Fatalf("acked at %v, want %v", ack, got+sim.Microsecond)
	}
	if e.Active() != 0 || e.ActiveTo(10) != 0 {
		t.Fatalf("flow not retired: active=%d activeTo=%d", e.Active(), e.ActiveTo(10))
	}
	if got := e.TakeProgress(); got != bytes {
		t.Fatalf("TakeProgress = %d, want %d", got, bytes)
	}
}

func TestFairShareSameDestination(t *testing.T) {
	e := newTestEngine(t)
	e.Hooks = &recorder{}
	// Two flows into node 10 share its down edge; each gets half.
	e.Start(0, 10, 1<<20, FlowOpts{})
	e.Start(2, 10, 1<<20, FlowOpts{})
	e.Resolve()
	for i, f := range e.active {
		if math.Abs(f.rate-tEdge/2) > 1 {
			t.Fatalf("flow %d rate = %g, want %g", i, f.rate, tEdge/2)
		}
	}
	if e.ActiveTo(10) != 2 {
		t.Fatalf("ActiveTo = %d, want 2", e.ActiveTo(10))
	}
}

// refSolve is an independent progressive-filling reference using maps;
// the engine must agree with it on every flow's rate.
func refSolve(flows []*Flow, segCap []float64) map[int64]float64 {
	resid := map[int32]float64{}
	count := map[int32]int{}
	for _, f := range flows {
		for _, s := range f.segs {
			if _, ok := resid[s]; !ok {
				resid[s] = segCap[s]
			}
			count[s]++
		}
	}
	rate := map[int64]float64{}
	for len(rate) < len(flows) {
		bottleneck, share := int32(-1), math.Inf(1)
		for s, c := range count {
			if c <= 0 {
				continue
			}
			if sh := resid[s] / float64(c); sh < share ||
				(sh == share && (bottleneck < 0 || s < bottleneck)) {
				bottleneck, share = s, sh
			}
		}
		if bottleneck < 0 {
			break
		}
		for _, f := range flows {
			if _, done := rate[f.id]; done {
				continue
			}
			on := false
			for _, s := range f.segs {
				if s == bottleneck {
					on = true
				}
			}
			if !on {
				continue
			}
			rate[f.id] = share
			for _, s := range f.segs {
				resid[s] -= share
				count[s]--
			}
		}
	}
	return rate
}

func TestSolverMatchesReference(t *testing.T) {
	e := newTestEngine(t)
	e.Hooks = &recorder{}
	nodes := e.topo.Nodes()
	// A deterministic strided mix: local, global, and incast-ish pairs.
	for i := 0; i < 40; i++ {
		src := topology.NodeID((i * 5) % nodes)
		dst := topology.NodeID((i*11 + 7) % nodes)
		if src == dst {
			dst = (dst + 1) % topology.NodeID(nodes)
		}
		e.Start(src, dst, 1<<20, FlowOpts{})
	}
	e.Resolve()
	want := refSolve(e.active, e.segCap)
	for _, f := range e.active {
		w := want[f.id]
		if math.Abs(f.rate-w) > 1e-3*w+1 {
			t.Fatalf("flow %d (%d->%d): rate %g, reference %g", f.id, f.src, f.dst, f.rate, w)
		}
	}
	// Feasibility: allocated rate never exceeds any segment capacity.
	for s, r := range e.segRate {
		if r > e.segCap[s]*(1+1e-9)+1 {
			t.Fatalf("segment %d oversubscribed: %g > %g", s, r, e.segCap[s])
		}
	}
}

func TestSegmentRateExport(t *testing.T) {
	e := newTestEngine(t)
	e.Hooks = &recorder{}
	e.Start(0, 10, 1<<20, FlowOpts{})
	e.Resolve()
	rate, cap := e.EdgeUpRate(0)
	if cap != tEdge || math.Abs(rate-tEdge) > 1 {
		t.Fatalf("EdgeUpRate(0) = %g/%g, want %g/%g", rate, cap, tEdge, tEdge)
	}
	rate, _ = e.EdgeDownRate(10)
	if math.Abs(rate-tEdge) > 1 {
		t.Fatalf("EdgeDownRate(10) = %g, want %g", rate, tEdge)
	}
	// Rates clear once the flow drains.
	e.Advance(sim.Second)
	e.Resolve()
	if rate, _ := e.EdgeUpRate(0); rate != 0 {
		t.Fatalf("EdgeUpRate after drain = %g, want 0", rate)
	}
}

func TestCompletionOrdering(t *testing.T) {
	e := newTestEngine(t)
	rec := &recorder{}
	e.Hooks = rec
	// Same path, different sizes: the smaller flow must complete first
	// even though it was started second.
	e.Start(0, 10, 8<<20, FlowOpts{Arg: "big"})
	e.Start(0, 10, 1<<20, FlowOpts{Arg: "small"})
	e.Advance(sim.Second)
	if len(rec.delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(rec.delivered))
	}
	if rec.delivered[0].arg != "small" || rec.delivered[1].arg != "big" {
		t.Fatalf("order = %v,%v want small,big", rec.delivered[0].arg, rec.delivered[1].arg)
	}
	if rec.delivered[0].at >= rec.delivered[1].at {
		t.Fatalf("times not increasing: %v >= %v", rec.delivered[0].at, rec.delivered[1].at)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []cbRec {
		e := newTestEngine(t)
		rec := &recorder{}
		e.Hooks = rec
		nodes := e.topo.Nodes()
		for i := 0; i < 24; i++ {
			src := topology.NodeID((i * 7) % nodes)
			dst := topology.NodeID((i*13 + 3) % nodes)
			if src == dst {
				dst = (dst + 1) % topology.NodeID(nodes)
			}
			e.Start(src, dst, int64(1<<16)*int64(i+1), FlowOpts{ExtraLatency: sim.Microsecond, Arg: i})
			e.Advance(e.Now() + 10*sim.Microsecond)
		}
		e.Advance(sim.Second)
		return rec.delivered
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 24 {
		t.Fatalf("runs delivered %d vs %d, want 24", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	e := newTestEngine(t)
	e.Hooks = &recorder{}
	nodes := e.topo.Nodes()
	// Warm up: grow scratch, free lists, path cache, callback heap.
	warm := func(rounds int) {
		for i := 0; i < rounds; i++ {
			src := topology.NodeID((i * 7) % nodes)
			dst := topology.NodeID((i*13 + 3) % nodes)
			if src == dst {
				dst = (dst + 1) % topology.NodeID(nodes)
			}
			e.Start(src, dst, 1<<18, FlowOpts{})
			e.Advance(e.Now() + 50*sim.Microsecond)
		}
		e.Advance(e.Now() + sim.Millisecond)
		e.TakeProgress()
	}
	warm(64)
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		warm(8)
		i++
	})
	if allocs > 0 {
		t.Fatalf("steady-state epochs allocate: %.1f allocs/round", allocs)
	}
}

func TestPathChoiceSpreads(t *testing.T) {
	// A 2x2 HyperX has two minimal paths between diagonal switches (one
	// per dimension order); repeated flows across the diagonal must
	// spread over both rather than pile onto one.
	topo := topology.MustBuild(topology.HyperXConfig{Dims: []int{2, 2}, NodesPerSwitch: 2})
	e := NewEngine(topo, Caps{EdgeBits: tEdge, LocalBits: tLocal, GlobalBits: tGlobal})
	e.Hooks = &recorder{}
	src := topology.NodeID(0) // on switch (0,0)
	for i := 0; i < 8; i++ {
		e.Start(src, topology.NodeID(e.topo.Nodes()-1-i%2), 1<<20, FlowOpts{})
	}
	e.Resolve()
	// Count distinct fabric first-hop segments in use from src's switch.
	sw := e.topo.SwitchOf(src)
	used := 0
	for i := 0; i < e.topo.NeighborCount(sw); i++ {
		if e.segFlows[e.swBase[sw]+int32(i)] > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("all flows took one first hop; want spreading (used=%d)", used)
	}
}
