package rosetta

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTileOfGeometry(t *testing.T) {
	// Every port maps to a tile; each tile handles exactly two ports.
	count := make(map[Tile]int)
	for p := 0; p < Ports; p++ {
		count[TileOf(p)]++
	}
	if len(count) != Tiles {
		t.Fatalf("%d tiles used, want %d", len(count), Tiles)
	}
	for tile, n := range count {
		if n != PortsPerTile {
			t.Errorf("tile %+v handles %d ports", tile, n)
		}
		if tile.Row < 0 || tile.Row >= TileRows || tile.Col < 0 || tile.Col >= TileCols {
			t.Errorf("tile %+v out of matrix", tile)
		}
	}
}

func TestPortsOfRoundTrip(t *testing.T) {
	for p := 0; p < Ports; p++ {
		tile := TileOf(p)
		a, b := tile.PortsOf()
		if p != a && p != b {
			t.Errorf("port %d not in PortsOf(%+v) = %d,%d", p, tile, a, b)
		}
	}
}

func TestTileIndexUnique(t *testing.T) {
	seen := make(map[int]bool)
	for r := 0; r < TileRows; r++ {
		for c := 0; c < TileCols; c++ {
			i := (Tile{r, c}).Index()
			if i < 0 || i >= Tiles || seen[i] {
				t.Fatalf("bad index %d for tile %d,%d", i, r, c)
			}
			seen[i] = true
		}
	}
}

func TestTileOfPanics(t *testing.T) {
	for _, p := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TileOf(%d) did not panic", p)
				}
			}()
			TileOf(p)
		}()
	}
}

func TestInternalHopsBounds(t *testing.T) {
	f := func(a, b uint8) bool {
		in, out := int(a)%Ports, int(b)%Ports
		h := InternalHops(in, out)
		return h >= 0 && h <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInternalHopsCases(t *testing.T) {
	// Same tile: ports 0 and 1.
	if h := InternalHops(0, 1); h != 0 {
		t.Errorf("same tile hops = %d", h)
	}
	// Same row, different tile: 0 and 2.
	if h := InternalHops(0, 2); h != 1 {
		t.Errorf("same row hops = %d", h)
	}
	// Fig. 1's worked example: port 19 to port 56 goes row bus then
	// column crossbar: two hops.
	if h := InternalHops(19, 56); h != 2 {
		t.Errorf("port 19->56 hops = %d, want 2", h)
	}
	// Symmetric.
	if InternalHops(19, 56) != InternalHops(56, 19) {
		t.Error("hops not symmetric")
	}
}

func TestInternalHopsSameColumn(t *testing.T) {
	// Ports 0 (tile 0,0) and 16 (tile 1,0) share a column: one hop.
	if TileOf(0).Col != TileOf(16).Col {
		t.Fatalf("test assumption broken: %+v %+v", TileOf(0), TileOf(16))
	}
	if h := InternalHops(0, 16); h != 1 {
		t.Errorf("same column hops = %d", h)
	}
}

func TestTraversalLatencyDistribution(t *testing.T) {
	// Pipeline calibration: the crossbar traversal itself averages ~304 ns
	// so the *measured* Fig. 2 quantity (traversal + extra link's FEC and
	// propagation, ~46 ns) lands at ~350 ns; all samples stay inside the
	// truncation window.
	m := NewLatencyModel(sim.NewRNG(7))
	rng := sim.NewRNG(8)
	var sum float64
	const n = 50000
	lo, hi := 1e18, 0.0
	for i := 0; i < n; i++ {
		in, out := rng.Intn(Ports), rng.Intn(Ports)
		l := m.Traversal(in, out).Nanoseconds()
		sum += l
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	mean := sum / n
	if mean < 294 || mean > 314 {
		t.Errorf("mean traversal = %.1f ns, want ~304", mean)
	}
	if lo < 270 || hi > 342 {
		t.Errorf("traversal range [%.0f, %.0f] outside [270, 342]", lo, hi)
	}
	// The measured Fig. 2 quantity: traversal + FEC (30) + copper (13).
	if meas := mean + 30 + 13; meas < 337 || meas > 357 {
		t.Errorf("measured 2-hop minus 1-hop = %.1f ns, want ~350", meas)
	}
}

func TestMeanTraversalDeterministic(t *testing.T) {
	if MeanTraversal(0, 1) != 286*sim.Nanosecond {
		t.Errorf("same-tile mean = %v", MeanTraversal(0, 1))
	}
	if MeanTraversal(19, 56) != 306*sim.Nanosecond {
		t.Errorf("two-hop mean = %v", MeanTraversal(19, 56))
	}
}

func TestCrossbarNames(t *testing.T) {
	want := map[Crossbar]string{
		RequestXbar: "request", GrantXbar: "grant", DataXbar: "data",
		CreditXbar: "credit", AckXbar: "ack", Crossbar(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if NumCrossbars != 5 {
		t.Errorf("NumCrossbars = %d", NumCrossbars)
	}
}
