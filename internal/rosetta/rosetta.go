// Package rosetta models the internal microarchitecture of the Rosetta
// switch ASIC (§II-A, Fig. 1 of the paper): 64 ports at 200 Gb/s handled by
// 32 tiles arranged in four rows of eight, with two ports per tile. Tiles
// on a row share 16 per-port row buses; tiles on a column are joined by
// dedicated per-tile 16:8 column crossbars, so any input port reaches any
// output port in at most two internal hops with only a 16-to-8 arbitration.
//
// The package provides the port-to-tile geometry, the internal path/hop
// computation, the five function-specific crossbars, and the traversal
// latency model calibrated against Fig. 2 (mean and median 350 ns, with
// essentially the whole distribution inside [300, 400] ns).
package rosetta

import (
	"repro/internal/sim"
)

// Geometry of the tile matrix.
const (
	Ports        = 64
	TileRows     = 4
	TileCols     = 8
	Tiles        = TileRows * TileCols
	PortsPerTile = 2
	RowBuses     = 16 // one per port on the row (8 tiles x 2 ports)
	XbarInputs   = 16 // the 16:8 column crossbar
	XbarOutputs  = 8
)

// Tile identifies one of the 32 tile blocks.
type Tile struct {
	Row, Col int
}

// Index returns the tile's linear index in [0, 32).
func (t Tile) Index() int { return t.Row*TileCols + t.Col }

// TileOf returns the tile that handles the given port. Ports are assigned
// two per tile, row-major as in Fig. 1: ports 2c and 2c+1 of row r live on
// tile (r, c); consecutive port pairs advance along a row of tiles and
// rows of tiles cover port ranges of 16.
func TileOf(port int) Tile {
	if port < 0 || port >= Ports {
		panic("rosetta: port out of range")
	}
	return Tile{Row: port / (TileCols * PortsPerTile), Col: (port / PortsPerTile) % TileCols}
}

// PortsOf returns the two ports a tile handles.
func (t Tile) PortsOf() (int, int) {
	base := t.Row*TileCols*PortsPerTile + t.Col*PortsPerTile
	return base, base + 1
}

// InternalHops returns how many internal fabric hops a packet entering on
// port in and leaving on port out makes inside the switch: 0 when the two
// ports share a tile, 1 when one row-bus or one column-crossbar traversal
// suffices (same tile row or same tile column), and 2 otherwise (row bus to
// the destination column, then the 16:8 crossbar down the column) — the
// "two hops maximum" routing of §II-A.
func InternalHops(in, out int) int {
	ti, to := TileOf(in), TileOf(out)
	switch {
	case ti == to:
		return 0
	case ti.Row == to.Row || ti.Col == to.Col:
		return 1
	default:
		return 2
	}
}

// Crossbar identifies the five physically separate function-specific
// crossbars of §II-A. Keeping them separate is what prevents large data
// transfers from slowing down requests/grants — the property the
// fabric-level QoS tests rely on.
type Crossbar int

const (
	// RequestXbar carries requests-to-transmit from input tiles to the
	// tile owning the output port (VOQ architecture, avoids HOL blocking).
	RequestXbar Crossbar = iota
	// GrantXbar carries grants back from the output tile.
	GrantXbar
	// DataXbar is the wide (48 B) crossbar carrying payload.
	DataXbar
	// CreditXbar distributes request-queue credit/occupancy estimates used
	// by adaptive routing.
	CreditXbar
	// AckXbar carries end-to-end acknowledgements used by the congestion
	// control protocol.
	AckXbar
	numXbars
)

func (c Crossbar) String() string {
	switch c {
	case RequestXbar:
		return "request"
	case GrantXbar:
		return "grant"
	case DataXbar:
		return "data"
	case CreditXbar:
		return "credit"
	case AckXbar:
		return "ack"
	}
	return "unknown"
}

// NumCrossbars is the number of function-specific crossbars.
const NumCrossbars = int(numXbars)

// DataXbarWidth is the width of the data crossbar in bytes (§II-A).
const DataXbarWidth = 48

// Latency model, calibrated against Fig. 2. The paper computes switch
// latency as the difference between 2-hop and 1-hop path latencies, which
// besides the crossbar pipeline includes the extra link's FEC (~30 ns) and
// cable propagation (~13 ns); the constants below put that measured
// difference at mean/median ~350 ns with the distribution inside
// [300, 400] ns, exactly as Fig. 2 shows. The fixed pipeline covers
// SerDes, MAC/PCS, Ethernet lookup, VOQ request/grant and crossbar
// traversal; a small per-internal-hop increment plus arbitration jitter
// provides the spread.
const (
	basePipeline  = 266 * sim.Nanosecond
	perHopLatency = 10 * sim.Nanosecond
	jitterStddev  = 12 * sim.Nanosecond
	latencyFloor  = 270 * sim.Nanosecond
	latencyCeil   = 342 * sim.Nanosecond
)

// LatencyModel samples switch traversal latencies. One instance per switch,
// each with its own RNG stream, keeps experiments deterministic.
type LatencyModel struct {
	rng *sim.RNG
}

// NewLatencyModel returns a traversal-latency sampler.
func NewLatencyModel(rng *sim.RNG) *LatencyModel {
	return &LatencyModel{rng: rng}
}

// Traversal returns a sampled latency for a packet entering on port in and
// leaving on port out. Mean over (in,out) pairs is ~350 ns.
func (m *LatencyModel) Traversal(in, out int) sim.Time {
	mean := basePipeline + sim.Time(InternalHops(in, out))*perHopLatency
	// A packet crossing 0..2 internal hops has mean 320..340; add the
	// arbitration component to centre the distribution at ~350 ns.
	mean += 20 * sim.Nanosecond
	return m.rng.Normal(mean, jitterStddev, latencyFloor, latencyCeil)
}

// MeanTraversal returns the deterministic mean latency (no jitter); used
// where the model should be noise-free (unit calibration).
func MeanTraversal(in, out int) sim.Time {
	return basePipeline + sim.Time(InternalHops(in, out))*perHopLatency + 20*sim.Nanosecond
}

// Buffering parameters of the fabric model. Rosetta's buffering is an
// input-buffered VOQ design; the absolute sizes below are calibrated so
// that incast without endpoint congestion control saturates them quickly
// (producing the Aries-style congestion trees) while normal traffic never
// comes close.
const (
	// InputBufferBytes is the per-input-port packet buffer.
	InputBufferBytes = 256 * 1024
	// AriesInputBufferBytes: Aries routers have much shallower buffers.
	AriesInputBufferBytes = 64 * 1024
)
