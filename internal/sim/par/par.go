// Package par implements the domain-sharded conservative parallel
// driver over sim.Engine. A fabric is partitioned into shards, each
// owning one engine (with its timing wheel and free-lists intact) and a
// disjoint slice of the simulated state. Shards advance in lock-step
// epochs bounded by the minimum cross-shard event latency — the
// conservative lookahead: every event one shard schedules on another
// lands at least one lookahead window in the future, so a shard can run
// a whole window without observing its peers.
//
// Cross-shard events travel through preallocated per-pair mailboxes.
// During an epoch each shard appends its outbound events to the mailbox
// of the destination shard; at the epoch barrier every shard drains the
// mailboxes addressed to it, merging the inbound events in the canonical
// (At, source shard, post index) order before scheduling them on its own
// engine. The merge order — not the goroutine interleaving — decides the
// engine's tie-breaking sequence numbers, so a run is byte-identical for
// any worker count, including one.
//
// The coordinator also owns an optional control engine: the
// single-threaded engine the harness schedules workload and measurement
// events on. It advances sequentially after each epoch's barriers, so
// all control-side code observes a quiesced fabric.
package par

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Msg is one cross-shard event in flight through a mailbox: the absolute
// timestamp, the closure-free handler, and the engine's two payload
// words. Pointer-shaped data boxes into the interface without
// allocating, and the slices carrying Msgs are reused epoch over epoch,
// so the steady-state exchange path allocates nothing.
type Msg struct {
	At   sim.Time
	H    sim.Handler
	Arg  int64
	Data any
}

// Shard is one domain of the partitioned simulation: its engine plus the
// outbound mailboxes towards every other shard. All mutation of a
// shard's engine and outboxes happens either from the shard's own epoch
// phase or from the coordinator's sequential sections; the epoch
// barriers order the two.
type Shard struct {
	// ID is the shard's dense index; the canonical merge order of
	// simultaneous cross-shard events is (At, source ID, post index).
	ID int
	// Eng is the shard's own engine: private timing wheel, private
	// Event free-list, private (At, seq) tie-breaking.
	Eng *sim.Engine

	// fence is the exclusive end of the current epoch: cross-shard posts
	// below it would have to land in the past of a peer that already ran
	// that window, so Post panics on them (a lookahead violation is a
	// model bug, never a recoverable condition).
	fence sim.Time
	// out[dst] buffers this shard's posts towards shard dst within the
	// current epoch, in post order. Drained (and truncated, capacity
	// kept) by dst at the barrier.
	out [][]Msg
	// inbox is the reusable merge buffer for draining.
	inbox msgBuf
}

// NewShard returns a shard with mailboxes towards `shards` peers.
func NewShard(id int, eng *sim.Engine, shards int) *Shard {
	return &Shard{ID: id, Eng: eng, out: make([][]Msg, shards)}
}

// Post schedules (h, arg, data) at absolute time at on shard dst.
// Same-shard posts go straight to the engine; cross-shard posts append
// to the per-pair mailbox and are merged into dst's engine at the next
// epoch barrier. at must be at or beyond the current epoch fence — the
// conservative-lookahead contract.
//simlint:hotpath
func (s *Shard) Post(dst *Shard, at sim.Time, h sim.Handler, arg int64, data any) {
	if dst == s {
		s.Eng.Schedule(at, h, arg, data)
		return
	}
	if at < s.fence {
		panic("par: cross-shard post below the epoch fence (lookahead violated)")
	}
	s.out[dst.ID] = append(s.out[dst.ID], Msg{At: at, H: h, Arg: arg, Data: data})
}

// drain merges every peer's mailbox addressed to this shard into the
// shard's engine. Appending in source-ID order and then stable-sorting
// by At alone yields the canonical (At, source, post index) order; the
// engine's monotonic sequence numbers then pin the tie-breaks
// identically for every worker count. Drained mailboxes are zeroed (the
// Data words must not pin dead objects) and truncated with their
// capacity kept.
//simlint:hotpath
func (s *Shard) drain(all []*Shard) {
	buf := s.inbox.m[:0]
	for _, src := range all {
		in := src.out[s.ID]
		if len(in) == 0 {
			continue
		}
		buf = append(buf, in...) //simlint:allocok -- buf is the shard's reusable inbox; growth is amortized and capacity is kept
		for i := range in {
			in[i] = Msg{}
		}
		src.out[s.ID] = in[:0]
	}
	if len(buf) > 1 {
		s.inbox.m = buf
		sort.Stable(&s.inbox)
	}
	for i := range buf {
		m := &buf[i]
		s.Eng.Schedule(m.At, m.H, m.Arg, m.Data)
		*m = Msg{}
	}
	s.inbox.m = buf[:0]
}

// pendingMin folds the earliest timestamp waiting in this shard's
// outboxes into (best, ok) — posts made from sequential (control-side)
// code sit in mailboxes until the next barrier and must count as pending
// work, or a drive call could quiesce with events still queued.
func (s *Shard) pendingMin(best sim.Time, ok bool) (sim.Time, bool) {
	for _, box := range s.out {
		for i := range box {
			if at := box[i].At; !ok || at < best {
				best, ok = at, true
			}
		}
	}
	return best, ok
}

// msgBuf adapts a Msg slice to sort.Interface through a persistent
// struct, so sorting boxes no slice header per epoch.
type msgBuf struct{ m []Msg }

func (b *msgBuf) Len() int           { return len(b.m) }
func (b *msgBuf) Less(i, j int) bool { return b.m[i].At < b.m[j].At }
func (b *msgBuf) Swap(i, j int)      { b.m[i], b.m[j] = b.m[j], b.m[i] }

// Hooks receives the coordinator's per-epoch callbacks. An interface —
// rather than func fields — so the call graph from the epoch phases to
// the fabric's implementations stays statically visible (simlint's
// spine analysis links interface dispatch soundly; calls through plain
// func values resolve to nothing).
type Hooks interface {
	// OnShard runs for every shard inside the drain phase, right after
	// the shard drained its mailboxes — shard-parallel per-epoch work
	// (the fabric refreshes its cross-domain load snapshot here).
	OnShard(*Shard)
	// OnEpoch runs sequentially after the run barrier with the epoch's
	// inclusive end, before the control engine advances — the fabric
	// folds per-domain counters and flushes deferred completion
	// callbacks here.
	OnEpoch(limit sim.Time)
}

// Coordinator drives a set of shards (plus an optional control engine)
// in lock-step conservative epochs.
type Coordinator struct {
	Shards []*Shard
	// Control is the sequential engine for workload/measurement events
	// (the harness-facing engine). It advances after each epoch's
	// barriers. May be nil.
	Control *sim.Engine
	// Look is the conservative lookahead: the minimum latency of any
	// cross-shard event. Epochs span at most Look, so no shard can ever
	// receive an event in its own past.
	Look sim.Time

	// Hooks, when set, receives the per-epoch callbacks. May be nil.
	Hooks Hooks

	workers int
	// Worker-pool state: a phase is dispatched by storing its code and
	// bounds (a code, not a closure: the per-epoch phases must not
	// allocate), resetting the claim cursor and handing one token per
	// worker; the WaitGroup is the barrier. Tokens and the WaitGroup
	// give the happens-before edges between one epoch's run-phase writes
	// and the next epoch's drain-phase reads.
	phase  int
	limit  sim.Time
	fence  sim.Time
	cursor atomic.Int64
	start  chan struct{}
	wg     sync.WaitGroup
}

// Phase codes for runPhase.
const (
	phaseDrain = iota // drain mailboxes + Hooks.OnShard
	phaseRun          // set the fence, run the window
)

// New returns a coordinator over the shards. workers is the goroutine
// budget for the parallel phases, clamped to [1, len(shards)]; the
// decomposition is fixed by the caller, so the worker count changes
// wall-clock time and nothing else.
func New(shards []*Shard, control *sim.Engine, look sim.Time, workers int) *Coordinator {
	if look <= 0 {
		panic("par: lookahead must be positive")
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers < 1 {
		workers = 1
	}
	return &Coordinator{Shards: shards, Control: control, Look: look, workers: workers}
}

// Workers reports the parallel-phase goroutine budget.
func (c *Coordinator) Workers() int { return c.workers }

// nextAt returns the earliest pending timestamp across every shard
// engine, the control engine, and any undrained mailbox.
func (c *Coordinator) nextAt() (sim.Time, bool) {
	var best sim.Time
	ok := false
	if c.Control != nil {
		best, ok = c.Control.NextAt()
	}
	for _, s := range c.Shards {
		if at, o := s.Eng.NextAt(); o && (!ok || at < best) {
			best, ok = at, true
		}
		best, ok = s.pendingMin(best, ok)
	}
	return best, ok
}

// step runs one epoch: the drain phase (every shard merges the mailboxes
// addressed to it, then runs Hooks.OnShard), the barrier, the run phase
// (every shard runs its window), the barrier, then the sequential OnEpoch hook
// and the control engine. Draining leads the window so a cross-shard
// event runs in the epoch its timestamp falls into — the previous
// epoch's run barrier orders the posts before this epoch's drains. step
// reports false — running nothing — when no work remains at or before
// deadline.
func (c *Coordinator) step(deadline sim.Time) bool {
	next, ok := c.nextAt()
	if !ok || next > deadline {
		return false
	}
	limit := next + c.Look - 1
	if limit > deadline {
		limit = deadline
	}
	c.limit, c.fence = limit, limit+1
	c.each(phaseDrain)
	c.each(phaseRun)
	if h := c.Hooks; h != nil {
		h.OnEpoch(limit)
	}
	if c.Control != nil {
		c.Control.RunUntil(limit)
	}
	return true
}

// runPhase executes the current phase on one shard. It is the per-epoch
// dispatch loop of the parallel driver — a spine root alongside
// Engine.Step/Schedule (the simlint call-graph analysis anchors the
// mailbox exchange path here).
//simlint:hotpath
func (c *Coordinator) runPhase(s *Shard) {
	switch c.phase {
	case phaseDrain:
		s.drain(c.Shards)
		if h := c.Hooks; h != nil {
			h.OnShard(s)
		}
	case phaseRun:
		s.fence = c.fence
		s.Eng.RunUntil(c.limit)
	}
}

// Run executes epochs until every engine and mailbox drains.
func (c *Coordinator) Run() {
	c.withPool(func() {
		for c.step(sim.Forever) {
		}
	})
}

// RunUntil executes epochs for all events with At <= deadline, then
// advances every clock to the deadline — the sharded equivalent of
// Engine.RunUntil.
func (c *Coordinator) RunUntil(deadline sim.Time) {
	c.withPool(func() {
		for c.step(deadline) {
		}
	})
	for _, s := range c.Shards {
		s.Eng.RunUntil(deadline)
	}
	if c.Control != nil {
		c.Control.RunUntil(deadline)
	}
}

// RunWhile executes epochs while cond() holds and events remain. cond is
// evaluated between epochs — on quiesced, sequential state — so a
// condition flipped by a deferred completion callback stops the run at
// the epoch that flushed it.
func (c *Coordinator) RunWhile(cond func() bool) {
	c.withPool(func() {
		for cond() && c.step(sim.Forever) {
		}
	})
}

// withPool runs f with the worker pool up, tearing it down after. The
// pool lives only inside a drive call: an idle coordinator holds no
// goroutines.
func (c *Coordinator) withPool(f func()) {
	if c.workers <= 1 || c.start != nil {
		f()
		return
	}
	c.start = make(chan struct{}, c.workers)
	for i := 0; i < c.workers; i++ {
		go c.work()
	}
	defer func() {
		close(c.start)
		c.start = nil
	}()
	f()
}

// each runs the given phase over every shard: inline when
// single-threaded, else fanned out over the worker pool with an atomic
// claim cursor. It returns only when every shard finished — the epoch
// barrier.
func (c *Coordinator) each(phase int) {
	c.phase = phase
	if c.start == nil {
		for _, s := range c.Shards {
			c.runPhase(s)
		}
		return
	}
	c.cursor.Store(0)
	c.wg.Add(c.workers)
	for i := 0; i < c.workers; i++ {
		c.start <- struct{}{}
	}
	c.wg.Wait()
}

// work is one pool worker: per token, claim shards off the cursor until
// none remain, then report the barrier.
func (c *Coordinator) work() {
	for range c.start {
		n := int64(len(c.Shards))
		for {
			i := c.cursor.Add(1) - 1
			if i >= n {
				break
			}
			c.runPhase(c.Shards[i])
		}
		c.wg.Done()
	}
}
