package par

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// rec is a handler recording (shard, At, Arg) execution tuples into a
// shared trace. All recording happens from coordinator-sequential or
// single-shard contexts in these tests.
type rec struct {
	shard *Shard
	trace *[]trace
	// relay, when set, posts the received event onward to relay at
	// At + delay with the same Arg.
	relay *rec
	delay sim.Time
}

type trace struct {
	Shard int
	At    sim.Time
	Arg   int64
}

func (r *rec) OnEvent(e *sim.Engine, ev *sim.Event) {
	*r.trace = append(*r.trace, trace{Shard: r.shard.ID, At: ev.At, Arg: ev.Arg})
	if e.Now() != ev.At {
		panic("handler ran off its timestamp")
	}
	if r.relay != nil {
		r.shard.Post(r.relay.shard, ev.At+r.delay, r.relay, ev.Arg, nil)
	}
}

// ringStopper is a Hooks implementation that severs every relay once an
// epoch ends past the deadline, letting a relay ring wind down.
type ringStopper struct {
	recs  []*rec
	after sim.Time
}

func (h *ringStopper) OnShard(*Shard) {}
func (h *ringStopper) OnEpoch(limit sim.Time) {
	if limit > h.after {
		for i := range h.recs {
			h.recs[i].relay = nil
		}
	}
}

// newRig builds k shards with a shared trace and a coordinator at the
// given lookahead and worker count.
func newRig(k int, look sim.Time, workers int) ([]*Shard, []*rec, *[]trace, *Coordinator) {
	tr := &[]trace{}
	shards := make([]*Shard, k)
	recs := make([]*rec, k)
	for i := range shards {
		shards[i] = NewShard(i, sim.NewEngine(), k)
		recs[i] = &rec{shard: shards[i], trace: tr}
	}
	c := New(shards, nil, look, workers)
	return shards, recs, tr, c
}

func TestCrossShardLandsAtItsTimestamp(t *testing.T) {
	const look = 150 * sim.Nanosecond
	shards, recs, tr, c := newRig(2, look, 1)
	// A local event on shard 0 at t=10ns relays to shard 1 at +look.
	recs[0].relay, recs[0].delay = recs[1], look
	shards[0].Eng.Schedule(10*sim.Nanosecond, recs[0], 7, nil)
	c.Run()
	want := []trace{
		{Shard: 0, At: 10 * sim.Nanosecond, Arg: 7},
		{Shard: 1, At: 160 * sim.Nanosecond, Arg: 7},
	}
	if !reflect.DeepEqual(*tr, want) {
		t.Fatalf("trace = %+v, want %+v", *tr, want)
	}
}

// TestCrossShardEpochPlacement drives epochs one step at a time and
// checks a cross-shard event is invisible to the destination until the
// barrier, then lands in the epoch its timestamp falls into.
func TestCrossShardEpochPlacement(t *testing.T) {
	const look = 100 * sim.Nanosecond
	shards, recs, tr, c := newRig(2, look, 1)
	recs[0].relay, recs[0].delay = recs[1], look
	shards[0].Eng.Schedule(0, recs[0], 1, nil)

	// Epoch 1 covers [0, look): only the shard-0 event runs; the relayed
	// event sits in the mailbox, not yet in shard 1's engine.
	if !c.step(sim.Forever) {
		t.Fatal("no first epoch")
	}
	if got := len(*tr); got != 1 {
		t.Fatalf("after epoch 1: %d events ran, want 1", got)
	}
	if n := shards[1].Eng.Pending(); n != 0 {
		t.Fatalf("after epoch 1: dst engine holds %d events, want it still in the mailbox", n)
	}
	if n := len(shards[0].out[1]); n != 1 {
		t.Fatalf("after epoch 1: mailbox holds %d events, want 1", n)
	}
	// Epoch 2 runs the relayed event at exactly t=look.
	if !c.step(sim.Forever) {
		t.Fatal("no second epoch")
	}
	want := []trace{{Shard: 0, At: 0, Arg: 1}, {Shard: 1, At: look, Arg: 1}}
	if !reflect.DeepEqual(*tr, want) {
		t.Fatalf("trace = %+v, want %+v", *tr, want)
	}
}

// TestMailboxCanonicalMerge posts same-timestamp events from two source
// shards out of worker order and checks the destination runs them in
// (At, source shard, post index) order.
func TestMailboxCanonicalMerge(t *testing.T) {
	const look = 100 * sim.Nanosecond
	shards, recs, tr, c := newRig(3, look, 1)
	at := 2 * look
	// Posts interleave sources deliberately: src 1 then 0 then 1; within
	// a source, ascending post index rides Arg's low digits.
	shards[1].Post(shards[2], at, recs[2], 110, nil)
	shards[0].Post(shards[2], at, recs[2], 100, nil)
	shards[1].Post(shards[2], at, recs[2], 111, nil)
	shards[0].Post(shards[2], at+1, recs[2], 200, nil)
	shards[0].Post(shards[2], at, recs[2], 101, nil)
	c.Run()
	want := []trace{
		{Shard: 2, At: at, Arg: 100}, // src 0, post 0
		{Shard: 2, At: at, Arg: 101}, // src 0, post 1
		{Shard: 2, At: at, Arg: 110}, // src 1, post 0
		{Shard: 2, At: at, Arg: 111}, // src 1, post 1
		{Shard: 2, At: at + 1, Arg: 200},
	}
	if !reflect.DeepEqual(*tr, want) {
		t.Fatalf("trace = %+v, want %+v", *tr, want)
	}
}

// TestDeterminismAcrossWorkerCounts runs a ring of relaying shards at 1
// and 4 workers and requires byte-identical traces. Workers mutate only
// their claimed shard, and the shared trace is only written by shard 0
// in this rig (all events funnel there), so the trace order is exactly
// the engine's deterministic execution order.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const look = 50 * sim.Nanosecond
	run := func(workers int) []trace {
		shards, recs, tr, c := newRig(4, look, workers)
		// Every shard relays to the next; only shard 0 records (the
		// others' recs relay without racing on the trace): give shards
		// 1..3 a private trace each.
		for i := 1; i < 4; i++ {
			priv := &[]trace{}
			recs[i] = &rec{shard: shards[i], trace: priv}
		}
		for i := range recs {
			recs[i].relay = recs[(i+1)%4]
			recs[i].delay = look
		}
		for i := 0; i < 8; i++ {
			shards[0].Eng.Schedule(sim.Time(i)*sim.Nanosecond, recs[0], int64(i), nil)
		}
		// Stop the ring after a while: cap each event's hop count by
		// dropping the relay once time passes 20*look.
		c.Hooks = &ringStopper{recs: recs, after: 20 * look}
		c.Run()
		return *tr
	}
	one, four := run(1), run(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("workers=1 and workers=4 diverge:\n1: %+v\n4: %+v", one, four)
	}
	if len(one) == 0 {
		t.Fatal("no events ran")
	}
}

func TestControlEngineInterleaves(t *testing.T) {
	const look = 100 * sim.Nanosecond
	shards, recs, tr, c := newRig(1, look, 1)
	ctl := sim.NewEngine()
	c.Control = ctl
	var ctlAt []sim.Time
	ctl.ScheduleFunc(30*sim.Nanosecond, func() { ctlAt = append(ctlAt, ctl.Now()) })
	shards[0].Eng.Schedule(40*sim.Nanosecond, recs[0], 1, nil)
	c.RunUntil(sim.Microsecond)
	if len(*tr) != 1 || len(ctlAt) != 1 || ctlAt[0] != 30*sim.Nanosecond {
		t.Fatalf("trace=%+v ctlAt=%v", *tr, ctlAt)
	}
	if now := ctl.Now(); now != sim.Microsecond {
		t.Fatalf("control clock = %v, want the deadline", now)
	}
	if now := shards[0].Eng.Now(); now != sim.Microsecond {
		t.Fatalf("shard clock = %v, want the deadline", now)
	}
}

func TestRunWhileStopsBetweenEpochs(t *testing.T) {
	const look = 100 * sim.Nanosecond
	shards, recs, tr, c := newRig(2, look, 1)
	recs[0].relay, recs[0].delay = recs[1], look
	shards[0].Eng.Schedule(0, recs[0], 1, nil)
	n := 0
	c.RunWhile(func() bool { n++; return len(*tr) == 0 })
	if len(*tr) != 1 {
		t.Fatalf("ran %d events, want exactly the first epoch's 1", len(*tr))
	}
	if n < 2 {
		t.Fatalf("cond evaluated %d times, want before and after the epoch", n)
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	shards, recs, _, c := newRig(2, 100*sim.Nanosecond, 1)
	// A handler that posts into the current epoch (below the fence).
	bad := badPoster{src: shards[0], dst: shards[1], h: recs[1]}
	shards[0].Eng.Schedule(0, &bad, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on a cross-shard post below the epoch fence")
		}
	}()
	c.Run()
}

type badPoster struct {
	src, dst *Shard
	h        sim.Handler
}

func (b *badPoster) OnEvent(_ *sim.Engine, ev *sim.Event) {
	b.src.Post(b.dst, ev.At+1, b.h, 0, nil) // +1ps, far below any sane lookahead
}

// TestMailboxReuseNoAllocs checks the exchange path allocates nothing in
// steady state: after a warm-up epoch, posting and draining the same
// volume reuses mailbox and merge-buffer capacity.
func TestMailboxReuseNoAllocs(t *testing.T) {
	const look = 100 * sim.Nanosecond
	shards, recs, tr, c := newRig(2, look, 1)
	post := func() {
		at := shards[0].Eng.Now() + look
		for i := 0; i < 32; i++ {
			shards[0].Post(shards[1], at, recs[1], int64(i), nil)
		}
	}
	post()
	c.Run() // warm-up: grows mailbox, merge buffer, engine free-list
	ran := 0
	allocs := testing.AllocsPerRun(10, func() {
		*tr = (*tr)[:0] // keep the recorder's capacity out of the count
		post()
		c.Run()
		ran += len(*tr)
	})
	if allocs > 0 {
		t.Fatalf("exchange path allocates %.1f/run in steady state, want 0", allocs)
	}
	if ran == 0 {
		t.Fatal("steady-state runs recorded nothing")
	}
}
