package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1e12*Picosecond {
		t.Fatalf("second = %d ps", int64(Second))
	}
	if got := FromNanoseconds(350).Nanoseconds(); got != 350 {
		t.Errorf("FromNanoseconds round trip = %v", got)
	}
	if got := FromMicroseconds(2.13); got != 2130*Nanosecond {
		t.Errorf("FromMicroseconds(2.13) = %v", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{350 * Nanosecond, "350ns"},
		{2130 * Nanosecond, "2.13us"},
		{500 * Picosecond, "500ps"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-5 * Nanosecond, "-5ns"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	// One byte at 200 Gb/s is exactly 40 ps.
	if got := SerializationTime(1, 200e9); got != 40*Picosecond {
		t.Errorf("1B @200Gb/s = %v, want 40ps", got)
	}
	// A 4 KiB packet at 200 Gb/s is 163.84 ns, rounded up to the next ps.
	if got := SerializationTime(4096, 200e9); got != Time(163840) {
		t.Errorf("4KiB @200Gb/s = %d ps, want 163840", int64(got))
	}
	// 100 Gb/s doubles it.
	if got := SerializationTime(4096, 100e9); got != Time(327680) {
		t.Errorf("4KiB @100Gb/s = %d ps, want 327680", int64(got))
	}
	if got := SerializationTime(0, 100e9); got != 0 {
		t.Errorf("0 bytes = %v, want 0", got)
	}
	if got := SerializationTime(100, 0); got != 0 {
		t.Errorf("0 bandwidth = %v, want 0", got)
	}
}

func TestSerializationTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		lo, hi := min(x, y), max(x, y)
		return SerializationTime(lo, 200e9) <= SerializationTime(hi, 200e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleFunc(30*Nanosecond, func() { order = append(order, 3) })
	e.ScheduleFunc(10*Nanosecond, func() { order = append(order, 1) })
	e.ScheduleFunc(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleFunc(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.ScheduleFunc(10*Nanosecond, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestEngineCancelMiddle(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]*Event, 20)
	for i := range evs {
		i := i
		evs[i] = e.ScheduleFunc(Time(i)*Nanosecond, func() { got = append(got, i) })
	}
	e.Cancel(evs[7])
	e.Cancel(evs[13])
	e.Run()
	if len(got) != 18 {
		t.Fatalf("got %d events, want 18", len(got))
	}
	for _, v := range got {
		if v == 7 || v == 13 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestEngineReentrantScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.AfterFunc(1*Nanosecond, tick)
		}
	}
	e.AfterFunc(0, tick)
	e.Run()
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if e.Now() != 99*Nanosecond {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineSchedulePastClamps(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.ScheduleFunc(10*Nanosecond, func() {
		e.ScheduleFunc(5*Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 10*Nanosecond {
		t.Errorf("past event ran at %v, want clamp to 10ns", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at * Microsecond
		e.ScheduleFunc(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(3 * Microsecond)
	if len(ran) != 3 {
		t.Fatalf("ran %d events, want 3", len(ran))
	}
	if e.Now() != 3*Microsecond {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	// RunUntil past the queue advances the clock.
	e.RunUntil(10 * Microsecond)
	if e.Now() != 10*Microsecond || e.Pending() != 0 {
		t.Errorf("Now = %v Pending = %d", e.Now(), e.Pending())
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 50; i++ {
		e.ScheduleFunc(Time(i)*Nanosecond, func() { n++ })
	}
	e.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Errorf("n = %d", n)
	}
}

func TestEngineStepsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.ScheduleFunc(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Errorf("Steps = %d", e.Steps())
	}
}

// Property: events always execute in non-decreasing time order, whatever
// order they are scheduled in.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			at := Time(d % 1e6)
			e.ScheduleFunc(at, func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds agree %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormalTruncation(t *testing.T) {
	r := NewRNG(4)
	lo, hi := 300*Nanosecond, 400*Nanosecond
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Normal(350*Nanosecond, 15*Nanosecond, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Normal out of [%v,%v]: %v", lo, hi, v)
		}
		sum += v.Nanoseconds()
	}
	mean := sum / n
	if math.Abs(mean-350) > 2 {
		t.Errorf("mean = %.2f ns, want ~350", mean)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Exponential(1000 * Nanosecond))
	}
	mean := sum / n / float64(Nanosecond)
	if math.Abs(mean-1000) > 30 {
		t.Errorf("exponential mean = %.1f ns, want ~1000", mean)
	}
}

func TestRNGLogNormalMedian(t *testing.T) {
	r := NewRNG(6)
	const n = 30001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(r.LogNormal(Millisecond, 0.5))
	}
	// crude median check
	lt := 0
	for _, v := range vals {
		if v < float64(Millisecond) {
			lt++
		}
	}
	frac := float64(lt) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median = %.3f", frac)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split streams agree %d/1000 times", same)
	}
}

// recorder is a static test handler: it appends each fired event's Arg.
type recorder struct{ got []int64 }

func (r *recorder) OnEvent(_ *Engine, ev *Event) { r.got = append(r.got, ev.Arg) }

func TestEngineHandlerDispatch(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	e.Schedule(20*Nanosecond, r, 2, nil)
	e.Schedule(10*Nanosecond, r, 1, nil)
	e.After(30*Nanosecond, r, 3, nil)
	e.Run()
	if len(r.got) != 3 || r.got[0] != 1 || r.got[1] != 2 || r.got[2] != 3 {
		t.Fatalf("dispatch order = %v", r.got)
	}
}

func TestEngineEventDataWord(t *testing.T) {
	// Pointer payloads ride the Data word without the handler capturing
	// anything.
	e := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	got := 0
	e.Schedule(Nanosecond, handlerFunc(func(_ *Engine, ev *Event) {
		got = ev.Data.(*payload).n
	}), 0, p)
	p.n = 42
	e.Run()
	if got != 42 {
		t.Fatalf("Data payload = %d, want 42", got)
	}
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(e *Engine, ev *Event)

func (f handlerFunc) OnEvent(e *Engine, ev *Event) { f(e, ev) }

// RunUntil boundary semantics: events at exactly At == deadline that are
// scheduled *by* a handler running at deadline time must still run before
// the clock settles at the deadline — the drain loop re-peeks after every
// step instead of snapshotting the queue once.
func TestEngineRunUntilDeadlineChain(t *testing.T) {
	e := NewEngine()
	const deadline = 10 * Microsecond
	var ran []int
	e.ScheduleFunc(deadline, func() {
		ran = append(ran, 1)
		e.ScheduleFunc(deadline, func() { // same-instant follow-on
			ran = append(ran, 2)
			e.AfterFunc(0, func() { ran = append(ran, 3) }) // zero-delay at deadline
			e.AfterFunc(Picosecond, func() { t.Error("past-deadline event ran") })
		})
	})
	e.RunUntil(deadline)
	if len(ran) != 3 || ran[0] != 1 || ran[1] != 2 || ran[2] != 3 {
		t.Fatalf("deadline-time chain ran = %v, want [1 2 3]", ran)
	}
	if e.Now() != deadline {
		t.Errorf("Now = %v, want %v", e.Now(), deadline)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want the past-deadline event", e.Pending())
	}
}

// Cancelling an event that sits in a wheel bucket (not yet poured into
// the operating heap) must unlink it and keep the occupancy bitmaps
// exact, so the wheel neither fires it nor wedges advancing past its
// emptied bucket.
func TestWheelCancelInsideBucket(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	a := e.Schedule(10*Microsecond, r, 1, nil)       // level-1 bucket
	e.Schedule(10*Microsecond+Nanosecond, r, 2, nil) // same bucket
	e.Schedule(20*Millisecond, r, 3, nil)            // level-3 bucket
	e.Cancel(a)
	if !a.Cancelled() {
		t.Fatal("bucket event not marked cancelled")
	}
	e.Run()
	if len(r.got) != 2 || r.got[0] != 2 || r.got[1] != 3 {
		t.Fatalf("ran = %v, want [2 3]", r.got)
	}
	if e.Now() != 20*Millisecond {
		t.Errorf("Now = %v", e.Now())
	}
}

// Cancelling the only event of a far bucket must clear its occupancy bit:
// a later Run with other events must not hang or mis-order.
func TestWheelCancelEmptiesBucket(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	a := e.Schedule(5*Microsecond, r, 1, nil)
	b := e.Schedule(3*Second, r, 2, nil)
	e.Schedule(7*Millisecond, r, 3, nil)
	e.Cancel(a)
	e.Cancel(b)
	e.Run()
	if len(r.got) != 1 || r.got[0] != 3 {
		t.Fatalf("ran = %v, want [3]", r.got)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

// Events beyond the wheels' ~18-minute horizon wait in the overflow list
// and are promoted back through the wheel levels when everything nearer
// has drained — in exact (At, seq) order.
func TestWheelOverflowPromotion(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	far2 := 2000*Second + Nanosecond
	far1 := 2000 * Second
	e.Schedule(far2, r, 4, nil) // overflow, scheduled out of order
	e.Schedule(far1, r, 3, nil)
	e.Schedule(Microsecond, r, 1, nil)
	e.Schedule(Millisecond, r, 2, nil)
	e.Run()
	want := []int64{1, 2, 3, 4}
	if len(r.got) != len(want) {
		t.Fatalf("ran %v, want %v", r.got, want)
	}
	for i, v := range want {
		if r.got[i] != v {
			t.Fatalf("ran %v, want %v", r.got, want)
		}
	}
	if e.Now() != far2 {
		t.Errorf("Now = %v, want %v", e.Now(), far2)
	}
}

// Same-instant events scheduled before a full wheel rotation must still
// fire in scheduling (seq) order once their bucket finally pours into the
// operating heap.
func TestWheelSameTickFIFOAfterRotation(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	const at = 5 * Millisecond // several level-0 rotations away
	for i := 0; i < 50; i++ {
		e.Schedule(at, r, int64(i), nil)
	}
	// Interleave nearer events so the wheel genuinely rotates first.
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i)*100*Microsecond, r, -1, nil)
	}
	e.Run()
	fifo := r.got[10:]
	for i, v := range fifo {
		if v != int64(i) {
			t.Fatalf("post-rotation FIFO order broken at %d: %v", i, fifo)
		}
	}
}

// Distinct timestamps inside one level-0 bucket (~16 ns wide) must fire in
// At order even when scheduled in reverse.
func TestWheelSubTickOrdering(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	base := 30 * Microsecond
	e.Schedule(base+3*Picosecond, r, 3, nil)
	e.Schedule(base+1*Picosecond, r, 1, nil)
	e.Schedule(base+2*Picosecond, r, 2, nil)
	e.Run()
	if len(r.got) != 3 || r.got[0] != 1 || r.got[1] != 2 || r.got[2] != 3 {
		t.Fatalf("sub-tick order = %v", r.got)
	}
}

// After an idle clock jump (RunUntil past an empty queue), newly scheduled
// near events are far from the wheel's last position; the cascade must
// walk the levels down to them without losing precision.
func TestEngineScheduleAfterIdleJump(t *testing.T) {
	e := NewEngine()
	e.RunUntil(Second)
	var at Time = -1
	e.AfterFunc(Nanosecond, func() { at = e.Now() })
	e.Run()
	if at != Second+Nanosecond {
		t.Fatalf("post-jump event ran at %v, want %v", at, Second+Nanosecond)
	}
}

// eventRef is the reference model's view of one scheduled event.
type eventRef struct {
	at Time
	id int64
}

// sortRefs sorts stably by At: ids keep schedule order inside equal
// timestamps, matching the engine's seq tie-break.
func sortRefs(refs []eventRef) {
	sort.SliceStable(refs, func(i, j int) bool { return refs[i].at < refs[j].at })
}

// Randomized cross-check against a reference model: any mix of delays
// spanning every wheel level (and the overflow list), with a deterministic
// subset cancelled while still in their buckets, must execute in exactly
// sorted (At, seq) order.
func TestWheelRandomizedOrdering(t *testing.T) {
	rng := NewRNG(11)
	e := NewEngine()
	r := &recorder{}
	var want []eventRef
	cancelled := make(map[int64]bool)
	const n = 3000
	for i := 0; i < n; i++ {
		// Timestamps from sub-tick to beyond the wheel horizon.
		exp := rng.Intn(51) // up to 2^51 ps, past the 2^50 ps wheel horizon
		at := Time(rng.Intn(1 << uint(exp+1)))
		ev := e.Schedule(at, r, int64(i), nil)
		if i%7 == 3 {
			e.Cancel(ev)
			cancelled[int64(i)] = true
			continue
		}
		want = append(want, eventRef{at: at, id: int64(i)})
	}
	e.Run()
	sortRefs(want)
	if len(r.got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(r.got), len(want))
	}
	for i, v := range r.got {
		if cancelled[v] {
			t.Fatalf("cancelled event %d ran", v)
		}
		if v != want[i].id {
			t.Fatalf("order diverges from model at %d: got id %d (At %v), want %d (At %v)",
				i, v, e.Now(), want[i].id, want[i].at)
		}
	}
}

func TestEventFreeListRecycles(t *testing.T) {
	// The engine recycles Event structs through a deterministic free-list:
	// a fired or cancelled event's struct backs a later Schedule. This
	// pins the no-allocation steady state of the hot path.
	e := NewEngine()
	ran := 0
	ev1 := e.ScheduleFunc(Nanosecond, func() { ran++ })
	e.Run()
	ev2 := e.ScheduleFunc(2*Nanosecond, func() { ran++ })
	if ev2 != ev1 {
		t.Error("fired event struct was not recycled")
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	ev3 := e.ScheduleFunc(3*Nanosecond, func() { t.Error("cancelled event ran") })
	e.Cancel(ev3)
	ev4 := e.ScheduleFunc(4*Nanosecond, func() { ran++ })
	if ev4 != ev3 {
		t.Error("cancelled event struct was not recycled")
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

// Free-list recycling must hold under static-handler dispatch too: a
// fired or cancelled handler event's struct backs a later Schedule, and
// the recycled struct carries the new Arg/Data, not stale ones.
func TestEventFreeListRecyclesHandlerDispatch(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	ev1 := e.Schedule(Nanosecond, r, 1, nil)
	e.Run()
	ev2 := e.Schedule(2*Nanosecond, r, 2, "payload")
	if ev2 != ev1 {
		t.Error("fired handler event struct was not recycled")
	}
	if ev2.Arg != 2 || ev2.Data != "payload" {
		t.Errorf("recycled event carries stale words: Arg=%d Data=%v", ev2.Arg, ev2.Data)
	}
	e.Run()
	// Cancel inside a wheel bucket recycles immediately as well.
	ev3 := e.Schedule(50*Microsecond, r, 3, nil)
	e.Cancel(ev3)
	ev4 := e.Schedule(3*Nanosecond, r, 4, nil)
	if ev4 != ev3 {
		t.Error("bucket-cancelled event struct was not recycled")
	}
	e.Run()
	if len(r.got) != 3 || r.got[0] != 1 || r.got[1] != 2 || r.got[2] != 4 {
		t.Fatalf("ran = %v, want [1 2 4]", r.got)
	}
}

func TestEventFreeListDropsClosure(t *testing.T) {
	// Released events must not pin their handler or payload: Data carries
	// the closure for ScheduleFunc events, and the handler word would pin
	// the owning object for static handlers.
	e := NewEngine()
	ev := e.ScheduleFunc(Nanosecond, func() {})
	e.Run()
	if ev.Data != nil || ev.h != nil {
		t.Error("fired event still references its handler/closure")
	}
	ev2 := e.ScheduleFunc(Nanosecond, func() {})
	e.Cancel(ev2)
	if ev2.Data != nil || ev2.h != nil {
		t.Error("cancelled event still references its handler/closure")
	}
}
