package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1e12*Picosecond {
		t.Fatalf("second = %d ps", int64(Second))
	}
	if got := FromNanoseconds(350).Nanoseconds(); got != 350 {
		t.Errorf("FromNanoseconds round trip = %v", got)
	}
	if got := FromMicroseconds(2.13); got != 2130*Nanosecond {
		t.Errorf("FromMicroseconds(2.13) = %v", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{350 * Nanosecond, "350ns"},
		{2130 * Nanosecond, "2.13us"},
		{500 * Picosecond, "500ps"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-5 * Nanosecond, "-5ns"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	// One byte at 200 Gb/s is exactly 40 ps.
	if got := SerializationTime(1, 200e9); got != 40*Picosecond {
		t.Errorf("1B @200Gb/s = %v, want 40ps", got)
	}
	// A 4 KiB packet at 200 Gb/s is 163.84 ns, rounded up to the next ps.
	if got := SerializationTime(4096, 200e9); got != Time(163840) {
		t.Errorf("4KiB @200Gb/s = %d ps, want 163840", int64(got))
	}
	// 100 Gb/s doubles it.
	if got := SerializationTime(4096, 100e9); got != Time(327680) {
		t.Errorf("4KiB @100Gb/s = %d ps, want 327680", int64(got))
	}
	if got := SerializationTime(0, 100e9); got != 0 {
		t.Errorf("0 bytes = %v, want 0", got)
	}
	if got := SerializationTime(100, 0); got != 0 {
		t.Errorf("0 bandwidth = %v, want 0", got)
	}
}

func TestSerializationTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		lo, hi := min(x, y), max(x, y)
		return SerializationTime(lo, 200e9) <= SerializationTime(hi, 200e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10*Nanosecond, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestEngineCancelMiddle(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]*Event, 20)
	for i := range evs {
		i := i
		evs[i] = e.Schedule(Time(i)*Nanosecond, func() { got = append(got, i) })
	}
	e.Cancel(evs[7])
	e.Cancel(evs[13])
	e.Run()
	if len(got) != 18 {
		t.Fatalf("got %d events, want 18", len(got))
	}
	for _, v := range got {
		if v == 7 || v == 13 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestEngineReentrantScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1*Nanosecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if e.Now() != 99*Nanosecond {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineSchedulePastClamps(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(10*Nanosecond, func() {
		e.Schedule(5*Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 10*Nanosecond {
		t.Errorf("past event ran at %v, want clamp to 10ns", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at * Microsecond
		e.Schedule(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(3 * Microsecond)
	if len(ran) != 3 {
		t.Fatalf("ran %d events, want 3", len(ran))
	}
	if e.Now() != 3*Microsecond {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	// RunUntil past the queue advances the clock.
	e.RunUntil(10 * Microsecond)
	if e.Now() != 10*Microsecond || e.Pending() != 0 {
		t.Errorf("Now = %v Pending = %d", e.Now(), e.Pending())
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 50; i++ {
		e.Schedule(Time(i)*Nanosecond, func() { n++ })
	}
	e.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Errorf("n = %d", n)
	}
}

func TestEngineStepsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Errorf("Steps = %d", e.Steps())
	}
}

// Property: events always execute in non-decreasing time order, whatever
// order they are scheduled in.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			at := Time(d % 1e6)
			e.Schedule(at, func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds agree %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormalTruncation(t *testing.T) {
	r := NewRNG(4)
	lo, hi := 300*Nanosecond, 400*Nanosecond
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Normal(350*Nanosecond, 15*Nanosecond, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Normal out of [%v,%v]: %v", lo, hi, v)
		}
		sum += v.Nanoseconds()
	}
	mean := sum / n
	if math.Abs(mean-350) > 2 {
		t.Errorf("mean = %.2f ns, want ~350", mean)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Exponential(1000 * Nanosecond))
	}
	mean := sum / n / float64(Nanosecond)
	if math.Abs(mean-1000) > 30 {
		t.Errorf("exponential mean = %.1f ns, want ~1000", mean)
	}
}

func TestRNGLogNormalMedian(t *testing.T) {
	r := NewRNG(6)
	const n = 30001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(r.LogNormal(Millisecond, 0.5))
	}
	// crude median check
	lt := 0
	for _, v := range vals {
		if v < float64(Millisecond) {
			lt++
		}
	}
	frac := float64(lt) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median = %.3f", frac)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split streams agree %d/1000 times", same)
	}
}

func TestEventFreeListRecycles(t *testing.T) {
	// The engine recycles Event structs through a deterministic free-list:
	// a fired or cancelled event's struct backs a later Schedule. This
	// pins the no-allocation steady state of the hot path.
	e := NewEngine()
	ran := 0
	ev1 := e.Schedule(Nanosecond, func() { ran++ })
	e.Run()
	ev2 := e.Schedule(2*Nanosecond, func() { ran++ })
	if ev2 != ev1 {
		t.Error("fired event struct was not recycled")
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	ev3 := e.Schedule(3*Nanosecond, func() { t.Error("cancelled event ran") })
	e.Cancel(ev3)
	ev4 := e.Schedule(4*Nanosecond, func() { ran++ })
	if ev4 != ev3 {
		t.Error("cancelled event struct was not recycled")
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestEventFreeListDropsClosure(t *testing.T) {
	// Released events must not pin their callback closures.
	e := NewEngine()
	ev := e.Schedule(Nanosecond, func() {})
	e.Run()
	if ev.Fn != nil {
		t.Error("fired event still references its closure")
	}
	ev2 := e.Schedule(Nanosecond, func() {})
	e.Cancel(ev2)
	if ev2.Fn != nil {
		t.Error("cancelled event still references its closure")
	}
}
