// Package sim provides a deterministic discrete-event simulation engine
// used by every subsystem of the Slingshot reproduction: an event scheduler
// with picosecond-resolution virtual time, and a seedable random number
// generator with the distributions the models need.
//
// All simulated time is expressed as sim.Time, an integer count of
// picoseconds. Picoseconds (rather than nanoseconds) let link serialization
// times be represented exactly: one byte on a 200 Gb/s link takes 40 ps, and
// one byte on a 100 Gb/s link takes 80 ps, both integers.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in (or duration of) simulated time, in picoseconds.
// The zero value is the simulation epoch. With int64 picoseconds the
// representable range exceeds 106 days of simulated time, far beyond any
// experiment in this repository.
type Time int64

// Convenient duration units, all exactly representable.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel time later than any event a simulation schedules.
const Forever Time = math.MaxInt64

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a floating-point nanosecond count to a Time,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	return Time(math.Round(ns * float64(Nanosecond)))
}

// FromMicroseconds converts a floating-point microsecond count to a Time.
func FromMicroseconds(us float64) Time {
	return Time(math.Round(us * float64(Microsecond)))
}

// FromSeconds converts a floating-point second count to a Time.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// String formats the time with an adaptive unit, e.g. "350ns" or "2.13us".
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return trimUnit(t.Nanoseconds(), "ns")
	case t < Millisecond:
		return trimUnit(t.Microseconds(), "us")
	case t < Second:
		return trimUnit(t.Milliseconds(), "ms")
	default:
		return trimUnit(t.Seconds(), "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// SerializationTime returns how long it takes to put `bytes` on a wire of
// the given bandwidth (bits per second). It rounds up to the next
// picosecond so that a positive payload always takes positive time.
func SerializationTime(bytes int64, bitsPerSecond int64) Time {
	if bytes <= 0 || bitsPerSecond <= 0 {
		return 0
	}
	// time_ps = bytes*8 / (bits/s) * 1e12 = bytes * 8e12 / bps
	const psPerSecond = 1_000_000_000_000
	num := bytes * 8 * psPerSecond
	t := num / bitsPerSecond
	if num%bitsPerSecond != 0 {
		t++
	}
	return Time(t)
}
