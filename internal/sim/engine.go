package sim

import "math/bits"

// Handler is the closure-free event callback: the engine dispatches every
// event to its handler's OnEvent with the event itself, whose Arg and Data
// words carry per-event context. Handlers are typically pointer aliases of
// the simulation object that owns the event (e.g. a NIC or port), so
// steady-state scheduling allocates nothing: the handler word in the
// interface is just the object pointer, and the Event struct comes from
// the engine's free-list.
type Handler interface {
	OnEvent(e *Engine, ev *Event)
}

// Event is a scheduled callback. Events are ordered by time; ties are broken
// by insertion order so the simulation is fully deterministic.
//
// Lifetime: the engine recycles Event structs through a deterministic
// free-list (no sync.Pool — the engine is single-threaded). An *Event
// returned by Schedule/After is valid until its handler has run or it
// has been cancelled; after that the engine may reuse the struct for a
// future Schedule, so holders must drop their pointer (the idiomatic
// pattern is to nil the field as the first statement of the handler).
type Event struct {
	At Time
	// Arg is one scalar word of handler context (a byte count, a packed
	// flag, ...). Data is one pointer word (a *Packet, *Message, func, ...);
	// pointer-shaped values box into it without allocating.
	Arg  int64
	Data any

	h   Handler
	seq int64

	// Queue bookkeeping: an event lives either in the operating heap
	// (heapIdx >= 0) or in a wheel bucket's intrusive list (slot >= 0);
	// fired, cancelled and free events have both at -1.
	heapIdx    int
	slot       int32
	next, prev *Event
}

// Cancelled reports whether the event has been removed from the queue
// (fired or cancelled).
func (e *Event) Cancelled() bool { return e.heapIdx < 0 && e.slot < 0 }

// The hierarchical timing wheel. Level-0 buckets are one tick wide
// (2^granBits picoseconds ≈ 16 ns, a fraction of one cell serialization
// time on a 200 Gb/s link); each higher level is wheelSize× coarser, so
// the six levels ladder out to ~18 simulated minutes. Events beyond that
// horizon sit in an unsorted overflow list until the wheels drain.
//
// These are the wheel's granularity knobs: granBits trades level-0
// precision (how many distinct timestamps share an operating-heap batch)
// against rotation frequency, and levelBits×wheelLevels set the horizon.
const (
	granBits    = 14 // level-0 tick = 2^14 ps ≈ 16.4 ns
	levelBits   = 6  // 64 buckets per level → one uint64 occupancy word
	wheelSize   = 1 << levelBits
	wheelMask   = wheelSize - 1
	wheelLevels = 6

	overflowSlot = wheelLevels * wheelSize
	numSlots     = overflowSlot + 1
)

// bucket is one wheel slot: an intrusive doubly-linked FIFO of events.
type bucket struct{ head, tail *Event }

// Engine is a single-threaded discrete-event scheduler built on a
// hierarchical timing wheel. It is not safe for concurrent use; the whole
// simulator runs in one goroutine, which on the target (CPU-bound,
// deterministic replay) is both simplest and fastest.
//
// Ordering is exact: events execute in strictly non-decreasing (At, seq)
// order, identical to a single global priority queue. The wheel only
// changes *where* pending events wait — far timers sit in O(1) buckets
// instead of churning a big binary heap — and the operating heap `cur`
// holds just the events of the current tick, so its depth stays tiny.
type Engine struct {
	now    Time
	seq    int64
	nsteps int64
	count  int // queued events across cur + wheels + overflow

	// curTick is the wheel position: every queued event with
	// At>>granBits <= curTick is in cur (the operating heap, ordered by
	// (At, seq)); later events wait in wheel buckets or overflow.
	curTick int64
	cur     []*Event
	buckets [numSlots]bucket
	occ     [wheelLevels]uint64 // per-level bucket occupancy bitmaps

	// free recycles fired/cancelled events; the hot path allocates no
	// Event structs once the simulation reaches steady state.
	free []*Event
}

// NewEngine returns an engine positioned at the simulation epoch.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for perf
// accounting in benchmarks).
func (e *Engine) Steps() int64 { return e.nsteps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.count }

// NextAt returns the timestamp of the earliest queued event. ok is false
// when the queue is empty. Peeking may rotate the wheel (relocating
// events) but never executes anything, so it is safe to call between
// epochs of a bounded run.
func (e *Engine) NextAt() (at Time, ok bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.At, true
}

// Schedule queues h to run at absolute time at, with arg and data stored
// on the event for the handler to read. Scheduling in the past (before
// Now) is clamped to Now; this happens only from handlers that compute a
// zero/negative delay and is harmless because tie-breaking keeps
// execution order deterministic. The returned event may be cancelled.
//simlint:hotpath
func (e *Engine) Schedule(at Time, h Handler, arg int64, data any) *Event {
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.At, ev.h, ev.Arg, ev.Data = at, h, arg, data
	ev.seq = e.seq
	e.seq++
	e.count++
	e.insert(ev)
	return ev
}

// After queues h to run delay after the current time.
func (e *Engine) After(delay Time, h Handler, arg int64, data any) *Event {
	return e.Schedule(e.now+delay, h, arg, data)
}

// funcRunner adapts a plain func() to the Handler interface for the
// ScheduleFunc/AfterFunc shims (tests, examples, one-off setup events).
type funcRunner struct{}

func (funcRunner) OnEvent(_ *Engine, ev *Event) { ev.Data.(func())() }

var runFunc Handler = funcRunner{}

// ScheduleFunc queues a plain closure at absolute time at. It is a thin
// shim over Schedule for call sites where a closure allocation per event
// does not matter (tests, examples, experiment setup); hot paths use
// static Handler implementations instead.
func (e *Engine) ScheduleFunc(at Time, fn func()) *Event {
	return e.Schedule(at, runFunc, 0, fn)
}

// AfterFunc queues a plain closure delay after the current time.
func (e *Engine) AfterFunc(delay Time, fn func()) *Event {
	return e.Schedule(e.now+delay, runFunc, 0, fn)
}

// Cancel removes a queued event and recycles it. Cancelling an
// already-run or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	switch {
	case ev == nil:
		return
	case ev.heapIdx >= 0:
		e.heapRemove(ev.heapIdx)
	case ev.slot >= 0:
		e.unlink(ev)
	default:
		return
	}
	e.count--
	e.release(ev)
}

// Step runs the earliest event. It reports false when the queue is empty.
//simlint:hotpath
func (e *Engine) Step() bool {
	if e.count == 0 {
		return false
	}
	if len(e.cur) == 0 {
		e.advance()
	}
	ev := e.heapPopMin()
	e.now = ev.At
	e.nsteps++
	e.count--
	ev.h.OnEvent(e, ev)
	// Recycle after the handler: any holder following the contract has
	// dropped its pointer by now (handlers nil their field first).
	e.release(ev)
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (if the simulation got that far). Events scheduled later
// remain queued. The drain loop re-peeks after every step, so events at
// exactly At == deadline scheduled *by* a deadline-time handler still run
// before the clock settles.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events while cond() holds and the queue is non-empty.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for e.count > 0 && cond() {
		e.Step()
	}
}

// peek returns the earliest queued event without running it, advancing the
// wheel if the operating heap is empty (advancing only relocates events,
// never executes them).
func (e *Engine) peek() *Event {
	if e.count == 0 {
		return nil
	}
	if len(e.cur) == 0 {
		e.advance()
	}
	return e.cur[0]
}

// alloc takes an event from the free-list or allocates a fresh one.
func (e *Engine) alloc() *Event {
	if k := len(e.free); k > 0 {
		ev := e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		return ev
	}
	return &Event{heapIdx: -1, slot: -1}
}

// release returns an event to the free-list, dropping its handler and
// payload so the referenced state becomes collectable.
func (e *Engine) release(ev *Event) {
	ev.h = nil
	ev.Data = nil
	ev.next = nil
	ev.prev = nil
	e.free = append(e.free, ev)
}

// insert places a queued event: current-tick events go straight into the
// operating heap; later ones into the finest wheel level whose window
// contains them; events beyond the top-level horizon into overflow.
func (e *Engine) insert(ev *Event) {
	t := int64(ev.At) >> granBits
	if t <= e.curTick {
		e.heapPush(ev)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		// The event fits level l when it shares curTick's level-(l+1)
		// parent bucket.
		if t>>uint((l+1)*levelBits) == e.curTick>>uint((l+1)*levelBits) {
			idx := (t >> uint(l*levelBits)) & wheelMask
			e.pushBucket(int32(l*wheelSize)+int32(idx), ev)
			e.occ[l] |= 1 << uint(idx)
			return
		}
	}
	e.pushBucket(overflowSlot, ev)
}

// pushBucket appends ev to a wheel slot's FIFO.
func (e *Engine) pushBucket(slot int32, ev *Event) {
	ev.slot = slot
	ev.heapIdx = -1
	b := &e.buckets[slot]
	ev.prev = b.tail
	ev.next = nil
	if b.tail != nil {
		b.tail.next = ev
	} else {
		b.head = ev
	}
	b.tail = ev
}

// unlink removes ev from its wheel slot, clearing the occupancy bit when
// the bucket empties (advance relies on exact bitmaps).
func (e *Engine) unlink(ev *Event) {
	b := &e.buckets[ev.slot]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	if b.head == nil && ev.slot < overflowSlot {
		l := int(ev.slot) >> levelBits
		e.occ[l] &^= 1 << uint(int(ev.slot)&wheelMask)
	}
	ev.slot = -1
	ev.next = nil
	ev.prev = nil
}

// takeBucket detaches and returns a slot's whole chain.
func (e *Engine) takeBucket(slot int32) *Event {
	b := &e.buckets[slot]
	head := b.head
	b.head, b.tail = nil, nil
	if slot < overflowSlot {
		l := int(slot) >> levelBits
		e.occ[l] &^= 1 << uint(int(slot)&wheelMask)
	}
	return head
}

// advance moves the wheel forward to the next occupied tick and pours that
// tick's events into the operating heap. Callers guarantee count > 0.
func (e *Engine) advance() {
	for len(e.cur) == 0 {
		// Next occupied level-0 bucket strictly after curTick in the
		// current window. (uint64(2)<<63 wraps to 0, so idx==63 correctly
		// yields an empty mask.)
		idx := uint(e.curTick & wheelMask)
		if m := e.occ[0] &^ (uint64(2)<<idx - 1); m != 0 {
			b := int64(bits.TrailingZeros64(m))
			e.curTick = e.curTick&^int64(wheelMask) | b
			for ev := e.takeBucket(int32(b)); ev != nil; {
				next := ev.next
				e.heapPush(ev)
				ev = next
			}
			return
		}
		if e.cascade() {
			continue
		}
		e.promoteOverflow()
	}
}

// cascade finds the first occupied bucket at the coarser levels, jumps
// curTick to the start of its span, and redistributes its events into
// finer levels (or the operating heap for the span's first tick). It
// reports false when every wheel level ahead of curTick is empty.
func (e *Engine) cascade() bool {
	for l := 1; l < wheelLevels; l++ {
		shift := uint(l * levelBits)
		idx := uint((e.curTick >> shift) & wheelMask)
		// The bucket containing curTick itself was redistributed when the
		// wheel entered its span, so scan strictly after it.
		m := e.occ[l] &^ (uint64(2)<<idx - 1)
		if m == 0 {
			continue
		}
		b := int64(bits.TrailingZeros64(m))
		base := (e.curTick>>shift)&^int64(wheelMask) | b
		e.curTick = base << shift
		for ev := e.takeBucket(int32(l*wheelSize) + int32(b)); ev != nil; {
			next := ev.next
			e.insert(ev)
			ev = next
		}
		return true
	}
	return false
}

// promoteOverflow is reached when the operating heap and every wheel level
// are empty but events remain: they are all in the overflow list, beyond
// the wheels' horizon. Jump curTick to the earliest of them and re-insert
// the whole list against the new position.
func (e *Engine) promoteOverflow() {
	head := e.takeBucket(overflowSlot)
	minTick := int64(head.At) >> granBits
	for ev := head.next; ev != nil; ev = ev.next {
		if t := int64(ev.At) >> granBits; t < minTick {
			minTick = t
		}
	}
	e.curTick = minTick
	for ev := head; ev != nil; {
		next := ev.next
		e.insert(ev)
		ev = next
	}
}

// The operating heap: a hand-rolled binary min-heap over (At, seq). It
// holds only the events of the current tick (≈16 ns of simulated time),
// so it stays a handful of entries deep instead of the whole event
// population — that, plus avoiding container/heap's interface calls, is
// where the wheel's speedup over the old global heap comes from.

func evLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *Event) {
	ev.slot = -1
	ev.heapIdx = len(e.cur)
	e.cur = append(e.cur, ev)
	e.siftUp(ev.heapIdx)
}

func (e *Engine) heapPopMin() *Event {
	h := e.cur
	ev := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.cur = h[:n]
	if n > 0 {
		h[0] = last
		last.heapIdx = 0
		e.siftDown(0)
	}
	ev.heapIdx = -1
	return ev
}

func (e *Engine) heapRemove(i int) {
	h := e.cur
	ev := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.cur = h[:n]
	if i < n {
		h[i] = last
		last.heapIdx = i
		e.siftDown(i)
		if last.heapIdx == i {
			e.siftUp(i)
		}
	}
	ev.heapIdx = -1
}

func (e *Engine) siftUp(i int) {
	h := e.cur
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heapIdx = i
		i = p
	}
	h[i] = ev
	ev.heapIdx = i
}

func (e *Engine) siftDown(i int) {
	h := e.cur
	n := len(h)
	ev := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && evLess(h[c+1], h[c]) {
			c++
		}
		if !evLess(h[c], ev) {
			break
		}
		h[i] = h[c]
		h[i].heapIdx = i
		i = c
	}
	h[i] = ev
	ev.heapIdx = i
}
