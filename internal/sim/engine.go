package sim

import "container/heap"

// Event is a scheduled callback. Events are ordered by time; ties are broken
// by insertion order so the simulation is fully deterministic.
//
// Lifetime: the engine recycles Event structs through a deterministic
// free-list (no sync.Pool — the engine is single-threaded). An *Event
// returned by Schedule/After is valid until its callback has run or it
// has been cancelled; after that the engine may reuse the struct for a
// future Schedule, so holders must drop their pointer (the idiomatic
// pattern is to nil the field as the first statement of the callback).
type Event struct {
	At  Time
	Fn  func()
	seq int64
	idx int // heap index, -1 when not queued
}

// Cancelled reports whether the event has been removed from the queue.
func (e *Event) Cancelled() bool { return e.idx < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the whole simulator runs in one goroutine, which on the
// target (CPU-bound, deterministic replay) is both simplest and fastest.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    int64
	nsteps int64
	// free recycles fired/cancelled events; the hot path allocates no
	// Event structs once the simulation reaches steady state.
	free []*Event
}

// NewEngine returns an engine positioned at the simulation epoch.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for perf
// accounting in benchmarks).
func (e *Engine) Steps() int64 { return e.nsteps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) is clamped to Now; this happens only from callbacks that
// compute a zero/negative delay and is harmless because tie-breaking keeps
// execution order deterministic. The returned event may be cancelled.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	var ev *Event
	if k := len(e.free); k > 0 {
		ev = e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		ev.At, ev.Fn = at, fn
	} else {
		ev = &Event{At: at, Fn: fn}
	}
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run delay after the current time.
func (e *Engine) After(delay Time, fn func()) *Event {
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a queued event and recycles it. Cancelling an
// already-run or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	e.release(ev)
}

// release returns an event to the free-list, dropping its closure so the
// captured state becomes collectable.
func (e *Engine) release(ev *Event) {
	ev.Fn = nil
	e.free = append(e.free, ev)
}

// Step runs the earliest event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.nsteps++
	fn := ev.Fn
	fn()
	// Recycle after the callback: any holder following the contract has
	// dropped its pointer by now (callbacks nil their field first).
	e.release(ev)
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (if the simulation got that far). Events scheduled later
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events while cond() holds and the queue is non-empty.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for len(e.queue) > 0 && cond() {
		e.Step()
	}
}
