package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator
// (xoshiro256** with a SplitMix64 seeder). Each simulated component owns
// its own RNG so that experiments are reproducible regardless of the order
// in which components draw numbers.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded from the given value. Distinct seeds
// give statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		r.s[i] = z
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 of any seed
	// cannot produce four zero words, but be defensive anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child generator; useful for giving each
// component its own stream from one experiment seed.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n), Fisher-Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard
// deviation, as a Time, truncated at lo and hi. Used e.g. for the Rosetta
// traversal latency whose measured distribution lies in [300, 400] ns.
func (r *RNG) Normal(mean, stddev, lo, hi Time) Time {
	for i := 0; i < 64; i++ {
		v := Time(math.Round(float64(mean) + r.NormFloat64()*float64(stddev)))
		if v >= lo && v <= hi {
			return v
		}
	}
	// Pathological parameters: clamp the mean.
	if mean < lo {
		return lo
	}
	if mean > hi {
		return hi
	}
	return mean
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Exponential returns an exponentially distributed duration with the given
// mean.
func (r *RNG) Exponential(mean Time) Time {
	return Time(math.Round(float64(mean) * r.ExpFloat64()))
}

// LogNormal returns a log-normally distributed duration whose underlying
// normal has the given mu and sigma (of the log, in natural units of mean).
// It is used for the heavy-tailed service times of the Tailbench proxies.
func (r *RNG) LogNormal(median Time, sigma float64) Time {
	v := float64(median) * math.Exp(sigma*r.NormFloat64())
	if v > float64(math.MaxInt64)/2 {
		v = float64(math.MaxInt64) / 2
	}
	return Time(math.Round(v))
}
