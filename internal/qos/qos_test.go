package qos

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/sim"
)

func twoClasses(min1, min2 float64) *Config {
	return &Config{Classes: []Class{
		{Name: "tc1", DSCP: 10, MinShare: min1, MinimalBias: 1},
		{Name: "tc2", DSCP: 20, MinShare: min2, MinimalBias: 1},
	}}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := twoClasses(0.8, 0.1).Validate(); err != nil {
		t.Errorf("80/10 invalid: %v", err)
	}
	bad := []*Config{
		{},
		twoClasses(0.8, 0.3),  // sums over 1
		twoClasses(-0.1, 0.1), // negative
		{Classes: []Class{{MinShare: 0.5, MaxShare: 0.3}}}, // max < min
		{Classes: []Class{{DSCP: 5}, {DSCP: 5}}},           // dup DSCP
		{Classes: []Class{{MaxShare: 1.5}}},                // max > 1
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestClassByDSCP(t *testing.T) {
	c := twoClasses(0.5, 0.2)
	if c.ClassByDSCP(10) != 0 || c.ClassByDSCP(20) != 1 {
		t.Error("DSCP mapping broken")
	}
	if c.ClassByDSCP(ethernet.DSCP(63)) != 0 {
		t.Error("unknown DSCP should map to class 0")
	}
}

func TestFIFOWithinClass(t *testing.T) {
	s := NewPortScheduler(DefaultConfig(), 200e9)
	for i := 0; i < 10; i++ {
		s.Enqueue(0, 100, i)
	}
	for i := 0; i < 10; i++ {
		v, wire, class, ok, _ := s.Dequeue(0, 1<<30)
		if !ok || v.(int) != i || wire != 100 || class != 0 {
			t.Fatalf("dequeue %d: v=%v wire=%d class=%d ok=%v", i, v, wire, class, ok)
		}
	}
	if _, _, _, ok, _ := s.Dequeue(0, 1<<30); ok {
		t.Error("empty scheduler returned a packet")
	}
}

func TestQueuedBytesAccounting(t *testing.T) {
	s := NewPortScheduler(twoClasses(0.5, 0.2), 200e9)
	s.Enqueue(0, 1000, "a")
	s.Enqueue(1, 500, "b")
	s.Enqueue(1, 500, "c")
	if s.TotalQueuedBytes() != 2000 || s.QueuedBytes(1) != 1000 || s.Len() != 3 {
		t.Fatalf("totals: %d %d %d", s.TotalQueuedBytes(), s.QueuedBytes(1), s.Len())
	}
	s.Dequeue(0, 1<<30)
	if s.TotalQueuedBytes()+s.QueuedBytes(0)+s.QueuedBytes(1) == 3000 {
		t.Error("accounting not updated")
	}
}

// Drain a backlog of both classes and confirm DRR approximates the
// configured shares (Fig. 14: 80% vs 10%+spare -> 80/20 split).
func TestDRRShares(t *testing.T) {
	s := NewPortScheduler(twoClasses(0.8, 0.1), 200e9)
	const wire = 4158
	for i := 0; i < 4000; i++ {
		s.Enqueue(0, wire, "tc1")
		s.Enqueue(1, wire, "tc2")
	}
	sent := [2]int64{}
	var total int64
	for total < 1000*wire {
		_, w, class, ok, _ := s.Dequeue(0, 1<<30)
		if !ok {
			t.Fatal("scheduler stalled with backlog")
		}
		sent[class] += int64(w)
		total += int64(w)
	}
	frac1 := float64(sent[0]) / float64(total)
	if frac1 < 0.75 || frac1 > 0.85 {
		t.Errorf("tc1 share = %.3f, want ~0.8", frac1)
	}
	frac2 := float64(sent[1]) / float64(total)
	if frac2 < 0.15 || frac2 > 0.25 {
		t.Errorf("tc2 share = %.3f, want ~0.2 (0.1 min + 0.1 spare)", frac2)
	}
}

// A class alone on the port gets all the bandwidth regardless of its share
// (work conservation; Fig. 14 ramp after job 1 finishes).
func TestWorkConservation(t *testing.T) {
	s := NewPortScheduler(twoClasses(0.8, 0.1), 200e9)
	for i := 0; i < 100; i++ {
		s.Enqueue(1, 4158, i)
	}
	for i := 0; i < 100; i++ {
		v, _, _, ok, _ := s.Dequeue(0, 1<<30)
		if !ok {
			t.Fatalf("stalled at %d with lone low-share class", i)
		}
		if v.(int) != i {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestStrictPriority(t *testing.T) {
	cfg := &Config{Classes: []Class{
		{Name: "low", DSCP: 1, Priority: 0, MinimalBias: 1},
		{Name: "high", DSCP: 2, Priority: 5, MinimalBias: 1},
	}}
	s := NewPortScheduler(cfg, 200e9)
	for i := 0; i < 10; i++ {
		s.Enqueue(0, 100, "low")
		s.Enqueue(1, 100, "high")
	}
	// All high-priority packets must drain before any low-priority one.
	for i := 0; i < 10; i++ {
		v, _, _, ok, _ := s.Dequeue(0, 1<<30)
		if !ok || v.(string) != "high" {
			t.Fatalf("dequeue %d = %v, want high", i, v)
		}
	}
	v, _, _, ok, _ := s.Dequeue(0, 1<<30)
	if !ok || v.(string) != "low" {
		t.Fatalf("low class starved: %v", v)
	}
}

func TestMaxShareCap(t *testing.T) {
	cfg := &Config{Classes: []Class{
		{Name: "capped", DSCP: 1, MinShare: 0.1, MaxShare: 0.1, MinimalBias: 1},
	}}
	s := NewPortScheduler(cfg, 200e9)
	for i := 0; i < 1000; i++ {
		s.Enqueue(0, 4158, i)
	}
	// Drain for 1 ms of simulated time; a 10% cap of 200 Gb/s allows
	// 2.5 MB/ms (plus a small burst).
	var sent int64
	now := sim.Time(0)
	for now < sim.Millisecond {
		_, w, _, ok, retry := s.Dequeue(now, 1<<30)
		if ok {
			sent += int64(w)
			continue
		}
		if retry == 0 {
			break
		}
		now = retry
	}
	limit := int64(0.1*200e9/8/1000) + 3*4200 // bytes in 1 ms + burst slack
	if sent > limit {
		t.Errorf("capped class sent %d bytes in 1ms, limit %d", sent, limit)
	}
	if sent < limit/2 {
		t.Errorf("capped class undershoots badly: %d of %d", sent, limit)
	}
}

func TestCreditBoundDequeue(t *testing.T) {
	s := NewPortScheduler(DefaultConfig(), 200e9)
	s.Enqueue(0, 5000, "big")
	s.Enqueue(0, 5000, "big2")
	// Insufficient credit: nothing eligible, no cap-retry either.
	_, _, _, ok, retry := s.Dequeue(0, 100)
	if ok || retry != 0 {
		t.Fatalf("credit-bound dequeue: ok=%v retry=%v", ok, retry)
	}
	// With credit it flows.
	v, _, _, ok, _ := s.Dequeue(0, 5000)
	if !ok || v.(string) != "big" {
		t.Fatalf("dequeue with credit failed: %v", v)
	}
}

func TestPeekSource(t *testing.T) {
	s := NewPortScheduler(twoClasses(0.5, 0.2), 200e9)
	s.Enqueue(0, 10, 1)
	s.Enqueue(1, 10, 2)
	s.Enqueue(0, 10, 3)
	var seen []int
	s.PeekSource(func(v any) bool {
		seen = append(seen, v.(int))
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("peeked %v", seen)
	}
	// Early stop.
	n := 0
	s.PeekSource(func(v any) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop peeked %d", n)
	}
}

func TestCompaction(t *testing.T) {
	// Heavy enqueue/dequeue cycles must not leak (head compaction).
	s := NewPortScheduler(DefaultConfig(), 200e9)
	for round := 0; round < 100; round++ {
		for i := 0; i < 200; i++ {
			s.Enqueue(0, 64, i)
		}
		for i := 0; i < 200; i++ {
			if _, _, _, ok, _ := s.Dequeue(0, 1<<30); !ok {
				t.Fatal("stalled")
			}
		}
	}
	if s.Len() != 0 || s.TotalQueuedBytes() != 0 {
		t.Errorf("leftover: len=%d bytes=%d", s.Len(), s.TotalQueuedBytes())
	}
}
