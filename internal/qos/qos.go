// Package qos implements Slingshot's traffic classes (§II-E of the paper):
// DSCP-tagged classes with administrator-tunable priority, minimum
// bandwidth guarantee, maximum bandwidth cap, ordering and lossiness flags,
// and a routing bias. Egress ports schedule across classes with a
// deficit-round-robin (DRR) scheduler whose quanta implement the minimum
// shares; bandwidth left unallocated by the configuration is donated to the
// active class with the lowest share, reproducing the behaviour measured in
// Fig. 14.
package qos

import (
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/sim"
)

// Class is one traffic class. The zero value is a usable best-effort class.
type Class struct {
	Name     string
	DSCP     ethernet.DSCP // codepoint that selects this class
	Priority int           // higher value is served strictly first
	MinShare float64       // guaranteed fraction of link bandwidth [0,1]
	MaxShare float64       // cap fraction; 0 means uncapped
	Ordered  bool          // require in-order delivery (restricts adaptive routing)
	Lossy    bool          // packets may be dropped instead of back-pressured
	// MinimalBias nudges adaptive routing towards minimal paths for this
	// class (1 = default bias, >1 = stronger preference for minimal).
	MinimalBias float64
}

// Config is the set of traffic classes configured on a system.
type Config struct {
	Classes []Class
}

// DefaultConfig returns a single best-effort class, the state of a system
// where no job asked for QoS.
func DefaultConfig() *Config {
	return &Config{Classes: []Class{{Name: "best-effort", MinimalBias: 1}}}
}

// Validate checks the administrator invariant from §II-E: the guaranteed
// minimum bandwidths must not exceed the available bandwidth.
func (c *Config) Validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("qos: no traffic classes")
	}
	var sum float64
	seen := make(map[ethernet.DSCP]bool)
	for i, cl := range c.Classes {
		if cl.MinShare < 0 || cl.MinShare > 1 {
			return fmt.Errorf("qos: class %d MinShare %v out of [0,1]", i, cl.MinShare)
		}
		if cl.MaxShare < 0 || cl.MaxShare > 1 {
			return fmt.Errorf("qos: class %d MaxShare %v out of [0,1]", i, cl.MaxShare)
		}
		if cl.MaxShare > 0 && cl.MaxShare < cl.MinShare {
			return fmt.Errorf("qos: class %d MaxShare < MinShare", i)
		}
		if seen[cl.DSCP] {
			return fmt.Errorf("qos: duplicate DSCP %d", cl.DSCP)
		}
		seen[cl.DSCP] = true
		sum += cl.MinShare
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("qos: guaranteed minimum shares sum to %v > 1", sum)
	}
	return nil
}

// ClassByDSCP returns the index of the class handling the codepoint, or 0
// (the first class) when no class matches — unclassified traffic shares
// the dynamically allocated remainder (§II-E).
func (c *Config) ClassByDSCP(d ethernet.DSCP) int {
	for i, cl := range c.Classes {
		if cl.DSCP == d {
			return i
		}
	}
	return 0
}

// entry is one queued packet.
type entry struct {
	v    any
	wire int
}

// PortScheduler arbitrates one egress port across traffic classes.
// It is DRR with per-round quanta proportional to each class's effective
// share, strict priority between priority levels, and token-bucket caps
// for MaxShare.
type PortScheduler struct {
	cfg      *Config
	linkBits int64
	queues   [][]entry
	head     []int // index of first live entry in queues[c] (amortized pop)
	qbytes   []int64
	deficit  []int64
	rr       int // round-robin cursor
	// MaxShare token buckets.
	sent       []int64
	bucketFrom sim.Time
	totalQ     int64
	count      int
	// Per-Dequeue scratch (the scheduler is single-threaded per network;
	// reusing these keeps the per-packet path allocation-free).
	activeBuf []bool
	shareBuf  []float64
}

// quantumBase is the DRR base quantum (one max-size frame).
const quantumBase = 4200

// NewPortScheduler returns a scheduler for a port of the given bandwidth.
func NewPortScheduler(cfg *Config, linkBits int64) *PortScheduler {
	n := len(cfg.Classes)
	return &PortScheduler{
		cfg:       cfg,
		linkBits:  linkBits,
		queues:    make([][]entry, n),
		head:      make([]int, n),
		qbytes:    make([]int64, n),
		deficit:   make([]int64, n),
		sent:      make([]int64, n),
		activeBuf: make([]bool, n),
		shareBuf:  make([]float64, n),
	}
}

// Enqueue appends a packet of the given wire size to a class queue.
func (s *PortScheduler) Enqueue(class, wire int, v any) {
	s.queues[class] = append(s.queues[class], entry{v: v, wire: wire})
	s.qbytes[class] += int64(wire)
	s.totalQ += int64(wire)
	s.count++
}

// Len returns the number of queued packets.
func (s *PortScheduler) Len() int { return s.count }

// QueuedBytes returns the bytes queued in one class.
func (s *PortScheduler) QueuedBytes(class int) int64 { return s.qbytes[class] }

// TotalQueuedBytes returns the bytes queued across all classes. This is the
// quantity the adaptive-routing congestion estimate reads ("the total depth
// of the request queues of each output port", §II-C).
func (s *PortScheduler) TotalQueuedBytes() int64 { return s.totalQ }

// effectiveShare computes each class's share of the link for this round:
// its MinShare, plus — for the active class with the smallest share — all
// bandwidth not guaranteed to anyone (§II-E / Fig. 14). Classes with no
// guarantee get a small epsilon so they are never starved.
func (s *PortScheduler) effectiveShare(active []bool) []float64 {
	share := s.shareBuf
	var allocated float64
	for i, cl := range s.cfg.Classes {
		share[i] = cl.MinShare
		allocated += cl.MinShare
	}
	spare := 1 - allocated
	if spare > 0 {
		// Donate the spare to the active class with the lowest share.
		lowest := -1
		for i := range share {
			if !active[i] {
				continue
			}
			if lowest < 0 || share[i] < share[lowest] {
				lowest = i
			}
		}
		if lowest >= 0 {
			share[lowest] += spare
		}
	}
	for i := range share {
		if active[i] && share[i] < 0.01 {
			share[i] = 0.01
		}
	}
	return share
}

// capBlocked reports whether class c is over its MaxShare token budget at
// time now, and if so when it becomes eligible again.
func (s *PortScheduler) capBlocked(c int, now sim.Time) (bool, sim.Time) {
	maxShare := s.cfg.Classes[c].MaxShare
	if maxShare <= 0 {
		return false, 0
	}
	elapsed := now - s.bucketFrom
	// Allow a one-frame burst so the cap cannot deadlock the port.
	budget := int64(float64(s.linkBits/8)*maxShare*elapsed.Seconds()) + quantumBase
	if s.sent[c] < budget {
		return false, 0
	}
	// Time until the bucket refills enough for the next frame.
	deficit := float64(s.sent[c] - budget + quantumBase)
	wait := sim.FromSeconds(deficit / (float64(s.linkBits/8) * maxShare))
	if wait < sim.Nanosecond {
		wait = sim.Nanosecond
	}
	return true, now + wait
}

// Dequeue picks the next packet to transmit at time now, honoring strict
// priority, DRR minimum shares, and MaxShare caps. maxWire limits the
// packet size that can currently be accepted downstream (credits); pass a
// large value when unconstrained. It returns ok=false when nothing is
// eligible; retry is then the earliest time a cap unblocks (zero when the
// scheduler is simply empty or credit-bound).
//simlint:hotpath
func (s *PortScheduler) Dequeue(now sim.Time, maxWire int) (v any, wire int, class int, ok bool, retry sim.Time) {
	if s.count == 0 {
		return nil, 0, 0, false, 0
	}
	active := s.activeBuf
	for i := range active {
		active[i] = s.qbytes[i] > 0
	}
	share := s.effectiveShare(active)

	// Strict priority: consider priority levels from highest down.
	bestPrio := minIntQ
	for i, cl := range s.cfg.Classes {
		if active[i] && cl.Priority > bestPrio {
			bestPrio = cl.Priority
		}
	}
	var earliest sim.Time
	for prio := bestPrio; ; {
		// DRR pass over active classes at this priority.
		served := s.drrPass(now, prio, share, active, maxWire, &earliest)
		if served.ok {
			return served.v, served.wire, served.class, true, 0
		}
		// Move to the next lower priority that has active classes.
		next := minIntQ
		for i, cl := range s.cfg.Classes {
			if active[i] && cl.Priority < prio && cl.Priority > next {
				next = cl.Priority
			}
		}
		if next == minIntQ {
			break
		}
		prio = next
	}
	return nil, 0, 0, false, earliest
}

const minIntQ = -1 << 31

type dequeued struct {
	v     any
	wire  int
	class int
	ok    bool
}

// drrPass attempts one deficit-round-robin selection among the active
// classes at the given priority level.
func (s *PortScheduler) drrPass(now sim.Time, prio int, share []float64, active []bool, maxWire int, earliest *sim.Time) dequeued {
	n := len(s.cfg.Classes)
	// Sweep the active classes, topping up deficits by one quantum between
	// sweeps, until something is served or nothing can be (cap-blocked or
	// credit-bound). Each top-up adds at least 64 bytes of deficit to every
	// active class, so the loop is bounded by maxFrame/64 sweeps and the
	// scheduler is work-conserving even for classes with tiny shares.
	const maxSweeps = 2 + quantumBase/32
	for sweep := 0; sweep < maxSweeps; sweep++ {
		for k := 0; k < n; k++ {
			c := (s.rr + k) % n
			if !active[c] || s.cfg.Classes[c].Priority != prio {
				continue
			}
			if blocked, at := s.capBlocked(c, now); blocked {
				if *earliest == 0 || at < *earliest {
					*earliest = at
				}
				continue
			}
			e := s.queues[c][s.head[c]]
			if e.wire > maxWire {
				continue // credit-bound; port will retry on credit arrival
			}
			if s.deficit[c] < int64(e.wire) {
				continue
			}
			// Serve.
			s.deficit[c] -= int64(e.wire)
			s.popHead(c)
			s.sent[c] += int64(e.wire)
			s.rr = (c + 1) % n
			return dequeued{v: e.v, wire: e.wire, class: c, ok: true}
		}
		// Nothing served this sweep: check whether any class could still be
		// served after more top-ups (active, right priority, not blocked).
		anyViable := false
		for c := 0; c < n; c++ {
			if !active[c] || s.cfg.Classes[c].Priority != prio {
				continue
			}
			if blocked, _ := s.capBlocked(c, now); blocked {
				continue
			}
			if s.queues[c][s.head[c]].wire <= maxWire {
				anyViable = true
				break
			}
		}
		if !anyViable {
			break
		}
		for c := 0; c < n; c++ {
			if active[c] && s.cfg.Classes[c].Priority == prio {
				q := int64(share[c] * quantumBase * 2)
				if q < 64 {
					q = 64
				}
				s.deficit[c] += q
				// Bound accumulated deficit so an idle class cannot
				// hoard an unbounded burst allowance.
				if s.deficit[c] > 16*quantumBase {
					s.deficit[c] = 16 * quantumBase
				}
			}
		}
	}
	return dequeued{}
}

func (s *PortScheduler) popHead(c int) {
	e := s.queues[c][s.head[c]]
	s.queues[c][s.head[c]] = entry{}
	s.head[c]++
	s.qbytes[c] -= int64(e.wire)
	s.totalQ -= int64(e.wire)
	s.count--
	// Compact the queue once the dead prefix dominates.
	if s.head[c] > 64 && s.head[c]*2 >= len(s.queues[c]) {
		s.queues[c] = append(s.queues[c][:0], s.queues[c][s.head[c]:]...)
		s.head[c] = 0
	}
}

// PeekSource lets the fabric inspect queued packets (e.g. to find the
// sources contributing to endpoint congestion, §II-D). fn is called for
// every queued packet until it returns false.
func (s *PortScheduler) PeekSource(fn func(v any) bool) {
	for c := range s.queues {
		for i := s.head[c]; i < len(s.queues[c]); i++ {
			if !fn(s.queues[c][i].v) {
				return
			}
		}
	}
}
