// Package stats implements the statistical machinery of the paper's
// methodology section: quantiles, boxplot summaries (defined exactly as in
// the caption of Fig. 4), confidence-interval-driven run-length control
// (following Hoefler & Belli, "Scientific benchmarking of parallel computing
// systems", SC'15 — reference [52] of the paper), and the congestion impact
// metric C = Tc/Ti from GPCNet (reference [6]).
package stats

import (
	"math"
	"sort"
)

// Sample is an accumulating collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample; an optional capacity hint avoids
// re-allocation in tight measurement loops.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// FromSlice wraps the given values (the slice is copied).
func FromSlice(xs []float64) *Sample {
	s := NewSample(len(xs))
	s.xs = append(s.xs, xs...)
	return s
}

// Reset empties the sample, keeping its backing storage for reuse (the
// grid harness recycles accumulators across cells in per-worker arenas).
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Cap returns how many observations fit without re-allocating.
func (s *Sample) Cap() int { return cap(s.xs) }

// Values returns the raw observations (not a copy; do not mutate).
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between closest ranks (type-7, the common default).
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Percentile is shorthand for Quantile(p/100).
func (s *Sample) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// BoxStats is the five-number summary used in Fig. 4 of the paper:
// Q1 and Q3 are the quartiles, IQR = Q3-Q1, S is the smallest sample
// strictly greater than Q1 - 1.5*IQR, and L is the largest sample strictly
// smaller than Q3 + 1.5*IQR (the caption's "greater than" / "smaller than"
// are strict: a sample sitting exactly on a fence is an outlier).
type BoxStats struct {
	S, Q1, Median, Q3, L float64
}

// Box computes the Fig. 4 boxplot summary.
func (s *Sample) Box() BoxStats {
	b := BoxStats{
		Q1:     s.Quantile(0.25),
		Median: s.Median(),
		Q3:     s.Quantile(0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.S, b.L = whiskers(s.xs, loFence, hiFence, true)
	if b.S > b.L || math.IsInf(b.S, 1) || math.IsInf(b.L, -1) {
		// Degenerate distributions (zero IQR with ties exactly on a fence)
		// leave a whisker with no strictly qualifying sample; fall back to
		// inclusive fences so the whiskers stay ordered and within the data.
		b.S, b.L = whiskers(s.xs, loFence, hiFence, false)
	}
	if math.IsInf(b.S, 1) {
		b.S = math.NaN()
	}
	if math.IsInf(b.L, -1) {
		b.L = math.NaN()
	}
	return b
}

// whiskers returns the extreme samples within the fences, using strict
// comparisons when strict is set.
func whiskers(xs []float64, loFence, hiFence float64, strict bool) (s, l float64) {
	s, l = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		loOK, hiOK := x >= loFence, x <= hiFence
		if strict {
			loOK, hiOK = x > loFence, x < hiFence
		}
		if loOK && x < s {
			s = x
		}
		if hiOK && x > l {
			l = x
		}
	}
	return s, l
}

// MedianCI returns a distribution-free (binomial/order-statistic) 95%
// confidence interval for the median. For small n the interval spans the
// whole sample.
func (s *Sample) MedianCI() (lo, hi float64) {
	n := len(s.xs)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	s.sort()
	if n < 6 {
		return s.xs[0], s.xs[n-1]
	}
	// Normal approximation of the binomial order statistics: ranks
	// n/2 ± 1.96*sqrt(n)/2.
	d := 1.96 * math.Sqrt(float64(n)) / 2
	loIdx := int(math.Floor(float64(n)/2 - d))
	hiIdx := int(math.Ceil(float64(n)/2 + d))
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx >= n {
		hiIdx = n - 1
	}
	return s.xs[loIdx], s.xs[hiIdx]
}

// Converged implements the paper's stopping rule: the 95% CI of the median
// must lie within tol (e.g. 0.05 for 5%) of the median. A zero median with
// a zero-width interval also counts as converged.
func (s *Sample) Converged(tol float64) bool {
	if s.Len() < 6 {
		return false
	}
	med := s.Median()
	lo, hi := s.MedianCI()
	if med == 0 {
		return hi-lo == 0
	}
	return (med-lo) <= tol*math.Abs(med) && (hi-med) <= tol*math.Abs(med)
}

// CongestionImpact is the GPCNet metric used throughout Section III:
// C = Tc / Ti where Ti is the mean isolated execution time and Tc the mean
// time under congestion. Values below 1 (measurement noise) are clamped to
// 1, matching how the paper's heatmaps read.
func CongestionImpact(isolated, congested float64) float64 {
	if isolated <= 0 {
		return math.NaN()
	}
	c := congested / isolated
	if c < 1 {
		return 1
	}
	return c
}

// Histogram bins observations into equal-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
	Under  int // observations below Lo
	Over   int // observations above Hi
	Bad    int // NaN observations (counted in N, never binned)
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		buckets = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.N++
	switch {
	case math.IsNaN(x):
		// A NaN fails every bound check and would fall through to the
		// bucket computation, where int(NaN) is a negative index.
		h.Bad++
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Density returns the fraction of observations in bucket i.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
