package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMedian(t *testing.T) {
	s := FromSlice([]float64{1, 2, 3, 4, 100})
	if got := s.Mean(); got != 22 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Median(); got != 3 {
		t.Errorf("Median = %v", got)
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(0)
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Median()) ||
		!math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sample should give NaN")
	}
	if s.Converged(0.05) {
		t.Error("empty sample cannot be converged")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := FromSlice([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {0.75, 32.5},
		{-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := FromSlice(xs)
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := FromSlice(xs)
		qq := math.Mod(math.Abs(q), 1)
		v := s.Quantile(qq)
		return v >= s.Min() && v <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	s := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Variance(); !almost(got, 32.0/7.0, 1e-9) {
		t.Errorf("Variance = %v", got)
	}
	if got := s.StdDev(); !almost(got, math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestBoxStats(t *testing.T) {
	// 1..100 plus an extreme outlier: whiskers must exclude the outlier.
	s := NewSample(101)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	s.Add(10000)
	b := s.Box()
	if b.Median < 50 || b.Median > 52 {
		t.Errorf("median = %v", b.Median)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 {
		t.Errorf("quartile ordering: %+v", b)
	}
	if b.L >= 10000 {
		t.Errorf("L should exclude the outlier: %v", b.L)
	}
	if b.S != 1 {
		t.Errorf("S = %v, want 1", b.S)
	}
}

func TestBoxStatsInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 4 {
			return true
		}
		s := FromSlice(xs)
		b := s.Box()
		// Quartiles are ordered; whiskers are ordered, bracket the box
		// loosely, and stay within the data range. (S <= Q1 does not hold
		// in general because quartiles are interpolated while whiskers are
		// actual samples.)
		return b.Q1 <= b.Median && b.Median <= b.Q3 &&
			b.S <= b.L && b.S >= s.Min() && b.L <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMedianCIBrackets(t *testing.T) {
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	lo, hi := s.MedianCI()
	med := s.Median()
	if lo > med || hi < med {
		t.Errorf("CI [%v,%v] does not bracket median %v", lo, hi, med)
	}
	// With 1000 uniform points the CI should be reasonably tight.
	if hi-lo > 100 {
		t.Errorf("CI too wide: [%v,%v]", lo, hi)
	}
}

func TestConvergedTightSample(t *testing.T) {
	s := NewSample(100)
	for i := 0; i < 100; i++ {
		s.Add(100 + float64(i%3)) // nearly constant
	}
	if !s.Converged(0.05) {
		t.Error("tight sample should converge")
	}
}

func TestConvergedWideSample(t *testing.T) {
	s := NewSample(10)
	for i := 0; i < 10; i++ {
		s.Add(math.Pow(10, float64(i)))
	}
	if s.Converged(0.05) {
		t.Error("wildly spread sample should not converge at n=10")
	}
}

func TestConvergedNeedsMinimumN(t *testing.T) {
	s := FromSlice([]float64{5, 5, 5})
	if s.Converged(0.05) {
		t.Error("n=3 should not converge regardless of spread")
	}
}

func TestCongestionImpact(t *testing.T) {
	if got := CongestionImpact(10, 25); got != 2.5 {
		t.Errorf("C = %v", got)
	}
	if got := CongestionImpact(10, 9); got != 1 {
		t.Errorf("C should clamp to 1, got %v", got)
	}
	if got := CongestionImpact(0, 5); !math.IsNaN(got) {
		t.Errorf("C with zero isolated time = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	h.Add(-5)
	h.Add(100)
	if h.N != 102 || h.Under != 1 || h.Over != 1 {
		t.Errorf("N=%d Under=%d Over=%d", h.N, h.Under, h.Over)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 10 {
			t.Errorf("bucket %d = %d", i, h.Counts[i])
		}
		want := float64(i) + 0.5
		if got := h.BucketCenter(i); !almost(got, want, 1e-9) {
			t.Errorf("center %d = %v", i, got)
		}
	}
	if got := h.Density(0); !almost(got, 10.0/102, 1e-9) {
		t.Errorf("Density = %v", got)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(10) // exactly Hi lands in the last bucket
	if h.Counts[4] != 1 {
		t.Errorf("Hi edge bucket = %v", h.Counts)
	}
	h2 := NewHistogram(0, 1, 0) // degenerate bucket count
	h2.Add(0.5)
	if len(h2.Counts) != 1 || h2.Counts[0] != 1 {
		t.Errorf("degenerate histogram = %+v", h2)
	}
}

func TestHistogramNaN(t *testing.T) {
	// A NaN observation must not panic (int(NaN) is a negative bucket
	// index) and must be counted under Bad, not in any bucket.
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(5)
	h.Add(math.NaN())
	if h.Bad != 2 {
		t.Errorf("Bad = %d, want 2", h.Bad)
	}
	if h.N != 3 || h.Under != 0 || h.Over != 0 {
		t.Errorf("N=%d Under=%d Over=%d", h.N, h.Under, h.Over)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 1 {
		t.Errorf("binned %d observations, want 1", total)
	}
	// Infinities still land in the overflow counters.
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	if h.Under != 1 || h.Over != 1 || h.Bad != 2 {
		t.Errorf("after Inf: Under=%d Over=%d Bad=%d", h.Under, h.Over, h.Bad)
	}
}

func TestBoxFencesAreStrict(t *testing.T) {
	// Sorted: [3 10 12 14 16 23], Q1 = 10.5, Q3 = 15.5, IQR = 5, so the
	// fences are exactly 3 and 23 — both present in the data. The Fig. 4
	// caption's "greater than" / "smaller than" are strict, so samples
	// sitting exactly on a fence are outliers and excluded.
	s := FromSlice([]float64{3, 10, 12, 14, 16, 23})
	b := s.Box()
	if b.S != 10 {
		t.Errorf("S = %v, want 10 (3 sits exactly on the low fence)", b.S)
	}
	if b.L != 16 {
		t.Errorf("L = %v, want 16 (23 sits exactly on the high fence)", b.L)
	}
}

func TestBoxDegenerateTies(t *testing.T) {
	// Zero IQR puts both fences on the tied value; strict fences would
	// exclude everything (or cross), so Box falls back to inclusive ones.
	s := FromSlice([]float64{0, 2, 2, 2, 2, 4})
	b := s.Box()
	if b.S != 2 || b.L != 2 {
		t.Errorf("degenerate whiskers = (%v, %v), want (2, 2)", b.S, b.L)
	}
	// All-equal samples keep well-defined whiskers too.
	c := FromSlice([]float64{7, 7, 7, 7}).Box()
	if c.S != 7 || c.L != 7 {
		t.Errorf("constant whiskers = (%v, %v), want (7, 7)", c.S, c.L)
	}
}

func TestSampleSortStability(t *testing.T) {
	// Quantile must not corrupt subsequent Adds.
	s := FromSlice([]float64{3, 1, 2})
	_ = s.Median()
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Errorf("Min after Add = %v", got)
	}
	vals := append([]float64(nil), s.Values()...)
	sort.Float64s(vals)
	if vals[0] != 0 || vals[3] != 3 {
		t.Errorf("values = %v", vals)
	}
}
