package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func checkPartition(t *testing.T, total, victims int, v, a []topology.NodeID) {
	t.Helper()
	if len(v) != victims || len(a) != total-victims {
		t.Fatalf("sizes: victim %d (want %d), aggressor %d (want %d)",
			len(v), victims, len(a), total-victims)
	}
	seen := make(map[topology.NodeID]int)
	for _, n := range v {
		seen[n]++
	}
	for _, n := range a {
		seen[n]++
	}
	if len(seen) != total {
		t.Fatalf("partition covers %d nodes, want %d", len(seen), total)
	}
	for n, c := range seen {
		if c != 1 || int(n) < 0 || int(n) >= total {
			t.Fatalf("node %d appears %d times", n, c)
		}
	}
}

func TestLinearSplit(t *testing.T) {
	v, a := Split(10, 3, Linear, nil)
	checkPartition(t, 10, 3, v, a)
	for i, n := range v {
		if int(n) != i {
			t.Errorf("linear victim[%d] = %d", i, n)
		}
	}
	if int(a[0]) != 3 {
		t.Errorf("first aggressor = %d", a[0])
	}
}

func TestInterleavedSplit(t *testing.T) {
	v, a := Split(10, 5, Interleaved, nil)
	checkPartition(t, 10, 5, v, a)
	// 50/50 interleave alternates strictly.
	for i := 0; i+1 < len(v); i++ {
		if v[i+1]-v[i] != 2 {
			t.Errorf("50/50 interleave not alternating: %v", v)
			break
		}
	}
	// Skewed interleave still spreads: the victim's nodes should not all
	// be in the first half.
	v, a = Split(100, 10, Interleaved, nil)
	checkPartition(t, 100, 10, v, a)
	inSecondHalf := 0
	for _, n := range v {
		if int(n) >= 50 {
			inSecondHalf++
		}
	}
	if inSecondHalf < 3 {
		t.Errorf("interleaved victims clustered: %v", v)
	}
}

func TestRandomSplit(t *testing.T) {
	rng := sim.NewRNG(42)
	v, a := Split(100, 30, Random, rng)
	checkPartition(t, 100, 30, v, a)
	// Different seeds give different draws.
	v2, _ := Split(100, 30, Random, sim.NewRNG(43))
	same := 0
	m := make(map[topology.NodeID]bool)
	for _, n := range v {
		m[n] = true
	}
	for _, n := range v2 {
		if m[n] {
			same++
		}
	}
	if same == 30 {
		t.Error("random split identical across seeds")
	}
	// Nil rng must not crash.
	v3, a3 := Split(10, 4, Random, nil)
	checkPartition(t, 10, 4, v3, a3)
}

func TestSplitEdgeCases(t *testing.T) {
	v, a := Split(5, 0, Linear, nil)
	checkPartition(t, 5, 0, v, a)
	v, a = Split(5, 5, Linear, nil)
	checkPartition(t, 5, 5, v, a)
	v, a = Split(5, 9, Linear, nil) // clamps
	checkPartition(t, 5, 5, v, a)
	v, a = Split(5, -1, Interleaved, nil)
	checkPartition(t, 5, 0, v, a)
}

func TestSplitProperty(t *testing.T) {
	f := func(rawTotal, rawVict uint8, policy uint8) bool {
		total := int(rawTotal)%200 + 1
		victims := int(rawVict) % (total + 1)
		p := Policy(policy % 3)
		v, a := Split(total, victims, p, sim.NewRNG(uint64(rawTotal)))
		if len(v) != victims || len(a) != total-victims {
			return false
		}
		seen := make(map[topology.NodeID]bool)
		for _, n := range v {
			seen[n] = true
		}
		for _, n := range a {
			if seen[n] {
				return false
			}
			seen[n] = true
		}
		return len(seen) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSharedSwitches(t *testing.T) {
	d := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
	})
	// Linear split at a switch boundary shares no switches.
	v, a := Split(d.Nodes(), 16, Linear, nil)
	if got := SharedSwitches(d, v, a); got != 0 {
		t.Errorf("aligned linear split shares %d switches", got)
	}
	// Interleaved 50/50 shares every switch.
	v, a = Split(d.Nodes(), 16, Interleaved, nil)
	if got := SharedSwitches(d, v, a); got != d.Switches() {
		t.Errorf("interleaved shares %d switches, want %d", got, d.Switches())
	}
}

// SharedSwitches takes the backend-neutral Topology interface and its
// dense-bitmap scan must not depend on node order.
func TestSharedSwitchesGeneric(t *testing.T) {
	topos := []topology.Topology{
		topology.MustBuild(topology.Config{
			Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		}),
		topology.MustBuild(topology.FatTreeFor(32)),
		topology.MustBuild(topology.HyperXFor(32)),
	}
	for _, tp := range topos {
		v, a := Split(32, 16, Interleaved, nil)
		want := SharedSwitches(tp, v, a)
		// Reversing both sets must not change the count.
		rev := func(ns []topology.NodeID) []topology.NodeID {
			out := make([]topology.NodeID, len(ns))
			for i, n := range ns {
				out[len(ns)-1-i] = n
			}
			return out
		}
		if got := SharedSwitches(tp, rev(v), rev(a)); got != want {
			t.Errorf("%s: order-dependent SharedSwitches: %d vs %d", tp.Kind(), got, want)
		}
		if want == 0 {
			t.Errorf("%s: interleaved split unexpectedly shares nothing", tp.Kind())
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Linear.String() != "linear" || Interleaved.String() != "interleaved" ||
		Random.String() != "random" || Policy(9).String() != "unknown" {
		t.Error("policy strings wrong")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"linear", "interleaved", "random"} {
		p, err := ParsePolicy(s)
		if err != nil || p.String() != s {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
}
