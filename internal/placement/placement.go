// Package placement implements the three victim/aggressor node-allocation
// policies of Fig. 7 in the paper: linear, interleaved, and random. The
// allocation determines how many switches and groups the two jobs share,
// which directly modulates how much the aggressor's congestion leaks into
// the victim.
package placement

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Policy selects how nodes are split between victim and aggressor.
type Policy int

const (
	// Linear assigns the first v nodes to the victim and the rest to the
	// aggressor.
	Linear Policy = iota
	// Interleaved alternates victim and aggressor nodes proportionally.
	Interleaved
	// Random assigns nodes to the victim uniformly at random.
	Random
)

func (p Policy) String() string {
	switch p {
	case Linear:
		return "linear"
	case Interleaved:
		return "interleaved"
	case Random:
		return "random"
	}
	return "unknown"
}

// ParsePolicy converts a string flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "linear":
		return Linear, nil
	case "interleaved":
		return Interleaved, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("placement: unknown policy %q", s)
}

// Split divides the nodes [0, total) into a victim set of size victims and
// an aggressor set holding the remainder, according to the policy. rng is
// used only by Random (and may be nil for the other policies). The returned
// slices are sorted in the placement's natural order.
func Split(total, victims int, policy Policy, rng *sim.RNG) (victim, aggressor []topology.NodeID) {
	return SplitBuf(nil, total, victims, policy, rng)
}

// SplitBuf is Split backed by a caller-owned buffer: when cap(buf) is at
// least total, the two returned slices alias disjoint, capacity-capped
// regions of it and the call allocates no node storage. A short (or nil)
// buf falls back to fresh slices. The grid harness passes a per-worker
// arena buffer so repeated cells reuse one allocation.
func SplitBuf(buf []topology.NodeID, total, victims int, policy Policy, rng *sim.RNG) (victim, aggressor []topology.NodeID) {
	if victims < 0 {
		victims = 0
	}
	if victims > total {
		victims = total
	}
	if cap(buf) >= total {
		buf = buf[:total]
		// Three-index slicing walls the regions off from each other: an
		// append past either region's capacity reallocates instead of
		// silently overwriting its neighbour.
		victim = buf[0:0:victims]
		aggressor = buf[victims:victims:total]
	} else {
		victim = make([]topology.NodeID, 0, victims)
		aggressor = make([]topology.NodeID, 0, total-victims)
	}
	switch policy {
	case Linear:
		for n := 0; n < total; n++ {
			if n < victims {
				victim = append(victim, topology.NodeID(n))
			} else {
				aggressor = append(aggressor, topology.NodeID(n))
			}
		}
	case Interleaved:
		// Proportional interleave: walk the nodes accumulating victim
		// credit so that any prefix holds ~victims/total victim nodes.
		acc := 0
		for n := 0; n < total; n++ {
			acc += victims
			if acc >= total && len(victim) < victims {
				acc -= total
				victim = append(victim, topology.NodeID(n))
			} else {
				aggressor = append(aggressor, topology.NodeID(n))
			}
		}
		// Rounding can leave a victim short; steal from the aggressor tail.
		for len(victim) < victims {
			last := aggressor[len(aggressor)-1]
			aggressor = aggressor[:len(aggressor)-1]
			victim = append(victim, last)
		}
	case Random:
		if rng == nil {
			rng = sim.NewRNG(0)
		}
		perm := rng.Perm(total)
		pick := make([]bool, total)
		for _, i := range perm[:victims] {
			pick[i] = true
		}
		for n := 0; n < total; n++ {
			if pick[n] {
				victim = append(victim, topology.NodeID(n))
			} else {
				aggressor = append(aggressor, topology.NodeID(n))
			}
		}
	}
	return victim, aggressor
}

// SharedSwitches counts the switches that host nodes from both sets — a
// proxy for how entangled the two jobs are. Switch IDs are dense
// (0..Switches()-1 by the Topology contract), so membership is two flat
// bitmaps indexed by SwitchID: no map iteration, no per-call hashing, and
// a deterministic scan order regardless of input order.
func SharedSwitches(t topology.Topology, a, b []topology.NodeID) int {
	marks := make([]bool, 2*t.Switches())
	inA, seen := marks[:t.Switches()], marks[t.Switches():]
	for _, n := range a {
		inA[t.SwitchOf(n)] = true
	}
	shared := 0
	for _, n := range b {
		s := t.SwitchOf(n)
		if inA[s] && !seen[s] {
			seen[s] = true
			shared++
		}
	}
	return shared
}
