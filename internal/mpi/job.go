package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Job is a set of MPI ranks running on a subset of a network's nodes.
type Job struct {
	Net   *fabric.Network
	Nodes []topology.NodeID
	PPN   int
	Stack Stack
	Class int   // traffic class index for bulk traffic
	Tag   int64 // job label carried on every message
	// LatencyClass, when >= 0, carries small messages (<= LatencyClassBytes)
	// on a separate traffic class — the §II-E optimization of assigning
	// latency-sensitive collectives like MPI_Barrier and MPI_Allreduce to
	// a high-priority, low-bandwidth class while bulk transfers ride a
	// high-bandwidth one.
	LatencyClass int
	// Bulk marks every transfer this job sends as steady background
	// traffic (fabric.SendOpts.Bulk) — a candidate for the flow-level
	// fast path on hybrid-fidelity networks. Ignored at packet fidelity.
	Bulk bool

	// opFree recycles sendOps across transfers. Safe without locking:
	// send() runs from engine callbacks, sendOp.OnEvent on the control
	// engine, and delivery callbacks are deferred to epoch barriers under
	// the sharded engine — all serialized with respect to each other.
	opFree []*sendOp
	// pmFree recycles planMsg records (plan.go) under the same rule.
	pmFree []*planMsg
}

// LatencyClassBytes is the size at or below which messages use the job's
// LatencyClass (when configured).
const LatencyClassBytes = 1024

// JobOpts configures a job.
type JobOpts struct {
	PPN   int
	Stack Stack
	Class int
	Tag   int64
	// LatencyClass < 0 (default via NewJob when left zero-valued
	// alongside UseLatencyClass=false) disables per-size class selection.
	LatencyClass    int
	UseLatencyClass bool
	// Bulk marks the job's traffic for the hybrid flow-level fast path;
	// see Job.Bulk.
	Bulk bool
}

// NewJob creates a job over the given nodes. PPN ranks run on each node
// (rank r lives on nodes[r/PPN], the standard block mapping).
func NewJob(net *fabric.Network, nodes []topology.NodeID, opts JobOpts) *Job {
	if opts.PPN <= 0 {
		opts.PPN = 1
	}
	if len(nodes) == 0 {
		panic("mpi: job with no nodes")
	}
	lat := -1
	if opts.UseLatencyClass {
		lat = opts.LatencyClass
	}
	return &Job{
		Net:          net,
		Nodes:        nodes,
		PPN:          opts.PPN,
		Stack:        opts.Stack,
		Class:        opts.Class,
		Tag:          opts.Tag,
		LatencyClass: lat,
		Bulk:         opts.Bulk,
	}
}

// Size returns the number of ranks.
func (j *Job) Size() int { return len(j.Nodes) * j.PPN }

// Node returns the node hosting a rank.
func (j *Job) Node(rank int) topology.NodeID {
	if rank < 0 || rank >= j.Size() {
		panic(fmt.Sprintf("mpi: rank %d out of job of size %d", rank, j.Size()))
	}
	return j.Nodes[rank/j.PPN]
}

// Send transfers bytes from one rank to another; cb fires when the message
// is delivered (and past the receiver's software stack).
func (j *Job) Send(from, to int, bytes int64, cb func(at sim.Time)) {
	j.send(from, to, bytes, false, cb)
}

// Put is a one-sided RDMA write; completion semantics at the target are
// the same in this model (cb fires on remote delivery).
func (j *Job) Put(from, to int, bytes int64, cb func(at sim.Time)) {
	j.send(from, to, bytes, true, cb)
}

// sendOp is the pending state of one rank-to-rank transfer between the
// sender-overhead event firing and the fabric submit; it is also the
// event handler for that firing, so the send path allocates one small
// struct instead of a nest of closures — and that struct is free-listed
// on the Job, so steady-state transfers allocate nothing at all.
type sendOp struct {
	j        *Job
	src, dst topology.NodeID
	bytes    int64
	class    int
	noRendez bool
	recvOH   sim.Time
	cb       func(at sim.Time)
	// deliveredFn caches the s.delivered method value (one closure per
	// pooled op instead of one per transfer).
	deliveredFn func(sim.Time)
}

// newOp pops a recycled sendOp or mints one.
func (j *Job) newOp() *sendOp {
	if n := len(j.opFree); n > 0 {
		op := j.opFree[n-1]
		j.opFree = j.opFree[:n-1]
		return op
	}
	op := &sendOp{}
	op.deliveredFn = op.delivered
	return op
}

// freeOp returns a finished sendOp to the job's pool.
func (j *Job) freeOp(op *sendOp) {
	op.cb = nil
	j.opFree = append(j.opFree, op)
}

func (s *sendOp) OnEvent(_ *sim.Engine, _ *sim.Event) {
	opts := fabric.SendOpts{
		Class:        s.class,
		Tag:          s.j.Tag,
		NoRendezvous: s.noRendez,
		Bulk:         s.j.Bulk,
	}
	if s.cb != nil {
		opts.OnDelivered = s.deliveredFn
	}
	j := s.j
	j.Net.Send(s.src, s.dst, s.bytes, opts)
	// Without a delivery callback nothing references the op past the
	// submit; with one, delivered() recycles it.
	if s.cb == nil {
		j.freeOp(s)
	}
}

// delivered defers the caller's completion callback by the receiver-side
// software overhead, then recycles the op (the fabric fires OnDelivered
// exactly once per message).
func (s *sendOp) delivered(sim.Time) {
	j, cb := s.j, s.cb
	j.Net.Eng.After(s.recvOH, timeCB{}, 0, cb)
	j.freeOp(s)
}

// timeCB invokes the func(sim.Time) in Data with the fire time.
type timeCB struct{}

func (timeCB) OnEvent(e *sim.Engine, ev *sim.Event) {
	ev.Data.(func(sim.Time))(e.Now())
}

func (j *Job) send(from, to int, bytes int64, oneSided bool, cb func(at sim.Time)) {
	op := j.newOp()
	op.j = j
	op.src, op.dst = j.Node(from), j.Node(to)
	op.bytes = bytes
	op.class = j.Class
	op.noRendez = j.Stack.Sockets() || oneSided
	op.recvOH = j.Stack.RecvOverhead(bytes)
	op.cb = cb
	if j.LatencyClass >= 0 && bytes <= LatencyClassBytes {
		op.class = j.LatencyClass
	}
	j.Net.Eng.After(j.Stack.SendOverhead(bytes), op, 0, nil)
}

// PingPong measures iters half-round-trips between two ranks and returns
// each iteration's RTT/2. The measurement protocol matches the paper: rank
// a sends, rank b replies on receipt.
func (j *Job) PingPong(a, b int, bytes int64, iters int, done func(rttHalf []sim.Time)) {
	results := make([]sim.Time, 0, iters)
	eng := j.Net.Eng
	var round func()
	round = func() {
		if len(results) >= iters {
			done(results)
			return
		}
		start := eng.Now()
		j.Send(a, b, bytes, func(sim.Time) {
			j.Send(b, a, bytes, func(at sim.Time) {
				results = append(results, (at-start)/2)
				round()
			})
		})
	}
	round()
}
