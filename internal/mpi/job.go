package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Job is a set of MPI ranks running on a subset of a network's nodes.
type Job struct {
	Net   *fabric.Network
	Nodes []topology.NodeID
	PPN   int
	Stack Stack
	Class int   // traffic class index for bulk traffic
	Tag   int64 // job label carried on every message
	// LatencyClass, when >= 0, carries small messages (<= LatencyClassBytes)
	// on a separate traffic class — the §II-E optimization of assigning
	// latency-sensitive collectives like MPI_Barrier and MPI_Allreduce to
	// a high-priority, low-bandwidth class while bulk transfers ride a
	// high-bandwidth one.
	LatencyClass int
}

// LatencyClassBytes is the size at or below which messages use the job's
// LatencyClass (when configured).
const LatencyClassBytes = 1024

// JobOpts configures a job.
type JobOpts struct {
	PPN   int
	Stack Stack
	Class int
	Tag   int64
	// LatencyClass < 0 (default via NewJob when left zero-valued
	// alongside UseLatencyClass=false) disables per-size class selection.
	LatencyClass    int
	UseLatencyClass bool
}

// NewJob creates a job over the given nodes. PPN ranks run on each node
// (rank r lives on nodes[r/PPN], the standard block mapping).
func NewJob(net *fabric.Network, nodes []topology.NodeID, opts JobOpts) *Job {
	if opts.PPN <= 0 {
		opts.PPN = 1
	}
	if len(nodes) == 0 {
		panic("mpi: job with no nodes")
	}
	lat := -1
	if opts.UseLatencyClass {
		lat = opts.LatencyClass
	}
	return &Job{
		Net:          net,
		Nodes:        nodes,
		PPN:          opts.PPN,
		Stack:        opts.Stack,
		Class:        opts.Class,
		Tag:          opts.Tag,
		LatencyClass: lat,
	}
}

// Size returns the number of ranks.
func (j *Job) Size() int { return len(j.Nodes) * j.PPN }

// Node returns the node hosting a rank.
func (j *Job) Node(rank int) topology.NodeID {
	if rank < 0 || rank >= j.Size() {
		panic(fmt.Sprintf("mpi: rank %d out of job of size %d", rank, j.Size()))
	}
	return j.Nodes[rank/j.PPN]
}

// Send transfers bytes from one rank to another; cb fires when the message
// is delivered (and past the receiver's software stack).
func (j *Job) Send(from, to int, bytes int64, cb func(at sim.Time)) {
	j.send(from, to, bytes, false, cb)
}

// Put is a one-sided RDMA write; completion semantics at the target are
// the same in this model (cb fires on remote delivery).
func (j *Job) Put(from, to int, bytes int64, cb func(at sim.Time)) {
	j.send(from, to, bytes, true, cb)
}

// sendOp is the pending state of one rank-to-rank transfer between the
// sender-overhead event firing and the fabric submit; it is also the
// event handler for that firing, so the send path allocates one small
// struct instead of a nest of closures.
type sendOp struct {
	j        *Job
	src, dst topology.NodeID
	bytes    int64
	class    int
	noRendez bool
	recvOH   sim.Time
	cb       func(at sim.Time)
}

func (s *sendOp) OnEvent(_ *sim.Engine, _ *sim.Event) {
	opts := fabric.SendOpts{
		Class:        s.class,
		Tag:          s.j.Tag,
		NoRendezvous: s.noRendez,
	}
	if s.cb != nil {
		opts.OnDelivered = s.delivered
	}
	s.j.Net.Send(s.src, s.dst, s.bytes, opts)
}

// delivered defers the caller's completion callback by the receiver-side
// software overhead.
func (s *sendOp) delivered(sim.Time) {
	s.j.Net.Eng.After(s.recvOH, timeCB{}, 0, s.cb)
}

// timeCB invokes the func(sim.Time) in Data with the fire time.
type timeCB struct{}

func (timeCB) OnEvent(e *sim.Engine, ev *sim.Event) {
	ev.Data.(func(sim.Time))(e.Now())
}

func (j *Job) send(from, to int, bytes int64, oneSided bool, cb func(at sim.Time)) {
	op := &sendOp{
		j:        j,
		src:      j.Node(from),
		dst:      j.Node(to),
		bytes:    bytes,
		class:    j.Class,
		noRendez: j.Stack.Sockets() || oneSided,
		recvOH:   j.Stack.RecvOverhead(bytes),
		cb:       cb,
	}
	if j.LatencyClass >= 0 && bytes <= LatencyClassBytes {
		op.class = j.LatencyClass
	}
	j.Net.Eng.After(j.Stack.SendOverhead(bytes), op, 0, nil)
}

// PingPong measures iters half-round-trips between two ranks and returns
// each iteration's RTT/2. The measurement protocol matches the paper: rank
// a sends, rank b replies on receipt.
func (j *Job) PingPong(a, b int, bytes int64, iters int, done func(rttHalf []sim.Time)) {
	results := make([]sim.Time, 0, iters)
	eng := j.Net.Eng
	var round func()
	round = func() {
		if len(results) >= iters {
			done(results)
			return
		}
		start := eng.Now()
		j.Send(a, b, bytes, func(sim.Time) {
			j.Send(b, a, bytes, func(at sim.Time) {
				results = append(results, (at-start)/2)
				round()
			})
		})
	}
	round()
}
