package mpi

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Structural properties of the collective communication schedules.

func totalBytes(plan []phase) int64 {
	var s int64
	for _, ph := range plan {
		for _, m := range ph {
			s += m.bytes
		}
	}
	return s
}

func TestPropertyPairwiseCoversAllPairs(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw)%30 + 2
		seen := make(map[[2]int]int)
		for _, ph := range pairwisePlan(n, 100) {
			for _, m := range ph {
				if m.from == m.to {
					return false
				}
				seen[[2]int{m.from, m.to}]++
			}
		}
		// Every ordered pair exactly once.
		if len(seen) != n*(n-1) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBruckBytesMatchFormula(t *testing.T) {
	// Bruck phase k ships, per rank, one block per destination offset with
	// bit k set; over all phases each of the n-1 non-self offsets is
	// shipped popcount(offset) times.
	f := func(raw uint8, rawBytes uint16) bool {
		n := int(raw)%60 + 2
		bytes := int64(rawBytes%1000) + 1
		var want int64
		for off := 1; off < n; off++ {
			pops := 0
			for b := off; b > 0; b >>= 1 {
				pops += b & 1
			}
			want += int64(pops) * bytes * int64(n)
		}
		return totalBytes(bruckPlan(n, bytes)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRecursiveDoublingSymmetric(t *testing.T) {
	// In the power-of-two core phases, every send has a matching reverse
	// send in the same phase.
	f := func(raw uint8) bool {
		n := int(raw)%64 + 2
		plan := recursiveDoublingPlan(n, 64)
		for _, ph := range plan {
			index := make(map[[2]int]bool)
			for _, m := range ph {
				index[[2]int{m.from, m.to}] = true
			}
			for _, m := range ph {
				// Fold/unfold phases are one-directional; core phases are
				// XOR pairings and must be symmetric.
				if m.from^m.to != 0 && (m.from^m.to)&((m.from^m.to)-1) == 0 &&
					len(ph) == 1<<log2floor(n) {
					if !index[[2]int{m.to, m.from}] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBarrierConnectsAllRanks(t *testing.T) {
	// After the dissemination rounds, information from rank 0 must have
	// reached every rank (transitive closure over phases).
	f := func(raw uint8) bool {
		n := int(raw)%40 + 2
		reached := make([]bool, n)
		reached[0] = true
		var plan []phase
		for k := 1; k < n; k <<= 1 {
			ph := make(phase, 0, n)
			for r := 0; r < n; r++ {
				ph = append(ph, msgSpec{from: r, to: (r + k) % n, bytes: 8})
			}
			plan = append(plan, ph)
		}
		for _, ph := range plan {
			next := append([]bool(nil), reached...)
			for _, m := range ph {
				if reached[m.from] {
					next[m.to] = true
				}
			}
			reached = next
		}
		for _, ok := range reached {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRingTotals(t *testing.T) {
	f := func(raw uint8, rawBytes uint16) bool {
		n := int(raw)%30 + 2
		bytes := int64(rawBytes) + int64(n) // ensure chunk >= 1
		plan := ringAllreducePlan(n, bytes)
		if len(plan) != 2*(n-1) {
			return false
		}
		chunk := bytes / int64(n)
		if chunk < 1 {
			chunk = 1
		}
		return totalBytes(plan) == chunk*int64(n)*int64(2*(n-1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRunPlanSlackEquivalence(t *testing.T) {
	// The same plan completes under any slack, and more slack can only
	// finish earlier or equal (more overlap, same messages).
	var times []sim.Time
	for _, slack := range []int{0, 1, 3} {
		net := testNet(t)
		j := jobOf(t, net, 8, 1)
		var at sim.Time
		fired := 0
		j.runPlanSlack(pairwisePlan(8, 4096), slack, func(t2 sim.Time) {
			at = t2
			fired++
		})
		net.Eng.Run()
		if fired != 1 {
			t.Fatalf("slack %d: callback fired %d times", slack, fired)
		}
		times = append(times, at)
	}
	for i := 1; i < len(times); i++ {
		if times[i] > times[i-1] {
			t.Errorf("more slack finished later: %v", times)
		}
	}
}
