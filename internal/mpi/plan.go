package mpi

import (
	"repro/internal/sim"
)

// msgSpec is one message of a collective's communication schedule.
type msgSpec struct {
	from, to int
	bytes    int64
}

// phase is the set of messages exchanged in one round of a collective.
// A rank enters phase p+1 once all its phase-p sends are delivered and all
// phase-p messages addressed to it have arrived — the loose per-rank
// synchronization real collectives have (no global barrier per round).
type phase []msgSpec

// runPlan executes a phased communication schedule and calls cb with the
// completion time of the slowest rank (the paper's methodology: "the
// maximum time among the ranks").
func (j *Job) runPlan(plan []phase, cb func(at sim.Time)) {
	j.runPlanSlack(plan, 0, cb)
}

// runPlanSlack is runPlan with pipelining: a rank may run up to slack+1
// phases concurrently — it posts phase p once every phase <= p-1-slack is
// fully settled for it. slack 0 is strict phase-by-phase execution (data
// dependencies, e.g. reductions); the pairwise all-to-all uses a positive
// slack because its phases move independent data and real implementations
// keep several exchanges in flight.
func (j *Job) runPlanSlack(plan []phase, slack int, cb func(at sim.Time)) {
	p := len(plan)
	n := j.Size()
	if p == 0 || n == 0 {
		cb(j.Net.Eng.Now())
		return
	}
	// Counters: how many sends/recvs rank r still owes in phase k, plus a
	// per-sender index so posting a rank's phase is O(its own messages).
	sendLeft := make([][]int, p)
	recvLeft := make([][]int, p)
	byFrom := make([][][]msgSpec, p)
	for k := range plan {
		sendLeft[k] = make([]int, n)
		recvLeft[k] = make([]int, n)
		byFrom[k] = make([][]msgSpec, n)
		for _, m := range plan[k] {
			sendLeft[k][m.from]++
			recvLeft[k][m.to]++
			byFrom[k][m.from] = append(byFrom[k][m.from], m)
		}
	}
	cur := make([]int, n)     // lowest unsettled phase per rank
	entered := make([]int, n) // highest phase the rank has posted sends for
	for i := range entered {
		entered[i] = -1
	}
	remaining := n
	var final sim.Time

	var tryAdvance func(r int)
	//simlint:allocok -- built once per plan execution (collective setup), not per packet
	post := func(r, k int) {
		for _, m := range byFrom[k][r] {
			m := m
			//simlint:allocok -- one completion callback per planned message; message-level, not packet-level
			j.Send(m.from, m.to, m.bytes, func(at sim.Time) {
				sendLeft[k][m.from]--
				recvLeft[k][m.to]--
				tryAdvance(m.from)
				if m.to != m.from {
					tryAdvance(m.to)
				}
			})
		}
	}
	//simlint:allocok -- built once per plan execution (collective setup), not per packet
	tryAdvance = func(r int) {
		for {
			// Settle completed phases in order.
			for cur[r] < p && sendLeft[cur[r]][r] == 0 && recvLeft[cur[r]][r] == 0 &&
				entered[r] >= cur[r] {
				cur[r]++
			}
			if cur[r] == p {
				cur[r]++ // mark done exactly once
				remaining--
				if at := j.Net.Eng.Now(); at > final {
					final = at
				}
				if remaining == 0 {
					cb(final)
				}
				return
			}
			if cur[r] > p {
				return
			}
			// Post any phase within the pipelining window.
			next := entered[r] + 1
			if next >= p || next > cur[r]+slack {
				return
			}
			entered[r] = next
			post(r, next)
		}
	}
	for r := 0; r < n; r++ {
		tryAdvance(r)
	}
}

// log2floor returns floor(log2(n)) for n >= 1.
func log2floor(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}

// isPow2 reports whether n is a power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
