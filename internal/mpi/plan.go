package mpi

import (
	"repro/internal/sim"
)

// msgSpec is one message of a collective's communication schedule.
type msgSpec struct {
	from, to int
	bytes    int64
}

// phase is the set of messages exchanged in one round of a collective.
// A rank enters phase p+1 once all its phase-p sends are delivered and all
// phase-p messages addressed to it have arrived — the loose per-rank
// synchronization real collectives have (no global barrier per round).
type phase []msgSpec

// runPlan executes a phased communication schedule and calls cb with the
// completion time of the slowest rank (the paper's methodology: "the
// maximum time among the ranks").
func (j *Job) runPlan(plan []phase, cb func(at sim.Time)) {
	j.runPlanSlack(plan, 0, cb)
}

// runPlanSlack is runPlan with pipelining: a rank may run up to slack+1
// phases concurrently — it posts phase p once every phase <= p-1-slack is
// fully settled for it. slack 0 is strict phase-by-phase execution (data
// dependencies, e.g. reductions); the pairwise all-to-all uses a positive
// slack because its phases move independent data and real implementations
// keep several exchanges in flight.
func (j *Job) runPlanSlack(plan []phase, slack int, cb func(at sim.Time)) {
	p := len(plan)
	n := j.Size()
	if p == 0 || n == 0 {
		cb(j.Net.Eng.Now())
		return
	}
	// Counters: how many sends/recvs rank r still owes in phase k, plus a
	// per-sender index so posting a rank's phase is O(its own messages).
	sendLeft := make([][]int, p)
	recvLeft := make([][]int, p)
	byFrom := make([][][]msgSpec, p)
	for k := range plan {
		sendLeft[k] = make([]int, n)
		recvLeft[k] = make([]int, n)
		byFrom[k] = make([][]msgSpec, n)
		for _, m := range plan[k] {
			sendLeft[k][m.from]++
			recvLeft[k][m.to]++
			byFrom[k][m.from] = append(byFrom[k][m.from], m)
		}
	}
	cur := make([]int, n)     // lowest unsettled phase per rank
	entered := make([]int, n) // highest phase the rank has posted sends for
	for i := range entered {
		entered[i] = -1
	}
	remaining := n
	var final sim.Time

	var tryAdvance func(r int)
	//simlint:allocok -- built once per plan execution (collective setup), not per packet
	post := func(r, k int) {
		for _, m := range byFrom[k][r] {
			// Per-message completion state comes from the job's planMsg
			// pool, so steady-state collective traffic posts messages
			// without allocating (the closures this replaces were the
			// harness-side allocator the grid arenas left standing).
			pm := j.newPlanMsg()
			pm.sendLeft, pm.recvLeft = sendLeft[k], recvLeft[k]
			pm.from, pm.to = m.from, m.to
			pm.adv = tryAdvance
			j.Send(m.from, m.to, m.bytes, pm.fn)
		}
	}
	//simlint:allocok -- built once per plan execution (collective setup), not per packet
	tryAdvance = func(r int) {
		for {
			// Settle completed phases in order.
			for cur[r] < p && sendLeft[cur[r]][r] == 0 && recvLeft[cur[r]][r] == 0 &&
				entered[r] >= cur[r] {
				cur[r]++
			}
			if cur[r] == p {
				cur[r]++ // mark done exactly once
				remaining--
				if at := j.Net.Eng.Now(); at > final {
					final = at
				}
				if remaining == 0 {
					cb(final)
				}
				return
			}
			if cur[r] > p {
				return
			}
			// Post any phase within the pipelining window.
			next := entered[r] + 1
			if next >= p || next > cur[r]+slack {
				return
			}
			entered[r] = next
			post(r, next)
		}
	}
	for r := 0; r < n; r++ {
		tryAdvance(r)
	}
}

// planMsg is the completion state of one planned collective message: the
// phase's counter rows, the endpoints, and the plan's advance function.
// Instances are free-listed on the Job (same serialized-engine-context
// argument as sendOp.opFree) and carry a cached method value so reposting
// a message allocates nothing.
type planMsg struct {
	j                  *Job
	sendLeft, recvLeft []int
	from, to           int
	adv                func(r int)
	fn                 func(at sim.Time)
}

// newPlanMsg pops a recycled planMsg or mints one.
func (j *Job) newPlanMsg() *planMsg {
	if n := len(j.pmFree); n > 0 {
		pm := j.pmFree[n-1]
		j.pmFree = j.pmFree[:n-1]
		return pm
	}
	pm := &planMsg{j: j}
	pm.fn = pm.done
	return pm
}

// done is the message's delivery callback: settle the phase counters,
// recycle the planMsg, then advance both endpoints (which may repost — and
// reuse — this very record, hence the copies).
func (pm *planMsg) done(sim.Time) {
	pm.sendLeft[pm.from]--
	pm.recvLeft[pm.to]--
	j, adv, from, to := pm.j, pm.adv, pm.from, pm.to
	pm.sendLeft, pm.recvLeft, pm.adv = nil, nil, nil
	j.pmFree = append(j.pmFree, pm)
	adv(from)
	if to != from {
		adv(to)
	}
}

// log2floor returns floor(log2(n)) for n >= 1.
func log2floor(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}

// isPow2 reports whether n is a power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
