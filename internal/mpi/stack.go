// Package mpi layers an MPI-like programming model over the fabric
// simulator: jobs with ranks (optionally several per node), point-to-point
// sends, one-sided puts, and the collective algorithms whose behaviour the
// paper's figures depend on — including the eager/Bruck-to-pairwise
// all-to-all switch at 256 bytes that causes the Fig. 6 dip, and the
// power-of-two restrictions behind the N.A. cells of Fig. 11.
//
// It also models the software stacks of Fig. 5 (§II-G): IB Verbs,
// libfabric, MPI (Cray MPICH implements MPI over libfabric over verbs),
// and the classic socket paths (UDP, TCP) with their much higher
// per-message and per-byte host costs.
package mpi

import (
	"repro/internal/sim"
)

// Stack identifies the software layer an operation is issued through.
type Stack int

const (
	// Verbs is raw RDMA verbs: the thinnest layer over the NIC.
	Verbs Stack = iota
	// Libfabric adds the OFI provider dispatch on top of verbs.
	Libfabric
	// MPI adds matching, datatype and protocol logic on top of libfabric.
	MPI
	// UDP is a kernel socket path: syscalls and copies, no RDMA.
	UDP
	// TCP adds stream/ack processing on top of the socket path.
	TCP
)

func (s Stack) String() string {
	switch s {
	case Verbs:
		return "ibverbs"
	case Libfabric:
		return "libfabric"
	case MPI:
		return "mpi"
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	}
	return "unknown"
}

// Stacks lists all stacks in the order Fig. 5 plots them.
func Stacks() []Stack { return []Stack{Verbs, Libfabric, MPI, UDP, TCP} }

// stackCosts holds the per-side fixed overhead and the per-byte host cost
// (copies, checksums) of a stack. RDMA stacks are zero-copy.
type stackCosts struct {
	fixed   sim.Time // added at each of send and receive
	perByte float64  // ns per byte, each side
	sockets bool     // kernel path: no RDMA rendezvous
}

func (s Stack) costs() stackCosts {
	switch s {
	case Verbs:
		return stackCosts{fixed: 80 * sim.Nanosecond}
	case Libfabric:
		return stackCosts{fixed: 160 * sim.Nanosecond}
	case MPI:
		return stackCosts{fixed: 290 * sim.Nanosecond}
	case UDP:
		return stackCosts{fixed: 5500 * sim.Nanosecond, perByte: 0.035, sockets: true}
	case TCP:
		return stackCosts{fixed: 11000 * sim.Nanosecond, perByte: 0.045, sockets: true}
	}
	return stackCosts{}
}

// SendOverhead is the host-side cost charged before a message is handed to
// the NIC.
func (s Stack) SendOverhead(bytes int64) sim.Time {
	c := s.costs()
	return c.fixed + sim.Time(float64(bytes)*c.perByte*float64(sim.Nanosecond))
}

// RecvOverhead is the host-side cost charged after the NIC delivers a
// message, before the application sees it.
func (s Stack) RecvOverhead(bytes int64) sim.Time {
	return s.SendOverhead(bytes) // symmetric in this model
}

// Sockets reports whether the stack bypasses RDMA (no rendezvous protocol,
// host copies on both sides).
func (s Stack) Sockets() bool { return s.costs().sockets }
