package mpi

import (
	"repro/internal/sim"
)

// AlltoallSwitchBytes is the per-pair message size at which the Alltoall
// implementation switches from the memory-hungry Bruck algorithm to
// pairwise exchange. §II-G: "to reduce memory usage, the MPI implementation
// switches to a different algorithm for messages larger than 256 bytes" —
// the cause of the Fig. 6 throughput dip at 256 B.
const AlltoallSwitchBytes = 256

// AllreduceRingBytes is the size at which Allreduce switches from
// latency-optimal recursive doubling to bandwidth-optimal ring
// (reduce-scatter + allgather).
const AllreduceRingBytes = 64 * 1024

// Barrier runs a dissemination barrier; cb fires when the slowest rank
// leaves it.
func (j *Job) Barrier(cb func(at sim.Time)) {
	n := j.Size()
	if n == 1 {
		cb(j.Net.Eng.Now())
		return
	}
	var plan []phase
	for k := 1; k < n; k <<= 1 {
		ph := make(phase, 0, n)
		for r := 0; r < n; r++ {
			ph = append(ph, msgSpec{from: r, to: (r + k) % n, bytes: 8})
		}
		plan = append(plan, ph)
	}
	j.runPlan(plan, cb)
}

// Allreduce reduces bytes across all ranks, leaving the result everywhere.
func (j *Job) Allreduce(bytes int64, cb func(at sim.Time)) {
	n := j.Size()
	if n == 1 {
		cb(j.Net.Eng.Now())
		return
	}
	if bytes > AllreduceRingBytes {
		j.runPlan(ringAllreducePlan(n, bytes), cb)
		return
	}
	j.runPlan(recursiveDoublingPlan(n, bytes), cb)
}

// recursiveDoublingPlan builds the latency-optimal allreduce schedule. For
// non-power-of-two rank counts it uses the standard fold: the first 2*rem
// ranks pair up so a power-of-two core runs the doubling, then unfold.
func recursiveDoublingPlan(n int, bytes int64) []phase {
	m := 1 << log2floor(n)
	rem := n - m
	var plan []phase

	// Fold: ranks [m, n) send their contribution to [0, rem).
	if rem > 0 {
		ph := make(phase, 0, rem)
		for i := 0; i < rem; i++ {
			ph = append(ph, msgSpec{from: m + i, to: i, bytes: bytes})
		}
		plan = append(plan, ph)
	}
	// Doubling among the power-of-two core [0, m).
	for k := 1; k < m; k <<= 1 {
		ph := make(phase, 0, m)
		for r := 0; r < m; r++ {
			ph = append(ph, msgSpec{from: r, to: r ^ k, bytes: bytes})
		}
		plan = append(plan, ph)
	}
	// Unfold: results back to the folded ranks.
	if rem > 0 {
		ph := make(phase, 0, rem)
		for i := 0; i < rem; i++ {
			ph = append(ph, msgSpec{from: i, to: m + i, bytes: bytes})
		}
		plan = append(plan, ph)
	}
	return plan
}

// ringAllreducePlan builds the bandwidth-optimal schedule: a reduce-scatter
// ring followed by an allgather ring, 2*(n-1) phases of bytes/n each.
func ringAllreducePlan(n int, bytes int64) []phase {
	chunk := bytes / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	plan := make([]phase, 0, 2*(n-1))
	for step := 0; step < 2*(n-1); step++ {
		ph := make(phase, 0, n)
		for r := 0; r < n; r++ {
			ph = append(ph, msgSpec{from: r, to: (r + 1) % n, bytes: chunk})
		}
		plan = append(plan, ph)
	}
	return plan
}

// Alltoall exchanges bytesPerPair between every pair of ranks, switching
// algorithms at AlltoallSwitchBytes exactly as the measured system does.
func (j *Job) Alltoall(bytesPerPair int64, cb func(at sim.Time)) {
	n := j.Size()
	if n == 1 {
		cb(j.Net.Eng.Now())
		return
	}
	if bytesPerPair <= AlltoallSwitchBytes {
		j.runPlan(bruckPlan(n, bytesPerPair), cb)
		return
	}
	// Pairwise phases carry independent data, so implementations keep a
	// few exchanges in flight (slack); Bruck stages data through
	// intermediate ranks and must run phase by phase.
	j.runPlanSlack(pairwisePlan(n, bytesPerPair), 3, cb)
}

// bruckPlan builds the Bruck all-to-all: ceil(log2 n) phases; in phase k
// each rank ships every data block whose destination offset has bit k set,
// aggregated into one message to rank (r + 2^k) mod n. Fewer, larger
// messages: ideal for tiny payloads, too much staging memory for large
// ones.
func bruckPlan(n int, bytesPerPair int64) []phase {
	var plan []phase
	for k := 1; k < n; k <<= 1 {
		blocks := 0
		for j := 1; j < n; j++ {
			if j&k != 0 {
				blocks++
			}
		}
		ph := make(phase, 0, n)
		for r := 0; r < n; r++ {
			ph = append(ph, msgSpec{from: r, to: (r + k) % n, bytes: bytesPerPair * int64(blocks)})
		}
		plan = append(plan, ph)
	}
	return plan
}

// pairwisePlan builds the pairwise-exchange all-to-all: n-1 phases, in
// phase s rank r exchanges directly with (r+s) mod n.
func pairwisePlan(n int, bytesPerPair int64) []phase {
	plan := make([]phase, 0, n-1)
	for s := 1; s < n; s++ {
		ph := make(phase, 0, n)
		for r := 0; r < n; r++ {
			ph = append(ph, msgSpec{from: r, to: (r + s) % n, bytes: bytesPerPair})
		}
		plan = append(plan, ph)
	}
	return plan
}

// Bcast broadcasts bytes from root with a binomial tree.
func (j *Job) Bcast(bytes int64, root int, cb func(at sim.Time)) {
	n := j.Size()
	if n == 1 {
		cb(j.Net.Eng.Now())
		return
	}
	rel := func(r int) int { return (r - root + n) % n }
	abs := func(r int) int { return (r + root) % n }
	var plan []phase
	for k := 1; k < n; k <<= 1 {
		var ph phase
		for r := 0; r < n; r++ {
			if rel(r) < k && rel(r)+k < n {
				ph = append(ph, msgSpec{from: r, to: abs(rel(r) + k), bytes: bytes})
			}
		}
		plan = append(plan, ph)
	}
	j.runPlan(plan, cb)
}

// Reduce reduces to root with the mirror of the binomial broadcast tree.
func (j *Job) Reduce(bytes int64, root int, cb func(at sim.Time)) {
	n := j.Size()
	if n == 1 {
		cb(j.Net.Eng.Now())
		return
	}
	rel := func(r int) int { return (r - root + n) % n }
	abs := func(r int) int { return (r + root) % n }
	// Phases run the broadcast tree backwards.
	var ks []int
	for k := 1; k < n; k <<= 1 {
		ks = append(ks, k)
	}
	var plan []phase
	for i := len(ks) - 1; i >= 0; i-- {
		k := ks[i]
		var ph phase
		for r := 0; r < n; r++ {
			if rel(r) < k && rel(r)+k < n {
				ph = append(ph, msgSpec{from: abs(rel(r) + k), to: r, bytes: bytes})
			}
		}
		plan = append(plan, ph)
	}
	j.runPlan(plan, cb)
}

// Sendrecv runs a bidirectional exchange between two ranks; cb fires when
// both directions have completed.
func (j *Job) Sendrecv(a, b int, bytes int64, cb func(at sim.Time)) {
	j.runPlan([]phase{{{from: a, to: b, bytes: bytes}, {from: b, to: a, bytes: bytes}}}, cb)
}
