package mpi

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t testing.TB) *fabric.Network {
	t.Helper()
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	return fabric.New(topo, prof, 1)
}

func jobOf(t testing.TB, net *fabric.Network, n, ppn int) *Job {
	t.Helper()
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	return NewJob(net, nodes, JobOpts{PPN: ppn, Stack: MPI})
}

func TestRankMapping(t *testing.T) {
	net := testNet(t)
	j := jobOf(t, net, 4, 2)
	if j.Size() != 8 {
		t.Fatalf("size = %d", j.Size())
	}
	if j.Node(0) != 0 || j.Node(1) != 0 || j.Node(2) != 1 || j.Node(7) != 3 {
		t.Error("block rank mapping broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	j.Node(8)
}

func TestSendDelivers(t *testing.T) {
	net := testNet(t)
	j := jobOf(t, net, 8, 1)
	var at sim.Time
	j.Send(0, 5, 4096, func(t sim.Time) { at = t })
	net.Eng.Run()
	if at == 0 {
		t.Fatal("send never completed")
	}
}

func TestSameNodeRanksUseLoopback(t *testing.T) {
	net := testNet(t)
	j := jobOf(t, net, 2, 4)
	var at sim.Time
	j.Send(0, 1, 1024, func(t sim.Time) { at = t }) // both on node 0
	net.Eng.Run()
	if at == 0 {
		t.Fatal("intra-node send never completed")
	}
	if at > 3*sim.Microsecond {
		t.Errorf("intra-node send took %v", at)
	}
}

func TestStackOrdering(t *testing.T) {
	// Fig. 5: verbs < libfabric < MPI << UDP < TCP at small sizes.
	var prev sim.Time
	for _, s := range Stacks() {
		net := testNet(t)
		j := NewJob(net, []topology.NodeID{0, 1}, JobOpts{Stack: s})
		var rtt sim.Time
		j.PingPong(0, 1, 8, 5, func(rs []sim.Time) { rtt = rs[len(rs)-1] })
		net.Eng.Run()
		if rtt == 0 {
			t.Fatalf("%v pingpong did not finish", s)
		}
		if rtt <= prev {
			t.Errorf("%v RTT/2 (%v) not above previous stack (%v)", s, rtt, prev)
		}
		prev = rtt
	}
}

func TestStackConvergenceAtLargeSizes(t *testing.T) {
	// Fig. 5: at 16 MiB all stacks are within ~2x (bandwidth-bound).
	get := func(s Stack) sim.Time {
		net := testNet(t)
		j := NewJob(net, []topology.NodeID{0, 1}, JobOpts{Stack: s})
		var rtt sim.Time
		j.PingPong(0, 1, 16*1024*1024, 1, func(rs []sim.Time) { rtt = rs[0] })
		net.Eng.Run()
		return rtt
	}
	v, tcp := get(Verbs), get(TCP)
	if ratio := float64(tcp) / float64(v); ratio > 2.5 {
		t.Errorf("TCP/verbs ratio at 16MiB = %.2f, want < 2.5", ratio)
	}
}

func TestBarrierCompletes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		net := testNet(t)
		j := jobOf(t, net, n, 1)
		fired := false
		j.Barrier(func(sim.Time) { fired = true })
		net.Eng.Run()
		if !fired {
			t.Fatalf("n=%d: barrier never completed", n)
		}
	}
}

func TestBarrierScalesLog(t *testing.T) {
	timeFor := func(n int) sim.Time {
		net := testNet(t)
		j := jobOf(t, net, n, 1)
		var at sim.Time
		j.Barrier(func(t sim.Time) { at = t })
		net.Eng.Run()
		return at
	}
	t4, t16 := timeFor(4), timeFor(16)
	// Dissemination: ceil(log2 n) rounds -> 16 ranks takes ~2x of 4, not 4x.
	if float64(t16)/float64(t4) > 3 {
		t.Errorf("barrier scaling t4=%v t16=%v", t4, t16)
	}
}

func TestAllreduceCompletesAllSizes(t *testing.T) {
	for _, n := range []int{2, 3, 7, 8, 16} {
		for _, bytes := range []int64{8, 1024, 128 * 1024} {
			net := testNet(t)
			j := jobOf(t, net, n, 1)
			fired := false
			j.Allreduce(bytes, func(sim.Time) { fired = true })
			net.Eng.Run()
			if !fired {
				t.Fatalf("allreduce n=%d bytes=%d never completed", n, bytes)
			}
		}
	}
}

func TestRecursiveDoublingPlanShape(t *testing.T) {
	// Power of two: log2(n) phases, each rank sends exactly once per phase.
	plan := recursiveDoublingPlan(8, 64)
	if len(plan) != 3 {
		t.Fatalf("phases = %d", len(plan))
	}
	for k, ph := range plan {
		if len(ph) != 8 {
			t.Errorf("phase %d has %d msgs", k, len(ph))
		}
		// Pairing is symmetric: r <-> r^2^k.
		for _, m := range ph {
			if m.to != m.from^(1<<k) {
				t.Errorf("phase %d: %d -> %d", k, m.from, m.to)
			}
		}
	}
	// Non power of two gets fold + unfold phases.
	plan = recursiveDoublingPlan(7, 64)
	if len(plan) != 1+2+1 {
		t.Errorf("n=7 phases = %d, want 4", len(plan))
	}
}

func TestRingPlanShape(t *testing.T) {
	plan := ringAllreducePlan(4, 4096)
	if len(plan) != 6 { // 2*(n-1)
		t.Fatalf("phases = %d", len(plan))
	}
	for _, ph := range plan {
		for _, m := range ph {
			if m.bytes != 1024 { // bytes/n
				t.Errorf("chunk = %d", m.bytes)
			}
			if m.to != (m.from+1)%4 {
				t.Errorf("ring neighbor broken: %d -> %d", m.from, m.to)
			}
		}
	}
}

func TestAlltoallAlgorithmSwitch(t *testing.T) {
	// <= 256 B: Bruck (log phases); > 256 B: pairwise (n-1 phases).
	if got := len(bruckPlan(16, 8)); got != 4 {
		t.Errorf("bruck phases = %d", got)
	}
	if got := len(pairwisePlan(16, 512)); got != 15 {
		t.Errorf("pairwise phases = %d", got)
	}
	// Total bytes shipped by Bruck exceed the raw data (log n staging),
	// pairwise ships exactly n*(n-1)*S.
	tot := func(plan []phase) int64 {
		var s int64
		for _, ph := range plan {
			for _, m := range ph {
				s += m.bytes
			}
		}
		return s
	}
	raw := int64(16 * 15 * 8)
	if tot(bruckPlan(16, 8)) <= raw {
		t.Error("bruck should ship more than raw bytes")
	}
	if got := tot(pairwisePlan(16, 8)); got != raw {
		t.Errorf("pairwise ships %d, want %d", got, raw)
	}
}

func TestAlltoallCompletes(t *testing.T) {
	for _, bytes := range []int64{8, 256, 257, 4096} {
		net := testNet(t)
		j := jobOf(t, net, 8, 1)
		fired := false
		j.Alltoall(bytes, func(sim.Time) { fired = true })
		net.Eng.Run()
		if !fired {
			t.Fatalf("alltoall %dB never completed", bytes)
		}
	}
}

func TestBcastReduceComplete(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		for root := 0; root < n; root += 3 {
			net := testNet(t)
			j := jobOf(t, net, n, 1)
			fired := 0
			j.Bcast(1024, root, func(sim.Time) { fired++ })
			net.Eng.Run()
			net2 := testNet(t)
			j2 := jobOf(t, net2, n, 1)
			j2.Reduce(1024, root, func(sim.Time) { fired++ })
			net2.Eng.Run()
			if fired != 2 {
				t.Fatalf("n=%d root=%d: fired=%d", n, root, fired)
			}
		}
	}
}

func TestBcastTreeCoverage(t *testing.T) {
	// Every non-root rank receives exactly once over the whole tree.
	f := func(rawN, rawRoot uint8) bool {
		n := int(rawN)%20 + 2
		root := int(rawRoot) % n
		recvs := make([]int, n)
		rel := func(r int) int { return (r - root + n) % n }
		for k := 1; k < n; k <<= 1 {
			for r := 0; r < n; r++ {
				if rel(r) < k && rel(r)+k < n {
					recvs[(rel(r)+k+root)%n]++
				}
			}
		}
		if recvs[root] != 0 {
			return false
		}
		for r := 0; r < n; r++ {
			if r != root && recvs[r] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSendrecv(t *testing.T) {
	net := testNet(t)
	j := jobOf(t, net, 4, 1)
	var at sim.Time
	j.Sendrecv(0, 3, 8192, func(t sim.Time) { at = t })
	net.Eng.Run()
	if at == 0 {
		t.Fatal("sendrecv never completed")
	}
}

func TestPingPongIterations(t *testing.T) {
	net := testNet(t)
	j := jobOf(t, net, 2, 1)
	var got []sim.Time
	j.PingPong(0, 1, 8, 10, func(rs []sim.Time) { got = rs })
	net.Eng.Run()
	if len(got) != 10 {
		t.Fatalf("got %d iterations", len(got))
	}
	for _, r := range got {
		if r < 500*sim.Nanosecond || r > 10*sim.Microsecond {
			t.Errorf("implausible RTT/2: %v", r)
		}
	}
}

func TestPutCompletes(t *testing.T) {
	net := testNet(t)
	j := jobOf(t, net, 4, 1)
	fired := false
	j.Put(0, 2, 128*1024, func(sim.Time) { fired = true })
	net.Eng.Run()
	if !fired {
		t.Fatal("put never completed")
	}
}

func TestStackStrings(t *testing.T) {
	names := map[Stack]string{Verbs: "ibverbs", Libfabric: "libfabric",
		MPI: "mpi", UDP: "udp", TCP: "tcp", Stack(99): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLatencyClassSelection(t *testing.T) {
	// With UseLatencyClass, small messages ride the latency class and bulk
	// messages the job's base class (§II-E per-operation classes).
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 4, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	prof.QoS = &qos.Config{Classes: []qos.Class{
		{Name: "bulk", DSCP: 0, MinShare: 0.5, MinimalBias: 1},
		{Name: "latency", DSCP: 10, Priority: 5, MinShare: 0.1, MinimalBias: 1},
	}}
	net := fabric.New(topo, prof, 1)
	classes := map[int]int{}
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) {
		classes[p.Class]++
	}
	j := NewJob(net, []topology.NodeID{0, 9}, JobOpts{
		Stack: MPI, Class: 0, LatencyClass: 1, UseLatencyClass: true,
	})
	done := 0
	j.Send(0, 1, 8, func(sim.Time) { done++ })        // latency class
	j.Send(0, 1, 128*1024, func(sim.Time) { done++ }) // bulk class
	net.Eng.Run()
	if done != 2 {
		t.Fatalf("completed %d/2", done)
	}
	if classes[1] == 0 {
		t.Error("small message did not use the latency class")
	}
	if classes[0] == 0 {
		t.Error("bulk message did not use the base class")
	}
	// Disabled by default.
	j2 := NewJob(net, []topology.NodeID{0, 9}, JobOpts{Stack: MPI})
	if j2.LatencyClass != -1 {
		t.Errorf("LatencyClass default = %d, want -1", j2.LatencyClass)
	}
}
