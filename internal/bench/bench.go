// Package bench holds the hot-path benchmark bodies shared between the
// top-level go-test benchmarks (bench_test.go) and cmd/benchreport, which
// runs them via testing.Benchmark and emits BENCH_hotpath.json through the
// internal/results encoders. Keeping the bodies here means the perf
// trajectory file and `go test -bench` always measure the same code.
package bench

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// PacketHotPath streams multi-packet eager messages across a small
// two-group fabric (adaptive routing and Slingshot congestion control on,
// jitter off) and counts delivered data packets, so ns/op and allocs/op
// read directly as per-packet hot-path costs: NIC injection, source-switch
// path choice, per-hop forwarding, DRR scheduling, credits, and the
// end-to-end ack.
func PacketHotPath(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	// 8 flows x 4 outstanding 32 KiB eager messages (8 packets each) keep
	// the fabric busy without saturating it into pathological queueing.
	const msgBytes = 32 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, msgBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { post(src, dst) },
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i))
		}
	}
	net.Eng.RunWhile(func() bool { return delivered < b.N })
}

// PacketHotPathFatTree is PacketHotPath on the fat-tree backend behind
// the same Topology interface: a 2-pod folded Clos with the paper's
// 100 Gb/s RoCE profile (jitter off). Tracking it next to the Dragonfly
// variant keeps the interface-dispatch cost of the refactored fabric
// visible per backend.
func PacketHotPathFatTree(b *testing.B) {
	topo := topology.MustBuild(topology.FatTreeConfig{
		Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 8,
	})
	prof := fabric.FatTree100GProfile()
	prof.Topo = nil // the benchmark supplies its own small instance
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	const msgBytes = 32 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, msgBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { post(src, dst) },
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i)) // cross-pod flows
		}
	}
	net.Eng.RunWhile(func() bool { return delivered < b.N })
}

// TopoBuild constructs one instance of every backend (a ~64-node
// Dragonfly, fat-tree and HyperX) per iteration, so ns/op and allocs/op
// track the cost of topology construction — the per-grid-cell setup work
// every experiment pays before the first packet moves.
func TopoBuild(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := topology.MustBuild(topology.ScaledConfig(64))
		f := topology.MustBuild(topology.FatTreeFor(64))
		h := topology.MustBuild(topology.HyperXFor(64))
		if d.Nodes() < 64 || f.Nodes() < 64 || h.Nodes() < 64 {
			b.Fatal("backend under-built")
		}
	}
}

// ChoosePath measures one source-switch routing decision for the named
// policy on a warm network (minimal-path cache populated, fabric idle):
// ns/op and allocs/op read directly as the per-packet path-selection cost.
// The flow ID varies per iteration so hash policies exercise every bucket.
// On this cached-minimal path the adaptive policy must stay at 0
// allocs/decision — the gate that keeps routing off the packet hot path's
// allocation budget.
func ChoosePath(policy string) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		builder, err := routing.ByName(policy)
		if err != nil {
			b.Fatal(err)
		}
		prof.Routing = builder
		net := fabric.New(topo, prof, 5)
		src, dst := topology.NodeID(0), topology.NodeID(topo.Nodes()-1)
		if len(net.ChoosePath(src, dst, 0, 0)) == 0 { // warm the cache
			b.Fatal("no path")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p := net.ChoosePath(src, dst, int64(i), 0); len(p) == 0 {
				b.Fatal("no path")
			}
		}
	}
}

// RunCell runs one full congestion-grid cell per iteration — the unit of
// work the Fig. 9-14 grids scale by (build network, measure the victim
// isolated, start the aggressor, measure congested). ns/op is the cost of
// one cell at reduced scale.
func RunCell(b *testing.B) {
	sys := harness.Shandy(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.RunCell(harness.CellSpec{
			Sys: sys, TotalNodes: 32, VictimFrac: 0.5,
			Aggressor: harness.IncastAggressor, AggrPPN: 1,
			Seed: 7, MinIters: 2, MaxIters: 3,
		}, harness.BenchVictim(workloads.AllreduceBench(8)))
		if r.NA {
			b.Fatal("cell unexpectedly N.A.")
		}
	}
}

// Suite lists the hot-path benchmarks cmd/benchreport runs, with the unit
// one iteration corresponds to.
func Suite() []struct {
	Name string
	Unit string
	Fn   func(*testing.B)
} {
	return []struct {
		Name string
		Unit string
		Fn   func(*testing.B)
	}{
		{"PacketHotPath", "packet", PacketHotPath},
		{"PacketHotPathFatTree", "packet", PacketHotPathFatTree},
		{"ChoosePath/minimal", "decision", ChoosePath("minimal")},
		{"ChoosePath/adaptive", "decision", ChoosePath("adaptive")},
		{"ChoosePath/ecmp", "decision", ChoosePath("ecmp")},
		{"ChoosePath/valiant", "decision", ChoosePath("valiant")},
		{"TopoBuild", "build(x3)", TopoBuild},
		{"RunCell", "cell", RunCell},
	}
}
