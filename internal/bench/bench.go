// Package bench holds the hot-path benchmark bodies shared between the
// top-level go-test benchmarks (bench_test.go) and cmd/benchreport, which
// runs them via testing.Benchmark and emits BENCH_hotpath.json through the
// internal/results encoders. Keeping the bodies here means the perf
// trajectory file and `go test -bench` always measure the same code.
package bench

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// PacketHotPath streams multi-packet eager messages across a small
// two-group fabric (adaptive routing and Slingshot congestion control on,
// jitter off) and counts delivered data packets, so ns/op and allocs/op
// read directly as per-packet hot-path costs: NIC injection, source-switch
// path choice, per-hop forwarding, DRR scheduling, credits, and the
// end-to-end ack.
func PacketHotPath(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	// 8 flows x 4 outstanding 32 KiB eager messages (8 packets each) keep
	// the fabric busy without saturating it into pathological queueing.
	const msgBytes = 32 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, msgBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { post(src, dst) },
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i))
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// PacketHotPathFatTree is PacketHotPath on the fat-tree backend behind
// the same Topology interface: a 2-pod folded Clos with the paper's
// 100 Gb/s RoCE profile (jitter off). Tracking it next to the Dragonfly
// variant keeps the interface-dispatch cost of the refactored fabric
// visible per backend.
func PacketHotPathFatTree(b *testing.B) {
	topo := topology.MustBuild(topology.FatTreeConfig{
		Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 8,
	})
	prof := fabric.FatTree100GProfile()
	prof.Topo = nil // the benchmark supplies its own small instance
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	const msgBytes = 32 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, msgBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { post(src, dst) },
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i)) // cross-pod flows
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// TopoBuild constructs one instance of every backend (a ~64-node
// Dragonfly, fat-tree and HyperX) per iteration, so ns/op and allocs/op
// track the cost of topology construction — the per-grid-cell setup work
// every experiment pays before the first packet moves.
func TopoBuild(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := topology.MustBuild(topology.ScaledConfig(64))
		f := topology.MustBuild(topology.FatTreeFor(64))
		h := topology.MustBuild(topology.HyperXFor(64))
		if d.Nodes() < 64 || f.Nodes() < 64 || h.Nodes() < 64 {
			b.Fatal("backend under-built")
		}
	}
}

// ChoosePath measures one source-switch routing decision for the named
// policy on a warm network (minimal-path cache populated, fabric idle):
// ns/op and allocs/op read directly as the per-packet path-selection cost.
// The flow ID varies per iteration so hash policies exercise every bucket.
// On this cached-minimal path the adaptive policy must stay at 0
// allocs/decision — the gate that keeps routing off the packet hot path's
// allocation budget.
func ChoosePath(policy string) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		builder, err := routing.ByName(policy)
		if err != nil {
			b.Fatal(err)
		}
		prof.Routing = builder
		net := fabric.New(topo, prof, 5)
		src, dst := topology.NodeID(0), topology.NodeID(topo.Nodes()-1)
		if len(net.ChoosePath(src, dst, 0, 0)) == 0 { // warm the cache
			b.Fatal("no path")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p := net.ChoosePath(src, dst, int64(i), 0); len(p) == 0 {
				b.Fatal("no path")
			}
		}
	}
}

// RunCell runs one full congestion-grid cell per iteration — the unit of
// work the Fig. 9-14 grids scale by (build network, measure the victim
// isolated, start the aggressor, measure congested). ns/op is the cost of
// one cell at reduced scale.
func RunCell(b *testing.B) {
	sys := harness.Shandy(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.RunCell(harness.CellSpec{
			Sys: sys, TotalNodes: 32, VictimFrac: 0.5,
			Aggressor: harness.IncastAggressor, AggrPPN: 1,
			Seed: 7, MinIters: 2, MaxIters: 3,
		}, harness.BenchVictim(workloads.AllreduceBench(8)))
		if r.NA {
			b.Fatal("cell unexpectedly N.A.")
		}
	}
}

// ParallelRun streams cross-group traffic over a 4096-endpoint Dragonfly
// (16 groups x 16 switches x 16 nodes) on the domain-sharded engine with
// the given worker budget, counting delivered data packets: ns/op reads
// as the per-packet cost including the epoch exchange, and comparing the
// domains=1 row against higher budgets shows the parallel speedup (on a
// multi-core host; the decomposition makes the numbers identical either
// way). domains=0 measures the classic single-engine baseline on the same
// machine shape.
func ParallelRun(domains int) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 16, SwitchesPerGroup: 16, NodesPerSwitch: 16, GlobalPerPair: 2,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		net := fabric.NewSharded(topo, prof, 5, domains)
		delivered := 0
		net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

		// 2 flows out of every group, each to the diametric group, 4
		// outstanding 32 KiB eager messages per flow: every domain both
		// sends and receives cross-domain traffic each epoch.
		const msgBytes = 32 * 1024
		npg := 16 * 16
		b.ReportAllocs()
		b.ResetTimer()
		var post func(src, dst topology.NodeID)
		post = func(src, dst topology.NodeID) {
			if delivered >= b.N {
				return
			}
			net.Send(src, dst, msgBytes, fabric.SendOpts{
				NoRendezvous: true,
				OnDelivered:  func(sim.Time) { post(src, dst) },
			})
		}
		for g := 0; g < 16; g++ {
			for f := 0; f < 2; f++ {
				src := topology.NodeID(g*npg + f)
				dst := topology.NodeID(((g+8)%16)*npg + f)
				for w := 0; w < 4; w++ {
					post(src, dst)
				}
			}
		}
		net.RunWhile(func() bool { return delivered < b.N })
	}
}

// FlowEngine streams bulk cross-group flows through the flow-level fluid
// engine (fabric.FidelityFlow): 8 flows with 4 outstanding 8 MiB
// transfers each, reposted on delivery. One iteration is one delivered
// flow, so ns/op spread over the flow's bytes (the suite's SimBytes
// metadata) is the fluid path's ns per simulated byte — the number the
// hybrid-fidelity design trades against the packet engine's.
func FlowEngine(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	net.SetFidelity(fabric.FidelityFlow)

	delivered := 0
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, FlowEngineBytes, fabric.SendOpts{
			Bulk: true,
			OnDelivered: func(sim.Time) {
				delivered++
				post(src, dst)
			},
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i))
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// FlowEngineBytes is the per-flow transfer size FlowEngine simulates per
// iteration (the SimBytes metadata for its suite row).
const FlowEngineBytes = 8 << 20

// HybridRun measures the packet-level victim path while fluid bulk
// aggressor flows saturate the same hybrid-fidelity fabric: 4 victim
// flows stream 32 KiB eager messages packet-by-packet, 4 bulk pairs keep
// 2 outstanding 1 MiB fluid transfers each. One iteration is one
// delivered victim data packet, so ns/op reads as the hybrid per-packet
// cost — the packet engine plus the background-load bookkeeping the
// fluid flows impose on it.
func HybridRun(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	net.SetFidelity(fabric.FidelityHybrid)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	const victimBytes = 32 * 1024
	const bulkBytes = 1 << 20
	b.ReportAllocs()
	b.ResetTimer()
	var postVictim func(src, dst topology.NodeID)
	postVictim = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, victimBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { postVictim(src, dst) },
		})
	}
	var postBulk func(src, dst topology.NodeID)
	postBulk = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, bulkBytes, fabric.SendOpts{
			Bulk:        true,
			OnDelivered: func(sim.Time) { postBulk(src, dst) },
		})
	}
	for i := 0; i < 4; i++ {
		for w := 0; w < 4; w++ {
			postVictim(topology.NodeID(i), topology.NodeID(16+i))
		}
		for w := 0; w < 2; w++ {
			postBulk(topology.NodeID(4+i), topology.NodeID(20+i))
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// mailboxBounce forwards each received event to the peer shard one
// lookahead later — the minimal cross-shard workload.
type mailboxBounce struct {
	self, peer *par.Shard
	to         sim.Handler
	look       sim.Time
	left       *int
}

func (h *mailboxBounce) OnEvent(e *sim.Engine, _ *sim.Event) {
	if *h.left <= 0 {
		return
	}
	*h.left--
	h.self.Post(h.peer, e.Now()+h.look, h.to, 0, nil)
}

// MailboxExchange measures the raw cross-shard mailbox path in isolation:
// two shards bounce a window of 64 events back and forth, so every epoch
// posts, drains, sorts and re-schedules 64 messages. ns/op is the
// amortized per-message exchange cost (mailbox append, canonical merge,
// engine scheduling, epoch overhead); allocs/op pins the 0-alloc
// steady-state contract of the exchange path.
func MailboxExchange(b *testing.B) {
	const look = 150 * sim.Nanosecond
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	s0, s1 := par.NewShard(0, e0, 2), par.NewShard(1, e1, 2)
	h0 := &mailboxBounce{self: s0, peer: s1, look: look}
	h1 := &mailboxBounce{self: s1, peer: s0, look: look, to: h0}
	h0.to = h1
	c := par.New([]*par.Shard{s0, s1}, nil, look, 1)
	left := 0
	h0.left, h1.left = &left, &left

	// Warm the mailboxes and free-lists so b.N measures steady state.
	const window = 64
	kick := func() {
		for i := 0; i < window; i++ {
			e0.Schedule(e0.Now()+look, h0, 0, nil)
		}
	}
	left = window
	kick()
	c.Run()

	b.ReportAllocs()
	b.ResetTimer()
	left = b.N
	kick()
	c.Run()
}

// Suite lists the hot-path benchmarks cmd/benchreport runs, with the unit
// one iteration corresponds to, the sharded-engine rows' domain worker
// budget (0 = classic engine), and — where one unit simulates a known
// payload — the simulated bytes per unit, from which benchreport derives
// the ns-per-simulated-byte column that compares fidelities (0 = not a
// byte-moving benchmark).
func Suite() []struct {
	Name     string
	Unit     string
	Domains  int
	SimBytes int64
	Fn       func(*testing.B)
} {
	// Packet benchmarks move full-size 4096-byte payloads
	// (ethernet.MaxPayload) per delivered data packet.
	const packetBytes = 4096
	return []struct {
		Name     string
		Unit     string
		Domains  int
		SimBytes int64
		Fn       func(*testing.B)
	}{
		{"PacketHotPath", "packet", 0, packetBytes, PacketHotPath},
		{"PacketHotPathFatTree", "packet", 0, packetBytes, PacketHotPathFatTree},
		{"FlowEngine", "flow", 0, FlowEngineBytes, FlowEngine},
		{"HybridRun", "packet", 0, packetBytes, HybridRun},
		{"ChoosePath/minimal", "decision", 0, 0, ChoosePath("minimal")},
		{"ChoosePath/adaptive", "decision", 0, 0, ChoosePath("adaptive")},
		{"ChoosePath/ecmp", "decision", 0, 0, ChoosePath("ecmp")},
		{"ChoosePath/valiant", "decision", 0, 0, ChoosePath("valiant")},
		{"TopoBuild", "build(x3)", 0, 0, TopoBuild},
		{"RunCell", "cell", 0, 0, RunCell},
		{"MailboxExchange", "msg", 0, 0, MailboxExchange},
		{"ParallelRun/d1", "packet", 1, packetBytes, ParallelRun(1)},
		{"ParallelRun/d2", "packet", 2, packetBytes, ParallelRun(2)},
		{"ParallelRun/d4", "packet", 4, packetBytes, ParallelRun(4)},
		{"ParallelRun/d8", "packet", 8, packetBytes, ParallelRun(8)},
	}
}
