// Package bench holds the hot-path benchmark bodies shared between the
// top-level go-test benchmarks (bench_test.go) and cmd/benchreport, which
// runs them via testing.Benchmark and emits BENCH_hotpath.json through the
// internal/results encoders. Keeping the bodies here means the perf
// trajectory file and `go test -bench` always measure the same code.
package bench

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/flow"
	"repro/internal/harness"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/sim/par"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// PacketHotPath streams multi-packet eager messages across a small
// two-group fabric (adaptive routing and Slingshot congestion control on,
// jitter off) and counts delivered data packets, so ns/op and allocs/op
// read directly as per-packet hot-path costs: NIC injection, source-switch
// path choice, per-hop forwarding, DRR scheduling, credits, and the
// end-to-end ack.
func PacketHotPath(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	// 8 flows x 4 outstanding 32 KiB eager messages (8 packets each) keep
	// the fabric busy without saturating it into pathological queueing.
	const msgBytes = 32 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, msgBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { post(src, dst) },
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i))
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// PacketHotPathFatTree is PacketHotPath on the fat-tree backend behind
// the same Topology interface: a 2-pod folded Clos with the paper's
// 100 Gb/s RoCE profile (jitter off). Tracking it next to the Dragonfly
// variant keeps the interface-dispatch cost of the refactored fabric
// visible per backend.
func PacketHotPathFatTree(b *testing.B) {
	topo := topology.MustBuild(topology.FatTreeConfig{
		Pods: 2, EdgePerPod: 2, AggPerPod: 2, CorePerAgg: 2, NodesPerEdge: 8,
	})
	prof := fabric.FatTree100GProfile()
	prof.Topo = nil // the benchmark supplies its own small instance
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	const msgBytes = 32 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, msgBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { post(src, dst) },
		})
	}
	for i := 0; i < 8; i++ {
		for w := 0; w < 4; w++ {
			post(topology.NodeID(i), topology.NodeID(16+i)) // cross-pod flows
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// TopoBuild constructs one instance of every backend (a ~64-node
// Dragonfly, fat-tree and HyperX) per iteration, so ns/op and allocs/op
// track the cost of topology construction — the per-grid-cell setup work
// every experiment pays before the first packet moves.
func TopoBuild(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := topology.MustBuild(topology.ScaledConfig(64))
		f := topology.MustBuild(topology.FatTreeFor(64))
		h := topology.MustBuild(topology.HyperXFor(64))
		if d.Nodes() < 64 || f.Nodes() < 64 || h.Nodes() < 64 {
			b.Fatal("backend under-built")
		}
	}
}

// ChoosePath measures one source-switch routing decision for the named
// policy on a warm network (minimal-path cache populated, fabric idle):
// ns/op and allocs/op read directly as the per-packet path-selection cost.
// The flow ID varies per iteration so hash policies exercise every bucket.
// On this cached-minimal path the adaptive policy must stay at 0
// allocs/decision — the gate that keeps routing off the packet hot path's
// allocation budget.
func ChoosePath(policy string) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 2,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		builder, err := routing.ByName(policy)
		if err != nil {
			b.Fatal(err)
		}
		prof.Routing = builder
		net := fabric.New(topo, prof, 5)
		src, dst := topology.NodeID(0), topology.NodeID(topo.Nodes()-1)
		if len(net.ChoosePath(src, dst, 0, 0)) == 0 { // warm the cache
			b.Fatal("no path")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if p := net.ChoosePath(src, dst, int64(i), 0); len(p) == 0 {
				b.Fatal("no path")
			}
		}
	}
}

// RunCell runs one full congestion-grid cell per iteration — the unit of
// work the Fig. 9-14 grids scale by (build network, measure the victim
// isolated, start the aggressor, measure congested). ns/op is the cost of
// one cell at reduced scale.
func RunCell(b *testing.B) {
	sys := harness.Shandy(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.RunCell(harness.CellSpec{
			Sys: sys, TotalNodes: 32, VictimFrac: 0.5,
			Aggressor: harness.IncastAggressor, AggrPPN: 1,
			Seed: 7, MinIters: 2, MaxIters: 3,
		}, harness.BenchVictim(workloads.AllreduceBench(8)))
		if r.NA {
			b.Fatal("cell unexpectedly N.A.")
		}
	}
}

// ParallelRun streams cross-group traffic over a 4096-endpoint Dragonfly
// (16 groups x 16 switches x 16 nodes) on the domain-sharded engine with
// the given worker budget, counting delivered data packets: ns/op reads
// as the per-packet cost including the epoch exchange, and comparing the
// domains=1 row against higher budgets shows the parallel speedup (on a
// multi-core host; the decomposition makes the numbers identical either
// way). domains=0 measures the classic single-engine baseline on the same
// machine shape.
func ParallelRun(domains int) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 16, SwitchesPerGroup: 16, NodesPerSwitch: 16, GlobalPerPair: 2,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		net := fabric.NewSharded(topo, prof, 5, domains)
		delivered := 0
		net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

		// 2 flows out of every group, each to the diametric group, 4
		// outstanding 32 KiB eager messages per flow: every domain both
		// sends and receives cross-domain traffic each epoch.
		const msgBytes = 32 * 1024
		npg := 16 * 16
		b.ReportAllocs()
		b.ResetTimer()
		var post func(src, dst topology.NodeID)
		post = func(src, dst topology.NodeID) {
			if delivered >= b.N {
				return
			}
			net.Send(src, dst, msgBytes, fabric.SendOpts{
				NoRendezvous: true,
				OnDelivered:  func(sim.Time) { post(src, dst) },
			})
		}
		for g := 0; g < 16; g++ {
			for f := 0; f < 2; f++ {
				src := topology.NodeID(g*npg + f)
				dst := topology.NodeID(((g+8)%16)*npg + f)
				for w := 0; w < 4; w++ {
					post(src, dst)
				}
			}
		}
		net.RunWhile(func() bool { return delivered < b.N })
	}
}

// flowPoster reposts one (src, dst) bulk flow on each delivery through a
// callback bound once at construction. Fresh closures per repost were one
// of the former 2.0 allocs/flow in FlowEngine; SendOpts.Recycle (the
// fabric's Message free-list) was the other. With both gone the fluid
// Send/solve/complete cycle is 0 allocs/flow in steady state, and the
// benchmarks below pin that.
type flowPoster struct {
	net       *fabric.Network
	src, dst  topology.NodeID
	bytes     int64
	delivered *int
	limit     *int
	cb        func(sim.Time)
}

func newFlowPoster(net *fabric.Network, src, dst topology.NodeID, bytes int64, delivered, limit *int) *flowPoster {
	p := &flowPoster{net: net, src: src, dst: dst, bytes: bytes, delivered: delivered, limit: limit}
	p.cb = p.onDelivered
	return p
}

func (p *flowPoster) onDelivered(sim.Time) {
	*p.delivered++
	p.post()
}

func (p *flowPoster) post() {
	if *p.delivered >= *p.limit {
		return
	}
	p.net.Send(p.src, p.dst, p.bytes, fabric.SendOpts{Bulk: true, Recycle: true, OnDelivered: p.cb})
}

// FlowEngine streams bulk cross-group flows through the flow-level fluid
// engine (fabric.FidelityFlow): 8 flows with 4 outstanding 8 MiB
// transfers each, reposted on delivery. One iteration is one delivered
// flow, so ns/op spread over the flow's bytes (the suite's SimBytes
// metadata) is the fluid path's ns per simulated byte — the number the
// hybrid-fidelity design trades against the packet engine's. A short
// warm-up drains one window before the timer starts so the Message
// free-list and the solver's scratch arrays reach steady state:
// allocs/op is a gated 0.
func FlowEngine(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	net.SetFidelity(fabric.FidelityFlow)

	delivered, limit := 0, 0
	posters := make([]*flowPoster, 0, 8)
	for i := 0; i < 8; i++ {
		posters = append(posters,
			newFlowPoster(net, topology.NodeID(i), topology.NodeID(16+i), FlowEngineBytes, &delivered, &limit))
	}
	kick := func() {
		for _, p := range posters {
			for w := 0; w < 4; w++ {
				p.post()
			}
		}
	}
	limit = 64
	kick()
	net.RunWhile(func() bool { return delivered < limit })
	// Drain the window through the trailing acks: Recycle returns a
	// Message to the free-list on its ack, so the timed region starts
	// with a fully stocked pool.
	net.RunWhile(func() bool { return net.FlowsCompleted() < net.FlowsStarted() })
	net.RunFor(sim.Millisecond)

	b.ReportAllocs()
	b.ResetTimer()
	delivered, limit = 0, b.N
	kick()
	net.RunWhile(func() bool { return delivered < b.N })
}

// FlowEngineBytes is the per-flow transfer size FlowEngine simulates per
// iteration (the SimBytes metadata for its suite row).
const FlowEngineBytes = 8 << 20

// nopFlowHooks discards completion callbacks: the solver benchmarks
// measure re-solve cost, not completion plumbing.
type nopFlowHooks struct{}

func (nopFlowHooks) FlowDelivered(sim.Time, any) {}
func (nopFlowHooks) FlowAcked(sim.Time, any)     {}

// SolverIncremental measures the fair-share solver's per-churn-event cost
// against a standing population of 10k long-lived flows: each iteration
// starts one short flow and advances past its completion, so the solver
// folds one arrival and one departure. The background flows are
// intra-group (64 Dragonfly groups), so the max–min component each event
// touches is ~1/64th of the flow set — the locality the incremental
// dirty-component re-solve exploits. forceFull pins the pre-incremental
// behaviour (SetForceFull) for the speedup ratio; the acceptance bar is
// incremental >= 5x cheaper per event at this population.
func SolverIncremental(forceFull bool) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 64, SwitchesPerGroup: 8, NodesPerSwitch: 4, GlobalPerPair: 1,
		})
		eng := flow.NewEngine(topo, flow.Caps{
			EdgeBits: 200e9, LocalBits: 200e9, GlobalBits: 200e9, MaxPaths: 4,
		})
		eng.Hooks = nopFlowHooks{}
		eng.SetForceFull(forceFull)
		rng := sim.NewRNG(11)
		const npg = 8 * 4 // nodes per group
		pair := func(g int) (topology.NodeID, topology.NodeID) {
			src := rng.Intn(npg)
			dst := rng.Intn(npg - 1)
			if dst >= src {
				dst++
			}
			return topology.NodeID(g*npg + src), topology.NodeID(g*npg + dst)
		}
		for i := 0; i < 10000; i++ {
			src, dst := pair(i % 64)
			// Effectively infinite: the background population never drains.
			eng.Start(src, dst, 1<<50, flow.FlowOpts{})
		}
		eng.Resolve()
		at := sim.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, dst := pair(i % 64)
			// 64 KiB at the group's shared edge rate completes well inside
			// the 1 ms step, so every iteration is exactly one start fold
			// plus one completion fold.
			eng.Start(src, dst, 64<<10, flow.FlowOpts{})
			at += sim.Millisecond
			eng.Advance(at)
		}
	}
}

// FlowShardedBytes is the per-flow transfer size of the FlowSharded rows.
const FlowShardedBytes = 4 << 20

// FlowSharded streams bulk fluid flows over the domain-sharded fabric:
// two intra-group flows per group run on that domain's scoped engine
// inside the parallel run phase, and one cross-group flow per group runs
// on the control-side boundary engine, coupled at epoch barriers. One
// iteration is one delivered flow; d1 vs d4 shows what the worker budget
// buys on a fluid-dominated workload (the decomposition — and the
// result — is identical for both).
func FlowSharded(domains int) func(b *testing.B) {
	return func(b *testing.B) {
		topo := topology.MustNew(topology.Config{
			Groups: 8, SwitchesPerGroup: 4, NodesPerSwitch: 8, GlobalPerPair: 2,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		net := fabric.NewSharded(topo, prof, 5, domains)
		net.SetFidelity(fabric.FidelityFlow)

		delivered, limit := 0, 0
		const npg = 4 * 8 // nodes per group
		var posters []*flowPoster
		for g := 0; g < 8; g++ {
			base := topology.NodeID(g * npg)
			posters = append(posters,
				newFlowPoster(net, base, base+9, FlowShardedBytes, &delivered, &limit),
				newFlowPoster(net, base+1, base+18, FlowShardedBytes, &delivered, &limit),
				newFlowPoster(net, base+2, topology.NodeID(((g+4)%8)*npg+3), FlowShardedBytes, &delivered, &limit))
		}
		kick := func() {
			for _, p := range posters {
				for w := 0; w < 2; w++ {
					p.post()
				}
			}
		}
		limit = 96
		kick()
		net.RunWhile(func() bool { return delivered < limit })
		net.RunWhile(func() bool { return net.FlowsCompleted() < net.FlowsStarted() })

		b.ReportAllocs()
		b.ResetTimer()
		delivered, limit = 0, b.N
		kick()
		net.RunWhile(func() bool { return delivered < b.N })
	}
}

// FlowScaleBytes is the per-flow transfer size of the FlowScale1M row.
const FlowScaleBytes = 16 << 20

// scale1M caches the million-endpoint fabric across benchmark re-runs:
// the ~10 s build (65536 switches, 1M NICs) would otherwise repeat on
// every b.N ramp and swamp the measurement. Steady-state flow cost does
// not depend on accumulated sim time, so reuse is safe.
//
//simlint:rngok -- benchmark-only cache of one Network (and its owned streams); nothing shares the draw order across simulations
var scale1M *fabric.Network

// FlowScale1M drives bisection traffic across a 1,048,576-endpoint
// Dragonfly (1024 groups of 64 Aries-style 8x8 grid switches, 16 nodes
// each) at flow fidelity: 1024 concurrent 16 MiB transfers from group g
// to group g+512, reposted on delivery. One iteration is one delivered
// flow; ns/op over 16 MiB is the fluid path's ns per simulated byte at
// the scale the paper's fabrics actually ship — the run the incremental
// component solver exists for (a full re-solve touches 4M segments,
// the component around one bisection flow a few hundred).
func FlowScale1M(b *testing.B) {
	if scale1M == nil {
		topo := topology.MustNew(topology.Config{
			Groups: 1024, SwitchesPerGroup: 64, NodesPerSwitch: 16, GlobalPerPair: 1,
			Shape: topology.Grid2D, GridRows: 8,
		})
		prof := fabric.SlingshotProfile()
		prof.SwitchJitter = false
		scale1M = fabric.New(topo, prof, 5)
		scale1M.SetFidelity(fabric.FidelityFlow)
	}
	net := scale1M
	nodes := net.Topo.Nodes()
	delivered, limit := 0, 0
	posters := make([]*flowPoster, 0, 1024)
	for i := 0; i < 1024; i++ {
		src := topology.NodeID(i * 1024)
		dst := topology.NodeID((i*1024 + nodes/2) % nodes)
		posters = append(posters, newFlowPoster(net, src, dst, FlowScaleBytes, &delivered, &limit))
	}
	b.ReportAllocs()
	b.ResetTimer()
	delivered, limit = 0, b.N
	for _, p := range posters {
		p.post()
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// HybridRun measures the packet-level victim path while fluid bulk
// aggressor flows saturate the same hybrid-fidelity fabric: 4 victim
// flows stream 32 KiB eager messages packet-by-packet, 4 bulk pairs keep
// 2 outstanding 1 MiB fluid transfers each. One iteration is one
// delivered victim data packet, so ns/op reads as the hybrid per-packet
// cost — the packet engine plus the background-load bookkeeping the
// fluid flows impose on it.
func HybridRun(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	net.SetFidelity(fabric.FidelityHybrid)
	delivered := 0
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) { delivered++ }

	const victimBytes = 32 * 1024
	const bulkBytes = 1 << 20
	b.ReportAllocs()
	b.ResetTimer()
	var postVictim func(src, dst topology.NodeID)
	postVictim = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, victimBytes, fabric.SendOpts{
			NoRendezvous: true,
			OnDelivered:  func(sim.Time) { postVictim(src, dst) },
		})
	}
	var postBulk func(src, dst topology.NodeID)
	postBulk = func(src, dst topology.NodeID) {
		if delivered >= b.N {
			return
		}
		net.Send(src, dst, bulkBytes, fabric.SendOpts{
			Bulk:        true,
			OnDelivered: func(sim.Time) { postBulk(src, dst) },
		})
	}
	for i := 0; i < 4; i++ {
		for w := 0; w < 4; w++ {
			postVictim(topology.NodeID(i), topology.NodeID(16+i))
		}
		for w := 0; w < 2; w++ {
			postBulk(topology.NodeID(4+i), topology.NodeID(20+i))
		}
	}
	net.RunWhile(func() bool { return delivered < b.N })
}

// mailboxBounce forwards each received event to the peer shard one
// lookahead later — the minimal cross-shard workload.
type mailboxBounce struct {
	self, peer *par.Shard
	to         sim.Handler
	look       sim.Time
	left       *int
}

func (h *mailboxBounce) OnEvent(e *sim.Engine, _ *sim.Event) {
	if *h.left <= 0 {
		return
	}
	*h.left--
	h.self.Post(h.peer, e.Now()+h.look, h.to, 0, nil)
}

// MailboxExchange measures the raw cross-shard mailbox path in isolation:
// two shards bounce a window of 64 events back and forth, so every epoch
// posts, drains, sorts and re-schedules 64 messages. ns/op is the
// amortized per-message exchange cost (mailbox append, canonical merge,
// engine scheduling, epoch overhead); allocs/op pins the 0-alloc
// steady-state contract of the exchange path.
func MailboxExchange(b *testing.B) {
	const look = 150 * sim.Nanosecond
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	s0, s1 := par.NewShard(0, e0, 2), par.NewShard(1, e1, 2)
	h0 := &mailboxBounce{self: s0, peer: s1, look: look}
	h1 := &mailboxBounce{self: s1, peer: s0, look: look, to: h0}
	h0.to = h1
	c := par.New([]*par.Shard{s0, s1}, nil, look, 1)
	left := 0
	h0.left, h1.left = &left, &left

	// Warm the mailboxes and free-lists so b.N measures steady state.
	const window = 64
	kick := func() {
		for i := 0; i < window; i++ {
			e0.Schedule(e0.Now()+look, h0, 0, nil)
		}
	}
	left = window
	kick()
	c.Run()

	b.ReportAllocs()
	b.ResetTimer()
	left = b.N
	kick()
	c.Run()
}

// Suite lists the hot-path benchmarks cmd/benchreport runs, with the unit
// one iteration corresponds to, the sharded-engine rows' domain worker
// budget (0 = classic engine), and — where one unit simulates a known
// payload — the simulated bytes per unit, from which benchreport derives
// the ns-per-simulated-byte column that compares fidelities (0 = not a
// byte-moving benchmark).
func Suite() []struct {
	Name     string
	Unit     string
	Domains  int
	SimBytes int64
	Fn       func(*testing.B)
} {
	// Packet benchmarks move full-size 4096-byte payloads
	// (ethernet.MaxPayload) per delivered data packet.
	const packetBytes = 4096
	return []struct {
		Name     string
		Unit     string
		Domains  int
		SimBytes int64
		Fn       func(*testing.B)
	}{
		{"PacketHotPath", "packet", 0, packetBytes, PacketHotPath},
		{"PacketHotPathFatTree", "packet", 0, packetBytes, PacketHotPathFatTree},
		{"FlowEngine", "flow", 0, FlowEngineBytes, FlowEngine},
		{"SolverIncremental/incremental", "event", 0, 0, SolverIncremental(false)},
		{"SolverIncremental/full", "event", 0, 0, SolverIncremental(true)},
		{"FlowSharded/d1", "flow", 1, FlowShardedBytes, FlowSharded(1)},
		{"FlowSharded/d4", "flow", 4, FlowShardedBytes, FlowSharded(4)},
		{"HybridRun", "packet", 0, packetBytes, HybridRun},
		{"ChoosePath/minimal", "decision", 0, 0, ChoosePath("minimal")},
		{"ChoosePath/adaptive", "decision", 0, 0, ChoosePath("adaptive")},
		{"ChoosePath/ecmp", "decision", 0, 0, ChoosePath("ecmp")},
		{"ChoosePath/valiant", "decision", 0, 0, ChoosePath("valiant")},
		{"TopoBuild", "build(x3)", 0, 0, TopoBuild},
		{"RunCell", "cell", 0, 0, RunCell},
		{"MailboxExchange", "msg", 0, 0, MailboxExchange},
		{"ParallelRun/d1", "packet", 1, packetBytes, ParallelRun(1)},
		{"ParallelRun/d2", "packet", 2, packetBytes, ParallelRun(2)},
		{"ParallelRun/d4", "packet", 4, packetBytes, ParallelRun(4)},
		{"ParallelRun/d8", "packet", 8, packetBytes, ParallelRun(8)},
		// Last: FlowScale1M retains its ~3 GiB million-endpoint fabric
		// for the rest of the process (see scale1M).
		{"FlowScale1M", "flow", 0, FlowScaleBytes, FlowScale1M},
	}
}
