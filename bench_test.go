// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation at reduced scale — one benchmark per figure —
// plus ablation benchmarks for the design choices called out in DESIGN.md
// (endpoint congestion control, adaptive routing, Ethernet enhancements)
// and raw engine/fabric throughput benchmarks.
//
// Figure benchmarks are dominated by one full harness run per iteration
// (they report the figure's headline metric via b.ReportMetric); with the
// default -benchtime they execute once. Paper-scale runs go through
// cmd/slingshot-sim instead.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/congestion"
	"repro/internal/ethernet"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func BenchmarkFig2SwitchLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig2SwitchLatency(harness.Options{Nodes: 32, MaxIters: 300})
		b.ReportMetric(r.Samples.Mean(), "switch-ns")
	}
}

func BenchmarkFig3Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := topology.MaxSystem()
		d := topology.MustNew(topology.ShandyConfig())
		b.ReportMetric(float64(spec.Endpoints), "max-endpoints")
		b.ReportMetric(float64(d.BisectionLinks()), "shandy-bisection-links")
	}
}

func BenchmarkFig4Distance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig4Distance(harness.Options{Nodes: 32, MaxIters: 8})
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.GBits, "4MiB-Gbps")
	}
}

func BenchmarkFig5Stacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig5Stacks(harness.Options{Nodes: 32, MaxIters: 2})
		b.ReportMetric(r.Points[0].RTT2.Microseconds(), "verbs-8B-us")
	}
}

func BenchmarkFig6Bisection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig6Bisection(harness.Options{Nodes: 32, Seed: 2})
		for _, p := range r.Points {
			if p.Series == "bisection" && p.Size == 128*1024 {
				b.ReportMetric(p.PeakFrc, "bisection-peak-frac")
			}
		}
	}
}

func BenchmarkFig8Tailbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig8Tailbench(harness.Options{Nodes: 64, MaxIters: 10, Seed: 9})
		worst := 0.0
		for _, e := range r.Entries {
			if c := e.Congested.Mean() / e.Isolated.Mean(); c > worst {
				worst = c
			}
		}
		b.ReportMetric(worst, "worst-impact")
	}
}

func BenchmarkFig9Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig9Heatmap(harness.Options{
			Nodes: 32, MinIters: 2, MaxIters: 3, Seed: 11,
		}, harness.VictimsApps)
		max := r.Max()
		b.ReportMetric(max["Aries (Crystal)"], "aries-max-impact")
		b.ReportMetric(max["Slingshot (Shandy)"], "slingshot-max-impact")
	}
}

func BenchmarkFig10Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig10Distributions(harness.Options{
			Nodes: 24, MinIters: 2, MaxIters: 3, Seed: 17,
		}, harness.VictimsApps, "A")
		worst := 0.0
		for _, v := range r.Variants {
			if v.Max > worst {
				worst = v.Max
			}
		}
		b.ReportMetric(worst, "worst-impact")
	}
}

func BenchmarkFig11FullScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig11FullScale(harness.Options{
			Nodes: 32, MinIters: 2, MaxIters: 3, Seed: 5,
		})
		worst := 0.0
		for _, row := range r.Rows {
			for _, c := range row.Cells {
				if !c.NA && c.Impact > worst {
					worst = c.Impact
				}
			}
		}
		b.ReportMetric(worst, "worst-impact")
	}
}

func BenchmarkFig12Bursty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig12Bursty(harness.Options{
			Nodes: 24, MinIters: 3, MaxIters: 6, Seed: 13,
		}, []int64{128 * 1024, 1 << 20}, []int{100, 10000}, []int64{1, 10000})
		b.ReportMetric(r.MaxImpact()[128*1024], "128KiB-max-impact")
	}
}

func BenchmarkFig13TrafficClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig13TrafficClasses(harness.Options{Nodes: 24, Seed: 3})
		b.ReportMetric(r.SameImpact, "sameTC-impact")
		b.ReportMetric(r.SeparateImpact, "separateTC-impact")
	}
}

func BenchmarkFig14Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig14Bandwidth(harness.Options{Nodes: 24, Seed: 3})
		_, sep := r.OverlapShares()
		b.ReportMetric(sep[0], "tc1-share")
	}
}

func BenchmarkTableIApplications(b *testing.B) {
	topo := topology.MustNew(topology.ScaledConfig(16))
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	for i := 0; i < b.N; i++ {
		for _, app := range workloads.AppsScaled(0.01) {
			net := fabric.New(topo, prof, 1)
			nodes := make([]topology.NodeID, 8)
			for k := range nodes {
				nodes[k] = topology.NodeID(k)
			}
			j := mpi.NewJob(net, nodes, mpi.JobOpts{Stack: mpi.MPI})
			rng := sim.NewRNG(7)
			fin := false
			app.Iterate(j, rng, func() { fin = true })
			net.Eng.RunWhile(func() bool { return !fin })
			if !fin {
				b.Fatalf("%s did not finish", app.Name)
			}
		}
	}
}

// Ablation: how much of the victim protection comes from the congestion
// control algorithm (the DESIGN.md design-choice study). Everything is
// held constant — the Aries-style machine (grid groups, shallow buffers,
// noisy routing) where congestion trees can spread — and ONLY the endpoint
// CC algorithm changes. Expected ordering of victim impact:
// none >> ecn > slingshot.
func BenchmarkAblationCongestionControl(b *testing.B) {
	kinds := []struct {
		name string
		cc   congestion.Params
	}{
		{"slingshot", congestion.DefaultParams(congestion.Slingshot)},
		{"ecn", congestion.DefaultParams(congestion.ECNLike)},
		{"none", congestion.DefaultParams(congestion.None)},
	}
	base := harness.Crystal(72)
	for _, k := range kinds {
		k := k
		b.Run(k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := base
				sys.Prof.CC = k.cc
				r := harness.RunCell(harness.CellSpec{
					Sys: sys, TotalNodes: 48, VictimFrac: 0.5,
					Aggressor: harness.IncastAggressor, AggrPPN: 1,
					Seed: 7, MinIters: 3, MaxIters: 6,
				}, harness.BenchVictim(workloads.AllreduceBench(8)))
				b.ReportMetric(r.Impact, "victim-impact")
			}
		})
	}
}

// Ablation: adaptive routing versus minimal-only under cross-group load.
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	for _, adaptive := range []bool{true, false} {
		name := "minimal"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prof := fabric.SlingshotProfile()
				prof.SwitchJitter = false
				prof.AdaptiveRouting = adaptive
				topo := topology.MustNew(topology.Config{
					Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 1,
				})
				net := fabric.New(topo, prof, 3)
				done := 0
				for s := 0; s < 16; s++ {
					net.Send(topology.NodeID(s), topology.NodeID(16+s), 256*1024,
						fabric.SendOpts{OnDelivered: func(sim.Time) { done++ }})
				}
				net.Eng.RunWhile(func() bool { return done < 16 })
				b.ReportMetric(net.Now().Microseconds(), "completion-us")
			}
		})
	}
}

// Ablation: Slingshot's Ethernet enhancements (32 B min frame, headerless
// IP, no IPG, §II-F) versus standard framing, measured as 8-byte-message
// throughput across a single saturated global link. Host per-message costs
// are zeroed so the wire framing is the bottleneck (an 8 B RoCE frame is
// 84 wire bytes standard vs 52 enhanced).
func BenchmarkAblationEthernetMode(b *testing.B) {
	for _, enhanced := range []bool{true, false} {
		name := "standard"
		if enhanced {
			name = "enhanced"
		}
		mode := ethernet.Standard
		if enhanced {
			mode = ethernet.Enhanced
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prof := fabric.SlingshotProfile()
				prof.SwitchJitter = false
				prof.FabricMode = mode
				prof.HostGap = 0
				topo := topology.MustNew(topology.Config{
					Groups: 2, SwitchesPerGroup: 1, NodesPerSwitch: 8, GlobalPerPair: 1,
				})
				net := fabric.New(topo, prof, 4)
				stop := false
				var post func(src, dst topology.NodeID)
				post = func(src, dst topology.NodeID) {
					if stop {
						return
					}
					net.Send(src, dst, 8, fabric.SendOpts{OnDelivered: func(sim.Time) {
						post(src, dst)
					}})
				}
				for s := 0; s < 8; s++ {
					// Deep per-flow pipelines keep the shared global link
					// saturated so wire framing is the bottleneck.
					for w := 0; w < 96; w++ {
						post(topology.NodeID(s), topology.NodeID(8+s))
					}
				}
				net.RunFor(200 * sim.Microsecond)
				stop = true
				b.ReportMetric(float64(net.PacketsDelivered)/net.Now().Seconds()/1e6, "Mmsg-per-s")
			}
		})
	}
}

// BenchmarkPacketHotPath measures the per-packet cost of the fabric's hot
// path (injection, routing, forwarding, scheduling, acks); ns/op and
// allocs/op are per delivered data packet. The body lives in
// internal/bench so cmd/benchreport can emit the same measurement into
// the tracked BENCH_hotpath.json baseline.
func BenchmarkPacketHotPath(b *testing.B) { bench.PacketHotPath(b) }

// BenchmarkPacketHotPathFatTree is the same hot path on the fat-tree
// backend — interface dispatch must stay alloc-free on every topology.
func BenchmarkPacketHotPathFatTree(b *testing.B) { bench.PacketHotPathFatTree(b) }

// BenchmarkFlowEngine streams 8 MiB bulk flows through the flow-level
// fluid engine; ns/op over 8 MiB is the fluid path's ns per simulated
// byte (the hybrid-fidelity speedup claim is this against PacketHotPath).
func BenchmarkFlowEngine(b *testing.B) { bench.FlowEngine(b) }

// BenchmarkSolverIncremental measures one flow-churn event (one arrival
// fold plus one completion fold) against 10k standing flows, with the
// incremental dirty-component re-solve and with full progressive filling
// forced — the ratio is the incremental solver's speedup claim (>= 5x).
func BenchmarkSolverIncremental(b *testing.B) {
	b.Run("incremental", bench.SolverIncremental(false))
	b.Run("full", bench.SolverIncremental(true))
}

// BenchmarkFlowSharded streams bulk fluid flows over the domain-sharded
// fabric (scoped per-domain engines plus the epoch-folded boundary
// solver) at worker budgets 1 and 4; results are identical, only
// wall-clock differs.
func BenchmarkFlowSharded(b *testing.B) {
	b.Run("d1", bench.FlowSharded(1))
	b.Run("d4", bench.FlowSharded(4))
}

// BenchmarkFlowScale1M runs bisection flows over a 1,048,576-endpoint
// Dragonfly at flow fidelity — the million-endpoint scale row. The
// fabric builds once and is cached across b.N ramps (~10 s, ~3 GiB).
func BenchmarkFlowScale1M(b *testing.B) { bench.FlowScale1M(b) }

// BenchmarkHybridRun measures the packet-level victim path with fluid
// bulk aggressors saturating the same hybrid-fidelity fabric.
func BenchmarkHybridRun(b *testing.B) { bench.HybridRun(b) }

// BenchmarkChoosePath measures one source-switch routing decision per
// policy on a warm network; the adaptive (default) policy must stay at
// 0 allocs/decision on the cached-minimal path.
func BenchmarkChoosePath(b *testing.B) {
	for _, policy := range []string{"minimal", "adaptive", "ecmp", "valiant"} {
		b.Run(policy, bench.ChoosePath(policy))
	}
}

// BenchmarkTopoBuild constructs all three topology backends per
// iteration (the per-grid-cell setup cost).
func BenchmarkTopoBuild(b *testing.B) { bench.TopoBuild(b) }

// BenchmarkRunCell measures one full congestion-grid cell per iteration —
// the unit the Fig. 9-14 grids scale by.
func BenchmarkRunCell(b *testing.B) { bench.RunCell(b) }

// BenchmarkParallelRun streams cross-group traffic over a 4096-endpoint
// Dragonfly on the domain-sharded engine at worker budgets 1/2/4/8; the
// decomposition is fixed, so the budgets differ only in wall-clock time.
func BenchmarkParallelRun(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("d%d", d), bench.ParallelRun(d))
	}
}

// BenchmarkMailboxExchange measures the raw cross-shard mailbox path
// (post, canonical merge, re-schedule) — 0 allocs/msg in steady state.
func BenchmarkMailboxExchange(b *testing.B) { bench.MailboxExchange(b) }

// engineTicker drives BenchmarkEngineThroughput through the closure-free
// Handler interface — the same dispatch path the fabric uses.
type engineTicker struct{ n, max int }

func (t *engineTicker) OnEvent(e *sim.Engine, _ *sim.Event) {
	t.n++
	if t.n < t.max {
		e.After(sim.Nanosecond, t, 0, nil)
	}
}

// Raw engine throughput: events scheduled and dispatched per second.
func BenchmarkEngineThroughput(b *testing.B) {
	e := sim.NewEngine()
	t := &engineTicker{max: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(0, t, 0, nil)
	e.Run()
}

// Raw fabric throughput: packets moved end to end per second of wall time.
func BenchmarkFabricPacketRate(b *testing.B) {
	topo := topology.MustNew(topology.Config{
		Groups: 2, SwitchesPerGroup: 2, NodesPerSwitch: 8, GlobalPerPair: 2,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	net := fabric.New(topo, prof, 5)
	b.ResetTimer()
	delivered := 0
	var post func(src, dst topology.NodeID)
	post = func(src, dst topology.NodeID) {
		net.Send(src, dst, 4096, fabric.SendOpts{OnDelivered: func(sim.Time) {
			delivered++
			if delivered < b.N {
				post(src, dst)
			}
		}})
	}
	for i := 0; i < 8 && i < b.N; i++ {
		post(topology.NodeID(i), topology.NodeID(16+i))
	}
	net.Eng.RunWhile(func() bool { return delivered < b.N })
}

// BenchmarkFig9GridParallel measures harness.RunGrid scaling across
// worker-pool widths on the fig9 quick-set grid. The grid's independent
// cells are embarrassingly parallel, so on a 4+ core machine jobs=NumCPU
// runs the same byte-identical grid >=2x faster than jobs=1 (compare the
// sub-benchmark wall times; on a single-core machine they coincide).
func BenchmarkFig9GridParallel(b *testing.B) {
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := harness.Fig9Heatmap(harness.Options{
					Nodes: 32, MinIters: 2, MaxIters: 3, Seed: 11, Jobs: jobs,
				}, harness.VictimsQuick)
				b.ReportMetric(r.Max()["Aries (Crystal)"], "aries-max-impact")
			}
		})
	}
}
