// Quickstart: build a small Slingshot system, run a ping-pong and a
// bandwidth sweep between two nodes in different Dragonfly groups, and
// print the numbers — the "hello world" of the simulator.
package main

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// A 4-group Dragonfly: 4 switches per group, 8 nodes per switch.
	topo := topology.MustNew(topology.Config{
		Groups:           4,
		SwitchesPerGroup: 4,
		NodesPerSwitch:   8,
		GlobalPerPair:    2,
	})
	net := fabric.New(topo, fabric.SlingshotProfile(), 1)
	fmt.Printf("built %q: %d nodes, %d switches, diameter <= 3 switch hops\n",
		net.Prof.Name, topo.Nodes(), topo.Switches())

	// An MPI job over two nodes in different groups.
	job := mpi.NewJob(net, []topology.NodeID{0, topology.NodeID(topo.Nodes() - 1)},
		mpi.JobOpts{Stack: mpi.MPI})

	fmt.Println("\nping-pong RTT/2 (cross-group):")
	for _, size := range []int64{8, 1024, 128 * 1024, 4 << 20} {
		var med sim.Time
		job.PingPong(0, 1, size, 10, func(rs []sim.Time) {
			med = rs[len(rs)/2]
		})
		net.Eng.Run()
		fmt.Printf("  %8dB  %v\n", size, med)
	}

	fmt.Println("\nstreaming bandwidth (8 messages in flight):")
	for _, size := range []int64{1024, 128 * 1024, 4 << 20} {
		n2 := fabric.New(topo, fabric.SlingshotProfile(), 2)
		const iters = 32
		done, posted := 0, 0
		var finish sim.Time
		var post func()
		post = func() {
			if posted >= iters {
				return
			}
			posted++
			n2.Send(0, topology.NodeID(topo.Nodes()-1), size,
				fabric.SendOpts{OnDelivered: func(at sim.Time) {
					done++
					finish = at
					post()
				}})
		}
		for i := 0; i < 8; i++ {
			post()
		}
		n2.Eng.RunWhile(func() bool { return done < iters })
		gbps := float64(size*iters) * 8 / finish.Seconds() / 1e9
		fmt.Printf("  %8dB  %6.2f Gb/s\n", size, gbps)
	}
}
