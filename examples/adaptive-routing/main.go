// Adaptive-routing study (§II-C): many simultaneous flows between two
// Dragonfly groups stress the minimal global links. With adaptive routing
// the source switches observe the request-queue depths and divert packets
// over non-minimal paths through intermediate groups; with minimal-only
// routing the flows serialize on the direct links.
package main

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	for _, adaptive := range []bool{false, true} {
		elapsed, hops := run(adaptive)
		mode := "minimal-only"
		if adaptive {
			mode = "adaptive    "
		}
		fmt.Printf("%s  completion %8v   mean switch hops/packet %.2f\n", mode, elapsed, hops)
	}
	fmt.Println("\nadaptive routing trades longer paths for shorter queues (§II-C)")
}

func run(adaptive bool) (sim.Time, float64) {
	topo := topology.MustNew(topology.Config{
		Groups: 4, SwitchesPerGroup: 4, NodesPerSwitch: 4, GlobalPerPair: 1,
	})
	prof := fabric.SlingshotProfile()
	prof.SwitchJitter = false
	prof.AdaptiveRouting = adaptive
	net := fabric.New(topo, prof, 3)

	var hopSum, pkts int64
	net.Taps.OnPacketDelivered = func(p *fabric.Packet, _ sim.Time) {
		hopSum += int64(len(p.Path))
		pkts++
	}

	// All nodes of group 0 blast group 1.
	done, total := 0, 0
	for s := 0; s < 16; s++ {
		total++
		net.Send(topology.NodeID(s), topology.NodeID(16+s), 256*1024,
			fabric.SendOpts{OnDelivered: func(sim.Time) { done++ }})
	}
	net.Eng.RunWhile(func() bool { return done < total })
	return net.Now(), float64(hopSum) / float64(pkts)
}
