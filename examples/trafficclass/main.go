// Traffic-class study (Figs. 13/14 in miniature): a latency-critical
// 8-byte Allreduce job shares a bandwidth-tapered system with a bulk
// 256 KiB Alltoall job — first in the same traffic class, then with the
// Allreduce in a high-priority class of its own. QoS keeps the collective
// fast regardless of the bulk traffic.
package main

import (
	"fmt"

	"repro/internal/harness"
)

func main() {
	r := harness.Fig13TrafficClasses(harness.Options{Nodes: 24, Seed: 3})
	fmt.Println(r)
	fmt.Printf("protection factor: %.1fx\n", r.SameImpact/r.SeparateImpact)

	fmt.Println("\nminimum-bandwidth guarantees (Fig. 14):")
	b := harness.Fig14Bandwidth(harness.Options{Nodes: 24, Seed: 3})
	same, sep := b.OverlapShares()
	fmt.Printf("  same TC:      %.0f%% / %.0f%% while both jobs run\n", same[0]*100, same[1]*100)
	fmt.Printf("  separate TCs: %.0f%% / %.0f%% (configured min 80%% / min 10%% + spare)\n",
		sep[0]*100, sep[1]*100)
}
