// Registry: run a paper experiment through the experiment registry and
// encode its structured result — the library-side equivalent of
// `slingshot-sim run fig6 -format json`.
package main

import (
	"log"
	"os"

	"repro/internal/harness"
	"repro/internal/results"
)

func main() {
	exp := harness.Lookup("fig6")
	res, err := exp.Run(harness.Options{Nodes: 32, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	enc, _ := results.NewEncoder("json")
	if err := enc.Encode(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
}
