// Congestion study: the paper's headline experiment in miniature. A victim
// job runs an 8-byte Allreduce while an aggressor job incasts 128 KiB
// messages, first on a Slingshot system (per-pair hardware congestion
// control), then on an Aries-style system (no endpoint congestion
// control). Victims on Slingshot barely notice; on Aries the congestion
// tree inflates their iterations by an order of magnitude (§III-A, Fig. 9).
package main

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func main() {
	const totalNodes = 48
	for _, sys := range []harness.System{
		harness.Shandy(totalNodes * 2),
		harness.Crystal(totalNodes * 3 / 2),
	} {
		impact := measure(sys, totalNodes)
		fmt.Printf("%-22s 8B allreduce congestion impact: %.2fx\n", sys.Name, impact)
	}
	fmt.Println("\n(the paper's Fig. 9: Aries up to 93x, Slingshot at most 1.3x)")
}

func measure(sys harness.System, totalNodes int) float64 {
	net := fabric.New(topology.MustNew(sys.Topo), sys.Prof, 7)
	victimNodes, aggrNodes := placement.Split(totalNodes, totalNodes/2, placement.Linear, nil)
	victim := mpi.NewJob(net, victimNodes, mpi.JobOpts{Stack: mpi.MPI})

	iso := run(net, victim, 8)

	aggr := mpi.NewJob(net, aggrNodes, mpi.JobOpts{Stack: mpi.MPI})
	a := workloads.StartIncast(aggr, workloads.AggressorMsgBytes, 2)
	net.RunFor(300 * sim.Microsecond)
	cong := run(net, victim, 8)
	a.Stop()

	return stats.CongestionImpact(iso, cong)
}

// run measures the mean of `iters` allreduce iterations in microseconds.
func run(net *fabric.Network, j *mpi.Job, iters int) float64 {
	s := stats.NewSample(iters)
	for i := 0; i < iters; i++ {
		start := net.Now()
		fin := false
		j.Allreduce(8, func(sim.Time) { fin = true })
		net.Eng.RunWhile(func() bool { return !fin })
		s.Add((net.Now() - start).Microseconds())
	}
	return s.Mean()
}
